package xmlvi_test

import (
	"fmt"
	"path/filepath"
	"testing"

	xmlvi "repro"
	"repro/internal/datagen"
)

// BenchmarkDurableUpdate measures the cost a write-ahead log adds to a
// text update: the in-memory baseline, per-record fsync (the safest
// setting), and fsync batched every 64 records — the configuration the
// durability acceptance target compares against the baseline (within
// 5x). Each iteration is one UpdateText through the full index
// maintenance path.
func BenchmarkDurableUpdate(b *testing.B) {
	xml, err := datagen.Generate("xmark1", 0.05, 42)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name      string
		wal       bool
		syncEvery int
	}{
		{"in-memory", false, 0},
		{"wal-sync-1", true, 1},
		{"wal-batch-64", true, 64},
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			opts := xmlvi.Options{}
			if mode.wal {
				opts.WAL = filepath.Join(dir, "b.wal")
				opts.WALSyncEvery = mode.syncEvery
			}
			doc, err := xmlvi.ParseWithOptions(xml, opts)
			if err != nil {
				b.Fatal(err)
			}
			if mode.wal {
				if err := doc.Save(filepath.Join(dir, "b.xvi")); err != nil {
					b.Fatal(err)
				}
				defer doc.Close()
			}
			var texts []xmlvi.Node
			for _, n := range doc.FindAll("name") {
				texts = append(texts, doc.Children(n)...)
			}
			if len(texts) == 0 {
				b.Fatal("no text nodes")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := doc.UpdateText(texts[i%len(texts)], fmt.Sprintf("value-%d", i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
