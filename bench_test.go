package xmlvi_test

// One benchmark per table and figure of the paper's evaluation (Section
// 6), plus the ablation benches from DESIGN.md. Each bench wraps the
// typed runner in internal/experiments and reports paper-relevant shapes
// as custom metrics, so `go test -bench=. -benchmem` regenerates the
// whole evaluation. The xvibench command prints the same data as tables.
//
// Scales default small enough for CI; raise with -benchscale to approach
// the paper's sizes.

import (
	"flag"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	xmlvi "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

var benchScale = flag.Float64("benchscale", 0.10, "dataset scale for experiment benches (1.0 ≈ 1/64 of paper size)")

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = *benchScale
	cfg.Repeat = 1
	return cfg
}

// BenchmarkTable1DatasetStats regenerates Table 1: dataset statistics for
// all eight corpora. Reported metrics: measured text and double shares
// (paper: 56–66 % and 0.1–10 %).
func BenchmarkTable1DatasetStats(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.TextPct, r.Dataset+"_text%")
			}
		}
	}
}

// BenchmarkFig9StringIndexCreation regenerates Figure 9 (top left):
// string-index creation time as overhead over shredding. Paper shape:
// below ~10 %.
func BenchmarkFig9StringIndexCreation(b *testing.B) {
	benchFig9(b, func(r experiments.Fig9Row) (float64, string) {
		return r.StringTimePct, r.Dataset + "_ovh%"
	})
}

// BenchmarkFig9DoubleIndexCreation regenerates Figure 9 (top right):
// double-index creation overhead. Paper shape: below ~2 %.
func BenchmarkFig9DoubleIndexCreation(b *testing.B) {
	benchFig9(b, func(r experiments.Fig9Row) (float64, string) {
		return r.DoubleTimePct, r.Dataset + "_ovh%"
	})
}

// BenchmarkFig9StringIndexStorage regenerates Figure 9 (bottom left):
// string-index storage share. Paper shape: 10–20 % of the database.
func BenchmarkFig9StringIndexStorage(b *testing.B) {
	benchFig9(b, func(r experiments.Fig9Row) (float64, string) {
		return r.StringSizePct, r.Dataset + "_size%"
	})
}

// BenchmarkFig9DoubleIndexStorage regenerates Figure 9 (bottom right):
// double-index storage share. Paper shape: ≤ 2–3 %.
func BenchmarkFig9DoubleIndexStorage(b *testing.B) {
	benchFig9(b, func(r experiments.Fig9Row) (float64, string) {
		return r.DoubleSizePct, r.Dataset + "_size%"
	})
}

func benchFig9(b *testing.B, metric func(experiments.Fig9Row) (float64, string)) {
	cfg := benchConfig()
	cfg.Datasets = []string{"xmark1", "epageo", "dblp", "wiki"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				v, name := metric(r)
				b.ReportMetric(v, name)
			}
		}
	}
}

// BenchmarkFig10StringIndexUpdate regenerates Figure 10 (left): string
// index update time vs number of updated nodes. Paper shape: bounded
// growth, < 400 ms at 10^6 nodes on 2 GB documents.
func BenchmarkFig10StringIndexUpdate(b *testing.B) {
	benchFig10(b, func(p experiments.Fig10Point) float64 { return p.StringMS })
}

// BenchmarkFig10DoubleIndexUpdate regenerates Figure 10 (right): double
// index update time. Paper shape: slightly cheaper than the string index
// (SCT probe vs function call).
func BenchmarkFig10DoubleIndexUpdate(b *testing.B) {
	benchFig10(b, func(p experiments.Fig10Point) float64 { return p.DoubleMS })
}

func benchFig10(b *testing.B, metric func(experiments.Fig10Point) float64) {
	cfg := benchConfig()
	cfg.Datasets = []string{"xmark1"}
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.ReportMetric(metric(p), fmt.Sprintf("ms_at_%d", p.Updated))
			}
		}
	}
}

// BenchmarkFig11HashStability regenerates Figure 11: the distribution of
// distinct strings per hash value. Paper shape: <1 % collisions for most
// datasets, <10 % for Wiki-like, clusters up to 9 strings.
func BenchmarkFig11HashStability(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"xmark1", "wiki"}
	for i := 0; i < b.N; i++ {
		_, sums, err := experiments.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range sums {
				b.ReportMetric(s.CollidingPct, s.Dataset+"_colliding%")
				b.ReportMetric(float64(s.MaxCluster), s.Dataset+"_maxcluster")
			}
		}
	}
}

// BenchmarkAblationCombineVsRehash is A1: maintaining ancestor hashes
// with the combination function C vs re-hashing reconstructed strings.
func BenchmarkAblationCombineVsRehash(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunA1(cfg, "xmark1", 100)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(row.SpeedupX, "speedup_x")
		}
	}
}

// BenchmarkAblationSCTVsFSM is A2: SCT probe vs FSM re-run over text.
func BenchmarkAblationSCTVsFSM(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		row := experiments.RunA2(cfg)
		if i == 0 {
			b.ReportMetric(row.SpeedupX, "speedup_x")
			b.ReportMetric(row.SCTNS, "sct_ns")
			b.ReportMetric(row.FSMNS, "fsm_ns")
		}
	}
}

// BenchmarkQueryIndexVsScan is A3: index-accelerated XPath vs full scan.
func BenchmarkQueryIndexVsScan(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunA3(cfg, "xmark1")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			var total float64
			for _, r := range rows {
				total += r.SpeedupX
			}
			b.ReportMetric(total/float64(len(rows)), "avg_speedup_x")
		}
	}
}

// BenchmarkAblationOnePassVsTwoPass is A4: simultaneous one-pass index
// creation vs separate passes.
func BenchmarkAblationOnePassVsTwoPass(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunA4(cfg, "xmark1")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(row.SpeedupX, "speedup_x")
		}
	}
}

// BenchmarkTxnCommutativeVsLocking is A5: Section 5.1's commutative
// commit protocol vs ancestor-chain locking under concurrent updaters.
func BenchmarkTxnCommutativeVsLocking(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunA5(cfg, 8, 50)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(row.SpeedupX, "speedup_x")
			b.ReportMetric(float64(row.LockingAbort), "locking_aborts")
		}
	}
}

// BenchmarkQueryPlannerCrossover is A6: one range predicate swept from
// high to low selectivity, under a forced scan, a forced index drive,
// and the cost-based planner (the Figure 8-style read-path crossover).
// Paper-shaped expectation: the index drive wins by orders of magnitude
// at low selectivity and loses near 1.0; the auto column should track
// the winner on both sides of the crossover.
func BenchmarkQueryPlannerCrossover(b *testing.B) {
	cfg := benchConfig()
	// One RunA6 call for both points: the dataset is generated and
	// indexed once, so ns/op measures the queries, not repeated builds.
	fracs := []float64{0.01, 0.5}
	tags := []string{"lo", "hi"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunA6(cfg, "xmark1", fracs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) == len(fracs) {
			for pi, r := range rows {
				b.ReportMetric(r.ScanMS, tags[pi]+"_scan_ms")
				b.ReportMetric(r.IndexMS, tags[pi]+"_index_ms")
				b.ReportMetric(r.AutoMS, tags[pi]+"_auto_ms")
			}
		}
	}
}

// BenchmarkQueryPlannerConjunctive is A7: conjunctive predicates whose
// first condition is unselective and whose second is highly selective —
// the workload the legacy first-indexable-condition heuristic gets
// maximally wrong. The planner picks the selective driver (and
// intersects further selective paths), so planner_ms should beat
// legacy_ms clearly; speedup_x reports the ratio for the first query.
func BenchmarkQueryPlannerConjunctive(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunA7(cfg, "xmark1")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[0].LegacyMS, "legacy_ms")
			b.ReportMetric(rows[0].PlannerMS, "planner_ms")
			b.ReportMetric(rows[0].SpeedupX, "speedup_x")
		}
	}
}

// BenchmarkQuerySinglePredicate tracks raw planned-query latency on the
// two single-predicate shapes (string equality, numeric range) so
// BENCH_PR.json records planner overhead alongside build/update numbers.
func BenchmarkQuerySinglePredicate(b *testing.B) {
	xml, err := datagen.Generate("xmark1", *benchScale, 42)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := xmlvi.ParseWithOptions(xml, xmlvi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range []struct{ name, expr string }{
		{"eq", `//item[location = "Amsterdam"]`},
		{"range", `//open_auction[initial > 4950]`},
	} {
		b.Run(q.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := doc.Query(q.expr)
				if err != nil {
					b.Fatal(err)
				}
				benchResults = res
			}
		})
	}
}

var benchResults []xmlvi.Result

// BenchmarkBuild measures full index construction (string + every
// registered typed index) over the XMark bench corpus, serial
// (Parallelism=1, the paper's Figure 7 loop) against the sharded
// parallel build (Parallelism=4). CI's bench job diffs the two
// sub-benchmarks in its job summary; on multi-core hardware p4 should
// be well over 2x faster, while on a single core it degrades to
// roughly serial cost. The equivalence property tests in internal/core
// pin that both paths produce byte-identical indexes.
func BenchmarkBuild(b *testing.B) {
	xml, err := datagen.Generate("xmark1", *benchScale, 42)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := xmlparse.Parse(xml)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("corpus: %d nodes, %d attrs", doc.NumNodes(), doc.NumAttrs())
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Parallelism = p
			for i := 0; i < b.N; i++ {
				benchBuilt = core.Build(doc, opts)
			}
		})
	}
}

var benchBuilt *core.Indexes

// BenchmarkMemFootprint is the packed-layout headline number: bytes per
// indexed node for the fully built XMark snapshot (string + typed +
// substring indices). bytes_per_node measures the packed layout the
// readers actually traverse; unpacked_bytes_per_node is the analytic
// cost of the same state in the pre-packing layout (one (key,val) pair
// per tree slot, no value interning), so the ratio between the two
// metrics is the layout's measured compression. CI's bench job tracks
// bytes_per_node across PRs and flags regressions like any timing.
func BenchmarkMemFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ix := buildSubstringIndex(b)
		if i == 0 {
			ms := ix.MemStats()
			b.ReportMetric(ms.BytesPerNode, "bytes_per_node")
			b.ReportMetric(ms.UnpackedBytesPerNode, "unpacked_bytes_per_node")
			b.ReportMetric(float64(ms.TotalBytes)/(1<<20), "total_MB")
		}
		benchBuilt = ix
	}
}

// BenchmarkRangeDate compares the xs:date range index — added to the
// core purely by registration — against the index-less scan baseline on
// the datagen auction (XMark) dataset. Paper-shaped expectation: the
// B+tree range scan beats value materialisation + FSM casting by well
// over an order of magnitude. The "speedup_x" metric on the indexed
// sub-benchmark reports the measured ratio.
func BenchmarkRangeDate(b *testing.B) {
	ix := buildAuctionDateIndex(b)
	lo, hi := dateBenchWindow()
	if len(ix.RangeDate(lo, hi)) == 0 {
		b.Fatal("no dates in the benchmark window")
	}
	var scanNS float64
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchHits = ix.ScanDateRange(lo, hi)
		}
		scanNS = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchHits = ix.RangeDate(lo, hi)
		}
		indexedNS := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if indexedNS > 0 && scanNS > 0 {
			b.ReportMetric(scanNS/indexedNS, "speedup_x")
		}
	})
}

var benchHits []core.Posting

// TestRangeDateIndexedMatchesScan pins the benchmark's correctness: the
// indexed date range (with chain-lifted wrappers) selects exactly the
// nodes the scan baseline casts into the window.
func TestRangeDateIndexedMatchesScan(t *testing.T) {
	ix := buildAuctionDateIndex(t)
	lo, hi := dateBenchWindow()
	indexed := ix.RangeDate(lo, hi)
	scanned := ix.ScanDateRange(lo, hi)
	if len(indexed) == 0 {
		t.Fatal("no dates in the window")
	}
	key := func(p core.Posting) string {
		if p.IsAttr {
			return fmt.Sprintf("a%d", p.Attr)
		}
		return fmt.Sprintf("n%d", p.Node)
	}
	set := func(ps []core.Posting) map[string]bool {
		m := make(map[string]bool, len(ps))
		for _, p := range ps {
			m[key(p)] = true
		}
		return m
	}
	si, ss := set(indexed), set(scanned)
	if len(si) != len(ss) {
		t.Fatalf("indexed %d distinct hits, scan %d", len(si), len(ss))
	}
	for k := range si {
		if !ss[k] {
			t.Fatalf("indexed hit %s missing from scan", k)
		}
	}
}

// BenchmarkSubstring compares the q-gram substring index — versioned
// inside the MVCC snapshot, maintained by every commit path — against
// the full-document scan baseline on the datagen auction (XMark)
// dataset, using a selective contains() pattern with verified hits. The
// "speedup_x" metric on the indexed sub-benchmark reports the measured
// ratio; CI's bench job surfaces it as the substring-vs-scan line in
// the job summary.
func BenchmarkSubstring(b *testing.B) {
	ix := buildSubstringIndex(b)
	const pattern = "bidder" // selective: a handful of hits at any bench scale
	// Warm both paths: a single cold lookup is dominated by first-touch
	// allocation, and CI runs at -benchtime 1x.
	if len(ix.Contains(pattern)) == 0 || len(ix.ScanContains(pattern)) == 0 {
		b.Fatal("no hits for the benchmark pattern")
	}
	// reps amortizes per-call jitter inside each iteration so the ratio
	// is stable even at one iteration; both arms use the same factor, so
	// speedup_x and the baseline ns/op trajectory are unaffected by it.
	const reps = 25
	var scanNS float64
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < reps; j++ {
				benchHits = ix.ScanContains(pattern)
			}
		}
		scanNS = float64(b.Elapsed().Nanoseconds()) / float64(b.N*reps)
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < reps; j++ {
				benchHits = ix.Contains(pattern)
			}
		}
		indexedNS := float64(b.Elapsed().Nanoseconds()) / float64(b.N*reps)
		if indexedNS > 0 && scanNS > 0 {
			b.ReportMetric(scanNS/indexedNS, "speedup_x")
		}
	})
}

// TestSubstringIndexedMatchesScan pins the benchmark's correctness: the
// q-gram index answers contains() and starts-with() with exactly the
// postings the scan baseline finds, in the same document order.
func TestSubstringIndexedMatchesScan(t *testing.T) {
	ix := buildSubstringIndex(t)
	check := func(what string, indexed, scanned []core.Posting) {
		t.Helper()
		if len(indexed) != len(scanned) {
			t.Fatalf("%s: indexed %d hits, scan %d", what, len(indexed), len(scanned))
		}
		for i := range indexed {
			if indexed[i] != scanned[i] {
				t.Fatalf("%s: hit %d: indexed %+v, scan %+v", what, i, indexed[i], scanned[i])
			}
		}
	}
	for _, pattern := range []string{"mailto:w", "bidder", ".example"} {
		check("contains "+pattern, ix.Contains(pattern), ix.ScanContains(pattern))
	}
	prefix := ix.StartsWith("mailto:")
	if len(prefix) == 0 {
		t.Fatal("no starts-with hits")
	}
	check("starts-with mailto:", prefix, ix.ScanStartsWith("mailto:"))
}

// buildSubstringIndex shreds the bench corpus and enables the q-gram
// substring index on it.
func buildSubstringIndex(tb testing.TB) *core.Indexes {
	tb.Helper()
	xml, err := datagen.Generate("xmark1", *benchScale, 42)
	if err != nil {
		tb.Fatal(err)
	}
	doc, err := xmlparse.Parse(xml)
	if err != nil {
		tb.Fatal(err)
	}
	ix := core.Build(doc, core.DefaultOptions())
	ix.EnableSubstring()
	return ix
}

// buildAuctionDateIndex shreds the datagen auction dataset with the
// date index enabled (registry path only, no double/dateTime).
func buildAuctionDateIndex(tb testing.TB) *core.Indexes {
	tb.Helper()
	xml, err := datagen.Generate("xmark1", *benchScale, 42)
	if err != nil {
		tb.Fatal(err)
	}
	doc, err := xmlparse.Parse(xml)
	if err != nil {
		tb.Fatal(err)
	}
	return core.Build(doc, core.Options{Date: true})
}

// dateBenchWindow covers two generator years — a selective but non-empty
// slice of the auction site's date fields.
func dateBenchWindow() (lo, hi int64) {
	day := int64(24 * 3600)
	return time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC).Unix() / day,
		time.Date(2001, 12, 31, 0, 0, 0, 0, time.UTC).Unix() / day
}

// concurrentBenchDoc builds a flat document with one constant "needle"
// text node (the readers' point-lookup target) plus n storm nodes, all
// "g0", returned as the writer's update targets.
func concurrentBenchDoc(tb testing.TB, n int) (*core.Indexes, []xmltree.NodeID) {
	tb.Helper()
	var sb strings.Builder
	sb.WriteString("<r><k>needle</k>")
	for i := 0; i < n; i++ {
		sb.WriteString("<v>g0</v>")
	}
	sb.WriteString("</r>")
	doc, err := xmlparse.Parse([]byte(sb.String()))
	if err != nil {
		tb.Fatal(err)
	}
	ix := core.Build(doc, core.DefaultOptions())
	var texts []xmltree.NodeID
	d := ix.Doc()
	for i := 0; i < d.NumNodes(); i++ {
		nd := xmltree.NodeID(i)
		if d.Kind(nd) == xmltree.Text && d.Value(nd) != "needle" {
			texts = append(texts, nd)
		}
	}
	return ix, texts
}

// runConcurrentWindow storms whole-document text batches from one writer
// while 8 reader goroutines pin snapshots and run selective string
// lookups, for one wall-clock window. When lock is non-nil every read holds RLock and
// every commit holds Lock — reproducing the pre-MVCC global-RWMutex
// contract on top of the identical index — so the two arms differ only
// in synchronization. Returns total reads and commits completed.
func runConcurrentWindow(b *testing.B, ix *core.Indexes, nodes []xmltree.NodeID, window time.Duration, lock *sync.RWMutex) (int64, int64) {
	b.Helper()
	var stop atomic.Bool
	var reads atomic.Int64
	var wg sync.WaitGroup
	const readers = 8
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := int64(0)
			for !stop.Load() {
				if lock != nil {
					lock.RLock()
				}
				s := ix.Snapshot()
				if len(s.LookupString("needle")) == 0 {
					panic("lookup missed its own snapshot")
				}
				if lock != nil {
					lock.RUnlock()
				}
				n++
			}
			reads.Add(n)
		}()
	}
	commits := int64(0)
	batch := make([]core.TextUpdate, len(nodes))
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		commits++
		v := fmt.Sprintf("g%d", commits)
		for i, nd := range nodes {
			batch[i] = core.TextUpdate{Node: nd, Value: v}
		}
		if lock != nil {
			lock.Lock()
		}
		err := ix.UpdateTexts(batch)
		if lock != nil {
			lock.Unlock()
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	return reads.Load(), commits
}

// BenchmarkConcurrentQPS is the MVCC headline number: 8 readers doing
// string lookups while one writer storms whole-document update batches.
// The snapshot arm reads lock-free off published versions; the rwmutex
// arm wraps the identical operations in an external sync.RWMutex (the
// pre-MVCC contract), so every commit's clone+rebuild stalls all eight
// readers. Reported metrics: reads/s per arm and the speedup ratio
// (acceptance floor: 5x).
func BenchmarkConcurrentQPS(b *testing.B) {
	const window = 300 * time.Millisecond
	for i := 0; i < b.N; i++ {
		snapIx, snapNodes := concurrentBenchDoc(b, 3000)
		snapReads, snapCommits := runConcurrentWindow(b, snapIx, snapNodes, window, nil)

		lockIx, lockNodes := concurrentBenchDoc(b, 3000)
		var mu sync.RWMutex
		lockReads, lockCommits := runConcurrentWindow(b, lockIx, lockNodes, window, &mu)

		if i == 0 {
			secs := window.Seconds()
			b.ReportMetric(float64(snapReads)/secs, "snapshot_qps")
			b.ReportMetric(float64(lockReads)/secs, "rwmutex_qps")
			if lockReads > 0 {
				b.ReportMetric(float64(snapReads)/float64(lockReads), "speedup_x")
			}
			b.ReportMetric(float64(snapCommits)/secs, "snapshot_commits_s")
			b.ReportMetric(float64(lockCommits)/secs, "rwmutex_commits_s")
		}
	}
}
