package xmlvi

// Version tokens, pinned-snapshot reads, and the committed-change
// stream: the public surface the network server (cmd/xvid) builds on.
//
// Every committed mutation publishes a new MVCC version (see the
// concurrency section in doc.go); Version exposes the current sequence
// number as a commit-sequence token, Pin captures one version for a
// multi-read request, and OnCommit/RecoveredChanges expose the ordered
// stream of committed change records — the write-ahead log, viewed live.

import (
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/xpath"
)

// Version reports the document's current publication sequence number: 1
// for a freshly parsed document, +1 per committed mutation. For durable
// documents the sequence survives Save/Load and checkpoint/recovery, so
// a version number is a stable commit-sequence token: version v names
// the state after exactly v-1 commits since the document was first
// built. Tokens order commits (later commit ⇒ larger version) and are
// what the network protocol uses for read-your-writes and WATCH resume.
func (d *Document) Version() uint64 { return d.ix.Version() }

// ChangeKind tags the mutation a committed Change carries. The kinds
// mirror the write-ahead log's record kinds one-to-one.
type ChangeKind uint8

const (
	// ChangeTexts is a batch of text-node value updates — one commit,
	// and therefore one Change, per UpdateTexts call or transaction.
	ChangeTexts ChangeKind = iota + 1
	// ChangeAttr is a single attribute value update.
	ChangeAttr
	// ChangeDelete is a subtree deletion.
	ChangeDelete
	// ChangeInsert is a fragment insertion.
	ChangeInsert
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeTexts:
		return "texts"
	case ChangeAttr:
		return "attr"
	case ChangeDelete:
		return "delete"
	case ChangeInsert:
		return "insert"
	default:
		return "unknown"
	}
}

// Change is one committed mutation: the version it published, its kind,
// the number of logical operations it batched (text updates for
// ChangeTexts, 1 otherwise), and the canonical write-ahead-log payload
// encoding the mutation — the same bytes a WAL replay applies, usable
// for change shipping. A sequence of Changes with consecutive versions
// reconstructs every published state between its endpoints.
type Change struct {
	Version uint64
	Kind    ChangeKind
	Ops     int
	Payload []byte
}

// OnCommit installs fn as the document's commit observer (nil clears
// it); only one observer is supported. fn runs synchronously inside the
// committing call, after the new version is published, so it sees every
// commit exactly once in version order with no gaps — the property WATCH
// streams are built on. It must return quickly and must not call the
// document's mutating methods.
func (d *Document) OnCommit(fn func(Change)) {
	if fn == nil {
		d.ix.SetCommitHook(nil)
		return
	}
	d.ix.SetCommitHook(func(version uint64, kind storage.RecordKind, ops int, payload []byte) {
		fn(Change{Version: version, Kind: changeKindOf(kind), Ops: ops, Payload: payload})
	})
}

func changeKindOf(kind storage.RecordKind) ChangeKind {
	switch kind {
	case storage.RecTextBatch:
		return ChangeTexts
	case storage.RecAttrUpdate:
		return ChangeAttr
	case storage.RecDelete:
		return ChangeDelete
	case storage.RecInsert:
		return ChangeInsert
	default:
		return 0
	}
}

// RecoveredChanges returns the committed changes OpenDurable replayed
// from the write-ahead log's tail while recovering this document, with
// their versions: the commit stream between the snapshot's version and
// Version() at open. A server seeds its WATCH history from this so
// subscribers can resume across a restart without missing or duplicated
// records. Nil for documents that were not recovered (or had no tail).
func (d *Document) RecoveredChanges() []Change {
	tail := d.ix.RecoveredTail()
	if len(tail) == 0 {
		return nil
	}
	base := d.ix.Version() - uint64(len(tail))
	out := make([]Change, len(tail))
	for i, rec := range tail {
		out[i] = Change{
			Version: base + 1 + uint64(i),
			Kind:    changeKindOf(rec.Kind),
			Ops:     core.RecordOps(rec.Kind, rec.Payload),
			Payload: rec.Payload,
		}
	}
	return out
}

// Pinned is one pinned MVCC version of a Document: every read issued
// through it — however many, however long apart — observes the same
// published version, even while commits keep publishing newer ones.
// Obtain one with Pin. A Pinned is immutable, safe for concurrent use,
// and valid indefinitely; it is how a server gives each request one
// consistent snapshot (the reader-never-blocks guarantee, end to end).
type Pinned struct {
	snap    *core.Snapshot
	planner PlannerMode
}

// Pin captures the current published version for a sequence of reads.
func (d *Document) Pin() *Pinned {
	return &Pinned{snap: d.ix.Snapshot(), planner: d.planner}
}

// Version reports the pinned publication sequence number.
func (p *Pinned) Version() uint64 { return p.snap.Version() }

// Query evaluates an XPath expression against the pinned version; see
// Document.Query for the dialect and planner semantics.
func (p *Pinned) Query(expr string) ([]Result, error) {
	parsed, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	ps, _, err := plan.Run(p.snap, parsed, p.planner)
	if err != nil {
		return nil, err
	}
	return pinnedResults(ps, p.snap), nil
}

// Explain plans and executes an XPath expression against the pinned
// version, returning the results with the executed plan tree; see
// Document.Explain.
func (p *Pinned) Explain(expr string) ([]Result, *Explain, error) {
	parsed, err := xpath.Parse(expr)
	if err != nil {
		return nil, nil, err
	}
	ps, pl, err := plan.Run(p.snap, parsed, p.planner)
	if err != nil {
		return nil, nil, err
	}
	return pinnedResults(ps, p.snap), pl, nil
}

// StringValue returns a node's XDM string value at the pinned version.
func (p *Pinned) StringValue(n Node) string { return p.snap.Doc().StringValue(n) }

// NumNodes reports the number of tree nodes at the pinned version.
func (p *Pinned) NumNodes() int { return p.snap.Doc().NumNodes() }

// pinnedResults binds postings to the pinned version's document.
func pinnedResults(ps []core.Posting, snap *core.Snapshot) []Result {
	out := make([]Result, len(ps))
	for i, pp := range ps {
		out[i] = Result{Node: pp.Node, Attr: pp.Attr, IsAttr: pp.IsAttr, doc: snap.Doc()}
	}
	return out
}
