// Command xvibench runs the paper's evaluation (Section 6) and the
// ablation studies, printing each table and figure as aligned text next
// to the paper's reported shapes.
//
// Usage:
//
//	xvibench                         # everything at the default scale
//	xvibench -exp table1,fig11      # selected experiments
//	xvibench -scale 0.5 -repeat 3   # closer to paper size
//	xvibench -datasets xmark1,wiki
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

var allExperiments = []string{"table1", "fig9", "fig10", "fig11", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8"}

// expAliases are the per-panel selectors that map onto a whole figure.
var expAliases = []string{"fig9a", "fig9b", "fig9c", "fig9d", "fig10a", "fig10b"}

func main() {
	scale := flag.Float64("scale", 0.25, "dataset scale (1.0 ≈ 1/64 of the paper's node counts)")
	seed := flag.Int64("seed", 42, "generator seed")
	repeat := flag.Int("repeat", 3, "measurements averaged per point")
	parallel := flag.Int("parallel", 0, "index-build worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	expList := flag.String("exp", "all", "comma-separated experiments: "+strings.Join(allExperiments, ","))
	datasets := flag.String("datasets", "", "comma-separated dataset subset (default: all eight)")
	wal := flag.Bool("wal", false, "run the update experiments durably (write-ahead logging attached)")
	walSync := flag.Int("wal-sync", 64, "with -wal: fsync the log once every N records (1 = every record)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "with -wal: checkpoint after every N measured update batches (0 = never)")
	flag.Parse()

	// Validate every selector up front, before any experiment burns time:
	// a typo must be a usable error and a non-zero exit, never a silent
	// empty report (an unknown -exp used to print nothing and exit 0, and
	// an unknown dataset only failed once its first experiment ran).
	if *scale <= 0 {
		usageError(fmt.Sprintf("-scale must be positive, got %g", *scale))
	}
	if *parallel < 0 {
		usageError(fmt.Sprintf("-parallel must be >= 0 (0 = GOMAXPROCS, 1 = serial), got %d", *parallel))
	}
	if *checkpointEvery < 0 {
		usageError(fmt.Sprintf("-checkpoint-every must be >= 0, got %d", *checkpointEvery))
	}
	if !*wal && *checkpointEvery > 0 {
		usageError("-checkpoint-every requires -wal")
	}
	cfg := experiments.Config{
		Scale: *scale, Seed: *seed, Repeat: *repeat, Parallelism: *parallel,
		WAL: *wal, WALSyncEvery: *walSync, CheckpointEvery: *checkpointEvery,
	}
	if *datasets != "" {
		known := map[string]bool{}
		for _, d := range datagen.Names {
			known[d] = true
		}
		for _, d := range strings.Split(*datasets, ",") {
			d = strings.TrimSpace(d)
			if !known[d] {
				usageError(fmt.Sprintf("unknown dataset %q (known: %s)", d, strings.Join(datagen.Names, ", ")))
			}
			cfg.Datasets = append(cfg.Datasets, d)
		}
	}
	selected := map[string]bool{}
	if *expList == "all" {
		for _, e := range allExperiments {
			selected[e] = true
		}
	} else {
		known := map[string]bool{}
		for _, e := range append(append([]string{}, allExperiments...), expAliases...) {
			known[e] = true
		}
		for _, e := range strings.Split(*expList, ",") {
			e = strings.TrimSpace(e)
			if !known[e] {
				usageError(fmt.Sprintf("unknown experiment %q (known: %s; panels: %s)",
					e, strings.Join(allExperiments, ", "), strings.Join(expAliases, ", ")))
			}
			selected[e] = true
		}
	}
	out := os.Stdout

	if selected["table1"] {
		rows, err := experiments.RunTable1(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.ReportTable1(out, rows)
	}
	if selected["fig9"] || selected["fig9a"] || selected["fig9b"] || selected["fig9c"] || selected["fig9d"] {
		rows, err := experiments.RunFig9(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.ReportFig9(out, rows)
	}
	if selected["fig10"] || selected["fig10a"] || selected["fig10b"] {
		points, err := experiments.RunFig10(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.ReportFig10(out, points)
	}
	if selected["fig11"] {
		rows, sums, err := experiments.RunFig11(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.ReportFig11(out, rows, sums)
	}
	if selected["a1"] {
		var rows []experiments.A1Row
		for _, updates := range []int{10, 100, 1000} {
			row, err := experiments.RunA1(cfg, firstDataset(cfg), updates)
			if err != nil {
				fatal(err)
			}
			rows = append(rows, row)
		}
		experiments.ReportA1(out, rows)
	}
	if selected["a2"] {
		experiments.ReportA2(out, experiments.RunA2(cfg))
	}
	if selected["a3"] {
		rows, err := experiments.RunA3(cfg, firstDataset(cfg))
		if err != nil {
			fatal(err)
		}
		experiments.ReportA3(out, rows)
	}
	if selected["a4"] {
		row, err := experiments.RunA4(cfg, firstDataset(cfg))
		if err != nil {
			fatal(err)
		}
		experiments.ReportA4(out, []experiments.A4Row{row})
	}
	if selected["a5"] {
		row, err := experiments.RunA5(cfg, 8, 100)
		if err != nil {
			fatal(err)
		}
		experiments.ReportA5(out, row)
	}
	if selected["a6"] {
		rows, err := experiments.RunA6(cfg, plannerDataset(cfg), nil)
		if err != nil {
			fatal(err)
		}
		experiments.ReportA6(out, rows)
	}
	if selected["a7"] {
		rows, err := experiments.RunA7(cfg, plannerDataset(cfg))
		if err != nil {
			fatal(err)
		}
		experiments.ReportA7(out, rows)
	}
	if selected["a8"] {
		rows, err := experiments.RunA8(cfg, plannerDataset(cfg))
		if err != nil {
			fatal(err)
		}
		experiments.ReportA8(out, rows)
	}
	fmt.Fprintln(out)
}

func firstDataset(cfg experiments.Config) string {
	if len(cfg.Datasets) > 0 {
		return cfg.Datasets[0]
	}
	return "xmark1"
}

// plannerDataset picks the dataset for the planner ablations (A6/A7),
// whose query workloads are XMark-shaped: the first selected xmark
// variant, falling back to xmark1.
func plannerDataset(cfg experiments.Config) string {
	for _, d := range cfg.Datasets {
		if strings.HasPrefix(d, "xmark") {
			return d
		}
	}
	return "xmark1"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xvibench:", err)
	os.Exit(1)
}

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "xvibench:", msg)
	os.Exit(2)
}
