// Command xvid serves one or more indexed XML documents over the
// HTTP/JSON protocol in internal/server: POST /v1/query (XPath with
// optional explain), POST /v1/patch (a transactional update batch that
// commits as exactly one write-ahead-log record and returns the
// published version token), GET /v1/watch (a resumable server-sent-event
// stream of committed changes), GET /v1/stats, and GET /healthz.
//
// Each -doc flag serves one document under a name. The source after
// `name=` selects how it is opened:
//
//	auction=auction.xvi+auction.wal   durable: OpenDurable (snapshot + WAL)
//	auction=auction.xvi               snapshot only: Load (updates not logged)
//	auction=auction.xml               parse the XML file, in memory
//	auction=gen:xmark1:0.05           generate a dataset, in memory
//
// Usage:
//
//	xvid -listen :8080 -doc auction=auction.xvi+auction.wal
//	xvid -doc a=gen:xmark1:0.02 -doc b=catalog.xml -planner auto
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	xmlvi "repro"
	"repro/internal/datagen"
	"repro/internal/server"
)

// docFlags collects repeated -doc name=source flags.
type docFlags []string

func (f *docFlags) String() string     { return strings.Join(*f, ", ") }
func (f *docFlags) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var docs docFlags
	flag.Var(&docs, "doc", "serve a document: name=snap.xvi+wal.log | name=snap.xvi | name=file.xml | name=gen:dataset:scale (repeatable)")
	listen := flag.String("listen", "127.0.0.1:8080", "address to serve on")
	planner := flag.String("planner", "auto", "query planning mode: auto, legacy, scan, index")
	retention := flag.Int("watch-retention", server.DefaultWatchRetention, "committed changes buffered per document for WATCH resume")
	flag.Parse()
	if len(docs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: xvid -listen addr -doc name=source [-doc name=source ...]")
		os.Exit(2)
	}
	mode, err := xmlvi.ParsePlannerMode(*planner)
	if err != nil {
		fatal(err)
	}

	srv := server.New(server.Config{WatchRetention: *retention})
	for _, spec := range docs {
		name, doc, err := openDoc(spec)
		if err != nil {
			fatal(err)
		}
		doc.SetPlanner(mode)
		if err := srv.AddDocument(name, doc); err != nil {
			fatal(err)
		}
		fmt.Printf("xvid: serving %q (%d nodes, version %d, durable=%v)\n",
			name, doc.NumNodes(), doc.Version(), doc.Durable())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	fmt.Printf("xvid: listening on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Fprintln(os.Stderr, "xvid: shutting down")
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx) //nolint:errcheck // best-effort drain
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

// openDoc opens one -doc spec.
func openDoc(spec string) (string, *xmlvi.Document, error) {
	name, source, ok := strings.Cut(spec, "=")
	if !ok || name == "" || source == "" {
		return "", nil, fmt.Errorf("xvid: -doc wants name=source, got %q", spec)
	}
	switch {
	case strings.Contains(source, "+"):
		snap, wal, _ := strings.Cut(source, "+")
		doc, err := xmlvi.OpenDurable(snap, wal)
		return name, doc, err
	case strings.HasPrefix(source, "gen:"):
		doc, err := generate(strings.TrimPrefix(source, "gen:"))
		return name, doc, err
	case strings.HasSuffix(source, ".xml"):
		raw, err := os.ReadFile(source)
		if err != nil {
			return "", nil, err
		}
		doc, err := xmlvi.ParseWithOptions(raw, xmlvi.Options{StripWhitespace: true})
		return name, doc, err
	default:
		doc, err := xmlvi.Load(source)
		return name, doc, err
	}
}

// generate builds an in-memory document from a dataset spec
// "dataset[:scale[:seed]]", e.g. "xmark1:0.05".
func generate(spec string) (*xmlvi.Document, error) {
	parts := strings.Split(spec, ":")
	scale, seed := 0.05, int64(42)
	if len(parts) >= 2 {
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("xvid: bad gen scale %q: %w", parts[1], err)
		}
		scale = v
	}
	if len(parts) >= 3 {
		v, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("xvid: bad gen seed %q: %w", parts[2], err)
		}
		seed = v
	}
	raw, err := datagen.Generate(parts[0], scale, seed)
	if err != nil {
		return nil, err
	}
	return xmlvi.ParseWithOptions(raw, xmlvi.Options{StripWhitespace: true})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xvid:", err)
	os.Exit(1)
}
