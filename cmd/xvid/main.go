// Command xvid serves one or more indexed XML documents over the
// HTTP/JSON protocol in internal/server: POST /v1/query (XPath with
// optional explain, ?version=N point-in-time reads), POST /v1/patch (a
// transactional update batch that commits as exactly one write-ahead-log
// record and returns the published version token), GET /v1/watch (a
// resumable server-sent-event stream of committed changes, ?payload=1
// for log shipping), GET /v1/snapshot (a seed snapshot of the current
// version), GET /v1/stats, and GET /healthz.
//
// Each -doc flag serves one document under a name. The source after
// `name=` selects how it is opened:
//
//	auction=auction.xvi+auction.wal   durable: OpenDurable (snapshot + WAL)
//	auction=auction.xvi               snapshot only: Load (updates not logged)
//	auction=auction.xml               parse the XML file, in memory
//	auction=gen:xmark1:0.05           generate a dataset, in memory
//
// With -follow the process is a follower replica instead: it seeds
// itself from the leader, subscribes to its WATCH stream with shipped
// WAL payloads, applies every committed record at the matching version
// boundary, and serves the same read API (queries report replication
// lag; patches are rejected with read_only). -state makes the follower
// durable — it keeps its own snapshot/WAL pair per document and resumes
// from it across restarts.
//
// Usage:
//
//	xvid -listen :8080 -doc auction=auction.xvi+auction.wal
//	xvid -doc a=gen:xmark1:0.02 -doc b=catalog.xml -planner auto
//	xvid -listen :8081 -follow http://leader:8080 -state /var/lib/xvid
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	xmlvi "repro"
	"repro/internal/datagen"
	"repro/internal/replica"
	"repro/internal/server"
)

// docFlags collects repeated -doc name=source flags.
type docFlags []string

func (f *docFlags) String() string     { return strings.Join(*f, ", ") }
func (f *docFlags) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var docs docFlags
	flag.Var(&docs, "doc", "serve a document: name=snap.xvi+wal.log | name=snap.xvi | name=file.xml | name=gen:dataset:scale (repeatable); with -follow, names a leader document to follow")
	listen := flag.String("listen", "127.0.0.1:8080", "address to serve on")
	planner := flag.String("planner", "auto", "query planning mode: auto, legacy, scan, index")
	substring := flag.Bool("substring", false, "enable the q-gram substring index on served documents (contains()/starts-with() answer through the planner)")
	retention := flag.Int("watch-retention", server.DefaultWatchRetention, "committed changes buffered per document for WATCH resume")
	follow := flag.String("follow", "", "follow a leader server at this base URL (serve read-only replicas of its documents)")
	stateDir := flag.String("state", "", "with -follow: directory for durable follower state (one snapshot+WAL pair per document)")
	syncEvery := flag.Int("wal-sync-every", 0, "with -follow -state: batch follower log fsyncs (0 = every record)")
	flag.Parse()
	if len(docs) == 0 && *follow == "" {
		fmt.Fprintln(os.Stderr, "usage: xvid -listen addr -doc name=source [-doc name=source ...]\n       xvid -listen addr -follow http://leader:port [-state dir] [-doc name ...]")
		os.Exit(2)
	}
	mode, err := xmlvi.ParsePlannerMode(*planner)
	if err != nil {
		fatal(err)
	}

	srv := server.New(server.Config{WatchRetention: *retention})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var followers sync.WaitGroup

	if *follow != "" {
		if err := startFollowers(ctx, &followers, srv, *follow, docs, *stateDir, *syncEvery); err != nil {
			fatal(err)
		}
	} else {
		for _, spec := range docs {
			name, doc, opts, err := openDoc(spec)
			if err != nil {
				fatal(err)
			}
			doc.SetPlanner(mode)
			if *substring {
				doc.EnableSubstringIndex()
			}
			if err := srv.AddDocumentWithOptions(name, doc, opts); err != nil {
				fatal(err)
			}
			fmt.Printf("xvid: serving %q (%d nodes, version %d, durable=%v)\n",
				name, doc.NumNodes(), doc.Version(), doc.Durable())
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	fmt.Printf("xvid: listening on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Fprintln(os.Stderr, "xvid: shutting down")
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutdownCancel()
	httpSrv.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain
	cancel()                      // stop follower subscriptions (each closes its document)
	followers.Wait()
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

// startFollowers registers one follower replica per leader document —
// the -doc names when given, every document the leader serves otherwise
// — and starts their subscription loops.
func startFollowers(ctx context.Context, wg *sync.WaitGroup, srv *server.Server,
	leaderURL string, docs docFlags, stateDir string, syncEvery int) error {
	names := make([]string, 0, len(docs))
	for _, spec := range docs {
		// Accept bare names; tolerate name=anything for symmetry.
		name, _, _ := strings.Cut(spec, "=")
		names = append(names, name)
	}
	if len(names) == 0 {
		discovered, err := leaderDocs(leaderURL)
		if err != nil {
			return fmt.Errorf("xvid: discover leader documents: %w", err)
		}
		names = discovered
	}
	for _, name := range names {
		cfg := replica.Config{
			LeaderURL: leaderURL,
			Doc:       name,
			SyncEvery: syncEvery,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "xvid: "+format+"\n", args...)
			},
		}
		if stateDir != "" {
			cfg.StateDir = filepath.Join(stateDir, name)
			if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
				return err
			}
		}
		f := replica.New(cfg)
		if err := f.Open(ctx); err != nil {
			return err
		}
		if err := srv.AddFollower(name, f); err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Run(ctx) //nolint:errcheck // Run only returns on ctx cancel
		}()
		doc := f.Document()
		fmt.Printf("xvid: following %q from %s (version %d, durable=%v)\n",
			name, leaderURL, doc.Version(), doc.Durable())
	}
	return nil
}

// leaderDocs enumerates the documents a leader serves via /v1/stats.
func leaderDocs(leaderURL string) ([]string, error) {
	resp, err := http.Get(strings.TrimRight(leaderURL, "/") + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("leader answered %s", resp.Status)
	}
	var stats struct {
		Docs map[string]json.RawMessage `json:"docs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, err
	}
	if len(stats.Docs) == 0 {
		return nil, errors.New("leader serves no documents")
	}
	names := make([]string, 0, len(stats.Docs))
	for name := range stats.Docs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// openDoc opens one -doc spec. For durable sources the returned options
// name the snapshot/WAL pair, enabling point-in-time queries.
func openDoc(spec string) (string, *xmlvi.Document, server.DocOptions, error) {
	name, source, ok := strings.Cut(spec, "=")
	if !ok || name == "" || source == "" {
		return "", nil, server.DocOptions{}, fmt.Errorf("xvid: -doc wants name=source, got %q", spec)
	}
	switch {
	case strings.Contains(source, "+"):
		snap, wal, _ := strings.Cut(source, "+")
		doc, err := xmlvi.OpenDurable(snap, wal)
		return name, doc, server.DocOptions{SnapshotPath: snap, WALPath: wal}, err
	case strings.HasPrefix(source, "gen:"):
		doc, err := generate(strings.TrimPrefix(source, "gen:"))
		return name, doc, server.DocOptions{}, err
	case strings.HasSuffix(source, ".xml"):
		raw, err := os.ReadFile(source)
		if err != nil {
			return "", nil, server.DocOptions{}, err
		}
		doc, err := xmlvi.ParseWithOptions(raw, xmlvi.Options{StripWhitespace: true})
		return name, doc, server.DocOptions{}, err
	default:
		doc, err := xmlvi.Load(source)
		return name, doc, server.DocOptions{}, err
	}
}

// generate builds an in-memory document from a dataset spec
// "dataset[:scale[:seed]]", e.g. "xmark1:0.05".
func generate(spec string) (*xmlvi.Document, error) {
	parts := strings.Split(spec, ":")
	scale, seed := 0.05, int64(42)
	if len(parts) >= 2 {
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("xvid: bad gen scale %q: %w", parts[1], err)
		}
		scale = v
	}
	if len(parts) >= 3 {
		v, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("xvid: bad gen seed %q: %w", parts[2], err)
		}
		seed = v
	}
	raw, err := datagen.Generate(parts[0], scale, seed)
	if err != nil {
		return nil, err
	}
	return xmlvi.ParseWithOptions(raw, xmlvi.Options{StripWhitespace: true})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xvid:", err)
	os.Exit(1)
}
