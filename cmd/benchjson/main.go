// Command benchjson converts `go test -bench` output into a stable JSON
// document (the BENCH_*.json artifacts CI archives per run, seeding the
// performance trajectory across PRs) or, with -summary, into a Markdown
// digest for the CI job summary, including the serial-vs-parallel build
// comparison when both BenchmarkBuild sub-benchmarks are present.
//
// With -compare, the summary additionally diffs the run against a
// committed baseline artifact (a previous PR's BENCH_*.json) and posts a
// regression table over the tracked metrics — ns/op, allocs/op (from
// -benchmem), and bytes_per_node (the packed-layout footprint) —
// flagging any that regressed by more than 20%.
//
// Usage:
//
//	go test -bench . -benchtime 1x | benchjson > BENCH_PR.json
//	benchjson -summary < bench.txt >> "$GITHUB_STEP_SUMMARY"
//	benchjson -summary -compare BENCH_PR7.json < bench.txt >> "$GITHUB_STEP_SUMMARY"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line: its name (GOMAXPROCS suffix
// stripped into Procs), iteration count, and every reported metric —
// ns/op, B/op, allocs/op, and the custom b.ReportMetric units.
type Benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole parsed bench run.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	summary := flag.Bool("summary", false, "emit a Markdown summary instead of JSON")
	compare := flag.String("compare", "", "baseline BENCH_*.json to diff the run against (requires -summary)")
	flag.Parse()
	if *compare != "" && !*summary {
		fmt.Fprintln(os.Stderr, "benchjson: -compare requires -summary")
		os.Exit(2)
	}

	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	if *summary {
		writeSummary(os.Stdout, report)
		if *compare != "" {
			baseline, err := loadReport(*compare)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			writeComparison(os.Stdout, report, baseline, *compare)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Report, error) {
	report := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			report.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	return report, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkBuild/p4-8   1   1165136 ns/op   42.0 speedup_x
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// splitProcs strips the -GOMAXPROCS suffix go test appends when procs
// is not 1 (a plain name means procs = 1).
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 1
	}
	return name[:i], procs
}

func writeSummary(w io.Writer, report *Report) {
	fmt.Fprintf(w, "## Benchmarks (%s/%s", report.GoOS, report.GoArch)
	if report.CPU != "" {
		fmt.Fprintf(w, ", %s", report.CPU)
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| benchmark | iterations | ns/op | other metrics |")
	fmt.Fprintln(w, "|---|---:|---:|---|")
	for _, b := range report.Benchmarks {
		extras := make([]string, 0, len(b.Metrics))
		for unit, v := range b.Metrics {
			if unit == "ns/op" {
				continue
			}
			extras = append(extras, fmt.Sprintf("%g %s", v, unit))
		}
		sort.Strings(extras)
		fmt.Fprintf(w, "| %s | %d | %.0f | %s |\n",
			b.Name, b.Iterations, b.Metrics["ns/op"], strings.Join(extras, ", "))
	}
	fmt.Fprintln(w)
	if p1, p4 := buildNS(report, "p1"), buildNS(report, "p4"); p1 > 0 && p4 > 0 {
		fmt.Fprintf(w, "**Parallel index build:** Parallelism=1 %.2fms vs Parallelism=4 %.2fms → **%.2fx speedup**\n",
			p1/1e6, p4/1e6, p1/p4)
	}
	if legacy, planner := metricOf(report, "BenchmarkQueryPlannerConjunctive", "legacy_ms"),
		metricOf(report, "BenchmarkQueryPlannerConjunctive", "planner_ms"); legacy > 0 && planner > 0 {
		fmt.Fprintf(w, "**Query planner (conjunctive):** legacy heuristic %.3fms vs cost-based planner %.3fms → **%.2fx speedup**\n",
			legacy, planner, legacy/planner)
	}
	if loScan, loIdx := metricOf(report, "BenchmarkQueryPlannerCrossover", "lo_scan_ms"),
		metricOf(report, "BenchmarkQueryPlannerCrossover", "lo_index_ms"); loScan > 0 && loIdx > 0 {
		fmt.Fprintf(w, "**Scan/index crossover:** low selectivity scan %.3fms vs index %.3fms",
			loScan, loIdx)
		if hiScan, hiIdx := metricOf(report, "BenchmarkQueryPlannerCrossover", "hi_scan_ms"),
			metricOf(report, "BenchmarkQueryPlannerCrossover", "hi_index_ms"); hiScan > 0 && hiIdx > 0 {
			fmt.Fprintf(w, "; high selectivity scan %.3fms vs index %.3fms", hiScan, hiIdx)
		}
		fmt.Fprintln(w)
	}
	if bpn := metricOf(report, "BenchmarkMemFootprint", "bytes_per_node"); bpn > 0 {
		if unpacked := metricOf(report, "BenchmarkMemFootprint", "unpacked_bytes_per_node"); unpacked > 0 {
			fmt.Fprintf(w, "**Memory footprint:** packed layout %.1f bytes/node vs %.1f unpacked → **%.0f%% smaller**\n",
				bpn, unpacked, (1-bpn/unpacked)*100)
		} else {
			fmt.Fprintf(w, "**Memory footprint:** %.1f bytes/node\n", bpn)
		}
	}
	if speedup := metricOf(report, "BenchmarkSubstring/indexed", "speedup_x"); speedup > 0 {
		fmt.Fprintf(w, "**Substring vs scan:** contains() through the q-gram index vs full document scan → **%.1fx speedup**\n",
			speedup)
	}
	if rw, snap := metricOf(report, "BenchmarkConcurrentQPS", "rwmutex_qps"),
		metricOf(report, "BenchmarkConcurrentQPS", "snapshot_qps"); rw > 0 && snap > 0 {
		fmt.Fprintf(w, "**Concurrent reads (8 readers + update storm):** RWMutex %.0f reads/s vs MVCC snapshots %.0f reads/s → **%.0fx speedup**\n",
			rw, snap, snap/rw)
	}
	if qps := metricOf(report, "BenchmarkServeTraffic", "qps"); qps > 0 {
		fmt.Fprintf(w, "**Served traffic (xviload vs xvid):** %.0f QPS — read p50 %.2fms / p99 %.2fms, patch p50 %.2fms / p99 %.2fms, %.0f watch events, %.0f errors\n",
			qps,
			metricOf(report, "BenchmarkServeTraffic", "read_p50_ms"),
			metricOf(report, "BenchmarkServeTraffic", "read_p99_ms"),
			metricOf(report, "BenchmarkServeTraffic", "patch_p50_ms"),
			metricOf(report, "BenchmarkServeTraffic", "patch_p99_ms"),
			metricOf(report, "BenchmarkServeTraffic", "watch_events"),
			metricOf(report, "BenchmarkServeTraffic", "errors"))
	}
	if qps := metricOf(report, "BenchmarkReplicaTraffic", "qps"); qps > 0 {
		fmt.Fprintf(w, "**Replicated traffic (leader + follower):** %.0f QPS — replica lag p50 %.2fms / p99 %.2fms (patch on leader → visible on follower), read p50 %.2fms / p99 %.2fms, %.0f watch events, %.0f errors\n",
			qps,
			metricOf(report, "BenchmarkReplicaTraffic", "lag_p50_ms"),
			metricOf(report, "BenchmarkReplicaTraffic", "lag_p99_ms"),
			metricOf(report, "BenchmarkReplicaTraffic", "read_p50_ms"),
			metricOf(report, "BenchmarkReplicaTraffic", "read_p99_ms"),
			metricOf(report, "BenchmarkReplicaTraffic", "watch_events"),
			metricOf(report, "BenchmarkReplicaTraffic", "errors"))
	}
}

// loadReport reads a previously archived BENCH_*.json artifact.
func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// regressionThreshold is the slowdown/growth ratio a tracked metric may
// drift before the comparison flags it. Benchmarks in CI runners are
// noisy; 20% separates drift from damage.
const regressionThreshold = 1.20

// trackedMetrics are the regression-gated metrics, in display order:
// latency, allocation count (from -benchmem), and the packed-layout
// footprint. B/op tracks allocs/op closely enough that gating both
// would only double the noise. More-is-worse holds for all three.
var trackedMetrics = []string{"ns/op", "allocs/op", "bytes_per_node"}

// writeComparison appends a delta table of the run against a baseline
// artifact, flagging every tracked metric that regressed beyond the
// threshold. Benchmarks present on only one side are listed but not
// flagged (new or retired, not regressed).
func writeComparison(w io.Writer, cur, base *Report, baseName string) {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "### vs baseline %s\n", baseName)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| benchmark | metric | baseline | current | delta |")
	fmt.Fprintln(w, "|---|---|---:|---:|---:|")
	flagged := 0
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		seen[b.Name] = true
		prevBench, known := baseBy[b.Name]
		if !known {
			fmt.Fprintf(w, "| %s | ns/op | — | %.0f | new |\n", b.Name, b.Metrics["ns/op"])
			continue
		}
		for _, metric := range trackedMetrics {
			curV := b.Metrics[metric]
			if curV <= 0 {
				continue
			}
			prev := prevBench.Metrics[metric]
			if prev <= 0 {
				// The metric is newly reported (e.g. allocs/op before
				// -benchmem, bytes_per_node before the packed layout):
				// it seeds the trajectory, nothing to diff yet.
				fmt.Fprintf(w, "| %s | %s | — | %.1f | new |\n", b.Name, metric, curV)
				continue
			}
			delta := (curV - prev) / prev * 100
			mark := ""
			if curV > prev*regressionThreshold {
				mark = " ⚠️ regression"
				flagged++
			}
			fmt.Fprintf(w, "| %s | %s | %.1f | %.1f | %+.1f%%%s |\n", b.Name, metric, prev, curV, delta, mark)
		}
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "| %s | ns/op | %.0f | — | retired |\n", b.Name, b.Metrics["ns/op"])
		}
	}
	fmt.Fprintln(w)
	if flagged > 0 {
		fmt.Fprintf(w, "**⚠️ %d metric(s) regressed by more than %.0f%% against the baseline.**\n",
			flagged, (regressionThreshold-1)*100)
	} else {
		fmt.Fprintf(w, "No tracked metric regressed by more than %.0f%% against the baseline.\n",
			(regressionThreshold-1)*100)
	}
}

// metricOf returns one named metric of one benchmark, or 0 when absent.
func metricOf(report *Report, bench, unit string) float64 {
	for _, b := range report.Benchmarks {
		if b.Name == bench {
			return b.Metrics[unit]
		}
	}
	return 0
}

// buildNS returns BenchmarkBuild/<sub>'s ns/op, or 0 when absent.
func buildNS(report *Report, sub string) float64 {
	for _, b := range report.Benchmarks {
		if b.Name == "BenchmarkBuild/"+sub {
			return b.Metrics["ns/op"]
		}
	}
	return 0
}
