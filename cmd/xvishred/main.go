// Command xvishred shreds an XML file into an indexed, persistent
// database snapshot: the document columns plus the string index and the
// registered typed range indices (double, dateTime, date).
//
// Usage:
//
//	xvishred -in doc.xml -out doc.xvi
//	xvishred -in doc.xml -out doc.xvi -strip-ws -no-datetime
//	xvishred -in doc.xml -out doc.xvi -wal doc.wal   # durable: reopen with OpenDurable
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	xmlvi "repro"
)

func main() {
	in := flag.String("in", "", "input XML file (required)")
	out := flag.String("out", "", "output snapshot file (required)")
	stripWS := flag.Bool("strip-ws", false, "drop whitespace-only text nodes")
	noString := flag.Bool("no-string", false, "skip the string equi-index")
	noDouble := flag.Bool("no-double", false, "skip the double range index")
	noDateTime := flag.Bool("no-datetime", false, "skip the dateTime range index")
	noDate := flag.Bool("no-date", false, "skip the date range index")
	parallel := flag.Int("parallel", 0, "index-build worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	wal := flag.String("wal", "", "write-ahead log path: the snapshot becomes a durable database (see OpenDurable)")
	walSync := flag.Int("wal-sync", 1, "fsync the WAL once every N records (with -wal; 1 = every record)")
	quiet := flag.Bool("q", false, "suppress statistics output")
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *parallel < 0 {
		fatal(fmt.Errorf("-parallel must be >= 0 (0 = GOMAXPROCS, 1 = serial), got %d", *parallel))
	}

	xml, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	opts := xmlvi.Options{
		String:          !*noString,
		Double:          !*noDouble,
		DateTime:        !*noDateTime,
		Date:            !*noDate,
		StripWhitespace: *stripWS,
		Parallelism:     *parallel,
		WAL:             *wal,
		WALSyncEvery:    *walSync,
	}
	if !opts.String && !opts.Double && !opts.DateTime && !opts.Date {
		fatal(fmt.Errorf("at least one index must be enabled"))
	}
	start := time.Now()
	doc, err := xmlvi.ParseWithOptions(xml, opts)
	if err != nil {
		fatal(err)
	}
	buildTime := time.Since(start)

	start = time.Now()
	if err := doc.Save(*out); err != nil {
		fatal(err)
	}
	saveTime := time.Since(start)

	if !*quiet {
		s := doc.Stats()
		fmt.Printf("shredded %s (%d bytes) in %v, saved in %v\n", *in, len(xml), buildTime.Round(time.Millisecond), saveTime.Round(time.Millisecond))
		fmt.Printf("  nodes: %d (elements %d, texts %d, attributes %d)\n", s.Nodes, s.Elements, s.Texts, s.Attrs)
		fmt.Printf("  string index: %d postings\n", s.StringEntries)
		fmt.Printf("  double index: %d values (%d from mixed content), %d live states\n", s.DoubleCastable, s.DoubleNonLeaf, s.DoubleLive)
		fmt.Printf("  dateTime index: %d values\n", s.DateTimeCastable)
		fmt.Printf("  date index: %d values\n", s.DateCastable)
		if *wal != "" {
			fmt.Printf("  durable: WAL at %s (fsync every %d records); reopen with OpenDurable\n", *wal, *walSync)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xvishred:", err)
	os.Exit(1)
}
