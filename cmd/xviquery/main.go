// Command xviquery runs XPath queries against a snapshot produced by
// xvishred, through the cost-based query planner (or a full scan with
// -scan, for comparison).
//
// Usage:
//
//	xviquery -db doc.xvi '//person[.//age = 42]'
//	xviquery -db doc.xvi -scan -t '//item[price > 100]'
//	xviquery -db doc.xvi -explain '//item[quantity = 7 and location = "Oslo"]'
//	xviquery -db doc.xvi -planner legacy -t '//item[quantity = 7]'
//	xviquery -db doc.xvi -substring -explain '//person[contains(name/text(), "rthu")]'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	xmlvi "repro"
)

func main() {
	db := flag.String("db", "", "snapshot file from xvishred (required)")
	scan := flag.Bool("scan", false, "evaluate without indices (baseline)")
	contains := flag.Bool("contains", false, "treat the argument as a substring pattern (q-gram index)")
	substring := flag.Bool("substring", false, "enable the q-gram substring index so contains()/starts-with() predicates answer through it")
	explain := flag.Bool("explain", false, "print the executed plan tree (estimated vs actual cardinalities)")
	planner := flag.String("planner", "auto", "query planning mode: auto, legacy, scan, index")
	timing := flag.Bool("t", false, "print evaluation time")
	limit := flag.Int("limit", 20, "maximum results to print (0 = all)")
	flag.Parse()
	if *db == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xviquery -db file.xvi [-scan|-contains] [-explain] [-planner mode] [-t] 'xpath expression or pattern'")
		os.Exit(2)
	}
	expr := flag.Arg(0)

	mode, err := xmlvi.ParsePlannerMode(*planner)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xviquery:", err)
		os.Exit(2)
	}
	doc, err := xmlvi.Load(*db)
	if err != nil {
		fatal(err)
	}
	doc.SetPlanner(mode)
	if *substring {
		doc.EnableSubstringIndex()
	}
	start := time.Now()
	var results []xmlvi.Result
	var plan *xmlvi.Explain
	switch {
	case *contains:
		if !*scan {
			doc.EnableSubstringIndex()
			start = time.Now() // the one-time index build is not query time
		}
		results = doc.Contains(expr)
	case *scan:
		results, err = doc.QueryScan(expr)
	case *explain:
		results, plan, err = doc.Explain(expr)
	default:
		results, err = doc.Query(expr)
	}
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}
	if plan != nil {
		fmt.Print(plan.String())
	}

	for i, r := range results {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... and %d more\n", len(results)-i)
			break
		}
		v := r.Value()
		if len(v) > 60 {
			v = v[:57] + "..."
		}
		fmt.Printf("%s = %q%s\n", r.Path(), v, typedColumn(doc, r))
	}
	fmt.Printf("%d result(s)\n", len(results))
	if *timing {
		mode := "indexed"
		if *scan {
			mode = "scan"
		}
		if *contains {
			mode = "substring " + mode
		}
		fmt.Printf("evaluated (%s) in %v\n", mode, elapsed)
	}
}

// typedColumn annotates a hit with its typed readings: the xs:date value
// when the node casts as a date (attributes are not annotated — the
// typed accessors are node-based).
func typedColumn(doc *xmlvi.Document, r xmlvi.Result) string {
	if r.IsAttr {
		return ""
	}
	if d, ok := doc.DateValue(r.Node); ok {
		return "  [xs:date " + d.Format("2006-01-02") + "]"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xviquery:", err)
	os.Exit(1)
}
