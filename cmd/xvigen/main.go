// Command xvigen generates the synthetic evaluation datasets (Table 1
// stand-ins) as XML files.
//
// Usage:
//
//	xvigen -dataset xmark1 -scale 0.5 -seed 42 -o xmark1.xml
//	xvigen -all -scale 0.25 -dir ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
)

func main() {
	dataset := flag.String("dataset", "xmark1", fmt.Sprintf("dataset to generate %v", datagen.Names))
	scale := flag.Float64("scale", 0.25, "size scale (1.0 ≈ 1/64 of the paper's node count)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default: stdout)")
	all := flag.Bool("all", false, "generate every dataset into -dir")
	dir := flag.String("dir", ".", "output directory for -all")
	flag.Parse()

	if *all {
		for _, name := range datagen.Names {
			path := filepath.Join(*dir, name+".xml")
			if err := generate(name, *scale, *seed, path); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		return
	}
	if err := generate(*dataset, *scale, *seed, *out); err != nil {
		fatal(err)
	}
}

func generate(name string, scale float64, seed int64, path string) error {
	xml, err := datagen.Generate(name, scale, seed)
	if err != nil {
		return err
	}
	if path == "" {
		_, err = os.Stdout.Write(xml)
		return err
	}
	return os.WriteFile(path, xml, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xvigen:", err)
	os.Exit(1)
}
