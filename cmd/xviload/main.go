// Command xviload drives mixed read/write/watch traffic against a
// running xvid server and reports throughput and latency percentiles in
// `go test -bench` output format, so the result pipes straight through
// benchjson into the CI benchmark artifacts:
//
//	xviload -addr http://127.0.0.1:8080 -duration 10s | benchjson
//
// The generated load is readers issuing XPath queries, writers issuing
// set_text patch batches against nodes discovered by an initial query,
// and watchers tailing the committed-change stream. Watchers verify the
// protocol's ordering contract while they consume: every change event
// must carry exactly the previous version + 1 — a gap, duplicate, or
// reordering counts as an error and fails the run.
//
// Usage:
//
//	xviload -addr http://127.0.0.1:8080 -readers 8 -writers 1 -watchers 2 -duration 10s
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type config struct {
	addr     string
	follower string
	doc      string
	duration time.Duration
	readers  int
	writers  int
	watchers int
	queries  []string
	writeQ   string
	batch    int
	bench    string
}

// readAddr is where reads, watches, and the lag probe go: the follower
// when one is configured, the (leader) addr otherwise. Writes and
// write-target discovery always go to the leader.
func (c config) readAddr() string {
	if c.follower != "" {
		return c.follower
	}
	return c.addr
}

// collector accumulates latencies and errors across workers.
type collector struct {
	mu          sync.Mutex
	readNS      []float64
	patchNS     []float64
	lagNS       []float64
	errs        []string
	watchEvents int
	// violations counts ordering-contract breaches observed by watchers
	// (gap, duplicate, or reordering) — tracked apart from errs so a
	// violation can never be masked, and reported with its own exit code.
	violations int
}

func (c *collector) read(d time.Duration) {
	c.mu.Lock()
	c.readNS = append(c.readNS, float64(d))
	c.mu.Unlock()
}
func (c *collector) patch(d time.Duration) {
	c.mu.Lock()
	c.patchNS = append(c.patchNS, float64(d))
	c.mu.Unlock()
}
func (c *collector) event() { c.mu.Lock(); c.watchEvents++; c.mu.Unlock() }

func (c *collector) lag(d time.Duration) {
	c.mu.Lock()
	c.lagNS = append(c.lagNS, float64(d))
	c.mu.Unlock()
}

func (c *collector) violation(format string, args ...any) {
	c.mu.Lock()
	c.violations++
	c.mu.Unlock()
	c.errorf(format, args...)
}

func (c *collector) errorf(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) < 20 { // keep the report readable
		c.errs = append(c.errs, fmt.Sprintf(format, args...))
	} else {
		c.errs[19] = "... more errors suppressed"
	}
}

func main() {
	cfg := config{}
	var queries string
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "xvid base URL (the leader: all patches go here)")
	flag.StringVar(&cfg.follower, "follower", "", "follower replica base URL: reads and watches go here, and a lag probe measures patch-to-follower-visible latency")
	flag.StringVar(&cfg.doc, "doc", "", "document name (optional with a single served document)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to drive traffic")
	flag.IntVar(&cfg.readers, "readers", 8, "concurrent query workers")
	flag.IntVar(&cfg.writers, "writers", 1, "concurrent patch workers")
	flag.IntVar(&cfg.watchers, "watchers", 2, "concurrent WATCH streams")
	flag.StringVar(&queries, "queries", `//item[quantity = 7];//open_auction[initial > 4950];//quantity[. = 3];//person[contains(emailaddress/text(), "mailto:a")];//person[starts-with(@id, "person12")]`, "read queries, ';'-separated (text predicates answer through the substring index when the server enables it)")
	flag.StringVar(&cfg.writeQ, "write-query", `//quantity[. = 3]`, "query discovering set_text targets (elements with one text child)")
	flag.IntVar(&cfg.batch, "batch", 8, "set_text ops per patch (one commit each)")
	flag.StringVar(&cfg.bench, "bench", "BenchmarkServeTraffic", "benchmark name to report as")
	flag.Parse()
	cfg.queries = strings.Split(queries, ";")

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: cfg.readers + cfg.writers + cfg.watchers + 2,
	}}
	col := &collector{}

	// Health check and write-target discovery happen before the clock
	// starts; a server that is not up is a usage error, not a result.
	if err := waitHealthy(client, cfg.addr, 5*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "xviload:", err)
		os.Exit(2)
	}
	if cfg.follower != "" {
		if err := waitHealthy(client, cfg.follower, 5*time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "xviload:", err)
			os.Exit(2)
		}
	}
	targets, err := discoverTargets(client, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xviload:", err)
		os.Exit(2)
	}
	if cfg.writers > 0 && len(targets) == 0 {
		fmt.Fprintf(os.Stderr, "xviload: write query %q matched nothing; use -write-query\n", cfg.writeQ)
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.watchers; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); watchWorker(ctx, client, cfg, col) }()
	}
	for i := 0; i < cfg.readers; i++ {
		wg.Add(1)
		go func(id int) { defer wg.Done(); readWorker(ctx, client, cfg, col, id) }(i)
	}
	for i := 0; i < cfg.writers; i++ {
		wg.Add(1)
		go func(id int) { defer wg.Done(); writeWorker(ctx, client, cfg, col, targets, id) }(i)
	}
	if cfg.follower != "" && len(targets) > 0 {
		wg.Add(1)
		go func() { defer wg.Done(); lagProbe(ctx, client, cfg, col, targets) }()
	}
	wg.Wait()
	elapsed := time.Since(start)

	col.mu.Lock()
	defer col.mu.Unlock()
	ops := len(col.readNS) + len(col.patchNS)
	if ops == 0 {
		fmt.Fprintln(os.Stderr, "xviload: no operations completed")
		os.Exit(1)
	}
	line := fmt.Sprintf("%s \t%8d\t%12.0f ns/op\t%10.1f qps\t%8.3f read_p50_ms\t%8.3f read_p99_ms\t%8.3f patch_p50_ms\t%8.3f patch_p99_ms",
		cfg.bench, ops,
		float64(elapsed)/float64(ops),
		float64(ops)/elapsed.Seconds(),
		percentile(col.readNS, 50)/1e6, percentile(col.readNS, 99)/1e6,
		percentile(col.patchNS, 50)/1e6, percentile(col.patchNS, 99)/1e6)
	if len(col.lagNS) > 0 {
		line += fmt.Sprintf("\t%8.3f lag_p50_ms\t%8.3f lag_p99_ms",
			percentile(col.lagNS, 50)/1e6, percentile(col.lagNS, 99)/1e6)
	}
	fmt.Printf("%s\t%6d watch_events\t%4d errors\n", line, col.watchEvents, len(col.errs))
	for _, e := range col.errs {
		fmt.Fprintln(os.Stderr, "xviload: error:", e)
	}
	// A watcher-observed ordering violation is the worst outcome a run
	// can produce — it means the committed-change stream broke its
	// contract — and gets its own exit code so wrappers can tell it from
	// ordinary request errors.
	if col.violations > 0 {
		fmt.Fprintf(os.Stderr, "xviload: %d ordering violation(s) observed\n", col.violations)
		os.Exit(3)
	}
	if len(col.errs) > 0 {
		os.Exit(1)
	}
}

func waitHealthy(client *http.Client, addr string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not healthy: %w", addr, err)
			}
			return fmt.Errorf("server at %s not healthy", addr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// wire types, mirroring internal/server (kept local: xviload speaks the
// public protocol, not the server's internals).
type queryReq struct {
	Doc        string `json:"doc,omitempty"`
	Query      string `json:"query"`
	Limit      int    `json:"limit,omitempty"`
	MinVersion uint64 `json:"min_version,omitempty"`
}
type resultItem struct {
	Node int32 `json:"node"`
}
type queryResp struct {
	Version string       `json:"version"`
	Count   int          `json:"count"`
	Results []resultItem `json:"results"`
}
type patchOp struct {
	Op    string `json:"op"`
	Node  *int32 `json:"node,omitempty"`
	Value string `json:"value,omitempty"`
}
type patchReq struct {
	Doc string    `json:"doc,omitempty"`
	Ops []patchOp `json:"ops"`
}
type patchResp struct {
	Version string `json:"version"`
}

func post(ctx context.Context, client *http.Client, url string, body, out any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	if out != nil {
		return resp.StatusCode, json.Unmarshal(data, out)
	}
	return resp.StatusCode, nil
}

// discoverTargets runs the write query once and returns the matched
// node ids — the set_text targets the writers cycle through.
func discoverTargets(client *http.Client, cfg config) ([]int32, error) {
	if cfg.writers == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var out queryResp
	if _, err := post(ctx, client, cfg.addr+"/v1/query",
		queryReq{Doc: cfg.doc, Query: cfg.writeQ, Limit: 4096}, &out); err != nil {
		return nil, fmt.Errorf("write-target discovery: %w", err)
	}
	nodes := make([]int32, len(out.Results))
	for i, r := range out.Results {
		nodes[i] = r.Node
	}
	return nodes, nil
}

func readWorker(ctx context.Context, client *http.Client, cfg config, col *collector, id int) {
	for i := id; ctx.Err() == nil; i++ {
		q := cfg.queries[i%len(cfg.queries)]
		start := time.Now()
		var out queryResp
		status, err := post(ctx, client, cfg.readAddr()+"/v1/query", queryReq{Doc: cfg.doc, Query: q, Limit: 1}, &out)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			col.errorf("reader %d: query %q: status %d: %v", id, q, status, err)
			return
		}
		col.read(time.Since(start))
	}
}

func writeWorker(ctx context.Context, client *http.Client, cfg config, col *collector, targets []int32, id int) {
	// Each writer rewrites the discovered leaves with their matching
	// value: a real commit per patch, a stable result set for readers.
	value := lastLiteral(cfg.writeQ)
	next := id
	for ctx.Err() == nil {
		ops := make([]patchOp, 0, cfg.batch)
		for len(ops) < cfg.batch {
			n := targets[next%len(targets)]
			next++
			ops = append(ops, patchOp{Op: "set_text", Node: &n, Value: value})
		}
		start := time.Now()
		status, err := post(ctx, client, cfg.addr+"/v1/patch", patchReq{Doc: cfg.doc, Ops: ops}, nil)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			col.errorf("writer %d: patch: status %d: %v", id, status, err)
			return
		}
		col.patch(time.Since(start))
	}
}

// lagProbe measures end-to-end replication lag: patch the leader, then
// query the follower with min_version set to the patch's token — the
// elapsed time until the follower answers is how long the commit took to
// become visible on the replica (read-your-writes across the pair).
func lagProbe(ctx context.Context, client *http.Client, cfg config, col *collector, targets []int32) {
	value := lastLiteral(cfg.writeQ)
	n := targets[len(targets)-1]
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for ctx.Err() == nil {
		start := time.Now()
		var pr patchResp
		status, err := post(ctx, client, cfg.addr+"/v1/patch",
			patchReq{Doc: cfg.doc, Ops: []patchOp{{Op: "set_text", Node: &n, Value: value}}}, &pr)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			col.errorf("lag probe: patch: status %d: %v", status, err)
			return
		}
		var v uint64
		fmt.Sscanf(pr.Version, "%d", &v) //nolint:errcheck
		status, err = post(ctx, client, cfg.follower+"/v1/query",
			queryReq{Doc: cfg.doc, Query: cfg.queries[0], Limit: 1, MinVersion: v}, nil)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			col.errorf("lag probe: follower query (min_version %d): status %d: %v", v, status, err)
			return
		}
		col.lag(time.Since(start))
		select {
		case <-tick.C:
		case <-ctx.Done():
			return
		}
	}
}

// lastLiteral pulls the comparison literal out of the write query (the
// value to write back), defaulting to "3".
func lastLiteral(q string) string {
	if i := strings.LastIndexByte(q, '='); i >= 0 {
		v := strings.Trim(strings.TrimSuffix(strings.TrimSpace(q[i+1:]), "]"), ` "'`)
		if v != "" {
			return v
		}
	}
	return "3"
}

// watchWorker tails the change stream and verifies the ordering
// contract: consecutive versions, no duplicates, no gaps.
func watchWorker(ctx context.Context, client *http.Client, cfg config, col *collector) {
	url := cfg.readAddr() + "/v1/watch"
	if cfg.doc != "" {
		url += "?doc=" + cfg.doc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		col.errorf("watcher: %v", err)
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		col.errorf("watcher: connect: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		col.errorf("watcher: connect: %s", resp.Status)
		return
	}
	var last uint64
	haveLast := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "hello":
				var hello struct {
					Version string `json:"version"`
				}
				if err := json.Unmarshal([]byte(data), &hello); err == nil {
					fmt.Sscanf(hello.Version, "%d", &last) //nolint:errcheck
					haveLast = true
				}
			case "change":
				var ev struct {
					Version string `json:"version"`
				}
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					col.errorf("watcher: bad change event %q: %v", data, err)
					return
				}
				var v uint64
				fmt.Sscanf(ev.Version, "%d", &v) //nolint:errcheck
				if haveLast && v != last+1 {
					col.violation("watcher: ordering violation: version %d after %d", v, last)
					return
				}
				last, haveLast = v, true
				col.event()
			case "error":
				col.errorf("watcher: stream error: %s", data)
				return
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil && !errors.Is(err, io.EOF) {
		col.errorf("watcher: stream: %v", err)
	}
}

// percentile returns the p-th percentile of values (ns), 0 when empty.
func percentile(values []float64, p int) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}
