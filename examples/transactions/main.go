// Transactions demonstrates Section 5.1 of the paper: concurrent
// transactions updating disjoint text nodes commit without locking any
// shared ancestors — even though every update changes the root's hash —
// because the combination function C makes ancestor maintenance
// commutative.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"

	xmlvi "repro"
)

func main() {
	// A wide document: every leaf shares the root, the worst case for
	// ancestor locking.
	var sb strings.Builder
	sb.WriteString("<accounts>")
	const leaves = 400
	for i := 0; i < leaves; i++ {
		fmt.Fprintf(&sb, "<account><balance>%d.00</balance></account>", 100+i)
	}
	sb.WriteString("</accounts>")
	doc, err := xmlvi.ParseString(sb.String())
	if err != nil {
		log.Fatal(err)
	}

	balances := doc.FindAll("balance")
	fmt.Printf("document with %d accounts, root hash %#x\n\n", len(balances), doc.Hash(doc.Root()))

	// Eight workers each update their own slice of accounts through
	// transactions. No worker ever locks the root; conflicts only occur
	// on the exact text nodes written.
	const workers = 8
	per := leaves / workers
	var wg sync.WaitGroup
	var commits, conflicts atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n := doc.Children(balances[w*per+i])[0]
				for {
					tx := doc.Begin()
					if err := tx.SetText(n, fmt.Sprintf("%d.%02d", 500+w, i%100)); err != nil {
						conflicts.Add(1)
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err != nil {
						log.Fatal(err)
					}
					commits.Add(1)
					break
				}
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("committed %d transactions (%d leaf-lock conflicts, 0 ancestor locks)\n", commits.Load(), conflicts.Load())
	fmt.Printf("root hash after concurrent commits: %#x\n", doc.Hash(doc.Root()))

	// A deliberate conflict: two transactions writing the same node.
	tx1 := doc.Begin()
	tx2 := doc.Begin()
	target := doc.Children(balances[0])[0]
	if err := tx1.SetText(target, "1.00"); err != nil {
		log.Fatal(err)
	}
	if err := tx2.SetText(target, "2.00"); err == xmlvi.ErrConflict {
		fmt.Println("\nsecond writer to the same node: write-write conflict, as expected")
	}
	tx2.Abort()
	if err := tx1.Commit(); err != nil {
		log.Fatal(err)
	}

	// Full consistency check: incremental state equals a rebuild.
	if err := doc.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("index verification after all concurrency: OK")

	// And the index still answers queries over the committed state.
	hits, _ := doc.Query(`//account[balance = 1.00]`)
	fmt.Printf("//account[balance = 1.00]: %d hit\n", len(hits))
}
