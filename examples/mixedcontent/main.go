// Mixedcontent walks the paper's running example end to end: the person
// document of Figure 1, whose <age> decomposes into decades and years yet
// still equals 42, and whose <weight> assembles 78.230 from three
// fragments; then the paper's Section 3 update scenario (Dent → Prefect)
// with incremental hash maintenance.
package main

import (
	"fmt"
	"log"

	xmlvi "repro"
)

const person = `<person>
 <name><first>Arthur</first><family>Dent</family></name>
 <birthday>1966-09-26</birthday>
 <age><decades>4</decades>2<years/></age>
 <weight><kilos>78</kilos>.<grams>230</grams></weight>
</person>`

func main() {
	doc, err := xmlvi.ParseWithOptions([]byte(person), xmlvi.Options{StripWhitespace: true})
	if err != nil {
		log.Fatal(err)
	}

	// The XQuery data model: an element's string value concatenates its
	// descendant text nodes.
	name := doc.Find("name")
	fmt.Printf("string value of <name>:   %q\n", doc.StringValue(name))
	fmt.Printf("hash H(<name>):           %#x (maintained via C, never re-read)\n", doc.Hash(name))

	// The paper's introduction example: //person[.//age = 42] matches
	// even though age is decomposed into <decades>4</decades> and "2".
	age := doc.Find("age")
	if v, ok := doc.DoubleValue(age); ok {
		fmt.Printf("typed value of <age>:     %v (from mixed content!)\n", v)
	}
	hits, err := doc.Query(`//person[.//age = 42]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("//person[.//age = 42]:    %d match\n", len(hits))

	// The <weight> example: "78" + "." + "230" combine through the state
	// combination table to the double 78.230.
	weight := doc.Find("weight")
	if v, ok := doc.DoubleValue(weight); ok {
		fmt.Printf("typed value of <weight>:  %v (fragments: 78 + . + 230)\n", v)
	}

	// Section 3's update: family name changes, and the hashes of <name>,
	// <person>, and the root are all recomputed from child hashes with
	// the combination function C.
	family := doc.Find("family")
	if err := doc.UpdateText(doc.Children(family)[0], "Prefect"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter Dent -> Prefect:\n")
	fmt.Printf("string value of <name>:   %q\n", doc.StringValue(name))
	found := doc.LookupString("ArthurPrefect")
	fmt.Printf("lookup 'ArthurPrefect':   %d hit(s), first at %s\n", len(found), found[0].Path())
	if len(doc.LookupString("ArthurDent")) == 0 {
		fmt.Println("lookup 'ArthurDent':      gone, as it should be")
	}

	// Break the weight with a non-numeric fragment: the SCT rejects the
	// combination and the typed index drops the element.
	var dot xmlvi.Node = -1
	for _, c := range doc.Children(doc.Find("weight")) {
		if doc.Name(c) == "" { // text node
			dot = c
		}
	}
	if err := doc.UpdateText(dot, "kg"); err != nil {
		log.Fatal(err)
	}
	if _, ok := doc.DoubleValue(doc.Find("weight")); !ok {
		fmt.Println("\nafter '.' -> 'kg':        <weight> no longer casts to a double")
	}
	if err := doc.UpdateText(dot, "."); err != nil {
		log.Fatal(err)
	}
	if v, ok := doc.DoubleValue(doc.Find("weight")); ok {
		fmt.Printf("after 'kg' -> '.':        weight is %v again\n", v)
	}

	// The internal consistency check compares every stored hash and state
	// against ground truth.
	if err := doc.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nindex verification:       OK")
}
