// Quickstart: parse a document, run equality and range lookups through
// the generic value indices, update a value, and query again.
package main

import (
	"fmt"
	"log"

	xmlvi "repro"
)

const catalog = `<catalog>
  <book id="b1">
    <title>The Hitchhiker's Guide to the Galaxy</title>
    <author>Douglas Adams</author>
    <price>12.50</price>
    <year>1979</year>
  </book>
  <book id="b2">
    <title>The Restaurant at the End of the Universe</title>
    <author>Douglas Adams</author>
    <price>14.99</price>
    <year>1980</year>
  </book>
  <book id="b3">
    <title>Life, the Universe and Everything</title>
    <author>Douglas Adams</author>
    <price>9.99</price>
    <year>1982</year>
  </book>
</catalog>`

func main() {
	// Parse builds the string, double, and dateTime indices over the
	// whole document in one pass — no path or type configuration needed.
	doc, err := xmlvi.Parse([]byte(catalog))
	if err != nil {
		log.Fatal(err)
	}

	// Equality on string values: the hash index proposes candidates, the
	// engine verifies them against the document.
	fmt.Println("Books by Douglas Adams:")
	books, err := doc.Query(`//book[author = "Douglas Adams"]`)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range books {
		fmt.Printf("  - %s\n", childValue(doc, b, "title"))
	}

	// Range lookup on doubles: "12.50" and "9.99" are untyped text, but
	// the double index answers numeric predicates without casting every
	// node at query time.
	fmt.Println("\nBooks under 13.00:")
	cheap, err := doc.Query(`//book[price < 13]`)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range cheap {
		fmt.Printf("  - %s (%s)\n", childValue(doc, b, "title"), childValue(doc, b, "price"))
	}

	// Update a price; the indices follow incrementally (Figure 8 of the
	// paper): only the changed node and its ancestors are touched.
	price := doc.FindAll("price")[2]
	if err := doc.UpdateText(doc.Children(price)[0], "19.99"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAfter raising the third book's price to 19.99:")
	cheap, _ = doc.Query(`//book[price < 13]`)
	for _, b := range cheap {
		fmt.Printf("  - %s (%s)\n", childValue(doc, b, "title"), childValue(doc, b, "price"))
	}

	// Exact numeric match via the typed index.
	fmt.Printf("\nNodes whose typed value equals 19.99: %d\n", len(doc.LookupDouble(19.99)))

	// Attribute lookups work too: attributes are first-class indexed
	// values.
	ids, _ := doc.Query(`//book/@id[. = "b2"]`)
	for _, r := range ids {
		fmt.Printf("Attribute hit: %s = %q\n", r.Path(), r.Value())
	}
}

func childValue(doc *xmlvi.Document, r xmlvi.Result, tag string) string {
	for _, c := range doc.Children(r.Node) {
		if doc.Name(c) == tag {
			return doc.StringValue(c)
		}
	}
	return ""
}
