// Auction indexes an XMark-like auction site document (the paper's
// primary benchmark workload) and compares index-accelerated queries
// against full scans, then runs a batch update and re-queries.
package main

import (
	"fmt"
	"log"
	"time"

	xmlvi "repro"
	"repro/internal/datagen"
)

func main() {
	// Generate a deterministic auction-site document (~70k nodes).
	xml := datagen.XMark(1.0, 7)
	fmt.Printf("generated XMark-like document: %d KB\n", len(xml)/1024)

	start := time.Now()
	doc, err := xmlvi.Parse(xml)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shredded and indexed in %v (%d nodes)\n\n", time.Since(start).Round(time.Millisecond), doc.NumNodes())

	queries := []string{
		`//item[quantity = 7]`,
		`//person[profile/age = 42]`,
		`//open_auction[initial > 4900]`,
		`//open_auction[initial > 100 and initial < 105]`,
	}
	for _, q := range queries {
		start = time.Now()
		indexed, err := doc.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		indexedTime := time.Since(start)

		start = time.Now()
		scanned, err := doc.QueryScan(q)
		if err != nil {
			log.Fatal(err)
		}
		scanTime := time.Since(start)

		if len(indexed) != len(scanned) {
			log.Fatalf("MISMATCH for %s: %d vs %d", q, len(indexed), len(scanned))
		}
		speedup := float64(scanTime) / float64(indexedTime)
		fmt.Printf("%-50s %4d hits  indexed %8v  scan %8v  (%.1fx)\n",
			q, len(indexed), indexedTime.Round(time.Microsecond), scanTime.Round(time.Microsecond), speedup)
	}

	// Batch-update a slice of auction prices and show queries stay
	// consistent.
	prices := doc.FindAll("initial")
	var updates []xmlvi.TextUpdate
	for i, p := range prices {
		if i >= 500 {
			break
		}
		updates = append(updates, xmlvi.TextUpdate{Node: doc.Children(p)[0], Value: "101.50"})
	}
	start = time.Now()
	if err := doc.UpdateTexts(updates); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch-updated %d prices in %v\n", len(updates), time.Since(start).Round(time.Microsecond))

	hits, _ := doc.Query(`//open_auction[initial = 101.50]`)
	fmt.Printf("//open_auction[initial = 101.50] now matches %d auctions\n", len(hits))

	if err := doc.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("index verification: OK")
}
