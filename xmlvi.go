package xmlvi

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/txn"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Options configure parsing and index construction.
type Options struct {
	// String, Double, DateTime, and Date select the indices to build. The
	// zero Options value builds all of them. Types selects further typed
	// indexes registered with core.RegisterType.
	String   bool
	Double   bool
	DateTime bool
	Date     bool
	Types    []core.TypeID
	// StripWhitespace drops whitespace-only text nodes while shredding.
	StripWhitespace bool
	// SkipComments and SkipPIs drop those node kinds while shredding.
	SkipComments bool
	SkipPIs      bool
	// Parallelism bounds the worker goroutines index construction uses:
	// 0 means GOMAXPROCS, 1 forces the serial reference build. Every
	// setting produces identical indexes (down to snapshot bytes); see
	// the package documentation for the shard/merge design.
	Parallelism int
	// WAL names a write-ahead log file that makes updates durable. With
	// a WAL configured, the first Save writes the recovery baseline
	// snapshot and attaches the log; from then on every mutation is
	// logged (and fsynced, per WALSyncEvery) before it is applied, and
	// Save/Checkpoint rewrite the snapshot and truncate the log. A crash
	// loses at most the unsynced tail of the log — reopen with
	// OpenDurable to recover. Updates made before the first Save are not
	// logged: there is no snapshot to recover against yet.
	WAL string
	// WALSyncEvery batches log fsyncs: the log is forced to stable
	// storage once every N appended records (0 or 1 = after every
	// record, the safest setting). Batching amortises the fsync — the
	// dominant cost of a durable update — at the price of the tail of an
	// unsynced batch being lost on a crash; records are never
	// half-applied either way.
	WALSyncEvery int
	// Planner selects the query planning mode Query uses. The zero
	// value, PlannerAuto, is the cost-based planner; PlannerLegacy is
	// the pre-planner first-indexable-condition heuristic;
	// PlannerForceScan and PlannerForceIndex pin one strategy (the two
	// arms of the scan-vs-index crossover ablation). See Explain for
	// inspecting the chosen plan.
	Planner PlannerMode
}

// PlannerMode is the query planning knob; see Options.Planner.
type PlannerMode = plan.Mode

const (
	// PlannerAuto is the cost-based planner (the default).
	PlannerAuto = plan.Auto
	// PlannerLegacy is the pre-planner heuristic: the first indexable
	// condition drives, everything else is verified by navigation.
	PlannerLegacy = plan.Legacy
	// PlannerForceScan always evaluates by document scan.
	PlannerForceScan = plan.ForceScan
	// PlannerForceIndex always drives the cheapest index access path.
	PlannerForceIndex = plan.ForceIndex
)

// ParsePlannerMode resolves "auto", "legacy" (or "off"), "scan", or
// "index" — the command-line spellings of Options.Planner.
func ParsePlannerMode(s string) (PlannerMode, error) { return plan.ParseMode(s) }

func (o Options) indexOptions() core.Options {
	if !o.String && !o.Double && !o.DateTime && !o.Date && len(o.Types) == 0 {
		co := core.DefaultOptions()
		co.Parallelism = o.Parallelism
		return co
	}
	return core.Options{String: o.String, Double: o.Double, DateTime: o.DateTime, Date: o.Date, Types: o.Types, Parallelism: o.Parallelism}
}

// Document is an indexed XML document: the shredded tree plus the value
// indices, updated together. A Document is not safe for concurrent
// mutation; use Begin/Txn for concurrent updates. The index-backed
// lookups (LookupString, LookupDouble, the Range methods) may run
// concurrently with each other and with text/attribute updates — the
// index layer orders them internally — but navigation, Query's scan
// fallback, and structural updates (Delete/InsertXML) require
// coordinating through the transaction layer or external
// synchronization; see the package documentation's concurrency section.
type Document struct {
	ix  *core.Indexes
	mgr *txn.Manager

	// planner is the query planning mode Query and Explain run under
	// (Options.Planner, or SetPlanner after loading).
	planner PlannerMode

	// Durability wiring (see Options.WAL): the log path is remembered
	// until the first Save attaches it.
	walPath      string
	walSyncEvery int
}

// Parse shreds the XML input and builds all three value indices.
func Parse(xml []byte) (*Document, error) { return ParseWithOptions(xml, Options{}) }

// ParseString is Parse for a string input.
func ParseString(xml string) (*Document, error) { return ParseWithOptions([]byte(xml), Options{}) }

// ParseWithOptions shreds with explicit options.
func ParseWithOptions(xml []byte, opts Options) (*Document, error) {
	doc, err := xmlparse.ParseWith(xml, xmlparse.Options{
		StripWhitespaceText: opts.StripWhitespace,
		SkipComments:        opts.SkipComments,
		SkipPIs:             opts.SkipPIs,
	})
	if err != nil {
		return nil, err
	}
	ix := core.Build(doc, opts.indexOptions())
	return &Document{ix: ix, mgr: txn.NewManager(ix), planner: opts.Planner, walPath: opts.WAL, walSyncEvery: opts.WALSyncEvery}, nil
}

// Load reads a snapshot produced by Save, verifying checksums.
func Load(path string) (*Document, error) {
	ix, err := core.Load(path)
	if err != nil {
		return nil, err
	}
	return &Document{ix: ix, mgr: txn.NewManager(ix)}, nil
}

// OpenDurable recovers a durable document: it loads the snapshot,
// replays the write-ahead log's tail against it (truncating a torn
// record from a crashed writer, discarding a log already contained in
// the snapshot), verifies the recovered leaf hashes and states, and
// keeps the log attached so further updates stay durable. Recovery
// always yields a state that existed: the snapshot plus a prefix of the
// durably logged updates — never a half-applied record.
func OpenDurable(snapshotPath, walPath string) (*Document, error) {
	return OpenDurableWithOptions(snapshotPath, walPath, Options{})
}

// OpenDurableWithOptions is OpenDurable with explicit options. Only the
// WAL-related fields are consulted (WALSyncEvery — index selection and
// parallelism are determined by the snapshot).
func OpenDurableWithOptions(snapshotPath, walPath string, opts Options) (*Document, error) {
	ix, err := core.OpenDurable(snapshotPath, walPath, opts.WALSyncEvery)
	if err != nil {
		return nil, err
	}
	return &Document{ix: ix, mgr: txn.NewManager(ix), planner: opts.Planner, walPath: walPath, walSyncEvery: opts.WALSyncEvery}, nil
}

// Save persists the document and its indices to a checksummed snapshot
// file. On a document with a configured WAL (Options.WAL or
// OpenDurable), Save is a checkpoint: the snapshot is written
// atomically, stamped with the next checkpoint generation, and the log
// is truncated; the first such Save creates the log.
func (d *Document) Save(path string) error {
	if d.walPath != "" && !d.ix.HasWAL() {
		return d.ix.StartDurable(path, d.walPath, d.walSyncEvery)
	}
	if d.ix.HasWAL() {
		return d.ix.CheckpointTo(path)
	}
	return d.ix.Save(path)
}

// Checkpoint rewrites the snapshot at its last Save/OpenDurable path and
// truncates the write-ahead log, bounding log growth and recovery time.
// It fails with core.ErrNoWAL when no log is attached (no WAL
// configured, or no Save yet).
func (d *Document) Checkpoint() error { return d.ix.Checkpoint() }

// SyncWAL forces batched log records to stable storage; a no-op without
// an attached log or with WALSyncEvery <= 1 (always synced).
func (d *Document) SyncWAL() error { return d.ix.SyncWAL() }

// Close syncs and detaches the write-ahead log, if any. The document
// remains usable in memory; subsequent updates are no longer logged.
//
// Close is idempotent — closing twice (or a document that never had a
// WAL) returns nil — and safe to call while reads are in flight: pinned
// snapshots (Pin, Query, the lookups) never touch the log, so a server
// can drain readers and Close concurrently during shutdown. Only the
// first Close performs the sync; it reports any final fsync error.
func (d *Document) Close() error { return d.ix.CloseWAL() }

// XML serialises the document back to XML.
func (d *Document) XML() ([]byte, error) { return xmlparse.SerializeToBytes(d.ix.Doc()) }

// WriteXML streams the document as XML to w.
func (d *Document) WriteXML(w io.Writer) error { return xmlparse.Serialize(w, d.ix.Doc()) }

// Node identifies a tree node of a Document. Node values are invalidated
// by structural updates (Delete/Insert).
type Node = xmltree.NodeID

// Attr identifies an attribute of a Document.
type Attr = xmltree.AttrID

// Result is one query or lookup hit.
type Result struct {
	// Node is set for element/text/document hits; Attr for attributes.
	Node   Node
	Attr   Attr
	IsAttr bool

	doc *xmltree.Doc
}

// Value returns the hit's string value (XDM semantics: for elements, the
// concatenation of descendant text).
func (r Result) Value() string {
	if r.IsAttr {
		return r.doc.AttrValue(r.Attr)
	}
	return r.doc.StringValue(r.Node)
}

// Name returns the element tag or attribute name of the hit, "" for text
// nodes.
func (r Result) Name() string {
	if r.IsAttr {
		return r.doc.AttrName(r.Attr)
	}
	return r.doc.Name(r.Node)
}

// Path returns a simple location path (tag names from the root) for
// diagnostics.
func (r Result) Path() string {
	var n Node
	suffix := ""
	if r.IsAttr {
		n = r.doc.AttrOwner(r.Attr)
		suffix = "/@" + r.doc.AttrName(r.Attr)
	} else {
		n = r.Node
		if r.doc.Kind(n) == xmltree.Text {
			suffix = "/text()"
			n = r.doc.Parent(n)
		}
	}
	path := ""
	for ; n > 0; n = r.doc.Parent(n) {
		if r.doc.Kind(n) == xmltree.Element {
			path = "/" + r.doc.Name(n) + path
		}
	}
	return path + suffix
}

// results binds postings to the document version they were computed
// against, so a Result stays valid even when later commits publish new
// versions.
func (d *Document) results(ps []core.Posting, snap *core.Snapshot) []Result {
	return pinnedResults(ps, snap)
}

// ErrUnsupportedPath is returned by Query, QueryScan, and Explain for
// parsed expressions whose shape the evaluators cannot answer (such as
// attribute steps in the middle of a path). Match with errors.Is.
var ErrUnsupportedPath = xpath.ErrUnsupportedPath

// Query evaluates an XPath expression (see the xpath dialect in the
// README) through the cost-based query planner: each indexable
// predicate condition is priced as an index access path, the cheapest
// drives, selective companions are intersected, and non-indexable
// shapes fall back to scanning. Options.Planner (or SetPlanner)
// switches the strategy; Explain shows the chosen plan. Unsupported
// path shapes fail with ErrUnsupportedPath instead of silently
// returning an empty result.
func (d *Document) Query(expr string) ([]Result, error) {
	p, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	// One snapshot pin per query: planning, execution, and result
	// binding all observe the same index version, even mid-commit.
	snap := d.ix.Snapshot()
	ps, _, err := plan.Run(snap, p, d.planner)
	if err != nil {
		return nil, err
	}
	return d.results(ps, snap), nil
}

// QueryScan evaluates an XPath expression without indices — the baseline
// the benchmarks compare against.
func (d *Document) QueryScan(expr string) ([]Result, error) {
	p, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	if err := xpath.CheckSupported(p); err != nil {
		return nil, err
	}
	snap := d.ix.Snapshot()
	return d.results(xpath.Evaluate(snap.Doc(), p), snap), nil
}

// Explain is the executed plan of one query: a printable operator tree
// (Plan.String) whose nodes carry the planner's cardinality estimates
// next to the actual counts observed during execution.
type Explain = plan.Plan

// Explain plans and executes an XPath expression, returning the results
// together with the executed plan tree. The plan reports, per operator,
// the estimated cardinality (from the statistics layer's distinct-key
// counts and equi-depth histograms) and the actual one.
func (d *Document) Explain(expr string) ([]Result, *Explain, error) {
	p, err := xpath.Parse(expr)
	if err != nil {
		return nil, nil, err
	}
	snap := d.ix.Snapshot()
	ps, pl, err := plan.Run(snap, p, d.planner)
	if err != nil {
		return nil, nil, err
	}
	return d.results(ps, snap), pl, nil
}

// SetPlanner switches the query planning mode (useful on documents
// loaded from snapshots, where no Options are passed).
func (d *Document) SetPlanner(m PlannerMode) { d.planner = m }

// Planner reports the current query planning mode.
func (d *Document) Planner() PlannerMode { return d.planner }

// LookupString returns every node whose string value equals value,
// verified (hash candidates are checked against the document).
func (d *Document) LookupString(value string) []Result {
	snap := d.ix.Snapshot()
	return d.results(snap.LookupString(value), snap)
}

// LookupDouble returns every node whose typed double value equals v —
// "42", "42.0", " +4.2E1", and mixed content all match.
func (d *Document) LookupDouble(v float64) []Result {
	snap := d.ix.Snapshot()
	return d.results(snap.LookupDoubleEq(v), snap)
}

// RangeDouble returns nodes with double values in [lo, hi] (inclusive),
// in ascending value order.
func (d *Document) RangeDouble(lo, hi float64) []Result {
	snap := d.ix.Snapshot()
	return d.results(snap.RangeDouble(lo, hi, true, true), snap)
}

// RangeDoubleExclusive returns nodes with lo < value < hi.
func (d *Document) RangeDoubleExclusive(lo, hi float64) []Result {
	snap := d.ix.Snapshot()
	return d.results(snap.RangeDouble(lo, hi, false, false), snap)
}

// RangeDateTime returns nodes whose xs:dateTime value lies in [from, to].
func (d *Document) RangeDateTime(from, to time.Time) []Result {
	snap := d.ix.Snapshot()
	return d.results(snap.RangeDateTime(from.UnixMilli(), to.UnixMilli()), snap)
}

// RangeDate returns nodes whose xs:date value lies in [from, to]. Only
// the calendar date (UTC) of the bounds is considered.
func (d *Document) RangeDate(from, to time.Time) []Result {
	snap := d.ix.Snapshot()
	return d.results(snap.RangeDate(epochDays(from), epochDays(to)), snap)
}

// epochDays converts a time to whole days since the Unix epoch in UTC,
// the xs:date index's value domain.
func epochDays(t time.Time) int64 {
	const day = 24 * time.Hour
	return t.UTC().Truncate(day).Unix() / int64(day/time.Second)
}

// --- navigation and inspection ---

// Root returns the document node.
func (d *Document) Root() Node { return d.ix.Doc().Root() }

// Find returns the first element with the given tag in document order, or
// -1.
func (d *Document) Find(tag string) Node {
	doc := d.ix.Doc()
	for i := 0; i < doc.NumNodes(); i++ {
		n := Node(i)
		if doc.Kind(n) == xmltree.Element && doc.Name(n) == tag {
			return n
		}
	}
	return xmltree.InvalidNode
}

// FindAll returns every element with the given tag in document order.
func (d *Document) FindAll(tag string) []Node {
	doc := d.ix.Doc()
	var out []Node
	for i := 0; i < doc.NumNodes(); i++ {
		n := Node(i)
		if doc.Kind(n) == xmltree.Element && doc.Name(n) == tag {
			out = append(out, n)
		}
	}
	return out
}

// NodeKind distinguishes document, element, text, comment, and
// processing-instruction nodes.
type NodeKind = xmltree.Kind

// The node kinds, re-exported for callers inspecting tree structure.
const (
	KindDocument = xmltree.Document
	KindElement  = xmltree.Element
	KindText     = xmltree.Text
	KindComment  = xmltree.Comment
	KindPI       = xmltree.PI
)

// Kind reports a node's kind.
func (d *Document) Kind(n Node) NodeKind { return d.ix.Doc().Kind(n) }

// StringValue returns a node's XDM string value.
func (d *Document) StringValue(n Node) string { return d.ix.Doc().StringValue(n) }

// DoubleValue returns a node's xs:double value, if its string value is
// castable.
func (d *Document) DoubleValue(n Node) (float64, bool) { return d.ix.DoubleValue(n) }

// DateTimeValue returns a node's xs:dateTime value, if castable.
func (d *Document) DateTimeValue(n Node) (time.Time, bool) {
	ms, ok := d.ix.DateTimeValue(n)
	if !ok {
		return time.Time{}, false
	}
	return time.UnixMilli(ms).UTC(), true
}

// DateValue returns a node's xs:date value (midnight UTC), if castable.
func (d *Document) DateValue(n Node) (time.Time, bool) {
	days, ok := d.ix.DateValue(n)
	if !ok {
		return time.Time{}, false
	}
	return time.Unix(days*24*3600, 0).UTC(), true
}

// Hash returns the stored 32-bit value hash of a node — H of its string
// value, maintained incrementally across updates.
func (d *Document) Hash(n Node) uint32 { return d.ix.NodeHash(n) }

// Children returns a node's children in document order.
func (d *Document) Children(n Node) []Node { return d.ix.Doc().Children(n) }

// Parent returns a node's parent, or -1 at the document node.
func (d *Document) Parent(n Node) Node { return d.ix.Doc().Parent(n) }

// Name returns an element's tag.
func (d *Document) Name(n Node) string { return d.ix.Doc().Name(n) }

// NumNodes reports the number of tree nodes.
func (d *Document) NumNodes() int { return d.ix.Doc().NumNodes() }

// Stats exposes index statistics (population counts, size estimates).
func (d *Document) Stats() core.IndexStats { return d.ix.Stats() }

// MemStats measures the current version's in-memory footprint — the
// packed B+tree leaves, interned text heap, and side tables — including
// the bytes-per-node layout metric and its uncompressed-layout
// equivalent.
func (d *Document) MemStats() core.MemStats { return d.ix.MemStats() }

// Durable reports whether a write-ahead log is currently attached.
func (d *Document) Durable() bool { return d.ix.HasWAL() }

// WALGeneration reports the attached log's checkpoint generation (0
// before the first checkpoint or without a log).
func (d *Document) WALGeneration() uint64 { return d.ix.WALGeneration() }

// --- updates ---

// ErrNotText mirrors the tree-level error for non-text targets.
var ErrNotText = xmltree.ErrNotText

// UpdateText replaces the value of a text node and maintains all indices
// incrementally (the paper's Figure 8 algorithm), including the substring
// index when enabled.
func (d *Document) UpdateText(n Node, value string) error {
	return d.ix.UpdateText(n, value)
}

// TextUpdate is one batched text update.
type TextUpdate = core.TextUpdate

// UpdateTexts applies a batch of text updates; each affected ancestor is
// refolded exactly once.
func (d *Document) UpdateTexts(updates []TextUpdate) error {
	return d.ix.UpdateTexts(updates)
}

// UpdateAttr replaces an attribute value.
func (d *Document) UpdateAttr(a Attr, value string) error { return d.ix.UpdateAttr(a, value) }

// FindAttr locates an attribute of element n by name, or -1.
func (d *Document) FindAttr(n Node, name string) Attr { return d.ix.Doc().FindAttr(n, name) }

// Delete removes a node and its subtree, maintaining all indices.
func (d *Document) Delete(n Node) error {
	return d.ix.DeleteSubtree(n)
}

// InsertXML parses an XML fragment and inserts its top-level elements as
// children of parent at child position pos, maintaining all indices. It
// returns the first inserted node.
func (d *Document) InsertXML(parent Node, pos int, fragment string) (Node, error) {
	frag, err := xmlparse.ParseString("<frag>" + fragment + "</frag>")
	if err != nil {
		return xmltree.InvalidNode, fmt.Errorf("xmlvi: fragment: %w", err)
	}
	// Unwrap: insert the children of the <frag> wrapper.
	wrapper := frag.FirstChild(frag.Root())
	if frag.Size(wrapper) == 0 {
		return xmltree.InvalidNode, errors.New("xmlvi: empty fragment")
	}
	sub := subtreeDoc(frag, wrapper)
	return d.ix.InsertChildren(parent, pos, sub)
}

// subtreeDoc rebuilds a fragment document containing the children of n.
func subtreeDoc(src *xmltree.Doc, n xmltree.NodeID) *xmltree.Doc {
	b := xmltree.NewBuilder()
	var copyNode func(m xmltree.NodeID)
	copyNode = func(m xmltree.NodeID) {
		switch src.Kind(m) {
		case xmltree.Element:
			b.StartElement(src.Name(m))
			lo, hi := src.AttrRange(m)
			for a := lo; a < hi; a++ {
				b.Attribute(src.AttrName(a), src.AttrValue(a))
			}
			for c := src.FirstChild(m); c != xmltree.InvalidNode; c = src.NextSibling(c) {
				copyNode(c)
			}
			b.EndElement()
		case xmltree.Text:
			b.Text(src.Value(m))
		case xmltree.Comment:
			b.Comment(src.Value(m))
		case xmltree.PI:
			b.PI(src.Name(m), src.Value(m))
		}
	}
	for c := src.FirstChild(n); c != xmltree.InvalidNode; c = src.NextSibling(c) {
		copyNode(c)
	}
	doc, err := b.Finish()
	if err != nil {
		// The source subtree is valid by construction; a failure here is
		// a programming error.
		panic("xmlvi: subtree copy failed: " + err.Error())
	}
	return doc
}

// Verify checks full index consistency against the document — rebuild
// semantics without rebuilding. Intended for tests and debugging; cost is
// proportional to document size times depth.
func (d *Document) Verify() error { return d.ix.Verify() }

// --- transactions (Section 5.1) ---

// Txn is a commutative transaction: it locks only the text nodes it
// writes, never their ancestors, and applies its writes atomically at
// Commit. Concurrent transactions over disjoint text nodes never
// conflict, even when they share every ancestor.
type Txn = txn.Txn

// ErrConflict is returned by Txn.SetText on write-write conflicts.
var ErrConflict = txn.ErrConflict

// Begin starts a commutative transaction on the document.
func (d *Document) Begin() *Txn { return d.mgr.Begin() }

// --- substring index (the paper's stated future work) ---

// EnableSubstringIndex builds the optional q-gram substring index over
// all text and attribute values. The index lives inside the versioned
// snapshot like every other index: once enabled, every commit path
// (text/attribute updates, structural updates, WAL replay, shipped
// replication records) maintains it copy-on-write, so Contains and the
// planner's contains()/starts-with() access path always observe one
// consistent version. Enabling is idempotent.
func (d *Document) EnableSubstringIndex() { d.ix.EnableSubstring() }

// HasSubstringIndex reports whether the q-gram substring index is
// present in the current version — enabled here, or inherited from a
// snapshot that was saved with it.
func (d *Document) HasSubstringIndex() bool { return d.ix.HasSubstring() }

// Contains returns every text and attribute node whose value contains
// pattern. With the substring index enabled (and the pattern at least
// core.SubstrQ bytes), candidates come from q-gram posting-list
// intersection and are verified; otherwise every value is scanned. Both
// routes answer against one pinned snapshot.
func (d *Document) Contains(pattern string) []Result {
	snap := d.ix.Snapshot()
	return d.results(snap.Contains(pattern), snap)
}

// StartsWith returns every text and attribute node whose value starts
// with pattern, through the same index-or-scan route as Contains.
func (d *Document) StartsWith(pattern string) []Result {
	snap := d.ix.Snapshot()
	return d.results(snap.StartsWith(pattern), snap)
}
