package server

// The watch hub: one per served document. It buffers the ordered stream
// of committed change records (fed by the document's commit hook, which
// fires under the writer mutex — so versions arrive consecutively, with
// no gaps or reordering) and fans it out to any number of WATCH
// subscribers. Subscribers read by version, at their own pace: a fast
// watcher blocks on the wake channel until the next commit, a slow one
// catches up from the buffer, and one that has fallen behind the
// retention window is told so explicitly (errResumeGone) instead of
// silently skipping records.
//
// On a durable restart the hub is seeded with the recovered WAL tail
// (Document.RecoveredChanges), so a watcher resuming with a pre-crash
// version token continues the exact committed sequence — no duplicates,
// no holes — as long as its token is within the retained window.

import (
	"errors"

	"sync"

	xmlvi "repro"
)

// errResumeGone reports a resume token older than the hub's retention
// window: the records between the token and the window were evicted, so
// the stream cannot be continued without a gap.
var errResumeGone = errors.New("server: resume token is older than the watch retention window")

// errHubClosed reports a hub shut down by server Close.
var errHubClosed = errors.New("server: watch hub is closed")

type hub struct {
	mu sync.Mutex

	// entries hold consecutive versions: entries[i].Version == base+i.
	// base is meaningful only when len(entries) > 0.
	entries []xmlvi.Change
	base    uint64
	// next is the version the next appended change must carry — the
	// current published version + 1.
	next uint64

	// wake is closed (and replaced) on every append and on close, waking
	// all blocked subscribers.
	wake chan struct{}

	// limit bounds len(entries); older entries are evicted first.
	limit int

	closed   bool
	watchers int // live subscriber count, for /v1/stats
}

// newHub starts a hub whose stream position is current (the document's
// version at attach time), pre-seeded with the recovered change tail, if
// any. seed versions must end exactly at current — RecoveredChanges
// guarantees this.
func newHub(current uint64, seed []xmlvi.Change, limit int) *hub {
	if limit <= 0 {
		limit = 4096
	}
	h := &hub{next: current + 1, wake: make(chan struct{}), limit: limit}
	if len(seed) > 0 {
		if len(seed) > limit {
			seed = seed[len(seed)-limit:]
		}
		h.entries = append(h.entries, seed...)
		h.base = h.entries[0].Version
	}
	return h
}

// append feeds one committed change into the hub. It runs inside the
// document's commit hook, under the writer mutex, so calls arrive in
// version order; a version gap (impossible through that path, but
// defended against) resets the buffer rather than serving a torn
// sequence.
func (h *hub) append(c xmlvi.Change) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if c.Version != h.next || len(h.entries) == 0 {
		if c.Version != h.next {
			h.entries = h.entries[:0]
		}
		if len(h.entries) == 0 {
			h.base = c.Version
		}
	}
	h.entries = append(h.entries, c)
	h.next = c.Version + 1
	if over := len(h.entries) - h.limit; over > 0 {
		h.entries = h.entries[over:]
		h.base += uint64(over)
	}
	close(h.wake)
	h.wake = make(chan struct{})
}

// get returns the change that published version, when buffered. When the
// version has not been published yet it returns a nil error and a wake
// channel: wait on it, then call get again. errResumeGone means the
// version was published but already evicted; errHubClosed means the
// server is shutting down.
func (h *hub) get(version uint64) (xmlvi.Change, <-chan struct{}, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return xmlvi.Change{}, nil, errHubClosed
	}
	if version >= h.next {
		return xmlvi.Change{}, h.wake, nil
	}
	if len(h.entries) == 0 || version < h.base {
		return xmlvi.Change{}, nil, errResumeGone
	}
	return h.entries[version-h.base], nil, nil
}

// current reports the version of the last change the hub has seen (the
// document's published version, as observed by the stream).
func (h *hub) current() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next - 1
}

// published reports whether version is at or below the stream position —
// i.e. the commit that produced it has already happened — without caring
// whether the record is still buffered.
func (h *hub) published(version uint64) (bool, <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || version < h.next {
		return true, nil
	}
	return false, h.wake
}

// close wakes every subscriber and marks the hub dead; subsequent get
// calls fail with errHubClosed.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	close(h.wake)
	h.wake = make(chan struct{})
}

func (h *hub) addWatcher() {
	h.mu.Lock()
	h.watchers++
	h.mu.Unlock()
}

func (h *hub) removeWatcher() {
	h.mu.Lock()
	h.watchers--
	h.mu.Unlock()
}

func (h *hub) watcherCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.watchers
}
