package server_test

// Tests for the replication-facing protocol surface: point-in-time
// queries (?version=N), payload-carrying WATCH streams, the /v1/snapshot
// seed endpoint, and the follower serving mode (read-only, lag-reporting).

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	xmlvi "repro"
	"repro/internal/server"
)

// newDurableServer serves siteXML from a durable snapshot/WAL pair with
// point-in-time queries enabled.
func newDurableServer(t *testing.T) (*httptest.Server, *xmlvi.Document) {
	t.Helper()
	dir := t.TempDir()
	snap := filepath.Join(dir, "site.xvi")
	wal := filepath.Join(dir, "site.wal")
	d, err := xmlvi.ParseWithOptions([]byte(siteXML), xmlvi.Options{StripWhitespace: true, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(snap); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{})
	if err := srv.AddDocumentWithOptions("site", d,
		server.DocOptions{SnapshotPath: snap, WALPath: wal}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return ts, d
}

// queryAt posts a query with the ?version=N point-in-time parameter.
func queryAt(t *testing.T, ts *httptest.Server, version uint64, req server.QueryRequest) (server.QueryResponse, int, string) {
	t.Helper()
	var raw json.RawMessage
	code := call(t, fmt.Sprintf("%s/v1/query?version=%d", ts.URL, version), req, &raw)
	if code != http.StatusOK {
		var e server.ErrorBody
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("decode error body %s: %v", raw, err)
		}
		return server.QueryResponse{}, code, e.Error.Code
	}
	var out server.QueryResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out, code, ""
}

func TestPointInTimeQuery(t *testing.T) {
	ts, _ := newDurableServer(t)

	// Three commits rewriting the same quantity: 3 → 11 → 12 → 13. Each
	// version is a distinct historical state.
	target := query(t, ts, server.QueryRequest{Query: `//quantity[. = 3]`})
	if target.Count != 1 {
		t.Fatalf("setup query: %+v", target)
	}
	node := target.Results[0].Node
	for i := 0; i < 3; i++ {
		patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{
			{Op: "set_text", Node: p32(node), Value: strconv.Itoa(11 + i)},
		}})
	}

	// Version 1 (the seed) still answers 3; version 3 answers 12.
	for _, tc := range []struct {
		version uint64
		want    string
	}{{1, "3"}, {2, "11"}, {3, "12"}, {4, "13"}} {
		out, code, _ := queryAt(t, ts, tc.version, server.QueryRequest{Query: `//item[@id = "i1"]/quantity`})
		if code != http.StatusOK {
			t.Fatalf("version %d: status %d", tc.version, code)
		}
		if out.AsOf != server.Token(tc.version) || out.Version != server.Token(tc.version) {
			t.Errorf("version %d: as_of %v, version %v", tc.version, out.AsOf, out.Version)
		}
		if len(out.Results) != 1 || out.Results[0].Value != tc.want {
			t.Errorf("version %d: got %+v, want quantity %s", tc.version, out.Results, tc.want)
		}
	}

	// Outside the durable window: future versions are typed 404s.
	if _, code, ec := queryAt(t, ts, 99, server.QueryRequest{Query: `//quantity`}); code != http.StatusNotFound || ec != server.CodeVersionFuture {
		t.Errorf("future version: status %d code %q, want 404 %q", code, ec, server.CodeVersionFuture)
	}

	// A document served without a durable pair has no history to open.
	mem, _ := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})
	if _, code, ec := queryAt(t, mem, 1, server.QueryRequest{Query: `//quantity`}); code != http.StatusUnprocessableEntity || ec != server.CodeNoHistory {
		t.Errorf("no history: status %d code %q, want 422 %q", code, ec, server.CodeNoHistory)
	}
}

func TestWatchPayload(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	ch, resp := openWatch(ctx, t, ts, "?doc=site&payload=1")
	if ch == nil {
		t.Fatalf("watch: status %d", resp.StatusCode)
	}
	target := query(t, ts, server.QueryRequest{Query: `//quantity[. = 3]`})
	patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{
		{Op: "set_text", Node: p32(target.Results[0].Node), Value: "42"},
	}})

	for {
		select {
		case ev := <-ch:
			if ev.event != "change" {
				continue // hello first
			}
			var change server.WatchEvent
			if err := json.Unmarshal([]byte(ev.data), &change); err != nil {
				t.Fatalf("decode change %q: %v", ev.data, err)
			}
			if change.Version != 2 || change.Kind != "texts" {
				t.Fatalf("unexpected change %+v", change)
			}
			payload, err := base64.StdEncoding.DecodeString(change.Payload)
			if err != nil || len(payload) == 0 {
				t.Fatalf("change payload %q: decoded %d bytes, err %v", change.Payload, len(payload), err)
			}
			return
		case <-ctx.Done():
			t.Fatal("no change event arrived")
		}
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	ts, _ := newDurableServer(t)
	target := query(t, ts, server.QueryRequest{Query: `//quantity[. = 3]`})
	patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{
		{Op: "set_text", Node: p32(target.Results[0].Node), Value: "99"},
	}})

	resp, err := http.Get(ts.URL + "/v1/snapshot?doc=site")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	if v := resp.Header.Get("X-Xvid-Version"); v != "2" {
		t.Fatalf("snapshot version header %q, want 2", v)
	}
	path := filepath.Join(t.TempDir(), "seed.xvi")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	f.Close()

	seeded, err := xmlvi.Load(path)
	if err != nil {
		t.Fatalf("load fetched snapshot: %v", err)
	}
	if seeded.Version() != 2 {
		t.Errorf("seeded version %d, want 2", seeded.Version())
	}
	res, err := seeded.Query(`//item[@id = "i1"]/quantity`)
	if err != nil || len(res) != 1 || res[0].Value() != "99" {
		t.Errorf("seeded state: %v (err %v), want quantity 99", res, err)
	}
}

// stubFollower serves a fixed document as a replica lagging 2 versions
// behind its imaginary leader.
type stubFollower struct{ doc *xmlvi.Document }

func (s *stubFollower) Document() *xmlvi.Document      { return s.doc }
func (s *stubFollower) LeaderSeen() uint64             { return s.doc.Version() + 2 }
func (s *stubFollower) OnCommit(fn func(xmlvi.Change)) { s.doc.OnCommit(fn) }

func TestFollowerServing(t *testing.T) {
	d, err := xmlvi.ParseWithOptions([]byte(siteXML), xmlvi.Options{StripWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{})
	if err := srv.AddFollower("site", &stubFollower{doc: d}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})

	// Queries answer with replica lag attached.
	out := query(t, ts, server.QueryRequest{Query: `//item[location = "Oslo"]`})
	if out.Replica == nil || out.Replica.Lag != 2 || out.Replica.LeaderVersion != 3 {
		t.Fatalf("replica info %+v, want lag 2 behind leader version 3", out.Replica)
	}

	// Patches are rejected: replicas are read-only.
	var e server.ErrorBody
	code := call(t, ts.URL+"/v1/patch", server.PatchRequest{Ops: []server.PatchOp{
		{Op: "set_text", Node: p32(1), Value: "x"},
	}}, &e)
	if code != http.StatusForbidden || e.Error.Code != server.CodeReadOnly {
		t.Fatalf("patch on follower: status %d code %q, want 403 %q", code, e.Error.Code, server.CodeReadOnly)
	}

	// Stats report the role and replication position.
	var stats server.StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	ds := stats.Docs["site"]
	if ds.Role != "follower" || ds.Replica == nil || ds.Replica.Lag != 2 {
		t.Fatalf("stats %+v, want follower role with lag 2", ds)
	}
}
