// Package server implements the xvid HTTP/JSON protocol over one or
// more xmlvi documents: POST /v1/query (XPath, optionally explained),
// POST /v1/patch (a transactional update batch mapped onto exactly one
// WAL commit), GET /v1/watch (a resumable server-sent-event stream of
// committed change records), GET /v1/stats, and GET /healthz.
//
// The package is deliberately thin: documents do all the work, the
// server only adds request plumbing. Three pieces matter:
//
//   - every query pins one MVCC snapshot (Document.Pin) for its whole
//     lifetime, so planning, execution, and serialization observe a
//     single published version while writers keep committing;
//   - every patch is one commit: its version token is the MVCC
//     publication sequence number, which the snapshot layer persists, so
//     tokens stay valid across checkpoints, restarts, and crash
//     recovery;
//   - each document's commit hook feeds a watch hub, which fans the
//     ordered change stream out to subscribers and is seeded with the
//     recovered WAL tail on restart, so watchers resume across a crash
//     without missing or duplicated records.
package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	xmlvi "repro"
)

// DefaultWatchRetention is the per-document number of committed changes
// kept for WATCH resume when Config.WatchRetention is zero.
const DefaultWatchRetention = 4096

// DefaultMinVersionWait bounds how long a query with min_version waits
// for that version to be published before answering 504.
const DefaultMinVersionWait = 5 * time.Second

// Config tunes a Server; the zero value is production-reasonable.
type Config struct {
	// WatchRetention is the number of committed changes buffered per
	// document for WATCH resume (default DefaultWatchRetention). A
	// watcher resuming from a token older than the window gets an
	// explicit resume_gone error, never a silent gap.
	WatchRetention int
	// MinVersionWait bounds the read-your-writes wait (default
	// DefaultMinVersionWait).
	MinVersionWait time.Duration
}

// FollowerSource is a follower replica served read-only (see
// internal/replica, which implements it). The server reads the document
// through Document on every request — a follower may swap its document
// wholesale when a retention gap forces a full re-seed — and rewires the
// commit stream through OnCommit so the follower's applies feed the
// served WATCH hub and min_version waits.
type FollowerSource interface {
	// Document returns the follower's current document.
	Document() *xmlvi.Document
	// LeaderSeen reports the highest leader version the follower has
	// observed on its subscription (applied or not) — the minuend of the
	// replica lag the server reports on queries.
	LeaderSeen() uint64
	// OnCommit installs fn as the commit observer of the current document
	// and of every document a re-seed swaps in (nil clears it).
	OnCommit(fn func(xmlvi.Change))
}

// DocOptions carry optional per-document serving configuration.
type DocOptions struct {
	// SnapshotPath and WALPath name the document's durable pair. When
	// set, the server answers point-in-time queries (?version=N on
	// /v1/query) by replaying the log's tail up to the cut version
	// (xmlvi.OpenAt). Without them such queries fail with no_history.
	SnapshotPath string
	WALPath      string
}

// docState is one served document with its server-side plumbing.
type docState struct {
	name string
	doc  *xmlvi.Document
	hub  *hub
	opts DocOptions

	// follower, when non-nil, marks this as a read-only replica: the
	// document is read through it (re-seeds swap documents), patches are
	// rejected, and queries report replica lag.
	follower FollowerSource

	// writeMu serializes patches on this document: the if_version
	// precondition check and the commit must be atomic with respect to
	// other patches (reads never take it — they pin snapshots).
	writeMu sync.Mutex

	// pitMu guards pitCache, a small cache of point-in-time opens keyed
	// by version (an OpenAt replays the WAL tail — far too expensive per
	// query).
	pitMu    sync.Mutex
	pitCache map[uint64]*xmlvi.Document

	queries atomic.Uint64
	patches atomic.Uint64
	watches atomic.Uint64
}

// document returns the document a request should read: the follower's
// current one for replicas (re-seeds swap it), the registered one
// otherwise.
func (ds *docState) document() *xmlvi.Document {
	if ds.follower != nil {
		return ds.follower.Document()
	}
	return ds.doc
}

// Server serves one or more documents over the xvid protocol. Create
// with New, register documents with AddDocument, expose Handler on any
// http.Server, and Close on shutdown.
type Server struct {
	cfg   Config
	start time.Time

	mu   sync.RWMutex
	docs map[string]*docState
}

// New returns an empty server.
func New(cfg Config) *Server {
	if cfg.WatchRetention <= 0 {
		cfg.WatchRetention = DefaultWatchRetention
	}
	if cfg.MinVersionWait <= 0 {
		cfg.MinVersionWait = DefaultMinVersionWait
	}
	return &Server{cfg: cfg, start: time.Now(), docs: make(map[string]*docState)}
}

// AddDocument registers a document under name and starts streaming its
// commits: the document's commit hook is claimed by the server (it is
// the single OnCommit observer), and the watch hub is seeded with the
// document's recovered WAL tail so pre-restart version tokens remain
// resumable. The document must not be mutated except through the server
// from this point on.
func (s *Server) AddDocument(name string, d *xmlvi.Document) error {
	return s.AddDocumentWithOptions(name, d, DocOptions{})
}

// AddDocumentWithOptions is AddDocument with per-document serving
// options (see DocOptions).
func (s *Server) AddDocumentWithOptions(name string, d *xmlvi.Document, opts DocOptions) error {
	if name == "" {
		return fmt.Errorf("server: document name must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.docs[name]; dup {
		return fmt.Errorf("server: document %q already registered", name)
	}
	ds := &docState{
		name: name,
		doc:  d,
		opts: opts,
		hub:  newHub(d.Version(), d.RecoveredChanges(), s.cfg.WatchRetention),
	}
	d.OnCommit(ds.hub.append)
	s.docs[name] = ds
	return nil
}

// AddFollower registers a follower replica under name and serves it
// read-only: queries run against the follower's current document (and
// report replica lag), patches are rejected with read_only, and the
// WATCH hub is fed by the follower's applies — so watchers of a follower
// see the leader's committed stream re-published, and min_version waits
// give read-your-writes across the leader/follower pair. The follower's
// lifecycle (subscription, re-seeds, closing its document) stays with
// the caller; Close only detaches the commit stream.
func (s *Server) AddFollower(name string, f FollowerSource) error {
	if name == "" {
		return fmt.Errorf("server: document name must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.docs[name]; dup {
		return fmt.Errorf("server: document %q already registered", name)
	}
	d := f.Document()
	ds := &docState{
		name:     name,
		follower: f,
		hub:      newHub(d.Version(), d.RecoveredChanges(), s.cfg.WatchRetention),
	}
	f.OnCommit(ds.hub.append)
	s.docs[name] = ds
	return nil
}

// resolve finds the document a request addresses: by name, or the only
// registered document when the name is omitted. The returned status and
// code describe the failure when ds is nil.
func (s *Server) resolve(name string) (ds *docState, status int, code, msg string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if len(s.docs) == 1 {
			for _, only := range s.docs {
				return only, 0, "", ""
			}
		}
		return nil, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("doc is required when serving %d documents", len(s.docs))
	}
	if d, ok := s.docs[name]; ok {
		return d, 0, "", ""
	}
	return nil, http.StatusNotFound, CodeNotFound, fmt.Sprintf("unknown document %q", name)
}

// docStates returns the registered documents, sorted by name.
func (s *Server) docStates() []*docState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*docState, 0, len(s.docs))
	for _, ds := range s.docs {
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Handler returns the protocol's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/patch", s.handlePatch)
	mux.HandleFunc("GET /v1/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// Close detaches the commit hooks, terminates every WATCH stream, and
// closes the documents (syncing and detaching their logs). Follower
// documents are not closed — their lifecycle belongs to the follower
// loop that owns them — only unhooked. In-flight pinned readers are
// unaffected: snapshots outlive Close.
func (s *Server) Close() error {
	s.mu.Lock()
	docs := s.docs
	s.docs = make(map[string]*docState)
	s.mu.Unlock()
	var first error
	for _, ds := range docs {
		ds.hub.close()
		if ds.follower != nil {
			ds.follower.OnCommit(nil)
			continue
		}
		ds.doc.OnCommit(nil)
		if err := ds.doc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
