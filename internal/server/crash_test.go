package server_test

// Crash/restart integration: a durable document served and patched over
// the wire, its on-disk state captured mid-traffic (snapshot + WAL cut
// at byte boundaries, PR 4's crash-injection style), then reopened and
// served again. The restarted server must sit exactly on a published
// version boundary — the state of some committed version, never a torn
// one — and a WATCH stream resumed from a pre-crash token must continue
// the committed sequence with no duplicate or missing records.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	xmlvi "repro"
	"repro/internal/server"
)

func TestCrashRestartServesVersionBoundary(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "site.xvi")
	wal := filepath.Join(dir, "site.wal")

	doc, err := xmlvi.ParseWithOptions([]byte(siteXML), xmlvi.Options{StripWhitespace: true, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Save(snap); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{})
	if err := srv.AddDocument("site", doc); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	// Served traffic: every patch rewrites the same leaf with a distinct
	// value, so each published version has a unique observable state.
	v0 := doc.Version()
	leaf := query(t, ts, server.QueryRequest{Query: `//quantity[. = 3]`}).Results[0].Node
	const commits = 12
	valueAt := map[uint64]string{v0: "3"}
	for i := 0; i < commits; i++ {
		out := patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{
			{Op: "set_text", Node: &leaf, Value: fmt.Sprint(1000 + i)},
		}})
		valueAt[uint64(out.Version)] = fmt.Sprint(1000 + i)
	}
	vFinal := doc.Version()
	if vFinal != v0+commits {
		t.Fatalf("version after %d patches = %d, want %d", commits, vFinal, v0+commits)
	}

	// The crash: capture the on-disk state while the server still runs
	// (the WAL is synced per record), then shut the original down.
	snapBytes, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the WAL cut at descending byte boundaries: recovery
	// must land on some published version — whose state matches that
	// version exactly — and never regress as more of the log survives.
	lastRecovered := uint64(0)
	first := true
	for cut := len(walBytes); cut >= 0; cut -= 17 {
		recovered := restartAndCheck(t, snapBytes, walBytes[:cut], v0, vFinal, valueAt)
		if !first && recovered > lastRecovered {
			t.Fatalf("cut %d recovered version %d, longer log recovered %d (not monotone)",
				cut, recovered, lastRecovered)
		}
		lastRecovered, first = recovered, false
	}
	if lastRecovered != v0 {
		t.Fatalf("empty log recovered version %d, want the snapshot version %d", lastRecovered, v0)
	}
}

// restartAndCheck opens the captured state in a fresh directory, serves
// it, verifies the recovered version's state and WATCH resume, and
// returns the recovered version.
func restartAndCheck(t *testing.T, snapBytes, walBytes []byte, v0, vFinal uint64, valueAt map[uint64]string) uint64 {
	t.Helper()
	dir := t.TempDir()
	snap := filepath.Join(dir, "site.xvi")
	wal := filepath.Join(dir, "site.wal")
	if err := os.WriteFile(snap, snapBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	doc, err := xmlvi.OpenDurable(snap, wal)
	if err != nil {
		t.Fatalf("cut %d: recovery failed: %v", len(walBytes), err)
	}
	srv := server.New(server.Config{})
	if err := srv.AddDocument("site", doc); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	v := doc.Version()
	if v < v0 || v > vFinal {
		t.Fatalf("cut %d: recovered version %d outside [%d, %d]", len(walBytes), v, v0, vFinal)
	}
	// Exactly the state of version v: the value written by commit v is
	// present (each version wrote a distinct one, so a mixed or torn
	// state cannot produce this count).
	got := query(t, ts, server.QueryRequest{Query: fmt.Sprintf(`//quantity[. = %s]`, valueAt[v])})
	if got.Count != 1 {
		t.Fatalf("cut %d: version %d state check: //quantity[. = %s] count = %d, want 1",
			len(walBytes), v, valueAt[v], got.Count)
	}
	if uint64(got.Version) != v {
		t.Fatalf("cut %d: served version %v, document version %d", len(walBytes), got.Version, v)
	}

	// A pre-crash watcher resumes across the restart: the hub is seeded
	// with the recovered WAL tail, so the stream continues v0+1..v with
	// no duplicates and no holes.
	if v > v0 {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ch, resp := openWatch(ctx, t, ts, fmt.Sprintf("?from=%d", v0))
		if ch == nil {
			t.Fatalf("cut %d: resume from %d rejected: %d", len(walBytes), v0, resp.StatusCode)
		}
		wantConsecutive(t, collectChanges(t, ch, int(v-v0), 10*time.Second), v0, int(v-v0))
	}
	return v
}
