package server_test

// End-to-end test of text predicates over the HTTP protocol: a
// substring-enabled document answers contains()/starts-with() queries
// through /v1/query, and a /v1/patch commit is immediately visible to
// the next substring query — the served index is the committed
// version's, never a stale build.

import (
	"strings"
	"testing"

	xmlvi "repro"
	"repro/internal/server"
)

func TestSubstringQueryServedAndFresh(t *testing.T) {
	ts, docs := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})
	doc := docs["site"]
	doc.EnableSubstringIndex()
	mode, err := xmlvi.ParsePlannerMode("index")
	if err != nil {
		t.Fatal(err)
	}
	doc.SetPlanner(mode) // pin the access path; the doc is tiny

	out := query(t, ts, server.QueryRequest{Query: `//item[contains(location/text(), "sterda")]`, Explain: true})
	if out.Count != 2 {
		t.Fatalf("contains query = %d hits, want 2", out.Count)
	}
	if out.Explain == nil || !strings.Contains(out.Explain.Plan, "substr") {
		t.Fatalf("served plan does not drive the substring index:\n%+v", out.Explain)
	}
	// A pattern shorter than q answers by scan and the served plan says so.
	out = query(t, ts, server.QueryRequest{Query: `//item[starts-with(@id, "i2")]`, Explain: true})
	if out.Count != 1 {
		t.Fatalf("starts-with query = %d hits, want 1", out.Count)
	}
	if out.Explain == nil || !strings.Contains(out.Explain.Plan, "pattern shorter than q") {
		t.Fatalf("served plan does not explain the short-pattern fallback:\n%+v", out.Explain)
	}

	// Patch a location, then read through the same predicate: the new
	// value answers at the patched version, the old one is gone.
	loc := query(t, ts, server.QueryRequest{Query: `//item[@id = "i2"]/location`})
	if loc.Count != 1 {
		t.Fatal("setup: i2 location not found")
	}
	pr := patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{
		{Op: "set_text", Node: &loc.Results[0].Node, Value: "Rotterdam"},
	}})
	fresh := query(t, ts, server.QueryRequest{Query: `//item[contains(location/text(), "otterda")]`, MinVersion: pr.Version})
	if fresh.Count != 1 {
		t.Fatalf("patched value not visible to contains(): %+v", fresh)
	}
	stale := query(t, ts, server.QueryRequest{Query: `//item[contains(location/text(), "Oslo")]`, MinVersion: pr.Version})
	if stale.Count != 0 {
		t.Fatalf("substring query still sees the pre-patch value: %+v", stale)
	}

	// A structural patch is maintained too.
	root := query(t, ts, server.QueryRequest{Query: `//site`})
	pr = patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{{
		Op: "insert", Node: &root.Results[0].Node, Pos: 0,
		XML: `<item id="i9"><location>Trondheim</location><quantity>1</quantity></item>`,
	}}})
	ins := query(t, ts, server.QueryRequest{Query: `//item[contains(location/text(), "rondhei")]`, MinVersion: pr.Version})
	if ins.Count != 1 {
		t.Fatalf("inserted value not visible to contains(): %+v", ins)
	}
	if err := doc.Verify(); err != nil {
		t.Fatalf("index consistency after served patches: %v", err)
	}
}
