package server_test

// Integration tests of the xvid protocol over a loopback listener:
// query/explain golden behavior, every patch shape, the typed error
// paths, version-token read-your-writes, and the WATCH stream's hello /
// change / resume / retention-window semantics.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	xmlvi "repro"
	"repro/internal/server"
)

const siteXML = `<site>
  <item id="i1"><location>Amsterdam</location><quantity>3</quantity></item>
  <item id="i2"><location>Oslo</location><quantity>7</quantity></item>
  <item id="i3"><location>Amsterdam</location><quantity>5</quantity></item>
</site>`

// newTestServer serves the given named documents over a loopback
// listener and tears everything down with the test.
func newTestServer(t *testing.T, cfg server.Config, docs map[string]string) (*httptest.Server, map[string]*xmlvi.Document) {
	t.Helper()
	srv := server.New(cfg)
	parsed := make(map[string]*xmlvi.Document)
	for name, xml := range docs {
		d, err := xmlvi.ParseWithOptions([]byte(xml), xmlvi.Options{StripWhitespace: true})
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		if err := srv.AddDocument(name, d); err != nil {
			t.Fatal(err)
		}
		parsed[name] = d
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return ts, parsed
}

// call posts a JSON request and decodes the response body into out,
// returning the status code.
func call(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
	}
	return resp.StatusCode
}

func query(t *testing.T, ts *httptest.Server, req server.QueryRequest) server.QueryResponse {
	t.Helper()
	var out server.QueryResponse
	if code := call(t, ts.URL+"/v1/query", req, &out); code != http.StatusOK {
		t.Fatalf("query %+v: status %d", req, code)
	}
	return out
}

func patch(t *testing.T, ts *httptest.Server, req server.PatchRequest) server.PatchResponse {
	t.Helper()
	var out server.PatchResponse
	if code := call(t, ts.URL+"/v1/patch", req, &out); code != http.StatusOK {
		t.Fatalf("patch %+v: status %d", req, code)
	}
	return out
}

func p32(v int32) *int32 { return &v }

func TestQueryBasics(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})

	out := query(t, ts, server.QueryRequest{Query: `//item[location = "Amsterdam"]`})
	if out.Doc != "site" || out.Count != 2 || len(out.Results) != 2 {
		t.Fatalf("got %+v, want 2 Amsterdam items", out)
	}
	if out.Version != 1 {
		t.Errorf("fresh document version = %v, want 1", out.Version)
	}
	for _, r := range out.Results {
		if r.Name != "item" || !strings.HasPrefix(r.Path, "/site/item") {
			t.Errorf("unexpected hit %+v", r)
		}
	}

	// The limit truncates results but not the count.
	out = query(t, ts, server.QueryRequest{Query: `//item[location = "Amsterdam"]`, Limit: 1})
	if out.Count != 2 || len(out.Results) != 1 || !out.Truncated {
		t.Fatalf("limited query: got count=%d results=%d truncated=%v", out.Count, len(out.Results), out.Truncated)
	}

	// Attribute hits report the attribute id and name.
	out = query(t, ts, server.QueryRequest{Query: `//item[@id = "i2"]/@id`})
	if out.Count != 1 || !out.Results[0].IsAttr || out.Results[0].Name != "id" || out.Results[0].Value != "i2" {
		t.Fatalf("attribute query: got %+v", out)
	}
}

func TestQueryExplain(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})
	out := query(t, ts, server.QueryRequest{Query: `//quantity[. = 7]`, Explain: true})
	if out.Explain == nil {
		t.Fatal("explain query returned no plan")
	}
	if out.Explain.Plan == "" || !strings.Contains(out.Explain.Plan, "est") {
		t.Errorf("plan tree %q does not carry estimates", out.Explain.Plan)
	}
	if out.Count != 1 {
		t.Errorf("count = %d, want 1", out.Count)
	}
}

func TestQueryErrors(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})
	cases := []struct {
		name   string
		req    server.QueryRequest
		status int
		code   string
	}{
		{"malformed xpath", server.QueryRequest{Query: `//[bad`}, http.StatusBadRequest, server.CodeXPathParse},
		{"unsupported path", server.QueryRequest{Query: `//@id/income`}, http.StatusUnprocessableEntity, server.CodeUnsupportedPath},
		{"unknown doc", server.QueryRequest{Doc: "nope", Query: `//item`}, http.StatusNotFound, server.CodeNotFound},
		{"empty query", server.QueryRequest{}, http.StatusBadRequest, server.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out server.ErrorBody
			if code := call(t, ts.URL+"/v1/query", tc.req, &out); code != tc.status {
				t.Fatalf("status = %d, want %d", code, tc.status)
			}
			if out.Error.Code != tc.code {
				t.Errorf("error code = %q, want %q", out.Error.Code, tc.code)
			}
		})
	}
}

func TestPatchSetTextBatchIsOneCommit(t *testing.T) {
	ts, docs := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})
	before := docs["site"].Version()

	// Address the elements (single-text-child resolution), not the text
	// nodes — the common client shape.
	hits := query(t, ts, server.QueryRequest{Query: `//quantity[. = 3]`})
	if hits.Count != 1 {
		t.Fatalf("setup: %d quantity=3 leaves", hits.Count)
	}
	more := query(t, ts, server.QueryRequest{Query: `//quantity[. = 5]`})
	out := patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{
		{Op: "set_text", Node: &hits.Results[0].Node, Value: "11"},
		{Op: "set_text", Node: &more.Results[0].Node, Value: "12"},
	}})
	if uint64(out.Version) != before+1 {
		t.Fatalf("batch of 2 set_text bumped version %d → %d, want exactly one commit", before, out.Version)
	}
	if out.Ops != 2 {
		t.Errorf("ops = %d, want 2", out.Ops)
	}
	// Read-your-writes: querying at the returned token sees both writes.
	res := query(t, ts, server.QueryRequest{Query: `//quantity[. = 11]`, MinVersion: out.Version})
	if res.Count != 1 || res.Version < out.Version {
		t.Fatalf("post-patch query: count=%d version=%v", res.Count, res.Version)
	}
	if query(t, ts, server.QueryRequest{Query: `//quantity[. = 12]`}).Count != 1 {
		t.Error("second batched write not visible")
	}
}

func TestPatchStructuralAndAttr(t *testing.T) {
	ts, docs := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})
	d := docs["site"]

	item := query(t, ts, server.QueryRequest{Query: `//item[@id = "i2"]`})
	if item.Count != 1 {
		t.Fatal("setup: item i2 not found")
	}
	node := item.Results[0].Node

	v1 := patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{
		{Op: "set_attr", Node: &node, Name: "id", Value: "renamed"},
	}})
	if got := query(t, ts, server.QueryRequest{Query: `//item[@id = "renamed"]`, MinVersion: v1.Version}); got.Count != 1 {
		t.Fatalf("attribute update not visible: %+v", got)
	}

	v2 := patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{{Op: "delete", Node: &node}}})
	if uint64(v2.Version) != uint64(v1.Version)+1 {
		t.Fatalf("delete version = %v, want %d", v2.Version, uint64(v1.Version)+1)
	}
	if got := query(t, ts, server.QueryRequest{Query: `//item`, MinVersion: v2.Version}); got.Count != 2 {
		t.Fatalf("after delete: %d items, want 2", got.Count)
	}

	root := query(t, ts, server.QueryRequest{Query: `//site`})
	v3 := patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{{
		Op: "insert", Node: &root.Results[0].Node, Pos: 0,
		XML: `<item id="i4"><location>Berlin</location><quantity>9</quantity></item>`,
	}}})
	if got := query(t, ts, server.QueryRequest{Query: `//item`, MinVersion: v3.Version}); got.Count != 3 {
		t.Fatalf("after insert: %d items, want 3", got.Count)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("index consistency after served patches: %v", err)
	}
}

func TestPatchErrors(t *testing.T) {
	ts, docs := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})
	item := query(t, ts, server.QueryRequest{Query: `//item[@id = "i1"]`}).Results[0].Node

	cases := []struct {
		name   string
		req    server.PatchRequest
		status int
		code   string
	}{
		{"empty ops", server.PatchRequest{}, http.StatusBadRequest, server.CodeBadRequest},
		{"unknown op", server.PatchRequest{Ops: []server.PatchOp{{Op: "zap", Node: p32(1)}}},
			http.StatusBadRequest, server.CodeBadRequest},
		{"mixed batch", server.PatchRequest{Ops: []server.PatchOp{
			{Op: "set_text", Node: p32(1), Value: "x"}, {Op: "delete", Node: p32(2)},
		}}, http.StatusBadRequest, server.CodeBadRequest},
		{"set_text on multi-child element", server.PatchRequest{Ops: []server.PatchOp{
			{Op: "set_text", Node: &item, Value: "x"},
		}}, http.StatusBadRequest, server.CodeBadTarget},
		{"set_text out of range", server.PatchRequest{Ops: []server.PatchOp{
			{Op: "set_text", Node: p32(99999), Value: "x"},
		}}, http.StatusBadRequest, server.CodeBadTarget},
		{"set_attr missing attribute", server.PatchRequest{Ops: []server.PatchOp{
			{Op: "set_attr", Node: &item, Name: "nope", Value: "x"},
		}}, http.StatusBadRequest, server.CodeBadTarget},
		{"unknown doc", server.PatchRequest{Doc: "nope", Ops: []server.PatchOp{
			{Op: "set_text", Node: p32(1), Value: "x"},
		}}, http.StatusNotFound, server.CodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out server.ErrorBody
			if code := call(t, ts.URL+"/v1/patch", tc.req, &out); code != tc.status {
				t.Fatalf("status = %d, want %d", code, tc.status)
			}
			if out.Error.Code != tc.code {
				t.Errorf("error code = %q, want %q", out.Error.Code, tc.code)
			}
		})
	}
	if got := docs["site"].Version(); got != 1 {
		t.Fatalf("rejected patches left version %d, want 1 (no partial commits)", got)
	}
}

func TestPatchIfVersionConflict(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})
	leaf := query(t, ts, server.QueryRequest{Query: `//quantity[. = 3]`}).Results[0].Node

	stale := server.Token(1)
	ok := patch(t, ts, server.PatchRequest{IfVersion: &stale, Ops: []server.PatchOp{
		{Op: "set_text", Node: &leaf, Value: "30"},
	}})
	if uint64(ok.Version) != 2 {
		t.Fatalf("first conditional patch: version %v, want 2", ok.Version)
	}

	// The same precondition now conflicts, and reports where we are.
	var errOut server.ErrorBody
	code := call(t, ts.URL+"/v1/patch", server.PatchRequest{IfVersion: &stale, Ops: []server.PatchOp{
		{Op: "set_text", Node: &leaf, Value: "31"},
	}}, &errOut)
	if code != http.StatusConflict || errOut.Error.Code != server.CodeConflict {
		t.Fatalf("stale if_version: status %d code %q", code, errOut.Error.Code)
	}
	if errOut.Error.CurrentVersion == nil || *errOut.Error.CurrentVersion != ok.Version {
		t.Fatalf("conflict current_version = %v, want %v", errOut.Error.CurrentVersion, ok.Version)
	}
}

func TestMultiDocResolution(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{}, map[string]string{
		"a": siteXML,
		"b": `<site><item id="x1"><location>Paris</location><quantity>1</quantity></item></site>`,
	})
	if got := query(t, ts, server.QueryRequest{Doc: "b", Query: `//item`}); got.Count != 1 {
		t.Fatalf("doc b: %d items, want 1", got.Count)
	}
	var errOut server.ErrorBody
	if code := call(t, ts.URL+"/v1/query", server.QueryRequest{Query: `//item`}, &errOut); code != http.StatusBadRequest {
		t.Fatalf("nameless query with two docs: status %d, want 400", code)
	}
}

func TestMinVersionTimeout(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{MinVersionWait: 50 * time.Millisecond},
		map[string]string{"site": siteXML})
	var errOut server.ErrorBody
	code := call(t, ts.URL+"/v1/query",
		server.QueryRequest{Query: `//item`, MinVersion: 99}, &errOut)
	if code != http.StatusGatewayTimeout || errOut.Error.Code != server.CodeTimeout {
		t.Fatalf("future min_version: status %d code %q, want 504 timeout", code, errOut.Error.Code)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})
	query(t, ts, server.QueryRequest{Query: `//item`})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	var stats server.StatsResponse
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	ds, ok := stats.Docs["site"]
	if !ok {
		t.Fatalf("stats lacks doc: %+v", stats)
	}
	if ds.Queries != 1 || ds.Version != 1 || ds.Nodes == 0 || ds.Index.Nodes == 0 {
		t.Errorf("unexpected doc stats %+v", ds)
	}
}

// --- WATCH ---

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

// openWatch connects a WATCH stream and returns a channel of its parsed
// events; cancel the context to disconnect.
func openWatch(ctx context.Context, t *testing.T, ts *httptest.Server, params string) (<-chan sseEvent, *http.Response) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/watch"+params, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	ch := make(chan sseEvent, 256)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		ev := sseEvent{}
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			case line == "" && ev.event != "":
				ch <- ev
				ev = sseEvent{}
			}
		}
	}()
	return ch, resp
}

// collectChanges reads change events until n have arrived or the
// timeout hits, returning their versions in arrival order.
func collectChanges(t *testing.T, ch <-chan sseEvent, n int, timeout time.Duration) []uint64 {
	t.Helper()
	var got []uint64
	deadline := time.After(timeout)
	for len(got) < n {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed after %d/%d changes", len(got), n)
			}
			switch ev.event {
			case "hello":
			case "change":
				var e server.WatchEvent
				if err := json.Unmarshal([]byte(ev.data), &e); err != nil {
					t.Fatalf("bad change payload %q: %v", ev.data, err)
				}
				got = append(got, uint64(e.Version))
			case "error":
				t.Fatalf("stream error after %d/%d changes: %s", len(got), n, ev.data)
			}
		case <-deadline:
			t.Fatalf("timed out after %d/%d changes", len(got), n)
		}
	}
	return got
}

func wantConsecutive(t *testing.T, got []uint64, from uint64, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("got %d changes, want %d", len(got), n)
	}
	for i, v := range got {
		if v != from+uint64(i)+1 {
			t.Fatalf("change[%d] version = %d, want %d (sequence %v)", i, v, from+uint64(i)+1, got)
		}
	}
}

func TestWatchStreamAndResume(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{}, map[string]string{"site": siteXML})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ch, _ := openWatch(ctx, t, ts, "")
	leaf := query(t, ts, server.QueryRequest{Query: `//quantity[. = 3]`}).Results[0].Node
	const commits = 5
	for i := 0; i < commits; i++ {
		patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{
			{Op: "set_text", Node: &leaf, Value: fmt.Sprint(100 + i)},
		}})
	}
	wantConsecutive(t, collectChanges(t, ch, commits, 5*time.Second), 1, commits)

	// A late subscriber resuming from the beginning replays the history.
	late, _ := openWatch(ctx, t, ts, "?from=1")
	wantConsecutive(t, collectChanges(t, late, commits, 5*time.Second), 1, commits)
}

func TestWatchResumeGone(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{WatchRetention: 2}, map[string]string{"site": siteXML})
	leaf := query(t, ts, server.QueryRequest{Query: `//quantity[. = 3]`}).Results[0].Node
	for i := 0; i < 6; i++ {
		patch(t, ts, server.PatchRequest{Ops: []server.PatchOp{
			{Op: "set_text", Node: &leaf, Value: fmt.Sprint(200 + i)},
		}})
	}
	// Versions 2..7 published, only 6..7 retained: resuming from 1 must
	// be an explicit 410, not a gapped stream.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, resp := openWatch(ctx, t, ts, "?from=1")
	if ch != nil {
		t.Fatal("evicted resume token accepted")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("status = %d, want 410", resp.StatusCode)
	}
	var errOut server.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&errOut); err != nil || errOut.Error.Code != server.CodeResumeGone {
		t.Fatalf("error body %+v (%v), want resume_gone", errOut, err)
	}

	// Resuming inside the window still works.
	ch2, _ := openWatch(ctx, t, ts, "?from=5")
	wantConsecutive(t, collectChanges(t, ch2, 2, 5*time.Second), 5, 2)
}
