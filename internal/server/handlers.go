package server

// The protocol handlers. Queries pin one snapshot per request; patches
// serialize per document and commit exactly once; watch streams tail
// the hub over server-sent events.

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	xmlvi "repro"
)

// maxBodyBytes bounds request bodies (patches carry XML fragments).
const maxBodyBytes = 8 << 20

// decodeBody parses the JSON request body into v, rejecting trailing
// garbage.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid request body: "+err.Error())
		return false
	}
	return true
}

// --- query ---

// defaultResultLimit bounds serialized query results unless the request
// asks otherwise; Count always reports the full hit count.
const defaultResultLimit = 1000

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ds, status, code, msg := s.resolve(req.Doc)
	if ds == nil {
		writeError(w, status, code, msg)
		return
	}
	ds.queries.Add(1)
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "query is required")
		return
	}

	// Point-in-time: ?version=N answers against the historical state as
	// of version N (xmlvi.OpenAt over the document's durable pair),
	// pinned like any other query. min_version is meaningless against a
	// fixed historical version and is ignored.
	if v := r.URL.Query().Get("version"); v != "" {
		at, err := strconv.ParseUint(v, 10, 64)
		if err != nil || at == 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid version: "+v)
			return
		}
		hist, status, code, msg := ds.openAt(at)
		if hist == nil {
			writeError(w, status, code, msg)
			return
		}
		resp, ok := execQuery(w, ds, hist.Pin(), req)
		if !ok {
			return
		}
		resp.AsOf = Token(at)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	// Read-your-writes: wait (bounded) until the client's token is
	// published, then pin. The hub observes versions after publication,
	// so a snapshot pinned after the wait is at least the token. On a
	// follower the hub observes applied leader commits, so min_version
	// with a leader patch token waits for replication to catch up —
	// read-your-writes across the pair.
	if req.MinVersion > 0 {
		deadline := time.NewTimer(s.cfg.MinVersionWait)
		defer deadline.Stop()
		for {
			ok, wake := ds.hub.published(uint64(req.MinVersion))
			if ok {
				break
			}
			select {
			case <-wake:
			case <-deadline.C:
				writeError(w, http.StatusGatewayTimeout, CodeTimeout,
					fmt.Sprintf("version %d not published within %s (current %d)",
						req.MinVersion, s.cfg.MinVersionWait, ds.hub.current()))
				return
			case <-r.Context().Done():
				return
			}
		}
	}

	pinned := ds.document().Pin()
	resp, ok := execQuery(w, ds, pinned, req)
	if !ok {
		return
	}
	if ds.follower != nil {
		leader := ds.follower.LeaderSeen()
		lag := uint64(0)
		if pv := pinned.Version(); leader > pv {
			lag = leader - pv
		}
		resp.Replica = &ReplicaInfo{LeaderVersion: Token(leader), Lag: lag}
	}
	writeJSON(w, http.StatusOK, resp)
}

// execQuery plans, executes, and serializes one query against a pinned
// version, writing the error response itself on failure (ok=false).
func execQuery(w http.ResponseWriter, ds *docState, pinned *xmlvi.Pinned, req QueryRequest) (*QueryResponse, bool) {
	var (
		results []xmlvi.Result
		info    *ExplainInfo
		err     error
	)
	if req.Explain {
		var pl *xmlvi.Explain
		results, pl, err = pinned.Explain(req.Query)
		if err == nil {
			info = &ExplainInfo{Plan: pl.String(), UsesIndex: pl.UsesIndex(), EstCost: pl.EstCost}
		}
	} else {
		results, err = pinned.Query(req.Query)
	}
	if err != nil {
		if errors.Is(err, xmlvi.ErrUnsupportedPath) {
			writeError(w, http.StatusUnprocessableEntity, CodeUnsupportedPath, err.Error())
		} else {
			writeError(w, http.StatusBadRequest, CodeXPathParse, err.Error())
		}
		return nil, false
	}

	limit := req.Limit
	if limit <= 0 {
		limit = defaultResultLimit
	}
	resp := &QueryResponse{
		Doc:     ds.name,
		Version: Token(pinned.Version()),
		Count:   len(results),
		Results: make([]ResultItem, 0, min(len(results), limit)),
		Explain: info,
	}
	for i, res := range results {
		if i == limit {
			resp.Truncated = true
			break
		}
		item := ResultItem{
			Node:   int32(res.Node),
			Attr:   -1,
			IsAttr: res.IsAttr,
			Name:   res.Name(),
			Value:  res.Value(),
			Path:   res.Path(),
		}
		if res.IsAttr {
			item.Attr = int32(res.Attr)
		}
		resp.Results = append(resp.Results, item)
	}
	return resp, true
}

// pitCacheLimit bounds the per-document cache of point-in-time opens; a
// full cache is simply dropped (opens are reconstructible).
const pitCacheLimit = 4

// openAt returns the document's state as of version, from the cache or
// by replaying the durable pair's log tail. The returned status/code/msg
// describe the failure when the document is nil.
func (ds *docState) openAt(version uint64) (doc *xmlvi.Document, status int, code, msg string) {
	if ds.opts.SnapshotPath == "" || ds.opts.WALPath == "" {
		return nil, http.StatusUnprocessableEntity, CodeNoHistory,
			"point-in-time queries need a document served from a durable snapshot+WAL pair"
	}
	ds.pitMu.Lock()
	defer ds.pitMu.Unlock()
	if d, ok := ds.pitCache[version]; ok {
		return d, 0, "", ""
	}
	d, err := xmlvi.OpenAt(ds.opts.SnapshotPath, ds.opts.WALPath, version)
	if err != nil {
		switch {
		case errors.Is(err, xmlvi.ErrVersionBeforeSnapshot):
			return nil, http.StatusGone, CodeVersionGone, err.Error()
		case errors.Is(err, xmlvi.ErrVersionInFuture):
			return nil, http.StatusNotFound, CodeVersionFuture, err.Error()
		default:
			return nil, http.StatusInternalServerError, CodeInternal, err.Error()
		}
	}
	if len(ds.pitCache) >= pitCacheLimit {
		ds.pitCache = nil
	}
	if ds.pitCache == nil {
		ds.pitCache = make(map[uint64]*xmlvi.Document)
	}
	ds.pitCache[version] = d
	return d, 0, "", ""
}

// --- patch ---

func (s *Server) handlePatch(w http.ResponseWriter, r *http.Request) {
	var req PatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ds, status, code, msg := s.resolve(req.Doc)
	if ds == nil {
		writeError(w, status, code, msg)
		return
	}
	ds.patches.Add(1)
	if ds.follower != nil {
		writeError(w, http.StatusForbidden, CodeReadOnly,
			"document is a follower replica: patch the leader (its commit replicates here)")
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "ops must not be empty")
		return
	}
	// One patch, one commit: either a pure set_text batch (one
	// UpdateTexts call → one log record → one published version) or a
	// single structural/attribute op.
	allTexts := true
	for _, op := range req.Ops {
		if op.Op != "set_text" {
			allTexts = false
		}
	}
	if !allTexts && len(req.Ops) > 1 {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"a patch is one commit: batch set_text ops freely, but set_attr/delete/insert must be the only op")
		return
	}

	// The precondition check and the commit must see no interleaved
	// patch; queries never take this lock.
	ds.writeMu.Lock()
	defer ds.writeMu.Unlock()

	if req.IfVersion != nil && ds.doc.Version() != uint64(*req.IfVersion) {
		writeConflict(w, fmt.Sprintf("if_version %d does not match", *req.IfVersion), ds.doc.Version())
		return
	}

	var err error
	if allTexts {
		err = s.applyTexts(w, ds, req.Ops)
	} else {
		err = s.applyOne(w, ds, req.Ops[0])
	}
	if err != nil {
		return // the apply helpers already answered
	}
	writeJSON(w, http.StatusOK, PatchResponse{
		Doc:     ds.name,
		Version: Token(ds.doc.Version()),
		Ops:     len(req.Ops),
	})
}

// errHandled signals "response already written" from the apply helpers.
var errHandled = errors.New("handled")

// applyTexts resolves and applies a set_text batch as one commit.
func (s *Server) applyTexts(w http.ResponseWriter, ds *docState, ops []PatchOp) error {
	updates := make([]xmlvi.TextUpdate, len(ops))
	for i, op := range ops {
		if op.Node == nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("ops[%d]: set_text requires node", i))
			return errHandled
		}
		n, ok := s.resolveTextTarget(ds, xmlvi.Node(*op.Node))
		if !ok {
			writeError(w, http.StatusBadRequest, CodeBadTarget,
				fmt.Sprintf("ops[%d]: node %d is not a text node or an element with exactly one text child", i, *op.Node))
			return errHandled
		}
		updates[i] = xmlvi.TextUpdate{Node: n, Value: op.Value}
	}
	if err := ds.doc.UpdateTexts(updates); err != nil {
		s.writeApplyError(w, ds, err)
		return errHandled
	}
	return nil
}

// resolveTextTarget maps a client-addressed node onto the text node a
// set_text op updates: a text node as-is, or an element whose only
// child is a text node (the common `<price>42</price>` shape).
func (s *Server) resolveTextTarget(ds *docState, n xmlvi.Node) (xmlvi.Node, bool) {
	if n < 0 || int(n) >= ds.doc.NumNodes() {
		return n, false
	}
	switch ds.doc.Kind(n) {
	case xmlvi.KindText:
		return n, true
	case xmlvi.KindElement:
		kids := ds.doc.Children(n)
		if len(kids) == 1 && ds.doc.Kind(kids[0]) == xmlvi.KindText {
			return kids[0], true
		}
	}
	return n, false
}

// applyOne applies a single structural or attribute op as one commit.
func (s *Server) applyOne(w http.ResponseWriter, ds *docState, op PatchOp) error {
	bad := func(format string, args ...any) error {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf(format, args...))
		return errHandled
	}
	switch op.Op {
	case "set_attr":
		var a xmlvi.Attr
		switch {
		case op.Attr != nil:
			a = xmlvi.Attr(*op.Attr)
		case op.Node != nil && op.Name != "":
			if *op.Node < 0 || int(*op.Node) >= ds.doc.NumNodes() {
				writeError(w, http.StatusBadRequest, CodeBadTarget,
					fmt.Sprintf("set_attr: node %d out of range", *op.Node))
				return errHandled
			}
			a = ds.doc.FindAttr(xmlvi.Node(*op.Node), op.Name)
			if a < 0 {
				writeError(w, http.StatusBadRequest, CodeBadTarget,
					fmt.Sprintf("set_attr: node %d has no attribute %q", *op.Node, op.Name))
				return errHandled
			}
		default:
			return bad("set_attr requires attr, or node and name")
		}
		if err := ds.doc.UpdateAttr(a, op.Value); err != nil {
			s.writeApplyError(w, ds, err)
			return errHandled
		}
	case "delete":
		if op.Node == nil {
			return bad("delete requires node")
		}
		if err := ds.doc.Delete(xmlvi.Node(*op.Node)); err != nil {
			s.writeApplyError(w, ds, err)
			return errHandled
		}
	case "insert":
		if op.Node == nil || op.XML == "" {
			return bad("insert requires node (the parent) and xml")
		}
		if _, err := ds.doc.InsertXML(xmlvi.Node(*op.Node), op.Pos, op.XML); err != nil {
			s.writeApplyError(w, ds, err)
			return errHandled
		}
	default:
		return bad("unknown op %q (want set_text, set_attr, delete, or insert)", op.Op)
	}
	return nil
}

// writeApplyError maps a document mutation error onto the protocol: a
// transaction conflict is a 409 (retry at the current version),
// anything else is a rejected target — the mutators validate before
// committing, so a failed apply left no commit behind.
func (s *Server) writeApplyError(w http.ResponseWriter, ds *docState, err error) {
	if errors.Is(err, xmlvi.ErrConflict) {
		writeConflict(w, err.Error(), ds.doc.Version())
		return
	}
	writeError(w, http.StatusBadRequest, CodeBadTarget, err.Error())
}

// --- watch ---

// watchHeartbeat is the idle-stream comment interval keeping proxies
// and dead-connection detection alive.
const watchHeartbeat = 15 * time.Second

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	ds, status, code, msg := s.resolve(r.URL.Query().Get("doc"))
	if ds == nil {
		writeError(w, status, code, msg)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, "streaming unsupported")
		return
	}
	withPayload := r.URL.Query().Get("payload") == "1"
	from := ds.hub.current()
	if f := r.URL.Query().Get("from"); f != "" {
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid from token: "+f)
			return
		}
		from = v
	}
	// Reject an already-evicted resume token with a status code while we
	// still can; past-window eviction mid-stream becomes an SSE error
	// event below.
	if _, _, err := ds.hub.get(from + 1); errors.Is(err, errResumeGone) {
		writeError(w, http.StatusGone, CodeResumeGone,
			fmt.Sprintf("version %d is older than the watch retention window", from))
		return
	}

	ds.watches.Add(1)
	ds.hub.addWatcher()
	defer ds.hub.removeWatcher()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	writeEvent(w, "hello", 0, WatchHello{
		Doc: ds.name, Version: Token(from), Current: Token(ds.hub.current()),
	})
	flusher.Flush()

	heartbeat := time.NewTicker(watchHeartbeat)
	defer heartbeat.Stop()
	next := from + 1
	for {
		c, wake, err := ds.hub.get(next)
		switch {
		case errors.Is(err, errResumeGone):
			writeEvent(w, "error", 0, ErrorInfo{Code: CodeResumeGone,
				Message: fmt.Sprintf("stream fell behind: version %d evicted from the retention window", next)})
			flusher.Flush()
			return
		case errors.Is(err, errHubClosed):
			return
		case wake != nil:
			select {
			case <-wake:
			case <-r.Context().Done():
				return
			case <-heartbeat.C:
				fmt.Fprint(w, ": ping\n\n")
				flusher.Flush()
			}
			continue
		}
		ev := WatchEvent{
			Version: Token(c.Version),
			Kind:    c.Kind.String(),
			Ops:     c.Ops,
		}
		if withPayload {
			ev.Payload = base64.StdEncoding.EncodeToString(c.Payload)
		}
		writeEvent(w, "change", c.Version, ev)
		flusher.Flush()
		next = c.Version + 1
	}
}

// writeEvent writes one server-sent event; id 0 means no id line.
func writeEvent(w http.ResponseWriter, event string, id uint64, data any) {
	b, err := json.Marshal(data)
	if err != nil {
		return
	}
	if id > 0 {
		fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", event, id, b)
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

// --- snapshot ---

// handleSnapshot streams a generation-0 snapshot of the document's
// current version (GET /v1/snapshot?doc=NAME). The version is pinned for
// the whole transfer and reported in X-Xvid-Version; a follower seeding
// itself loads the body with xmlvi.LoadWithOptions and subscribes to
// /v1/watch?from=<that version> — together they hand over the full state
// plus the live log with no gap.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	ds, status, code, msg := s.resolve(r.URL.Query().Get("doc"))
	if ds == nil {
		writeError(w, status, code, msg)
		return
	}
	pinned := ds.document().Pin()

	// Serialize through a temp file: Pinned.Save wants a path, and the
	// file gives us a Content-Length up front.
	tmp, err := os.CreateTemp("", "xvid-seed-*.xvi")
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	defer os.Remove(tmp.Name())
	defer tmp.Close()
	if err := pinned.Save(tmp.Name()); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	fi, err := tmp.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}

	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	h.Set("X-Xvid-Version", strconv.FormatUint(pinned.Version(), 10))
	w.WriteHeader(http.StatusOK)
	io.Copy(w, tmp) //nolint:errcheck // the connection owns delivery
}

// --- stats, health ---

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Docs:          make(map[string]DocStats),
	}
	for _, ds := range s.docStates() {
		doc := ds.document()
		st := DocStats{
			Version:       Token(doc.Version()),
			Nodes:         doc.NumNodes(),
			Watchers:      ds.hub.watcherCount(),
			Queries:       ds.queries.Load(),
			Patches:       ds.patches.Load(),
			Watches:       ds.watches.Load(),
			Durable:       doc.Durable(),
			WALGeneration: doc.WALGeneration(),
			Role:          "leader",
			Index:         doc.Stats(),
			Mem:           doc.MemStats(),
		}
		if ds.follower != nil {
			st.Role = "follower"
			leader := ds.follower.LeaderSeen()
			lag := uint64(0)
			if v := uint64(st.Version); leader > v {
				lag = leader - v
			}
			st.Replica = &ReplicaInfo{LeaderVersion: Token(leader), Lag: lag}
		}
		resp.Docs[ds.name] = st
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
