package server

// Wire types of the xvid HTTP/JSON protocol. Version tokens are opaque
// strings on the wire (decimal commit-sequence numbers today) so clients
// treat them as resumable cursors, not arithmetic.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
)

// Token is a commit-sequence version token: the MVCC publication
// sequence number of a committed state. Tokens are returned by every
// query and patch, order commits, and feed read-your-writes
// (QueryRequest.MinVersion) and WATCH resume (?from=). They marshal as
// JSON strings ("42") but are accepted as numbers too.
type Token uint64

// MarshalJSON renders the token as a decimal string.
func (t Token) MarshalJSON() ([]byte, error) {
	return []byte(`"` + strconv.FormatUint(uint64(t), 10) + `"`), nil
}

// UnmarshalJSON accepts "42" or 42.
func (t *Token) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return fmt.Errorf("invalid version token %s", string(b))
	}
	*t = Token(v)
	return nil
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Doc names the served document; may be omitted when the server
	// serves exactly one.
	Doc string `json:"doc,omitempty"`
	// Query is the XPath expression (see the README's dialect section).
	Query string `json:"query"`
	// Explain additionally returns the executed plan tree with the
	// planner's estimated vs actual row counts.
	Explain bool `json:"explain,omitempty"`
	// MinVersion, when set, is a read-your-writes floor: the query only
	// runs against a pinned snapshot whose version is >= this token
	// (waiting briefly for it if necessary), so a client that just
	// patched always sees its own commit.
	MinVersion Token `json:"min_version,omitempty"`
	// Limit bounds the serialized results (default 1000; Count always
	// reports the full hit count).
	Limit int `json:"limit,omitempty"`
}

// ResultItem is one query hit.
type ResultItem struct {
	// Node is the tree node id of the hit at the response's version (or
	// the owning element for attribute hits). Node ids are positional:
	// they stay valid until the next structural commit (delete/insert),
	// which is why patches take an if_version precondition.
	Node int32 `json:"node"`
	// Attr is the attribute id for attribute hits, -1 otherwise.
	Attr   int32  `json:"attr"`
	IsAttr bool   `json:"is_attr,omitempty"`
	Name   string `json:"name,omitempty"`
	Value  string `json:"value"`
	Path   string `json:"path"`
}

// ExplainInfo is the executed plan of an explain query.
type ExplainInfo struct {
	// Plan is the printable operator tree; each operator carries the
	// planner's cardinality estimate next to the observed actual.
	Plan      string  `json:"plan"`
	UsesIndex bool    `json:"uses_index"`
	EstCost   float64 `json:"est_cost"`
}

// ReplicaInfo reports a follower's replication position alongside a
// query answered by it.
type ReplicaInfo struct {
	// LeaderVersion is the highest leader version the follower has
	// observed on its subscription (applied or still in flight).
	LeaderVersion Token `json:"leader_version"`
	// Lag is LeaderVersion minus the pinned version the query ran
	// against: how many committed leader versions the answer is behind.
	// 0 means the answer is current as of everything the follower has
	// heard from the leader.
	Lag uint64 `json:"lag"`
}

// QueryResponse is the body of a successful query.
type QueryResponse struct {
	Doc string `json:"doc"`
	// Version is the pinned MVCC version the whole query ran against —
	// planning, execution, and result binding all observed this one
	// published state.
	Version   Token        `json:"version"`
	Count     int          `json:"count"`
	Results   []ResultItem `json:"results"`
	Truncated bool         `json:"truncated,omitempty"`
	Explain   *ExplainInfo `json:"explain,omitempty"`
	// Replica is set when a follower answered: its replication position
	// and how far behind the leader this answer is.
	Replica *ReplicaInfo `json:"replica,omitempty"`
	// AsOf is set on point-in-time queries (?version=N): the historical
	// version the answer was reconstructed at (equals Version).
	AsOf Token `json:"as_of,omitempty"`
}

// PatchOp is one operation of a patch. Exactly one shape applies per op:
//
//   - set_text: Node (a text node, or an element with exactly one text
//     child, which resolves to that child) + Value;
//   - set_attr: Attr, or Node+Name, + Value;
//   - delete:   Node (the subtree root to remove);
//   - insert:   Node (the parent) + Pos + XML (the fragment).
type PatchOp struct {
	Op    string `json:"op"`
	Node  *int32 `json:"node,omitempty"`
	Attr  *int32 `json:"attr,omitempty"`
	Name  string `json:"name,omitempty"`
	Value string `json:"value,omitempty"`
	Pos   int    `json:"pos,omitempty"`
	XML   string `json:"xml,omitempty"`
}

// PatchRequest is the body of POST /v1/patch. A patch maps onto exactly
// one WAL commit: either a batch of set_text ops (applied atomically
// through one UpdateTexts call — one log record, one published version)
// or a single set_attr/delete/insert op. Mixed or multi-structural
// batches are rejected rather than silently split into several commits.
type PatchRequest struct {
	Doc string `json:"doc,omitempty"`
	// IfVersion, when set, is an optimistic-concurrency precondition:
	// the patch applies only if the document's current version equals
	// the token; otherwise the server answers 409 with the current
	// version. Always pass it when ops carry node ids obtained from an
	// earlier query — a structural commit in between may have shifted
	// them.
	IfVersion *Token    `json:"if_version,omitempty"`
	Ops       []PatchOp `json:"ops"`
}

// PatchResponse reports the committed patch: Version is the published
// commit-sequence token (pass it as MinVersion to read your write).
type PatchResponse struct {
	Doc     string `json:"doc"`
	Version Token  `json:"version"`
	Ops     int    `json:"ops"`
}

// WatchEvent is the data payload of one WATCH change event.
type WatchEvent struct {
	Version Token  `json:"version"`
	Kind    string `json:"kind"`
	Ops     int    `json:"ops"`
	// Payload is the canonical write-ahead-log record encoding of the
	// commit, base64 (standard encoding) — present only on streams opened
	// with ?payload=1. A subscriber applying these through
	// xmlvi.Document.ApplyChange in version order reconstructs every
	// published state: the stream is the log, shipped live.
	Payload string `json:"payload,omitempty"`
}

// WatchHello is the data payload of the stream-opening hello event:
// Version is the stream position the watcher resumes after (its ?from=
// token, or the current version when absent); Current is the document's
// version at stream open, so a resuming subscriber knows how far behind
// it starts (Current - Version changes are already queued).
type WatchHello struct {
	Doc     string `json:"doc"`
	Version Token  `json:"version"`
	Current Token  `json:"current"`
}

// DocStats is one served document's /v1/stats entry.
type DocStats struct {
	Version       Token  `json:"version"`
	Nodes         int    `json:"nodes"`
	Watchers      int    `json:"watchers"`
	Queries       uint64 `json:"queries"`
	Patches       uint64 `json:"patches"`
	Watches       uint64 `json:"watches"`
	Durable       bool   `json:"durable"`
	WALGeneration uint64 `json:"wal_generation,omitempty"`
	// Role is "leader" for locally written documents, "follower" for
	// replicas applying a leader's shipped log.
	Role string `json:"role"`
	// Replica reports a follower's position and lag (followers only).
	Replica *ReplicaInfo    `json:"replica,omitempty"`
	Index   core.IndexStats `json:"index"`
	// Mem is the served version's in-memory footprint (packed layout),
	// with bytes_per_node as the tracked layout metric.
	Mem core.MemStats `json:"mem"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64             `json:"uptime_seconds"`
	Docs          map[string]DocStats `json:"docs"`
}

// Error codes of the protocol, stable for clients to branch on.
const (
	CodeBadRequest      = "bad_request"      // malformed JSON, unknown op, bad op shape
	CodeXPathParse      = "xpath_parse"      // the expression does not parse
	CodeUnsupportedPath = "unsupported_path" // parsed, but the dialect cannot answer it (ErrUnsupportedPath)
	CodeBadTarget       = "bad_target"       // a patch op names a node/attr that does not exist or has the wrong kind
	CodeNotFound        = "not_found"        // unknown document
	CodeConflict        = "conflict"         // if_version mismatch or write-write transaction conflict
	CodeResumeGone      = "resume_gone"      // watch resume token older than the retention window
	CodeTimeout         = "timeout"          // min_version not reached in time
	CodeReadOnly        = "read_only"        // patch against a follower replica
	CodeNoHistory       = "no_history"       // ?version=N on a document served without a durable snapshot/WAL pair
	CodeVersionGone     = "version_gone"     // ?version=N older than the snapshot (compacted by a checkpoint)
	CodeVersionFuture   = "version_future"   // ?version=N newer than the durable log
	CodeInternal        = "internal"
)

// ErrorInfo is the error envelope every non-2xx response carries.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// CurrentVersion accompanies conflict errors so the client can
	// re-read and retry at the right version.
	CurrentVersion *Token `json:"current_version,omitempty"`
}

// ErrorBody wraps ErrorInfo as {"error": {...}}.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection owns delivery
}

// writeError writes the error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorBody{Error: ErrorInfo{Code: code, Message: msg}})
}

// writeConflict writes a 409 carrying the current version token.
func writeConflict(w http.ResponseWriter, msg string, current uint64) {
	cur := Token(current)
	writeJSON(w, http.StatusConflict, ErrorBody{Error: ErrorInfo{
		Code: CodeConflict, Message: msg, CurrentVersion: &cur,
	}})
}
