package txn

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/xmltree"
)

func TestManagerIndexesAccessor(t *testing.T) {
	ix := wideDoc(t, 2)
	m := NewManager(ix)
	if m.Indexes() != ix {
		t.Error("Indexes accessor broken")
	}
	lm := NewLockingManager(ix)
	if lm.Indexes() != ix {
		t.Error("LockingManager.Indexes accessor broken")
	}
}

func TestLockingManagerStatsAndAbort(t *testing.T) {
	ix := wideDoc(t, 3)
	m := NewLockingManager(ix)
	texts := textNodes(ix.Doc())

	tx := m.Begin()
	if err := tx.SetText(texts[0], "staged"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if c, a := m.Stats(); c != 0 || a != 1 {
		t.Errorf("stats after abort = %d/%d", c, a)
	}
	if len(ix.LookupString("staged")) != 0 {
		t.Error("aborted locking txn leaked a write")
	}
	// Chain locks must be released by the abort.
	tx2 := m.Begin()
	if err := tx2.SetText(texts[0], "committed"); err != nil {
		t.Fatalf("locks not released: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if c, _ := m.Stats(); c != 1 {
		t.Errorf("commits = %d", c)
	}
	// Operations on a closed txn fail cleanly.
	if err := tx2.SetText(texts[0], "late"); err != ErrClosed {
		t.Errorf("SetText after commit = %v", err)
	}
	if err := tx2.Commit(); err != ErrClosed {
		t.Errorf("Commit after commit = %v", err)
	}
	tx2.Abort() // no-op, must not panic or double-count
	if _, a := m.Stats(); a != 1 {
		t.Errorf("aborts = %d after no-op Abort", a)
	}
}

func TestCommutativeDoubleCommitAndAbortIdempotent(t *testing.T) {
	ix := wideDoc(t, 2)
	m := NewManager(ix)
	tx := m.Begin()
	if err := tx.Commit(); err != nil { // empty commit is legal
		t.Fatal(err)
	}
	if err := tx.Commit(); err != ErrClosed {
		t.Errorf("second commit = %v", err)
	}
	tx.Abort() // after commit: no-op
	if c, a := m.Stats(); c != 1 || a != 0 {
		t.Errorf("stats = %d/%d", c, a)
	}
}

func TestGetTextErrorsOnClosed(t *testing.T) {
	ix := wideDoc(t, 1)
	m := NewManager(ix)
	tx := m.Begin()
	tx.Abort()
	if _, err := tx.GetText(textNodes(ix.Doc())[0]); err != ErrClosed {
		t.Errorf("GetText after abort = %v", err)
	}
}

func TestLockingSetTextRejectsElements(t *testing.T) {
	ix := wideDoc(t, 1)
	m := NewLockingManager(ix)
	tx := m.Begin()
	defer tx.Abort()
	if err := tx.SetText(xmltree.NodeID(0), "x"); err == nil || err == ErrConflict {
		t.Errorf("SetText on document = %v", err)
	}
}

// TestLockingConcurrentSerializes: under ancestor locking, concurrent
// workers still make progress (through retries) and end consistent.
func TestLockingConcurrentSerializes(t *testing.T) {
	ix := wideDoc(t, 40)
	m := NewLockingManager(ix)
	texts := textNodes(ix.Doc())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for {
					tx := m.Begin()
					if err := tx.SetText(texts[w*10+i], fmt.Sprintf("L%d.%d", w, i)); err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err != nil {
						t.Error(err)
						return
					}
					break
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	if c, _ := m.Stats(); c != 40 {
		t.Errorf("commits = %d, want 40", c)
	}
}

// TestTxnWriteSameNodeTwice: rewriting a node inside one txn keeps a
// single lock and the last value wins.
func TestTxnWriteSameNodeTwice(t *testing.T) {
	ix := wideDoc(t, 1)
	m := NewManager(ix)
	tx := m.Begin()
	n := textNodes(ix.Doc())[0]
	if err := tx.SetText(n, "first"); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetText(n, "second"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The text node and its whole ancestor chain carry the new value.
	if len(ix.LookupString("second")) == 0 || len(ix.LookupString("first")) != 0 {
		t.Error("last write did not win")
	}
}
