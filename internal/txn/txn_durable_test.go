package txn

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

// TestCommitLogsOneBatchRecord pins the durable commit contract: every
// committed transaction appends exactly ONE text-batch record to the
// write-ahead log (its whole write set, atomically recoverable), aborts
// and empty commits append nothing, and replaying the log reproduces
// the committed state.
func TestCommitLogsOneBatchRecord(t *testing.T) {
	doc, err := xmlparse.ParseString(`<r><a>1</a><b>2</b><c>3</c></r>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := core.Build(doc, core.DefaultOptions())
	dir := t.TempDir()
	snap := filepath.Join(dir, "db.xvi")
	wal := filepath.Join(dir, "db.wal")
	if err := ix.StartDurable(snap, wal, 1); err != nil {
		t.Fatal(err)
	}
	m := NewManager(ix)

	var texts []xmltree.NodeID
	for i := 0; i < doc.NumNodes(); i++ {
		if doc.Kind(xmltree.NodeID(i)) == xmltree.Text {
			texts = append(texts, xmltree.NodeID(i))
		}
	}

	// Two committed transactions with multi-node write sets.
	t1 := m.Begin()
	if err := t1.SetText(texts[0], "10"); err != nil {
		t.Fatal(err)
	}
	if err := t1.SetText(texts[1], "20"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	if err := t2.SetText(texts[2], "30"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// An aborted transaction and an empty commit log nothing.
	t3 := m.Begin()
	if err := t3.SetText(texts[0], "nope"); err != nil {
		t.Fatal(err)
	}
	t3.Abort()
	t4 := m.Begin()
	if err := t4.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := ix.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	var kinds []storage.RecordKind
	err = storage.ReplayWAL(wal, func(rec storage.Record) error {
		kinds = append(kinds, rec.Kind)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []storage.RecordKind{storage.RecCheckpoint, storage.RecTextBatch, storage.RecTextBatch}
	if len(kinds) != len(want) {
		t.Fatalf("log has %d records (%v), want %v", len(kinds), kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("record %d is %v, want %v", i, kinds[i], want[i])
		}
	}

	// Recovery reproduces the committed state.
	re, err := core.OpenDurable(snap, wal, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseWAL()
	if err := re.Verify(); err != nil {
		t.Fatal(err)
	}
	for i, wantVal := range []string{"10", "20", "30"} {
		if got := re.Doc().Value(texts[i]); got != wantVal {
			t.Fatalf("recovered text %d = %q, want %q", i, got, wantVal)
		}
	}
}
