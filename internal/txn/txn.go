// Package txn implements the transaction-management scheme of Section 5.1
// of the paper for the string and typed value indices.
//
// The challenge: every text update changes the hash of ALL its ancestors,
// including the root, so naive two-phase locking would make the root a
// global bottleneck. The paper's observation is that because the
// combination function C is associative and index maintenance refolds an
// ancestor from its children's CURRENT stored fields, concurrent
// transactions touching disjoint text nodes commute: no ancestor locks are
// needed. A committing transaction re-reads the latest fields of the
// affected ancestors (and their children) and recomputes — even if
// siblings changed in the meantime, the result is correct.
//
// Manager implements that protocol: per-leaf locks only, staged writes,
// and a short commit section that applies the batch through the Figure 8
// update algorithm. LockingManager implements the baseline the paper
// argues against — locking the full ancestor chain for the transaction's
// lifetime — for the A5 ablation benchmark.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/xmltree"
)

// ErrConflict is returned when a transaction tries to lock a node already
// locked by another live transaction.
var ErrConflict = errors.New("txn: write-write conflict")

// ErrClosed is returned by operations on committed or aborted
// transactions.
var ErrClosed = errors.New("txn: transaction is closed")

// Manager coordinates commutative transactions over one index set.
type Manager struct {
	mu     sync.Mutex // guards lockOwner and commit application
	ix     *core.Indexes
	locked map[xmltree.NodeID]*Txn

	commits uint64
	aborts  uint64
}

// NewManager wraps an index set.
func NewManager(ix *core.Indexes) *Manager {
	return &Manager{ix: ix, locked: make(map[xmltree.NodeID]*Txn)}
}

// Indexes exposes the underlying index set (reads are safe between
// commits; the commit section is the only writer).
func (m *Manager) Indexes() *core.Indexes { return m.ix }

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	return &Txn{mgr: m, writes: make(map[xmltree.NodeID]string)}
}

// Stats reports commit/abort counts.
func (m *Manager) Stats() (commits, aborts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits, m.aborts
}

// Txn is a commutative transaction: it locks only the text nodes it
// writes — never their ancestors — and stages values until Commit.
type Txn struct {
	mgr    *Manager
	writes map[xmltree.NodeID]string
	held   []xmltree.NodeID
	closed bool
}

// SetText stages a new value for a text node, acquiring only that node's
// lock. It fails with ErrConflict if another live transaction holds it.
func (t *Txn) SetText(n xmltree.NodeID, value string) error {
	if t.closed {
		return ErrClosed
	}
	switch t.mgr.ix.Doc().Kind(n) {
	case xmltree.Text, xmltree.Comment, xmltree.PI:
	default:
		return fmt.Errorf("txn: node %d is not a value-carrying node", n)
	}
	if _, mine := t.writes[n]; !mine {
		m := t.mgr
		m.mu.Lock()
		if owner, taken := m.locked[n]; taken && owner != t {
			m.mu.Unlock()
			return ErrConflict
		}
		m.locked[n] = t
		m.mu.Unlock()
		t.held = append(t.held, n)
	}
	t.writes[n] = value
	return nil
}

// GetText reads a text node with read-your-writes semantics.
func (t *Txn) GetText(n xmltree.NodeID) (string, error) {
	if t.closed {
		return "", ErrClosed
	}
	if v, ok := t.writes[n]; ok {
		return v, nil
	}
	return t.mgr.ix.Doc().Value(n), nil
}

// Commit applies the staged writes through the index update algorithm.
// Ancestor fields are recomputed from their children's current state
// inside the commit section, so sibling updates committed meanwhile are
// folded in correctly — the commutativity argument of Section 5.1.
func (t *Txn) Commit() error {
	if t.closed {
		return ErrClosed
	}
	t.closed = true
	m := t.mgr
	updates := make([]core.TextUpdate, 0, len(t.writes))
	for n, v := range t.writes {
		updates = append(updates, core.TextUpdate{Node: n, Value: v})
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].Node < updates[j].Node })

	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.ix.UpdateTexts(updates)
	t.releaseLocked()
	if err != nil {
		m.aborts++
		return err
	}
	m.commits++
	return nil
}

// Abort drops the staged writes and releases locks.
func (t *Txn) Abort() {
	if t.closed {
		return
	}
	t.closed = true
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	t.releaseLocked()
	m.aborts++
}

// releaseLocked must run under mgr.mu.
func (t *Txn) releaseLocked() {
	for _, n := range t.held {
		if t.mgr.locked[n] == t {
			delete(t.mgr.locked, n)
		}
	}
	t.held = nil
}

// --- ancestor-locking baseline (ablation A5) ---

// LockingManager implements the conventional protocol the paper argues
// against: a transaction holds locks on the written node AND its entire
// ancestor chain (root included) until commit. Every transaction
// therefore conflicts at the root.
type LockingManager struct {
	mu     sync.Mutex
	ix     *core.Indexes
	locked map[xmltree.NodeID]*LockingTxn

	commits uint64
	aborts  uint64
}

// NewLockingManager wraps an index set with ancestor locking.
func NewLockingManager(ix *core.Indexes) *LockingManager {
	return &LockingManager{ix: ix, locked: make(map[xmltree.NodeID]*LockingTxn)}
}

// Indexes exposes the underlying index set.
func (m *LockingManager) Indexes() *core.Indexes { return m.ix }

// Begin starts an ancestor-locking transaction.
func (m *LockingManager) Begin() *LockingTxn {
	return &LockingTxn{mgr: m, writes: make(map[xmltree.NodeID]string)}
}

// Stats reports commit/abort counts.
func (m *LockingManager) Stats() (commits, aborts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits, m.aborts
}

// LockingTxn stages writes while holding leaf-to-root lock chains.
type LockingTxn struct {
	mgr    *LockingManager
	writes map[xmltree.NodeID]string
	held   map[xmltree.NodeID]bool
	closed bool
}

// SetText stages a write after locking the node and every ancestor. It
// fails with ErrConflict if any node on the chain is held elsewhere —
// which, with the root on every chain, means any two concurrent
// transactions conflict.
func (t *LockingTxn) SetText(n xmltree.NodeID, value string) error {
	if t.closed {
		return ErrClosed
	}
	doc := t.mgr.ix.Doc()
	switch doc.Kind(n) {
	case xmltree.Text, xmltree.Comment, xmltree.PI:
	default:
		return fmt.Errorf("txn: node %d is not a value-carrying node", n)
	}
	chain := append([]xmltree.NodeID{n}, doc.Ancestors(n)...)
	m := t.mgr
	m.mu.Lock()
	for _, c := range chain {
		if owner, taken := m.locked[c]; taken && owner != t {
			m.mu.Unlock()
			return ErrConflict
		}
	}
	if t.held == nil {
		t.held = make(map[xmltree.NodeID]bool, len(chain))
	}
	for _, c := range chain {
		m.locked[c] = t
		t.held[c] = true
	}
	m.mu.Unlock()
	t.writes[n] = value
	return nil
}

// Commit applies staged writes and releases the chains.
func (t *LockingTxn) Commit() error {
	if t.closed {
		return ErrClosed
	}
	t.closed = true
	m := t.mgr
	updates := make([]core.TextUpdate, 0, len(t.writes))
	for n, v := range t.writes {
		updates = append(updates, core.TextUpdate{Node: n, Value: v})
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].Node < updates[j].Node })
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.ix.UpdateTexts(updates)
	for c := range t.held {
		if m.locked[c] == t {
			delete(m.locked, c)
		}
	}
	if err != nil {
		m.aborts++
		return err
	}
	m.commits++
	return nil
}

// Abort releases the chains without applying writes.
func (t *LockingTxn) Abort() {
	if t.closed {
		return
	}
	t.closed = true
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	for c := range t.held {
		if m.locked[c] == t {
			delete(m.locked, c)
		}
	}
	m.aborts++
}
