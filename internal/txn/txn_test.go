package txn

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/vhash"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

// wideDoc builds <root> with n <leaf>value</leaf> children — maximal
// ancestor sharing (every update touches the root's hash).
func wideDoc(t testing.TB, n int) *core.Indexes {
	t.Helper()
	b := xmltree.NewBuilder()
	b.StartElement("root")
	for i := 0; i < n; i++ {
		b.StartElement("leaf")
		b.Text(fmt.Sprintf("v%d", i))
		b.EndElement()
	}
	b.EndElement()
	doc, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return core.Build(doc, core.DefaultOptions())
}

func textNodes(d *xmltree.Doc) []xmltree.NodeID {
	var out []xmltree.NodeID
	for i := 0; i < d.NumNodes(); i++ {
		if d.Kind(xmltree.NodeID(i)) == xmltree.Text {
			out = append(out, xmltree.NodeID(i))
		}
	}
	return out
}

func TestCommitBasic(t *testing.T) {
	ix := wideDoc(t, 4)
	m := NewManager(ix)
	texts := textNodes(ix.Doc())
	tx := m.Begin()
	if err := tx.SetText(texts[0], "updated"); err != nil {
		t.Fatal(err)
	}
	if v, _ := tx.GetText(texts[0]); v != "updated" {
		t.Error("read-your-writes failed")
	}
	if v, _ := tx.GetText(texts[1]); v != "v1" {
		t.Error("read of unwritten node wrong")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(ix.LookupString("updated")) == 0 {
		t.Error("committed value not indexed")
	}
	if c, a := m.Stats(); c != 1 || a != 0 {
		t.Errorf("stats = %d/%d", c, a)
	}
}

func TestAbortDiscards(t *testing.T) {
	ix := wideDoc(t, 2)
	m := NewManager(ix)
	texts := textNodes(ix.Doc())
	tx := m.Begin()
	if err := tx.SetText(texts[0], "ghost"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(ix.LookupString("ghost")) != 0 {
		t.Error("aborted value visible")
	}
	if err := tx.SetText(texts[0], "late"); err != ErrClosed {
		t.Errorf("write after abort = %v", err)
	}
	// The lock must be free for another txn.
	tx2 := m.Begin()
	if err := tx2.SetText(texts[0], "fresh"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	ix := wideDoc(t, 2)
	m := NewManager(ix)
	texts := textNodes(ix.Doc())
	t1 := m.Begin()
	t2 := m.Begin()
	if err := t1.SetText(texts[0], "a"); err != nil {
		t.Fatal(err)
	}
	if err := t2.SetText(texts[0], "b"); err != ErrConflict {
		t.Errorf("conflicting write = %v, want ErrConflict", err)
	}
	// Disjoint writes do NOT conflict — the paper's key property: t1 and
	// t2 share every ancestor yet both proceed.
	if err := t2.SetText(texts[1], "b"); err != nil {
		t.Errorf("disjoint write should succeed: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAncestorLockingConflictsAtRoot(t *testing.T) {
	ix := wideDoc(t, 2)
	m := NewLockingManager(ix)
	texts := textNodes(ix.Doc())
	t1 := m.Begin()
	t2 := m.Begin()
	if err := t1.SetText(texts[0], "a"); err != nil {
		t.Fatal(err)
	}
	// Disjoint leaves, but the shared root lock conflicts — the
	// bottleneck the paper's design removes.
	if err := t2.SetText(texts[1], "b"); err != ErrConflict {
		t.Errorf("ancestor-locking disjoint write = %v, want ErrConflict", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.SetText(texts[1], "b"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCommutativeCommits is the Section 5.1 scenario: many
// goroutines update disjoint leaves under shared ancestors concurrently;
// after all commits the index equals a from-scratch rebuild.
func TestConcurrentCommutativeCommits(t *testing.T) {
	const workers = 8
	const perWorker = 25
	ix := wideDoc(t, workers*perWorker)
	m := NewManager(ix)
	texts := textNodes(ix.Doc())
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				tx := m.Begin()
				n := texts[w*perWorker+i]
				if err := tx.SetText(n, fmt.Sprintf("w%d-%d-%d", w, i, rng.Intn(100))); err != nil {
					errs <- err
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("after concurrent commits: %v", err)
	}
	if c, _ := m.Stats(); c != workers*perWorker {
		t.Errorf("commits = %d, want %d", c, workers*perWorker)
	}
	// Root hash equals a hash of the actual final string value.
	want := vhash.HashString(ix.Doc().StringValue(0))
	if got := ix.NodeHash(0); got != want {
		t.Errorf("root hash %#x, want %#x", got, want)
	}
}

// TestConcurrentContendedWorkload mixes conflicts and retries.
func TestConcurrentContendedWorkload(t *testing.T) {
	ix := wideDoc(t, 10)
	m := NewManager(ix)
	texts := textNodes(ix.Doc())
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w * 77)))
			for i := 0; i < 50; i++ {
				tx := m.Begin()
				ok := true
				for j := 0; j < 1+rng.Intn(3); j++ {
					n := texts[rng.Intn(len(texts))]
					if err := tx.SetText(n, fmt.Sprintf("%d.%d", w, i)); err != nil {
						tx.Abort() // conflict: retry next iteration
						ok = false
						break
					}
				}
				if ok {
					if err := tx.Commit(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	c, a := m.Stats()
	t.Logf("contended workload: %d commits, %d aborts", c, a)
	if c == 0 {
		t.Error("no transaction committed")
	}
}

func TestSetTextRejectsElements(t *testing.T) {
	ix := wideDoc(t, 1)
	m := NewManager(ix)
	tx := m.Begin()
	defer tx.Abort()
	if err := tx.SetText(0, "x"); err == nil || err == ErrConflict {
		t.Errorf("SetText on document = %v", err)
	}
}

func TestDeepDocumentCommutativity(t *testing.T) {
	// Deep chains: every update's refold path reaches the root through
	// many levels.
	xml := "<a><b><c><d><e>one</e><f>two</f></d></c></b></a>"
	doc, err := xmlparse.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	ix := core.Build(doc, core.DefaultOptions())
	m := NewManager(ix)
	texts := textNodes(doc)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				tx := m.Begin()
				if err := tx.SetText(texts[w], fmt.Sprintf("w%d-%d", w, i)); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}
