package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Reporting: aligned text tables matching the paper's artefacts, written
// to any io.Writer (the xvibench command and EXPERIMENTS.md use these).

func table(w io.Writer, title string, headers []string, rows [][]string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// ReportTable1 renders E1 next to the paper's numbers.
func ReportTable1(w io.Writer, rows []Table1Row) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset,
			fmt.Sprintf("%.1f", r.SizeMB),
			fmt.Sprint(r.TotalNodes),
			fmt.Sprintf("%d (%.0f%%)", r.TextNodes, r.TextPct),
			fmt.Sprintf("%.0f%%", r.PaperTextPct),
			fmt.Sprintf("%d (%.1f%%)", r.DoubleTexts, r.DoublePct),
			fmt.Sprintf("%.1f%%", r.PaperDoublePct),
			fmt.Sprint(r.NonLeaf),
			fmt.Sprint(r.PaperNonLeaf),
			fmt.Sprintf("%d (%.1f%%)", r.DateValues, r.DatePct),
		})
	}
	table(w, "Table 1 — dataset statistics (measured vs paper)",
		[]string{"dataset", "MB", "nodes", "text nodes", "paper", "double values", "paper", "non-leaf", "paper", "date values"}, out)
}

// ReportFig9 renders E2–E5.
func ReportFig9(w io.Writer, rows []Fig9Row) {
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{
			r.Dataset,
			fmt.Sprintf("%.1f", r.ShredMS),
			fmt.Sprintf("%.1f", r.StringIdxMS),
			fmt.Sprintf("%.1f%%", r.StringTimePct),
			fmt.Sprintf("%.1f", r.DoubleIdxMS),
			fmt.Sprintf("%.1f%%", r.DoubleTimePct),
		})
	}
	table(w, "Figure 9 (top) — index creation time vs shred time (paper: string <10%, double <2%)",
		[]string{"dataset", "shred ms", "string ms", "string ovh", "double ms", "double ovh"}, t)

	t = t[:0]
	for _, r := range rows {
		t = append(t, []string{
			r.Dataset,
			fmt.Sprintf("%.2f", float64(r.DBBytes)/(1<<20)),
			fmt.Sprintf("%.2f", float64(r.StringIdxBytes)/(1<<20)),
			fmt.Sprintf("%.1f%%", r.StringSizePct),
			fmt.Sprintf("%.2f", float64(r.DoubleIdxBytes)/(1<<20)),
			fmt.Sprintf("%.1f%%", r.DoubleSizePct),
		})
	}
	table(w, "Figure 9 (bottom) — index storage vs DB storage (paper: string 10-20%, double <=2-3%)",
		[]string{"dataset", "db MB", "string MB", "string share", "double MB", "double share"}, t)
}

// ReportFig10 renders E6–E7 as one series per dataset.
func ReportFig10(w io.Writer, points []Fig10Point) {
	var t [][]string
	for _, p := range points {
		t = append(t, []string{
			p.Dataset,
			fmt.Sprint(p.Updated),
			fmt.Sprintf("%.2f", p.StringMS),
			fmt.Sprintf("%.2f", p.DoubleMS),
		})
	}
	table(w, "Figure 10 — update time vs number of updated nodes (paper: <400ms at 10^6; double <= string)",
		[]string{"dataset", "updated", "string ms", "double ms"}, t)
}

// ReportFig11 renders E8: the histogram and per-dataset summaries.
func ReportFig11(w io.Writer, rows []Fig11Row, sums []Fig11Summary) {
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{r.Dataset, fmt.Sprint(r.ClusterSize), fmt.Sprint(r.HashValues)})
	}
	table(w, "Figure 11 — hash stability: #hash values with k distinct strings",
		[]string{"dataset", "k", "hash values"}, t)

	t = t[:0]
	for _, s := range sums {
		t = append(t, []string{
			s.Dataset,
			fmt.Sprint(s.DistinctStrings),
			fmt.Sprint(s.DistinctHashes),
			fmt.Sprintf("%.2f%%", s.CollidingPct),
			fmt.Sprint(s.MaxCluster),
		})
	}
	table(w, "Figure 11 — summary (paper: <1% colliding for most, <10% for PSD/Wiki, clusters up to 9)",
		[]string{"dataset", "distinct strings", "distinct hashes", "colliding", "max cluster"}, t)
}

// ReportA1 renders the C-vs-rehash ablation.
func ReportA1(w io.Writer, rows []A1Row) {
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{
			r.Dataset, fmt.Sprint(r.Updates),
			fmt.Sprintf("%.2f", r.CombineMS),
			fmt.Sprintf("%.2f", r.RehashMS),
			fmt.Sprintf("%.1fx", r.SpeedupX),
			fmt.Sprintf("%.1f", r.AvgAncestor),
		})
	}
	table(w, "A1 — ancestor maintenance: combination function C vs naive re-hash",
		[]string{"dataset", "updates", "C ms", "rehash ms", "speedup", "avg ancestors"}, t)
}

// ReportA2 renders the SCT-vs-FSM ablation.
func ReportA2(w io.Writer, r A2Row) {
	table(w, "A2 — state combination: SCT probe vs FSM re-run",
		[]string{"pairs", "SCT ns/op", "FSM ns/op", "speedup"},
		[][]string{{
			fmt.Sprint(r.Pairs),
			fmt.Sprintf("%.1f", r.SCTNS),
			fmt.Sprintf("%.1f", r.FSMNS),
			fmt.Sprintf("%.1fx", r.SpeedupX),
		}})
}

// ReportA3 renders the query ablation.
func ReportA3(w io.Writer, rows []A3Row) {
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{
			r.Dataset, r.Query, fmt.Sprint(r.Hits),
			fmt.Sprintf("%.2f", r.ScanMS),
			fmt.Sprintf("%.2f", r.IndexedMS),
			fmt.Sprintf("%.1fx", r.SpeedupX),
		})
	}
	table(w, "A3 — query evaluation: full scan vs index-accelerated",
		[]string{"dataset", "query", "hits", "scan ms", "indexed ms", "speedup"}, t)
}

// ReportA4 renders the one-pass ablation.
func ReportA4(w io.Writer, rows []A4Row) {
	var t [][]string
	for _, r := range rows {
		t = append(t, []string{
			r.Dataset,
			fmt.Sprintf("%.1f", r.OnePassMS),
			fmt.Sprintf("%.1f", r.ThreePassMS),
			fmt.Sprintf("%.2fx", r.SpeedupX),
		})
	}
	table(w, "A4 — creating all indices: one pass vs three passes",
		[]string{"dataset", "one-pass ms", "three-pass ms", "speedup"}, t)
}

// ReportA6 renders the scan-vs-index selectivity crossover.
func ReportA6(w io.Writer, rows []A6Row) {
	var t [][]string
	for _, r := range rows {
		auto := "scan"
		if r.AutoIndex {
			auto = "index"
		}
		t = append(t, []string{
			r.Dataset,
			fmt.Sprintf("%.3f", r.Selectivity),
			fmt.Sprint(r.Hits),
			fmt.Sprintf("%.2f", r.ScanMS),
			fmt.Sprintf("%.2f", r.IndexMS),
			fmt.Sprintf("%.2f", r.AutoMS),
			auto,
			fmt.Sprintf("%.1f", r.BytesPerNode),
		})
	}
	table(w, "A6 — range-predicate selectivity crossover: forced scan vs forced index vs planner",
		[]string{"dataset", "selectivity", "hits", "scan ms", "index ms", "auto ms", "auto chose", "B/node"}, t)
}

// ReportA7 renders the conjunctive planner-vs-legacy comparison.
func ReportA7(w io.Writer, rows []A7Row) {
	var t [][]string
	for _, r := range rows {
		strategy := "scan"
		if r.UsedIndex {
			strategy = "index"
		}
		if r.Intersected {
			strategy = "intersect"
		}
		t = append(t, []string{
			r.Query,
			fmt.Sprint(r.Hits),
			fmt.Sprintf("%.2f", r.LegacyMS),
			fmt.Sprintf("%.2f", r.PlannerMS),
			fmt.Sprintf("%.1fx", r.SpeedupX),
			strategy,
			fmt.Sprintf("%.1f", r.BytesPerNode),
		})
	}
	table(w, "A7 — conjunctive predicates: first-condition heuristic vs cost-based planner",
		[]string{"query", "hits", "legacy ms", "planner ms", "speedup", "planner strategy", "B/node"}, t)
}

// ReportA5 renders the transaction ablation.
func ReportA5(w io.Writer, r A5Row) {
	table(w, "A5 — concurrent updates: commutative commit vs ancestor locking",
		[]string{"workers", "txns/worker", "commutative ms", "aborts", "locking ms", "aborts", "speedup"},
		[][]string{{
			fmt.Sprint(r.Workers), fmt.Sprint(r.TxnsPerWorker),
			fmt.Sprintf("%.1f", r.CommutativeMS), fmt.Sprint(r.CommutativeAbort),
			fmt.Sprintf("%.1f", r.LockingMS), fmt.Sprint(r.LockingAbort),
			fmt.Sprintf("%.1fx", r.SpeedupX),
		}})
}
