package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/txn"
	"repro/internal/vhash"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// --- A1: combination function C vs naive re-hash ---

// A1Row compares maintaining ancestor hashes with the combination
// function C (the paper's design) against re-hashing reconstructed
// string values after each update batch.
type A1Row struct {
	Dataset     string
	Updates     int
	CombineMS   float64 // Figure 8 incremental update (uses C)
	RehashMS    float64 // re-hash every affected ancestor's string value
	SpeedupX    float64
	AvgAncestor float64 // average ancestors per updated node
}

// RunA1 measures one dataset at one batch size.
func RunA1(cfg Config, dataset string, updates int) (A1Row, error) {
	p, err := cfg.prepare(dataset)
	if err != nil {
		return A1Row{}, err
	}
	ix := core.Build(p.doc, cfg.buildOpts(core.Options{String: true}))
	doc := p.doc
	var texts []xmltree.NodeID
	for i := 0; i < doc.NumNodes(); i++ {
		if doc.Kind(xmltree.NodeID(i)) == xmltree.Text {
			texts = append(texts, xmltree.NodeID(i))
		}
	}
	if updates > len(texts) {
		updates = len(texts)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	row := A1Row{Dataset: dataset, Updates: updates}

	var totalAnc int
	var combineNS, rehashNS int64
	for r := 0; r < cfg.repeat(); r++ {
		batch := randomUpdates(rng, texts, updates)
		start := time.Now()
		if err := ix.UpdateTexts(batch); err != nil {
			return row, err
		}
		combineNS += time.Since(start).Nanoseconds()

		// Naive baseline: apply values, then recompute every affected
		// ancestor's hash from its RECONSTRUCTED string value.
		batch = randomUpdates(rng, texts, updates)
		start = time.Now()
		affected := map[xmltree.NodeID]struct{}{}
		for _, u := range batch {
			if err := doc.SetText(u.Node, u.Value); err != nil {
				return row, err
			}
			for a := doc.Parent(u.Node); a != xmltree.InvalidNode; a = doc.Parent(a) {
				affected[a] = struct{}{}
			}
		}
		var buf []byte
		for a := range affected {
			buf = doc.AppendStringValue(buf[:0], a)
			sinkHash = vhash.Hash(buf)
		}
		rehashNS += time.Since(start).Nanoseconds()
		totalAnc += len(affected)
		// Repair the index for the values the baseline changed behind its
		// back (not timed).
		if err := ix.UpdateTexts(batch); err != nil {
			return row, err
		}
	}
	n := int64(cfg.repeat())
	row.CombineMS = float64(combineNS/n) / 1e6
	row.RehashMS = float64(rehashNS/n) / 1e6
	if row.CombineMS > 0 {
		row.SpeedupX = row.RehashMS / row.CombineMS
	}
	row.AvgAncestor = float64(totalAnc) / float64(cfg.repeat()*updates)
	return row, nil
}

var sinkHash uint32

// --- A2: SCT probe vs FSM re-run ---

// A2Row compares combining two fragment states through the SCT against
// re-running the FSM over the concatenated lexical text — the paper's
// "probing an array vs. invoking a function" observation.
type A2Row struct {
	Pairs    int
	SCTNS    float64 // ns per combination via SCT
	FSMNS    float64 // ns per combination via FSM re-run
	SpeedupX float64
}

// RunA2 measures both paths over generated fragment pairs.
func RunA2(cfg Config) A2Row {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := fsm.Double()
	type pair struct {
		a, b fsm.Frag
		text []byte
	}
	var pairs []pair
	for len(pairs) < 1000 {
		a := fmt.Sprintf("%d", rng.Intn(100000))
		b := fmt.Sprintf(".%d", rng.Intn(10000))
		fa, ok1 := m.ParseFragString(a)
		fb, ok2 := m.ParseFragString(b)
		if ok1 && ok2 {
			pairs = append(pairs, pair{a: fa, b: fb, text: []byte(a + b)})
		}
	}
	const rounds = 2000
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, p := range pairs {
			sinkElem = m.CombineElem(p.a.Elem, p.b.Elem)
		}
	}
	sctNS := float64(time.Since(start).Nanoseconds()) / float64(rounds*len(pairs))

	start = time.Now()
	for r := 0; r < rounds; r++ {
		for _, p := range pairs {
			sinkElem = m.ElemOf(p.text)
		}
	}
	fsmNS := float64(time.Since(start).Nanoseconds()) / float64(rounds*len(pairs))
	row := A2Row{Pairs: len(pairs), SCTNS: sctNS, FSMNS: fsmNS}
	if sctNS > 0 {
		row.SpeedupX = fsmNS / sctNS
	}
	return row
}

var sinkElem fsm.Elem

// --- A3: index-accelerated query vs scan ---

// A3Row compares xpath evaluation with and without the value indices.
type A3Row struct {
	Dataset   string
	Query     string
	Hits      int
	ScanMS    float64
	IndexedMS float64
	SpeedupX  float64
}

// RunA3 runs a set of selective queries over one dataset.
func RunA3(cfg Config, dataset string) ([]A3Row, error) {
	p, err := cfg.prepare(dataset)
	if err != nil {
		return nil, err
	}
	ix := core.Build(p.doc, cfg.buildOpts(core.DefaultOptions()))
	queries := queriesFor(dataset)
	var rows []A3Row
	for _, q := range queries {
		parsed, err := xpath.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("query %q: %v", q, err)
		}
		var scanNS, idxNS int64
		var hits int
		for r := 0; r < cfg.repeat(); r++ {
			start := time.Now()
			res := xpath.Evaluate(p.doc, parsed)
			scanNS += time.Since(start).Nanoseconds()
			hits = len(res)

			start = time.Now()
			res2 := xpath.EvaluateIndexed(ix.Snapshot(), parsed)
			idxNS += time.Since(start).Nanoseconds()
			if len(res2) != hits {
				return nil, fmt.Errorf("query %q: indexed %d hits, scan %d", q, len(res2), hits)
			}
		}
		n := int64(cfg.repeat())
		row := A3Row{
			Dataset:   dataset,
			Query:     q,
			Hits:      hits,
			ScanMS:    float64(scanNS/n) / 1e6,
			IndexedMS: float64(idxNS/n) / 1e6,
		}
		if row.IndexedMS > 0 {
			row.SpeedupX = row.ScanMS / row.IndexedMS
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func queriesFor(dataset string) []string {
	switch dataset {
	case "xmark1", "xmark2", "xmark4", "xmark8":
		return []string{
			`//item[quantity = 7]`,
			`//person[profile/age = 42]`,
			`//open_auction[initial > 4990]`,
			`//item[location = "Amsterdam"]`,
		}
	case "epageo":
		return []string{
			`//facility[geo_coordinates/latitude > 48.9]`,
			`//facility[.//accuracy_value = 42]`,
		}
	case "dblp":
		return []string{
			`//article[year = 2004]`,
			`//article[volume > 38]`,
		}
	case "psd":
		return []string{
			`//ProteinEntry[reference/year = 1999]`,
			`//ProteinEntry[.//kilo = 50]`,
		}
	default: // wiki
		return []string{
			`//doc[pageid = 35]`,
			`//doc[title = "never matches anything"]`,
		}
	}
}

// --- A4: one-pass simultaneous creation vs separate passes ---

// A4Row compares building all indices in one document pass (the paper's
// design: "creating multiple defined indices can be done simultaneously
// with only one pass") against three single-index passes.
type A4Row struct {
	Dataset     string
	OnePassMS   float64
	ThreePassMS float64
	SpeedupX    float64
}

// RunA4 measures one dataset.
func RunA4(cfg Config, dataset string) (A4Row, error) {
	p, err := cfg.prepare(dataset)
	if err != nil {
		return A4Row{}, err
	}
	var oneNS, threeNS int64
	for r := 0; r < cfg.repeat(); r++ {
		start := time.Now()
		core.Build(p.doc, cfg.buildOpts(core.DefaultOptions()))
		oneNS += time.Since(start).Nanoseconds()

		start = time.Now()
		core.Build(p.doc, cfg.buildOpts(core.Options{String: true}))
		core.Build(p.doc, cfg.buildOpts(core.Options{Double: true}))
		core.Build(p.doc, cfg.buildOpts(core.Options{DateTime: true}))
		threeNS += time.Since(start).Nanoseconds()
	}
	n := int64(cfg.repeat())
	row := A4Row{
		Dataset:     dataset,
		OnePassMS:   float64(oneNS/n) / 1e6,
		ThreePassMS: float64(threeNS/n) / 1e6,
	}
	if row.OnePassMS > 0 {
		row.SpeedupX = row.ThreePassMS / row.OnePassMS
	}
	return row, nil
}

// --- A5: commutative commit vs ancestor locking ---

// A5Row compares transaction throughput under the Section 5.1
// commutative protocol (leaf locks only) against full ancestor-chain
// locking, with contending workers updating disjoint leaves.
type A5Row struct {
	Workers          int
	TxnsPerWorker    int
	CommutativeMS    float64
	CommutativeAbort uint64
	LockingMS        float64
	LockingAbort     uint64
	SpeedupX         float64
}

// thinkWork simulates per-transaction application work performed while
// locks are held (the window in which ancestor locking serialises and the
// commutative protocol does not).
func thinkWork() uint32 {
	var buf [512]byte
	var h uint32
	for i := 0; i < 40; i++ {
		buf[i%len(buf)] = byte(i)
		h ^= vhash.Hash(buf[:])
	}
	return h
}

// buildA5Doc shreds the A5 workload document — a shared root over
// workers*txns disjoint text leaves — and returns the string index with
// the leaves' node ids.
func buildA5Doc(cfg Config, workers, txns int) (*core.Indexes, []xmltree.NodeID, error) {
	var sb []byte
	sb = append(sb, "<root>"...)
	for i := 0; i < workers*txns; i++ {
		sb = append(sb, fmt.Sprintf("<leaf>v%d</leaf>", i)...)
	}
	sb = append(sb, "</root>"...)
	doc, err := xmlparse.Parse(sb)
	if err != nil {
		return nil, nil, err
	}
	ix := core.Build(doc, cfg.buildOpts(core.Options{String: true}))
	var texts []xmltree.NodeID
	for i := 0; i < doc.NumNodes(); i++ {
		if doc.Kind(xmltree.NodeID(i)) == xmltree.Text {
			texts = append(texts, xmltree.NodeID(i))
		}
	}
	return ix, texts, nil
}

// RunA5 builds a wide document (shared root, disjoint leaves) and drives
// both managers with the same workload.
func RunA5(cfg Config, workers, txns int) (A5Row, error) {
	row := A5Row{Workers: workers, TxnsPerWorker: txns}

	// Per-worker sinks keep the anti-dead-code accumulation race free
	// (the workers run concurrently; a shared sinkHash ^= would be a data
	// race under -race); the fold into sinkHash happens after Wait.
	workerSinks := make([]uint32, workers)

	// Commutative: leaf locks only; conflicts impossible on disjoint
	// leaves.
	ix, texts, err := buildA5Doc(cfg, workers, txns)
	if err != nil {
		return row, err
	}
	mgr := txn.NewManager(ix)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				for {
					tx := mgr.Begin()
					if err := tx.SetText(texts[w*txns+i], fmt.Sprintf("c%d.%d", w, i)); err != nil {
						tx.Abort()
						continue
					}
					workerSinks[w] ^= thinkWork()
					if tx.Commit() == nil {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	row.CommutativeMS = float64(time.Since(start).Nanoseconds()) / 1e6
	_, row.CommutativeAbort = mgr.Stats()

	// Ancestor locking: every transaction locks the root; contenders spin
	// on ErrConflict.
	ix2, texts2, err := buildA5Doc(cfg, workers, txns)
	if err != nil {
		return row, err
	}
	lmgr := txn.NewLockingManager(ix2)
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				for {
					tx := lmgr.Begin()
					if err := tx.SetText(texts2[w*txns+i], fmt.Sprintf("l%d.%d", w, i)); err != nil {
						tx.Abort()
						continue
					}
					workerSinks[w] ^= thinkWork()
					if tx.Commit() == nil {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, s := range workerSinks {
		sinkHash ^= s
	}
	row.LockingMS = float64(time.Since(start).Nanoseconds()) / 1e6
	_, row.LockingAbort = lmgr.Stats()
	if row.CommutativeMS > 0 {
		row.SpeedupX = row.LockingMS / row.CommutativeMS
	}
	return row, nil
}
