// Package experiments implements the paper's evaluation (Section 6) as
// typed, reusable runners: Table 1 (dataset statistics), Figure 9 (index
// creation time and storage overhead), Figure 10 (update time versus
// batch size), Figure 11 (hash stability), and the ablations DESIGN.md
// calls out (A1–A5). The xvibench command and the repository-level
// benchmarks are thin wrappers over these runners.
package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fsm"
	"repro/internal/storage"
	"repro/internal/vhash"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

// Config controls dataset scale and selection for all runners.
type Config struct {
	// Scale multiplies the calibrated dataset sizes (1.0 ≈ 1/64 of the
	// paper's node counts; see datagen).
	Scale float64
	// Seed drives all pseudo-randomness.
	Seed int64
	// Datasets selects which Table 1 rows to run; nil means all eight.
	Datasets []string
	// Repeat is the number of measurements averaged per point (the paper
	// uses 3 for creation and 20 for updates).
	Repeat int
	// Parallelism is passed through to core.Options.Parallelism for
	// every index build: 0 means GOMAXPROCS, 1 forces the serial path.
	Parallelism int
	// TempDir receives snapshot files for the storage measurements;
	// defaults to os.TempDir().
	TempDir string
	// WAL, when true, runs the update experiments (Figure 10) durably:
	// each measured index gets a write-ahead log in TempDir, so the
	// reported times include logical logging and fsyncs.
	WAL bool
	// WALSyncEvery batches WAL fsyncs (<= 1 = sync every record); only
	// meaningful with WAL.
	WALSyncEvery int
	// CheckpointEvery, with WAL, checkpoints (snapshot rewrite + log
	// truncation) after every N measured update batches; 0 never
	// checkpoints during a run. Checkpoints happen outside the timed
	// windows — the figures measure update cost, not snapshot cost.
	CheckpointEvery int
}

// buildOpts stamps the configured parallelism onto build options.
func (c Config) buildOpts(o core.Options) core.Options {
	o.Parallelism = c.Parallelism
	return o
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{Scale: 0.25, Seed: 42, Repeat: 3}
}

func (c Config) datasets() []string {
	if len(c.Datasets) > 0 {
		return c.Datasets
	}
	return datagen.Names
}

func (c Config) repeat() int {
	if c.Repeat > 0 {
		return c.Repeat
	}
	return 3
}

func (c Config) tempDir() string {
	if c.TempDir != "" {
		return c.TempDir
	}
	return os.TempDir()
}

// prepared caches a generated and shredded dataset.
type prepared struct {
	name    string
	xml     []byte
	doc     *xmltree.Doc
	shredNS int64
}

// warmMachines forces the one-time FSM monoid/SCT compilation outside
// any timed region (it is a per-process system cost, like loading the
// paper's SCT tables, not a per-document cost).
func warmMachines() {
	fsm.Double()
	fsm.DateTime()
}

func (c Config) prepare(name string) (*prepared, error) {
	warmMachines()
	xml, err := datagen.Generate(name, c.Scale, c.Seed)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	doc, err := xmlparse.Parse(xml)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	return &prepared{name: name, xml: xml, doc: doc, shredNS: time.Since(start).Nanoseconds()}, nil
}

// --- E1: Table 1 ---

// Table1Row mirrors one row of the paper's Table 1, measured on the
// generated stand-in, next to the paper's reported percentages.
type Table1Row struct {
	Dataset     string
	SizeMB      float64
	TotalNodes  int // elements + texts (Table 1 arithmetic)
	TextNodes   int
	TextPct     float64
	DoubleTexts int // castable text nodes ("Double Values")
	DoublePct   float64
	NonLeaf     int
	DateValues  int // castable xs:date values (texts + attributes)
	DatePct     float64

	PaperTextPct   float64
	PaperDoublePct float64
	PaperNonLeaf   int
}

// RunTable1 measures dataset statistics for every configured dataset.
func RunTable1(cfg Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range cfg.datasets() {
		p, err := cfg.prepare(name)
		if err != nil {
			return nil, err
		}
		ix := core.Build(p.doc, cfg.buildOpts(core.Options{Double: true, Date: true}))
		s := ix.Stats()
		total := s.Elements + s.Texts
		// Match the double column's arithmetic: castable TEXT nodes over
		// elements+texts, so the two typed columns are comparable.
		dateStats, _ := s.TypedFor(core.TypeDate)
		paper := datagen.PaperTable1[name]
		rows = append(rows, Table1Row{
			Dataset:        name,
			SizeMB:         float64(len(p.xml)) / (1 << 20),
			TotalNodes:     total,
			TextNodes:      s.Texts,
			TextPct:        pct(s.Texts, total),
			DoubleTexts:    s.DoubleCastableTexts,
			DoublePct:      pct(s.DoubleCastableTexts, total),
			NonLeaf:        s.DoubleNonLeaf,
			DateValues:     dateStats.CastableTexts,
			DatePct:        pct(dateStats.CastableTexts, total),
			PaperTextPct:   paper.TextPct,
			PaperDoublePct: paper.DoublePct,
			PaperNonLeaf:   paper.NonLeaf,
		})
	}
	return rows, nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// --- E2–E5: Figure 9 ---

// Fig9Row holds one dataset's creation-time and storage measurements for
// both indices, plus the overhead ratios the paper's bars visualise.
type Fig9Row struct {
	Dataset string

	ShredMS     float64
	StringIdxMS float64
	DoubleIdxMS float64
	// Overhead percentages relative to shredding (the paper's bars show
	// index time stacked over shred time).
	StringTimePct float64
	DoubleTimePct float64

	DBBytes        int64
	StringIdxBytes int64
	DoubleIdxBytes int64
	StringSizePct  float64
	DoubleSizePct  float64
}

// RunFig9 measures index creation time against shredding time (Figure 9
// top) and persisted index size against database size (Figure 9 bottom).
// As in the paper's pipeline, each stage includes writing its store:
// shredding parses and persists the document columns; index creation
// builds and persists the index sections.
func RunFig9(cfg Config) ([]Fig9Row, error) {
	warmMachines()
	var rows []Fig9Row
	for _, name := range cfg.datasets() {
		xml, err := datagen.Generate(name, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		stage := filepath.Join(cfg.tempDir(), "xvibench-stage-"+name+".part")
		var shredNS, strNS, dblNS int64
		var ix *core.Indexes
		for r := 0; r < cfg.repeat(); r++ {
			start := time.Now()
			doc, err := xmlparse.Parse(xml)
			if err != nil {
				return nil, err
			}
			// Persisting the document store is part of shredding; the
			// SaveParts carrier needs an index handle, so use an empty
			// index set over the document.
			docOnly := core.Build(doc, cfg.buildOpts(core.Options{}))
			if err := docOnly.SavePartsTo(stage, core.SaveParts{Doc: true}); err != nil {
				return nil, err
			}
			shredNS += time.Since(start).Nanoseconds()

			start = time.Now()
			sIx := core.Build(doc, cfg.buildOpts(core.Options{String: true}))
			if err := sIx.SavePartsTo(stage, core.SaveParts{String: true}); err != nil {
				return nil, err
			}
			strNS += time.Since(start).Nanoseconds()

			start = time.Now()
			dIx := core.Build(doc, cfg.buildOpts(core.Options{Double: true}))
			if err := dIx.SavePartsTo(stage, core.SaveParts{Double: true}); err != nil {
				return nil, err
			}
			dblNS += time.Since(start).Nanoseconds()

			if r == cfg.repeat()-1 {
				ix = core.Build(doc, cfg.buildOpts(core.DefaultOptions()))
			}
		}
		os.Remove(stage)
		n := int64(cfg.repeat())
		row := Fig9Row{
			Dataset:     name,
			ShredMS:     float64(shredNS/n) / 1e6,
			StringIdxMS: float64(strNS/n) / 1e6,
			DoubleIdxMS: float64(dblNS/n) / 1e6,
		}
		row.StringTimePct = 100 * row.StringIdxMS / (row.ShredMS + row.StringIdxMS)
		row.DoubleTimePct = 100 * row.DoubleIdxMS / (row.ShredMS + row.DoubleIdxMS)

		// Storage: persist and read back section sizes.
		path := filepath.Join(cfg.tempDir(), "xvibench-"+name+".xvi")
		if err := ix.Save(path); err != nil {
			return nil, err
		}
		r, err := storage.OpenReader(path)
		if err != nil {
			return nil, err
		}
		row.DBBytes = r.SectionLen(core.SectionDoc)
		row.StringIdxBytes = r.SectionLen(core.SectionHash) + r.SectionLen(core.SectionStrTree)
		row.DoubleIdxBytes = r.SectionLen(core.TypedSectionName(core.TypeDouble))
		r.Close()
		os.Remove(path)
		row.StringSizePct = 100 * float64(row.StringIdxBytes) / float64(row.DBBytes+row.StringIdxBytes)
		row.DoubleSizePct = 100 * float64(row.DoubleIdxBytes) / float64(row.DBBytes+row.DoubleIdxBytes)
		rows = append(rows, row)
	}
	return rows, nil
}

// --- E6–E7: Figure 10 ---

// Fig10Point is one (dataset, batch size) update-time measurement for
// both indices.
type Fig10Point struct {
	Dataset  string
	Updated  int
	StringMS float64
	DoubleMS float64
}

// Fig10Batches are the paper's x-axis points (1 … 10^5; the paper extends
// to 10^6 on its larger documents — bounded here by available text
// nodes).
var Fig10Batches = []int{1, 10, 100, 1000, 10000, 100000}

// RunFig10 measures the Figure 8 batch-update algorithm: random text
// nodes receive new random values, separately against a string-only and a
// double-only index, averaged over cfg.Repeat runs.
func RunFig10(cfg Config) ([]Fig10Point, error) {
	var points []Fig10Point
	for _, name := range cfg.datasets() {
		p, err := cfg.prepare(name)
		if err != nil {
			return nil, err
		}
		var texts []xmltree.NodeID
		for i := 0; i < p.doc.NumNodes(); i++ {
			if p.doc.Kind(xmltree.NodeID(i)) == xmltree.Text {
				texts = append(texts, xmltree.NodeID(i))
			}
		}
		strIx := core.Build(p.doc, cfg.buildOpts(core.Options{String: true}))
		dblIx := core.Build(p.doc, cfg.buildOpts(core.Options{Double: true}))
		if cfg.WAL {
			// Durable mode: measure update throughput with write-ahead
			// logging attached (the -wal / -checkpoint-every wiring).
			for ixName, ix := range map[string]*core.Indexes{"str": strIx, "dbl": dblIx} {
				base := filepath.Join(cfg.tempDir(), fmt.Sprintf("fig10-%s-%s", name, ixName))
				if err := ix.StartDurable(base+".xvi", base+".wal", cfg.WALSyncEvery); err != nil {
					return nil, err
				}
				defer os.Remove(base + ".xvi")
				defer os.Remove(base + ".wal")
				defer ix.CloseWAL()
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		measured := 0
		for _, batch := range Fig10Batches {
			if batch > len(texts) {
				break
			}
			var strNS, dblNS int64
			for r := 0; r < cfg.repeat(); r++ {
				updates := randomUpdates(rng, texts, batch)
				start := time.Now()
				if err := strIx.UpdateTexts(updates); err != nil {
					return nil, err
				}
				strNS += time.Since(start).Nanoseconds()

				updates = randomUpdates(rng, texts, batch)
				start = time.Now()
				if err := dblIx.UpdateTexts(updates); err != nil {
					return nil, err
				}
				dblNS += time.Since(start).Nanoseconds()

				measured++
				if cfg.WAL && cfg.CheckpointEvery > 0 && measured%cfg.CheckpointEvery == 0 {
					if err := strIx.Checkpoint(); err != nil {
						return nil, err
					}
					if err := dblIx.Checkpoint(); err != nil {
						return nil, err
					}
				}
			}
			n := int64(cfg.repeat())
			points = append(points, Fig10Point{
				Dataset:  name,
				Updated:  batch,
				StringMS: float64(strNS/n) / 1e6,
				DoubleMS: float64(dblNS/n) / 1e6,
			})
		}
	}
	return points, nil
}

func randomUpdates(rng *rand.Rand, texts []xmltree.NodeID, n int) []core.TextUpdate {
	updates := make([]core.TextUpdate, 0, n)
	seen := make(map[xmltree.NodeID]bool, n)
	for len(updates) < n && len(seen) < len(texts) {
		t := texts[rng.Intn(len(texts))]
		if seen[t] {
			continue
		}
		seen[t] = true
		var v string
		switch rng.Intn(4) {
		case 0:
			v = fmt.Sprintf("%d.%02d", rng.Intn(1000), rng.Intn(100))
		case 1:
			v = fmt.Sprint(rng.Intn(100000))
		case 2:
			v = fmt.Sprintf("updated text %d", rng.Intn(1000))
		default:
			v = fmt.Sprintf("w%d w%d w%d", rng.Intn(50), rng.Intn(50), rng.Intn(50))
		}
		updates = append(updates, core.TextUpdate{Node: t, Value: v})
	}
	return updates
}

// --- E8: Figure 11 ---

// Fig11Row is one histogram bucket: HashValues hash values have exactly
// ClusterSize distinct strings mapping to them.
type Fig11Row struct {
	Dataset     string
	ClusterSize int
	HashValues  int
}

// Fig11Summary aggregates a dataset's collision behaviour.
type Fig11Summary struct {
	Dataset         string
	DistinctStrings int
	DistinctHashes  int
	CollidingPct    float64 // distinct strings sharing their hash with another
	MaxCluster      int
}

// RunFig11 measures the hash-stability distribution: for every dataset,
// the number of distinct text/attribute string values per hash value.
func RunFig11(cfg Config) ([]Fig11Row, []Fig11Summary, error) {
	var rows []Fig11Row
	var sums []Fig11Summary
	for _, name := range cfg.datasets() {
		p, err := cfg.prepare(name)
		if err != nil {
			return nil, nil, err
		}
		clusters := make(map[uint32]map[string]struct{})
		add := func(s string) {
			h := vhash.HashString(s)
			set := clusters[h]
			if set == nil {
				set = make(map[string]struct{})
				clusters[h] = set
			}
			set[s] = struct{}{}
		}
		doc := p.doc
		for i := 0; i < doc.NumNodes(); i++ {
			if doc.Kind(xmltree.NodeID(i)) == xmltree.Text {
				add(doc.Value(xmltree.NodeID(i)))
			}
		}
		for a := 0; a < doc.NumAttrs(); a++ {
			add(doc.AttrValue(xmltree.AttrID(a)))
		}
		hist := make(map[int]int)
		distinct, colliding, maxCluster := 0, 0, 0
		for _, set := range clusters {
			k := len(set)
			hist[k]++
			distinct += k
			if k > 1 {
				colliding += k
			}
			if k > maxCluster {
				maxCluster = k
			}
		}
		for k := 1; k <= maxCluster; k++ {
			if hist[k] > 0 {
				rows = append(rows, Fig11Row{Dataset: name, ClusterSize: k, HashValues: hist[k]})
			}
		}
		sums = append(sums, Fig11Summary{
			Dataset:         name,
			DistinctStrings: distinct,
			DistinctHashes:  len(clusters),
			CollidingPct:    pct(colliding, distinct),
			MaxCluster:      maxCluster,
		})
	}
	return rows, sums, nil
}
