package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/xpath"
)

// --- A6: scan-vs-index selectivity crossover ---

// A6Row is one point of the crossover ablation (the paper's Figure
// 8-style experiment for the read path): a single range predicate at a
// target selectivity, measured under a forced document scan, a forced
// index drive, and the cost-based planner — plus which strategy the
// planner actually chose.
type A6Row struct {
	Dataset      string
	Selectivity  float64 // requested fraction of the value domain selected
	Hits         int
	ScanMS       float64
	IndexMS      float64
	AutoMS       float64
	AutoIndex    bool    // the planner chose the index drive
	BytesPerNode float64 // packed-layout footprint of the queried snapshot
}

// A6Selectivities are the default crossover sample points.
var A6Selectivities = []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.9}

// RunA6 sweeps range-predicate selectivity over the XMark stand-in's
// auction prices (uniform on [0, 5000)) and measures the three
// strategies at each point. At low selectivity the index drive wins by
// orders of magnitude; near 1.0 the scan wins because the index path
// pays per-candidate context mapping and verification for nearly every
// node — the planner should switch sides near the crossover.
func RunA6(cfg Config, dataset string, fracs []float64) ([]A6Row, error) {
	if len(fracs) == 0 {
		fracs = A6Selectivities
	}
	p, err := cfg.prepare(dataset)
	if err != nil {
		return nil, err
	}
	ix := core.Build(p.doc, cfg.buildOpts(core.DefaultOptions()))
	bpn := ix.MemStats().BytesPerNode
	var rows []A6Row
	for _, frac := range fracs {
		threshold := 5000 * (1 - frac)
		expr := fmt.Sprintf("//open_auction[initial > %.2f]", threshold)
		parsed, err := xpath.Parse(expr)
		if err != nil {
			return nil, fmt.Errorf("query %q: %v", expr, err)
		}
		row := A6Row{Dataset: dataset, Selectivity: frac, BytesPerNode: bpn}
		// Warm-up: one untimed run per arm, so one-time costs (first
		// touch of navigation paths, allocator warm-up) stay out of the
		// figures — the same policy warmMachines applies to the FSMs.
		for _, m := range []plan.Mode{plan.ForceScan, plan.ForceIndex, plan.Auto} {
			if _, _, err := plan.Run(ix.Snapshot(), parsed, m); err != nil {
				return nil, err
			}
		}
		var scanNS, idxNS, autoNS int64
		for r := 0; r < cfg.repeat(); r++ {
			start := time.Now()
			res, _, err := plan.Run(ix.Snapshot(), parsed, plan.ForceScan)
			if err != nil {
				return nil, err
			}
			scanNS += time.Since(start).Nanoseconds()
			row.Hits = len(res)

			start = time.Now()
			res2, _, err := plan.Run(ix.Snapshot(), parsed, plan.ForceIndex)
			if err != nil {
				return nil, err
			}
			idxNS += time.Since(start).Nanoseconds()
			if len(res2) != row.Hits {
				return nil, fmt.Errorf("query %q: forced index %d hits, scan %d", expr, len(res2), row.Hits)
			}

			start = time.Now()
			res3, pl, err := plan.Run(ix.Snapshot(), parsed, plan.Auto)
			if err != nil {
				return nil, err
			}
			autoNS += time.Since(start).Nanoseconds()
			if len(res3) != row.Hits {
				return nil, fmt.Errorf("query %q: auto %d hits, scan %d", expr, len(res3), row.Hits)
			}
			row.AutoIndex = pl.UsesIndex()
		}
		n := int64(cfg.repeat())
		row.ScanMS = float64(scanNS/n) / 1e6
		row.IndexMS = float64(idxNS/n) / 1e6
		row.AutoMS = float64(autoNS/n) / 1e6
		rows = append(rows, row)
	}
	return rows, nil
}

// --- A7: conjunctive predicates — planner vs first-condition heuristic ---

// A7Row compares the cost-based planner against the legacy heuristic on
// a conjunctive workload whose FIRST predicate is unselective and whose
// second is highly selective — the shape the legacy "grab the first
// indexable condition" rule gets maximally wrong.
type A7Row struct {
	Dataset      string
	Query        string
	Hits         int
	LegacyMS     float64 // first indexable condition drives
	PlannerMS    float64 // cost-based driver choice + intersection
	SpeedupX     float64
	UsedIndex    bool    // planner drove an index
	Intersected  bool    // planner intersected a second access path
	BytesPerNode float64 // packed-layout footprint of the queried snapshot
}

// A7Queries returns the conjunctive workload for a dataset: predicate
// order deliberately lists the unselective condition first.
func A7Queries(dataset string) []string {
	switch dataset {
	case "xmark1", "xmark2", "xmark4", "xmark8":
		return []string{
			// income > 10 matches ~every person; the birthday window is ~2
			// months out of 12 years (~1.4%).
			`//person[profile/income > 10 and profile/birthday < xs:date("1998-03-01")]`,
			// Both sides selective: intersection territory.
			`//item[location = "Amsterdam" and quantity > 5]`,
		}
	default:
		return nil
	}
}

// RunA7 measures one dataset's conjunctive workload.
func RunA7(cfg Config, dataset string) ([]A7Row, error) {
	p, err := cfg.prepare(dataset)
	if err != nil {
		return nil, err
	}
	ix := core.Build(p.doc, cfg.buildOpts(core.DefaultOptions()))
	bpn := ix.MemStats().BytesPerNode
	var rows []A7Row
	for _, q := range A7Queries(dataset) {
		parsed, err := xpath.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("query %q: %v", q, err)
		}
		row := A7Row{Dataset: dataset, Query: q, BytesPerNode: bpn}
		// Warm-up (untimed), as in RunA6.
		for _, m := range []plan.Mode{plan.Legacy, plan.Auto} {
			if _, _, err := plan.Run(ix.Snapshot(), parsed, m); err != nil {
				return nil, err
			}
		}
		var legacyNS, plannerNS int64
		for r := 0; r < cfg.repeat(); r++ {
			start := time.Now()
			res, _, err := plan.Run(ix.Snapshot(), parsed, plan.Legacy)
			if err != nil {
				return nil, err
			}
			legacyNS += time.Since(start).Nanoseconds()
			row.Hits = len(res)

			start = time.Now()
			res2, pl, err := plan.Run(ix.Snapshot(), parsed, plan.Auto)
			if err != nil {
				return nil, err
			}
			plannerNS += time.Since(start).Nanoseconds()
			if len(res2) != row.Hits {
				return nil, fmt.Errorf("query %q: planner %d hits, legacy %d", q, len(res2), row.Hits)
			}
			row.UsedIndex = pl.UsesIndex()
			row.Intersected = pl.Intersects()
		}
		n := int64(cfg.repeat())
		row.LegacyMS = float64(legacyNS/n) / 1e6
		row.PlannerMS = float64(plannerNS/n) / 1e6
		if row.PlannerMS > 0 {
			row.SpeedupX = row.LegacyMS / row.PlannerMS
		}
		rows = append(rows, row)
	}
	return rows, nil
}
