package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/txn"
)

// tinyConfig keeps experiment tests fast.
func tinyConfig() Config {
	return Config{Scale: 0.02, Seed: 7, Repeat: 1, Datasets: []string{"xmark1", "wiki"}}
}

func TestRunTable1ShapesHold(t *testing.T) {
	rows, err := RunTable1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TotalNodes <= 0 || r.TextNodes <= 0 {
			t.Errorf("%s: empty row %+v", r.Dataset, r)
		}
		if r.TextPct < 40 || r.TextPct > 80 {
			t.Errorf("%s: implausible text share %.1f%%", r.Dataset, r.TextPct)
		}
	}
	// XMark-like is double-rich, wiki-like is not.
	if rows[0].DoublePct <= rows[1].DoublePct {
		t.Errorf("xmark double %.2f%% should exceed wiki %.2f%%", rows[0].DoublePct, rows[1].DoublePct)
	}
	var buf bytes.Buffer
	ReportTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("report missing title")
	}
}

func TestRunFig9ShapesHold(t *testing.T) {
	rows, err := RunFig9(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ShredMS <= 0 || r.StringIdxMS <= 0 || r.DoubleIdxMS <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Dataset, r)
		}
		if r.DBBytes <= 0 || r.StringIdxBytes <= 0 {
			t.Errorf("%s: missing storage sizes %+v", r.Dataset, r)
		}
		// The paper's headline shapes: double index much smaller than the
		// string index, both smaller than the database.
		if r.DoubleIdxBytes >= r.StringIdxBytes {
			t.Errorf("%s: double index (%d) should be smaller than string index (%d)",
				r.Dataset, r.DoubleIdxBytes, r.StringIdxBytes)
		}
		if r.StringIdxBytes >= r.DBBytes {
			t.Errorf("%s: string index (%d) should be smaller than DB (%d)",
				r.Dataset, r.StringIdxBytes, r.DBBytes)
		}
		// Double-index creation is cheaper than string-index creation in
		// relative terms in the paper; allow slack at tiny scales but the
		// storage ratio must hold strongly.
		if r.DoubleSizePct > 25 {
			t.Errorf("%s: double index share %.1f%% implausibly large", r.Dataset, r.DoubleSizePct)
		}
	}
	var buf bytes.Buffer
	ReportFig9(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("report missing title")
	}
}

func TestRunFig10ShapesHold(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"xmark1"}
	points, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Cost grows with batch size (allowing jitter at the small end).
	first, last := points[0], points[len(points)-1]
	if last.Updated <= first.Updated {
		t.Fatal("batches not increasing")
	}
	if last.StringMS < first.StringMS/2 {
		t.Errorf("string update cost should grow: %.3f -> %.3f", first.StringMS, last.StringMS)
	}
	var buf bytes.Buffer
	ReportFig10(&buf, points)
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Error("report missing title")
	}
}

func TestRunFig11ShapesHold(t *testing.T) {
	rows, sums, err := RunFig11(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("sums = %d", len(sums))
	}
	for _, s := range sums {
		if s.DistinctStrings == 0 || s.DistinctHashes == 0 {
			t.Errorf("%s: empty summary", s.Dataset)
		}
		if s.CollidingPct > 15 {
			t.Errorf("%s: colliding %.1f%% out of the paper's band", s.Dataset, s.CollidingPct)
		}
	}
	// Wiki-like must show the engineered collision clusters.
	var wiki Fig11Summary
	for _, s := range sums {
		if s.Dataset == "wiki" {
			wiki = s
		}
	}
	if wiki.MaxCluster < 3 {
		t.Errorf("wiki max cluster = %d, want >= 3", wiki.MaxCluster)
	}
	var buf bytes.Buffer
	ReportFig11(&buf, rows, sums)
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Error("report missing title")
	}
}

func TestRunA1CombineBeatsRehash(t *testing.T) {
	cfg := tinyConfig()
	row, err := RunA1(cfg, "xmark1", 50)
	if err != nil {
		t.Fatal(err)
	}
	if row.CombineMS <= 0 || row.RehashMS <= 0 {
		t.Fatalf("timings: %+v", row)
	}
	var buf bytes.Buffer
	ReportA1(&buf, []A1Row{row})
	if !strings.Contains(buf.String(), "A1") {
		t.Error("report missing title")
	}
}

func TestRunA2SCTBeatsFSM(t *testing.T) {
	row := RunA2(tinyConfig())
	if row.SCTNS <= 0 || row.FSMNS <= 0 {
		t.Fatalf("timings: %+v", row)
	}
	// The paper's claim: probing an array is cheaper than running the
	// FSM over text.
	if row.SpeedupX < 1 {
		t.Errorf("SCT (%.1fns) should beat FSM re-run (%.1fns)", row.SCTNS, row.FSMNS)
	}
	var buf bytes.Buffer
	ReportA2(&buf, row)
}

func TestRunA3IndexedMatchesAndWins(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.05
	rows, err := RunA3(cfg, "xmark1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no queries ran")
	}
	var buf bytes.Buffer
	ReportA3(&buf, rows)
}

func TestRunA4OnePassWins(t *testing.T) {
	row, err := RunA4(tinyConfig(), "xmark1")
	if err != nil {
		t.Fatal(err)
	}
	if row.OnePassMS <= 0 || row.ThreePassMS <= 0 {
		t.Fatalf("timings: %+v", row)
	}
	var buf bytes.Buffer
	ReportA4(&buf, []A4Row{row})
}

func TestRunA5CommutativeWins(t *testing.T) {
	row, err := RunA5(tinyConfig(), 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if row.CommutativeMS <= 0 || row.LockingMS <= 0 {
		t.Fatalf("timings: %+v", row)
	}
	// Disjoint-leaf workload: the commutative protocol must not abort.
	if row.CommutativeAbort != 0 {
		t.Errorf("commutative aborts = %d, want 0", row.CommutativeAbort)
	}
	var buf bytes.Buffer
	ReportA5(&buf, row)
}

// TestRunA6CrossoverShapesHold pins the planner crossover ablation's
// deterministic properties: every strategy agrees on the hits (checked
// inside RunA6), hits grow with selectivity, and the cost-based planner
// picks the index on the selective side. Wall-clock orderings are
// logged, not asserted — timing assertions on shared CI runners are the
// flake class the A5 rework already removed once.
func TestRunA6CrossoverShapesHold(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.1
	cfg.Repeat = 2
	rows, err := RunA6(cfg, "xmark1", []float64{0.01, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	low, high := rows[0], rows[1]
	if !low.AutoIndex {
		t.Error("low selectivity: planner did not choose the index")
	}
	if low.Hits > high.Hits {
		t.Errorf("hits decreased with selectivity: %d at 0.01 vs %d at 0.9", low.Hits, high.Hits)
	}
	t.Logf("low sel: scan %.3fms, index %.3fms, auto %.3fms", low.ScanMS, low.IndexMS, low.AutoMS)
	var buf bytes.Buffer
	ReportA6(&buf, rows)
	if !strings.Contains(buf.String(), "A6") {
		t.Error("report missing title")
	}
}

// TestRunA7PlannerShapesHold pins the conjunctive ablation's
// deterministic properties: planner and legacy agree on the hits
// (checked inside RunA7) and the planner drives an index rather than
// the legacy mistake of scanning or driving the unselective first
// condition. Timings are logged, not asserted (see A6).
func TestRunA7PlannerShapesHold(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.15
	cfg.Repeat = 2
	rows, err := RunA7(cfg, "xmark1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no A7 rows")
	}
	first := rows[0]
	if !first.UsedIndex {
		t.Error("planner fell back to scan on the conjunctive workload")
	}
	t.Logf("legacy %.3fms, planner %.3fms (%.1fx)", first.LegacyMS, first.PlannerMS, first.SpeedupX)
	var buf bytes.Buffer
	ReportA7(&buf, rows)
	if !strings.Contains(buf.String(), "A7") {
		t.Error("report missing title")
	}
}

// TestAncestorLockingConflictsAtRoot pins the semantics the A5 ablation
// measures — any two overlapping ancestor-locking transactions conflict
// at the root, even on disjoint leaves — deterministically, instead of
// hoping the timed workload happens to overlap on a given scheduler.
func TestAncestorLockingConflictsAtRoot(t *testing.T) {
	ix, texts, err := buildA5Doc(DefaultConfig(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	lmgr := txn.NewLockingManager(ix)
	t1 := lmgr.Begin()
	if err := t1.SetText(texts[0], "held"); err != nil {
		t.Fatalf("first SetText: %v", err)
	}
	t2 := lmgr.Begin()
	if err := t2.SetText(texts[1], "blocked"); err != txn.ErrConflict {
		t.Fatalf("overlapping SetText on a disjoint leaf: err = %v, want ErrConflict", err)
	}
	t2.Abort()
	if err := t1.Commit(); err != nil {
		t.Fatalf("commit after contender aborted: %v", err)
	}
	if _, aborts := lmgr.Stats(); aborts == 0 {
		t.Error("abort count not recorded")
	}
}
