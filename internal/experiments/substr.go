package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/xpath"
)

// --- A8: text predicates — q-gram substring index vs scan ---

// A8Row is one text-heavy query measured with the substring index
// enabled: a contains()/starts-with() predicate evaluated by a forced
// document scan, by the forced index drive (the q-gram access path), and
// by the cost-based planner — plus which strategy the planner chose.
// Result counts are cross-checked between all arms.
type A8Row struct {
	Dataset      string
	Query        string
	Hits         int
	ScanMS       float64
	IndexMS      float64
	AutoMS       float64
	SpeedupX     float64 // scan over forced index
	AutoIndex    bool    // the planner chose the substring drive
	BytesPerNode float64 // packed-layout footprint incl. the gram tree
}

// A8Queries returns the text-predicate workload for a dataset: a
// selective contains() on a text leaf, a starts-with() on an attribute,
// and a broader contains() that stresses candidate verification.
func A8Queries(dataset string) []string {
	switch dataset {
	case "xmark1", "xmark2", "xmark4", "xmark8":
		return []string{
			`//person[contains(emailaddress/text(), "mailto:w")]`,
			`//person[starts-with(@id, "person10")]`,
			`//item[contains(name/text(), "bidder")]`,
		}
	default:
		return nil
	}
}

// RunA8 measures one dataset's text-predicate workload with the
// substring index enabled (so the planner can enumerate the q-gram
// access path) against the scan baseline.
func RunA8(cfg Config, dataset string) ([]A8Row, error) {
	p, err := cfg.prepare(dataset)
	if err != nil {
		return nil, err
	}
	ix := core.Build(p.doc, cfg.buildOpts(core.DefaultOptions()))
	ix.EnableSubstring()
	bpn := ix.MemStats().BytesPerNode
	var rows []A8Row
	for _, q := range A8Queries(dataset) {
		parsed, err := xpath.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("query %q: %v", q, err)
		}
		row := A8Row{Dataset: dataset, Query: q, BytesPerNode: bpn}
		// Warm-up (untimed), as in RunA6.
		for _, m := range []plan.Mode{plan.ForceScan, plan.ForceIndex, plan.Auto} {
			if _, _, err := plan.Run(ix.Snapshot(), parsed, m); err != nil {
				return nil, err
			}
		}
		var scanNS, idxNS, autoNS int64
		for r := 0; r < cfg.repeat(); r++ {
			start := time.Now()
			res, _, err := plan.Run(ix.Snapshot(), parsed, plan.ForceScan)
			if err != nil {
				return nil, err
			}
			scanNS += time.Since(start).Nanoseconds()
			row.Hits = len(res)

			start = time.Now()
			res2, _, err := plan.Run(ix.Snapshot(), parsed, plan.ForceIndex)
			if err != nil {
				return nil, err
			}
			idxNS += time.Since(start).Nanoseconds()
			if len(res2) != row.Hits {
				return nil, fmt.Errorf("query %q: forced index %d hits, scan %d", q, len(res2), row.Hits)
			}

			start = time.Now()
			res3, pl, err := plan.Run(ix.Snapshot(), parsed, plan.Auto)
			if err != nil {
				return nil, err
			}
			autoNS += time.Since(start).Nanoseconds()
			if len(res3) != row.Hits {
				return nil, fmt.Errorf("query %q: auto %d hits, scan %d", q, len(res3), row.Hits)
			}
			row.AutoIndex = pl.UsesIndex()
		}
		n := int64(cfg.repeat())
		row.ScanMS = float64(scanNS/n) / 1e6
		row.IndexMS = float64(idxNS/n) / 1e6
		row.AutoMS = float64(autoNS/n) / 1e6
		if row.IndexMS > 0 {
			row.SpeedupX = row.ScanMS / row.IndexMS
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ReportA8 renders the substring-index comparison.
func ReportA8(w io.Writer, rows []A8Row) {
	var t [][]string
	for _, r := range rows {
		auto := "scan"
		if r.AutoIndex {
			auto = "index"
		}
		t = append(t, []string{
			r.Query,
			fmt.Sprint(r.Hits),
			fmt.Sprintf("%.2f", r.ScanMS),
			fmt.Sprintf("%.2f", r.IndexMS),
			fmt.Sprintf("%.2f", r.AutoMS),
			fmt.Sprintf("%.1fx", r.SpeedupX),
			auto,
			fmt.Sprintf("%.1f", r.BytesPerNode),
		})
	}
	table(w, "A8 — text predicates: document scan vs q-gram substring index",
		[]string{"query", "hits", "scan ms", "index ms", "auto ms", "speedup", "auto chose", "B/node"}, t)
}
