package xpath

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/xmltree"
)

// ErrUnsupportedPath reports a parsed path whose shape the evaluators
// cannot answer. Callers match it with errors.Is; the wrapped message
// names the offending step. Before this error existed, such shapes
// silently evaluated to an empty result set.
var ErrUnsupportedPath = errors.New("xpath: unsupported path shape")

// CheckSupported reports whether the evaluators can answer the path:
// attribute steps are only supported as the final step of the main path
// and of a predicate's relative path. Query entry points call this up
// front so unsupported shapes surface as a typed error instead of a
// silently empty result.
func CheckSupported(p *Path) error {
	for si, step := range p.Steps {
		if step.Kind == TestAttr && si != len(p.Steps)-1 {
			return fmt.Errorf("%w: attribute step @%s in the middle of the path (attribute steps must be final)", ErrUnsupportedPath, step.Name)
		}
		for _, pred := range step.Preds {
			for _, c := range pred.Conds {
				for ri, rs := range c.Rel {
					if rs.Kind == TestAttr && ri != len(c.Rel)-1 {
						return fmt.Errorf("%w: attribute step @%s in the middle of a predicate path (attribute steps must be final)", ErrUnsupportedPath, rs.Name)
					}
				}
			}
		}
	}
	return nil
}

// Exec exposes the evaluator's structural machinery — candidate-to-
// context mapping, step/predicate verification, ancestor-chain matching
// — to the planner's executor (internal/plan) without exporting the
// evaluator itself. An Exec reuses its visit-set scratch across calls
// and is not safe for concurrent use; create one per query.
type Exec struct {
	ev evaluator
}

// NewExec returns executor machinery over an indexed document.
func NewExec(ix *core.Snapshot) *Exec {
	return &Exec{ev: evaluator{doc: ix.Doc(), ix: ix}}
}

// Doc returns the underlying document.
func (e *Exec) Doc() *xmltree.Doc { return e.ev.doc }

// Scan evaluates the path by structural navigation — the planner's
// fallback access path and the correctness oracle.
func (e *Exec) Scan(p *Path) []core.Posting { return e.ev.run(p) }

// LegacyIndexed evaluates with the pre-planner heuristic (first
// indexable condition drives, scan fallback otherwise) — kept as the
// planner's "off" mode and for A/B benchmarks.
func (e *Exec) LegacyIndexed(p *Path) []core.Posting {
	if res, ok := e.ev.runIndexed(p); ok {
		return res
	}
	return e.ev.run(p)
}

// ContextsFor maps a value-index candidate back to the context nodes the
// condition's relative path starts from (empty when the candidate's
// shape cannot satisfy the condition).
func (e *Exec) ContextsFor(cand core.Posting, c Cond) []xmltree.NodeID {
	return e.ev.contextsFor(cand, c)
}

// TestMatch reports whether node n passes the step's node test.
func (e *Exec) TestMatch(n xmltree.NodeID, step Step) bool { return e.ev.testMatch(n, step) }

// PredsHold evaluates every predicate condition at node n.
func (e *Exec) PredsHold(n xmltree.NodeID, preds []Pred) bool { return e.ev.predsHold(n, preds) }

// AttrPredsHold evaluates predicates against attribute a.
func (e *Exec) AttrPredsHold(a xmltree.AttrID, preds []Pred) bool {
	return e.ev.attrPredsHold(a, preds)
}

// MatchesPrefix reports whether node n can be reached through the given
// step prefix followed by a step with the given axis ending at n
// (ancestor-chain structure plus prefix predicates verified).
func (e *Exec) MatchesPrefix(n xmltree.NodeID, prefix []Step, axis Axis) bool {
	return e.ev.matchesAt(n, prefix, axis)
}

// AbsMatches reports whether node n is selected by the absolute path
// steps.
func (e *Exec) AbsMatches(n xmltree.NodeID, steps []Step) bool { return e.ev.absMatches(n, steps) }

// SortPostings orders hits in document order (owner, node-before-attr,
// attribute id) and drops duplicates — the canonical result order every
// evaluation mode produces.
func (e *Exec) SortPostings(ps []core.Posting) []core.Posting {
	return sortPostings(e.ev.doc, ps)
}

// BeginVisit opens a fresh node-dedup scope on the executor's reusable
// visit set (the planner's driver loop dedupes candidate contexts with
// it, like the evaluators dedupe step results). The scope is sparse:
// memory follows the driver's output, not the document.
func (e *Exec) BeginVisit() { e.ev.stepSeen.beginSparse() }

// Visit marks a node in the current scope, reporting whether it was new.
func (e *Exec) Visit(n xmltree.NodeID) bool { return e.ev.stepSeen.add(n) }
