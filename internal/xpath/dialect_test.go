package xpath

import (
	"testing"

	"repro/internal/core"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

// Additional dialect-corner tests: shapes that stress the parser and the
// indexed/scan equivalence beyond the randomized suite.

func evalBoth(t *testing.T, xml, query string) ([]core.Posting, *xmltree.Doc) {
	t.Helper()
	doc, err := xmlparse.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	ix := core.Build(doc, core.DefaultOptions()).Snapshot()
	q, err := Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	scan := Evaluate(doc, q)
	indexed := EvaluateIndexed(ix, q)
	if !postingsEqual(scan, indexed) {
		t.Fatalf("%q: scan %v != indexed %v", query, names(doc, scan), names(doc, indexed))
	}
	return scan, doc
}

func TestWildcardSteps(t *testing.T) {
	hits, doc := evalBoth(t, `<r><a><x>1</x></a><b><x>2</x></b></r>`, `//*[x = 2]`)
	if len(hits) != 1 || doc.Name(hits[0].Node) != "b" {
		t.Errorf("wildcard = %v", names(doc, hits))
	}
	hits, _ = evalBoth(t, `<r><a><x>1</x></a><b><x>2</x></b></r>`, `/r/*/x`)
	if len(hits) != 2 {
		t.Errorf("/r/*/x = %d hits", len(hits))
	}
}

func TestDescendantWithinPredicate(t *testing.T) {
	xml := `<lib><shelf><box><book>42</book></box></shelf><shelf><book>7</book></shelf></lib>`
	hits, doc := evalBoth(t, xml, `//shelf[.//book = 42]`)
	if len(hits) != 1 {
		t.Errorf("deep predicate = %v", names(doc, hits))
	}
	// Child-only rel must NOT see the boxed book.
	hits, _ = evalBoth(t, xml, `//shelf[book = 42]`)
	if len(hits) != 0 {
		t.Errorf("child rel leaked into descendants: %v", len(hits))
	}
	hits, _ = evalBoth(t, xml, `//shelf[book = 7]`)
	if len(hits) != 1 {
		t.Errorf("child rel missed direct child: %d", len(hits))
	}
}

func TestMultiStepRelPaths(t *testing.T) {
	xml := `<s><person><name><first>Ann</first></name></person><person><name><first>Bob</first></name></person></s>`
	hits, doc := evalBoth(t, xml, `//person[name/first = "Bob"]`)
	if len(hits) != 1 {
		t.Errorf("multi-step rel = %v", names(doc, hits))
	}
	hits, _ = evalBoth(t, xml, `//person[name/first/text() = "Ann"]`)
	if len(hits) != 1 {
		t.Errorf("text() rel = %d", len(hits))
	}
}

func TestConjunctionSemantics(t *testing.T) {
	xml := `<r><i><p>5</p><q>alpha</q></i><i><p>5</p><q>beta</q></i><i><p>6</p><q>alpha</q></i></r>`
	hits, _ := evalBoth(t, xml, `//i[p = 5 and q = "alpha"]`)
	if len(hits) != 1 {
		t.Errorf("conjunction = %d hits", len(hits))
	}
	// Two separate predicates behave like a conjunction too.
	hits, _ = evalBoth(t, xml, `//i[p = 5][q = "alpha"]`)
	if len(hits) != 1 {
		t.Errorf("stacked predicates = %d hits", len(hits))
	}
}

func TestExistentialComparison(t *testing.T) {
	// XPath general comparison: the predicate holds if ANY selected node
	// matches — here person has two <age> children.
	xml := `<r><person><age>10</age><age>42</age></person></r>`
	hits, _ := evalBoth(t, xml, `//person[age = 42]`)
	if len(hits) != 1 {
		t.Errorf("existential = %d", len(hits))
	}
	// != is also existential: some age differs from 10.
	hits, _ = evalBoth(t, xml, `//person[age != 10]`)
	if len(hits) != 1 {
		t.Errorf("existential != = %d", len(hits))
	}
}

func TestNumericLexicalVariants(t *testing.T) {
	xml := `<r><v>42</v><v>42.0</v><v> +4.2E1</v><v>0042</v><v>42x</v></r>`
	hits, _ := evalBoth(t, xml, `//v[. = 42]`)
	if len(hits) != 4 {
		t.Errorf("lexical variants = %d hits, want 4", len(hits))
	}
}

func TestStringRelationalLexicographic(t *testing.T) {
	xml := `<r><w>apple</w><w>banana</w><w>cherry</w></r>`
	hits, _ := evalBoth(t, xml, `//w[. > "avocado"]`)
	if len(hits) != 2 {
		t.Errorf("lexicographic > = %d", len(hits))
	}
}

func TestRootedPaths(t *testing.T) {
	xml := `<a><b><a><c>x</c></a></b></a>`
	// Absolute /a selects only the root element.
	hits, doc := evalBoth(t, xml, `/a[.//c = "x"]`)
	if len(hits) != 1 || hits[0].Node != doc.FirstChild(doc.Root()) {
		t.Errorf("/a = %v", hits)
	}
	// //a selects both.
	hits, _ = evalBoth(t, xml, `//a[.//c = "x"]`)
	if len(hits) != 2 {
		t.Errorf("//a = %d", len(hits))
	}
}

func TestFnDataOnDot(t *testing.T) {
	hits, _ := evalBoth(t, `<r><k>42</k></r>`, `//k[fn:data(.) = 42]`)
	if len(hits) != 1 {
		t.Errorf("fn:data(.) = %d", len(hits))
	}
}

func TestAttrWildcard(t *testing.T) {
	hits, _ := evalBoth(t, `<r><i a="1" b="2"/><i c="3"/></r>`, `//i/@*`)
	if len(hits) != 3 {
		t.Errorf("@* = %d", len(hits))
	}
	hits, _ = evalBoth(t, `<r><i a="7"/><i b="7"/></r>`, `//i[@* = 7]`)
	if len(hits) != 2 {
		t.Errorf("[@* = 7] = %d", len(hits))
	}
}

func TestEmptyResultShapes(t *testing.T) {
	for _, q := range []string{
		`//missing`, `/wrongroot/x`, `//r[. = "nothing"]`,
		`//r/@absent`, `//r[missing = 1]`,
	} {
		hits, _ := evalBoth(t, `<r><a>1</a></r>`, q)
		if len(hits) != 0 {
			t.Errorf("%q = %d hits, want 0", q, len(hits))
		}
	}
}
