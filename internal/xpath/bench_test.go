package xpath

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

// benchScanDoc is a wide two-level document: descendant steps fan out
// from many contexts, making per-step dedup the hot path the visit-set
// (formerly map[NodeID]bool + sort-based dedupe) optimisation targets.
func benchScanDoc(tb testing.TB) *xmltree.Doc {
	tb.Helper()
	var b strings.Builder
	b.WriteString("<r>")
	for g := 0; g < 200; g++ {
		b.WriteString("<g>")
		for i := 0; i < 30; i++ {
			fmt.Fprintf(&b, "<w><v>%d</v></w>", i)
		}
		b.WriteString("</g>")
	}
	b.WriteString("</r>")
	doc, err := xmlparse.ParseString(b.String())
	if err != nil {
		tb.Fatal(err)
	}
	return doc
}

// BenchmarkScanDescendant measures the per-step dedup cost of stacked
// descendant steps (every <g> context re-reaches every <v>).
func BenchmarkScanDescendant(b *testing.B) {
	doc := benchScanDoc(b)
	path := MustParse(`//g//v`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPostings = Evaluate(doc, path)
	}
}

// BenchmarkScanPredicateRel measures the relative-path dedup inside
// predicate evaluation (relNodes' per-step context dedup; the two-step
// relative path makes the intermediate context set non-trivial).
func BenchmarkScanPredicateRel(b *testing.B) {
	doc := benchScanDoc(b)
	path := MustParse(`//g[w/v = 7]`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPostings = Evaluate(doc, path)
	}
}

var benchPostings []core.Posting
