// Package xpath implements the query side of the paper's motivation: a
// small XPath dialect with equality and range predicates, evaluated either
// by scanning the document or accelerated through the generic value
// indices (string hash index for equality on strings, double index for
// numeric comparisons) with candidate verification.
//
// Supported grammar:
//
//	path      := ('/' | '//') step (('/' | '//') step)*
//	step      := nametest predicate*
//	nametest  := NAME | '*' | 'text()' | '@' NAME
//	predicate := '[' cond (and cond)* ']'
//	cond      := operand cmp literal
//	           | ('contains' | 'starts-with') '(' operand ',' string ')'
//	operand   := '.' | 'fn:data(' rel ')' | rel
//	rel       := ('.//' )? step ('/' step)*        (axes inside predicates)
//	cmp       := '=' | '!=' | '<' | '<=' | '>' | '>='
//	literal   := '"…"' | "'…'" | number
//
// Examples from the paper:
//
//	//person[first/text()="Arthur"]
//	//*[fn:data(name)="ArthurDent"]
//	//person[.//age = 42]
//
// Text predicates (the substring extension):
//
//	//person[contains(first/text(), "rthu")]
//	//item[starts-with(@id, "item1")]
package xpath

import "fmt"

// Axis distinguishes child ('/') from descendant-or-self ('//') steps.
type Axis uint8

const (
	Child Axis = iota
	Descendant
)

// TestKind classifies a step's node test.
type TestKind uint8

const (
	TestName TestKind = iota // element by tag
	TestAny                  // *
	TestText                 // text()
	TestAttr                 // @name
)

// Step is one location step.
type Step struct {
	Axis  Axis
	Kind  TestKind
	Name  string // tag for TestName, attribute name for TestAttr
	Preds []Pred
}

// CmpOp is a comparison operator.
type CmpOp uint8

const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Literal is a comparison right-hand side: a string, a number, or an
// xs:date (written xs:date("2001-03-15"); Str keeps the lexical form,
// Days its value in days since the Unix epoch).
type Literal struct {
	IsNum  bool
	Num    float64
	IsDate bool
	Days   int64
	Str    string
}

func (l Literal) String() string {
	if l.IsNum {
		return fmt.Sprintf("%g", l.Num)
	}
	if l.IsDate {
		return fmt.Sprintf("xs:date(%q)", l.Str)
	}
	return fmt.Sprintf("%q", l.Str)
}

// CondFn distinguishes a plain comparison condition from a text-predicate
// function call (contains / starts-with).
type CondFn uint8

const (
	FnNone CondFn = iota
	FnContains
	FnStartsWith
)

func (f CondFn) String() string {
	switch f {
	case FnContains:
		return "contains"
	case FnStartsWith:
		return "starts-with"
	}
	return ""
}

// Cond is one comparison inside a predicate. Rel is the operand path
// relative to the step's node: empty with Dot=true means the node itself
// ('.' or fn:data(.)). When Fn is not FnNone the condition is a text
// predicate — Lit.Str holds the search pattern and Op is unused.
type Cond struct {
	Dot bool
	Rel []Step // child-axis steps (first step may be Descendant for .//)
	Fn  CondFn
	Op  CmpOp
	Lit Literal
}

// Pred is a conjunction of conditions ([a and b]).
type Pred struct {
	Conds []Cond
}

// Path is a parsed absolute path expression.
type Path struct {
	Steps []Step
	src   string
}

// String returns the original expression text.
func (p *Path) String() string { return p.src }
