package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles an XPath expression in the supported dialect.
func Parse(expr string) (*Path, error) {
	p := &parser{in: expr}
	path, err := p.parsePath()
	if err != nil {
		return nil, fmt.Errorf("xpath: %v in %q", err, expr)
	}
	path.src = expr
	return path, nil
}

// MustParse is Parse for known-good expressions (examples, tests).
func MustParse(expr string) *Path {
	p, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	in  string
	pos int
}

func (p *parser) peek() byte {
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) eat(s string) bool {
	if strings.HasPrefix(p.in[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) parsePath() (*Path, error) {
	path := &Path{}
	p.skipSpace()
	for {
		var axis Axis
		switch {
		case p.eat("//"):
			axis = Descendant
		case p.eat("/"):
			axis = Child
		default:
			if len(path.Steps) == 0 {
				return nil, fmt.Errorf("path must start with / or //")
			}
			p.skipSpace()
			if p.pos != len(p.in) {
				return nil, fmt.Errorf("unexpected %q at offset %d", p.in[p.pos:], p.pos)
			}
			return path, nil
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
	}
}

func (p *parser) parseStep(axis Axis) (Step, error) {
	step := Step{Axis: axis}
	switch {
	case p.eat("text()"):
		step.Kind = TestText
	case p.eat("*"):
		step.Kind = TestAny
	case p.eat("@"):
		step.Kind = TestAttr
		if p.eat("*") {
			step.Name = "*"
			break
		}
		name, err := p.parseName()
		if err != nil {
			return step, err
		}
		step.Name = name
	default:
		name, err := p.parseName()
		if err != nil {
			return step, err
		}
		step.Kind = TestName
		step.Name = name
	}
	for p.peek() == '[' {
		pred, err := p.parsePred()
		if err != nil {
			return step, err
		}
		step.Preds = append(step.Preds, pred)
	}
	return step, nil
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '_' || c == '-' || c == '.' || c == ':' || c >= 0x80 {
			// Reject the step separator disguised as name chars.
			if c == ':' && p.pos+1 < len(p.in) && p.in[p.pos+1] == ':' {
				break
			}
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("expected name at offset %d", start)
	}
	return p.in[start:p.pos], nil
}

func (p *parser) parsePred() (Pred, error) {
	var pred Pred
	if !p.eat("[") {
		return pred, fmt.Errorf("expected '['")
	}
	for {
		cond, err := p.parseCond()
		if err != nil {
			return pred, err
		}
		pred.Conds = append(pred.Conds, cond)
		p.skipSpace()
		if p.eat("and ") || p.eat("and\t") {
			continue
		}
		break
	}
	p.skipSpace()
	if !p.eat("]") {
		return pred, fmt.Errorf("expected ']' at offset %d", p.pos)
	}
	return pred, nil
}

func (p *parser) parseCond() (Cond, error) {
	var c Cond
	p.skipSpace()
	switch {
	case p.eat("contains("):
		return p.parseFnCond(FnContains)
	case p.eat("starts-with("):
		return p.parseFnCond(FnStartsWith)
	case p.eat("fn:data(") || p.eat("data("):
		p.skipSpace()
		if p.eat(".") {
			c.Dot = true
		} else {
			rel, err := p.parseRel()
			if err != nil {
				return c, err
			}
			c.Rel = rel
		}
		p.skipSpace()
		if !p.eat(")") {
			return c, fmt.Errorf("expected ')' in fn:data")
		}
	case p.peek() == '.' && !strings.HasPrefix(p.in[p.pos:], ".//"):
		p.pos++
		c.Dot = true
	default:
		rel, err := p.parseRel()
		if err != nil {
			return c, err
		}
		c.Rel = rel
	}
	p.skipSpace()
	op, err := p.parseOp()
	if err != nil {
		return c, err
	}
	c.Op = op
	p.skipSpace()
	lit, err := p.parseLiteral()
	if err != nil {
		return c, err
	}
	c.Lit = lit
	return c, nil
}

// parseFnCond parses the tail of a text-predicate condition — the '('
// was already consumed: operand ',' string-literal ')'.
func (p *parser) parseFnCond(fn CondFn) (Cond, error) {
	c := Cond{Fn: fn}
	p.skipSpace()
	if p.peek() == '.' && !strings.HasPrefix(p.in[p.pos:], ".//") {
		p.pos++
		c.Dot = true
	} else {
		rel, err := p.parseRel()
		if err != nil {
			return c, err
		}
		c.Rel = rel
	}
	p.skipSpace()
	if !p.eat(",") {
		return c, fmt.Errorf("expected ',' in %s()", fn)
	}
	p.skipSpace()
	lit, err := p.parseLiteral()
	if err != nil {
		return c, err
	}
	if lit.IsNum || lit.IsDate {
		return c, fmt.Errorf("%s() expects a string literal", fn)
	}
	c.Lit = lit
	p.skipSpace()
	if !p.eat(")") {
		return c, fmt.Errorf("expected ')' after %s()", fn)
	}
	return c, nil
}

func (p *parser) parseRel() ([]Step, error) {
	var steps []Step
	axis := Child
	if p.eat(".//") {
		axis = Descendant
	}
	for {
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		if len(step.Preds) > 0 {
			return nil, fmt.Errorf("nested predicates are not supported")
		}
		steps = append(steps, step)
		if p.eat("//") {
			axis = Descendant
			continue
		}
		if p.eat("/") {
			axis = Child
			continue
		}
		return steps, nil
	}
}

func (p *parser) parseOp() (CmpOp, error) {
	switch {
	case p.eat("!="):
		return OpNe, nil
	case p.eat("<="):
		return OpLe, nil
	case p.eat(">="):
		return OpGe, nil
	case p.eat("="):
		return OpEq, nil
	case p.eat("<"):
		return OpLt, nil
	case p.eat(">"):
		return OpGt, nil
	}
	return 0, fmt.Errorf("expected comparison operator at offset %d", p.pos)
}

func (p *parser) parseLiteral() (Literal, error) {
	var lit Literal
	if save := p.pos; p.eat("xs:date") || p.eat("date") {
		p.skipSpace()
		if !p.eat("(") {
			p.pos = save // not a date constructor after all
		} else {
			p.skipSpace()
			inner, err := p.parseLiteral()
			if err != nil {
				return lit, err
			}
			if inner.IsNum || inner.IsDate {
				return lit, fmt.Errorf("xs:date expects a string literal")
			}
			days, ok := castDate(inner.Str)
			if !ok {
				return lit, fmt.Errorf("bad xs:date literal %q", inner.Str)
			}
			p.skipSpace()
			if !p.eat(")") {
				return lit, fmt.Errorf("expected ')' after xs:date literal")
			}
			return Literal{IsDate: true, Days: days, Str: inner.Str}, nil
		}
	}
	switch quote := p.peek(); quote {
	case '"', '\'':
		p.pos++
		start := p.pos
		for p.pos < len(p.in) && p.in[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.in) {
			return lit, fmt.Errorf("unterminated string literal")
		}
		lit.Str = p.in[start:p.pos]
		p.pos++
		return lit, nil
	default:
		start := p.pos
		for p.pos < len(p.in) {
			c := p.in[p.pos]
			if c >= '0' && c <= '9' || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
				p.pos++
				continue
			}
			break
		}
		if p.pos == start {
			return lit, fmt.Errorf("expected literal at offset %d", start)
		}
		num, err := strconv.ParseFloat(p.in[start:p.pos], 64)
		if err != nil {
			return lit, fmt.Errorf("bad numeric literal %q", p.in[start:p.pos])
		}
		lit.IsNum = true
		lit.Num = num
		return lit, nil
	}
}
