package xpath

import (
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/xmltree"
)

// Evaluate runs the path over the document by structural navigation and
// value materialisation — the index-less baseline.
func Evaluate(doc *xmltree.Doc, path *Path) []core.Posting {
	ev := &evaluator{doc: doc}
	return ev.run(path)
}

// EvaluateIndexed runs the path using the value indices: an indexable
// condition of the final step supplies candidates from the hash or double
// B+tree, candidates are mapped bottom-up to context nodes, and structure
// plus remaining predicates are verified. Shapes with no indexable
// condition fall back to Evaluate.
func EvaluateIndexed(ix *core.Snapshot, path *Path) []core.Posting {
	ev := &evaluator{doc: ix.Doc(), ix: ix}
	if res, ok := ev.runIndexed(path); ok {
		return res
	}
	return ev.run(path)
}

type evaluator struct {
	doc *xmltree.Doc
	ix  *core.Snapshot

	// stepSeen and relSeen are reusable epoch-stamped visit sets
	// replacing the per-step map[NodeID]bool and dedupe allocations on
	// the evaluation hot path. stepSeen serves the top-level step loops
	// (run, runIndexed — never active at the same time); relSeen serves
	// the step loop inside relNodes, which runs nested within a
	// stepSeen scope but never within itself (relative-path steps carry
	// no predicates), so the two sets never clobber each other.
	stepSeen visitSet
	relSeen  visitSet
}

// visitSet marks visited node ids with an epoch stamp; bumping the epoch
// clears the whole set in O(1), so one backing store per evaluator is
// reused across steps and queries. Two representations share the
// interface: scan-shaped scopes (which touch most of the document
// anyway) pre-size a dense array, while selective index-driven scopes
// use a retained epoch map and never pay O(document) per query. Once a
// dense array exists it serves sparse scopes too — the array is already
// paid for.
type visitSet struct {
	marks  []uint32
	sparse map[xmltree.NodeID]uint32
	epoch  uint32
}

// beginDense starts a fresh scope over ids [0, n), backed by an array.
func (v *visitSet) beginDense(n int) {
	if len(v.marks) < n {
		v.marks = make([]uint32, n)
		v.epoch = 0
	}
	v.bump()
}

// beginSparse starts a fresh scope without pre-sizing: marks live in a
// reused epoch map (unless a dense array already exists), created
// lazily on the first add so empty scopes cost nothing.
func (v *visitSet) beginSparse() { v.bump() }

func (v *visitSet) bump() {
	if v.epoch == ^uint32(0) {
		for i := range v.marks {
			v.marks[i] = 0
		}
		v.sparse = nil
		v.epoch = 0
	}
	v.epoch++
}

// add marks id and reports whether it was new in this scope.
func (v *visitSet) add(id xmltree.NodeID) bool {
	if v.marks != nil {
		if v.marks[id] == v.epoch {
			return false
		}
		v.marks[id] = v.epoch
		return true
	}
	if v.sparse[id] == v.epoch {
		return false
	}
	if v.sparse == nil {
		v.sparse = make(map[xmltree.NodeID]uint32)
	}
	v.sparse[id] = v.epoch
	return true
}

// --- scan evaluation ---

func (ev *evaluator) run(path *Path) []core.Posting {
	doc := ev.doc
	contexts := []xmltree.NodeID{doc.Root()}
	for si, step := range path.Steps {
		if step.Kind == TestAttr {
			// Attribute steps terminate the node phase.
			if si != len(path.Steps)-1 {
				return nil // unsupported mid-path attribute step
			}
			var out []core.Posting
			for _, n := range contexts {
				out = append(out, ev.attrStep(n, step)...)
			}
			return sortPostings(doc, out)
		}
		var next []xmltree.NodeID
		ev.stepSeen.beginDense(doc.NumNodes())
		for _, n := range contexts {
			ev.nodeStep(n, step, func(m xmltree.NodeID) {
				if ev.stepSeen.add(m) {
					next = append(next, m)
				}
			})
		}
		contexts = next
		if len(contexts) == 0 {
			return nil
		}
	}
	out := make([]core.Posting, 0, len(contexts))
	for _, n := range contexts {
		out = append(out, core.NodePosting(n))
	}
	return sortPostings(doc, out)
}

// nodeStep yields the nodes selected by one non-attribute step from n,
// with predicates applied.
func (ev *evaluator) nodeStep(n xmltree.NodeID, step Step, yield func(xmltree.NodeID)) {
	doc := ev.doc
	emit := func(m xmltree.NodeID) {
		if ev.testMatch(m, step) && ev.predsHold(m, step.Preds) {
			yield(m)
		}
	}
	if step.Axis == Child {
		for c := doc.FirstChild(n); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
			emit(c)
		}
		return
	}
	doc.Descendants(n, func(m xmltree.NodeID) bool {
		emit(m)
		return true
	})
}

func (ev *evaluator) attrStep(n xmltree.NodeID, step Step) []core.Posting {
	doc := ev.doc
	collect := func(m xmltree.NodeID, out []core.Posting) []core.Posting {
		lo, hi := doc.AttrRange(m)
		for a := lo; a < hi; a++ {
			if step.Name == "*" || doc.AttrName(a) == step.Name {
				if ev.attrPredsHold(a, step.Preds) {
					out = append(out, core.AttrPosting(a))
				}
			}
		}
		return out
	}
	var out []core.Posting
	if step.Axis == Child {
		out = collect(n, out)
		return out
	}
	doc.Descendants(n, func(m xmltree.NodeID) bool {
		if doc.Kind(m) == xmltree.Element {
			out = collect(m, out)
		}
		return true
	})
	return out
}

func (ev *evaluator) testMatch(n xmltree.NodeID, step Step) bool {
	doc := ev.doc
	switch step.Kind {
	case TestAny:
		return doc.Kind(n) == xmltree.Element
	case TestName:
		return doc.Kind(n) == xmltree.Element && doc.Name(n) == step.Name
	case TestText:
		return doc.Kind(n) == xmltree.Text
	}
	return false
}

func (ev *evaluator) predsHold(n xmltree.NodeID, preds []Pred) bool {
	for _, p := range preds {
		for _, c := range p.Conds {
			if !ev.condHolds(n, c) {
				return false
			}
		}
	}
	return true
}

func (ev *evaluator) attrPredsHold(a xmltree.AttrID, preds []Pred) bool {
	for _, p := range preds {
		for _, c := range p.Conds {
			if !c.Dot {
				return false // attributes have no children
			}
			if !condMatch(ev.doc.AttrValue(a), c) {
				return false
			}
		}
	}
	return true
}

// condMatch applies one condition to one operand value: a text-predicate
// function when Fn is set, the comparison operator otherwise.
func condMatch(value string, c Cond) bool {
	switch c.Fn {
	case FnContains:
		return strings.Contains(value, c.Lit.Str)
	case FnStartsWith:
		return strings.HasPrefix(value, c.Lit.Str)
	}
	return compareString(value, c.Op, c.Lit)
}

// condHolds implements XPath existential comparison semantics: the
// condition holds if ANY operand node satisfies the comparison.
func (ev *evaluator) condHolds(n xmltree.NodeID, c Cond) bool {
	if c.Dot {
		return condMatch(ev.doc.StringValue(n), c)
	}
	found := false
	ev.relNodes(n, c.Rel, func(value string) bool {
		if condMatch(value, c) {
			found = true
			return false
		}
		return true
	})
	return found
}

// relNodes yields the string values selected by a relative path from n;
// yield returning false stops early.
func (ev *evaluator) relNodes(n xmltree.NodeID, rel []Step, yield func(string) bool) {
	doc := ev.doc
	contexts := []xmltree.NodeID{n}
	for i, step := range rel {
		last := i == len(rel)-1
		if step.Kind == TestAttr {
			if !last {
				return
			}
			for _, ctx := range contexts {
				stop := false
				walk := func(m xmltree.NodeID) {
					lo, hi := doc.AttrRange(m)
					for a := lo; a < hi && !stop; a++ {
						if step.Name == "*" || doc.AttrName(a) == step.Name {
							if !yield(doc.AttrValue(a)) {
								stop = true
							}
						}
					}
				}
				if step.Axis == Child {
					walk(ctx)
				} else {
					doc.Descendants(ctx, func(m xmltree.NodeID) bool {
						if doc.Kind(m) == xmltree.Element {
							walk(m)
						}
						return !stop
					})
				}
				if stop {
					return
				}
			}
			return
		}
		var next []xmltree.NodeID
		stop := false
		if !last {
			// Follow the query's shape: scan evaluation (dense stepSeen
			// already paid for) dedupes densely; a selective index drive
			// stays sparse so predicates on few candidates cost O(matches).
			if ev.stepSeen.marks != nil {
				ev.relSeen.beginDense(doc.NumNodes())
			} else {
				ev.relSeen.beginSparse()
			}
		}
		for _, ctx := range contexts {
			ev.nodeStep(ctx, Step{Axis: step.Axis, Kind: step.Kind, Name: step.Name}, func(m xmltree.NodeID) {
				if stop {
					return
				}
				if last {
					if !yield(doc.StringValue(m)) {
						stop = true
					}
					return
				}
				if ev.relSeen.add(m) {
					next = append(next, m)
				}
			})
			if stop {
				return
			}
		}
		if last {
			return
		}
		contexts = next
		if len(contexts) == 0 {
			return
		}
	}
}

func dedupe(ns []xmltree.NodeID) []xmltree.NodeID {
	if len(ns) < 2 {
		return ns
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	out := ns[:1]
	for _, n := range ns[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// compareString applies a comparison between an untyped node value and a
// literal: numeric literals compare through the xs:double cast, xs:date
// literals through the date cast (FSM semantics in both cases, so mixed
// content works); string literals compare as strings (lexicographically
// for the relational operators).
func compareString(value string, op CmpOp, lit Literal) bool {
	if lit.IsNum {
		v, ok := castDouble(value)
		if !ok {
			return false
		}
		return compareFloat(v, op, lit.Num)
	}
	if lit.IsDate {
		d, ok := castDate(value)
		if !ok {
			return false
		}
		return compareInt(d, op, lit.Days)
	}
	switch op {
	case OpEq:
		return value == lit.Str
	case OpNe:
		return value != lit.Str
	case OpLt:
		return strings.Compare(value, lit.Str) < 0
	case OpLe:
		return strings.Compare(value, lit.Str) <= 0
	case OpGt:
		return strings.Compare(value, lit.Str) > 0
	case OpGe:
		return strings.Compare(value, lit.Str) >= 0
	}
	return false
}

func compareFloat(v float64, op CmpOp, lit float64) bool {
	switch op {
	case OpEq:
		return v == lit
	case OpNe:
		return v != lit
	case OpLt:
		return v < lit
	case OpLe:
		return v <= lit
	case OpGt:
		return v > lit
	case OpGe:
		return v >= lit
	}
	return false
}

func compareInt(v int64, op CmpOp, lit int64) bool {
	switch op {
	case OpEq:
		return v == lit
	case OpNe:
		return v != lit
	case OpLt:
		return v < lit
	case OpLe:
		return v <= lit
	case OpGt:
		return v > lit
	case OpGe:
		return v >= lit
	}
	return false
}

func castDouble(s string) (float64, bool) {
	f, ok := fsm.Double().ParseFragString(s)
	if !ok {
		return 0, false
	}
	return fsm.DoubleValue(f)
}

func castDate(s string) (int64, bool) {
	f, ok := fsm.Date().ParseFragString(s)
	if !ok {
		return 0, false
	}
	return fsm.DateValue(f)
}

func sortPostings(doc *xmltree.Doc, ps []core.Posting) []core.Posting {
	key := func(p core.Posting) (xmltree.NodeID, int, xmltree.AttrID) {
		if p.IsAttr {
			return doc.AttrOwner(p.Attr), 1, p.Attr
		}
		return p.Node, 0, 0
	}
	sort.Slice(ps, func(i, j int) bool {
		ni, ti, ai := key(ps[i])
		nj, tj, aj := key(ps[j])
		if ni != nj {
			return ni < nj
		}
		if ti != tj {
			return ti < tj
		}
		return ai < aj
	})
	// Dedupe.
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// --- indexed evaluation ---

// runIndexed attempts index-driven bottom-up evaluation; ok=false means
// the shape is not indexable and the caller should fall back to scanning.
func (ev *evaluator) runIndexed(path *Path) ([]core.Posting, bool) {
	if len(path.Steps) == 0 || ev.ix == nil {
		return nil, false
	}
	last := path.Steps[len(path.Steps)-1]
	if last.Kind == TestAttr {
		return ev.runIndexedAttrStep(path, last)
	}
	ci, cond := pickIndexableCond(last.Preds)
	if ci < 0 || !ev.condIndexAvailable(cond) {
		return nil, false
	}
	cands := ev.candidates(cond)
	doc := ev.doc
	// Sparse scope: a selective index drive must not pay O(document)
	// for its dedup set.
	ev.stepSeen.beginSparse()
	var out []core.Posting
	for _, cand := range cands {
		for _, ctx := range ev.contextsFor(cand, cond) {
			// Mark up front: verification is deterministic, so a context
			// that failed once need not be re-verified when another
			// candidate maps to it.
			if !ev.stepSeen.add(ctx) {
				continue
			}
			if !ev.testMatch(ctx, last) {
				continue
			}
			if !ev.matchesAt(ctx, path.Steps[:len(path.Steps)-1], path.Steps[len(path.Steps)-1].Axis) {
				continue
			}
			// Re-verify all predicates (the index pre-filters only one
			// condition, and hash candidates may be false positives).
			if !ev.predsHold(ctx, last.Preds) {
				continue
			}
			out = append(out, core.NodePosting(ctx))
		}
	}
	return sortPostings(doc, out), true
}

// runIndexedAttrStep handles final attribute steps with a dot condition:
// //item/@id[. = "x"].
func (ev *evaluator) runIndexedAttrStep(path *Path, last Step) ([]core.Posting, bool) {
	ci, cond := pickIndexableCond(last.Preds)
	if ci < 0 || !cond.Dot || !ev.condIndexAvailable(cond) {
		return nil, false
	}
	doc := ev.doc
	prefix := path.Steps[:len(path.Steps)-1]
	var out []core.Posting
	for _, cand := range ev.candidates(cond) {
		if !cand.IsAttr {
			continue
		}
		if last.Name != "*" && doc.AttrName(cand.Attr) != last.Name {
			continue
		}
		// A child-axis attribute step selects attributes OF the nodes the
		// prefix selects; a descendant step selects attributes of their
		// proper descendants.
		owner := doc.AttrOwner(cand.Attr)
		var ok bool
		if last.Axis == Child {
			ok = ev.absMatches(owner, prefix)
		} else {
			ok = ev.matchesAt(owner, prefix, Descendant)
		}
		if !ok || !ev.attrPredsHold(cand.Attr, last.Preds) {
			continue
		}
		out = append(out, cand)
	}
	return sortPostings(doc, out), true
}

// absMatches reports whether node n is selected by the absolute path
// steps (test, predicates, and ancestor-chain structure all verified).
func (ev *evaluator) absMatches(n xmltree.NodeID, steps []Step) bool {
	if len(steps) == 0 {
		return n == ev.doc.Root()
	}
	last := steps[len(steps)-1]
	return ev.testMatch(n, last) && ev.predsHold(n, last.Preds) &&
		ev.matchesAt(n, steps[:len(steps)-1], last.Axis)
}

// pickIndexableCond returns the first condition usable with an index:
// numeric and xs:date comparisons go to the typed range indexes, string
// equality to the hash index. Text-predicate conditions (contains /
// starts-with) are skipped — the legacy driver has no substring access
// path, so another condition must drive or the caller falls back to
// scanning; predsHold re-verifies every condition either way.
func pickIndexableCond(preds []Pred) (int, Cond) {
	idx := 0
	for _, p := range preds {
		for _, c := range p.Conds {
			if c.Fn == FnNone && (c.Lit.IsNum || c.Lit.IsDate || c.Op == OpEq) {
				return idx, c
			}
			idx++
		}
	}
	return -1, Cond{}
}

// condIndexAvailable reports whether the index a condition needs was
// built; without it the caller falls back to scan evaluation instead of
// silently answering from an empty candidate set.
func (ev *evaluator) condIndexAvailable(c Cond) bool {
	switch {
	case c.Lit.IsDate:
		return ev.ix.HasTyped(core.TypeDate)
	case c.Lit.IsNum:
		return ev.ix.HasTyped(core.TypeDouble)
	default:
		return ev.ix.HasString()
	}
}

// candidates queries the value indices for nodes satisfying the
// comparison, regardless of structure.
func (ev *evaluator) candidates(c Cond) []core.Posting {
	if c.Lit.IsDate {
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		switch c.Op {
		case OpEq:
			lo, hi = c.Lit.Days, c.Lit.Days
		case OpLt:
			hi = c.Lit.Days - 1 // integral day domain: exclusive = previous day
		case OpLe:
			hi = c.Lit.Days
		case OpGt:
			lo = c.Lit.Days + 1
		case OpGe:
			lo = c.Lit.Days
		case OpNe:
			// Not index-friendly; all castable dates are candidates.
		}
		return ev.ix.RangeDate(lo, hi)
	}
	if c.Lit.IsNum {
		lo, hi := math.Inf(-1), math.Inf(1)
		incLo, incHi := true, true
		switch c.Op {
		case OpEq:
			lo, hi = c.Lit.Num, c.Lit.Num
		case OpLt:
			hi, incHi = c.Lit.Num, false
		case OpLe:
			hi = c.Lit.Num
		case OpGt:
			lo, incLo = c.Lit.Num, false
		case OpGe:
			lo = c.Lit.Num
		case OpNe:
			// Not index-friendly; scan everything castable.
			return ev.ix.RangeDouble(lo, hi, true, true)
		}
		return ev.ix.RangeDouble(lo, hi, incLo, incHi)
	}
	return ev.ix.LookupString(c.Lit.Str)
}

// contextsFor maps a value-matching candidate back to the nodes the
// condition's relative path starts from.
func (ev *evaluator) contextsFor(cand core.Posting, c Cond) []xmltree.NodeID {
	doc := ev.doc
	if c.Dot {
		if cand.IsAttr {
			return nil
		}
		return []xmltree.NodeID{cand.Node}
	}
	rel := c.Rel
	lastStep := rel[len(rel)-1]
	if lastStep.Kind == TestAttr {
		if !cand.IsAttr {
			return nil
		}
		if lastStep.Name != "*" && doc.AttrName(cand.Attr) != lastStep.Name {
			return nil
		}
		// An attribute belongs to its owner: a child-axis attribute step
		// starts AT the owner; a descendant step starts at any proper
		// ancestor of the owner.
		owner := doc.AttrOwner(cand.Attr)
		var pre []xmltree.NodeID
		if lastStep.Axis == Child {
			pre = []xmltree.NodeID{owner}
		} else {
			pre = doc.Ancestors(owner)
		}
		var out []xmltree.NodeID
		for _, p := range pre {
			out = append(out, ev.elemContexts(p, rel[:len(rel)-1])...)
		}
		return dedupe(out)
	}
	if cand.IsAttr {
		return nil
	}
	return ev.elemContexts(cand.Node, rel)
}

// elemContexts returns the context nodes from which the relative
// element/text path steps selects m (tests verified, bottom-up).
func (ev *evaluator) elemContexts(m xmltree.NodeID, steps []Step) []xmltree.NodeID {
	if len(steps) == 0 {
		return []xmltree.NodeID{m}
	}
	doc := ev.doc
	last := steps[len(steps)-1]
	if !ev.testMatch(m, last) {
		return nil
	}
	var prevs []xmltree.NodeID
	if last.Axis == Child {
		if p := doc.Parent(m); p != xmltree.InvalidNode {
			prevs = append(prevs, p)
		}
	} else {
		prevs = doc.Ancestors(m)
	}
	var out []xmltree.NodeID
	for _, p := range prevs {
		out = append(out, ev.elemContexts(p, steps[:len(steps)-1])...)
	}
	return dedupe(out)
}

// matchesAt reports whether node n can be selected by the given step
// prefix followed by a step with the given axis ending at n; i.e., n's
// ancestor chain matches the absolute path prefix. Predicates on prefix
// steps are evaluated too.
func (ev *evaluator) matchesAt(n xmltree.NodeID, prefix []Step, axis Axis) bool {
	doc := ev.doc
	var parents []xmltree.NodeID
	if axis == Child {
		if p := doc.Parent(n); p != xmltree.InvalidNode {
			parents = append(parents, p)
		}
	} else {
		parents = doc.Ancestors(n)
	}
	if len(prefix) == 0 {
		for _, p := range parents {
			if p == doc.Root() {
				return true
			}
		}
		return false
	}
	lastIdx := len(prefix) - 1
	st := prefix[lastIdx]
	for _, p := range parents {
		if ev.testMatch(p, st) && ev.predsHold(p, st.Preds) &&
			ev.matchesAt(p, prefix[:lastIdx], st.Axis) {
			return true
		}
	}
	return false
}
