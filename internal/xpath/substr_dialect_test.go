package xpath

import (
	"testing"
)

// Dialect tests for the text-predicate extension: contains(operand, lit)
// and starts-with(operand, lit) inside predicates, on dot, relative
// paths, text() and attribute operands. evalBoth pins scan/indexed
// equivalence for every query.

func TestContainsPredicateShapes(t *testing.T) {
	xml := `<site><person id="person1"><name>Arthur Dent</name><mail>mailto:art@ex</mail></person>` +
		`<person id="person2"><name>Ford Prefect</name><mail>mailto:ford@ex</mail></person></site>`

	hits, doc := evalBoth(t, xml, `//person[contains(name/text(), "rthu")]`)
	if len(hits) != 1 || doc.Name(hits[0].Node) != "person" {
		t.Errorf("contains rel text() = %v", names(doc, hits))
	}
	hits, _ = evalBoth(t, xml, `//person[contains(mail, "mailto:")]`)
	if len(hits) != 2 {
		t.Errorf("contains element rel = %d hits, want 2", len(hits))
	}
	hits, _ = evalBoth(t, xml, `//name/text()[contains(., "Dent")]`)
	if len(hits) != 1 {
		t.Errorf("contains dot on text() = %d", len(hits))
	}
	hits, _ = evalBoth(t, xml, `//person[starts-with(@id, "person2")]`)
	if len(hits) != 1 {
		t.Errorf("starts-with attr = %d", len(hits))
	}
	hits, _ = evalBoth(t, xml, `//person/@id[starts-with(., "person")]`)
	if len(hits) != 2 {
		t.Errorf("starts-with dot on attr step = %d", len(hits))
	}
	// starts-with anchors at the beginning: a mid-string match is not one.
	hits, _ = evalBoth(t, xml, `//person[starts-with(name/text(), "Dent")]`)
	if len(hits) != 0 {
		t.Errorf("starts-with matched mid-string: %d", len(hits))
	}
	// Conjunction with a value predicate.
	hits, _ = evalBoth(t, xml, `//person[contains(mail, "mailto:") and @id = "person1"]`)
	if len(hits) != 1 {
		t.Errorf("contains+eq conjunction = %d", len(hits))
	}
	// Existential semantics: any selected node may match.
	hits, _ = evalBoth(t, `<r><p><w>abc</w><w>xyz</w></p></r>`, `//p[contains(w, "xyz")]`)
	if len(hits) != 1 {
		t.Errorf("existential contains = %d", len(hits))
	}
}

func TestContainsEmptyAndUnicodePatterns(t *testing.T) {
	xml := `<r><a>héllo wörld</a><b>日本語テキスト</b><c></c></r>`
	// The empty pattern is contained in (and a prefix of) every string.
	hits, _ := evalBoth(t, xml, `//a/text()[contains(., "")]`)
	if len(hits) != 1 {
		t.Errorf("empty contains = %d", len(hits))
	}
	hits, _ = evalBoth(t, xml, `//a/text()[starts-with(., "")]`)
	if len(hits) != 1 {
		t.Errorf("empty starts-with = %d", len(hits))
	}
	hits, _ = evalBoth(t, xml, `//b[contains(., "本語テ")]`)
	if len(hits) != 1 {
		t.Errorf("unicode contains = %d", len(hits))
	}
	hits, _ = evalBoth(t, xml, `//b[starts-with(., "日本")]`)
	if len(hits) != 1 {
		t.Errorf("unicode starts-with = %d", len(hits))
	}
}

func TestContainsParseErrors(t *testing.T) {
	for _, q := range []string{
		`//a[contains(]`,
		`//a[contains(name)]`,
		`//a[contains(name,)]`,
		`//a[contains(name, "x"`,
		`//a[contains("x", name)]`,
		`//a[starts-with(name, 42)]`,
		`//a[unknown-fn(name, "x")]`,
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted a malformed text predicate", q)
		}
	}
}
