package xpath

import (
	"testing"

	"repro/internal/xmlparse"
)

// FuzzXPathParse fuzzes the XPath dialect parser with arbitrary
// expressions. Properties:
//
//  1. Parse never panics — malformed expressions return an error.
//  2. A successfully parsed expression evaluates against a small
//     document without panicking (the scan baseline exercises every
//     axis/predicate path).
//
// Seed corpus: f.Add seeds below plus the files checked in under
// testdata/fuzz/FuzzXPathParse.
func FuzzXPathParse(f *testing.F) {
	doc, err := xmlparse.ParseString(
		`<site><people><person id="p1"><name>Ann</name><age>34.5</age>` +
			`<joined>2009-03-24</joined></person><person id="p2"><name>Bob</name>` +
			`<age>40</age></person></people><open t="2009-03-24T12:00:00">7</open></site>`)
	if err != nil {
		f.Fatal(err)
	}
	for _, seed := range []string{
		`/site/people/person/name`,
		`//person[age = 34.5]`,
		`//person[@id = "p1"]/name`,
		`//age[. >= 30 and . < 41]`,
		`//joined[. = xs:date("2009-03-24")]`,
		`//open[@t < xs:dateTime("2010-01-01T00:00:00")]`,
		`//*[. = "Ann"]`,
		`/site//person[starts-with(name, "A")]`,
		`//person[position() = 1]`,
		`]]][[[`,
		`//person[`,
		`/a/b[@x = `,
		`//a[. = 1e309]`,
		`//person[contains(name/text(), "nn")]`,
		`//person[starts-with(@id, "p1")]`,
		`//name/text()[contains(., "")]`,
		`//person[contains(name, "o") and age = 40]`,
		`//person[contains(]`,
		`//person[contains(name)]`,
		`//person[contains(name, 42)]`,
		`//person[starts-with(., "日本語")]`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		path, err := Parse(expr) // must not panic
		if err != nil {
			return
		}
		if path == nil {
			t.Fatalf("Parse(%q) returned nil path and nil error", expr)
		}
		_ = Evaluate(doc, path) // must not panic either
	})
}
