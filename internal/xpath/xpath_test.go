package xpath

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

const personXML = `<person><name><first>Arthur</first><family>Dent</family></name><birthday>1966-09-26</birthday><age><decades>4</decades>2<years/></age><weight><kilos>78</kilos>.<grams>230</grams></weight></person>`

func mustIndex(t testing.TB, xml string) *core.Snapshot {
	t.Helper()
	doc, err := xmlparse.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return core.Build(doc, core.DefaultOptions()).Snapshot()
}

func names(doc *xmltree.Doc, ps []core.Posting) []string {
	var out []string
	for _, p := range ps {
		if p.IsAttr {
			out = append(out, "@"+doc.AttrName(p.Attr))
		} else if doc.Kind(p.Node) == xmltree.Text {
			out = append(out, "text:"+doc.Value(p.Node))
		} else {
			out = append(out, doc.Name(p.Node))
		}
	}
	return out
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "person", "//", "//person[", "//person[x=]", "//a[.=1 and]",
		"//a[b==2]", `//a[.="unterminated]`, "//a]", "//a[b[c=1]=2]",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseShapes(t *testing.T) {
	p := MustParse(`//person[.//age = 42]/name`)
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if p.Steps[0].Axis != Descendant || p.Steps[1].Axis != Child {
		t.Error("axes wrong")
	}
	cond := p.Steps[0].Preds[0].Conds[0]
	if cond.Dot || len(cond.Rel) != 1 || cond.Rel[0].Name != "age" || cond.Rel[0].Axis != Descendant {
		t.Errorf("cond = %+v", cond)
	}
	if !cond.Lit.IsNum || cond.Lit.Num != 42 {
		t.Errorf("lit = %+v", cond.Lit)
	}

	p = MustParse(`//item[@id="i1" and price >= 10]/desc`)
	conds := p.Steps[0].Preds[0].Conds
	if len(conds) != 2 {
		t.Fatalf("conds = %d", len(conds))
	}
	if conds[0].Rel[0].Kind != TestAttr || conds[1].Op != OpGe {
		t.Errorf("conds = %+v", conds)
	}
}

func TestPaperQueryFirstArthur(t *testing.T) {
	ix := mustIndex(t, personXML)
	doc := ix.Doc()
	for _, mode := range []string{"scan", "indexed"} {
		q := MustParse(`//person[first/text()="Arthur"]`)
		var got []core.Posting
		if mode == "scan" {
			got = Evaluate(doc, q)
		} else {
			got = EvaluateIndexed(ix, q)
		}
		// first is not a direct child of person — no match.
		if len(got) != 0 {
			t.Errorf("%s: //person[first/text()=Arthur] = %v, want empty", mode, names(doc, got))
		}
		q = MustParse(`//person[name/first/text()="Arthur"]`)
		if mode == "scan" {
			got = Evaluate(doc, q)
		} else {
			got = EvaluateIndexed(ix, q)
		}
		if len(got) != 1 || doc.Name(got[0].Node) != "person" {
			t.Errorf("%s: person query = %v", mode, names(doc, got))
		}
	}
}

func TestPaperQueryFnData(t *testing.T) {
	ix := mustIndex(t, personXML)
	doc := ix.Doc()
	q := MustParse(`//*[fn:data(name)="ArthurDent"]`)
	scan := Evaluate(doc, q)
	indexed := EvaluateIndexed(ix, q)
	if len(scan) != 1 || doc.Name(scan[0].Node) != "person" {
		t.Errorf("scan = %v", names(doc, scan))
	}
	assertSame(t, doc, scan, indexed)
}

func TestPaperQueryAge42(t *testing.T) {
	xml := `<people>
	  <person><age>42</age></person>
	  <person><age>42.0</age></person>
	  <person><age> +4.2E1</age></person>
	  <person><age><decades>4</decades>2<years/></age></person>
	  <person><age>41</age></person>
	  <person><info><age>42</age></info></person>
	</people>`
	ix := mustIndex(t, xml)
	doc := ix.Doc()
	q := MustParse(`//person[.//age = 42]`)
	scan := Evaluate(doc, q)
	indexed := EvaluateIndexed(ix, q)
	if len(scan) != 5 {
		t.Errorf("scan found %d persons, want 5: %v", len(scan), names(doc, scan))
	}
	assertSame(t, doc, scan, indexed)
}

func TestRangeQueries(t *testing.T) {
	xml := `<items>
	  <item><price>5</price></item>
	  <item><price>15.5</price></item>
	  <item><price>25</price></item>
	  <item><price>not a price</price></item>
	</items>`
	ix := mustIndex(t, xml)
	doc := ix.Doc()
	cases := []struct {
		q    string
		want int
	}{
		{`//item[price > 10]`, 2},
		{`//item[price >= 15.5]`, 2},
		{`//item[price < 10]`, 1},
		{`//item[price <= 5]`, 1},
		{`//item[price = 25]`, 1},
		{`//item[price > 10 and price < 20]`, 1},
		{`//item[price != 5]`, 2}, // non-castable "not a price" never matches numerics
	}
	for _, c := range cases {
		q := MustParse(c.q)
		scan := Evaluate(doc, q)
		indexed := EvaluateIndexed(ix, q)
		if len(scan) != c.want {
			t.Errorf("scan %s = %d hits, want %d", c.q, len(scan), c.want)
		}
		assertSame(t, doc, scan, indexed)
	}
}

func TestDateQueries(t *testing.T) {
	xml := `<people>
	  <person><birthday>1966-09-26</birthday></person>
	  <person><birthday>1971-01-05</birthday></person>
	  <person><birthday>1985-12-31</birthday></person>
	  <person><birthday>yesterday</birthday></person>
	  <person><birthday>1999-13-01</birthday></person>
	</people>`
	ix := mustIndex(t, xml)
	doc := ix.Doc()
	cases := []struct {
		q    string
		want int
	}{
		{`//person[birthday = xs:date("1966-09-26")]`, 1},
		{`//person[birthday < xs:date("1970-01-01")]`, 1},
		{`//person[birthday <= xs:date("1971-01-05")]`, 2},
		{`//person[birthday > xs:date("1966-09-26")]`, 2},
		{`//person[birthday >= xs:date("1800-01-01")]`, 3}, // non-dates and month 13 never match
		{`//person[birthday != xs:date("1966-09-26")]`, 2},
		{`//person[birthday = xs:date("2020-02-02")]`, 0},
	}
	for _, c := range cases {
		q := MustParse(c.q)
		scan := Evaluate(doc, q)
		indexed := EvaluateIndexed(ix, q)
		if len(scan) != c.want {
			t.Errorf("scan %s = %d hits, want %d", c.q, len(scan), c.want)
		}
		assertSame(t, doc, scan, indexed)
	}
}

// TestMissingIndexFallsBackToScan pins the fix a verification probe
// surfaced: evaluating an indexable predicate against an index set that
// never built the needed index must fall back to scanning, not answer
// from an empty candidate set.
func TestMissingIndexFallsBackToScan(t *testing.T) {
	xml := `<people>
	  <person><birthday>1966-09-26</birthday><age>42</age></person>
	  <person><birthday>1985-12-31</birthday><age>17</age></person>
	</people>`
	doc, err := xmlparse.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	stringOnly := core.Build(doc, core.Options{String: true}).Snapshot()
	cases := []string{
		`//person[birthday < xs:date("1970-01-01")]`,
		`//person[age > 40]`,
	}
	for _, c := range cases {
		q := MustParse(c)
		scan := Evaluate(doc, q)
		indexed := EvaluateIndexed(stringOnly, q)
		if len(scan) != 1 {
			t.Fatalf("scan %s = %d hits, want 1", c, len(scan))
		}
		assertSame(t, doc, scan, indexed)
	}
	// And string equality without the string index.
	typedOnly := core.Build(doc, core.Options{Double: true, Date: true}).Snapshot()
	q := MustParse(`//person[birthday = "1966-09-26"]`)
	assertSame(t, doc, Evaluate(doc, q), EvaluateIndexed(typedOnly, q))
}

func TestDateLiteralParsing(t *testing.T) {
	for _, good := range []string{
		`//a[b = xs:date("2001-03-15")]`,
		`//a[b = date('2001-03-15')]`,
		`//a[b = xs:date ( "2001-03-15" )]`, // whitespace-tolerant, like every other token
	} {
		p, err := Parse(good)
		if err != nil {
			t.Fatalf("%s: %v", good, err)
		}
		lit := p.Steps[0].Preds[0].Conds[0].Lit
		if !lit.IsDate || lit.Str != "2001-03-15" {
			t.Errorf("%s: literal = %+v", good, lit)
		}
	}
	for _, bad := range []string{
		`//a[b = xs:date("not a date")]`,
		`//a[b = xs:date("2001-13-01")]`, // month 13: lexically live, semantically impossible
		`//a[b = xs:date(42)]`,
		`//a[b = xs:date("2001-03-15"]`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%s: parse should fail", bad)
		}
	}
}

func TestAttributePredicatesAndSteps(t *testing.T) {
	xml := `<catalog>
	  <item id="i1" price="9.99"><name>foo</name></item>
	  <item id="i2" price="19.99"><name>bar</name></item>
	</catalog>`
	ix := mustIndex(t, xml)
	doc := ix.Doc()
	q := MustParse(`//item[@id="i2"]`)
	scan := Evaluate(doc, q)
	if len(scan) != 1 || doc.Name(scan[0].Node) != "item" {
		t.Fatalf("scan = %v", names(doc, scan))
	}
	assertSame(t, doc, scan, EvaluateIndexed(ix, q))

	q = MustParse(`//item[@price < 10]`)
	scan = Evaluate(doc, q)
	if len(scan) != 1 {
		t.Fatalf("@price<10 = %v", names(doc, scan))
	}
	assertSame(t, doc, scan, EvaluateIndexed(ix, q))

	// Attribute selection step.
	q = MustParse(`//item/@id`)
	scan = Evaluate(doc, q)
	if len(scan) != 2 || !scan[0].IsAttr {
		t.Fatalf("//item/@id = %v", names(doc, scan))
	}
	assertSame(t, doc, scan, EvaluateIndexed(ix, q))

	// Attribute step with dot predicate — indexable shape.
	q = MustParse(`//item/@id[. = "i1"]`)
	scan = Evaluate(doc, q)
	if len(scan) != 1 || doc.AttrValue(scan[0].Attr) != "i1" {
		t.Fatalf("attr dot pred = %v", names(doc, scan))
	}
	assertSame(t, doc, scan, EvaluateIndexed(ix, q))
}

func TestTextSteps(t *testing.T) {
	ix := mustIndex(t, personXML)
	doc := ix.Doc()
	q := MustParse(`//first/text()`)
	got := Evaluate(doc, q)
	if len(got) != 1 || doc.Value(got[0].Node) != "Arthur" {
		t.Errorf("//first/text() = %v", names(doc, got))
	}
	q = MustParse(`//name/*`)
	got = Evaluate(doc, q)
	if len(got) != 2 {
		t.Errorf("//name/* = %v", names(doc, got))
	}
	q = MustParse(`/person/name`)
	got = Evaluate(doc, q)
	if len(got) != 1 {
		t.Errorf("/person/name = %v", names(doc, got))
	}
	q = MustParse(`/name`)
	if got = Evaluate(doc, q); len(got) != 0 {
		t.Errorf("/name should not match below root: %v", names(doc, got))
	}
}

func TestDotPredicate(t *testing.T) {
	ix := mustIndex(t, personXML)
	doc := ix.Doc()
	q := MustParse(`//kilos[. = 78]`)
	scan := Evaluate(doc, q)
	if len(scan) != 1 {
		t.Errorf("//kilos[.=78] = %v", names(doc, scan))
	}
	assertSame(t, doc, scan, EvaluateIndexed(ix, q))

	// Mixed content: weight = 78.230 via ".": the paper's flagship case.
	q = MustParse(`//weight[. = 78.230]`)
	scan = Evaluate(doc, q)
	if len(scan) != 1 {
		t.Errorf("//weight[.=78.230] = %v", names(doc, scan))
	}
	assertSame(t, doc, scan, EvaluateIndexed(ix, q))

	q = MustParse(`//family[. = "Dent"]`)
	scan = Evaluate(doc, q)
	if len(scan) != 1 {
		t.Errorf("//family[.=Dent] = %v", names(doc, scan))
	}
	assertSame(t, doc, scan, EvaluateIndexed(ix, q))
}

// TestIndexedMatchesScanRandomized is the load-bearing equivalence test:
// on random documents and random queries, indexed evaluation must return
// exactly what scanning returns.
func TestIndexedMatchesScanRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tags := []string{"a", "b", "c", "item", "price"}
	for trial := 0; trial < 40; trial++ {
		doc := randomDoc(rng, tags)
		ix := core.Build(doc, core.DefaultOptions()).Snapshot()
		for qi := 0; qi < 25; qi++ {
			q := randomQuery(rng, tags)
			parsed, err := Parse(q)
			if err != nil {
				t.Fatalf("generated query %q does not parse: %v", q, err)
			}
			scan := Evaluate(doc, parsed)
			indexed := EvaluateIndexed(ix, parsed)
			if !postingsEqual(scan, indexed) {
				t.Fatalf("trial %d query %q:\nscan    = %v\nindexed = %v",
					trial, q, names(doc, scan), names(doc, indexed))
			}
		}
	}
}

func randomDoc(rng *rand.Rand, tags []string) *xmltree.Doc {
	b := xmltree.NewBuilder()
	b.StartElement("root")
	var gen func(depth, budget int) int
	gen = func(depth, budget int) int {
		for budget > 0 {
			switch r := rng.Intn(10); {
			case r < 4 && depth < 4:
				b.StartElement(tags[rng.Intn(len(tags))])
				if rng.Intn(3) == 0 {
					b.Attribute([]string{"id", "v"}[rng.Intn(2)], randomVal(rng))
				}
				budget = gen(depth+1, budget-1)
				b.EndElement()
			default:
				b.Text(randomVal(rng))
				budget--
				if rng.Intn(2) == 0 {
					return budget
				}
			}
		}
		return budget
	}
	gen(1, 60)
	b.EndElement()
	d, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return d
}

func randomVal(rng *rand.Rand) string {
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprint(rng.Intn(20))
	case 1:
		return fmt.Sprintf("%.1f", rng.Float64()*20)
	case 2:
		return []string{"foo", "bar", "baz"}[rng.Intn(3)]
	case 3:
		return "."
	default:
		return fmt.Sprint(rng.Intn(5))
	}
}

func randomQuery(rng *rand.Rand, tags []string) string {
	tag := func() string { return tags[rng.Intn(len(tags))] }
	axis := func() string {
		if rng.Intn(2) == 0 {
			return "/"
		}
		return "//"
	}
	lit := func() string {
		if rng.Intn(2) == 0 {
			return fmt.Sprint(rng.Intn(20))
		}
		return `"` + []string{"foo", "bar", "baz", "7"}[rng.Intn(4)] + `"`
	}
	op := []string{"=", "!=", "<", "<=", ">", ">="}[rng.Intn(6)]
	operand := []string{".", tag(), ".//" + tag(), tag() + "/" + tag(), "@id", "fn:data(" + tag() + ")"}[rng.Intn(6)]
	pred := "[" + operand + " " + op + " " + lit() + "]"
	if rng.Intn(4) == 0 {
		pred = "[" + operand + " " + op + " " + lit() + " and . " + op + " " + lit() + "]"
	}
	q := axis() + tag() + pred
	if rng.Intn(3) == 0 {
		q = axis() + tag() + q[0:0] + axis()[:1] + "" // no-op variety guard
		q = axis() + tag() + "/" + tag() + pred
	}
	return q
}

func postingsEqual(a, b []core.Posting) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func assertSame(t *testing.T, doc *xmltree.Doc, scan, indexed []core.Posting) {
	t.Helper()
	if !postingsEqual(scan, indexed) {
		t.Errorf("indexed diverges from scan:\nscan    = %v\nindexed = %v",
			names(doc, scan), names(doc, indexed))
	}
}

func BenchmarkScanVsIndexed(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	bld := xmltree.NewBuilder()
	bld.StartElement("items")
	for i := 0; i < 5000; i++ {
		bld.StartElement("item")
		bld.StartElement("price")
		bld.Text(fmt.Sprintf("%d.%02d", rng.Intn(100), rng.Intn(100)))
		bld.EndElement()
		bld.StartElement("name")
		bld.Text(fmt.Sprintf("product-%d", i))
		bld.EndElement()
		bld.EndElement()
	}
	bld.EndElement()
	doc, _ := bld.Finish()
	ix := core.Build(doc, core.DefaultOptions()).Snapshot()
	q := MustParse(`//item[price = 42.42]`)
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Evaluate(doc, q)
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EvaluateIndexed(ix, q)
		}
	})
}
