// Package datagen generates the synthetic stand-ins for the paper's eight
// evaluation documents (Table 1): four XMark scale points and four
// "real-life" datasets (EPAGeo, DBLP, PSD, Wiki). The exact originals are
// not available offline, so each generator reproduces the distributional
// properties the experiments depend on:
//
//   - fraction of text nodes over total nodes (≈56–66 %),
//   - fraction of text nodes with potentially valid double values
//     (≈0.1 % for Wiki-like up to ≈10 % for DBLP-like),
//   - a handful of non-leaf (mixed-content) double values for DBLP- and
//     PSD-like data,
//   - Wiki-like URL families whose distinguishing characters repeat at
//     27-position strides, reproducing the hash-collision clusters of
//     Figure 11.
//
// Generation is deterministic in (name, scale, seed). Scale 1.0
// corresponds to roughly 1/64 of the paper's node counts so the full
// suite runs on a laptop; pass larger scales to approach paper sizes.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"
)

// Names lists the supported dataset names in the paper's Table 1 order.
var Names = []string{"xmark1", "xmark2", "xmark4", "xmark8", "epageo", "dblp", "psd", "wiki"}

// Generate produces the named dataset at the given scale. Scale 1.0 is
// the calibrated default (≈1/64 of the paper's node count for the
// dataset); the same name+scale+seed always yields identical bytes.
func Generate(name string, scale float64, seed int64) ([]byte, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("datagen: scale must be positive, got %g", scale)
	}
	switch name {
	case "xmark1":
		return XMark(scale, seed), nil
	case "xmark2":
		return XMark(2*scale, seed), nil
	case "xmark4":
		return XMark(4*scale, seed), nil
	case "xmark8":
		return XMark(8*scale, seed), nil
	case "epageo":
		return EPAGeo(scale, seed), nil
	case "dblp":
		return DBLP(scale, seed), nil
	case "psd":
		return PSD(scale, seed), nil
	case "wiki":
		return Wiki(scale, seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (known: %v)", name, Names)
	}
}

// PaperStats records the Table 1 row the generator imitates, for
// paper-vs-measured reporting in the experiments.
type PaperStats struct {
	SizeMB     float64
	TotalNodes int
	TextPct    float64
	DoublePct  float64
	NonLeaf    int
}

// PaperTable1 is the paper's Table 1, keyed by dataset name.
var PaperTable1 = map[string]PaperStats{
	"xmark1": {112, 4690640, 64, 8, 0},
	"xmark2": {224, 9394467, 64, 8, 0},
	"xmark4": {448, 18827157, 64, 8, 0},
	"xmark8": {896, 37642301, 64, 8, 0},
	"epageo": {170, 6558707, 66, 7, 0},
	"dblp":   {474, 34799707, 66, 10, 21},
	"psd":    {685, 58445809, 63, 4, 902},
	"wiki":   {2024, 94672619, 56, 0.1, 0},
}

// --- shared generator machinery ---

// xw is an XML writer for generator output that pretty-prints structural
// content (each child element on its own indented line, like the paper's
// downloaded datasets) and tracks the node counts the document will shred
// into. Indentation whitespace becomes real text nodes under the XQuery
// data model, which is precisely how the paper's Table 1 reaches text
// shares of 56–66 %: its "Total Nodes" column equals elements + texts.
//
// Inside beginCompact/endCompact regions (mixed-content prose, numeric
// mixed content) no indentation is emitted.
type xw struct {
	buf     []byte
	open    []string
	hasElem []bool // per open element: has element children so far
	compact int

	// Shredded-node accounting (document node excluded).
	elems int
	texts int
	attrs int
}

func newXW() *xw { return &xw{buf: make([]byte, 0, 1<<20)} }

// nodes reports the Table 1 "total": elements + text nodes.
func (w *xw) nodes() int { return w.elems + w.texts }

func (w *xw) indent() {
	if w.compact > 0 || len(w.open) == 0 {
		return
	}
	w.buf = append(w.buf, '\n')
	for i := 0; i < len(w.open); i++ {
		w.buf = append(w.buf, ' ')
	}
	// Indentation inside the root element is a text node; whitespace
	// directly under the document is not.
	w.texts++
}

func (w *xw) start(tag string, attrs ...string) {
	if len(w.hasElem) > 0 {
		w.hasElem[len(w.hasElem)-1] = true
	}
	w.indent()
	w.buf = append(w.buf, '<')
	w.buf = append(w.buf, tag...)
	for i := 0; i+1 < len(attrs); i += 2 {
		w.buf = append(w.buf, ' ')
		w.buf = append(w.buf, attrs[i]...)
		w.buf = append(w.buf, '=', '"')
		w.buf = appendEscaped(w.buf, attrs[i+1])
		w.buf = append(w.buf, '"')
		w.attrs++
	}
	w.buf = append(w.buf, '>')
	w.open = append(w.open, tag)
	w.hasElem = append(w.hasElem, false)
	w.elems++
}

func (w *xw) end() {
	tag := w.open[len(w.open)-1]
	hadElem := w.hasElem[len(w.hasElem)-1]
	w.open = w.open[:len(w.open)-1]
	w.hasElem = w.hasElem[:len(w.hasElem)-1]
	if hadElem {
		w.indent() // closing tag on its own line for structural elements
	}
	w.buf = append(w.buf, '<', '/')
	w.buf = append(w.buf, tag...)
	w.buf = append(w.buf, '>')
}

func (w *xw) text(s string) {
	if len(s) == 0 {
		return
	}
	w.buf = appendEscaped(w.buf, s)
	w.texts++
}

func (w *xw) leaf(tag, content string) {
	w.start(tag)
	w.text(content)
	w.end()
}

// beginCompact suppresses indentation until the matching endCompact —
// used for mixed content whose text must stay contiguous.
func (w *xw) beginCompact() { w.compact++ }
func (w *xw) endCompact()   { w.compact-- }

func (w *xw) bytes() []byte {
	if len(w.open) != 0 {
		panic("datagen: unclosed elements " + fmt.Sprint(w.open))
	}
	return w.buf
}

func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '"':
			dst = append(dst, "&quot;"...)
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

// wordSource deals deterministic pseudo-natural text.
type wordSource struct {
	rng   *rand.Rand
	words []string
}

var baseWords = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "data",
	"value", "index", "query", "update", "node", "tree", "hash", "range",
	"lookup", "document", "element", "content", "system", "engine", "fast",
	"generic", "mixed", "storage", "paper", "result", "table", "figure",
	"amsterdam", "research", "science", "protein", "auction", "item",
	"person", "category", "region", "europe", "asia", "africa", "bidder",
	"seller", "description", "annotation", "shipping", "payment", "credit",
}

func newWordSource(rng *rand.Rand) *wordSource {
	ws := &wordSource{rng: rng, words: make([]string, 0, len(baseWords)+400)}
	ws.words = append(ws.words, baseWords...)
	// Synthetic vocabulary tail for realistic distinct-string counts.
	for i := 0; i < 400; i++ {
		ws.words = append(ws.words, fmt.Sprintf("w%c%c%d", 'a'+rng.Intn(26), 'a'+rng.Intn(26), i))
	}
	return ws
}

func (ws *wordSource) word() string { return ws.words[ws.rng.Intn(len(ws.words))] }

// sentence returns n words joined by spaces.
func (ws *wordSource) sentence(n int) string {
	out := make([]byte, 0, n*6)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, ws.word()...)
	}
	return string(out)
}

// name returns a capitalised personal-name-like token.
func (ws *wordSource) name() string {
	w := ws.word()
	b := []byte(w)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

// price renders a two-decimal monetary value.
func price(rng *rand.Rand) string {
	return fmt.Sprintf("%d.%02d", rng.Intn(5000), rng.Intn(100))
}

// dateStr renders an xs:date-like value (live but not castable as
// dateTime — exactly like the paper's date fields).
func dateStr(rng *rand.Rand) string {
	return fmt.Sprintf("%04d-%02d-%02d", 1998+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(28))
}

// dateTimeStr renders a full xs:dateTime.
func dateTimeStr(rng *rand.Rand) string {
	return fmt.Sprintf("%04d-%02d-%02dT%02d:%02d:%02dZ",
		1998+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(28),
		rng.Intn(24), rng.Intn(60), rng.Intn(60))
}

// CollisionURLFamily returns k distinct URL-like strings engineered to
// share one hash value: their distinguishing character appears at two
// positions exactly 27 apart in the hash function's offset cycle, so the
// circular XOR cancels it — the failure mode the paper observes on Wiki
// URLs (Figure 11).
func CollisionURLFamily(rng *rand.Rand, k int) []string {
	// Layout: "http://" + 20 filler + [c] + 26 filler + [c] + tail.
	// Positions of the variable characters differ by 27.
	filler := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	prefix := "http://www." + filler(9) // 20 chars
	middle := filler(26)
	tail := ".org/wiki/" + filler(4)
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		c := string(rune('a' + i))
		out = append(out, prefix+c+middle+c+tail)
	}
	return out
}

// SortedUnique sorts and dedupes a string slice in place (generator
// helper used by tests).
func SortedUnique(ss []string) []string {
	sort.Strings(ss)
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}
