package datagen

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/vhash"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

// statsOf shreds a generated dataset and measures the Table 1 columns.
func statsOf(t *testing.T, name string, scale float64) (total, texts, dblTexts, nonLeaf int) {
	t.Helper()
	xml, err := Generate(name, scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmlparse.Parse(xml)
	if err != nil {
		t.Fatalf("%s does not parse: %v", name, err)
	}
	ix := core.Build(doc, core.Options{Double: true})
	s := ix.Stats()
	// Table 1 counts elements + texts as "Total Nodes" and castable text
	// nodes as "Double Values" (see DESIGN.md).
	return s.Elements + s.Texts, s.Texts, s.DoubleCastableTexts, s.DoubleNonLeaf
}

// TestDistributionsMatchTable1 checks every dataset against its paper row
// within tolerances: text share ±8 points, double share ±4 points.
func TestDistributionsMatchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow in -short mode")
	}
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			scale := 0.1
			if name == "xmark4" || name == "xmark8" || name == "psd" || name == "wiki" || name == "dblp" {
				scale = 0.05
			}
			total, texts, dblTexts, nonLeaf := statsOf(t, name, scale)
			paper := PaperTable1[name]
			textPct := 100 * float64(texts) / float64(total)
			dblPct := 100 * float64(dblTexts) / float64(total)
			t.Logf("%s: %d nodes, %.1f%% texts (paper %.0f%%), %.1f%% doubles (paper %.1f%%), %d non-leaf (paper %d)",
				name, total, textPct, paper.TextPct, dblPct, paper.DoublePct, nonLeaf, paper.NonLeaf)
			if diff := textPct - paper.TextPct; diff < -8 || diff > 8 {
				t.Errorf("text share %.1f%% too far from paper's %.0f%%", textPct, paper.TextPct)
			}
			if diff := dblPct - paper.DoublePct; diff < -4 || diff > 4 {
				t.Errorf("double share %.1f%% too far from paper's %.1f%%", dblPct, paper.DoublePct)
			}
			if paper.NonLeaf == 0 && nonLeaf > total/1000 {
				t.Errorf("unexpected non-leaf doubles: %d", nonLeaf)
			}
			if paper.NonLeaf > 0 && nonLeaf == 0 {
				t.Errorf("expected some non-leaf doubles, got none")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate("xmark1", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate("xmark1", 0.02, 7)
	if string(a) != string(b) {
		t.Error("same seed must give identical bytes")
	}
	c, _ := Generate("xmark1", 0.02, 8)
	if string(a) == string(c) {
		t.Error("different seed should give different bytes")
	}
}

func TestScaleGrowsOutput(t *testing.T) {
	small, _ := Generate("epageo", 0.02, 1)
	big, _ := Generate("epageo", 0.08, 1)
	if len(big) < len(small)*2 {
		t.Errorf("scale 0.08 (%d bytes) should be much larger than 0.02 (%d bytes)", len(big), len(small))
	}
}

func TestUnknownDatasetRejected(t *testing.T) {
	if _, err := Generate("nope", 1, 1); err == nil {
		t.Error("unknown dataset must error")
	}
	if _, err := Generate("xmark1", -1, 1); err == nil {
		t.Error("negative scale must error")
	}
}

func TestAllDatasetsParseAndValidate(t *testing.T) {
	for _, name := range Names {
		xml, err := Generate(name, 0.02, 3)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := xmlparse.Parse(xml)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := doc.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestCollisionURLFamilyCollides verifies the engineered 27-stride
// property: every member of a family hashes identically yet differs as a
// string — the mechanism behind the paper's Figure 11 tail.
func TestCollisionURLFamilyCollides(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(8)
		fam := CollisionURLFamily(rng, k)
		if len(SortedUnique(append([]string(nil), fam...))) != k {
			t.Fatalf("family members not distinct: %v", fam)
		}
		h := vhash.HashString(fam[0])
		for _, u := range fam[1:] {
			if vhash.HashString(u) != h {
				t.Fatalf("family member %q does not collide with %q", u, fam[0])
			}
		}
	}
}

// TestWikiProducesCollisionClusters: a generated wiki document must
// contain hash clusters of size >= 4 among its distinct string values.
func TestWikiProducesCollisionClusters(t *testing.T) {
	xml, err := Generate("wiki", 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmlparse.Parse(xml)
	if err != nil {
		t.Fatal(err)
	}
	byHash := make(map[uint32]map[string]bool)
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if doc.Kind(n) != xmltree.Text {
			continue
		}
		v := doc.Value(n)
		h := vhash.HashString(v)
		if byHash[h] == nil {
			byHash[h] = make(map[string]bool)
		}
		byHash[h][v] = true
	}
	max := 0
	for _, set := range byHash {
		if len(set) > max {
			max = len(set)
		}
	}
	t.Logf("wiki: max distinct strings per hash = %d", max)
	if max < 4 {
		t.Errorf("expected collision clusters >= 4, got %d", max)
	}
}

// TestDblpNonLeafDoubles: the injected mixed-content years must be real
// non-leaf doubles per the FSM semantics.
func TestDblpNonLeafDoubles(t *testing.T) {
	xml, err := Generate("dblp", 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmlparse.Parse(xml)
	if err != nil {
		t.Fatal(err)
	}
	ix := core.Build(doc, core.Options{Double: true})
	found := 0
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if doc.Kind(n) == xmltree.Element && doc.Name(n) == "year" && doc.NumChildren(n) > 1 {
			if v, ok := ix.DoubleValue(n); !ok || v < 1900 || v > 2100 {
				t.Errorf("mixed-content year = %v %v", v, ok)
			}
			found++
		}
	}
	if found == 0 {
		t.Error("no mixed-content years generated")
	}
	if elem := fsm.Double().ElemOf([]byte("2004")); !fsm.Double().Castable(elem) {
		t.Error("sanity: plain year must be castable")
	}
}

func BenchmarkGenerateXMark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate("xmark1", 0.05, 1); err != nil {
			b.Fatal(err)
		}
	}
}
