package datagen

import (
	"fmt"
	"math/rand"
)

// Node-count calibration: scale 1.0 targets the paper's Table 1 node
// counts divided by 64. "Nodes" follows Table 1's arithmetic: elements +
// text nodes (whitespace text included, attributes not counted).
const scaleDivisor = 64

func targetNodes(paperNodes int, scale float64) int {
	n := int(float64(paperNodes) / scaleDivisor * scale)
	if n < 500 {
		n = 500
	}
	return n
}

// XMark generates an auction-site document in the style of the XMark
// benchmark: regions with items, people with profiles, and open auctions.
// Factor 1.0 imitates the paper's XMark1 row (scaled down by 64):
// ≈64 % text nodes, ≈8 % castable doubles, no non-leaf doubles.
func XMark(factor float64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0x9a7c))
	ws := newWordSource(rng)
	w := newXW()
	target := targetNodes(PaperTable1["xmark1"].TotalNodes, factor)
	itemID, personID, auctionID := 0, 0, 0

	w.start("site")
	regions := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	w.start("regions")
	itemBudget := target * 40 / 100
	regionBase := w.nodes()
	for ri, region := range regions {
		w.start(region)
		for w.nodes() < regionBase+itemBudget*(ri+1)/len(regions) {
			itemID++
			emitXMarkItem(w, ws, rng, itemID)
		}
		w.end()
	}
	w.end()

	w.start("people")
	for w.nodes() < target*70/100 {
		personID++
		emitXMarkPerson(w, ws, rng, personID)
	}
	w.end()

	w.start("open_auctions")
	for w.nodes() < target {
		auctionID++
		emitXMarkAuction(w, ws, rng, auctionID, personID, itemID)
	}
	w.end()
	w.end() // site
	return w.bytes()
}

// emitProse writes an XMark-style mixed-content block: contiguous text
// with inline <keyword>/<bold>/<emph> markup. Each block yields roughly
// 2.3 text nodes per element, the device behind the paper's 64 % text
// share in content-heavy regions.
func emitProse(w *xw, ws *wordSource, rng *rand.Rand, sentences int) {
	w.start("text")
	w.beginCompact()
	w.text(ws.sentence(4 + rng.Intn(8)))
	for s := 0; s < sentences; s++ {
		tag := []string{"keyword", "bold", "emph"}[rng.Intn(3)]
		w.start(tag)
		w.text(ws.word())
		w.end()
		w.text(" " + ws.sentence(3+rng.Intn(7)))
	}
	w.endCompact()
	w.end()
}

func emitXMarkItem(w *xw, ws *wordSource, rng *rand.Rand, id int) {
	w.start("item", "id", fmt.Sprintf("item%d", id))
	w.leaf("location", ws.name())
	w.leaf("quantity", fmt.Sprint(1+rng.Intn(10)))
	w.leaf("name", ws.sentence(2))
	w.leaf("payment", "Creditcard")
	w.leaf("reserve", price(rng))
	w.leaf("weight", fmt.Sprintf("%d.%d", 1+rng.Intn(40), rng.Intn(10)))
	w.start("description")
	w.start("parlist")
	items := 1 + rng.Intn(2)
	for i := 0; i < items; i++ {
		w.start("listitem")
		emitProse(w, ws, rng, 2+rng.Intn(3))
		w.end()
	}
	w.end()
	w.end()
	w.leaf("shipping", "Will ship internationally")
	if rng.Intn(3) > 0 {
		w.start("mailbox")
		w.start("mail")
		w.leaf("from", ws.name()+" "+ws.name())
		w.leaf("to", ws.name()+" "+ws.name())
		w.leaf("date", dateStr(rng))
		emitProse(w, ws, rng, 2+rng.Intn(4))
		w.end()
		w.end()
	}
	w.end()
}

func emitXMarkPerson(w *xw, ws *wordSource, rng *rand.Rand, id int) {
	w.start("person", "id", fmt.Sprintf("person%d", id))
	w.leaf("name", ws.name()+" "+ws.name())
	w.leaf("emailaddress", "mailto:"+ws.word()+"@"+ws.word()+".example")
	if rng.Intn(2) == 0 {
		w.leaf("phone", fmt.Sprintf("+%d (%d) %d", 1+rng.Intn(40), rng.Intn(999), rng.Intn(99999999)))
	}
	if rng.Intn(2) == 0 {
		w.start("address")
		w.leaf("street", fmt.Sprintf("%d %s St", 1+rng.Intn(99), ws.name()))
		w.leaf("city", ws.name())
		w.leaf("country", ws.name())
		w.leaf("zipcode", fmt.Sprint(10000+rng.Intn(89999)))
		w.end()
	}
	w.start("profile")
	w.leaf("income", price(rng))
	w.leaf("interest", ws.word())
	w.leaf("education", "Graduate School")
	w.leaf("age", fmt.Sprint(18+rng.Intn(60)))
	w.leaf("rating", fmt.Sprintf("%d.%d", rng.Intn(5), rng.Intn(10)))
	w.leaf("birthday", dateStr(rng))
	w.end()
	w.end()
}

func emitXMarkAuction(w *xw, ws *wordSource, rng *rand.Rand, id, maxPerson, maxItem int) {
	w.start("open_auction", "id", fmt.Sprintf("auction%d", id))
	w.leaf("initial", price(rng))
	for b := rng.Intn(3); b > 0; b-- {
		w.start("bidder")
		w.leaf("date", dateStr(rng))
		w.leaf("time", fmt.Sprintf("%02d:%02d:%02d", rng.Intn(24), rng.Intn(60), rng.Intn(60)))
		w.leaf("increase", price(rng))
		w.end()
	}
	w.leaf("current", price(rng))
	w.leaf("quantity", fmt.Sprint(1+rng.Intn(5)))
	w.leaf("reserve", price(rng))
	w.start("itemref", "item", fmt.Sprintf("item%d", 1+rng.Intn(maxItem+1)))
	w.end()
	w.start("seller", "person", fmt.Sprintf("person%d", 1+rng.Intn(maxPerson+1)))
	w.end()
	w.start("annotation")
	emitProse(w, ws, rng, 2+rng.Intn(3))
	w.end()
	w.end()
}

// EPAGeo generates geospatial facility records: flat, coordinate-heavy
// leaves (≈66 % texts from pretty-printed structure, ≈7 % doubles).
func EPAGeo(factor float64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0x3e0a))
	ws := newWordSource(rng)
	w := newXW()
	target := targetNodes(PaperTable1["epageo"].TotalNodes, factor)
	w.start("geospatial")
	id := 0
	for w.nodes() < target {
		id++
		w.start("facility", "registry_id", fmt.Sprintf("110%07d", id))
		w.leaf("facility_name", ws.name()+" "+ws.word()+" plant")
		w.start("location_address")
		w.leaf("address", fmt.Sprintf("%d %s Road", 1+rng.Intn(9999), ws.name()))
		w.leaf("city_name", ws.name())
		w.leaf("state_code", []string{"NY", "CA", "TX", "WA", "OR"}[rng.Intn(5)])
		w.leaf("postal_code", fmt.Sprintf("%05d-%04d", 10000+rng.Intn(89999), rng.Intn(9999))) // not castable
		w.end()
		w.start("geo_coordinates")
		w.leaf("latitude", fmt.Sprintf("%.6f", 24+rng.Float64()*25))
		w.leaf("longitude", fmt.Sprintf("-%.6f", 66+rng.Float64()*58))
		w.leaf("accuracy_value", fmt.Sprint(rng.Intn(500)))
		w.leaf("collection_method", ws.sentence(3))
		w.leaf("reference_datum", "NAD83")
		w.end()
		w.end()
	}
	w.end()
	return w.bytes()
}

// DBLP generates bibliography records (≈66 % texts; ≈10 % doubles from
// year/volume/number fields) and injects a fixed small number of
// mixed-content numeric nodes reproducing the paper's 21 non-leaf
// doubles.
func DBLP(factor float64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0xdb19))
	ws := newWordSource(rng)
	w := newXW()
	target := targetNodes(PaperTable1["dblp"].TotalNodes, factor)
	w.start("dblp")
	id := 0
	nonLeafBudget := PaperTable1["dblp"].NonLeaf
	for w.nodes() < target {
		id++
		kind := []string{"article", "inproceedings", "phdthesis"}[rng.Intn(3)]
		w.start(kind, "mdate", dateStr(rng), "key", fmt.Sprintf("%s/x/Y%d", kind, id))
		for a := 1 + rng.Intn(3); a > 0; a-- {
			w.leaf("author", ws.name()+" "+ws.name())
		}
		w.leaf("title", ws.sentence(4+rng.Intn(8))+".")
		if nonLeafBudget > 0 && id%300 == 0 {
			// Mixed-content year: <year><century>20</century>04</year>
			// casts to 2004 — a non-leaf double, as in the paper's count.
			nonLeafBudget--
			w.start("year")
			w.beginCompact()
			w.start("century")
			w.text("20")
			w.end()
			w.text(fmt.Sprintf("%02d", rng.Intn(10)))
			w.endCompact()
			w.end()
		} else {
			w.leaf("year", fmt.Sprint(1990+rng.Intn(20)))
		}
		w.leaf("pages", fmt.Sprintf("%d-%d", 100+rng.Intn(400), 500+rng.Intn(400)))
		w.leaf("cites", fmt.Sprint(rng.Intn(300)))
		if kind == "article" {
			w.leaf("volume", fmt.Sprint(1+rng.Intn(40)))
			w.leaf("number", fmt.Sprint(1+rng.Intn(12)))
			w.leaf("journal", ws.name()+" Journal of "+ws.name())
		} else {
			w.leaf("booktitle", ws.name()+" Conf.")
		}
		w.leaf("ee", "db/"+ws.word()+"/"+ws.word()+fmt.Sprint(id)+".html")
		w.end()
	}
	w.end()
	return w.bytes()
}

// PSD generates protein-sequence entries (≈63 % texts, ≈4 % doubles) and
// injects mixed-content numeric constructs for the paper's 902 non-leaf
// doubles (scaled with the document).
func PSD(factor float64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0x95d0))
	ws := newWordSource(rng)
	w := newXW()
	target := targetNodes(PaperTable1["psd"].TotalNodes, factor)
	nonLeafEvery := 40 // entries per injected mixed-content weight
	w.start("ProteinDatabase")
	id := 0
	amino := "ACDEFGHIKLMNPQRSTVWY"
	for w.nodes() < target {
		id++
		w.start("ProteinEntry", "id", fmt.Sprintf("PSD%06d", id))
		w.start("header")
		w.leaf("uid", fmt.Sprintf("PSD%06d", id))
		w.leaf("accession", fmt.Sprintf("A%05d", rng.Intn(99999)))
		w.end()
		w.leaf("protein", ws.name()+" "+ws.word()+" protein")
		w.leaf("organism", ws.name()+" "+ws.word())
		w.start("reference")
		w.leaf("authors", ws.name()+", "+ws.name())
		w.leaf("year", fmt.Sprint(1980+rng.Intn(25)))
		w.leaf("title", ws.sentence(5+rng.Intn(6)))
		w.end()
		if id%nonLeafEvery == 0 {
			// Mixed-content molecular weight casting to kilo.dalton.
			w.start("molecular-weight")
			w.beginCompact()
			w.start("kilo")
			w.text(fmt.Sprint(1 + rng.Intn(99)))
			w.end()
			w.text(".")
			w.start("dalton")
			w.text(fmt.Sprintf("%03d", rng.Intn(1000)))
			w.end()
			w.endCompact()
			w.end()
		} else {
			w.leaf("molecular-weight", fmt.Sprintf("%d kDa", 5+rng.Intn(200))) // unit text: not castable
		}
		w.leaf("length", fmt.Sprintf("%d aa", 50+rng.Intn(2000))) // not castable
		seq := make([]byte, 40+rng.Intn(120))
		for i := range seq {
			seq[i] = amino[rng.Intn(len(amino))]
		}
		w.leaf("sequence", string(seq))
		w.leaf("crc", fmt.Sprint(rng.Intn(1<<30))) // castable
		w.end()
	}
	w.end()
	return w.bytes()
}

// Wiki generates article abstracts: long prose, link lists with URL
// families engineered for 27-stride hash collisions, and almost no
// numeric content (≈56 % texts, ≈0.1 % doubles) — the Figure 11 stress
// case.
func Wiki(factor float64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed ^ 0x31c1))
	ws := newWordSource(rng)
	w := newXW()
	target := targetNodes(PaperTable1["wiki"].TotalNodes, factor)
	w.start("feed")
	id := 0
	emitSublink := func(url string) {
		w.beginCompact()
		w.start("sublink", "linktype", "nav")
		w.start("anchor")
		w.text(ws.word())
		w.end()
		w.start("link")
		w.text(url)
		w.end()
		w.end()
		w.endCompact()
	}
	for w.nodes() < target {
		id++
		w.start("doc")
		w.leaf("title", "Wikipedia: "+ws.name()+" "+ws.word())
		w.leaf("abstract", ws.sentence(15+rng.Intn(30)))
		if id%35 == 0 {
			w.leaf("pageid", fmt.Sprint(id)) // the rare castable double
		}
		w.start("links")
		// Every few docs, emit a whole collision family — clusters of up
		// to 9 distinct URLs sharing one hash value.
		if rng.Intn(12) == 0 {
			for _, u := range CollisionURLFamily(rng, 2+rng.Intn(8)) {
				emitSublink(u)
			}
		} else {
			for l := 1 + rng.Intn(3); l > 0; l-- {
				emitSublink("http://en.wikipedia.org/wiki/" + ws.name() + "_" + ws.word())
			}
		}
		w.end()
		w.end()
	}
	w.end()
	return w.bytes()
}
