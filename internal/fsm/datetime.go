package fsm

import "sync"

// Base DFA for the lexical space of xs:dateTime:
//
//	ws* yyyy '-' mm '-' dd 'T' hh ':' mm ':' ss ('.' d+)?
//	    ( ('+'|'-') hh ':' mm | 'Z' )? ws*
//
// The machine is purely syntactic (any digits in any field), as in the
// paper; field-range validation (month 1–12, day vs month length, …)
// happens during value extraction, so a syntactically complete but
// semantically impossible dateTime is simply never given a value.
// Negative and >4-digit years are out of scope (documented substitution).
const (
	tW0 = iota // start, leading whitespace
	tY1
	tY2
	tY3
	tY4
	tP1 // '-' after year
	tM1
	tM2
	tP2 // '-' after month
	tD1
	tD2
	tT0 // 'T'
	tH1
	tH2
	tC1 // ':' after hour
	tN1
	tN2
	tC2 // ':' after minute
	tS1
	tS2  // complete seconds            (final)
	tDot // '.' before fraction
	tF1  // fraction digits             (final)
	tZS  // timezone sign
	tZ1
	tZ2
	tZC // ':' in timezone
	tZ3
	tZ4 // complete timezone            (final)
	tZZ // 'Z'                          (final)
	tTW // trailing whitespace          (final)
	tRej
	tNum
)

const (
	tcWS = iota
	tcDigit
	tcDash
	tcColon
	tcDot
	tcT
	tcZ
	tcPlus
	tcOther
	tcNum
)

func newDateTimeDFA() *baseDFA {
	d := &baseDFA{
		name:     "dateTime",
		nState:   tNum,
		init:     tW0,
		rejState: tRej,
		final:    make([]bool, tNum),
		nClass:   tcNum,
	}
	for _, f := range []int{tS2, tF1, tZ4, tZZ, tTW} {
		d.final[f] = true
	}

	for i := range d.classOf {
		d.classOf[i] = tcOther
	}
	for _, b := range []byte{' ', '\t', '\n', '\r'} {
		d.classOf[b] = tcWS
	}
	for b := byte('0'); b <= '9'; b++ {
		d.classOf[b] = tcDigit
	}
	d.classOf['-'] = tcDash
	d.classOf[':'] = tcColon
	d.classOf['.'] = tcDot
	d.classOf['T'] = tcT
	d.classOf['Z'] = tcZ
	d.classOf['+'] = tcPlus

	d.delta = make([][]state, tNum)
	for s := range d.delta {
		row := make([]state, tcNum)
		for c := range row {
			row[c] = tRej
		}
		d.delta[s] = row
	}
	set := func(s, c, t int) { d.delta[s][c] = state(t) }

	set(tW0, tcWS, tW0)
	set(tW0, tcDigit, tY1)
	set(tY1, tcDigit, tY2)
	set(tY2, tcDigit, tY3)
	set(tY3, tcDigit, tY4)
	set(tY4, tcDash, tP1)
	set(tP1, tcDigit, tM1)
	set(tM1, tcDigit, tM2)
	set(tM2, tcDash, tP2)
	set(tP2, tcDigit, tD1)
	set(tD1, tcDigit, tD2)
	set(tD2, tcT, tT0)
	set(tT0, tcDigit, tH1)
	set(tH1, tcDigit, tH2)
	set(tH2, tcColon, tC1)
	set(tC1, tcDigit, tN1)
	set(tN1, tcDigit, tN2)
	set(tN2, tcColon, tC2)
	set(tC2, tcDigit, tS1)
	set(tS1, tcDigit, tS2)
	set(tS2, tcDot, tDot)
	set(tS2, tcDash, tZS)
	set(tS2, tcPlus, tZS)
	set(tS2, tcZ, tZZ)
	set(tS2, tcWS, tTW)
	set(tDot, tcDigit, tF1)
	set(tF1, tcDigit, tF1)
	set(tF1, tcDash, tZS)
	set(tF1, tcPlus, tZS)
	set(tF1, tcZ, tZZ)
	set(tF1, tcWS, tTW)
	set(tZS, tcDigit, tZ1)
	set(tZ1, tcDigit, tZ2)
	set(tZ2, tcColon, tZC)
	set(tZC, tcDigit, tZ3)
	set(tZ3, tcDigit, tZ4)
	set(tZ4, tcWS, tTW)
	set(tZZ, tcWS, tTW)
	set(tTW, tcWS, tTW)
	return d
}

var (
	dateTimeOnce sync.Once
	dateTimeM    *Machine
)

// DateTime returns the compiled xs:dateTime machine (built once, shared).
func DateTime() *Machine {
	dateTimeOnce.Do(func() { dateTimeM = compile(newDateTimeDFA()) })
	return dateTimeM
}

// DateTimeValue extracts the value of a castable dateTime fragment as
// milliseconds since the Unix epoch (UTC, proleptic Gregorian calendar;
// fraction digits beyond milliseconds are truncated). ok is false when
// the fragment is syntactically incomplete or semantically invalid
// (month 13, June 31st, hour 25, timezone beyond ±14:00, …).
func DateTimeValue(f Frag) (millis int64, ok bool) {
	if !DateTime().Castable(f.Elem) {
		return 0, false
	}
	// A castable fragment's items are exactly:
	//   run4 '-' run2 '-' run2 'T' run2 ':' run2 ':' run2
	//   [ '.' runF ] [ ('+'|'-') run2 ':' run2 | 'Z' ]
	it := f.Items
	need := func(i int, punct byte) bool { return i < len(it) && it[i].Punct == punct }
	run := func(i int) (int, bool) {
		if i < len(it) && it[i].Punct == 0 {
			return int(it[i].Val), true
		}
		return 0, false
	}
	year, ok1 := run(0)
	mon, ok2 := run(2)
	day, ok3 := run(4)
	hour, ok4 := run(6)
	min, ok5 := run(8)
	sec, ok6 := run(10)
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 &&
		need(1, '-') && need(3, '-') && need(5, 'T') && need(7, ':') && need(9, ':')) {
		return 0, false
	}
	if mon < 1 || mon > 12 || day < 1 || day > daysInMonth(year, mon) ||
		hour > 23 || min > 59 || sec > 59 {
		return 0, false
	}
	i := 11
	var fracMillis int64
	if need(i, '.') {
		fr := it[i+1]
		v, l := fr.Val, fr.Len
		for l > 3 {
			v = v / 10
			l--
		}
		for l < 3 {
			v = v * 10
			l++
		}
		fracMillis = int64(v)
		i += 2
	}
	var offMinutes int64
	switch {
	case need(i, 'Z'):
		i++
	case need(i, '+') || need(i, '-'):
		sign := int64(1)
		if it[i].Punct == '-' {
			sign = -1
		}
		zh, okh := run(i + 1)
		zm, okm := run(i + 3)
		if !okh || !okm || !need(i+2, ':') {
			return 0, false
		}
		if zh > 14 || zm > 59 || (zh == 14 && zm != 0) {
			return 0, false
		}
		offMinutes = sign * int64(zh*60+zm)
		i += 4
	}
	if i != len(it) {
		return 0, false
	}
	days := daysFromCivil(year, mon, day)
	millis = days*86400000 + int64(hour)*3600000 + int64(min)*60000 + int64(sec)*1000 + fracMillis
	millis -= offMinutes * 60000 // normalise to UTC
	return millis, true
}

// daysInMonth reports the number of days of mon in year (proleptic
// Gregorian).
func daysInMonth(year, mon int) int {
	switch mon {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if isLeap(year) {
			return 29
		}
		return 28
	}
}

func isLeap(year int) bool {
	return year%4 == 0 && (year%100 != 0 || year%400 == 0)
}

// daysFromCivil converts a proleptic-Gregorian date to days since
// 1970-01-01 (Howard Hinnant's algorithm).
func daysFromCivil(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	era := y / 400
	if y < 0 && y%400 != 0 {
		era--
	}
	yoe := y - era*400 // [0, 399]
	var mp int
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1                    // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy         // [0, 146096]
	return int64(era)*146097 + int64(doe) - 719468 // epoch shift
}
