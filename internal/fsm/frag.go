package fsm

import (
	"math"
	"strconv"
	"strings"
)

// Item is one piece of a fragment's lexical content: either a single
// punctuation/marker character (Punct != 0) or a run of decimal digits
// (Punct == 0) with its numeric value and length (length preserves leading
// zeros, which a bare value cannot).
type Item struct {
	Punct byte
	Val   float64
	Len   int32
}

// Frag is the per-node descriptor the typed indices store in place of the
// paper's [value, state] pair: the monoid element plus the digit runs and
// punctuation marks of the fragment, from which the canonical lexical
// representation — and hence the typed value — is reconstructed without
// reading document text. Whitespace never carries value and validity is
// entirely the element's job, so whitespace is not recorded.
//
// The zero Frag is not valid; use Machine.ParseFrag or Machine.IdentityFrag.
type Frag struct {
	Elem  Elem
	Items []Item
}

// IdentityFrag returns the fragment of the empty string.
func (m *Machine) IdentityFrag() Frag { return Frag{Elem: Identity} }

// ParseFrag runs the machine over text and captures the fragment
// descriptor. ok is false (and the Frag zero) when the text is rejected —
// it cannot occur inside any valid lexical value of the type.
func (m *Machine) ParseFrag(text []byte) (Frag, bool) {
	e := Identity
	var items []Item
	classOf := &m.dfa.classOf
	for _, b := range text {
		e = m.step[e][classOf[b]]
		if e == Reject {
			return Frag{}, false
		}
		if b >= '0' && b <= '9' {
			if n := len(items); n > 0 && items[n-1].Punct == 0 {
				it := &items[n-1]
				it.Val = it.Val*10 + float64(b-'0')
				it.Len++
			} else {
				items = append(items, Item{Val: float64(b - '0'), Len: 1})
			}
		} else if !isWS(b) {
			items = append(items, Item{Punct: b})
		}
	}
	return Frag{Elem: e, Items: items}, true
}

// ParseFragString is ParseFrag for a string.
func (m *Machine) ParseFragString(text string) (Frag, bool) {
	f, ok := m.ParseFrag([]byte(text))
	return f, ok
}

func isWS(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

// Combine concatenates two fragments: the SCT supplies the combined
// element (ok is false when the concatenation is rejected), and boundary
// digit runs merge positionally — left-run digits become more significant:
//
//	combine("78", ".") + "230"  ⇒  78.230  (the paper's <weight> example)
//
// Combine is associative (the element by monoid composition, the items by
// concatenation), which the update algorithm and the commutative-commit
// protocol rely on.
func (m *Machine) Combine(a, b Frag) (Frag, bool) {
	e := m.sct[a.Elem][b.Elem]
	if e == Reject {
		return Frag{}, false
	}
	if len(b.Items) == 0 {
		return Frag{Elem: e, Items: a.Items}, true
	}
	if len(a.Items) == 0 {
		return Frag{Elem: e, Items: b.Items}, true
	}
	items := make([]Item, 0, len(a.Items)+len(b.Items))
	items = append(items, a.Items...)
	last := &items[len(items)-1]
	rest := b.Items
	if last.Punct == 0 && rest[0].Punct == 0 {
		// Adjacent digit runs merge: the SCT already guarantees no
		// whitespace separated them (it would have rejected).
		last.Val = last.Val*pow10(rest[0].Len) + rest[0].Val
		last.Len += rest[0].Len
		rest = rest[1:]
	}
	items = append(items, rest...)
	return Frag{Elem: e, Items: items}, true
}

// CombineAll folds Combine left to right over frags.
func (m *Machine) CombineAll(frags ...Frag) (Frag, bool) {
	acc := m.IdentityFrag()
	for _, f := range frags {
		var ok bool
		acc, ok = m.Combine(acc, f)
		if !ok {
			return Frag{}, false
		}
	}
	return acc, true
}

// Lexical reconstructs the canonical lexical representation of the
// fragment: its digits and punctuation without surrounding whitespace.
// For digit runs of up to 15 digits the reconstruction is exact, including
// leading zeros; longer runs degrade to 17 significant digits padded to
// the recorded length (the value a cast to xs:double retains is unchanged).
func (f Frag) Lexical() string {
	var sb strings.Builder
	for _, it := range f.Items {
		if it.Punct != 0 {
			sb.WriteByte(it.Punct)
			continue
		}
		digits := strconv.FormatFloat(it.Val, 'f', 0, 64)
		switch {
		case int32(len(digits)) < it.Len:
			for i := int32(len(digits)); i < it.Len; i++ {
				sb.WriteByte('0')
			}
			sb.WriteString(digits)
		case int32(len(digits)) > it.Len:
			// Only possible when a >17-digit run's float value rounded up
			// to exactly 10^Len; the nearest Len-digit number is all nines
			// (within one ulp of the original run's value).
			for i := int32(0); i < it.Len; i++ {
				sb.WriteByte('9')
			}
		default:
			sb.WriteString(digits)
		}
	}
	return sb.String()
}

func pow10(n int32) float64 {
	if n < 0 {
		return 0
	}
	if n < int32(len(pow10Table)) {
		return pow10Table[n]
	}
	return math.Pow(10, float64(n))
}

var pow10Table = [...]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22}
