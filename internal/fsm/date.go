package fsm

import "sync"

// Base DFA for the lexical space of xs:date (no timezone — documented
// restriction, matching the dateTime machine's scope):
//
//	ws* yyyy '-' mm '-' dd ws*
//
// The machine demonstrates that the framework generalises to any ordered
// XML type exactly as Section 4 claims: define the complete-value DFA and
// the monoid, SCT, and fragment algebra follow mechanically. The person
// document's <birthday>1966-09-26</birthday> is castable here while
// remaining only a live fragment for the dateTime machine.
const (
	daW0 = iota // start, leading whitespace
	daY1
	daY2
	daY3
	daY4
	daP1 // '-' after year
	daM1
	daM2
	daP2 // '-' after month
	daD1
	daD2 // complete               (final)
	daTW // trailing whitespace    (final)
	daRej
	daNum
)

const (
	dacWS = iota
	dacDigit
	dacDash
	dacOther
	dacNum
)

func newDateDFA() *baseDFA {
	d := &baseDFA{
		name:     "date",
		nState:   daNum,
		init:     daW0,
		rejState: daRej,
		final:    make([]bool, daNum),
		nClass:   dacNum,
	}
	d.final[daD2] = true
	d.final[daTW] = true

	for i := range d.classOf {
		d.classOf[i] = dacOther
	}
	for _, b := range []byte{' ', '\t', '\n', '\r'} {
		d.classOf[b] = dacWS
	}
	for b := byte('0'); b <= '9'; b++ {
		d.classOf[b] = dacDigit
	}
	d.classOf['-'] = dacDash

	d.delta = make([][]state, daNum)
	for s := range d.delta {
		row := make([]state, dacNum)
		for c := range row {
			row[c] = daRej
		}
		d.delta[s] = row
	}
	set := func(s, c, t int) { d.delta[s][c] = state(t) }
	set(daW0, dacWS, daW0)
	set(daW0, dacDigit, daY1)
	set(daY1, dacDigit, daY2)
	set(daY2, dacDigit, daY3)
	set(daY3, dacDigit, daY4)
	set(daY4, dacDash, daP1)
	set(daP1, dacDigit, daM1)
	set(daM1, dacDigit, daM2)
	set(daM2, dacDash, daP2)
	set(daP2, dacDigit, daD1)
	set(daD1, dacDigit, daD2)
	set(daD2, dacWS, daTW)
	set(daTW, dacWS, daTW)
	return d
}

var (
	dateOnce sync.Once
	dateM    *Machine
)

// Date returns the compiled xs:date machine (built once, shared).
func Date() *Machine {
	dateOnce.Do(func() { dateM = compile(newDateDFA()) })
	return dateM
}

// DateValue extracts the value of a castable date fragment as days since
// the Unix epoch (proleptic Gregorian). ok is false for syntactically
// incomplete or semantically impossible dates (month 13, Feb 30, …).
func DateValue(f Frag) (days int64, ok bool) {
	if !Date().Castable(f.Elem) {
		return 0, false
	}
	it := f.Items
	// Castable shape: run4 '-' run2 '-' run2.
	if len(it) != 5 || it[0].Punct != 0 || it[1].Punct != '-' ||
		it[2].Punct != 0 || it[3].Punct != '-' || it[4].Punct != 0 {
		return 0, false
	}
	year, mon, day := int(it[0].Val), int(it[2].Val), int(it[4].Val)
	if mon < 1 || mon > 12 || day < 1 || day > daysInMonth(year, mon) {
		return 0, false
	}
	return daysFromCivil(year, mon, day), true
}
