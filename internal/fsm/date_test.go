package fsm

import (
	"math/rand"
	"testing"
	"time"
)

func TestDateMachineProperties(t *testing.T) {
	m := Date()
	t.Logf("date machine: %d elements", m.NumElems())
	if m.NumElems() > 256 {
		t.Errorf("date machine has %d elements, exceeds a byte", m.NumElems())
	}
	// SCT property on the date alphabet.
	rng := rand.New(rand.NewSource(61))
	alphabet := []byte("0123456789- x")
	randStr := func(n int) string {
		b := make([]byte, rng.Intn(n))
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	for trial := 0; trial < 4000; trial++ {
		x, y := randStr(8), randStr(8)
		ex, ey := m.ElemOf([]byte(x)), m.ElemOf([]byte(y))
		direct := m.ElemOf([]byte(x + y))
		var combined Elem
		if ex == Reject || ey == Reject {
			combined = Reject
		} else {
			combined = m.CombineElem(ex, ey)
		}
		if combined != direct {
			t.Fatalf("SCT mismatch for %q + %q", x, y)
		}
	}
}

func TestDateValueAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 2000; trial++ {
		y := 1 + rng.Intn(9998)
		mo := 1 + rng.Intn(12)
		d := 1 + rng.Intn(daysInMonth(y, mo))
		s := pad(y, 4) + "-" + pad(mo, 2) + "-" + pad(d, 2)
		f, ok := Date().ParseFragString(s)
		if !ok {
			t.Fatalf("valid date %q rejected", s)
		}
		got, ok := DateValue(f)
		if !ok {
			t.Fatalf("valid date %q has no value", s)
		}
		want := time.Date(y, time.Month(mo), d, 0, 0, 0, 0, time.UTC).Unix() / 86400
		if got != want {
			t.Fatalf("DateValue(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestDateSemanticRejects(t *testing.T) {
	for _, s := range []string{"2026-13-01", "2026-00-10", "2026-02-30", "2025-02-29", "2026-04-31"} {
		f, ok := Date().ParseFragString(s)
		if !ok {
			t.Fatalf("%q should be syntactically live", s)
		}
		if _, ok := DateValue(f); ok {
			t.Errorf("%q should have no value", s)
		}
	}
}

func TestDateMixedContent(t *testing.T) {
	m := Date()
	// <birthday><y>1966</y>-<md>09-26</md></birthday> style fragments.
	parts := []string{"1966", "-09", "-26"}
	frags := make([]Frag, len(parts))
	for i, p := range parts {
		f, ok := m.ParseFragString(p)
		if !ok {
			t.Fatalf("part %q rejected", p)
		}
		frags[i] = f
	}
	comb, ok := m.CombineAll(frags...)
	if !ok {
		t.Fatal("combine rejected")
	}
	v, ok := DateValue(comb)
	if !ok {
		t.Fatal("no value")
	}
	want := time.Date(1966, 9, 26, 0, 0, 0, 0, time.UTC).Unix() / 86400
	if v != want {
		t.Errorf("combined date = %d, want %d", v, want)
	}
}

func TestDateVsDateTimeLiveness(t *testing.T) {
	// The paper's birthday: a complete date, an incomplete dateTime.
	s := "1966-09-26"
	if e := Date().ElemOf([]byte(s)); !Date().Castable(e) {
		t.Error("date machine must accept a plain date")
	}
	if e := DateTime().ElemOf([]byte(s)); e == Reject || DateTime().Castable(e) {
		t.Error("dateTime machine must hold a plain date live but not castable")
	}
	// Whitespace handling matches the other machines.
	if e := Date().ElemOf([]byte("  1966-09-26  ")); !Date().Castable(e) {
		t.Error("padded date must cast")
	}
	if Date().ElemOf([]byte("1966 -09-26")) != Reject {
		t.Error("interior whitespace must reject")
	}
}

func TestDateFragCombineMatchesParse(t *testing.T) {
	m := Date()
	rng := rand.New(rand.NewSource(63))
	pieces := []string{"19", "66", "-", "09", "-26", " ", "2026-", "01-01", "x"}
	for trial := 0; trial < 3000; trial++ {
		x := pieces[rng.Intn(len(pieces))] + pieces[rng.Intn(len(pieces))]
		y := pieces[rng.Intn(len(pieces))]
		fx, okx := m.ParseFragString(x)
		fy, oky := m.ParseFragString(y)
		direct, okd := m.ParseFragString(x + y)
		if !okx || !oky {
			continue
		}
		comb, okc := m.Combine(fx, fy)
		if okc != okd {
			t.Fatalf("combine ok=%v direct ok=%v for %q+%q", okc, okd, x, y)
		}
		if okc && !fragEqual(comb, direct) {
			t.Fatalf("frag mismatch for %q+%q", x, y)
		}
	}
	// Lexical reconstruction reproduces canonical dates.
	f, _ := m.ParseFragString(" 1966-09-26 ")
	if got := f.Lexical(); got != "1966-09-26" {
		t.Errorf("Lexical = %q", got)
	}
}
