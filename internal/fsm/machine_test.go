package fsm

import (
	"math/rand"
	"strings"
	"testing"
)

// machines under test share these generic property suites.
func machines() map[string]*Machine {
	return map[string]*Machine{"double": Double(), "dateTime": DateTime()}
}

// fragAlphabet are characters that exercise every class of both machines
// plus rejectable noise.
var fragAlphabet = []byte("0123456789+-.eETZ: x")

func randomFragString(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = fragAlphabet[rng.Intn(len(fragAlphabet))]
	}
	return string(b)
}

// validDoubleStrings generates syntactically valid doubles for positive
// testing.
func validDoubleString(rng *rand.Rand) string {
	var sb strings.Builder
	if rng.Intn(3) == 0 {
		sb.WriteString(" ")
	}
	if rng.Intn(3) == 0 {
		sb.WriteByte("+-"[rng.Intn(2)])
	}
	digits := func(n int) {
		for i := 0; i < n; i++ {
			sb.WriteByte(byte('0' + rng.Intn(10)))
		}
	}
	hasInt := rng.Intn(4) > 0
	if hasInt {
		digits(1 + rng.Intn(10))
		if rng.Intn(2) == 0 {
			sb.WriteByte('.')
			digits(rng.Intn(8))
		}
	} else {
		sb.WriteByte('.')
		digits(1 + rng.Intn(8))
	}
	if rng.Intn(3) == 0 {
		sb.WriteByte("eE"[rng.Intn(2)])
		if rng.Intn(2) == 0 {
			sb.WriteByte("+-"[rng.Intn(2)])
		}
		digits(1 + rng.Intn(3))
	}
	if rng.Intn(3) == 0 {
		sb.WriteString("  ")
	}
	return sb.String()
}

// TestElemOfConcatMatchesSCT is the defining SCT property (Section 4):
// State(x·y) == SCT[State(x)][State(y)] for arbitrary strings, with Reject
// handled as "absence".
func TestElemOfConcatMatchesSCT(t *testing.T) {
	for name, m := range machines() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			for trial := 0; trial < 5000; trial++ {
				x := randomFragString(rng, 12)
				y := randomFragString(rng, 12)
				ex, ey := m.ElemOf([]byte(x)), m.ElemOf([]byte(y))
				direct := m.ElemOf([]byte(x + y))
				var combined Elem
				if ex == Reject || ey == Reject {
					combined = Reject
				} else {
					combined = m.CombineElem(ex, ey)
				}
				if combined != direct {
					t.Fatalf("SCT mismatch: State(%q)=%d State(%q)=%d SCT=%d direct=%d",
						x, ex, y, ey, combined, direct)
				}
			}
		})
	}
}

// TestSCTAssociativity: combining three fragments in either association
// yields the same element — required by the one-pass algorithms.
func TestSCTAssociativity(t *testing.T) {
	for name, m := range machines() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			for trial := 0; trial < 3000; trial++ {
				a := m.ElemOf([]byte(randomFragString(rng, 8)))
				b := m.ElemOf([]byte(randomFragString(rng, 8)))
				c := m.ElemOf([]byte(randomFragString(rng, 8)))
				if m.CombineElem(m.CombineElem(a, b), c) != m.CombineElem(a, m.CombineElem(b, c)) {
					t.Fatalf("associativity violated for %d,%d,%d", a, b, c)
				}
			}
		})
	}
}

// TestIdentityElement: the empty string's element is Identity and is
// neutral in the SCT.
func TestIdentityElement(t *testing.T) {
	for name, m := range machines() {
		t.Run(name, func(t *testing.T) {
			if m.ElemOf(nil) != Identity {
				t.Fatal("ElemOf(empty) != Identity")
			}
			for _, e := range m.LiveElems() {
				if m.CombineElem(Identity, e) != e || m.CombineElem(e, Identity) != e {
					t.Fatalf("Identity not neutral for element %d (%q)", e, m.Example(e))
				}
			}
		})
	}
}

// TestRejectAbsorbing: Reject combined with anything stays Reject.
func TestRejectAbsorbing(t *testing.T) {
	for name, m := range machines() {
		t.Run(name, func(t *testing.T) {
			for _, e := range m.LiveElems() {
				if m.CombineElem(Reject, e) != Reject || m.CombineElem(e, Reject) != Reject {
					t.Fatalf("Reject not absorbing with %d", e)
				}
			}
			if m.StepElem(Reject, '5') != Reject {
				t.Fatal("StepElem(Reject) must stay Reject")
			}
		})
	}
}

// TestMonoidSizeBounds documents the expanded-FSM sizes. The paper reports
// 60 states (including reject) for its double machine; the transition
// monoid is the canonical minimal version of that construction, so the
// count must be the same order of magnitude.
func TestMonoidSizeBounds(t *testing.T) {
	nd := Double().NumElems()
	t.Logf("double machine: %d elements (paper's expanded FSM: 60)", nd)
	if nd < 20 || nd > 200 {
		t.Errorf("double monoid size %d out of plausible range", nd)
	}
	nt := DateTime().NumElems()
	t.Logf("dateTime machine: %d elements", nt)
	if nt < 30 || nt > 5000 {
		t.Errorf("dateTime monoid size %d out of plausible range", nt)
	}
}

// TestLiveElementsHaveWitnesses: every element's recorded example string
// must reproduce the element, and must be live (usable inside some valid
// lexical value).
func TestLiveElementsHaveWitnesses(t *testing.T) {
	for name, m := range machines() {
		t.Run(name, func(t *testing.T) {
			for _, e := range m.LiveElems() {
				ex := m.Example(e)
				if got := m.ElemOf([]byte(ex)); got != e {
					t.Fatalf("Example(%d) = %q maps to %d", e, ex, got)
				}
			}
		})
	}
}

// TestCastableMatchesCompleteness: an element is castable iff its witness
// extends the empty left context to a final state; cross-check castable
// against a direct run for valid and truncated doubles.
func TestCastableMatchesCompleteness(t *testing.T) {
	m := Double()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		s := validDoubleString(rng)
		e := m.ElemOf([]byte(s))
		if e == Reject || !m.Castable(e) {
			t.Fatalf("valid double %q not castable (elem %d)", s, e)
		}
	}
	for _, s := range []string{"", ".", "+", "-", "E", "e+", "12E", "12E+", " .", "+.", "1 2"} {
		if e := m.ElemOf([]byte(s)); e != Reject && m.Castable(e) {
			t.Errorf("incomplete fragment %q reported castable", s)
		}
	}
}

// TestPaperFragmentExamples reproduces the paper's Section 4 examples.
func TestPaperFragmentExamples(t *testing.T) {
	m := Double()
	// "E+93 " is a potential valid representation (state s4 in the paper).
	if m.ElemOf([]byte("E+93 ")) == Reject {
		t.Error(`"E+93 " must be live`)
	}
	// " +32.3" is live and castable.
	if e := m.ElemOf([]byte(" +32.3")); e == Reject || !m.Castable(e) {
		t.Error(`" +32.3" must be castable`)
	}
	// "42 text" is rejected.
	if m.ElemOf([]byte("42 text")) != Reject {
		t.Error(`"42 text" must be rejected`)
	}
	// "." (the <weight> text in Figure 1) is live but not castable.
	if e := m.ElemOf([]byte(".")); e == Reject || m.Castable(e) {
		t.Error(`"." must be live and not castable`)
	}
	// "78" is castable.
	if e := m.ElemOf([]byte("78")); !m.Castable(e) {
		t.Error(`"78" must be castable`)
	}
	// "26" + "E+" → "26E+" (the paper's reconstruction example) is live.
	f1, _ := m.ParseFragString("26")
	f2, _ := m.ParseFragString("E+")
	comb, ok := m.Combine(f1, f2)
	if !ok {
		t.Fatal(`"26"+"E+" must combine`)
	}
	if got := comb.Lexical(); got != "26E+" {
		t.Errorf("Lexical = %q, want 26E+", got)
	}
	// The paper's <weight> example: "78" + "." + "230" = 78.230.
	fa, _ := m.ParseFragString("78")
	fb, _ := m.ParseFragString(".")
	fc, _ := m.ParseFragString("230")
	all, ok := m.CombineAll(fa, fb, fc)
	if !ok {
		t.Fatal("78+.+230 must combine")
	}
	v, ok := DoubleValue(all)
	if !ok || v != 78.230 {
		t.Errorf("combined value = %v %v, want 78.23", v, ok)
	}
}

// TestStateFitsInByte: the paper stores a state per node in one byte; our
// double machine must satisfy that too (dateTime may exceed it, which the
// index accommodates with uint16).
func TestStateFitsInByte(t *testing.T) {
	if n := Double().NumElems(); n > 256 {
		t.Errorf("double machine has %d elements; paper stores state in 1 byte", n)
	}
}

func BenchmarkElemOfCastable(b *testing.B) {
	m := Double()
	in := []byte("  +1234.5678E-12 ")
	b.SetBytes(int64(len(in)))
	for i := 0; i < b.N; i++ {
		sinkElem = m.ElemOf(in)
	}
}

func BenchmarkElemOfRejected(b *testing.B) {
	m := Double()
	in := []byte("clearly not a number at all")
	b.SetBytes(int64(len(in)))
	for i := 0; i < b.N; i++ {
		sinkElem = m.ElemOf(in)
	}
}

func BenchmarkSCTProbe(b *testing.B) {
	m := Double()
	x := m.ElemOf([]byte("12"))
	y := m.ElemOf([]byte(".5"))
	for i := 0; i < b.N; i++ {
		sinkElem = m.CombineElem(x, y)
	}
}

var sinkElem Elem
