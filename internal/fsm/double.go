package fsm

import (
	"strconv"
	"sync"
)

// Base DFA for the numeric lexical space of xs:double (paper Figure 5):
//
//	ws* (+|-)? ( [0-9]+ ('.' [0-9]*)? | '.' [0-9]+ ) ([eE] (+|-)? [0-9]+)? ws*
//
// The special values INF, -INF, and NaN are not part of the paper's
// machine and are likewise omitted here.
const (
	dS0   = iota // start, leading whitespace
	dSign        // after mantissa sign
	dInt         // in integer digits                      (final)
	dFrac        // after '.' preceded by integer digits,
	// or in fraction digits                               (final)
	dDotOnly // after '.' with no integer digits: needs fraction digits
	dExp     // after 'e'/'E'
	dExpSign // after exponent sign
	dExpDig  // in exponent digits                         (final)
	dTrailWS // trailing whitespace                        (final)
	dRej     // reject sink
	dNum     // state count
)

const (
	dcWS = iota
	dcSign
	dcDigit
	dcDot
	dcE
	dcOther
	dcNum
)

func newDoubleDFA() *baseDFA {
	d := &baseDFA{
		name:     "double",
		nState:   dNum,
		init:     dS0,
		rejState: dRej,
		final:    make([]bool, dNum),
		nClass:   dcNum,
	}
	d.final[dInt] = true
	d.final[dFrac] = true
	d.final[dExpDig] = true
	d.final[dTrailWS] = true

	for i := range d.classOf {
		d.classOf[i] = dcOther
	}
	for _, b := range []byte{' ', '\t', '\n', '\r'} {
		d.classOf[b] = dcWS
	}
	d.classOf['+'] = dcSign
	d.classOf['-'] = dcSign
	for b := byte('0'); b <= '9'; b++ {
		d.classOf[b] = dcDigit
	}
	d.classOf['.'] = dcDot
	d.classOf['e'] = dcE
	d.classOf['E'] = dcE

	d.delta = make([][]state, dNum)
	for s := range d.delta {
		row := make([]state, dcNum)
		for c := range row {
			row[c] = dRej
		}
		d.delta[s] = row
	}
	set := func(s int, c int, t int) { d.delta[s][c] = state(t) }
	set(dS0, dcWS, dS0)
	set(dS0, dcSign, dSign)
	set(dS0, dcDigit, dInt)
	set(dS0, dcDot, dDotOnly)

	set(dSign, dcDigit, dInt)
	set(dSign, dcDot, dDotOnly)

	set(dInt, dcDigit, dInt)
	set(dInt, dcDot, dFrac)
	set(dInt, dcE, dExp)
	set(dInt, dcWS, dTrailWS)

	set(dFrac, dcDigit, dFrac)
	set(dFrac, dcE, dExp)
	set(dFrac, dcWS, dTrailWS)

	set(dDotOnly, dcDigit, dFrac)

	set(dExp, dcSign, dExpSign)
	set(dExp, dcDigit, dExpDig)

	set(dExpSign, dcDigit, dExpDig)

	set(dExpDig, dcDigit, dExpDig)
	set(dExpDig, dcWS, dTrailWS)

	set(dTrailWS, dcWS, dTrailWS)
	return d
}

var (
	doubleOnce sync.Once
	doubleM    *Machine
)

// Double returns the compiled xs:double machine (built once, shared).
func Double() *Machine {
	doubleOnce.Do(func() { doubleM = compile(newDoubleDFA()) })
	return doubleM
}

// DoubleValue extracts the xs:double value of a castable fragment by
// reconstructing its canonical lexical form and parsing it — bit-identical
// to casting the original text for digit runs up to 15 digits. ok is false
// when the fragment is not a complete valid double.
func DoubleValue(f Frag) (v float64, ok bool) {
	if !Double().Castable(f.Elem) {
		return 0, false
	}
	if v, ok := doubleValueFast(f.Items); ok {
		return v, true
	}
	v, err := strconv.ParseFloat(f.Lexical(), 64)
	if err != nil {
		// Out-of-range magnitudes overflow to ±Inf, which is what an
		// xs:double cast retains; anything else cannot happen for a
		// castable fragment.
		if ne, isNum := err.(*strconv.NumError); !isNum || ne.Err != strconv.ErrRange {
			return 0, false
		}
	}
	return v, true
}

// doubleValueFast covers the Clinger exact cases without materialising a
// string: mantissa with at most 15 digits and a decimal exponent within
// ±22 computes bit-identically to a correctly rounded parse using one
// exactly-representable multiplication or division.
func doubleValueFast(items []Item) (float64, bool) {
	var neg bool
	var mant float64
	var digits, frac int32
	var expNeg bool
	var exp int32
	i := 0
	if i < len(items) && items[i].Punct != 0 {
		switch items[i].Punct {
		case '-':
			neg = true
			i++
		case '+':
			i++
		}
	}
	if i < len(items) && items[i].Punct == 0 {
		mant = items[i].Val
		digits = items[i].Len
		i++
	}
	if i < len(items) && items[i].Punct == '.' {
		i++
		if i < len(items) && items[i].Punct == 0 {
			it := items[i]
			if digits+it.Len > 15 {
				return 0, false
			}
			mant = mant*pow10(it.Len) + it.Val
			digits += it.Len
			frac = it.Len
			i++
		}
	}
	if digits > 15 {
		return 0, false
	}
	if i < len(items) && (items[i].Punct == 'e' || items[i].Punct == 'E') {
		i++
		if i < len(items) && items[i].Punct != 0 {
			switch items[i].Punct {
			case '-':
				expNeg = true
				i++
			case '+':
				i++
			}
		}
		if i >= len(items) || items[i].Punct != 0 || items[i].Len > 4 {
			return 0, false
		}
		exp = int32(items[i].Val)
		i++
	}
	if i != len(items) {
		return 0, false
	}
	if expNeg {
		exp = -exp
	}
	exp -= frac
	v := mant
	switch {
	case exp == 0:
	case exp > 0 && exp <= 22:
		v = mant * pow10(exp)
	case exp < 0 && exp >= -22:
		v = mant / pow10(-exp)
	default:
		return 0, false
	}
	if neg {
		v = -v
	}
	return v, true
}
