// Package fsm implements the typed range-index machinery of Section 4 of
// the paper: finite state machines that recognise fragments of an XML
// type's lexical space, the state combination table (SCT) that combines
// the states of two adjacent fragments, and fragment descriptors from
// which lexical representations (and hence typed values) are
// reconstructed without re-reading document text.
//
// # From the paper's "normalised FSM" to a transition monoid
//
// The paper expands its FSM "in such a way that [multiple] paths lead to
// different copies of the same state", so that a state uniquely identifies
// the effect of the consumed input, and then defines the SCT over those
// expanded states. The precise algebraic object behind this construction
// is the transition monoid of the base DFA: the "state" attached to a
// string x is the function f_x mapping every base-DFA state s to the state
// reached from s by consuming x. Then
//
//	State(x·y) = SCT[State(x)][State(y)] = f_y ∘ f_x
//
// is associative by construction, which is exactly what the one-pass
// create/update algorithms (Figures 7 and 8) and the commutative-commit
// argument (Section 5.1) require. Elements whose function cannot take any
// reachable state to a co-reachable one are "dead": they collapse into the
// single Reject element, which — as in the paper — is not stored (absence
// of state means rejected).
//
// Machines are defined by a small base DFA (see double.go, datetime.go);
// the monoid elements and the SCT are computed once at first use.
package fsm

import (
	"fmt"
	"sort"
)

// Elem identifies a monoid element ("expanded FSM state" in the paper's
// terminology). Two values are reserved: Reject (the dead element, not
// stored in indices) and Identity (the element of the empty string).
type Elem uint16

const (
	// Reject is the dead element: no continuation of the consumed input
	// can be part of a valid lexical value.
	Reject Elem = 0
	// Identity is the element of the empty string: combining with it is a
	// no-op.
	Identity Elem = 1
)

// state indexes the base DFA.
type state uint8

// baseDFA is the hand-written recogniser of the complete lexical space of
// one XML type. Machines derive everything else from it.
type baseDFA struct {
	name     string
	nState   int
	init     state
	rejState state
	final    []bool
	// classOf maps input bytes to character classes; delta is indexed
	// [state][class].
	classOf [256]uint8
	nClass  int
	delta   [][]state
}

// Machine is a compiled typed-value recogniser: the base DFA, its
// transition monoid, the per-byte element transition table (the paper's
// expanded FSM), and the state combination table (the paper's SCT).
type Machine struct {
	dfa *baseDFA

	// elems[i] is the transition function of element i over base states;
	// elems[Reject] and elems[Identity] are fixed.
	elems [][]state

	// step[e][class] = element after consuming one character of class.
	step [][]Elem

	// sct[left][right] = element of the concatenation.
	sct [][]Elem

	// castable[e] reports f_e(init) ∈ final.
	castable []bool

	// example[e] is a shortest string producing element e (diagnostics).
	example []string
}

// compile builds the transition monoid, step table, and SCT from the base
// DFA. It panics on inconsistent DFAs (programmer error in the machine
// definition, caught by tests).
func compile(d *baseDFA) *Machine {
	if len(d.final) != d.nState || len(d.delta) != d.nState {
		panic("fsm: inconsistent base DFA " + d.name)
	}
	reach := d.reachable()
	coreach := d.coReachable()

	// Per-class generators.
	gens := make([][]state, d.nClass)
	for c := 0; c < d.nClass; c++ {
		g := make([]state, d.nState)
		for s := 0; s < d.nState; s++ {
			g[s] = d.delta[s][c]
		}
		gens[c] = g
	}

	dead := func(f []state) bool {
		for s := 0; s < d.nState; s++ {
			if reach[s] && coreach[f[s]] {
				return false
			}
		}
		return true
	}

	identity := make([]state, d.nState)
	for s := range identity {
		identity[s] = state(s)
	}
	rejectFn := make([]state, d.nState)
	for s := range rejectFn {
		rejectFn[s] = d.rejState
	}

	m := &Machine{dfa: d}
	m.elems = [][]state{rejectFn, identity}
	m.example = []string{"<reject>", ""}
	index := map[string]Elem{key(rejectFn): Reject, key(identity): Identity}

	// BFS closure over single-character extensions: every string's element
	// is reachable from Identity by appending characters, and composition
	// of two string elements is again a string element, so the closure is
	// complete for the SCT.
	queue := []Elem{Identity}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		f := m.elems[e]
		for c := 0; c < d.nClass; c++ {
			g := composeFns(f, gens[c])
			if dead(g) {
				continue
			}
			k := key(g)
			if _, ok := index[k]; ok {
				continue
			}
			id := Elem(len(m.elems))
			if int(id) != len(m.elems) || len(m.elems) >= 1<<16 {
				panic("fsm: monoid too large for " + d.name)
			}
			index[k] = id
			m.elems = append(m.elems, g)
			m.example = append(m.example, m.example[e]+exampleChar(d, c))
			queue = append(queue, id)
		}
	}

	n := len(m.elems)
	// Step table.
	m.step = make([][]Elem, n)
	for e := 0; e < n; e++ {
		row := make([]Elem, d.nClass)
		if Elem(e) == Reject {
			m.step[e] = row // all Reject
			continue
		}
		for c := 0; c < d.nClass; c++ {
			g := composeFns(m.elems[e], gens[c])
			if dead(g) {
				row[c] = Reject
			} else {
				row[c] = index[key(g)]
			}
		}
		m.step[e] = row
	}

	// SCT: sct[a][b] = element of x·y for State(x)=a, State(y)=b.
	m.sct = make([][]Elem, n)
	for a := 0; a < n; a++ {
		row := make([]Elem, n)
		if Elem(a) != Reject {
			for b := 0; b < n; b++ {
				if Elem(b) == Reject {
					continue
				}
				g := composeFns(m.elems[a], m.elems[b])
				if dead(g) {
					row[b] = Reject
				} else {
					row[b] = index[key(g)]
				}
			}
		}
		m.sct[a] = row
	}

	m.castable = make([]bool, n)
	for e := 1; e < n; e++ {
		m.castable[e] = d.final[m.elems[e][d.init]]
	}
	return m
}

// composeFns returns g∘f as a state function: first f, then g.
func composeFns(f, g []state) []state {
	out := make([]state, len(f))
	for s := range f {
		out[s] = g[f[s]]
	}
	return out
}

func key(f []state) string {
	b := make([]byte, len(f))
	for i, s := range f {
		b[i] = byte(s)
	}
	return string(b)
}

func exampleChar(d *baseDFA, class int) string {
	// Pick the smallest printable byte of the class for diagnostics.
	for b := 32; b < 127; b++ {
		if int(d.classOf[b]) == class {
			return string(rune(b))
		}
	}
	for b := 0; b < 256; b++ {
		if int(d.classOf[b]) == class {
			return fmt.Sprintf("\\x%02x", b)
		}
	}
	return "?"
}

func (d *baseDFA) reachable() []bool {
	seen := make([]bool, d.nState)
	stack := []state{d.init}
	seen[d.init] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := 0; c < d.nClass; c++ {
			t := d.delta[s][c]
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}

func (d *baseDFA) coReachable() []bool {
	// Reverse reachability from final states.
	rev := make([][]state, d.nState)
	for s := 0; s < d.nState; s++ {
		for c := 0; c < d.nClass; c++ {
			t := d.delta[s][c]
			rev[t] = append(rev[t], state(s))
		}
	}
	seen := make([]bool, d.nState)
	var stack []state
	for s := 0; s < d.nState; s++ {
		if d.final[s] {
			seen[s] = true
			stack = append(stack, state(s))
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// Name reports the machine's type name ("double", "dateTime").
func (m *Machine) Name() string { return m.dfa.name }

// NumElems reports the number of monoid elements including Reject and
// Identity — the paper's "number of states" of the expanded FSM (60 for
// its double machine).
func (m *Machine) NumElems() int { return len(m.elems) }

// StepElem advances element e by one input byte: the expanded-FSM
// transition. Reject is absorbing.
func (m *Machine) StepElem(e Elem, b byte) Elem {
	return m.step[e][m.dfa.classOf[b]]
}

// ElemOf runs the expanded FSM over text and returns its element, Reject
// if the text cannot be part of any valid lexical value.
func (m *Machine) ElemOf(text []byte) Elem {
	e := Identity
	for _, b := range text {
		e = m.step[e][m.dfa.classOf[b]]
		if e == Reject {
			return Reject
		}
	}
	return e
}

// CombineElem probes the SCT: the element of the concatenation of two
// strings with elements a and b.
func (m *Machine) CombineElem(a, b Elem) Elem { return m.sct[a][b] }

// Castable reports whether a string with element e is a complete, valid
// lexical value of the machine's type (syntactically; machines with
// semantic constraints such as dateTime field ranges additionally validate
// during value extraction).
func (m *Machine) Castable(e Elem) bool { return m.castable[e] }

// Example returns a shortest input producing element e, for diagnostics
// and tests.
func (m *Machine) Example(e Elem) string { return m.example[e] }

// LiveElems returns all non-Reject element ids in ascending order.
func (m *Machine) LiveElems() []Elem {
	out := make([]Elem, 0, len(m.elems)-1)
	for e := 1; e < len(m.elems); e++ {
		out = append(out, Elem(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
