package fsm

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestFragCombineMatchesParse is the fragment-level analogue of the SCT
// property: parsing a concatenation must equal combining the parses —
// including the digit runs and punctuation, not just the element.
func TestFragCombineMatchesParse(t *testing.T) {
	for name, m := range machines() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 5000; trial++ {
				x := randomFragString(rng, 10)
				y := randomFragString(rng, 10)
				fx, okx := m.ParseFragString(x)
				fy, oky := m.ParseFragString(y)
				direct, okd := m.ParseFragString(x + y)
				if !okx || !oky {
					if okx && oky {
						t.Fatalf("inconsistent rejects for %q %q", x, y)
					}
					// A rejected part always rejects the whole.
					if okd && !okx && !oky {
						t.Fatalf("reject part but concat %q%q accepted", x, y)
					}
					continue
				}
				comb, okc := m.Combine(fx, fy)
				if okc != okd {
					t.Fatalf("Combine ok=%v but direct ok=%v for %q + %q", okc, okd, x, y)
				}
				if !okc {
					continue
				}
				if !fragEqual(comb, direct) {
					t.Fatalf("frag mismatch for %q + %q:\ncombine: %+v\ndirect:  %+v", x, y, comb, direct)
				}
			}
		})
	}
}

func fragEqual(a, b Frag) bool {
	if a.Elem != b.Elem || len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return false
		}
	}
	return true
}

// TestFragCombineAssociative: (a·b)·c == a·(b·c) at the descriptor level.
func TestFragCombineAssociative(t *testing.T) {
	for name, m := range machines() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(12))
			for trial := 0; trial < 3000; trial++ {
				fa, oka := m.ParseFragString(randomFragString(rng, 6))
				fb, okb := m.ParseFragString(randomFragString(rng, 6))
				fc, okc := m.ParseFragString(randomFragString(rng, 6))
				if !oka || !okb || !okc {
					continue
				}
				ab, ok1 := m.Combine(fa, fb)
				var left Frag
				okL := false
				if ok1 {
					left, okL = m.Combine(ab, fc)
				}
				bc, ok2 := m.Combine(fb, fc)
				var right Frag
				okR := false
				if ok2 {
					right, okR = m.Combine(fa, bc)
				}
				if okL != okR {
					t.Fatalf("assoc ok mismatch: %v %v", okL, okR)
				}
				if okL && !fragEqual(left, right) {
					t.Fatalf("assoc frag mismatch:\n%+v\n%+v", left, right)
				}
			}
		})
	}
}

// TestLexicalRoundTrip: for castable doubles without whitespace and with
// short digit runs, ParseFrag(s).Lexical() == s exactly.
func TestLexicalRoundTrip(t *testing.T) {
	m := Double()
	cases := []string{
		"0", "42", "42.0", "0042", "+4.2E1", "-0.001", "1.", ".5", "78.230",
		"1e9", "2E+308", "3E-308", "12.e5", "000.000", "9007199254740992",
	}
	for _, s := range cases {
		f, ok := m.ParseFragString(s)
		if !ok {
			t.Fatalf("ParseFrag(%q) rejected", s)
		}
		if got := f.Lexical(); got != s {
			t.Errorf("Lexical(%q) = %q", s, got)
		}
	}
}

// TestDoubleValueMatchesParseFloat: the reconstructed value is
// bit-identical to strconv.ParseFloat of the (trimmed) original for
// practical digit lengths.
func TestDoubleValueMatchesParseFloat(t *testing.T) {
	m := Double()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5000; trial++ {
		s := validDoubleString(rng)
		f, ok := m.ParseFragString(s)
		if !ok {
			t.Fatalf("valid double %q rejected", s)
		}
		got, ok := DoubleValue(f)
		if !ok {
			t.Fatalf("valid double %q has no value", s)
		}
		want, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			if ne, isNum := err.(*strconv.NumError); !isNum || ne.Err != strconv.ErrRange {
				t.Fatalf("ParseFloat(%q): %v", s, err)
			}
			// Out of range: ParseFloat still returns ±Inf or 0, which is
			// the value the cast retains.
		}
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("value of %q = %v, want %v", s, got, want)
		}
	}
}

// TestDoubleValueMixedContent: the paper's headline semantic — values
// assembled from mixed content equal their flat equivalents.
func TestDoubleValueMixedContent(t *testing.T) {
	m := Double()
	cases := []struct {
		parts []string
		want  float64
	}{
		{[]string{"4", "2"}, 42},
		{[]string{"78", ".", "230"}, 78.230},
		{[]string{" +4", ".2E", "1 "}, 42},
		{[]string{"-", "1", ".", "5"}, -1.5},
		{[]string{"1", "E", "-", "2"}, 0.01},
		{[]string{" ", "42", " "}, 42},
	}
	for _, c := range cases {
		frags := make([]Frag, len(c.parts))
		for i, p := range c.parts {
			f, ok := m.ParseFragString(p)
			if !ok {
				t.Fatalf("part %q rejected", p)
			}
			frags[i] = f
		}
		comb, ok := m.CombineAll(frags...)
		if !ok {
			t.Fatalf("parts %v rejected on combine", c.parts)
		}
		v, ok := DoubleValue(comb)
		if !ok || v != c.want {
			t.Errorf("value(%v) = %v,%v, want %v", c.parts, v, ok, c.want)
		}
	}
	// And rejection cases.
	rejects := [][]string{
		{"1", " ", "2"},   // interior whitespace
		{"1.", "2.", "3"}, // two dots
		{"1E2", "E3"},     // two Es
		{"+", "+1"},       // two signs
		{"1", "x"},        // garbage
	}
	for _, parts := range rejects {
		frags := make([]Frag, 0, len(parts))
		okAll := true
		for _, p := range parts {
			f, ok := Double().ParseFragString(p)
			if !ok {
				okAll = false
				break
			}
			frags = append(frags, f)
		}
		if !okAll {
			continue
		}
		if _, ok := Double().CombineAll(frags...); ok {
			t.Errorf("parts %v should reject", parts)
		}
	}
}

// TestDoubleValueNotCastable: live but incomplete fragments yield no value.
func TestDoubleValueNotCastable(t *testing.T) {
	for _, s := range []string{".", "+", "12E", "E+93 ", ""} {
		f, ok := Double().ParseFragString(s)
		if !ok {
			t.Fatalf("%q should be live", s)
		}
		if _, ok := DoubleValue(f); ok {
			t.Errorf("%q should have no value", s)
		}
	}
}

// TestDoubleValueLongRuns: digit runs beyond exact float range still
// produce values close to ParseFloat (within 1 ulp-ish relative error).
func TestDoubleValueLongRuns(t *testing.T) {
	m := Double()
	cases := []string{
		"123456789012345678901234567890",
		"0.000000000000000000000012345",
		"9999999999999999999.9999999999999999",
		"1E400", // overflows to +Inf
		"-1E400",
		"1E-400", // underflows to 0
	}
	for _, s := range cases {
		f, ok := m.ParseFragString(s)
		if !ok {
			t.Fatalf("%q rejected", s)
		}
		got, ok := DoubleValue(f)
		if !ok {
			t.Fatalf("%q has no value", s)
		}
		want, _ := strconv.ParseFloat(s, 64)
		if math.IsInf(want, 0) || want == 0 {
			if got != want {
				t.Errorf("value(%q) = %v, want %v", s, got, want)
			}
			continue
		}
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-12 {
			t.Errorf("value(%q) = %v, want %v (rel %g)", s, got, want, rel)
		}
	}
}

// TestDateTimeValueAgainstStdlib cross-checks epoch conversion with
// time.Date over a wide range of dates and timezones.
func TestDateTimeValueAgainstStdlib(t *testing.T) {
	m := DateTime()
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 3000; trial++ {
		y := 1 + rng.Intn(9998)
		mo := 1 + rng.Intn(12)
		d := 1 + rng.Intn(daysInMonth(y, mo))
		h, mi, se := rng.Intn(24), rng.Intn(60), rng.Intn(60)
		frac := rng.Intn(1000)
		var sb strings.Builder
		sb.WriteString(pad(y, 4) + "-" + pad(mo, 2) + "-" + pad(d, 2) + "T" +
			pad(h, 2) + ":" + pad(mi, 2) + ":" + pad(se, 2))
		withFrac := rng.Intn(2) == 0
		if withFrac {
			sb.WriteString("." + pad(frac, 3))
		}
		loc := time.UTC
		switch rng.Intn(3) {
		case 0:
			sb.WriteString("Z")
		case 1:
			offH, offM := rng.Intn(14), rng.Intn(60)
			if offH == 14 {
				offM = 0
			}
			sign := "+"
			offset := offH*3600 + offM*60
			if rng.Intn(2) == 0 {
				sign = "-"
				offset = -offset
			}
			sb.WriteString(sign + pad(offH, 2) + ":" + pad(offM, 2))
			loc = time.FixedZone("tz", offset)
		}
		s := sb.String()
		f, ok := m.ParseFragString(s)
		if !ok {
			t.Fatalf("valid dateTime %q rejected", s)
		}
		got, ok := DateTimeValue(f)
		if !ok {
			t.Fatalf("valid dateTime %q has no value", s)
		}
		ns := 0
		if withFrac {
			ns = frac * 1e6
		}
		want := time.Date(y, time.Month(mo), d, h, mi, se, ns, loc).UnixMilli()
		if got != want {
			t.Fatalf("value(%q) = %d, want %d", s, got, want)
		}
	}
}

func pad(v, n int) string {
	s := strconv.Itoa(v)
	for len(s) < n {
		s = "0" + s
	}
	return s
}

// TestDateTimeSemanticRejects: syntactically complete but impossible
// dateTimes have no value.
func TestDateTimeSemanticRejects(t *testing.T) {
	m := DateTime()
	for _, s := range []string{
		"2026-13-01T00:00:00",       // month 13
		"2026-00-01T00:00:00",       // month 0
		"2026-02-30T00:00:00",       // Feb 30
		"2025-02-29T00:00:00",       // non-leap Feb 29
		"2026-06-31T00:00:00",       // June 31
		"2026-06-11T24:00:00",       // hour 24
		"2026-06-11T12:60:00",       // minute 60
		"2026-06-11T12:00:61",       // second 61
		"2026-06-11T12:00:00+15:00", // zone beyond +14
		"2026-06-11T12:00:00+14:30",
	} {
		f, ok := m.ParseFragString(s)
		if !ok {
			t.Fatalf("%q should be syntactically live", s)
		}
		if !m.Castable(f.Elem) {
			t.Fatalf("%q should be syntactically castable", s)
		}
		if _, ok := DateTimeValue(f); ok {
			t.Errorf("%q should have no value", s)
		}
	}
	// Leap-year positive case.
	f, _ := m.ParseFragString("2024-02-29T00:00:00Z")
	if _, ok := DateTimeValue(f); !ok {
		t.Error("2024-02-29 is a valid leap day")
	}
}

// TestDateTimeMixedContent: dateTime assembled from fragments, as the
// index must handle for mixed-content nodes.
func TestDateTimeMixedContent(t *testing.T) {
	m := DateTime()
	parts := []string{"2026-06", "-11T12:3", "0:45.5", "Z"}
	frags := make([]Frag, len(parts))
	for i, p := range parts {
		f, ok := m.ParseFragString(p)
		if !ok {
			t.Fatalf("part %q rejected", p)
		}
		frags[i] = f
	}
	comb, ok := m.CombineAll(frags...)
	if !ok {
		t.Fatal("parts rejected on combine")
	}
	got, ok := DateTimeValue(comb)
	if !ok {
		t.Fatal("combined dateTime has no value")
	}
	want := time.Date(2026, 6, 11, 12, 30, 45, 500*1e6, time.UTC).UnixMilli()
	if got != want {
		t.Errorf("value = %d, want %d", got, want)
	}
	// Pure digit strings are live dateTime fragments (they could extend a
	// year) — the realistic cost of genericity the paper accepts.
	if m.ElemOf([]byte("2026")) == Reject {
		t.Error("bare year must be live")
	}
}

// TestFragParityWithReflectDeepEqual keeps fragEqual honest.
func TestFragParityWithReflectDeepEqual(t *testing.T) {
	m := Double()
	a, _ := m.ParseFragString("12.5")
	b, _ := m.ParseFragString("12.5")
	if !fragEqual(a, b) || !reflect.DeepEqual(a, b) {
		t.Error("equal fragments must compare equal")
	}
}

func BenchmarkParseFragCastable(b *testing.B) {
	m := Double()
	in := []byte("1234.5678")
	for i := 0; i < b.N; i++ {
		f, _ := m.ParseFrag(in)
		sinkElem = f.Elem
	}
}

func BenchmarkCombineFrag(b *testing.B) {
	m := Double()
	x, _ := m.ParseFragString("78")
	y, _ := m.ParseFragString(".230")
	for i := 0; i < b.N; i++ {
		f, _ := m.Combine(x, y)
		sinkElem = f.Elem
	}
}

func BenchmarkDoubleValue(b *testing.B) {
	m := Double()
	f, _ := m.ParseFragString("1234.5678E-3")
	for i := 0; i < b.N; i++ {
		v, _ := DoubleValue(f)
		sinkFloat = v
	}
}

var sinkFloat float64
