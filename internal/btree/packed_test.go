package btree

import (
	"math/rand"
	"sort"
	"testing"
)

// oracleModel shadows a tree with a plain sorted entry slice.
type oracleModel struct {
	entries []Entry
}

func (o *oracleModel) insert(e Entry) bool {
	i := sort.Search(len(o.entries), func(i int) bool { return !o.entries[i].less(e) })
	if i < len(o.entries) && o.entries[i] == e {
		return false
	}
	o.entries = append(o.entries, Entry{})
	copy(o.entries[i+1:], o.entries[i:])
	o.entries[i] = e
	return true
}

func (o *oracleModel) delete(e Entry) bool {
	i := sort.Search(len(o.entries), func(i int) bool { return !o.entries[i].less(e) })
	if i >= len(o.entries) || o.entries[i] != e {
		return false
	}
	o.entries = append(o.entries[:i], o.entries[i+1:]...)
	return true
}

func collectScan(t *Tree) []Entry {
	var out []Entry
	t.Scan(func(k uint64, v uint32) bool {
		out = append(out, Entry{Key: k, Val: v})
		return true
	})
	return out
}

func collectCursor(c *Cursor) []Entry {
	var out []Entry
	for {
		e, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func sameEntries(t *testing.T, what string, got, want []Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d = %v, want %v", what, i, got[i], want[i])
		}
	}
}

// TestPackedLeafOracle drives a packed tree and a flat sorted-slice
// oracle through the same random mutation history, checking after every
// phase that scans, range scans, point lookups, cursors, and Min all
// agree byte-for-byte. Key distributions are chosen to exercise the
// delta codec's edge cases: dense duplicate runs (keyDelta 0), huge
// deltas (many-byte varints), and key/val zero.
func TestPackedLeafOracle(t *testing.T) {
	distributions := []struct {
		name string
		key  func(r *rand.Rand) uint64
		val  func(r *rand.Rand) uint32
	}{
		{"dense-dups", func(r *rand.Rand) uint64 { return uint64(r.Intn(7)) }, func(r *rand.Rand) uint32 { return uint32(r.Intn(2000)) }},
		{"clustered", func(r *rand.Rand) uint64 { return uint64(r.Intn(500)) }, func(r *rand.Rand) uint32 { return uint32(r.Intn(64)) }},
		{"sparse-64bit", func(r *rand.Rand) uint64 { return r.Uint64() }, func(r *rand.Rand) uint32 { return r.Uint32() }},
		{"zero-heavy", func(r *rand.Rand) uint64 { return uint64(r.Intn(2)) * r.Uint64() }, func(r *rand.Rand) uint32 { return uint32(r.Intn(3)) }},
	}
	for _, dist := range distributions {
		t.Run(dist.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			tree := New()
			oracle := &oracleModel{}
			check := func(stage string) {
				t.Helper()
				sameEntries(t, stage+"/scan", collectScan(tree), oracle.entries)
				sameEntries(t, stage+"/cursor", collectCursor(tree.CursorFirst()), oracle.entries)
				if tree.Len() != len(oracle.entries) {
					t.Fatalf("%s: Len %d, want %d", stage, tree.Len(), len(oracle.entries))
				}
				if e, ok := tree.Min(); ok != (len(oracle.entries) > 0) || (ok && e != oracle.entries[0]) {
					t.Fatalf("%s: Min %v/%v, oracle %v", stage, e, ok, oracle.entries)
				}
				// Spot-check point lookups and positioned cursors.
				for i := 0; i < 32; i++ {
					e := Entry{Key: dist.key(r), Val: dist.val(r)}
					if len(oracle.entries) > 0 && i%2 == 0 {
						e = oracle.entries[r.Intn(len(oracle.entries))]
					}
					want := false
					for _, oe := range oracle.entries {
						if oe == e {
							want = true
							break
						}
					}
					if got := tree.Contains(e.Key, e.Val); got != want {
						t.Fatalf("%s: Contains(%v) = %v, want %v", stage, e, got, want)
					}
					from := sort.Search(len(oracle.entries), func(j int) bool { return oracle.entries[j].Key >= e.Key })
					sameEntries(t, stage+"/cursorAt", collectCursor(tree.CursorAt(e.Key)), oracle.entries[from:])
				}
				// One random range scan.
				lo, hi := dist.key(r), dist.key(r)
				if lo > hi {
					lo, hi = hi, lo
				}
				var want []Entry
				for _, oe := range oracle.entries {
					if oe.Key >= lo && oe.Key <= hi {
						want = append(want, oe)
					}
				}
				var got []Entry
				tree.ScanRange(lo, hi, func(k uint64, v uint32) bool {
					got = append(got, Entry{Key: k, Val: v})
					return true
				})
				sameEntries(t, stage+"/range", got, want)
			}

			for round := 0; round < 8; round++ {
				for i := 0; i < 300; i++ {
					e := Entry{Key: dist.key(r), Val: dist.val(r)}
					if tree.Insert(e.Key, e.Val) != oracle.insert(e) {
						t.Fatalf("insert(%v) disagreed", e)
					}
				}
				check("after-insert")
				// Clone, keep mutating the clone, and confirm the pinned
				// handle still answers from the pre-clone state.
				pinned := collectScan(tree)
				old := tree
				tree = tree.Clone()
				for i := 0; i < 150 && len(oracle.entries) > 0; i++ {
					var e Entry
					if i%3 == 0 {
						e = Entry{Key: dist.key(r), Val: dist.val(r)}
					} else {
						e = oracle.entries[r.Intn(len(oracle.entries))]
					}
					if tree.Delete(e.Key, e.Val) != oracle.delete(e) {
						t.Fatalf("delete(%v) disagreed", e)
					}
				}
				check("after-delete")
				sameEntries(t, "pinned-clone", collectScan(old), pinned)
			}
		})
	}
}

// TestNewFromSortedPacked cross-checks bulk loading against the oracle
// on sizes straddling leaf and inner fan-out boundaries.
func TestNewFromSortedPacked(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 54, 55, 64, 65, 500, 5000} {
		set := map[Entry]bool{}
		for len(set) < n {
			set[Entry{Key: uint64(r.Intn(n + 1)), Val: r.Uint32()}] = true
		}
		entries := make([]Entry, 0, n)
		for e := range set {
			entries = append(entries, e)
		}
		SortEntries(entries)
		tree := NewFromSorted(entries)
		sameEntries(t, "bulk", collectScan(tree), entries)
		if tree.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tree.Len())
		}
	}
}

// TestPackedFootprint pins the point of the layout: a bulk-loaded tree
// over clustered keys must take meaningfully less memory than the
// unpacked []Entry layout it replaced.
func TestPackedFootprint(t *testing.T) {
	entries := make([]Entry, 0, 1<<16)
	for i := 0; i < 1<<16; i++ {
		entries = append(entries, Entry{Key: uint64(i / 4), Val: uint32(i)})
	}
	tree := NewFromSorted(entries)
	packed, unpacked := tree.MemBytes(), tree.UnpackedBytes()
	if packed >= unpacked/2 {
		t.Fatalf("packed %d bytes vs unpacked %d: expected > 2x saving on clustered keys", packed, unpacked)
	}
}
