package btree

import (
	"math/rand"
	"testing"
)

// TestCloneDiverge drives a chain of clone+mutate cycles and checks that
// every retained handle still sees exactly the entry set it was cloned
// at — the property the MVCC snapshot layer in internal/core depends on.
func TestCloneDiverge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cur := New()
	live := map[uint64]bool{}

	type version struct {
		tree *Tree
		keys map[uint64]bool
	}
	var history []version

	snapshotKeys := func() map[uint64]bool {
		m := make(map[uint64]bool, len(live))
		for k := range live {
			m[k] = true
		}
		return m
	}

	for round := 0; round < 40; round++ {
		history = append(history, version{tree: cur, keys: snapshotKeys()})
		cur = cur.Clone()
		// A burst of inserts and deletes against the new draft.
		for i := 0; i < 50; i++ {
			k := uint64(rng.Intn(800))
			if rng.Intn(3) == 0 {
				if cur.Delete(k, uint32(k)) {
					delete(live, k)
				}
			} else {
				if cur.Insert(k, uint32(k)) {
					live[k] = true
				}
			}
		}
	}
	history = append(history, version{tree: cur, keys: snapshotKeys()})

	for vi, v := range history {
		got := map[uint64]bool{}
		v.tree.Scan(func(k uint64, val uint32) bool {
			if uint32(k) != val {
				t.Fatalf("version %d: entry (%d,%d) corrupted", vi, k, val)
			}
			if got[k] {
				t.Fatalf("version %d: duplicate key %d", vi, k)
			}
			got[k] = true
			return true
		})
		if len(got) != len(v.keys) {
			t.Fatalf("version %d: %d entries, want %d", vi, len(got), len(v.keys))
		}
		for k := range v.keys {
			if !got[k] {
				t.Fatalf("version %d: key %d missing", vi, k)
			}
			if !v.tree.Contains(k, uint32(k)) {
				t.Fatalf("version %d: Contains(%d) = false", vi, k)
			}
		}
		if v.tree.Len() != len(v.keys) {
			t.Fatalf("version %d: Len = %d, want %d", vi, v.tree.Len(), len(v.keys))
		}
	}
}

// TestCursorSurvivesCloneMutation opens a cursor on a base tree, mutates
// a clone heavily, and checks the cursor still yields the base entries.
func TestCursorSurvivesCloneMutation(t *testing.T) {
	var entries []Entry
	for i := 0; i < 500; i++ {
		entries = append(entries, Entry{Key: uint64(i * 3), Val: uint32(i * 3)})
	}
	base := NewFromSorted(entries)
	cur := base.CursorAt(0)

	draft := base.Clone()
	for i := 0; i < 500; i++ {
		draft.Delete(uint64(i*3), uint32(i*3))
		draft.Insert(uint64(i*3+1), uint32(i*3+1))
	}

	var got []Entry
	for {
		e, ok := cur.Next()
		if !ok {
			break
		}
		got = append(got, e)
	}
	if len(got) != len(entries) {
		t.Fatalf("cursor saw %d entries, want %d", len(got), len(entries))
	}
	for i, e := range got {
		if e != entries[i] {
			t.Fatalf("cursor entry %d = %+v, want %+v", i, e, entries[i])
		}
	}
}
