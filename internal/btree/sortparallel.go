package btree

import "sync"

// minParallelSort is the input size below which SortEntriesParallel
// falls back to the serial radix sort: splitting smaller inputs costs
// more in goroutine scheduling than the sort itself.
const minParallelSort = 1 << 14

// SortEntriesParallel sorts entries by (Key, Val) ascending like
// SortEntries, fanning the work across up to workers goroutines: the
// input is cut into equal runs, each run is radix-sorted concurrently,
// and adjacent sorted runs are then merged pairwise (each pair on its
// own goroutine) until one run remains. The output is identical to
// SortEntries' — entries in an index are unique (Key, Val) pairs, so
// the order is total and merge ties cannot arise.
func SortEntriesParallel(entries []Entry, workers int) {
	n := len(entries)
	if workers <= 1 || n < minParallelSort {
		SortEntries(entries)
		return
	}

	type run struct{ lo, hi int }
	chunk := (n + workers - 1) / workers
	runs := make([]run, 0, workers)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		runs = append(runs, run{lo: lo, hi: hi})
	}

	var wg sync.WaitGroup
	for _, r := range runs {
		wg.Add(1)
		go func(r run) {
			defer wg.Done()
			SortEntries(entries[r.lo:r.hi])
		}(r)
	}
	wg.Wait()

	buf := make([]Entry, n)
	src, dst := entries, buf
	for len(runs) > 1 {
		next := make([]run, 0, (len(runs)+1)/2)
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				// Odd run out: carry it into the destination unchanged so
				// the buffers stay in lockstep.
				r := runs[i]
				wg.Add(1)
				go func(r run) {
					defer wg.Done()
					copy(dst[r.lo:r.hi], src[r.lo:r.hi])
				}(r)
				next = append(next, r)
				continue
			}
			a, b := runs[i], runs[i+1]
			wg.Add(1)
			go func(a, b run) {
				defer wg.Done()
				mergeRuns(dst[a.lo:b.hi], src[a.lo:a.hi], src[b.lo:b.hi])
			}(a, b)
			next = append(next, run{lo: a.lo, hi: b.hi})
		}
		wg.Wait()
		runs = next
		src, dst = dst, src
	}
	if &src[0] != &entries[0] {
		copy(entries, src)
	}
}

// mergeRuns merges the sorted runs a and b into out, which must have
// length len(a)+len(b).
func mergeRuns(out, a, b []Entry) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i].less(b[j]) {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}
