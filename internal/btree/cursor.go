package btree

import "sort"

// Cursor walks a tree's entries in ascending (key, posting) order over
// the linked leaf level, one entry per Next call — the pull-style
// counterpart of ScanRange that the streaming posting iterators in
// internal/core are built on. A cursor observes the tree at the moment
// it was opened; mutating the tree invalidates it.
type Cursor struct {
	l *leaf
	i int
}

// CursorAt returns a cursor positioned at the first entry whose key is
// >= key (so Next yields that entry first).
func (t *Tree) CursorAt(key uint64) *Cursor {
	start := Entry{Key: key, Val: 0}
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			break
		}
		ci := sort.Search(len(in.keys), func(i int) bool { return start.less(in.keys[i]) })
		n = in.children[ci]
	}
	l := n.(*leaf)
	i := sort.Search(len(l.entries), func(i int) bool { return !l.entries[i].less(start) })
	return &Cursor{l: l, i: i}
}

// CursorFirst returns a cursor over the whole tree.
func (t *Tree) CursorFirst() *Cursor { return &Cursor{l: t.first} }

// Next returns the next entry in (key, posting) order; ok is false when
// the cursor is exhausted.
func (c *Cursor) Next() (Entry, bool) {
	for c.l != nil {
		if c.i < len(c.l.entries) {
			e := c.l.entries[c.i]
			c.i++
			return e, true
		}
		c.l = c.l.next
		c.i = 0
	}
	return Entry{}, false
}
