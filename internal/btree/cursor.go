package btree

import "sort"

// Cursor walks a tree's entries in ascending (key, posting) order, one
// entry per Next call — the pull-style counterpart of ScanRange that the
// streaming posting iterators in internal/core are built on. It keeps an
// explicit root-to-leaf descent stack instead of leaf links, so it works
// on the shared, immutable node graphs produced by Clone: a cursor over
// a published tree stays valid indefinitely, regardless of mutations
// applied to later clones. Mutating the SAME handle the cursor was
// opened on invalidates it.
//
// Leaves are packed (see packed.go); the cursor decodes each leaf once
// into a single reusable scratch when the descent reaches it. Exactly
// one leaf is ever on the stack (leaves are always the stack top), so
// one scratch per cursor suffices and steady-state iteration stays
// allocation-free.
type Cursor struct {
	stack   []cursorFrame
	scratch []Entry // decoded entries of the leaf frame currently on top
}

// cursorFrame records one node on the descent path and the next index to
// visit in it: a child index for inner nodes, a scratch index for leaves.
type cursorFrame struct {
	n node
	i int
}

// CursorAt returns a cursor positioned at the first entry whose key is
// >= key (so Next yields that entry first).
func (t *Tree) CursorAt(key uint64) *Cursor {
	start := Entry{Key: key}
	c := &Cursor{
		stack:   make([]cursorFrame, 0, t.height),
		scratch: make([]Entry, 0, maxLeaf+1),
	}
	n := t.root
	for {
		switch nn := n.(type) {
		case *inner:
			ci := sort.Search(len(nn.keys), func(i int) bool { return start.less(nn.keys[i]) })
			c.stack = append(c.stack, cursorFrame{n: nn, i: ci + 1})
			n = nn.children[ci]
		case *leaf:
			c.scratch = nn.appendEntries(c.scratch)
			i := sort.Search(len(c.scratch), func(i int) bool { return !c.scratch[i].less(start) })
			c.stack = append(c.stack, cursorFrame{n: nn, i: i})
			return c
		}
	}
}

// CursorFirst returns a cursor over the whole tree.
func (t *Tree) CursorFirst() *Cursor {
	c := &Cursor{scratch: make([]Entry, 0, maxLeaf+1)}
	if l, ok := t.root.(*leaf); ok {
		c.scratch = l.appendEntries(c.scratch)
	}
	c.stack = append(c.stack, cursorFrame{n: t.root})
	return c
}

// Next returns the next entry in (key, posting) order; ok is false when
// the cursor is exhausted.
func (c *Cursor) Next() (Entry, bool) {
	for len(c.stack) > 0 {
		top := &c.stack[len(c.stack)-1]
		switch n := top.n.(type) {
		case *leaf:
			if top.i < len(c.scratch) {
				e := c.scratch[top.i]
				top.i++
				return e, true
			}
			c.stack = c.stack[:len(c.stack)-1]
		case *inner:
			if top.i < len(n.children) {
				child := n.children[top.i]
				top.i++
				if l, ok := child.(*leaf); ok {
					c.scratch = l.appendEntries(c.scratch)
				}
				c.stack = append(c.stack, cursorFrame{n: child})
			} else {
				c.stack = c.stack[:len(c.stack)-1]
			}
		}
	}
	return Entry{}, false
}
