package btree

import "math"

// Thin wrappers keep math out of the hot path signatures and make the
// encode/decode pair trivially testable.

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(u uint64) float64 { return math.Float64frombits(u) }
