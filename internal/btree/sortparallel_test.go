package btree

import (
	"math/rand"
	"testing"
)

func randomEntries(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	keyspace := n/4 + 1
	entries := make([]Entry, n)
	for i := range entries {
		// Duplicate keys on purpose; Val keeps pairs unique.
		entries[i] = Entry{Key: uint64(rng.Intn(keyspace)), Val: uint32(i)}
	}
	rng.Shuffle(n, func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	return entries
}

func TestSortEntriesParallelMatchesSerial(t *testing.T) {
	// Sizes straddle the parallel threshold; worker counts include odd
	// values so the pairwise merge hits carry-over runs.
	for _, n := range []int{0, 1, 500, minParallelSort - 1, minParallelSort, 3*minParallelSort + 17} {
		for _, workers := range []int{1, 2, 3, 5, 8} {
			serial := randomEntries(n, int64(n))
			parallel := append([]Entry(nil), serial...)
			SortEntries(serial)
			SortEntriesParallel(parallel, workers)
			if len(serial) != len(parallel) {
				t.Fatalf("n=%d workers=%d: length changed", n, workers)
			}
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("n=%d workers=%d: entry %d = %+v, want %+v", n, workers, i, parallel[i], serial[i])
				}
			}
		}
	}
}

func TestSortEntriesParallelStrictOrder(t *testing.T) {
	entries := randomEntries(2*minParallelSort, 99)
	SortEntriesParallel(entries, 4)
	for i := 1; i < len(entries); i++ {
		if !entries[i-1].less(entries[i]) {
			t.Fatalf("entries %d and %d out of order: %+v, %+v", i-1, i, entries[i-1], entries[i])
		}
	}
	// The sorted output must bulk-load (NewFromSorted panics otherwise).
	tree := NewFromSorted(entries)
	if tree.Len() != len(entries) {
		t.Fatalf("tree has %d entries, want %d", tree.Len(), len(entries))
	}
}
