// Package btree implements the B+tree the paper's indices are built on: an
// ordered map from uint64 keys to uint32 postings (node ids), with
// duplicate keys, equality scans, and range scans.
//
// Keys are uint64 so that one tree serves all three indices:
//
//   - the string equi-index stores (hash value, node id),
//   - the double range index stores (order-encoded float64, node id),
//   - the dateTime range index stores (order-encoded int64, node id).
//
// EncodeFloat64 and EncodeInt64 provide the order-preserving encodings.
//
// # Copy-on-write versioning
//
// Trees are persistent in the functional-data-structure sense: Clone is
// O(1) and returns a new Tree handle that shares every node with the
// original; Insert and Delete on the clone copy only the root-to-leaf
// path they touch (path copying) and never mutate a node owned by an
// older handle. Ownership is tracked by a generation counter: Clone bumps
// the tree's generation, and a node is mutable in place only when its
// generation matches the tree's. A published (shared) tree is therefore
// deeply immutable — readers may scan it, open cursors on it, and hold
// it across arbitrary later Clone+mutate cycles without synchronization.
// Retired nodes are reclaimed by the garbage collector once the last
// handle referencing them is dropped.
//
// The single-writer discipline of internal/core (one draft clone mutated
// at a time, then atomically published) is what makes the generation
// check sound: two live drafts cloned from the same base would share a
// generation number but never share freshly copied nodes, because each
// draft copies shared nodes before writing them.
package btree

import (
	"encoding/binary"
	"sort"
)

// Entry is one (key, posting) pair. Duplicate keys are allowed; the pair
// itself is unique within a tree.
type Entry struct {
	Key uint64
	Val uint32
}

// less orders entries by (Key, Val).
func (e Entry) less(o Entry) bool {
	if e.Key != o.Key {
		return e.Key < o.Key
	}
	return e.Val < o.Val
}

const (
	// maxLeaf/maxInner are the fan-outs; chosen so nodes stay around a
	// cache-friendly few hundred bytes.
	maxLeaf  = 64
	maxInner = 64
	minLeaf  = maxLeaf / 2
	minInner = maxInner / 2
)

// leaf and inner nodes carry the generation of the tree handle that
// created them; a handle may mutate a node in place only when the
// generations match (see the package comment).
//
// Leaves store their entries packed (frame-of-reference + delta
// varints, see packed.go) instead of as a raw []Entry slice: sorted
// runs compress to a few bytes per entry, so far more of the index fits
// in cache. Reads stream-decode; mutations decode into a scratch,
// modify, and re-pack through the same copy-on-write protocol.
type leaf struct {
	gen    uint64
	count  int32
	packed []byte
}

type inner struct {
	gen uint64
	// keys[i] is the smallest entry of children[i+1]'s subtree;
	// len(children) == len(keys)+1.
	keys     []Entry
	children []node
}

type node interface{ isNode() }

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// Tree is a B+tree handle. The zero value is not usable; call New.
type Tree struct {
	root   node
	height int
	length int
	gen    uint64
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}, height: 1}
}

// Clone returns a new handle sharing all nodes with t. Mutations through
// either handle copy shared nodes before writing (path copying), so the
// other handle's view is unaffected. O(1).
func (t *Tree) Clone() *Tree {
	c := *t
	c.gen++
	return &c
}

// mutableLeaf returns l if t owns it, or a fresh leaf stamped with t's
// generation otherwise. The returned leaf's payload is unspecified:
// every caller fully re-packs it with setEntries, so copying the shared
// leaf's packed bytes here would be wasted work.
func (t *Tree) mutableLeaf(l *leaf) *leaf {
	if l.gen == t.gen {
		return l
	}
	return &leaf{gen: t.gen}
}

// mutableInner returns in if t owns it, or a copy otherwise.
func (t *Tree) mutableInner(in *inner) *inner {
	if in.gen == t.gen {
		return in
	}
	return &inner{
		gen:      t.gen,
		keys:     append([]Entry(nil), in.keys...),
		children: append([]node(nil), in.children...),
	}
}

// NewFromSorted bulk-loads a tree from entries that must be sorted by
// (Key, Val) and free of duplicates; it panics otherwise. Bulk loading is
// what index creation uses after the single document pass.
func NewFromSorted(entries []Entry) *Tree {
	for i := 1; i < len(entries); i++ {
		if !entries[i-1].less(entries[i]) {
			panic("btree: NewFromSorted input not strictly sorted")
		}
	}
	if len(entries) == 0 {
		return New()
	}
	// Build the leaf level ~85% full so immediate inserts don't split
	// every node.
	const fill = maxLeaf * 85 / 100
	var leaves []node
	var seps []Entry
	for off := 0; off < len(entries); {
		n := fill
		if rem := len(entries) - off; rem < n {
			n = rem
		}
		// Avoid a dangling underfull last leaf.
		if rem := len(entries) - off - n; rem > 0 && rem < minLeaf {
			n = (n + rem + 1) / 2
		}
		if len(leaves) > 0 {
			seps = append(seps, entries[off])
		}
		leaves = append(leaves, newLeaf(0, entries[off:off+n]))
		off += n
	}
	t := &Tree{length: len(entries), height: 1}
	level := leaves
	for len(level) > 1 {
		t.height++
		var up []node
		var upSeps []Entry
		for off := 0; off < len(level); {
			n := maxInner * 85 / 100
			if rem := len(level) - off; rem < n {
				n = rem
			}
			if rem := len(level) - off - n; rem > 0 && rem < minInner {
				n = (n + rem + 1) / 2
			}
			in := &inner{
				children: append([]node(nil), level[off:off+n]...),
				keys:     append([]Entry(nil), seps[off:off+n-1]...),
			}
			if len(up) > 0 {
				upSeps = append(upSeps, seps[off-1])
			}
			up = append(up, in)
			off += n
		}
		level, seps = up, upSeps
	}
	t.root = level[0]
	return t
}

// Len reports the number of entries.
func (t *Tree) Len() int { return t.length }

// Height reports the number of levels (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// Insert adds the (key, val) pair; it reports whether the pair was new.
// Nodes shared with older handles are copied, never mutated.
func (t *Tree) Insert(key uint64, val uint32) bool {
	e := Entry{Key: key, Val: val}
	self, split, sep, added := t.insert(t.root, e)
	t.root = self
	if split != nil {
		t.root = &inner{gen: t.gen, keys: []Entry{sep}, children: []node{self, split}}
		t.height++
	}
	if added {
		t.length++
	}
	return added
}

// insert descends into n and returns the node that replaces n on the
// copied path (n itself when no copy or change was needed); if n splits,
// it also returns the new right sibling and its separator (the smallest
// entry of the right sibling's subtree).
func (t *Tree) insert(n node, e Entry) (self, right node, sep Entry, added bool) {
	switch n := n.(type) {
	case *leaf:
		if int(n.count) < maxLeaf {
			// Splice fast path: only the successor's delta depends on e,
			// so the rest of the leaf's bytes move, not re-encode.
			loc := n.locate(e)
			if loc.hasSucc && loc.succ == e {
				return n, nil, Entry{}, false
			}
			var enc [2 * maxEntryEnc]byte
			repl := appendEntryDelta(enc[:0], loc.prev, e)
			if loc.hasSucc {
				repl = appendEntryDelta(repl, e, loc.succ)
			}
			l := t.spliceMutable(n, loc.pos, loc.succEnd, repl)
			l.count = n.count + 1
			return l, nil, Entry{}, true
		}
		// Full leaf: decode, insert, and split — the one mutation that
		// genuinely re-packs, amortised over maxLeaf splice inserts.
		var buf [maxLeaf + 1]Entry
		es := n.appendEntries(buf[:0])
		i := sort.Search(len(es), func(i int) bool { return !es[i].less(e) })
		if i < len(es) && es[i] == e {
			return n, nil, Entry{}, false
		}
		es = append(es, Entry{})
		copy(es[i+1:], es[i:])
		es[i] = e
		l := t.mutableLeaf(n)
		mid := len(es) / 2
		l.setEntries(es[:mid])
		r := newLeaf(t.gen, es[mid:])
		return l, r, es[mid], true
	case *inner:
		ci := sort.Search(len(n.keys), func(i int) bool { return e.less(n.keys[i]) })
		child, r, s, ok := t.insert(n.children[ci], e)
		if r == nil && child == n.children[ci] {
			return n, nil, Entry{}, ok
		}
		in := t.mutableInner(n)
		in.children[ci] = child
		if r == nil {
			return in, nil, Entry{}, ok
		}
		in.keys = append(in.keys, Entry{})
		copy(in.keys[ci+1:], in.keys[ci:])
		in.keys[ci] = s
		in.children = append(in.children, nil)
		copy(in.children[ci+2:], in.children[ci+1:])
		in.children[ci+1] = r
		if len(in.children) <= maxInner {
			return in, nil, Entry{}, ok
		}
		mid := len(in.keys) / 2
		sepUp := in.keys[mid]
		rn := &inner{
			gen:      t.gen,
			keys:     append([]Entry(nil), in.keys[mid+1:]...),
			children: append([]node(nil), in.children[mid+1:]...),
		}
		in.keys = in.keys[:mid:mid]
		in.children = in.children[: mid+1 : mid+1]
		return in, rn, sepUp, ok
	}
	panic("btree: unknown node type")
}

// Delete removes the (key, val) pair; it reports whether it was present.
// Underfull nodes are tolerated (no rebalancing): deletions in the
// indices are always paired with reinsertions of similar volume, and
// lookups remain correct on underfull trees. Like Insert, Delete copies
// shared nodes on the touched path instead of mutating them.
func (t *Tree) Delete(key uint64, val uint32) bool {
	e := Entry{Key: key, Val: val}
	self, removed := t.delete(t.root, e)
	if removed {
		t.root = self
		t.length--
	}
	return removed
}

func (t *Tree) delete(n node, e Entry) (node, bool) {
	switch n := n.(type) {
	case *inner:
		ci := sort.Search(len(n.keys), func(i int) bool { return e.less(n.keys[i]) })
		child, ok := t.delete(n.children[ci], e)
		if !ok {
			return n, false
		}
		in := t.mutableInner(n)
		in.children[ci] = child
		return in, true
	case *leaf:
		loc := n.locate(e)
		if !loc.hasSucc || loc.succ != e {
			return n, false
		}
		// Splice e's bytes out; the entry after e (if any) is the only
		// one whose delta changes — re-encode it against e's predecessor.
		p := n.packed
		to := loc.succEnd
		var enc [maxEntryEnc]byte
		var repl []byte
		if to < len(p) {
			kd, n1 := binary.Uvarint(p[to:])
			vd, n2 := binary.Uvarint(p[to+n1:])
			if n1 <= 0 || n2 <= 0 {
				panic("btree: corrupt packed leaf")
			}
			after := e
			if kd == 0 {
				after.Val += uint32(vd)
			} else {
				after.Key += kd
				after.Val = uint32(vd)
			}
			to += n1 + n2
			repl = appendEntryDelta(enc[:0], loc.prev, after)
		}
		l := t.spliceMutable(n, loc.pos, to, repl)
		l.count = n.count - 1
		return l, true
	}
	panic("btree: unknown node type")
}

// Contains reports whether the exact (key, val) pair is present.
func (t *Tree) Contains(key uint64, val uint32) bool {
	e := Entry{Key: key, Val: val}
	n := t.root
	for {
		switch nn := n.(type) {
		case *inner:
			ci := sort.Search(len(nn.keys), func(i int) bool { return e.less(nn.keys[i]) })
			n = nn.children[ci]
		case *leaf:
			// Stream-decode: entries ascend, so the first one not below
			// e decides.
			it := nn.iter()
			for it.next() {
				if !it.e.less(e) {
					return it.e == e
				}
			}
			return false
		}
	}
}

// ScanEq calls f with every posting stored under key, in ascending
// posting order; f returning false stops the scan.
func (t *Tree) ScanEq(key uint64, f func(val uint32) bool) {
	t.ScanRange(key, key, func(_ uint64, val uint32) bool { return f(val) })
}

// ScanRange calls f for every entry with lo <= key <= hi in ascending
// (key, posting) order; f returning false stops the scan.
func (t *Tree) ScanRange(lo, hi uint64, f func(key uint64, val uint32) bool) {
	if lo > hi {
		return
	}
	scanRangeNode(t.root, Entry{Key: lo}, hi, f)
}

// scanRangeNode reports whether the scan should continue past n's
// subtree.
func scanRangeNode(n node, start Entry, hi uint64, f func(key uint64, val uint32) bool) bool {
	switch nn := n.(type) {
	case *leaf:
		it := nn.iter()
		for it.next() {
			if it.e.less(start) {
				continue
			}
			if it.e.Key > hi {
				return false
			}
			if !f(it.e.Key, it.e.Val) {
				return false
			}
		}
		return true
	case *inner:
		ci := sort.Search(len(nn.keys), func(i int) bool { return start.less(nn.keys[i]) })
		for ; ci < len(nn.children); ci++ {
			if !scanRangeNode(nn.children[ci], start, hi, f) {
				return false
			}
		}
		return true
	}
	panic("btree: unknown node type")
}

// Scan calls f for every entry in ascending order.
func (t *Tree) Scan(f func(key uint64, val uint32) bool) {
	scanNode(t.root, f)
}

func scanNode(n node, f func(key uint64, val uint32) bool) bool {
	switch nn := n.(type) {
	case *leaf:
		it := nn.iter()
		for it.next() {
			if !f(it.e.Key, it.e.Val) {
				return false
			}
		}
		return true
	case *inner:
		for _, c := range nn.children {
			if !scanNode(c, f) {
				return false
			}
		}
		return true
	}
	panic("btree: unknown node type")
}

// Min returns the smallest entry; ok is false on an empty tree.
func (t *Tree) Min() (Entry, bool) {
	return minNode(t.root)
}

func minNode(n node) (Entry, bool) {
	switch nn := n.(type) {
	case *leaf:
		return nn.first()
	case *inner:
		// Leaves can be left empty by deletions; fall through to the
		// next child when a whole subtree has drained.
		for _, c := range nn.children {
			if e, ok := minNode(c); ok {
				return e, true
			}
		}
		return Entry{}, false
	}
	panic("btree: unknown node type")
}

// EncodeFloat64 maps a float64 to a uint64 preserving numeric order
// (including -Inf < … < -0 == +0 is NOT preserved: -0 sorts before +0,
// which is harmless for range lookups; NaN sorts above +Inf and is never
// stored by the double index).
func EncodeFloat64(f float64) uint64 {
	bits := float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

// DecodeFloat64 inverts EncodeFloat64.
func DecodeFloat64(u uint64) float64 {
	if u&(1<<63) != 0 {
		return float64frombits(u &^ (1 << 63))
	}
	return float64frombits(^u)
}

// EncodeInt64 maps an int64 to a uint64 preserving order.
func EncodeInt64(v int64) uint64 { return uint64(v) ^ (1 << 63) }

// DecodeInt64 inverts EncodeInt64.
func DecodeInt64(u uint64) int64 { return int64(u ^ (1 << 63)) }
