// Package btree implements the B+tree the paper's indices are built on: an
// ordered map from uint64 keys to uint32 postings (node ids), with
// duplicate keys, equality scans, and range scans.
//
// Keys are uint64 so that one tree serves all three indices:
//
//   - the string equi-index stores (hash value, node id),
//   - the double range index stores (order-encoded float64, node id),
//   - the dateTime range index stores (order-encoded int64, node id).
//
// EncodeFloat64 and EncodeInt64 provide the order-preserving encodings.
package btree

import "sort"

// Entry is one (key, posting) pair. Duplicate keys are allowed; the pair
// itself is unique within a tree.
type Entry struct {
	Key uint64
	Val uint32
}

// less orders entries by (Key, Val).
func (e Entry) less(o Entry) bool {
	if e.Key != o.Key {
		return e.Key < o.Key
	}
	return e.Val < o.Val
}

const (
	// maxLeaf/maxInner are the fan-outs; chosen so nodes stay around a
	// cache-friendly few hundred bytes.
	maxLeaf  = 64
	maxInner = 64
	minLeaf  = maxLeaf / 2
	minInner = maxInner / 2
)

type leaf struct {
	entries []Entry
	next    *leaf
}

type inner struct {
	// keys[i] is the smallest entry of children[i+1]'s subtree;
	// len(children) == len(keys)+1.
	keys     []Entry
	children []node
}

type node interface{ isNode() }

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// Tree is a B+tree. The zero value is not usable; call New.
type Tree struct {
	root   node
	first  *leaf
	height int
	length int
}

// New returns an empty tree.
func New() *Tree {
	l := &leaf{}
	return &Tree{root: l, first: l, height: 1}
}

// NewFromSorted bulk-loads a tree from entries that must be sorted by
// (Key, Val) and free of duplicates; it panics otherwise. Bulk loading is
// what index creation uses after the single document pass.
func NewFromSorted(entries []Entry) *Tree {
	for i := 1; i < len(entries); i++ {
		if !entries[i-1].less(entries[i]) {
			panic("btree: NewFromSorted input not strictly sorted")
		}
	}
	if len(entries) == 0 {
		return New()
	}
	// Build the leaf level ~85% full so immediate inserts don't split
	// every node.
	const fill = maxLeaf * 85 / 100
	var leaves []node
	var seps []Entry
	var first, prev *leaf
	for off := 0; off < len(entries); {
		n := fill
		if rem := len(entries) - off; rem < n {
			n = rem
		}
		// Avoid a dangling underfull last leaf.
		if rem := len(entries) - off - n; rem > 0 && rem < minLeaf {
			n = (n + rem + 1) / 2
		}
		l := &leaf{entries: append([]Entry(nil), entries[off:off+n]...)}
		if prev != nil {
			prev.next = l
			seps = append(seps, l.entries[0])
		} else {
			first = l
		}
		prev = l
		leaves = append(leaves, l)
		off += n
	}
	t := &Tree{first: first, length: len(entries), height: 1}
	level := leaves
	for len(level) > 1 {
		t.height++
		var up []node
		var upSeps []Entry
		for off := 0; off < len(level); {
			n := maxInner * 85 / 100
			if rem := len(level) - off; rem < n {
				n = rem
			}
			if rem := len(level) - off - n; rem > 0 && rem < minInner {
				n = (n + rem + 1) / 2
			}
			in := &inner{
				children: append([]node(nil), level[off:off+n]...),
				keys:     append([]Entry(nil), seps[off:off+n-1]...),
			}
			if len(up) > 0 {
				upSeps = append(upSeps, seps[off-1])
			}
			up = append(up, in)
			off += n
		}
		level, seps = up, upSeps
	}
	t.root = level[0]
	return t
}

// Len reports the number of entries.
func (t *Tree) Len() int { return t.length }

// Height reports the number of levels (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// Insert adds the (key, val) pair; it reports whether the pair was new.
func (t *Tree) Insert(key uint64, val uint32) bool {
	e := Entry{Key: key, Val: val}
	split, sep, added := t.insert(t.root, e)
	if split != nil {
		t.root = &inner{keys: []Entry{sep}, children: []node{t.root, split}}
		t.height++
	}
	if added {
		t.length++
	}
	return added
}

// insert descends into n; if n splits, it returns the new right sibling
// and its separator (the smallest entry of the right sibling's subtree).
func (t *Tree) insert(n node, e Entry) (right node, sep Entry, added bool) {
	switch n := n.(type) {
	case *leaf:
		i := sort.Search(len(n.entries), func(i int) bool { return !n.entries[i].less(e) })
		if i < len(n.entries) && n.entries[i] == e {
			return nil, Entry{}, false
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		if len(n.entries) <= maxLeaf {
			return nil, Entry{}, true
		}
		mid := len(n.entries) / 2
		r := &leaf{entries: append([]Entry(nil), n.entries[mid:]...), next: n.next}
		n.entries = n.entries[:mid:mid]
		n.next = r
		return r, r.entries[0], true
	case *inner:
		ci := sort.Search(len(n.keys), func(i int) bool { return e.less(n.keys[i]) })
		r, s, ok := t.insert(n.children[ci], e)
		if r == nil {
			return nil, Entry{}, ok
		}
		n.keys = append(n.keys, Entry{})
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = s
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = r
		if len(n.children) <= maxInner {
			return nil, Entry{}, ok
		}
		mid := len(n.keys) / 2
		sepUp := n.keys[mid]
		rn := &inner{
			keys:     append([]Entry(nil), n.keys[mid+1:]...),
			children: append([]node(nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid:mid]
		n.children = n.children[: mid+1 : mid+1]
		return rn, sepUp, ok
	}
	panic("btree: unknown node type")
}

// Delete removes the (key, val) pair; it reports whether it was present.
// Underfull nodes are tolerated (no rebalancing): deletions in the
// indices are always paired with reinsertions of similar volume, and
// lookups remain correct on underfull trees. Empty leaves are unlinked
// lazily during scans.
func (t *Tree) Delete(key uint64, val uint32) bool {
	e := Entry{Key: key, Val: val}
	n := t.root
	for {
		switch nn := n.(type) {
		case *inner:
			ci := sort.Search(len(nn.keys), func(i int) bool { return e.less(nn.keys[i]) })
			n = nn.children[ci]
		case *leaf:
			i := sort.Search(len(nn.entries), func(i int) bool { return !nn.entries[i].less(e) })
			if i >= len(nn.entries) || nn.entries[i] != e {
				return false
			}
			nn.entries = append(nn.entries[:i], nn.entries[i+1:]...)
			t.length--
			return true
		}
	}
}

// Contains reports whether the exact (key, val) pair is present.
func (t *Tree) Contains(key uint64, val uint32) bool {
	e := Entry{Key: key, Val: val}
	n := t.root
	for {
		switch nn := n.(type) {
		case *inner:
			ci := sort.Search(len(nn.keys), func(i int) bool { return e.less(nn.keys[i]) })
			n = nn.children[ci]
		case *leaf:
			i := sort.Search(len(nn.entries), func(i int) bool { return !nn.entries[i].less(e) })
			return i < len(nn.entries) && nn.entries[i] == e
		}
	}
}

// ScanEq calls f with every posting stored under key, in ascending
// posting order; f returning false stops the scan.
func (t *Tree) ScanEq(key uint64, f func(val uint32) bool) {
	t.ScanRange(key, key, func(_ uint64, val uint32) bool { return f(val) })
}

// ScanRange calls f for every entry with lo <= key <= hi in ascending
// (key, posting) order; f returning false stops the scan.
func (t *Tree) ScanRange(lo, hi uint64, f func(key uint64, val uint32) bool) {
	if lo > hi {
		return
	}
	start := Entry{Key: lo, Val: 0}
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			break
		}
		ci := sort.Search(len(in.keys), func(i int) bool { return start.less(in.keys[i]) })
		n = in.children[ci]
	}
	l := n.(*leaf)
	i := sort.Search(len(l.entries), func(i int) bool { return !l.entries[i].less(start) })
	for l != nil {
		for ; i < len(l.entries); i++ {
			e := l.entries[i]
			if e.Key > hi {
				return
			}
			if !f(e.Key, e.Val) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

// Scan calls f for every entry in ascending order.
func (t *Tree) Scan(f func(key uint64, val uint32) bool) {
	for l := t.first; l != nil; l = l.next {
		for _, e := range l.entries {
			if !f(e.Key, e.Val) {
				return
			}
		}
	}
}

// Min returns the smallest entry; ok is false on an empty tree.
func (t *Tree) Min() (Entry, bool) {
	for l := t.first; l != nil; l = l.next {
		if len(l.entries) > 0 {
			return l.entries[0], true
		}
	}
	return Entry{}, false
}

// EncodeFloat64 maps a float64 to a uint64 preserving numeric order
// (including -Inf < … < -0 == +0 is NOT preserved: -0 sorts before +0,
// which is harmless for range lookups; NaN sorts above +Inf and is never
// stored by the double index).
func EncodeFloat64(f float64) uint64 {
	bits := float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

// DecodeFloat64 inverts EncodeFloat64.
func DecodeFloat64(u uint64) float64 {
	if u&(1<<63) != 0 {
		return float64frombits(u &^ (1 << 63))
	}
	return float64frombits(^u)
}

// EncodeInt64 maps an int64 to a uint64 preserving order.
func EncodeInt64(v int64) uint64 { return uint64(v) ^ (1 << 63) }

// DecodeInt64 inverts EncodeInt64.
func DecodeInt64(u uint64) int64 { return int64(u ^ (1 << 63)) }
