package btree

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSortEntriesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{0, 1, 2, 5, 255, 256, 1000, 50000} {
		for trial := 0; trial < 3; trial++ {
			entries := make([]Entry, n)
			for i := range entries {
				switch trial {
				case 0: // full-range keys
					entries[i] = Entry{Key: rng.Uint64(), Val: rng.Uint32()}
				case 1: // small keys (constant high digits — skip path)
					entries[i] = Entry{Key: uint64(rng.Intn(1000)), Val: uint32(rng.Intn(4))}
				default: // constant key (only postings vary)
					entries[i] = Entry{Key: 42, Val: rng.Uint32()}
				}
			}
			want := append([]Entry(nil), entries...)
			sort.Slice(want, func(i, j int) bool { return want[i].less(want[j]) })
			SortEntries(entries)
			for i := range entries {
				if entries[i] != want[i] {
					t.Fatalf("n=%d trial=%d: mismatch at %d: %v vs %v", n, trial, i, entries[i], want[i])
				}
			}
		}
	}
}

func TestSortEntriesAlreadySorted(t *testing.T) {
	entries := make([]Entry, 10000)
	for i := range entries {
		entries[i] = Entry{Key: uint64(i), Val: uint32(i)}
	}
	SortEntries(entries)
	for i := range entries {
		if entries[i].Key != uint64(i) {
			t.Fatalf("disturbed sorted input at %d", i)
		}
	}
}

func BenchmarkSortEntriesRadix(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]Entry, 500000)
	for i := range base {
		base[i] = Entry{Key: rng.Uint64(), Val: uint32(i)}
	}
	work := make([]Entry, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		SortEntries(work)
	}
}

func BenchmarkSortEntriesStdlib(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]Entry, 500000)
	for i := range base {
		base[i] = Entry{Key: rng.Uint64(), Val: uint32(i)}
	}
	work := make([]Entry, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		sort.Slice(work, func(x, y int) bool { return work[x].less(work[y]) })
	}
}
