package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// model is the reference implementation: a sorted slice of entries.
type model struct{ entries []Entry }

func (m *model) insert(e Entry) bool {
	i := sort.Search(len(m.entries), func(i int) bool { return !m.entries[i].less(e) })
	if i < len(m.entries) && m.entries[i] == e {
		return false
	}
	m.entries = append(m.entries, Entry{})
	copy(m.entries[i+1:], m.entries[i:])
	m.entries[i] = e
	return true
}

func (m *model) delete(e Entry) bool {
	i := sort.Search(len(m.entries), func(i int) bool { return !m.entries[i].less(e) })
	if i >= len(m.entries) || m.entries[i] != e {
		return false
	}
	m.entries = append(m.entries[:i], m.entries[i+1:]...)
	return true
}

func (m *model) scanRange(lo, hi uint64) []Entry {
	var out []Entry
	for _, e := range m.entries {
		if e.Key >= lo && e.Key <= hi {
			out = append(out, e)
		}
	}
	return out
}

func collectRange(t *Tree, lo, hi uint64) []Entry {
	var out []Entry
	t.ScanRange(lo, hi, func(k uint64, v uint32) bool {
		out = append(out, Entry{Key: k, Val: v})
		return true
	})
	return out
}

func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if _, ok := tr.Min(); ok {
		t.Error("empty tree has Min")
	}
	tr.ScanRange(0, math.MaxUint64, func(uint64, uint32) bool {
		t.Error("empty tree scanned an entry")
		return false
	})
	if tr.Delete(1, 1) {
		t.Error("Delete on empty succeeded")
	}
}

func TestInsertLookupSmall(t *testing.T) {
	tr := New()
	if !tr.Insert(5, 1) || !tr.Insert(5, 2) || !tr.Insert(3, 9) {
		t.Fatal("fresh inserts must report true")
	}
	if tr.Insert(5, 1) {
		t.Error("duplicate insert must report false")
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	var got []uint32
	tr.ScanEq(5, func(v uint32) bool { got = append(got, v); return true })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("ScanEq(5) = %v", got)
	}
	if !tr.Contains(3, 9) || tr.Contains(3, 8) {
		t.Error("Contains misbehaves")
	}
}

// TestRandomAgainstModel drives the tree and the reference model with the
// same random operations and compares behaviours, across tree sizes that
// force multiple levels and splits.
func TestRandomAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := New()
	m := &model{}
	const ops = 60000
	for i := 0; i < ops; i++ {
		key := uint64(rng.Intn(5000))
		val := uint32(rng.Intn(50))
		e := Entry{Key: key, Val: val}
		switch rng.Intn(10) {
		case 0, 1, 2: // delete
			if got, want := tr.Delete(key, val), m.delete(e); got != want {
				t.Fatalf("op %d: Delete(%v) = %v, want %v", i, e, got, want)
			}
		default:
			if got, want := tr.Insert(key, val), m.insert(e); got != want {
				t.Fatalf("op %d: Insert(%v) = %v, want %v", i, e, got, want)
			}
		}
		if tr.Len() != len(m.entries) {
			t.Fatalf("op %d: Len %d != model %d", i, tr.Len(), len(m.entries))
		}
	}
	// Full scan equals model.
	var got []Entry
	tr.Scan(func(k uint64, v uint32) bool { got = append(got, Entry{k, v}); return true })
	if !entriesEqual(got, m.entries) {
		t.Fatalf("full scan diverges: %d vs %d entries", len(got), len(m.entries))
	}
	// Random range scans equal model.
	for i := 0; i < 500; i++ {
		lo := uint64(rng.Intn(5200))
		hi := lo + uint64(rng.Intn(300))
		if !entriesEqual(collectRange(tr, lo, hi), m.scanRange(lo, hi)) {
			t.Fatalf("range [%d,%d] diverges", lo, hi)
		}
	}
	t.Logf("final tree: %d entries, height %d", tr.Len(), tr.Height())
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 20000} {
		seen := map[Entry]bool{}
		var entries []Entry
		for len(entries) < n {
			e := Entry{Key: uint64(rng.Intn(n + 1)), Val: uint32(rng.Intn(1000))}
			if !seen[e] {
				seen[e] = true
				entries = append(entries, e)
			}
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].less(entries[j]) })
		bulk := NewFromSorted(entries)
		if bulk.Len() != n {
			t.Fatalf("n=%d: bulk Len = %d", n, bulk.Len())
		}
		var got []Entry
		bulk.Scan(func(k uint64, v uint32) bool { got = append(got, Entry{k, v}); return true })
		if !entriesEqual(got, entries) {
			t.Fatalf("n=%d: bulk scan diverges", n)
		}
		// Bulk-loaded trees must keep accepting inserts and deletes.
		for i := 0; i < 100 && n > 0; i++ {
			e := entries[rng.Intn(len(entries))]
			if bulk.Insert(e.Key, e.Val) {
				t.Fatalf("n=%d: reinsert of existing entry reported new", n)
			}
			if !bulk.Delete(e.Key, e.Val) {
				t.Fatalf("n=%d: delete of existing entry failed", n)
			}
			if !bulk.Insert(e.Key, e.Val) {
				t.Fatalf("n=%d: insert after delete failed", n)
			}
		}
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFromSorted must panic on unsorted input")
		}
	}()
	NewFromSorted([]Entry{{Key: 2}, {Key: 1}})
}

func TestScanEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Insert(uint64(i), 0)
	}
	count := 0
	tr.ScanRange(0, 999, func(uint64, uint32) bool { count++; return count < 10 })
	if count != 10 {
		t.Errorf("early stop scanned %d", count)
	}
	count = 0
	tr.Scan(func(uint64, uint32) bool { count++; return false })
	if count != 1 {
		t.Errorf("Scan early stop scanned %d", count)
	}
}

func TestMinAfterDeletions(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Insert(uint64(i), 7)
	}
	for i := 0; i < 150; i++ {
		tr.Delete(uint64(i), 7)
	}
	e, ok := tr.Min()
	if !ok || e.Key != 150 {
		t.Errorf("Min = %v %v, want key 150", e, ok)
	}
}

// TestEncodeFloat64Order: the encoding preserves numeric order for all
// ordered float pairs, via testing/quick.
func TestEncodeFloat64Order(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, eb := EncodeFloat64(a), EncodeFloat64(b)
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default:
			// -0 and +0 encode differently but adjacently; accept both.
			return true
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeFloat64RoundTrip(t *testing.T) {
	cases := []float64{0, -0, 1, -1, math.Inf(1), math.Inf(-1), math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64, 42.5, -78.230}
	for _, v := range cases {
		if got := DecodeFloat64(EncodeFloat64(v)); got != v && !(v == 0 && got == 0) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		got := DecodeFloat64(EncodeFloat64(v))
		return got == v || (v == 0 && got == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeInt64Order(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := EncodeInt64(a), EncodeInt64(b)
		if a < b {
			return ea < eb
		}
		if a > b {
			return ea > eb
		}
		return ea == eb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(v int64) bool { return DecodeInt64(EncodeInt64(v)) == v }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// TestFloatRangeScan uses encoded floats end to end: a numeric range scan
// over the tree returns exactly the values within bounds, in order.
func TestFloatRangeScan(t *testing.T) {
	tr := New()
	vals := []float64{-100, -1.5, -0.25, 0, 0.25, 1.5, 42, 78.23, 1e9, math.Inf(1), math.Inf(-1)}
	for i, v := range vals {
		tr.Insert(EncodeFloat64(v), uint32(i))
	}
	var got []float64
	tr.ScanRange(EncodeFloat64(-1.5), EncodeFloat64(42), func(k uint64, _ uint32) bool {
		got = append(got, DecodeFloat64(k))
		return true
	})
	want := []float64{-1.5, -0.25, 0, 0.25, 1.5, 42}
	if len(got) != len(want) {
		t.Fatalf("range scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range scan = %v, want %v", got, want)
		}
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Uint64(), uint32(i))
	}
}

func BenchmarkBulkLoad100k(b *testing.B) {
	entries := make([]Entry, 100000)
	for i := range entries {
		entries[i] = Entry{Key: uint64(i * 7), Val: uint32(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewFromSorted(entries)
	}
}

func BenchmarkScanEq(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Insert(uint64(i%1000), uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ScanEq(uint64(i%1000), func(uint32) bool { return true })
	}
}
