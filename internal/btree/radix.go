package btree

// SortEntries sorts entries by (Key, Val) ascending with an LSD radix
// sort — linear in the input, no reflection, and the dominant cost of
// bulk index creation, so it matters that it is fast. Passes whose digit
// is constant across the input (common: high key bytes, high posting
// bytes) are skipped.
func SortEntries(entries []Entry) {
	n := len(entries)
	if n < 2 {
		return
	}
	if n < 256 {
		insertionSortEntries(entries)
		return
	}
	buf := make([]Entry, n)
	src, dst := entries, buf

	// Digit extraction per pass: Val low/high 16 bits, then Key in four
	// 16-bit digits, least significant first.
	digit := func(e Entry, pass int) uint32 {
		switch pass {
		case 0:
			return uint32(e.Val & 0xFFFF)
		case 1:
			return uint32(e.Val >> 16)
		default:
			return uint32(e.Key>>(16*(pass-2))) & 0xFFFF
		}
	}

	var count [1 << 16]int32
	for pass := 0; pass < 6; pass++ {
		first := digit(src[0], pass)
		same := true
		for i := range src {
			d := digit(src[i], pass)
			count[d]++
			if d != first {
				same = false
			}
		}
		if same {
			count[first] = 0
			continue
		}
		var sum int32
		for d := range count {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := range src {
			d := digit(src[i], pass)
			dst[count[d]] = src[i]
			count[d]++
		}
		for d := range count {
			count[d] = 0
		}
		src, dst = dst, src
	}
	if &src[0] != &entries[0] {
		copy(entries, src)
	}
}

func insertionSortEntries(entries []Entry) {
	for i := 1; i < len(entries); i++ {
		e := entries[i]
		j := i - 1
		for j >= 0 && e.less(entries[j]) {
			entries[j+1] = entries[j]
			j--
		}
		entries[j+1] = e
	}
}
