package btree

// Packed leaf representation: frame-of-reference + delta encoding over
// the sorted (Key, Val) entry sequence of one leaf.
//
// A leaf's entries are strictly ascending by (Key, Val), so consecutive
// entries are encoded as uvarint deltas against an implicit (0, 0)
// predecessor:
//
//	keyDelta  = Key - prev.Key        (uvarint)
//	if keyDelta == 0:  Val - prev.Val (uvarint; Vals strictly ascend
//	                                   within a duplicate-key run)
//	else:              Val            (uvarint, full posting)
//
// Index postings are dense node ids and keys cluster (hash buckets,
// order-encoded numerics), so typical entries pack to 2-6 bytes instead
// of the 16 an unpacked Entry occupies. Decoding is a strictly linear
// scan, which is exactly how leaves are consumed: lookups decode one
// leaf (<= maxLeaf entries) into a stack scratch or the cursor's
// reusable scratch, and mutations decode, modify, and re-pack through
// the copy-on-write path (see mutableLeaf callers in btree.go).

import (
	"encoding/binary"
	"math/bits"
	"unsafe"
)

// appendEntryDelta appends e's encoding relative to its predecessor.
func appendEntryDelta(dst []byte, prev, e Entry) []byte {
	kd := e.Key - prev.Key
	dst = binary.AppendUvarint(dst, kd)
	if kd == 0 {
		dst = binary.AppendUvarint(dst, uint64(e.Val-prev.Val))
	} else {
		dst = binary.AppendUvarint(dst, uint64(e.Val))
	}
	return dst
}

// appendPacked appends the packed encoding of entries (strictly sorted
// by (Key, Val)) to dst and returns the extended slice.
func appendPacked(dst []byte, entries []Entry) []byte {
	var prev Entry
	for _, e := range entries {
		dst = appendEntryDelta(dst, prev, e)
		prev = e
	}
	return dst
}

// packedLen reports the exact encoded size of entries, so leaf buffers
// can be allocated right-sized (append-style growth would waste the
// memory this layout exists to save).
func packedLen(entries []Entry) int {
	n := 0
	var prev Entry
	for _, e := range entries {
		kd := e.Key - prev.Key
		n += uvarintLen(kd)
		if kd == 0 {
			n += uvarintLen(uint64(e.Val - prev.Val))
		} else {
			n += uvarintLen(uint64(e.Val))
		}
		prev = e
	}
	return n
}

func uvarintLen(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

// newLeaf packs entries into a fresh right-sized leaf owned by gen.
func newLeaf(gen uint64, entries []Entry) *leaf {
	return &leaf{
		gen:    gen,
		count:  int32(len(entries)),
		packed: appendPacked(make([]byte, 0, packedLen(entries)), entries),
	}
}

// setEntries re-packs entries into l, reusing l.packed's capacity when
// it suffices. Only valid on a leaf owned by the mutating tree handle.
func (l *leaf) setEntries(entries []Entry) {
	need := packedLen(entries)
	if cap(l.packed) < need {
		l.packed = make([]byte, 0, need)
	}
	l.packed = appendPacked(l.packed[:0], entries)
	l.count = int32(len(entries))
}

// appendEntries decodes l into dst[:0] and returns the decoded slice.
// Callers pass a scratch with capacity maxLeaf+1 to keep decoding
// allocation-free.
func (l *leaf) appendEntries(dst []Entry) []Entry {
	dst = dst[:0]
	it := l.iter()
	for it.next() {
		dst = append(dst, it.e)
	}
	return dst
}

// leafIter streams a packed leaf's entries in order without
// materialising them — the read path for scans and point lookups.
type leafIter struct {
	p []byte
	e Entry
}

func (l *leaf) iter() leafIter { return leafIter{p: l.packed} }

func (it *leafIter) next() bool {
	if len(it.p) == 0 {
		return false
	}
	kd, n := binary.Uvarint(it.p)
	if n <= 0 {
		panic("btree: corrupt packed leaf")
	}
	vd, m := binary.Uvarint(it.p[n:])
	if m <= 0 {
		panic("btree: corrupt packed leaf")
	}
	it.p = it.p[n+m:]
	if kd == 0 {
		it.e.Val += uint32(vd)
	} else {
		it.e.Key += kd
		it.e.Val = uint32(vd)
	}
	return true
}

// maxEntryEnc bounds one entry's encoding: a 10-byte uvarint key delta
// plus a 5-byte uvarint value.
const maxEntryEnc = 15

// spliceSlack is the capacity headroom given to leaf buffers allocated
// on the mutation path, so a run of inserts into the same leaf doesn't
// reallocate on every call. Bulk-loaded and re-packed leaves stay
// exactly sized; the slack exists only on update-touched leaves.
const spliceSlack = 16

// leafLoc is a position inside a packed leaf: the byte range of the
// first entry >= some probe (the "successor") and the decoded entries
// around it.
type leafLoc struct {
	pos     int   // byte offset where the successor's encoding starts
	succEnd int   // byte offset just past the successor's encoding
	prev    Entry // entry preceding pos (zero Entry at the leaf start)
	succ    Entry // the successor itself (valid only when hasSucc)
	hasSucc bool  // false: the probe sorts after every entry (pos == len(packed))
}

// locate finds e's position by streaming the packed bytes: the returned
// loc identifies the first entry >= e and the byte span it occupies.
// This is the splice anchor for single-entry mutations — everything
// before pos and after succEnd keeps byte-identical encodings, because
// an entry's delta depends only on its immediate predecessor.
func (l *leaf) locate(e Entry) (loc leafLoc) {
	p := l.packed
	off := 0
	var cur Entry
	for off < len(p) {
		kd, n1 := binary.Uvarint(p[off:])
		if n1 <= 0 {
			panic("btree: corrupt packed leaf")
		}
		vd, n2 := binary.Uvarint(p[off+n1:])
		if n2 <= 0 {
			panic("btree: corrupt packed leaf")
		}
		next := cur
		if kd == 0 {
			next.Val += uint32(vd)
		} else {
			next.Key += kd
			next.Val = uint32(vd)
		}
		if !next.less(e) {
			loc.pos = off
			loc.succEnd = off + n1 + n2
			loc.prev = cur
			loc.succ = next
			loc.hasSucc = true
			return loc
		}
		cur = next
		off += n1 + n2
	}
	loc.pos, loc.succEnd, loc.prev = off, off, cur
	return loc
}

// spliceMutable returns a leaf owned by t whose packed payload equals
// l.packed with [from, to) replaced by repl, mutating l in place when t
// owns it and the buffer has room. The caller fixes up count. This is
// the O(splice) write path: a single-entry insert or delete re-encodes
// at most two entries instead of the whole leaf.
func (t *Tree) spliceMutable(l *leaf, from, to int, repl []byte) *leaf {
	p := l.packed
	newLen := from + len(repl) + len(p) - to
	if l.gen == t.gen && cap(p) >= newLen {
		tail := p[to:]
		p = p[:newLen]
		copy(p[from+len(repl):], tail) // memmove: handles both directions
		copy(p[from:], repl)
		l.packed = p
		return l
	}
	np := make([]byte, newLen, newLen+spliceSlack)
	copy(np, p[:from])
	copy(np[from:], repl)
	copy(np[from+len(repl):], p[to:])
	if l.gen == t.gen {
		l.packed = np
		return l
	}
	return &leaf{gen: t.gen, count: l.count, packed: np}
}

// first returns the smallest entry of a non-empty leaf.
func (l *leaf) first() (Entry, bool) {
	it := l.iter()
	if it.next() {
		return it.e, true
	}
	return Entry{}, false
}

// --- footprint accounting ---

const (
	leafFixedBytes  = int(unsafe.Sizeof(leaf{}))
	innerFixedBytes = int(unsafe.Sizeof(inner{}))
	entryBytes      = int(unsafe.Sizeof(Entry{}))
	// nodeIfaceBytes is one node interface value inside an inner's
	// children slice.
	nodeIfaceBytes = int(unsafe.Sizeof(node(nil)))
)

// MemBytes reports the in-memory footprint of the tree's node graph:
// node headers, inner separator/child slices, and packed leaf payloads.
// It walks every node, so call it for reporting, not on hot paths.
// Nodes shared between clones are counted once per handle (the walk
// cannot see sharing), which matches how a single published snapshot is
// sized.
func (t *Tree) MemBytes() int {
	return int(unsafe.Sizeof(Tree{})) + nodeMemBytes(t.root)
}

func nodeMemBytes(n node) int {
	switch nn := n.(type) {
	case *leaf:
		return leafFixedBytes + cap(nn.packed)
	case *inner:
		b := innerFixedBytes + cap(nn.keys)*entryBytes + cap(nn.children)*nodeIfaceBytes
		for _, c := range nn.children {
			b += nodeMemBytes(c)
		}
		return b
	}
	panic("btree: unknown node type")
}

// UnpackedBytes reports what the same node graph would occupy with
// leaves stored as raw []Entry slices (16 bytes per entry) — the layout
// this package used before leaf packing, kept as the baseline that
// bytes/node savings are measured against.
func (t *Tree) UnpackedBytes() int {
	return int(unsafe.Sizeof(Tree{})) + nodeUnpackedBytes(t.root)
}

func nodeUnpackedBytes(n node) int {
	switch nn := n.(type) {
	case *leaf:
		return leafFixedBytes + int(nn.count)*entryBytes
	case *inner:
		b := innerFixedBytes + cap(nn.keys)*entryBytes + cap(nn.children)*nodeIfaceBytes
		for _, c := range nn.children {
			b += nodeUnpackedBytes(c)
		}
		return b
	}
	panic("btree: unknown node type")
}
