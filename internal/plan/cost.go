package plan

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/xpath"
)

// The cost model: abstract work units per primitive operation, chosen
// from the relative costs measured on the query benchmarks (a structure
// + predicate verification walks ancestor chains and re-evaluates every
// predicate by navigation, an order of magnitude over streaming one
// posting out of a B+tree leaf).
const (
	costScanNode = 1.0  // visit one node/attr during a document scan
	costFetch    = 1.2  // stream one posting out of a B+tree
	costContext  = 1.5  // map one candidate to its context nodes
	costVerify   = 12.0 // verify structure + all predicates at one context
	costProbe    = 0.3  // mark or probe one bitmap slot
)

// Prepare plans a query against the indexes under the given mode. It
// fails with xpath.ErrUnsupportedPath (wrapped) for shapes the
// evaluators cannot answer.
func Prepare(ix *core.Snapshot, path *xpath.Path, mode Mode) (*Plan, error) {
	if err := xpath.CheckSupported(path); err != nil {
		return nil, err
	}
	p := &Plan{Expr: path.String(), Mode: mode, ix: ix, path: path}
	switch mode {
	case Legacy:
		p.Root = newNode("legacy", "first indexable condition drives", -1)
		p.EstCost = -1
		return p, nil
	case ForceScan:
		p.enumerate() // for the side effect: fallback notes on text predicates
		p.planScan()
		return p, nil
	}

	cands := p.enumerate()
	if len(cands) == 0 {
		p.planScan()
		return p, nil
	}
	driver, extras, indexCost := p.chooseIndexStrategy(cands)
	if mode == Auto && p.scanCost() <= indexCost {
		p.planScan()
		return p, nil
	}
	p.driver, p.extras, p.EstCost = driver, extras, indexCost
	p.buildIndexTree()
	return p, nil
}

// Run plans and executes in one call, returning the sorted postings and
// the executed plan (actual cardinalities filled in).
func Run(ix *core.Snapshot, path *xpath.Path, mode Mode) ([]core.Posting, *Plan, error) {
	p, err := Prepare(ix, path, mode)
	if err != nil {
		return nil, nil, err
	}
	return p.Execute(), p, nil
}

// scanCost estimates a full document scan: every node and attribute is
// visited and tested.
func (p *Plan) scanCost() float64 {
	doc := p.ix.Doc()
	return float64(doc.NumNodes()+doc.NumAttrs()) * costScanNode
}

func (p *Plan) planScan() {
	p.EstCost = p.scanCost()
	detail := "document scan + navigation"
	if len(p.Notes) > 0 {
		detail += "; " + strings.Join(p.Notes, "; ")
	}
	p.Root = newNode("scan", detail, -1)
	p.Root.Children = nil
}

// enumerate builds one access path per indexable condition of the final
// step. On a final attribute step only dot conditions (the attribute's
// own value) are indexable; on node steps any condition whose literal
// has an index is.
func (p *Plan) enumerate() []*accessPath {
	steps := p.path.Steps
	if len(steps) == 0 {
		return nil
	}
	last := steps[len(steps)-1]
	p.attrStep = last.Kind == xpath.TestAttr
	var out []*accessPath
	for _, pred := range last.Preds {
		for _, c := range pred.Conds {
			if p.attrStep && !c.Dot {
				continue // attributes have no children; cond is vacuously false
			}
			if ap := p.accessPathFor(c); ap != nil {
				out = append(out, ap)
			}
		}
	}
	return out
}

// accessPathFor maps one condition to an index access path, or nil when
// no built index can answer it. The key-range construction mirrors the
// evaluator's candidate retrieval exactly (same casts, same open/closed
// bound handling), so a planned query selects the same candidates.
func (p *Plan) accessPathFor(c xpath.Cond) *accessPath {
	ix := p.ix
	switch {
	// Text predicates first: a contains()/starts-with() condition carries
	// a string literal and the zero-value comparison operator, so letting
	// it reach the OpEq case below would wrongly plan a hash-equality
	// probe for it.
	case c.Fn != xpath.FnNone:
		return p.substrPathFor(c)
	case c.Lit.IsDate:
		if !ix.HasTyped(core.TypeDate) {
			return nil
		}
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		switch c.Op {
		case xpath.OpEq:
			lo, hi = c.Lit.Days, c.Lit.Days
		case xpath.OpLt:
			hi = c.Lit.Days - 1 // integral day domain: exclusive = previous day
		case xpath.OpLe:
			hi = c.Lit.Days
		case xpath.OpGt:
			lo = c.Lit.Days + 1
		case xpath.OpGe:
			lo = c.Lit.Days
		case xpath.OpNe:
			return nil // the whole index; never selective
		}
		ap := &accessPath{cond: c, kind: pathRange, typeID: core.TypeDate, typeName: "date",
			lo: btree.EncodeInt64(lo), hi: btree.EncodeInt64(hi), incLo: true, incHi: true}
		ap.est = ix.EstimateTypedRange(ap.typeID, ap.lo, ap.hi, true, true)
		return ap
	case c.Lit.IsNum:
		if !ix.HasTyped(core.TypeDouble) || math.IsNaN(c.Lit.Num) {
			return nil
		}
		lo, hi := math.Inf(-1), math.Inf(1)
		incLo, incHi := true, true
		switch c.Op {
		case xpath.OpEq:
			lo, hi = c.Lit.Num, c.Lit.Num
		case xpath.OpLt:
			hi, incHi = c.Lit.Num, false
		case xpath.OpLe:
			hi = c.Lit.Num
		case xpath.OpGt:
			lo, incLo = c.Lit.Num, false
		case xpath.OpGe:
			lo = c.Lit.Num
		case xpath.OpNe:
			return nil
		}
		ap := &accessPath{cond: c, kind: pathRange, typeID: core.TypeDouble, typeName: "double",
			lo: btree.EncodeFloat64(lo), hi: btree.EncodeFloat64(hi), incLo: incLo, incHi: incHi}
		ap.est = ix.EstimateTypedRange(ap.typeID, ap.lo, ap.hi, incLo, incHi)
		return ap
	case c.Op == xpath.OpEq:
		if !ix.HasString() {
			return nil
		}
		ap := &accessPath{cond: c, kind: pathHashEq, value: c.Lit.Str}
		ap.est = ix.EstimateStringEq(c.Lit.Str)
		return ap
	}
	return nil
}

// substrPathFor maps a contains()/starts-with() condition to a q-gram
// index access path. The substring index stores only text-node and
// attribute values, so the condition is indexable only when its operand
// is such a leaf — an element string-value concatenates descendant text
// and a pattern spanning two text nodes would never surface a candidate.
// Every rejection is recorded as a plan note so the scan fallback is
// visible in EXPLAIN output.
func (p *Plan) substrPathFor(c xpath.Cond) *accessPath {
	ix := p.ix
	fn := fmt.Sprintf("%s(%s, %q)", c.Fn, condOperand(c), c.Lit.Str)
	if !p.substrLeafOperand(c) {
		p.Notes = append(p.Notes,
			fn+": operand is not a text()/attribute leaf — answered by scan")
		return nil
	}
	if !ix.HasSubstring() {
		p.Notes = append(p.Notes,
			fn+": substring index not enabled — answered by scan")
		return nil
	}
	if len(c.Lit.Str) < core.SubstrQ {
		p.Notes = append(p.Notes, fmt.Sprintf(
			"%s: pattern shorter than q=%d — answered by scan", fn, core.SubstrQ))
		return nil
	}
	ap := &accessPath{cond: c, kind: pathSubstr, value: c.Lit.Str}
	ap.est = ix.EstimateSubstr(c.Lit.Str)
	return ap
}

// substrLeafOperand reports whether the condition's operand resolves to
// text-node or attribute values — the only values the substring index
// holds postings for.
func (p *Plan) substrLeafOperand(c xpath.Cond) bool {
	if c.Dot {
		if p.attrStep {
			return true // the attribute's own value
		}
		last := p.path.Steps[len(p.path.Steps)-1]
		return last.Kind == xpath.TestText
	}
	if len(c.Rel) == 0 {
		return false
	}
	lastRel := c.Rel[len(c.Rel)-1]
	return lastRel.Kind == xpath.TestText || lastRel.Kind == xpath.TestAttr
}

// chooseIndexStrategy picks the cheapest driver and greedily adds
// intersection paths while they pay for themselves: streaming an extra
// path into a bitmap costs its own enumeration, and saves the expensive
// per-context verification for every driver context it filters out.
func (p *Plan) chooseIndexStrategy(cands []*accessPath) (driver *accessPath, extras []*accessPath, cost float64) {
	driver = cands[0]
	for _, ap := range cands[1:] {
		if ap.est < driver.est {
			driver = ap
		}
	}
	universe := p.scanCost() // node+attr count in scan-cost units (costScanNode = 1)
	if universe < 1 {
		universe = 1
	}

	// surviving tracks the expected number of driver contexts still
	// reaching verification as extras are added (independence assumed).
	surviving := driver.est
	cost = driver.est * (costFetch + costContext)
	// Consider the most selective extras first: each accepted extra
	// shrinks the surviving count the next one is judged against.
	rest := make([]*accessPath, 0, len(cands)-1)
	for _, ap := range cands {
		if ap != driver {
			rest = append(rest, ap)
		}
	}
	for i := 1; i < len(rest); i++ {
		for j := i; j > 0 && rest[j].est < rest[j-1].est; j-- {
			rest[j], rest[j-1] = rest[j-1], rest[j]
		}
	}
	for _, ap := range rest {
		if len(extras) == maxExtras {
			break
		}
		sel := ap.est / universe
		if sel > 1 {
			sel = 1
		}
		streamCost := ap.est*(costFetch+costContext+costProbe) + surviving*costProbe
		saving := surviving * (1 - sel) * costVerify
		if streamCost < saving {
			extras = append(extras, ap)
			cost += streamCost
			surviving *= sel
		}
	}
	cost += surviving * costVerify
	return driver, extras, cost
}

// buildIndexTree assembles the printable operator tree for an index
// strategy: result ← verify ← (intersect ←)? access paths.
func (p *Plan) buildIndexTree() {
	p.driver.node = newNode(opName(p.driver), p.driver.describe()+"  [driver]", p.driver.est)
	children := []*Node{p.driver.node}
	surviving := p.driver.est
	universe := p.scanCost()
	if universe < 1 {
		universe = 1
	}
	for _, ap := range p.extras {
		ap.node = newNode(opName(ap), ap.describe(), ap.est)
		children = append(children, ap.node)
		sel := ap.est / universe
		if sel > 1 {
			sel = 1
		}
		surviving *= sel
	}
	feed := children[0]
	if len(p.extras) > 0 {
		inter := newNode("intersect", "bitmap over candidate contexts", surviving)
		inter.Children = children
		feed = inter
	}
	p.verifyNode = newNode("verify", "structure + remaining predicates", surviving)
	p.verifyNode.Children = []*Node{feed}
	p.Root = newNode("result", p.Expr, surviving)
	p.Root.Children = []*Node{p.verifyNode}
}

func opName(ap *accessPath) string {
	switch ap.kind {
	case pathHashEq:
		return "hash-eq"
	case pathSubstr:
		return "substr"
	}
	return fmt.Sprintf("range(%s)", ap.typeName)
}
