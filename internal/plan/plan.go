// Package plan implements the cost-based query planner: an explicit
// three-stage pipeline (logical plan → physical plan → executor)
// replacing the evaluator's first-indexable-condition heuristic.
//
// The logical side of a query is its parsed path (package xpath). The
// planner enumerates one access path per indexable condition of the
// final step — hash equality on the string equi-index, B+tree range on
// any registered typed index, document scan as the universal fallback —
// estimates each path's cardinality from the core statistics layer
// (distinct-key counts and equi-depth histograms), picks the cheapest
// driver, and intersects additional selective paths through streaming
// posting iterators before the per-context structure and predicate
// verification runs. The chosen operator tree is observable: every plan
// prints as an EXPLAIN tree with estimated and (after execution) actual
// cardinalities per operator.
//
// The scan evaluator (xpath.Evaluate) stays untouched as the
// correctness oracle; the equivalence property tests pin every planning
// mode to it.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/xpath"
)

// Mode is the planner knob: how Query chooses its execution strategy.
type Mode int

const (
	// Auto is the cost-based planner (the default): scan vs cheapest
	// index driver vs index intersection, decided per query from the
	// statistics layer.
	Auto Mode = iota
	// Legacy is the pre-planner heuristic — the first indexable
	// condition drives, every other predicate is verified by
	// navigation. Kept for A/B comparison.
	Legacy
	// ForceScan always evaluates by document scan.
	ForceScan
	// ForceIndex always drives the cheapest index access path, even
	// when the planner would prefer a scan; shapes with no indexable
	// condition still fall back to scanning. ForceScan and ForceIndex
	// are the two arms of the selectivity-crossover ablation.
	ForceIndex
)

func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case Legacy:
		return "legacy"
	case ForceScan:
		return "scan"
	case ForceIndex:
		return "index"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode resolves the command-line spelling of a planner mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "legacy", "off":
		return Legacy, nil
	case "scan":
		return ForceScan, nil
	case "index":
		return ForceIndex, nil
	}
	return Auto, fmt.Errorf("plan: unknown planner mode %q (want auto, legacy, scan, or index)", s)
}

// Node is one operator of a physical plan tree, annotated with the
// planner's cardinality estimate and, after execution, the actual count
// that flowed through the operator.
type Node struct {
	// Op names the operator: "result", "verify", "intersect",
	// "hash-eq", "range", "scan", "legacy".
	Op string
	// Detail describes the operator's parameters (the condition text,
	// the key range, the index used).
	Detail string
	// EstRows is the planner's cardinality estimate; negative when the
	// operator has no meaningful estimate (scan, legacy).
	EstRows float64
	// ActRows is filled in by the executor; -1 until the plan ran.
	ActRows int
	// Children are the operator's inputs.
	Children []*Node
}

func newNode(op, detail string, est float64) *Node {
	return &Node{Op: op, Detail: detail, EstRows: est, ActRows: -1}
}

// String renders the node and its subtree as an indented plan tree.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, "", true, true)
	return b.String()
}

func (n *Node) render(b *strings.Builder, prefix string, last, root bool) {
	if !root {
		if last {
			b.WriteString(prefix + "└─ ")
			prefix += "   "
		} else {
			b.WriteString(prefix + "├─ ")
			prefix += "│  "
		}
	}
	b.WriteString(n.Op)
	if n.Detail != "" {
		b.WriteString(" " + n.Detail)
	}
	b.WriteString("  (")
	if n.EstRows >= 0 {
		fmt.Fprintf(b, "est %.1f", n.EstRows)
	} else {
		b.WriteString("est -")
	}
	if n.ActRows >= 0 {
		fmt.Fprintf(b, ", actual %d", n.ActRows)
	}
	b.WriteString(")\n")
	for i, c := range n.Children {
		c.render(b, prefix, i == len(n.Children)-1, false)
	}
}

// Plan is a planned query: the chosen operator tree plus everything the
// executor needs to run it. A Plan is bound to the Indexes it was
// planned against and is not safe for concurrent use; plan once per
// query execution.
type Plan struct {
	// Expr is the original expression text.
	Expr string
	// Mode the plan was produced under.
	Mode Mode
	// Root of the printable operator tree.
	Root *Node
	// EstCost is the planner's cost for the chosen strategy, in
	// abstract work units (comparable across strategies for one query).
	EstCost float64
	// Notes explains access paths the planner had to reject — a
	// contains()/starts-with() pattern shorter than the q-gram width, a
	// substring index that is not enabled, an operand that is not a
	// text()/attribute leaf. They surface in the EXPLAIN output so a
	// query silently running as a scan is observable.
	Notes []string

	ix   *core.Snapshot
	path *xpath.Path

	// Physical choice: nil driver means scan (or legacy) execution.
	driver   *accessPath
	extras   []*accessPath
	attrStep bool

	verifyNode *Node
}

// String renders the whole plan tree, headed by the mode and cost.
func (p *Plan) String() string {
	cost := "-"
	if p.EstCost >= 0 {
		cost = fmt.Sprintf("%.0f", p.EstCost)
	}
	s := fmt.Sprintf("plan(%s, cost %s) %s\n%s", p.Mode, cost, p.Expr, p.Root.String())
	for _, n := range p.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// UsesIndex reports whether the plan drives an index access path (as
// opposed to a document scan or the legacy heuristic).
func (p *Plan) UsesIndex() bool { return p.driver != nil }

// Intersects reports whether the plan streams additional access paths
// into a bitmap beside the driver.
func (p *Plan) Intersects() bool { return len(p.extras) > 0 }

// pathKind distinguishes the index access-path families.
type pathKind uint8

const (
	pathHashEq pathKind = iota
	pathRange
	pathSubstr
)

// accessPath is one enumerated index access path: a condition of the
// final step, the index that can answer it, the key range to scan, and
// the estimated posting count.
type accessPath struct {
	cond     xpath.Cond
	kind     pathKind
	typeID   core.TypeID
	typeName string
	value    string // pathHashEq: the literal to hash and verify
	lo, hi   uint64 // pathRange: encoded key bounds
	incLo    bool
	incHi    bool
	est      float64
	node     *Node
}

// open returns the streaming iterator for the access path.
func (ap *accessPath) open(ix *core.Snapshot) *core.PostingIter {
	switch ap.kind {
	case pathHashEq:
		return ix.StringEqIter(ap.value)
	case pathSubstr:
		return ix.SubstrIter(ap.value, ap.cond.Fn == xpath.FnStartsWith)
	}
	return ix.TypedRangeIter(ap.typeID, ap.lo, ap.hi, ap.incLo, ap.incHi)
}

func (ap *accessPath) describe() string {
	switch ap.kind {
	case pathHashEq:
		return fmt.Sprintf("%s = %q", condOperand(ap.cond), ap.value)
	case pathSubstr:
		return fmt.Sprintf("%s(%s, %q)", ap.cond.Fn, condOperand(ap.cond), ap.value)
	}
	lo, hi := "[", "]"
	if !ap.incLo {
		lo = "("
	}
	if !ap.incHi {
		hi = ")"
	}
	return fmt.Sprintf("%s %s %s%#x, %#x%s", condOperand(ap.cond), ap.cond.Op, lo, ap.lo, ap.hi, hi)
}

// condOperand renders a condition's operand path for plan display.
func condOperand(c xpath.Cond) string {
	if c.Dot {
		return "."
	}
	var parts []string
	for i, s := range c.Rel {
		sep := "/"
		if s.Axis == xpath.Descendant {
			sep = "//"
		}
		name := s.Name
		switch s.Kind {
		case xpath.TestAny:
			name = "*"
		case xpath.TestText:
			name = "text()"
		case xpath.TestAttr:
			name = "@" + s.Name
		}
		if i == 0 {
			if s.Axis == xpath.Descendant {
				parts = append(parts, ".//"+name)
			} else {
				parts = append(parts, name)
			}
			continue
		}
		parts = append(parts, sep+name)
	}
	return strings.Join(parts, "")
}
