package plan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// substrCorpus returns the equivalence corpus with the q-gram substring
// index enabled, so the planner can enumerate the substring access path.
func substrCorpus(t testing.TB) []corpusDoc {
	t.Helper()
	var out []corpusDoc
	add := func(name string, xml []byte) {
		doc, err := xmlparse.Parse(xml)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ix := core.Build(doc, core.DefaultOptions())
		ix.EnableSubstring()
		out = append(out, corpusDoc{name: name, ix: ix.Snapshot()})
	}
	xmark, err := datagen.Generate("xmark1", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	add("xmark", xmark)

	var mixed strings.Builder
	mixed.WriteString(`<r>seven`)
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&mixed, `<w note="tag-%d banana">word%d filler</w>`, i, i%40)
	}
	mixed.WriteString(`eight<!--note--><?pi data?></r>`)
	add("mixed-text", []byte(mixed.String()))
	return out
}

// substrCorpusQueries exercises every substring-path shape and every
// fallback: indexable text() and attribute leaves (dot and relative
// operands), non-leaf element operands, short and empty patterns,
// conjunctions with value predicates, and patterns with zero hits.
var substrCorpusQueries = []string{
	`//person[contains(emailaddress/text(), "mailto")]`,
	`//person[contains(emailaddress/text(), "mailto:w")]`,
	`//person[starts-with(@id, "person1")]`,
	`//item[contains(name/text(), "bidder")]`,
	`//name/text()[contains(., "the")]`,
	`//name/text()[starts-with(., "Arthur")]`,
	`//person/@id[starts-with(., "person")]`,
	`//person[contains(., "mailto")]`,
	`//item[contains(name, "bidder")]`,
	`//name/text()[contains(., "a")]`,
	`//name/text()[contains(., "")]`,
	`//person[contains(emailaddress/text(), "mailto:w") and starts-with(@id, "person")]`,
	`//item[contains(name/text(), "bidder") and quantity = 7]`,
	`//w[contains(., "zz-absent")]`,
	`//w[starts-with(@note, "tag-7")]`,
	`//w[contains(@note, "banana")]`,
	`//w/text()[contains(., "word7")]`,
}

// TestSubstringPlannedEquivalence is the planner-vs-scan property for
// text predicates: for every corpus document, query, and planning mode
// the planned execution is identical to the scan oracle — whether the
// substring drive, a value-index drive, or the scan answered.
func TestSubstringPlannedEquivalence(t *testing.T) {
	for _, cd := range substrCorpus(t) {
		for _, q := range substrCorpusQueries {
			path, err := xpath.Parse(q)
			if err != nil {
				t.Fatalf("parse %q: %v", q, err)
			}
			oracle := xpath.Evaluate(cd.ix.Doc(), path)
			for _, mode := range allModes {
				got, pl, err := Run(cd.ix, path, mode)
				if err != nil {
					t.Fatalf("%s %q mode=%s: %v", cd.name, q, mode, err)
				}
				if !postingsEqual(got, oracle) {
					t.Errorf("%s %q mode=%s: got %d hits, oracle %d\nplan:\n%s",
						cd.name, q, mode, len(got), len(oracle), pl)
				}
			}
		}
	}
}

// TestSubstringPlannedEquivalenceAfterUpdates re-runs the property on a
// mutated index: commits rewrite text under the planner's feet, and the
// maintained q-gram postings must keep answering exactly like the scan.
func TestSubstringPlannedEquivalenceAfterUpdates(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&b, `<p tag="id-%d"><t>needle %d haystack</t></p>`, i, i)
	}
	b.WriteString("</r>")
	doc, err := xmlparse.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	idx := core.Build(doc, core.DefaultOptions())
	idx.EnableSubstring()

	queries := []string{
		`//p[contains(t/text(), "needle 7")]`,
		`//p[starts-with(@tag, "id-3")]`,
		`//t/text()[contains(., "rewritten")]`,
	}
	for round := 0; round < 3; round++ {
		ix := idx.Snapshot()
		for _, q := range queries {
			path := xpath.MustParse(q)
			oracle := xpath.Evaluate(ix.Doc(), path)
			for _, mode := range allModes {
				got, pl, err := Run(ix, path, mode)
				if err != nil {
					t.Fatalf("round %d %q mode=%s: %v", round, q, mode, err)
				}
				if !postingsEqual(got, oracle) {
					t.Errorf("round %d %q mode=%s: got %d hits, oracle %d\nplan:\n%s",
						round, q, mode, len(got), len(oracle), pl)
				}
			}
		}
		// Mutate between rounds: rewrite a stripe of text nodes and
		// churn the structure.
		d := idx.Doc()
		var ups []core.TextUpdate
		for i := 0; i < d.NumNodes() && len(ups) < 60; i++ {
			n := xmltree.NodeID(i)
			if d.Kind(n) == xmltree.Text && strings.Contains(d.Value(n), "needle") {
				ups = append(ups, core.TextUpdate{Node: n, Value: fmt.Sprintf("rewritten %d-%d", round, i)})
			}
		}
		if err := idx.UpdateTexts(ups); err != nil {
			t.Fatal(err)
		}
		frag, err := xmlparse.ParseString(fmt.Sprintf(`<p tag="id-ins%d"><t>needle inserted</t></p>`, round))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := idx.InsertChildren(idx.Doc().Root(), 0, frag); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSubstringPlanDrivesIndex pins the access path itself: on a
// selective text predicate the planner drives the q-gram index, says so
// in the plan tree, and reports it through UsesIndex.
func TestSubstringPlanDrivesIndex(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&b, "<p><t>filler text %d</t></p>", i)
	}
	b.WriteString(`<p><t>the rare needle here</t></p></r>`)
	doc, err := xmlparse.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	idx := core.Build(doc, core.DefaultOptions())
	idx.EnableSubstring()
	ix := idx.Snapshot()

	path := xpath.MustParse(`//p[contains(t/text(), "rare needle")]`)
	for _, mode := range []Mode{Auto, ForceIndex} {
		pl, err := Prepare(ix, path, mode)
		if err != nil {
			t.Fatal(err)
		}
		if pl.driver == nil || pl.driver.kind != pathSubstr {
			t.Fatalf("mode=%s did not drive the substring index:\n%s", mode, pl)
		}
		res := pl.Execute()
		if len(res) != 1 {
			t.Fatalf("mode=%s: %d hits, want 1", mode, len(res))
		}
		if !pl.UsesIndex() {
			t.Errorf("mode=%s: UsesIndex() = false for a substring drive", mode)
		}
		s := pl.String()
		if !strings.Contains(s, "substr") || !strings.Contains(s, "contains") {
			t.Errorf("mode=%s: plan tree does not describe the substring drive:\n%s", mode, s)
		}
	}
}

// TestSubstringFallbackNotes pins the observability contract: every
// reason the planner declines the substring path — pattern shorter than
// q, index not enabled, operand not a text()/attribute leaf — appears
// as a note in the printable plan, in scan mode too (so EXPLAIN always
// says why a text predicate fell back).
func TestSubstringFallbackNotes(t *testing.T) {
	doc, err := xmlparse.ParseString(`<r><p tag="abc"><t>some text</t></p></r>`)
	if err != nil {
		t.Fatal(err)
	}
	enabled := core.Build(doc, core.DefaultOptions())
	enabled.EnableSubstring()
	plain := core.Build(doc, core.DefaultOptions()).Snapshot()

	cases := []struct {
		name string
		ix   *core.Snapshot
		q    string
		note string
	}{
		{"short pattern", enabled.Snapshot(), `//t/text()[contains(., "ab")]`, "pattern shorter than q=3"},
		{"not enabled", plain, `//t/text()[contains(., "some")]`, "substring index not enabled"},
		{"non-leaf operand", enabled.Snapshot(), `//p[contains(., "some")]`, "not a text()/attribute leaf"},
		{"element rel operand", enabled.Snapshot(), `//r[contains(p, "some")]`, "not a text()/attribute leaf"},
	}
	for _, tc := range cases {
		for _, mode := range []Mode{Auto, ForceScan} {
			t.Run(tc.name+"/"+mode.String(), func(t *testing.T) {
				path := xpath.MustParse(tc.q)
				got, pl, err := Run(tc.ix, path, mode)
				if err != nil {
					t.Fatal(err)
				}
				if oracle := xpath.Evaluate(tc.ix.Doc(), path); !postingsEqual(got, oracle) {
					t.Fatalf("fallback changed results: %d hits, oracle %d", len(got), len(oracle))
				}
				if s := pl.String(); !strings.Contains(s, tc.note) {
					t.Errorf("plan does not explain the fallback (want %q):\n%s", tc.note, s)
				}
			})
		}
	}
}

// TestSubstringEstimateOrdersDrivers: with both a substring path and an
// unselective value path available, the planner must not pick the
// broader driver — the q-gram estimate has to participate in the same
// cost comparison as the value-index estimates.
func TestSubstringEstimateOrdersDrivers(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 2000; i++ {
		// income=7 matches everything; the needle is nearly unique.
		fmt.Fprintf(&b, "<p><income>7</income><t>common filler %d</t></p>", i)
	}
	b.WriteString("<p><income>7</income><t>unique-needle payload</t></p></r>")
	doc, err := xmlparse.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	idx := core.Build(doc, core.DefaultOptions())
	idx.EnableSubstring()
	ix := idx.Snapshot()

	path := xpath.MustParse(`//p[income = 7 and contains(t/text(), "unique-needle")]`)
	pl, err := Prepare(ix, path, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if pl.driver == nil || pl.driver.kind != pathSubstr {
		t.Fatalf("planner drove the unselective path:\n%s", pl)
	}
	got := pl.Execute()
	oracle := xpath.Evaluate(doc, path)
	if !postingsEqual(got, oracle) {
		t.Fatalf("driver-choice plan wrong: %d hits, oracle %d", len(got), len(oracle))
	}
}
