package plan

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// allModes are every planning strategy; each must be result-equivalent
// to the scan oracle.
var allModes = []Mode{Auto, Legacy, ForceScan, ForceIndex}

// corpusDoc is one indexed document of the shared shape corpus.
type corpusDoc struct {
	name string
	ix   *core.Snapshot
}

// queryCorpus returns the documents the equivalence property runs over:
// the XMark stand-in plus the pathological shapes the parallel-build and
// recovery properties use (deep chains, all-attribute documents, mixed
// content), all indexed with every built-in type.
func queryCorpus(t testing.TB) []corpusDoc {
	t.Helper()
	var out []corpusDoc
	add := func(name string, xml []byte) {
		doc, err := xmlparse.Parse(xml)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out = append(out, corpusDoc{name: name, ix: core.Build(doc, core.DefaultOptions()).Snapshot()})
	}

	xmark, err := datagen.Generate("xmark1", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	add("xmark", xmark)

	var deep strings.Builder
	deep.WriteString("<r>")
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&deep, "<lvl><n>%d.5</n><when>19%02d-03-15</when>", i, i%100)
	}
	deep.WriteString("bottom")
	for i := 0; i < 120; i++ {
		deep.WriteString("</lvl>")
	}
	deep.WriteString("</r>")
	add("deep-chain", []byte(deep.String()))

	var attrs strings.Builder
	attrs.WriteString("<r>")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&attrs, `<e a="%d" b="%d.%02d" when="19%02d-0%d-1%d"/>`, i, i, i%100, i%100, i%9+1, i%3)
	}
	attrs.WriteString("</r>")
	add("all-attributes", []byte(attrs.String()))

	var mixed strings.Builder
	mixed.WriteString("<r>7")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&mixed, "<w><v>%d</v></w>", i%50)
	}
	mixed.WriteString("8<!--note--><?pi data?></r>")
	add("mixed-content", []byte(mixed.String()))

	return out
}

// corpusQueries exercises every access-path family and fallback: string
// equality, numeric and date ranges, conjunctions (intersectable and
// not), dot and relative-path operands, attribute steps, text steps,
// wildcard tests, and non-indexable shapes.
var corpusQueries = []string{
	`//item[quantity = 7]`,
	`//person[profile/age = 42]`,
	`//open_auction[initial > 4990]`,
	`//open_auction[initial > 10]`,
	`//item[location = "Amsterdam"]`,
	`//item[location = "Amsterdam" and quantity = 7]`,
	`//person[profile/income > 10 and profile/birthday < xs:date("1960-01-01")]`,
	`//person[profile/income > 95000 and profile/birthday < xs:date("1960-01-01")]`,
	`//person[.//age = 42]`,
	`//person[profile/age >= 18 and profile/age <= 30]`,
	`//person/profile[age != 42]`,
	`//person/@id[. = "person3"]`,
	`//*[@id = "person3"]`,
	`//e[@b > 398.5]`,
	`//e[@a = "7" and @b < 100]`,
	`//e[@when >= xs:date("1950-01-01") and @when < xs:date("1960-01-01")]`,
	`//r/e[@a = "7"]`,
	`//lvl[n > 118]`,
	`//lvl[n > 1.5 and when < xs:date("1903-01-01")]`,
	`//lvl/n[. = 42.5]`,
	`//w[v = 7]`,
	`//w/v/text()[. = "7"]`,
	`//v[. >= 48]`,
	`//r[. > 0]`,
	`/r/w[v = "7"]`,
	`//does-not-exist[x = 1]`,
	`//name`,
	`//*`,
}

func postingsEqual(a, b []core.Posting) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPlannedEquivalence is the planner-vs-scan property: for every
// corpus document, query, and planning mode, the planned execution is
// identical (same postings, same order) to the scan oracle.
func TestPlannedEquivalence(t *testing.T) {
	for _, cd := range queryCorpus(t) {
		for _, q := range corpusQueries {
			path, err := xpath.Parse(q)
			if err != nil {
				t.Fatalf("parse %q: %v", q, err)
			}
			oracle := xpath.Evaluate(cd.ix.Doc(), path)
			for _, mode := range allModes {
				got, pl, err := Run(cd.ix, path, mode)
				if err != nil {
					t.Fatalf("%s %q mode=%s: %v", cd.name, q, mode, err)
				}
				if !postingsEqual(got, oracle) {
					t.Errorf("%s %q mode=%s: got %d hits, oracle %d\nplan:\n%s",
						cd.name, q, mode, len(got), len(oracle), pl)
				}
			}
		}
	}
}

// TestPlannedEquivalenceAfterUpdates re-runs the property on a mutated
// index (updates shift histograms and postings; estimates may be stale
// but results must not be).
func TestPlannedEquivalenceAfterUpdates(t *testing.T) {
	xml, err := datagen.Generate("xmark1", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmlparse.Parse(xml)
	if err != nil {
		t.Fatal(err)
	}
	idx := core.Build(doc, core.DefaultOptions())
	// Rewrite a slice of text nodes so histograms churn.
	var updates []core.TextUpdate
	for i := 0; i < doc.NumNodes() && len(updates) < 500; i++ {
		if doc.Kind(xmltree.NodeID(i)) == xmltree.Text {
			updates = append(updates, core.TextUpdate{Node: xmltree.NodeID(i), Value: fmt.Sprintf("%d", i%97)})
		}
	}
	if err := idx.UpdateTexts(updates); err != nil {
		t.Fatal(err)
	}
	ix := idx.Snapshot() // plan against the post-update version
	for _, q := range []string{
		`//item[quantity = 7]`,
		`//open_auction[initial > 4990]`,
		`//person[profile/income > 10 and profile/birthday < xs:date("1960-01-01")]`,
		`//item[. = 42]`,
	} {
		path := xpath.MustParse(q)
		oracle := xpath.Evaluate(ix.Doc(), path)
		for _, mode := range allModes {
			got, pl, err := Run(ix, path, mode)
			if err != nil {
				t.Fatalf("%q mode=%s: %v", q, mode, err)
			}
			if !postingsEqual(got, oracle) {
				t.Errorf("%q mode=%s after updates: got %d hits, oracle %d\nplan:\n%s",
					q, mode, len(got), len(oracle), pl)
			}
		}
	}
}

// TestUnsupportedPathError pins the typed error: mid-path attribute
// steps fail with xpath.ErrUnsupportedPath under every mode instead of
// silently returning nothing.
func TestUnsupportedPathError(t *testing.T) {
	doc, err := xmlparse.ParseString(`<r><e a="1"><b>x</b></e></r>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := core.Build(doc, core.DefaultOptions()).Snapshot()
	for _, q := range []string{`//@a/b`, `/r/@a/b[x = 1]`} {
		path, err := xpath.Parse(q)
		if err != nil {
			t.Skipf("dialect rejects %q outright: %v", q, err)
		}
		for _, mode := range allModes {
			_, _, err := Run(ix, path, mode)
			if !errors.Is(err, xpath.ErrUnsupportedPath) {
				t.Errorf("%q mode=%s: err = %v, want ErrUnsupportedPath", q, mode, err)
			}
		}
	}
}

// TestPlannerChoosesSelectiveDriver pins the heart of the cost model:
// with an unselective first predicate and a selective second one, the
// planner must not drive the first (the legacy mistake).
func TestPlannerChoosesSelectiveDriver(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 2000; i++ {
		// income > 0 matches everything; age = i is nearly unique.
		fmt.Fprintf(&b, "<p><income>%d</income><age>%d</age></p>", 1000+i%7, i)
	}
	b.WriteString("</r>")
	doc, err := xmlparse.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	ix := core.Build(doc, core.DefaultOptions()).Snapshot()
	path := xpath.MustParse(`//p[income > 0 and age = 1234]`)
	pl, err := Prepare(ix, path, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if pl.driver == nil {
		t.Fatalf("planner chose scan:\n%s", pl)
	}
	if got := condOperand(pl.driver.cond); got != "age" {
		t.Fatalf("driver operand = %s, want age\n%s", got, pl)
	}
	got := pl.Execute()
	oracle := xpath.Evaluate(doc, path)
	if !postingsEqual(got, oracle) {
		t.Fatalf("driver-choice plan wrong: %d hits, oracle %d", len(got), len(oracle))
	}
}

// TestPlannerIntersects pins the new capability: two selective
// predicates produce an intersect operator, and the executed actuals
// show the bitmap filtering driver contexts before verification.
func TestPlannerIntersects(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 4000; i++ {
		fmt.Fprintf(&b, "<p><x>%d</x><y>%d</y></p>", i%200, (i+3)%190)
	}
	b.WriteString("</r>")
	doc, err := xmlparse.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	ix := core.Build(doc, core.DefaultOptions()).Snapshot()
	path := xpath.MustParse(`//p[x = 7 and y = 10]`)
	pl, err := Prepare(ix, path, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.extras) == 0 {
		t.Fatalf("planner did not intersect:\n%s", pl)
	}
	got := pl.Execute()
	oracle := xpath.Evaluate(doc, path)
	if !postingsEqual(got, oracle) {
		t.Fatalf("intersection plan wrong: %d hits, oracle %d", len(got), len(oracle))
	}
	if !strings.Contains(pl.String(), "intersect") {
		t.Errorf("plan tree missing intersect node:\n%s", pl)
	}
	// The verify operator must have seen no more contexts than the
	// driver produced (the bitmap can only shrink the set).
	if pl.verifyNode.ActRows > pl.driver.node.ActRows {
		t.Errorf("verify saw %d contexts, driver fetched %d", pl.verifyNode.ActRows, pl.driver.node.ActRows)
	}
}

// TestExplainReportsCardinalities pins the EXPLAIN contract: estimates
// are present before execution, actuals after, and the printable tree
// carries both.
func TestExplainReportsCardinalities(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&b, "<p><v>%d</v></p>", i)
	}
	b.WriteString("</r>")
	doc, err := xmlparse.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	ix := core.Build(doc, core.DefaultOptions()).Snapshot()
	path := xpath.MustParse(`//p[v >= 100 and v < 200]`)
	pl, err := Prepare(ix, path, ForceIndex)
	if err != nil {
		t.Fatal(err)
	}
	if pl.driver == nil {
		t.Fatalf("ForceIndex chose scan:\n%s", pl)
	}
	est := pl.driver.node.EstRows
	if est <= 0 {
		t.Fatalf("driver estimate missing:\n%s", pl)
	}
	// The equi-depth histogram should land within 3x of the true 100.
	if est < 33 || est > 300 {
		t.Errorf("driver estimate %.1f for a 100-row range, want within [33,300]", est)
	}
	if pl.driver.node.ActRows != -1 {
		t.Errorf("actuals filled before execution")
	}
	res := pl.Execute()
	if pl.driver.node.ActRows < 100 {
		t.Errorf("driver actual = %d, want >= 100", pl.driver.node.ActRows)
	}
	if pl.Root.ActRows != len(res) {
		t.Errorf("root actual = %d, want %d", pl.Root.ActRows, len(res))
	}
	s := pl.String()
	if !strings.Contains(s, "est ") || !strings.Contains(s, "actual ") {
		t.Errorf("plan tree missing cardinalities:\n%s", s)
	}
}
