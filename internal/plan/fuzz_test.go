package plan

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/xmlparse"
	"repro/internal/xpath"
)

// FuzzQueryPlanned fuzzes the whole planning pipeline with arbitrary
// expressions against a fixed document. Properties:
//
//  1. Prepare/Execute never panic, in any mode.
//  2. Either every mode fails with ErrUnsupportedPath, or every mode's
//     result is identical to the scan oracle (the planner-vs-scan
//     equivalence property, under fuzzed inputs).
//
// Seed corpus: f.Add seeds below plus the files checked in under
// testdata/fuzz/FuzzQueryPlanned.
func FuzzQueryPlanned(f *testing.F) {
	doc, err := xmlparse.ParseString(
		`<site><people><person id="p1"><name>Ann</name><age>34.5</age>` +
			`<joined>2009-03-24</joined></person><person id="p2"><name>Bob</name>` +
			`<age>40</age></person><person id="p3"><name>Cy</name><age>40</age>` +
			`<joined>2011-11-05</joined></person></people>` +
			`<open t="2009-03-24T12:00:00">7</open><w>4<v>2</v></w></site>`)
	if err != nil {
		f.Fatal(err)
	}
	idx := core.Build(doc, core.DefaultOptions())
	idx.EnableSubstring() // fuzz the substring access path too
	ix := idx.Snapshot()
	for _, seed := range []string{
		`/site/people/person/name`,
		`//person[age = 34.5]`,
		`//person[age = 40 and name = "Bob"]`,
		`//person[@id = "p1"]/name`,
		`//person/@id[. = "p2"]`,
		`//age[. >= 30 and . < 41]`,
		`//joined[. = xs:date("2009-03-24")]`,
		`//person[joined > xs:date("2010-01-01") and age = 40]`,
		`//*[. = "Ann"]`,
		`//w[. = 42]`,
		`//person[age != 40]`,
		`//name/text()[. = "Cy"]`,
		`//@id/name`,
		`]]][[[`,
		`//a[. = 1e309]`,
		`//person[contains(name/text(), "nn")]`,
		`//person[starts-with(@id, "p1")]`,
		`//name/text()[contains(., "Ann")]`,
		`//person[contains(., "Ann")]`,
		`//person[contains(name/text(), "Ann") and age = 34.5]`,
		`//name/text()[contains(., "")]`,
		`//person[starts-with(name/text(), "Cy")]`,
		`//person[contains(name, "o")]`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		path, err := xpath.Parse(expr) // must not panic
		if err != nil {
			return
		}
		var oracle []core.Posting
		oracleOK := xpath.CheckSupported(path) == nil
		if oracleOK {
			oracle = xpath.Evaluate(doc, path)
		}
		for _, mode := range allModes {
			got, _, err := Run(ix, path, mode)
			if err != nil {
				if oracleOK || !errors.Is(err, xpath.ErrUnsupportedPath) {
					t.Fatalf("%q mode=%s: unexpected error %v", expr, mode, err)
				}
				continue
			}
			if !oracleOK {
				t.Fatalf("%q mode=%s: ran an unsupported shape", expr, mode)
			}
			if !postingsEqual(got, oracle) {
				t.Fatalf("%q mode=%s: %d hits, oracle %d", expr, mode, len(got), len(oracle))
			}
		}
	})
}
