package plan

import (
	"repro/internal/core"
	"repro/internal/xpath"
)

// maxExtras caps the access paths intersected beside the driver (one
// bitmask bit each); the greedy chooser stops there.
const maxExtras = 8

// ctxMask accumulates one bit per intersected access path over context
// ids (tree nodes, or attributes for attribute steps). Representation
// follows the planner's estimates: a dense byte-map when the expected
// population justifies O(domain) storage, a sparse map otherwise — a
// selective conjunction must not pay O(document) per query.
type ctxMask struct {
	dense  []uint8
	sparse map[int32]uint8
}

// newCtxMask sizes the mask for a domain of n ids with an expected
// population of est marks.
func newCtxMask(n int, est float64) *ctxMask {
	if est*8 >= float64(n) {
		return &ctxMask{dense: make([]uint8, n)}
	}
	return &ctxMask{sparse: make(map[int32]uint8, int(est)+16)}
}

func (m *ctxMask) or(id int32, bit uint8) {
	if m.dense != nil {
		m.dense[id] |= bit
		return
	}
	m.sparse[id] |= bit
}

func (m *ctxMask) get(id int32) uint8 {
	if m.dense != nil {
		return m.dense[id]
	}
	return m.sparse[id]
}

// Execute runs the plan and returns the hits in document order,
// filling in every operator's actual cardinality. The scan evaluator
// produces byte-identical results for every strategy — the equivalence
// property tests pin this.
func (p *Plan) Execute() []core.Posting {
	ex := xpath.NewExec(p.ix)
	var out []core.Posting
	switch {
	case p.Mode == Legacy:
		out = ex.LegacyIndexed(p.path)
	case p.driver == nil:
		out = ex.Scan(p.path)
	case p.attrStep:
		out = p.runAttr(ex)
	default:
		out = p.runNode(ex)
	}
	p.Root.ActRows = len(out)
	return out
}

// runNode executes an index strategy whose final step selects tree
// nodes: stream every extra access path into a context bitmap, then
// drive the cheapest path, probing the bitmap before the expensive
// structure + predicate verification.
func (p *Plan) runNode(ex *xpath.Exec) []core.Posting {
	doc := ex.Doc()
	steps := p.path.Steps
	last := steps[len(steps)-1]
	prefix := steps[:len(steps)-1]

	// Non-driver paths stream into per-path bits of one byte-map: a
	// context is worth verifying only when every selective condition's
	// index produced it.
	var mask *ctxMask
	var want uint8
	for i, ap := range p.extras {
		bit := uint8(1) << i
		want |= bit
		if mask == nil {
			mask = newCtxMask(doc.NumNodes(), p.extrasEst())
		}
		it := ap.open(p.ix)
		fetched := 0
		for {
			cand, ok := it.Next()
			if !ok {
				break
			}
			fetched++
			for _, ctx := range ex.ContextsFor(cand, ap.cond) {
				mask.or(int32(ctx), bit)
			}
		}
		it.Close()
		ap.node.ActRows = fetched
	}

	it := p.driver.open(p.ix)
	defer it.Close()
	ex.BeginVisit()
	fetched, verified := 0, 0
	var out []core.Posting
	for {
		cand, ok := it.Next()
		if !ok {
			break
		}
		fetched++
		for _, ctx := range ex.ContextsFor(cand, p.driver.cond) {
			if mask != nil && mask.get(int32(ctx))&want != want {
				continue
			}
			// Dedupe up front: verification is deterministic, so a
			// context that failed once need not be re-verified.
			if !ex.Visit(ctx) {
				continue
			}
			verified++
			if !ex.TestMatch(ctx, last) {
				continue
			}
			if !ex.MatchesPrefix(ctx, prefix, last.Axis) {
				continue
			}
			// Re-verify all predicates: the indexes pre-filter their own
			// conditions, the remaining ones have not been checked.
			if !ex.PredsHold(ctx, last.Preds) {
				continue
			}
			out = append(out, core.NodePosting(ctx))
		}
	}
	p.fillActuals(fetched, verified)
	return ex.SortPostings(out)
}

// runAttr executes an index strategy whose final step selects
// attributes (//item/@id[. = "x"]): candidates are attribute postings,
// the attribute itself is the hit, and the bitmap is keyed by attribute
// id.
func (p *Plan) runAttr(ex *xpath.Exec) []core.Posting {
	doc := ex.Doc()
	steps := p.path.Steps
	last := steps[len(steps)-1]
	prefix := steps[:len(steps)-1]

	var mask *ctxMask
	var want uint8
	for i, ap := range p.extras {
		bit := uint8(1) << i
		want |= bit
		if mask == nil {
			mask = newCtxMask(doc.NumAttrs(), p.extrasEst())
		}
		it := ap.open(p.ix)
		fetched := 0
		for {
			cand, ok := it.Next()
			if !ok {
				break
			}
			fetched++
			if cand.IsAttr {
				mask.or(int32(cand.Attr), bit)
			}
		}
		it.Close()
		ap.node.ActRows = fetched
	}

	it := p.driver.open(p.ix)
	defer it.Close()
	fetched, verified := 0, 0
	var out []core.Posting
	for {
		cand, ok := it.Next()
		if !ok {
			break
		}
		fetched++
		if !cand.IsAttr {
			continue
		}
		if last.Name != "*" && doc.AttrName(cand.Attr) != last.Name {
			continue
		}
		if mask != nil && mask.get(int32(cand.Attr))&want != want {
			continue
		}
		verified++
		// A child-axis attribute step selects attributes OF the nodes
		// the prefix selects; a descendant step selects attributes of
		// their proper descendants.
		owner := doc.AttrOwner(cand.Attr)
		var ok2 bool
		if last.Axis == xpath.Child {
			ok2 = ex.AbsMatches(owner, prefix)
		} else {
			ok2 = ex.MatchesPrefix(owner, prefix, xpath.Descendant)
		}
		if !ok2 || !ex.AttrPredsHold(cand.Attr, last.Preds) {
			continue
		}
		out = append(out, core.AttrPosting(cand.Attr))
	}
	p.fillActuals(fetched, verified)
	return ex.SortPostings(out)
}

// extrasEst sums the intersected paths' estimated populations — the
// mask sizing input.
func (p *Plan) extrasEst() float64 {
	s := 0.0
	for _, ap := range p.extras {
		s += ap.est
	}
	return s
}

// fillActuals records the driver fetch count and the post-intersection
// verification count on the plan tree.
func (p *Plan) fillActuals(fetched, verified int) {
	p.driver.node.ActRows = fetched
	if p.verifyNode != nil {
		p.verifyNode.ActRows = verified
		if len(p.verifyNode.Children) == 1 && p.verifyNode.Children[0].Op == "intersect" {
			p.verifyNode.Children[0].ActRows = verified
		}
	}
}
