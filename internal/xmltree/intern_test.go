package xmltree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// buildRepetitive builds a document whose values repeat heavily, the
// shape interning exists for.
func buildRepetitive(t *testing.T, groups, perGroup int) *Doc {
	t.Helper()
	b := NewBuilder()
	b.StartElement("root")
	for g := 0; g < groups; g++ {
		for i := 0; i < perGroup; i++ {
			b.StartElement("item")
			b.Attribute("cat", fmt.Sprintf("category-%d", g%5))
			b.Text(fmt.Sprintf("common value %d", g%7))
			b.EndElement()
		}
	}
	b.EndElement()
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInternDeduplicatesHeap(t *testing.T) {
	d := buildRepetitive(t, 100, 10)
	// 1000 items but only 7 distinct texts and 5 distinct attr values:
	// the heap must hold far less than one copy per node.
	distinct := 0
	for g := 0; g < 7; g++ {
		distinct += len(fmt.Sprintf("common value %d", g))
	}
	for g := 0; g < 5; g++ {
		distinct += len(fmt.Sprintf("category-%d", g))
	}
	if got := d.HeapBytes(); got != distinct {
		t.Fatalf("heap holds %d bytes, want %d (one copy per distinct value)", got, distinct)
	}
	// Values still read back correctly.
	for i := 0; i < d.NumNodes(); i++ {
		n := NodeID(i)
		if d.Kind(n) == Text && d.Value(n) == "" {
			t.Fatalf("node %d lost its value", i)
		}
	}
}

func TestInternValuesAboveLimitNotInterned(t *testing.T) {
	long := make([]byte, maxInternLen+1)
	for i := range long {
		long[i] = 'x'
	}
	b := NewBuilder()
	b.StartElement("root")
	b.TextBytes(long)
	b.TextBytes(long)
	b.EndElement()
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.HeapBytes(); got != 2*len(long) {
		t.Fatalf("heap holds %d bytes, want %d (long values stored per occurrence)", got, 2*len(long))
	}
}

// TestCompactOnTextDraftLeavesPublishedIntact pins the cow.go contract
// the auto-compaction path relies on: a CloneForText draft shares its
// attrValue column with the published doc, and Compact on the draft must
// not disturb the published doc's view.
func TestCompactOnTextDraftLeavesPublishedIntact(t *testing.T) {
	published := buildRepetitive(t, 10, 5)
	wantVals := snapshotValues(published)

	draft := published.CloneForText()
	var textNode NodeID = -1
	for i := 0; i < draft.NumNodes(); i++ {
		if draft.Kind(NodeID(i)) == Text {
			textNode = NodeID(i)
			break
		}
	}
	for i := 0; i < 50; i++ {
		if err := draft.SetText(textNode, fmt.Sprintf("generation %d of a long enough replacement value", i)); err != nil {
			t.Fatal(err)
		}
	}
	if draft.DeadHeapBytes() == 0 {
		t.Fatal("update storm produced no dead bytes")
	}
	reclaimed := draft.Compact()
	if reclaimed <= 0 {
		t.Fatalf("Compact reclaimed %d bytes", reclaimed)
	}
	if draft.DeadHeapBytes() != 0 {
		t.Fatalf("dead counter %d after Compact, want 0", draft.DeadHeapBytes())
	}
	if got := draft.Value(textNode); got != "generation 49 of a long enough replacement value" {
		t.Fatalf("draft lost its update: %q", got)
	}
	if diff := diffValues(published, wantVals); diff != "" {
		t.Fatalf("published doc changed under draft Compact: %s", diff)
	}
	if err := draft.Validate(); err != nil {
		t.Fatal(err)
	}
}

func snapshotValues(d *Doc) []string {
	var out []string
	for i := 0; i < d.NumNodes(); i++ {
		out = append(out, d.Value(NodeID(i)))
	}
	for a := 0; a < d.NumAttrs(); a++ {
		out = append(out, d.AttrValue(AttrID(a)))
	}
	return out
}

func diffValues(d *Doc, want []string) string {
	got := snapshotValues(d)
	if len(got) != len(want) {
		return fmt.Sprintf("%d values, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("value %d = %q, want %q", i, got[i], want[i])
		}
	}
	return ""
}

// TestStaleInternEntryHealed simulates an abandoned draft: its appends
// land in the shared intern map but its heap header is dropped, so the
// entries point past the surviving heap's length. The next put must not
// trust them.
func TestStaleInternEntryHealed(t *testing.T) {
	base := buildRepetitive(t, 2, 2)
	ghost := base.CloneForText()
	var textNode NodeID = -1
	for i := 0; i < ghost.NumNodes(); i++ {
		if ghost.Kind(NodeID(i)) == Text {
			textNode = NodeID(i)
			break
		}
	}
	if err := ghost.SetText(textNode, "phantom value never published"); err != nil {
		t.Fatal(err)
	}
	// ghost is abandoned; base's heap header never saw the append, but the
	// shared intern map did.
	draft := base.CloneForText()
	if err := draft.SetText(textNode, "phantom value never published"); err != nil {
		t.Fatal(err)
	}
	if got := draft.Value(textNode); got != "phantom value never published" {
		t.Fatalf("stale intern entry served garbage: %q", got)
	}
	if err := draft.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteToDropsDeadNames: delete-heavy histories shed dictionary
// garbage at serialisation time, and the round trip preserves every
// name and value.
func TestWriteToDropsDeadNames(t *testing.T) {
	b := NewBuilder()
	b.StartElement("keep")
	for i := 0; i < 50; i++ {
		b.StartElement(fmt.Sprintf("doomed-%d", i))
		b.Attribute(fmt.Sprintf("doomed-attr-%d", i), "v")
		b.Text("x")
		b.EndElement()
	}
	b.StartElement("survivor")
	b.Attribute("kept-attr", "v")
	b.Text("payload")
	b.EndElement()
	b.EndElement()
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	before := d.names.count()
	// Delete all doomed subtrees (always the first child of <keep>).
	for i := 0; i < 50; i++ {
		if err := d.DeleteSubtree(d.FirstChild(d.FirstChild(0))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.names.count() != before {
		t.Fatalf("in-memory dictionary shrank from %d to %d without serialisation", before, d.names.count())
	}

	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDoc(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Only live names survive: keep, survivor, kept-attr.
	if got.names.count() != 3 {
		t.Fatalf("reloaded dictionary has %d names, want 3: %v", got.names.count(), got.names.names)
	}
	if got.NumNodes() != d.NumNodes() || got.NumAttrs() != d.NumAttrs() {
		t.Fatalf("round trip changed shape: %d/%d nodes, want %d/%d", got.NumNodes(), got.NumAttrs(), d.NumNodes(), d.NumAttrs())
	}
	for i := 0; i < d.NumNodes(); i++ {
		n := NodeID(i)
		if got.Name(n) != d.Name(n) {
			t.Fatalf("node %d name %q, want %q", i, got.Name(n), d.Name(n))
		}
		if got.Value(n) != d.Value(n) {
			t.Fatalf("node %d value %q, want %q", i, got.Value(n), d.Value(n))
		}
	}
	for a := 0; a < d.NumAttrs(); a++ {
		if got.AttrName(AttrID(a)) != d.AttrName(AttrID(a)) || got.AttrValue(AttrID(a)) != d.AttrValue(AttrID(a)) {
			t.Fatalf("attr %d mismatch after round trip", a)
		}
	}
	// Serialising twice must be byte-stable (determinism matters for
	// leader/follower snapshot comparisons).
	var buf2 bytes.Buffer
	if _, err := d.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteTo is not deterministic")
	}
}

// TestReadDocInternsValues: a serialised document (whose heap blob holds
// one copy per value) reloads into a hash-consed heap.
func TestReadDocInternsValues(t *testing.T) {
	d := buildRepetitive(t, 100, 10)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDoc(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.HeapBytes() != d.HeapBytes() {
		t.Fatalf("reloaded heap %d bytes, built heap %d: load lost deduplication", got.HeapBytes(), d.HeapBytes())
	}
	if diff := diffValues(got, snapshotValues(d)); diff != "" {
		t.Fatalf("round trip changed values: %s", diff)
	}
}

// TestCompactAfterUpdateStormRandomised: a randomised update storm with
// periodic compaction keeps every value readable and the heap bounded.
func TestCompactAfterUpdateStormRandomised(t *testing.T) {
	d := buildRepetitive(t, 30, 4)
	r := rand.New(rand.NewSource(11))
	var textNodes []NodeID
	for i := 0; i < d.NumNodes(); i++ {
		if d.Kind(NodeID(i)) == Text {
			textNodes = append(textNodes, NodeID(i))
		}
	}
	want := map[NodeID]string{}
	for _, n := range textNodes {
		want[n] = d.Value(n)
	}
	for round := 0; round < 20; round++ {
		for i := 0; i < 100; i++ {
			n := textNodes[r.Intn(len(textNodes))]
			v := fmt.Sprintf("round %d value %d", round, r.Intn(10))
			if err := d.SetText(n, v); err != nil {
				t.Fatal(err)
			}
			want[n] = v
		}
		if round%5 == 4 {
			d.Compact()
			if d.DeadHeapBytes() != 0 {
				t.Fatalf("dead bytes %d after Compact", d.DeadHeapBytes())
			}
		}
		for _, n := range textNodes {
			if d.Value(n) != want[n] {
				t.Fatalf("round %d: node %d = %q, want %q", round, n, d.Value(n), want[n])
			}
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
