package xmltree

import (
	"math/rand"
	"strings"
	"testing"
)

// buildPersonDoc constructs the paper's Figure 1 document:
//
//	<person>
//	  <name><first>Arthur</first><family>Dent</family></name>
//	  <birthday>1966-09-26</birthday>
//	  <age><decades>4</decades>2<years/></age>
//	  <weight><kilos>78</kilos>.<grams>230</grams></weight>
//	</person>
func buildPersonDoc(t testing.TB) *Doc {
	t.Helper()
	b := NewBuilder()
	b.StartElement("person")
	b.StartElement("name")
	b.StartElement("first")
	b.Text("Arthur")
	b.EndElement()
	b.StartElement("family")
	b.Text("Dent")
	b.EndElement()
	b.EndElement()
	b.StartElement("birthday")
	b.Text("1966-09-26")
	b.EndElement()
	b.StartElement("age")
	b.StartElement("decades")
	b.Text("4")
	b.EndElement()
	b.Text("2")
	b.StartElement("years")
	b.EndElement()
	b.EndElement()
	b.StartElement("weight")
	b.StartElement("kilos")
	b.Text("78")
	b.EndElement()
	b.Text(".")
	b.StartElement("grams")
	b.Text("230")
	b.EndElement()
	b.EndElement()
	b.EndElement()
	doc, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return doc
}

// findElem returns the first element with the given tag in document order.
func findElem(d *Doc, tag string) NodeID {
	for i := 0; i < d.NumNodes(); i++ {
		if d.Kind(NodeID(i)) == Element && d.Name(NodeID(i)) == tag {
			return NodeID(i)
		}
	}
	return InvalidNode
}

func TestBuilderPersonShape(t *testing.T) {
	d := buildPersonDoc(t)
	// document + person + name + first + "Arthur" + family + "Dent" +
	// birthday + "1966-09-26" + age + decades + "4" + "2" + years +
	// weight + kilos + "78" + "." + grams + "230" = 20 nodes
	if got := d.NumNodes(); got != 20 {
		t.Errorf("NumNodes = %d, want 20", got)
	}
	s := d.CollectStats()
	if s.Elements != 11 {
		t.Errorf("Elements = %d, want 11", s.Elements)
	}
	if s.Texts != 8 {
		t.Errorf("Texts = %d, want 8", s.Texts)
	}
	if s.MaxLevel != 4 {
		t.Errorf("MaxLevel = %d, want 4", s.MaxLevel)
	}
}

func TestStringValuePaperExamples(t *testing.T) {
	d := buildPersonDoc(t)
	cases := []struct {
		tag  string
		want string
	}{
		{"name", "ArthurDent"},
		{"first", "Arthur"},
		{"age", "42"},
		{"weight", "78.230"},
		{"years", ""},
		{"person", "ArthurDent1966-09-264278.230"},
	}
	for _, c := range cases {
		n := findElem(d, c.tag)
		if n == InvalidNode {
			t.Fatalf("element %q not found", c.tag)
		}
		if got := d.StringValue(n); got != c.want {
			t.Errorf("StringValue(<%s>) = %q, want %q", c.tag, got, c.want)
		}
	}
	if got := d.StringValue(d.Root()); got != "ArthurDent1966-09-264278.230" {
		t.Errorf("StringValue(doc) = %q", got)
	}
}

func TestNavigation(t *testing.T) {
	d := buildPersonDoc(t)
	person := findElem(d, "person")
	name := findElem(d, "name")
	birthday := findElem(d, "birthday")
	age := findElem(d, "age")
	weight := findElem(d, "weight")

	if got := d.FirstChild(person); got != name {
		t.Errorf("FirstChild(person) = %d, want name %d", got, name)
	}
	if got := d.NextSibling(name); got != birthday {
		t.Errorf("NextSibling(name) = %d, want birthday %d", got, birthday)
	}
	if got := d.NextSibling(weight); got != InvalidNode {
		t.Errorf("NextSibling(weight) = %d, want invalid", got)
	}
	if got := d.Parent(name); got != person {
		t.Errorf("Parent(name) = %d, want person %d", got, person)
	}
	if got := d.LastChild(person); got != weight {
		t.Errorf("LastChild(person) = %d, want weight %d", got, weight)
	}
	if got := d.PrevSibling(age); got != birthday {
		t.Errorf("PrevSibling(age) = %d, want birthday %d", got, birthday)
	}
	if got := d.PrevSibling(name); got != InvalidNode {
		t.Errorf("PrevSibling(name) = %d, want invalid", got)
	}
	if got := d.LeftmostSibling(weight); got != name {
		t.Errorf("LeftmostSibling(weight) = %d, want name %d", got, name)
	}
	kids := d.Children(person)
	if len(kids) != 4 || kids[0] != name || kids[3] != weight {
		t.Errorf("Children(person) = %v", kids)
	}
	if !d.IsAncestorOf(person, weight) || d.IsAncestorOf(weight, person) {
		t.Error("IsAncestorOf misbehaves")
	}
	if d.IsAncestorOf(person, person) {
		t.Error("IsAncestorOf must be proper")
	}
	anc := d.Ancestors(findElem(d, "grams"))
	if len(anc) != 3 || anc[0] != weight || anc[2] != d.Root() {
		t.Errorf("Ancestors(grams) = %v", anc)
	}
}

func TestAttributes(t *testing.T) {
	b := NewBuilder()
	b.StartElement("items")
	b.StartElement("item")
	b.Attribute("id", "i1")
	b.Attribute("featured", "yes")
	b.Text("hello")
	b.EndElement()
	b.StartElement("item")
	b.Attribute("id", "i2")
	b.EndElement()
	b.EndElement()
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumAttrs() != 3 {
		t.Fatalf("NumAttrs = %d, want 3", d.NumAttrs())
	}
	item1 := NodeID(2)
	lo, hi := d.AttrRange(item1)
	if hi-lo != 2 {
		t.Fatalf("item1 attr range %d..%d", lo, hi)
	}
	if d.AttrName(lo) != "id" || d.AttrValue(lo) != "i1" {
		t.Errorf("attr 0 = %s=%s", d.AttrName(lo), d.AttrValue(lo))
	}
	if a := d.FindAttr(item1, "featured"); a == InvalidAttr || d.AttrValue(a) != "yes" {
		t.Errorf("FindAttr(featured) failed")
	}
	if a := d.FindAttr(item1, "missing"); a != InvalidAttr {
		t.Errorf("FindAttr(missing) = %d", a)
	}
	for a := AttrID(0); a < AttrID(d.NumAttrs()); a++ {
		owner := d.AttrOwner(a)
		lo, hi := d.AttrRange(owner)
		if a < lo || a >= hi {
			t.Errorf("AttrOwner(%d) = %d, range %d..%d", a, owner, lo, hi)
		}
	}
	// Attributes do not contribute to string values.
	if got := d.StringValue(0); got != "hello" {
		t.Errorf("StringValue(doc) = %q, want hello", got)
	}
}

func TestCommentsAndPIsExcludedFromStringValue(t *testing.T) {
	b := NewBuilder()
	b.StartElement("a")
	b.Text("x")
	b.Comment("not me")
	b.PI("target", "nor me")
	b.Text("y")
	b.EndElement()
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.StringValue(1); got != "xy" {
		t.Errorf("StringValue = %q, want xy", got)
	}
	if got := d.Value(3); got != "not me" {
		t.Errorf("comment Value = %q", got)
	}
	if d.Name(4) != "target" || d.Value(4) != "nor me" {
		t.Errorf("PI = %s %q", d.Name(4), d.Value(4))
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.EndElement()
	if b.Err() == nil {
		t.Error("EndElement on empty stack must fail")
	}

	b = NewBuilder()
	b.StartElement("a")
	if _, err := b.Finish(); err == nil {
		t.Error("Finish with open element must fail")
	}

	b = NewBuilder()
	b.StartElement("a")
	b.Text("content")
	b.Attribute("late", "x")
	if b.Err() == nil {
		t.Error("Attribute after content must fail")
	}

	b = NewBuilder()
	b.Attribute("id", "x")
	if b.Err() == nil {
		t.Error("Attribute on document node must fail")
	}
}

func TestSetText(t *testing.T) {
	d := buildPersonDoc(t)
	family := findElem(d, "family")
	txt := d.FirstChild(family)
	if err := d.SetText(txt, "Prefect"); err != nil {
		t.Fatal(err)
	}
	if got := d.StringValue(findElem(d, "name")); got != "ArthurPrefect" {
		t.Errorf("after update StringValue(name) = %q", got)
	}
	if err := d.SetText(family, "nope"); err == nil {
		t.Error("SetText on element must fail")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompact(t *testing.T) {
	d := buildPersonDoc(t)
	before := d.HeapBytes()
	txt := d.FirstChild(findElem(d, "family"))
	for i := 0; i < 100; i++ {
		if err := d.SetText(txt, strings.Repeat("x", 50)); err != nil {
			t.Fatal(err)
		}
	}
	if d.HeapBytes() <= before {
		t.Fatal("heap should have grown")
	}
	reclaimed := d.Compact()
	if reclaimed <= 0 {
		t.Error("Compact reclaimed nothing")
	}
	if got := d.Value(txt); got != strings.Repeat("x", 50) {
		t.Errorf("value corrupted by Compact: %q", got)
	}
	if got := d.StringValue(0); !strings.HasPrefix(got, "Arthur") {
		t.Errorf("doc value corrupted: %q", got)
	}
	if d.HeapBytes() != d.LiveHeapBytes() {
		t.Errorf("after Compact heap %d != live %d", d.HeapBytes(), d.LiveHeapBytes())
	}
}

func TestDeleteSubtree(t *testing.T) {
	d := buildPersonDoc(t)
	if err := d.DeleteSubtree(findElem(d, "age")); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("after delete: %v", err)
	}
	if got := d.NumNodes(); got != 15 { // removed age + decades + "4" + "2" + years
		t.Errorf("NumNodes = %d, want 15", got)
	}
	if findElem(d, "age") != InvalidNode || findElem(d, "decades") != InvalidNode {
		t.Error("deleted elements still present")
	}
	if got := d.StringValue(0); got != "ArthurDent1966-09-2678.230" {
		t.Errorf("StringValue(doc) = %q", got)
	}
	// weight subtree must still navigate correctly after the shift.
	weight := findElem(d, "weight")
	if got := d.StringValue(weight); got != "78.230" {
		t.Errorf("StringValue(weight) = %q", got)
	}
	if d.Parent(weight) != findElem(d, "person") {
		t.Error("weight parent wrong after shift")
	}
}

func TestDeleteSubtreeWithAttrs(t *testing.T) {
	b := NewBuilder()
	b.StartElement("r")
	b.StartElement("a")
	b.Attribute("k", "1")
	b.EndElement()
	b.StartElement("b")
	b.Attribute("k", "2")
	b.Attribute("j", "3")
	b.EndElement()
	b.StartElement("c")
	b.Attribute("k", "4")
	b.EndElement()
	b.EndElement()
	d, _ := b.Finish()
	if err := d.DeleteSubtree(findElem(d, "b")); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumAttrs() != 2 {
		t.Fatalf("NumAttrs = %d, want 2", d.NumAttrs())
	}
	c := findElem(d, "c")
	if a := d.FindAttr(c, "k"); a == InvalidAttr || d.AttrValue(a) != "4" {
		t.Error("attribute of c lost or corrupted")
	}
}

func TestDeleteDocumentNodeFails(t *testing.T) {
	d := buildPersonDoc(t)
	if err := d.DeleteSubtree(0); err == nil {
		t.Error("deleting document node must fail")
	}
}

func makeFragment(t testing.TB) *Doc {
	t.Helper()
	b := NewBuilder()
	b.StartElement("email")
	b.Attribute("kind", "home")
	b.Text("arthur@heartofgold.example")
	b.EndElement()
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInsertChildren(t *testing.T) {
	d := buildPersonDoc(t)
	person := findElem(d, "person")
	first, err := d.InsertChildren(person, 1, makeFragment(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("after insert: %v", err)
	}
	if d.Name(first) != "email" {
		t.Errorf("inserted node is %q", d.Name(first))
	}
	kids := d.Children(person)
	if len(kids) != 5 || d.Name(kids[1]) != "email" || d.Name(kids[2]) != "birthday" {
		names := make([]string, len(kids))
		for i, k := range kids {
			names[i] = d.Name(k)
		}
		t.Errorf("children after insert: %v", names)
	}
	if a := d.FindAttr(first, "kind"); a == InvalidAttr || d.AttrValue(a) != "home" {
		t.Error("inserted attribute missing")
	}
	if got := d.StringValue(first); got != "arthur@heartofgold.example" {
		t.Errorf("inserted string value = %q", got)
	}
	if got := d.StringValue(person); got != "ArthurDentarthur@heartofgold.example1966-09-264278.230" {
		t.Errorf("person string value = %q", got)
	}
}

func TestInsertChildrenAppendAndPrepend(t *testing.T) {
	d := buildPersonDoc(t)
	person := findElem(d, "person")
	if _, err := d.InsertChildren(person, 4, makeFragment(t)); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	person = findElem(d, "person")
	kids := d.Children(person)
	if d.Name(kids[len(kids)-1]) != "email" {
		t.Error("append did not place email last")
	}
	if _, err := d.InsertChildren(person, 0, makeFragment(t)); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	kids = d.Children(findElem(d, "person"))
	if d.Name(kids[0]) != "email" {
		t.Error("prepend did not place email first")
	}
	if _, err := d.InsertChildren(findElem(d, "person"), 99, makeFragment(t)); err == nil {
		t.Error("out-of-range pos must fail")
	}
}

func TestInsertIntoEmptyElement(t *testing.T) {
	d := buildPersonDoc(t)
	years := findElem(d, "years")
	if _, err := d.InsertChildren(years, 0, makeFragment(t)); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	years = findElem(d, "years")
	if got := d.StringValue(years); got != "arthur@heartofgold.example" {
		t.Errorf("StringValue(years) = %q", got)
	}
	if got := d.StringValue(findElem(d, "age")); got != "42arthur@heartofgold.example" {
		t.Errorf("StringValue(age) = %q", got)
	}
}

func TestInsertUnderTextFails(t *testing.T) {
	d := buildPersonDoc(t)
	txt := d.FirstChild(findElem(d, "first"))
	if _, err := d.InsertChildren(txt, 0, makeFragment(t)); err == nil {
		t.Error("insert under text node must fail")
	}
}

// TestRandomizedStructuralUpdates performs random deletes and inserts and
// cross-checks Validate plus string values against a freshly rebuilt copy.
func TestRandomizedStructuralUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 30; trial++ {
		d := randomDoc(t, rng, 4, 4)
		for op := 0; op < 10; op++ {
			if rng.Intn(2) == 0 && d.NumNodes() > 2 {
				// Delete a random non-document node.
				n := NodeID(1 + rng.Intn(d.NumNodes()-1))
				if err := d.DeleteSubtree(n); err != nil {
					t.Fatal(err)
				}
			} else {
				// Insert a small fragment under a random element.
				var elems []NodeID
				for i := 0; i < d.NumNodes(); i++ {
					if k := d.Kind(NodeID(i)); k == Element || k == Document {
						elems = append(elems, NodeID(i))
					}
				}
				p := elems[rng.Intn(len(elems))]
				pos := 0
				if nc := d.NumChildren(p); nc > 0 {
					pos = rng.Intn(nc + 1)
				}
				if _, err := d.InsertChildren(p, pos, randomDoc(t, rng, 2, 3)); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
		}
		// Cross-check string value of every node against naive recursion.
		for i := 0; i < d.NumNodes(); i++ {
			n := NodeID(i)
			if got, want := d.StringValue(n), naiveStringValue(d, n); got != want {
				t.Fatalf("trial %d node %d: StringValue %q, want %q", trial, i, got, want)
			}
		}
	}
}

func naiveStringValue(d *Doc, n NodeID) string {
	switch d.Kind(n) {
	case Text, Comment, PI:
		return d.Value(n)
	}
	var sb strings.Builder
	for c := d.FirstChild(n); c != InvalidNode; c = d.NextSibling(c) {
		switch d.Kind(c) {
		case Text:
			sb.WriteString(d.Value(c))
		case Element:
			sb.WriteString(naiveStringValue(d, c))
		}
	}
	return sb.String()
}

// randomDoc builds a random document with the given max depth and fanout.
func randomDoc(t testing.TB, rng *rand.Rand, depth, fanout int) *Doc {
	t.Helper()
	b := NewBuilder()
	var gen func(level int)
	gen = func(level int) {
		n := 1 + rng.Intn(fanout)
		for i := 0; i < n; i++ {
			switch {
			case level < depth && rng.Intn(3) > 0:
				b.StartElement(randomTag(rng))
				if rng.Intn(3) == 0 {
					b.Attribute("id", randomWord(rng))
				}
				gen(level + 1)
				b.EndElement()
			case rng.Intn(8) == 0:
				b.Comment(randomWord(rng))
			default:
				b.Text(randomWord(rng))
			}
		}
	}
	b.StartElement("root")
	gen(1)
	b.EndElement()
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

var tags = []string{"a", "b", "c", "item", "name", "value", "x"}

func randomTag(rng *rand.Rand) string { return tags[rng.Intn(len(tags))] }

func randomWord(rng *rand.Rand) string {
	n := rng.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func TestCursorPaperInterface(t *testing.T) {
	d := buildPersonDoc(t)
	c := NewCursor(d)
	if c.Root() != 0 {
		t.Fatal("Root != 0")
	}
	if !c.HasChild() {
		t.Fatal("document must have a child")
	}
	person := c.NextChild()
	if d.Name(person) != "person" {
		t.Fatalf("NextChild = %q", d.Name(person))
	}
	name := c.NextChild()
	if d.Name(name) != "name" {
		t.Fatalf("NextChild = %q", d.Name(name))
	}
	if !c.HasSibling() {
		t.Fatal("name must have sibling")
	}
	if sib := c.NextSibling(); d.Name(sib) != "birthday" {
		t.Fatalf("NextSibling = %q", d.Name(sib))
	}
	if f := c.Father(); d.Name(f) != "person" {
		t.Fatalf("Father = %q", d.Name(f))
	}
	c.MoveTo(findElem(d, "weight"))
	if lm := c.LeftmostSibling(); d.Name(lm) != "name" {
		t.Fatalf("LeftmostSibling = %q", d.Name(lm))
	}
	if c.NextChild() == InvalidNode {
		t.Fatal("name has children")
	}
}

func TestDescendantWalks(t *testing.T) {
	d := buildPersonDoc(t)
	var texts []string
	d.DescendantTexts(findElem(d, "weight"), func(n NodeID) bool {
		texts = append(texts, d.Value(n))
		return true
	})
	if strings.Join(texts, "|") != "78|.|230" {
		t.Errorf("weight texts = %v", texts)
	}
	count := 0
	d.Descendants(d.Root(), func(NodeID) bool { count++; return true })
	if count != d.NumNodes()-1 {
		t.Errorf("Descendants visited %d, want %d", count, d.NumNodes()-1)
	}
	// Early stop.
	count = 0
	d.Descendants(d.Root(), func(NodeID) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func BenchmarkBuildPerson(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buildPersonDoc(b)
	}
}

func BenchmarkStringValueRoot(b *testing.B) {
	d := buildPersonDoc(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkStr = d.StringValue(0)
	}
}

var sinkStr string
