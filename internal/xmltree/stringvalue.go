package xmltree

import "strings"

// StringValue computes the XDM string value of n: for text, comment, and
// PI nodes their own character data; for element and document nodes the
// concatenation of the string values of all descendant text nodes in
// document order (comments, PIs, and attributes do not contribute).
//
// This is the operation the paper's indices exist to avoid during
// maintenance: it touches every descendant text node.
func (d *Doc) StringValue(n NodeID) string {
	switch d.kind[n] {
	case Text, Comment, PI:
		return d.Value(n)
	}
	var sb strings.Builder
	end := n + NodeID(d.size[n])
	for i := n + 1; i <= end; i++ {
		if d.kind[i] == Text {
			sb.Write(d.heap.getBytes(d.value[i]))
		}
	}
	return sb.String()
}

// AppendStringValue appends the string value of n to dst and returns the
// extended slice, avoiding intermediate allocations.
func (d *Doc) AppendStringValue(dst []byte, n NodeID) []byte {
	switch d.kind[n] {
	case Text, Comment, PI:
		return append(dst, d.heap.getBytes(d.value[n])...)
	}
	end := n + NodeID(d.size[n])
	for i := n + 1; i <= end; i++ {
		if d.kind[i] == Text {
			dst = append(dst, d.heap.getBytes(d.value[i])...)
		}
	}
	return dst
}

// ContributesToParent reports whether node kind k participates in the
// string value of its ancestors. Only element subtrees and text nodes do;
// comments and PIs are skipped per the XQuery data model.
func ContributesToParent(k Kind) bool { return k == Element || k == Text }
