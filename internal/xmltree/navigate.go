package xmltree

// FirstChild returns the first child of n, or InvalidNode if n is a leaf.
// In pre-order the first child, if any, is n+1.
func (d *Doc) FirstChild(n NodeID) NodeID {
	if d.size[n] == 0 {
		return InvalidNode
	}
	return n + 1
}

// NextSibling returns the following sibling of n, or InvalidNode. In
// pre/size encoding the next sibling is n+size(n)+1 when it exists under
// the same parent.
func (d *Doc) NextSibling(n NodeID) NodeID {
	if n == 0 {
		return InvalidNode
	}
	next := n + NodeID(d.size[n]) + 1
	if next >= NodeID(len(d.kind)) || d.parent[next] != d.parent[n] {
		return InvalidNode
	}
	return next
}

// PrevSibling returns the preceding sibling of n, or InvalidNode. This is
// an O(children) left-to-right walk (the encoding has no O(1) reverse
// pointer; callers in the update algorithm use LeftmostSibling + forward
// walks instead, as the paper does).
func (d *Doc) PrevSibling(n NodeID) NodeID {
	if n == 0 {
		return InvalidNode
	}
	c := d.FirstChild(d.parent[n])
	if c == n {
		return InvalidNode
	}
	for {
		next := d.NextSibling(c)
		if next == n {
			return c
		}
		c = next
	}
}

// LeftmostSibling returns the first child of n's parent (n itself if n is
// that child). For the document node it returns the document node.
func (d *Doc) LeftmostSibling(n NodeID) NodeID {
	if n == 0 {
		return 0
	}
	return d.parent[n] + 1
}

// LastChild returns the last child of n, or InvalidNode.
func (d *Doc) LastChild(n NodeID) NodeID {
	c := d.FirstChild(n)
	if c == InvalidNode {
		return InvalidNode
	}
	for {
		next := d.NextSibling(c)
		if next == InvalidNode {
			return c
		}
		c = next
	}
}

// Children returns the child NodeIDs of n in document order.
func (d *Doc) Children(n NodeID) []NodeID {
	var out []NodeID
	for c := d.FirstChild(n); c != InvalidNode; c = d.NextSibling(c) {
		out = append(out, c)
	}
	return out
}

// NumChildren counts the children of n.
func (d *Doc) NumChildren(n NodeID) int {
	cnt := 0
	for c := d.FirstChild(n); c != InvalidNode; c = d.NextSibling(c) {
		cnt++
	}
	return cnt
}

// Descendants calls f for every descendant of n (excluding n) in document
// order; f returning false stops the walk early.
func (d *Doc) Descendants(n NodeID, f func(NodeID) bool) {
	end := n + NodeID(d.size[n])
	for i := n + 1; i <= end; i++ {
		if !f(i) {
			return
		}
	}
}

// DescendantTexts calls f for every text node in the subtree of n
// (including n if n is itself a text node) in document order.
func (d *Doc) DescendantTexts(n NodeID, f func(NodeID) bool) {
	end := n + NodeID(d.size[n])
	for i := n; i <= end; i++ {
		if d.kind[i] == Text && !f(i) {
			return
		}
	}
}

// Ancestors returns the ancestor chain of n from parent to document node.
func (d *Doc) Ancestors(n NodeID) []NodeID {
	var out []NodeID
	for p := d.Parent(n); p != InvalidNode; p = d.Parent(p) {
		out = append(out, p)
	}
	return out
}

// Cursor is the depth-first traversal interface the paper's create and
// update algorithms (Figures 7 and 8) are written against: it mirrors the
// DFS module calls used there (getRoot, nextChildNode, nextSiblingNode,
// getFatherNode, hasSiblingNode, leftMostSibling). All operations are
// evaluated against the cursor's current node.
type Cursor struct {
	doc *Doc
	cur NodeID
}

// NewCursor returns a cursor positioned at the document root.
func NewCursor(d *Doc) *Cursor { return &Cursor{doc: d, cur: 0} }

// Node reports the cursor's current node.
func (c *Cursor) Node() NodeID { return c.cur }

// MoveTo repositions the cursor at n.
func (c *Cursor) MoveTo(n NodeID) { c.cur = n }

// Root repositions the cursor at the document node and returns it.
func (c *Cursor) Root() NodeID {
	c.cur = 0
	return c.cur
}

// HasChild reports whether the current node has children.
func (c *Cursor) HasChild() bool { return c.doc.size[c.cur] != 0 }

// NextChild moves to the first child of the current node and returns it;
// the cursor is unchanged and InvalidNode is returned if there is none.
func (c *Cursor) NextChild() NodeID {
	if n := c.doc.FirstChild(c.cur); n != InvalidNode {
		c.cur = n
		return n
	}
	return InvalidNode
}

// HasSibling reports whether the current node has a following sibling.
func (c *Cursor) HasSibling() bool { return c.doc.NextSibling(c.cur) != InvalidNode }

// NextSibling moves to the following sibling and returns it; the cursor is
// unchanged and InvalidNode is returned if there is none.
func (c *Cursor) NextSibling() NodeID {
	if n := c.doc.NextSibling(c.cur); n != InvalidNode {
		c.cur = n
		return n
	}
	return InvalidNode
}

// Father moves to the parent of the current node and returns it; the
// cursor is unchanged and InvalidNode is returned at the document node.
func (c *Cursor) Father() NodeID {
	if n := c.doc.Parent(c.cur); n != InvalidNode {
		c.cur = n
		return n
	}
	return InvalidNode
}

// LeftmostSibling moves to the first sibling of the current node (possibly
// itself) and returns it.
func (c *Cursor) LeftmostSibling() NodeID {
	c.cur = c.doc.LeftmostSibling(c.cur)
	return c.cur
}
