package xmltree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary document format: fixed-width little-endian columns plus a text
// heap, mirroring how a column-store database (MonetDB-style BATs) lays
// out a shredded document — columns stay randomly accessible, so the
// section size is an honest stand-in for "database storage" in the
// paper's Figure 9 measurements.
//
//	magic "XTDOC2"
//	counts:      n, na, nNames  (u32 each)
//	kind[n]      u8
//	size[n]      u32
//	parentΔ[n-1] u32   (self - parent)
//	name[n]      i32
//	valueLen[n]  u32
//	attrStart[n+1] u32
//	attrName[na]   i32
//	attrValueLen[na] u32
//	names dictionary  (u32 len + bytes each)
//	heap: node values then attribute values, concatenated
//
// Values are re-packed on write, so heap garbage never hits the disk.
// Levels are recomputed from parents on load.
const docMagic = "XTDOC2"

// WriteTo serialises the document. It implements io.WriterTo.
//
// Only live names hit the disk: deletions drop nodes but never
// dictionary entries, so a long-lived document's dictionary accretes
// dead names. WriteTo remaps name ids densely over the names actually
// referenced by a node or attribute (in first-use order, which is
// deterministic, keeping leader/follower snapshot bytes identical), so
// serialisation is the point where the dictionary sheds its garbage.
func (d *Doc) WriteTo(w io.Writer) (int64, error) {
	remap := make([]NameID, d.names.count())
	for i := range remap {
		remap[i] = -1
	}
	live := make([]string, 0, d.names.count())
	mapName := func(id NameID) NameID {
		if id < 0 {
			return -1
		}
		if remap[id] < 0 {
			remap[id] = NameID(len(live))
			live = append(live, d.names.names[id])
		}
		return remap[id]
	}
	for i := range d.name {
		mapName(d.name[i])
	}
	for a := range d.attrName {
		mapName(d.attrName[a])
	}

	cw := &countWriter{w: w}
	bw := newBinWriter(cw)
	bw.raw([]byte(docMagic))
	n := d.NumNodes()
	na := d.NumAttrs()
	bw.u32(uint32(n))
	bw.u32(uint32(na))
	bw.u32(uint32(len(live)))

	for i := 0; i < n; i++ {
		bw.raw([]byte{byte(d.kind[i])})
	}
	for i := 0; i < n; i++ {
		bw.u32(uint32(d.size[i]))
	}
	for i := 1; i < n; i++ {
		bw.u32(uint32(int32(i) - int32(d.parent[i])))
	}
	for i := 0; i < n; i++ {
		bw.u32(uint32(mapName(d.name[i])))
	}
	for i := 0; i < n; i++ {
		bw.u32(d.value[i].len)
	}
	for i := 0; i <= n; i++ {
		bw.u32(uint32(d.attrStart[i]))
	}
	for a := 0; a < na; a++ {
		bw.u32(uint32(mapName(d.attrName[a])))
	}
	for a := 0; a < na; a++ {
		bw.u32(d.attrValue[a].len)
	}
	for _, s := range live {
		bw.u32(uint32(len(s)))
		bw.raw([]byte(s))
	}
	for i := 0; i < n; i++ {
		bw.raw(d.heap.getBytes(d.value[i]))
	}
	for a := 0; a < na; a++ {
		bw.raw(d.heap.getBytes(d.attrValue[a]))
	}
	return cw.n, bw.flush()
}

// ReadDoc deserialises a document written by WriteTo and validates its
// structural invariants.
func ReadDoc(r io.Reader) (*Doc, error) {
	br := newBinReader(r)
	magic := make([]byte, len(docMagic))
	br.raw(magic)
	if br.err == nil && string(magic) != docMagic {
		return nil, errors.New("xmltree: bad document magic")
	}
	n := int(br.u32())
	na := int(br.u32())
	nNames := int(br.u32())
	if br.err != nil {
		return nil, br.err
	}
	// The names dictionary may legitimately exceed the node count:
	// deletions drop nodes but never dictionary entries, so a document
	// that shrank keeps its interned names. Bound it independently.
	if n <= 0 || n > 1<<31-2 || na < 0 || na > 1<<31-2 || nNames < 0 || nNames > 1<<28 {
		return nil, fmt.Errorf("xmltree: implausible counts %d/%d/%d", n, na, nNames)
	}
	d := &Doc{
		kind:      make([]Kind, n),
		size:      make([]int32, n),
		level:     make([]int32, n),
		parent:    make([]NodeID, n),
		name:      make([]NameID, n),
		value:     make([]valueRef, n),
		attrStart: make([]int32, n+1),
		attrName:  make([]NameID, na),
		attrValue: make([]valueRef, na),
		names:     newNameDict(),
		heap:      newTextHeap(),
	}
	kinds := make([]byte, n)
	br.raw(kinds)
	for i := range kinds {
		d.kind[i] = Kind(kinds[i])
	}
	for i := 0; i < n; i++ {
		d.size[i] = int32(br.u32())
	}
	d.parent[0] = InvalidNode
	for i := 1; i < n; i++ {
		d.parent[i] = NodeID(int32(i) - int32(br.u32()))
	}
	for i := 0; i < n; i++ {
		d.name[i] = NameID(br.u32())
	}
	valueLens := make([]uint32, n)
	var heapNeed uint64
	for i := 0; i < n; i++ {
		valueLens[i] = br.u32()
		heapNeed += uint64(valueLens[i])
	}
	for i := 0; i <= n; i++ {
		d.attrStart[i] = int32(br.u32())
	}
	for a := 0; a < na; a++ {
		d.attrName[a] = NameID(br.u32())
	}
	attrLens := make([]uint32, na)
	for a := 0; a < na; a++ {
		attrLens[a] = br.u32()
		heapNeed += uint64(attrLens[a])
	}
	if br.err != nil {
		return nil, br.err
	}
	if heapNeed > 1<<40 {
		return nil, errors.New("xmltree: implausible heap size")
	}
	for i := 0; i < nNames && br.err == nil; i++ {
		l := br.u32()
		if l > 1<<20 {
			return nil, errors.New("xmltree: implausible name length")
		}
		b := make([]byte, l)
		br.raw(b)
		d.names.intern(string(b))
	}
	// Heap: one contiguous read of the serialised (per-value, duplicated)
	// blob, then re-intern each value into the document heap — repeated
	// values collapse onto one stored copy, so a loaded document gets the
	// same hash-consed layout a built one has.
	blob := make([]byte, heapNeed)
	br.raw(blob)
	if br.err != nil {
		return nil, br.err
	}
	off := uint32(0)
	for i := 0; i < n; i++ {
		if valueLens[i] > 0 {
			d.value[i] = d.heap.put(blob[off : off+valueLens[i]])
			off += valueLens[i]
		}
	}
	for a := 0; a < na; a++ {
		if attrLens[a] > 0 {
			d.attrValue[a] = d.heap.put(blob[off : off+attrLens[a]])
			off += attrLens[a]
		}
	}
	// Levels derive from parents.
	for i := 1; i < n; i++ {
		p := d.parent[i]
		if p < 0 || p >= NodeID(i) {
			return nil, fmt.Errorf("xmltree: bad parent %d of node %d", p, i)
		}
		d.level[i] = d.level[p] + 1
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// --- buffered fixed-width stream helpers (shared with the storage layer) ---

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type binWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func newBinWriter(w io.Writer) *binWriter {
	return &binWriter{w: w, buf: make([]byte, 0, 1<<16)}
}

func (b *binWriter) flushIfFull() {
	if len(b.buf) >= 1<<16-64 {
		_ = b.flush()
	}
}

func (b *binWriter) flush() error {
	if b.err != nil {
		return b.err
	}
	if len(b.buf) > 0 {
		_, b.err = b.w.Write(b.buf)
		b.buf = b.buf[:0]
	}
	return b.err
}

func (b *binWriter) raw(p []byte) {
	if b.err != nil {
		return
	}
	if len(p) >= 1<<15 {
		_ = b.flush()
		if b.err == nil {
			_, b.err = b.w.Write(p)
		}
		return
	}
	b.buf = append(b.buf, p...)
	b.flushIfFull()
}

func (b *binWriter) u32(v uint32) {
	if b.err != nil {
		return
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, v)
	b.flushIfFull()
}

type binReader struct {
	rr  io.Reader
	buf [4]byte
	err error
}

func newBinReader(r io.Reader) *binReader { return &binReader{rr: r} }

func (b *binReader) u32() uint32 {
	if b.err != nil {
		return 0
	}
	if _, err := io.ReadFull(b.rr, b.buf[:4]); err != nil {
		b.err = err
		return 0
	}
	return binary.LittleEndian.Uint32(b.buf[:4])
}

func (b *binReader) raw(p []byte) {
	if b.err != nil {
		return
	}
	if _, err := io.ReadFull(b.rr, p); err != nil {
		b.err = err
	}
}
