package xmltree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := buildPersonDoc(t)
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadDoc(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDoc(t, d, got)
}

func TestWriteReadRoundTripWithAttrsAndUpdates(t *testing.T) {
	b := NewBuilder()
	b.StartElement("r")
	b.StartElement("a")
	b.Attribute("k", "v1")
	b.Attribute("j", "v2")
	b.Text("text one")
	b.EndElement()
	b.Comment("a comment")
	b.PI("target", "pi data")
	b.StartElement("b")
	b.Text("text two")
	b.EndElement()
	b.EndElement()
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Garbage in the heap from updates must not be serialised.
	txt := d.FirstChild(NodeID(2))
	_ = txt
	if err := d.SetText(4, "replaced"); err == nil {
		// node 4 may or may not be text depending on layout; find one.
	}
	for i := 0; i < d.NumNodes(); i++ {
		if d.Kind(NodeID(i)) == Text {
			if err := d.SetText(NodeID(i), "updated "+strings.Repeat("x", 40)); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDoc(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDoc(t, d, got)
	// The re-read heap contains only live bytes.
	if got.HeapBytes() != got.LiveHeapBytes() {
		t.Errorf("reloaded heap %d != live %d", got.HeapBytes(), got.LiveHeapBytes())
	}
}

func TestReadDocRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a document"),
		[]byte("XTDOC2"), // truncated after magic
		append([]byte("XTDOC2"), bytes.Repeat([]byte{0xFF}, 12)...), // absurd counts
	}
	for i, c := range cases {
		if _, err := ReadDoc(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: ReadDoc accepted garbage", i)
		}
	}
}

func TestReadDocRejectsTruncation(t *testing.T) {
	d := buildPersonDoc(t)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{10, len(full) / 2, len(full) - 1} {
		if _, err := ReadDoc(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("ReadDoc accepted %d/%d-byte truncation", cut, len(full))
		}
	}
}

func TestRandomDocsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		d := randomDoc(t, rng, 4, 4)
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadDoc(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertSameDoc(t, d, got)
	}
}

func assertSameDoc(t *testing.T, a, b *Doc) {
	t.Helper()
	if err := b.Validate(); err != nil {
		t.Fatalf("reloaded doc invalid: %v", err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumAttrs() != b.NumAttrs() {
		t.Fatalf("counts differ: %d/%d vs %d/%d", a.NumNodes(), a.NumAttrs(), b.NumNodes(), b.NumAttrs())
	}
	for i := 0; i < a.NumNodes(); i++ {
		n := NodeID(i)
		if a.Kind(n) != b.Kind(n) || a.Size(n) != b.Size(n) || a.Level(n) != b.Level(n) ||
			a.Parent(n) != b.Parent(n) || a.Name(n) != b.Name(n) || a.Value(n) != b.Value(n) {
			t.Fatalf("node %d differs", i)
		}
	}
	for x := 0; x < a.NumAttrs(); x++ {
		ad := AttrID(x)
		if a.AttrName(ad) != b.AttrName(ad) || a.AttrValue(ad) != b.AttrValue(ad) || a.AttrOwner(ad) != b.AttrOwner(ad) {
			t.Fatalf("attr %d differs", x)
		}
	}
}

func BenchmarkWriteTo(b *testing.B) {
	d := buildPersonDoc(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRoundTripAfterRootDeletion: deleting the root element leaves a
// document whose interned-name dictionary is larger than its node
// count. The serial format must round-trip it (the old reader's
// plausibility bound nNames <= n+na+1 rejected it).
func TestRoundTripAfterRootDeletion(t *testing.T) {
	b := NewBuilder()
	b.StartElement("r")
	b.StartElement("a")
	b.Attribute("id", "1")
	b.Text("x")
	b.EndElement()
	b.StartElement("bee")
	b.EndElement()
	b.EndElement()
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteSubtree(d.FirstChild(d.Root())); err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != 1 {
		t.Fatalf("doc has %d nodes after root deletion, want 1", d.NumNodes())
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDoc(&buf)
	if err != nil {
		t.Fatalf("round-trip after root deletion: %v", err)
	}
	assertSameDoc(t, d, got)
}
