package xmltree

// textHeap is an append-only byte heap holding all character data of a
// document. Updated values are appended; old ranges become garbage until
// Compact is called (value updates must not invalidate other references).
type textHeap struct {
	data []byte
}

func newTextHeap() *textHeap { return &textHeap{} }

func (h *textHeap) put(s []byte) valueRef {
	if len(s) == 0 {
		return valueRef{}
	}
	off := uint32(len(h.data))
	h.data = append(h.data, s...)
	return valueRef{off: off, len: uint32(len(s))}
}

func (h *textHeap) putString(s string) valueRef {
	if len(s) == 0 {
		return valueRef{}
	}
	off := uint32(len(h.data))
	h.data = append(h.data, s...)
	return valueRef{off: off, len: uint32(len(s))}
}

func (h *textHeap) get(r valueRef) string {
	if r.len == 0 {
		return ""
	}
	return string(h.data[r.off : r.off+r.len])
}

func (h *textHeap) getBytes(r valueRef) []byte {
	if r.len == 0 {
		return nil
	}
	return h.data[r.off : r.off+r.len : r.off+r.len]
}

func (h *textHeap) size() int { return len(h.data) }

// nameDict interns tag and attribute names.
type nameDict struct {
	byName map[string]NameID
	names  []string
}

func newNameDict() *nameDict {
	return &nameDict{byName: make(map[string]NameID)}
}

func (d *nameDict) intern(s string) NameID {
	if id, ok := d.byName[s]; ok {
		return id
	}
	id := NameID(len(d.names))
	d.names = append(d.names, s)
	d.byName[s] = id
	return id
}

func (d *nameDict) find(s string) NameID {
	if id, ok := d.byName[s]; ok {
		return id
	}
	return -1
}

func (d *nameDict) lookup(id NameID) string {
	if id < 0 || int(id) >= len(d.names) {
		return ""
	}
	return d.names[id]
}

func (d *nameDict) count() int { return len(d.names) }

// Compact rewrites the text heap keeping only live ranges, releasing
// garbage produced by value updates. References in the node and attribute
// tables are rewritten in place. It returns the number of bytes reclaimed.
//
// Compact must not be called on a Doc published to concurrent readers
// (see cow.go): it mutates value references other snapshot holders may
// be reading. Compact only privately owned documents.
func (d *Doc) Compact() int {
	old := d.heap
	fresh := newTextHeap()
	fresh.data = make([]byte, 0, d.LiveHeapBytes())
	for i := range d.value {
		if d.value[i].len != 0 {
			d.value[i] = fresh.put(old.getBytes(d.value[i]))
		}
	}
	for i := range d.attrValue {
		if d.attrValue[i].len != 0 {
			d.attrValue[i] = fresh.put(old.getBytes(d.attrValue[i]))
		}
	}
	reclaimed := old.size() - fresh.size()
	d.heap = fresh
	return reclaimed
}
