package xmltree

// textHeap is an append-only byte heap holding all character data of a
// document. XML values repeat heavily (XMark categories, attribute
// enums, boilerplate text), so the heap hash-conses small values: a put
// of bytes equal to an already-stored value returns the existing ref
// instead of appending a duplicate. Updated values are appended; ranges
// an overwrite or subtree deletion abandons are counted in dead and
// reclaimed by Compact (value updates must never invalidate other
// references, so nothing is rewritten in place).
type textHeap struct {
	data []byte

	// intern hash-conses values up to maxInternLen bytes: content hash →
	// ref of a stored copy with those bytes. Copy-on-write clones share
	// the map (see cow.go): only the single serialized writer touches
	// it, readers only ever dereference data. Entries are verified on
	// every hit — a stale entry (left by an abandoned draft whose
	// appends were never published, or by a hash collision) fails the
	// byte comparison and is simply rebound.
	intern map[uint64]valueRef

	// dead counts heap bytes abandoned by value overwrites and subtree
	// deletions. It is a conservative upper bound — an abandoned range
	// may still be referenced elsewhere through interning — that drives
	// draft auto-compaction in internal/core.
	dead int
}

// maxInternLen bounds hash-consed value size: long values are rarely
// repeated, and hashing them on every put would tax update throughput.
const maxInternLen = 128

func newTextHeap() *textHeap { return &textHeap{} }

// cloneHeader returns a heap header sharing data, the intern map, and
// the dead counter with h — the copy-on-write clone used by cow.go.
func (h *textHeap) cloneHeader() *textHeap {
	return &textHeap{data: h.data, intern: h.intern, dead: h.dead}
}

// internHash is FNV-1a over the value bytes, the intern map key.
func internHash(s []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range s {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

func internHashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// refHolds reports whether r is a valid range of this heap holding
// exactly the bytes of s. It rejects stale refs pointing past the
// current length (possible after an abandoned draft's appends were
// dropped with its backing array).
func (h *textHeap) refHolds(r valueRef, s string) bool {
	end := uint64(r.off) + uint64(r.len)
	return int(r.len) == len(s) && end <= uint64(len(h.data)) && string(h.data[r.off:end]) == s
}

func (h *textHeap) refHoldsBytes(r valueRef, s []byte) bool {
	end := uint64(r.off) + uint64(r.len)
	// string conversions in a comparison do not allocate.
	return int(r.len) == len(s) && end <= uint64(len(h.data)) && string(h.data[r.off:end]) == string(s)
}

func (h *textHeap) put(s []byte) valueRef {
	if len(s) == 0 {
		return valueRef{}
	}
	if len(s) <= maxInternLen {
		if h.intern == nil {
			h.intern = make(map[uint64]valueRef)
		}
		key := internHash(s)
		if r, ok := h.intern[key]; ok && h.refHoldsBytes(r, s) {
			return r
		}
		r := h.appendBytes(s)
		h.intern[key] = r
		return r
	}
	return h.appendBytes(s)
}

func (h *textHeap) putString(s string) valueRef {
	if len(s) == 0 {
		return valueRef{}
	}
	if len(s) <= maxInternLen {
		if h.intern == nil {
			h.intern = make(map[uint64]valueRef)
		}
		key := internHashString(s)
		if r, ok := h.intern[key]; ok && h.refHolds(r, s) {
			return r
		}
		r := h.appendString(s)
		h.intern[key] = r
		return r
	}
	return h.appendString(s)
}

func (h *textHeap) appendBytes(s []byte) valueRef {
	off := uint32(len(h.data))
	h.data = append(h.data, s...)
	return valueRef{off: off, len: uint32(len(s))}
}

func (h *textHeap) appendString(s string) valueRef {
	off := uint32(len(h.data))
	h.data = append(h.data, s...)
	return valueRef{off: off, len: uint32(len(s))}
}

func (h *textHeap) get(r valueRef) string {
	if r.len == 0 {
		return ""
	}
	return string(h.data[r.off : r.off+r.len])
}

func (h *textHeap) getBytes(r valueRef) []byte {
	if r.len == 0 {
		return nil
	}
	return h.data[r.off : r.off+r.len : r.off+r.len]
}

func (h *textHeap) size() int { return len(h.data) }

// nameDict interns tag and attribute names.
type nameDict struct {
	byName map[string]NameID
	names  []string
}

func newNameDict() *nameDict {
	return &nameDict{byName: make(map[string]NameID)}
}

func (d *nameDict) intern(s string) NameID {
	if id, ok := d.byName[s]; ok {
		return id
	}
	id := NameID(len(d.names))
	d.names = append(d.names, s)
	d.byName[s] = id
	return id
}

func (d *nameDict) find(s string) NameID {
	if id, ok := d.byName[s]; ok {
		return id
	}
	return -1
}

func (d *nameDict) lookup(id NameID) string {
	if id < 0 || int(id) >= len(d.names) {
		return ""
	}
	return d.names[id]
}

func (d *nameDict) count() int { return len(d.names) }

// Compact rebuilds the text heap keeping only referenced ranges,
// releasing garbage produced by value updates and deletions, and
// re-deduplicating every live value through the intern table. It
// returns the number of bytes reclaimed.
//
// Compact allocates fresh value and attrValue columns and a fresh heap
// rather than rewriting anything in place, so it is safe on any
// privately owned draft even when that draft still shares columns with
// a published snapshot (see cow.go: CloneForText shares attrValue,
// CloneForAttr shares value). It must still never be called on a Doc
// that has itself been published to concurrent readers: it swaps the
// Doc's own column pointers, which readers of that Doc would race with.
func (d *Doc) Compact() int {
	old := d.heap
	capHint := d.LiveHeapBytes()
	if capHint > old.size() {
		capHint = old.size() // LiveHeapBytes double-counts interned sharing
	}
	fresh := newTextHeap()
	fresh.data = make([]byte, 0, capHint)
	value := make([]valueRef, len(d.value))
	for i := range d.value {
		if d.value[i].len != 0 {
			value[i] = fresh.put(old.getBytes(d.value[i]))
		}
	}
	attrValue := make([]valueRef, len(d.attrValue))
	for i := range d.attrValue {
		if d.attrValue[i].len != 0 {
			attrValue[i] = fresh.put(old.getBytes(d.attrValue[i]))
		}
	}
	reclaimed := old.size() - fresh.size()
	d.value = value
	d.attrValue = attrValue
	d.heap = fresh
	return reclaimed
}
