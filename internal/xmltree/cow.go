package xmltree

// Copy-on-write document clones for the MVCC snapshot layer in
// internal/core. A published Doc is treated as immutable; a writer that
// wants to change it clones exactly the columns its operation writes and
// shares the rest with the published version.
//
// The text heap makes this cheap without chunking: clones share the
// underlying byte array but own their own textHeap header. The heap is
// append-only, values published in version v live entirely below that
// version's heap length, and writers are serialized by the caller, so a
// later draft's appends land at offsets no published reader ever
// dereferences (or on a freshly reallocated array when the append grows
// the backing store).
//
// The intern table (heap.go) is shared across clones by pointer: it is
// written only by the single serialized writer and never read on read
// paths, so sharing is race-free. Entries can go stale — an abandoned
// draft's appends vanish with its heap header — which is why every hit
// is verified against the current heap bytes before being trusted.
//
// Compact allocates fresh value/attrValue columns and a fresh heap (it
// rewrites nothing in place), so the writer may compact any privately
// owned draft — including one that still shares columns with a
// published snapshot — but must never compact a Doc that has itself
// been published to concurrent readers.

// CloneForText returns a copy of d that owns its value column and heap
// header and shares every other column (structure, names, attributes)
// with d. SetText on the clone leaves d unchanged.
func (d *Doc) CloneForText() *Doc {
	c := *d
	c.value = append([]valueRef(nil), d.value...)
	c.heap = d.heap.cloneHeader()
	return &c
}

// CloneForAttr returns a copy of d that owns its attrValue column and
// heap header and shares every other column with d. SetAttrValue on the
// clone leaves d unchanged.
func (d *Doc) CloneForAttr() *Doc {
	c := *d
	c.attrValue = append([]valueRef(nil), d.attrValue...)
	c.heap = d.heap.cloneHeader()
	return &c
}

// CloneForStructure returns a copy of d that owns every column, the name
// dictionary, and the heap header. DeleteSubtree and InsertChildren
// splice columns in place and intern new names, so structural edits need
// the full copy.
func (d *Doc) CloneForStructure() *Doc {
	return &Doc{
		kind:      append([]Kind(nil), d.kind...),
		size:      append([]int32(nil), d.size...),
		level:     append([]int32(nil), d.level...),
		parent:    append([]NodeID(nil), d.parent...),
		name:      append([]NameID(nil), d.name...),
		value:     append([]valueRef(nil), d.value...),
		attrStart: append([]int32(nil), d.attrStart...),
		attrName:  append([]NameID(nil), d.attrName...),
		attrValue: append([]valueRef(nil), d.attrValue...),
		names:     d.names.clone(),
		heap:      d.heap.cloneHeader(),
	}
}

func (nd *nameDict) clone() *nameDict {
	byName := make(map[string]NameID, len(nd.byName))
	for k, v := range nd.byName {
		byName[k] = v
	}
	return &nameDict{byName: byName, names: append([]string(nil), nd.names...)}
}
