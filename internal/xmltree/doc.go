// Package xmltree implements the XML document storage substrate the value
// indices are built on: a columnar node table in pre-order with the
// pre/size/level range encoding used by MonetDB/XQuery (Boncz et al.,
// SIGMOD 2006), a shared text heap, a tag-name dictionary, and a separate
// attribute table.
//
// The encoding supports the operations the paper's index create/update
// algorithms (Figures 7 and 8) rely on: O(1) first-child / next-sibling /
// parent navigation, O(1) ancestor tests via range containment, and
// efficient depth-first traversal. Value updates are O(1); structural
// updates (subtree delete/insert) splice the columnar arrays.
package xmltree

import (
	"fmt"
	"unsafe"
)

// Kind classifies a node in the tree node table. Attribute nodes live in a
// separate table (see Attr) and are not Kinds of tree nodes.
type Kind uint8

const (
	// Document is the root node of a document; exactly one per Document
	// value, always NodeID 0.
	Document Kind = iota
	// Element is an XML element node.
	Element
	// Text is a text node. Its Value is the character data.
	Text
	// Comment is an XML comment node. Comments do not contribute to the
	// string value of their ancestors (XDM semantics).
	Comment
	// PI is a processing-instruction node. Like comments, PIs do not
	// contribute to ancestor string values.
	PI
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Document:
		return "document"
	case Element:
		return "element"
	case Text:
		return "text"
	case Comment:
		return "comment"
	case PI:
		return "pi"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NodeID identifies a tree node by its pre-order rank within its Document.
// The document node is always 0. NodeIDs are dense: 0..NumNodes()-1.
type NodeID int32

// InvalidNode is returned by navigation functions when no node exists in
// the requested direction.
const InvalidNode NodeID = -1

// AttrID identifies an attribute by its rank in the attribute table, which
// is ordered by owner element pre-order rank.
type AttrID int32

// InvalidAttr is returned when an attribute lookup fails.
const InvalidAttr AttrID = -1

// NameID indexes the tag-name dictionary shared by a Document.
type NameID int32

// valueRef locates a byte range in the text heap.
type valueRef struct {
	off uint32
	len uint32
}

// Doc is an XML document stored columnar in pre-order. The zero value is
// not usable; construct documents with a Builder or the xmlparse package.
type Doc struct {
	kind   []Kind
	size   []int32 // number of descendants (self excluded)
	level  []int32
	parent []NodeID
	name   []NameID   // element tag / PI target; -1 otherwise
	value  []valueRef // text/comment/PI content; zero otherwise

	// Attribute table, sorted by owner. attrStart[pre] .. attrStart[pre+1]
	// indexes the owner's attributes (attrStart has NumNodes()+1 entries).
	attrStart []int32
	attrName  []NameID
	attrValue []valueRef

	names *nameDict
	heap  *textHeap
}

// NumNodes reports the number of tree nodes (document, element, text,
// comment, PI) in the document.
func (d *Doc) NumNodes() int { return len(d.kind) }

// NumAttrs reports the number of attribute nodes in the document.
func (d *Doc) NumAttrs() int { return len(d.attrName) }

// Root returns the document node.
func (d *Doc) Root() NodeID { return 0 }

// Kind reports the kind of node n.
func (d *Doc) Kind(n NodeID) Kind { return d.kind[n] }

// Size reports the number of descendants of n (excluding n itself). The
// subtree of n occupies pre-order ranks n..n+Size(n).
func (d *Doc) Size(n NodeID) int32 { return d.size[n] }

// Level reports the depth of n; the document node has level 0.
func (d *Doc) Level(n NodeID) int32 { return d.level[n] }

// Parent returns the parent of n, or InvalidNode for the document node.
func (d *Doc) Parent(n NodeID) NodeID {
	if n == 0 {
		return InvalidNode
	}
	return d.parent[n]
}

// Name returns the tag name of an element or the target of a PI, and ""
// for other kinds.
func (d *Doc) Name(n NodeID) string {
	id := d.name[n]
	if id < 0 {
		return ""
	}
	return d.names.lookup(id)
}

// NameID returns the dictionary id of n's tag name, or -1 if n has none.
func (d *Doc) NameID(n NodeID) NameID { return d.name[n] }

// NameIDOf returns the dictionary id for tag, or -1 if the tag does not
// occur in the document.
func (d *Doc) NameIDOf(tag string) NameID { return d.names.find(tag) }

// Value returns the character data of a text, comment, or PI node, and ""
// for document and element nodes (use StringValue for those).
func (d *Doc) Value(n NodeID) string { return d.heap.get(d.value[n]) }

// ValueBytes is Value without the string copy; the returned slice aliases
// the document heap and must not be modified.
func (d *Doc) ValueBytes(n NodeID) []byte { return d.heap.getBytes(d.value[n]) }

// IsAncestorOf reports whether a is a proper ancestor of n, using the
// pre/size range containment test.
func (d *Doc) IsAncestorOf(a, n NodeID) bool {
	return a < n && n <= a+NodeID(d.size[a])
}

// Contains reports whether n lies in the subtree rooted at a (including
// a itself).
func (d *Doc) Contains(a, n NodeID) bool {
	return a <= n && n <= a+NodeID(d.size[a])
}

// Attr describes one attribute node.
type Attr struct {
	Owner NodeID
	Name  string
	Value string
}

// AttrRange returns the half-open range [lo, hi) of AttrIDs owned by
// element n.
func (d *Doc) AttrRange(n NodeID) (lo, hi AttrID) {
	return AttrID(d.attrStart[n]), AttrID(d.attrStart[n+1])
}

// AttrOwner returns the element owning attribute a.
func (d *Doc) AttrOwner(a AttrID) NodeID {
	// attrStart is monotone; binary search for the owner whose range
	// contains a.
	lo, hi := 0, d.NumNodes()
	for lo < hi {
		mid := (lo + hi) / 2
		if d.attrStart[mid+1] <= int32(a) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return NodeID(lo)
}

// AttrName returns the name of attribute a.
func (d *Doc) AttrName(a AttrID) string { return d.names.lookup(d.attrName[a]) }

// AttrNameID returns the dictionary id of attribute a's name.
func (d *Doc) AttrNameID(a AttrID) NameID { return d.attrName[a] }

// AttrValue returns the value of attribute a.
func (d *Doc) AttrValue(a AttrID) string { return d.heap.get(d.attrValue[a]) }

// AttrValueBytes is AttrValue without the string copy; the slice aliases
// the document heap.
func (d *Doc) AttrValueBytes(a AttrID) []byte { return d.heap.getBytes(d.attrValue[a]) }

// FindAttr returns the id of the attribute of element n named name, or
// InvalidAttr.
func (d *Doc) FindAttr(n NodeID, name string) AttrID {
	id := d.names.find(name)
	if id < 0 {
		return InvalidAttr
	}
	lo, hi := d.AttrRange(n)
	for a := lo; a < hi; a++ {
		if d.attrName[a] == id {
			return a
		}
	}
	return InvalidAttr
}

// HeapBytes reports the current size of the text heap in bytes, including
// garbage left behind by value updates.
func (d *Doc) HeapBytes() int { return d.heap.size() }

// DeadHeapBytes reports the heap bytes abandoned by value overwrites and
// subtree deletions since the last Compact — a conservative upper bound
// (an abandoned range may still be live through interning) that callers
// use to decide when compaction pays.
func (d *Doc) DeadHeapBytes() int { return d.heap.dead }

// LiveHeapBytes reports the number of heap bytes currently referenced by
// nodes and attributes. Interned values shared by several references are
// counted once per reference, so this can exceed HeapBytes on heavily
// deduplicated documents.
func (d *Doc) LiveHeapBytes() int {
	var n int
	for _, v := range d.value {
		n += int(v.len)
	}
	for _, v := range d.attrValue {
		n += int(v.len)
	}
	return n
}

// MemBytes reports the document's in-memory footprint: the columnar node
// and attribute tables (at slice capacity), the text heap's backing
// array, and the name dictionary. The intern table is excluded — it is
// shared writer-side bookkeeping, not reader-hot state.
func (d *Doc) MemBytes() int {
	b := cap(d.kind)*int(unsafe.Sizeof(Kind(0))) +
		cap(d.size)*4 + cap(d.level)*4 +
		cap(d.parent)*int(unsafe.Sizeof(NodeID(0))) +
		cap(d.name)*int(unsafe.Sizeof(NameID(0))) +
		cap(d.value)*int(unsafe.Sizeof(valueRef{})) +
		cap(d.attrStart)*4 +
		cap(d.attrName)*int(unsafe.Sizeof(NameID(0))) +
		cap(d.attrValue)*int(unsafe.Sizeof(valueRef{})) +
		cap(d.heap.data)
	for _, s := range d.names.names {
		b += len(s) + 16 // string header
	}
	b += len(d.names.byName) * 48 // rough per-entry map cost
	return b
}

// Stats summarises the node population of a document; it backs Table 1 of
// the paper.
type Stats struct {
	Nodes    int // tree nodes + attributes ("Total Nodes" in Table 1)
	Tree     int // tree nodes only
	Elements int
	Texts    int
	Attrs    int
	Comments int
	PIs      int
	MaxLevel int
}

// CollectStats scans the node table and returns population counts.
func (d *Doc) CollectStats() Stats {
	var s Stats
	s.Tree = d.NumNodes()
	s.Attrs = d.NumAttrs()
	s.Nodes = s.Tree + s.Attrs
	for i := range d.kind {
		switch d.kind[i] {
		case Element:
			s.Elements++
		case Text:
			s.Texts++
		case Comment:
			s.Comments++
		case PI:
			s.PIs++
		}
		if l := int(d.level[i]); l > s.MaxLevel {
			s.MaxLevel = l
		}
	}
	return s
}
