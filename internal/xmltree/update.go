package xmltree

import (
	"errors"
	"fmt"
)

// ErrNotText is returned by SetText when the target cannot carry character
// data.
var ErrNotText = errors.New("xmltree: node has no character data")

// SetText replaces the character data of a text, comment, or PI node. The
// tree structure is unchanged; the new value is appended to the heap (the
// old range becomes garbage reclaimable with Compact).
func (d *Doc) SetText(n NodeID, data string) error {
	switch d.kind[n] {
	case Text, Comment, PI:
		old := d.value[n]
		d.value[n] = d.heap.putString(data)
		if d.value[n] != old {
			d.heap.dead += int(old.len)
		}
		return nil
	default:
		return fmt.Errorf("%w: %v node %d", ErrNotText, d.kind[n], n)
	}
}

// SetAttrValue replaces the value of attribute a.
func (d *Doc) SetAttrValue(a AttrID, value string) {
	old := d.attrValue[a]
	d.attrValue[a] = d.heap.putString(value)
	if d.attrValue[a] != old {
		d.heap.dead += int(old.len)
	}
}

// DeleteSubtree removes node n and its entire subtree (including owned
// attributes) from the document. The document node cannot be deleted.
// NodeIDs after the deleted range shift down; callers holding NodeIDs must
// treat them as invalidated.
func (d *Doc) DeleteSubtree(n NodeID) error {
	if n == 0 {
		return errors.New("xmltree: cannot delete the document node")
	}
	cnt := NodeID(d.size[n]) + 1
	end := n + cnt // one past the removed pre range

	// Shrink ancestor sizes before positions move.
	for p := d.parent[n]; p != InvalidNode; p = d.parent[p] {
		d.size[p] -= int32(cnt)
	}

	// The removed range's heap values become garbage (conservatively:
	// interned ranges may still be shared with surviving refs).
	for i := n; i < end; i++ {
		d.heap.dead += int(d.value[i].len)
	}
	for a := d.attrStart[n]; a < d.attrStart[end]; a++ {
		d.heap.dead += int(d.attrValue[a].len)
	}

	// Drop attributes owned by the removed range.
	alo, ahi := d.attrStart[n], d.attrStart[end]
	removedAttrs := ahi - alo
	if removedAttrs > 0 {
		d.attrName = append(d.attrName[:alo], d.attrName[ahi:]...)
		d.attrValue = append(d.attrValue[:alo], d.attrValue[ahi:]...)
	}
	// Splice attrStart (per-node entries) and shift the tail.
	d.attrStart = append(d.attrStart[:n], d.attrStart[end:]...)
	for i := int(n); i < len(d.attrStart); i++ {
		d.attrStart[i] -= removedAttrs
	}

	// Splice the node columns.
	d.kind = append(d.kind[:n], d.kind[end:]...)
	d.size = append(d.size[:n], d.size[end:]...)
	d.level = append(d.level[:n], d.level[end:]...)
	d.name = append(d.name[:n], d.name[end:]...)
	d.value = append(d.value[:n], d.value[end:]...)
	d.parent = append(d.parent[:n], d.parent[end:]...)

	// Re-point parents of shifted nodes. A shifted node's parent is either
	// < n (unchanged) or >= end (shifts by cnt); parents inside the removed
	// range are impossible because those children were removed with it.
	for i := int(n); i < len(d.parent); i++ {
		if d.parent[i] >= end {
			d.parent[i] -= cnt
		}
	}
	return nil
}

// InsertChildren inserts all top-level nodes of the fragment document frag
// (the children of frag's document node) as children of parent, in front
// of the child currently at index pos (pos == number of children appends).
// It returns the NodeID of the first inserted node. NodeIDs at or after
// the insertion point shift up; callers must treat held NodeIDs as
// invalidated.
func (d *Doc) InsertChildren(parent NodeID, pos int, frag *Doc) (NodeID, error) {
	switch d.kind[parent] {
	case Element, Document:
	default:
		return InvalidNode, fmt.Errorf("xmltree: cannot insert under %v node", d.kind[parent])
	}
	cnt := NodeID(frag.NumNodes()) - 1 // exclude frag's document node
	if cnt <= 0 {
		return InvalidNode, errors.New("xmltree: empty fragment")
	}

	// Locate the pre-order insertion point.
	at := parent + 1
	i := 0
	for c := d.FirstChild(parent); c != InvalidNode && i < pos; c = d.NextSibling(c) {
		at = c + NodeID(d.size[c]) + 1
		i++
	}
	if i < pos {
		return InvalidNode, fmt.Errorf("xmltree: child index %d out of range (%d children)", pos, i)
	}

	// Grow ancestor sizes.
	for p := parent; p != InvalidNode; p = d.Parent(p) {
		d.size[p] += int32(cnt)
	}

	// Map fragment name ids and heap values into this document.
	nameMap := make([]NameID, frag.names.count())
	for id, s := range frag.names.names {
		nameMap[id] = d.names.intern(s)
	}

	// Prepare inserted columns (fragment nodes 1..cnt).
	levelBase := d.level[parent] + 1
	kinds := make([]Kind, cnt)
	sizes := make([]int32, cnt)
	levels := make([]int32, cnt)
	names := make([]NameID, cnt)
	values := make([]valueRef, cnt)
	parents := make([]NodeID, cnt)
	starts := make([]int32, cnt)
	alo := d.attrStart[at]
	for f := NodeID(1); f <= cnt; f++ {
		j := f - 1
		kinds[j] = frag.kind[f]
		sizes[j] = frag.size[f]
		levels[j] = frag.level[f] - 1 + levelBase
		if id := frag.name[f]; id >= 0 {
			names[j] = nameMap[id]
		} else {
			names[j] = -1
		}
		values[j] = d.heap.put(frag.heap.getBytes(frag.value[f]))
		if fp := frag.parent[f]; fp == 0 {
			parents[j] = parent
		} else {
			parents[j] = at + fp - 1
		}
		starts[j] = alo + frag.attrStart[f] - frag.attrStart[1]
	}
	insAttrs := frag.attrStart[frag.NumNodes()] - frag.attrStart[1]

	// Splice attribute columns.
	if insAttrs > 0 {
		newAttrName := make([]NameID, 0, len(d.attrName)+int(insAttrs))
		newAttrName = append(newAttrName, d.attrName[:alo]...)
		for a := frag.attrStart[1]; a < frag.attrStart[frag.NumNodes()]; a++ {
			newAttrName = append(newAttrName, nameMap[frag.attrName[a]])
		}
		newAttrName = append(newAttrName, d.attrName[alo:]...)
		d.attrName = newAttrName

		newAttrValue := make([]valueRef, 0, len(d.attrValue)+int(insAttrs))
		newAttrValue = append(newAttrValue, d.attrValue[:alo]...)
		for a := frag.attrStart[1]; a < frag.attrStart[frag.NumNodes()]; a++ {
			newAttrValue = append(newAttrValue, d.heap.put(frag.heap.getBytes(frag.attrValue[a])))
		}
		newAttrValue = append(newAttrValue, d.attrValue[alo:]...)
		d.attrValue = newAttrValue
	}
	d.attrStart = spliceI32(d.attrStart, int(at), starts)
	for i := int(at) + len(starts); i < len(d.attrStart); i++ {
		d.attrStart[i] += insAttrs
	}

	// Splice node columns.
	d.kind = spliceKind(d.kind, int(at), kinds)
	d.size = spliceI32(d.size, int(at), sizes)
	d.level = spliceI32(d.level, int(at), levels)
	d.name = spliceName(d.name, int(at), names)
	d.value = spliceVal(d.value, int(at), values)
	d.parent = spliceNode(d.parent, int(at), parents)

	// Re-point parents of shifted tail nodes.
	for i := int(at) + int(cnt); i < len(d.parent); i++ {
		if d.parent[i] >= at {
			d.parent[i] += cnt
		}
	}
	return at, nil
}

func spliceKind(s []Kind, at int, ins []Kind) []Kind {
	out := make([]Kind, 0, len(s)+len(ins))
	out = append(out, s[:at]...)
	out = append(out, ins...)
	return append(out, s[at:]...)
}

func spliceI32(s []int32, at int, ins []int32) []int32 {
	out := make([]int32, 0, len(s)+len(ins))
	out = append(out, s[:at]...)
	out = append(out, ins...)
	return append(out, s[at:]...)
}

func spliceName(s []NameID, at int, ins []NameID) []NameID {
	out := make([]NameID, 0, len(s)+len(ins))
	out = append(out, s[:at]...)
	out = append(out, ins...)
	return append(out, s[at:]...)
}

func spliceVal(s []valueRef, at int, ins []valueRef) []valueRef {
	out := make([]valueRef, 0, len(s)+len(ins))
	out = append(out, s[:at]...)
	out = append(out, ins...)
	return append(out, s[at:]...)
}

func spliceNode(s []NodeID, at int, ins []NodeID) []NodeID {
	out := make([]NodeID, 0, len(s)+len(ins))
	out = append(out, s[:at]...)
	out = append(out, ins...)
	return append(out, s[at:]...)
}

// Validate checks the structural invariants of the node table: sizes
// partition subtrees, levels are parent+1, parents contain their children,
// and the attribute table is monotone. It is used by tests and the storage
// layer after load.
func (d *Doc) Validate() error {
	n := d.NumNodes()
	if n == 0 {
		return errors.New("xmltree: empty document")
	}
	if d.kind[0] != Document {
		return errors.New("xmltree: node 0 is not the document node")
	}
	if int(d.size[0]) != n-1 {
		return fmt.Errorf("xmltree: document size %d, want %d", d.size[0], n-1)
	}
	if len(d.attrStart) != n+1 {
		return fmt.Errorf("xmltree: attrStart has %d entries, want %d", len(d.attrStart), n+1)
	}
	for i := 1; i < n; i++ {
		id := NodeID(i)
		p := d.parent[i]
		if p < 0 || p >= id {
			return fmt.Errorf("xmltree: node %d has bad parent %d", i, p)
		}
		if !d.Contains(p, id) {
			return fmt.Errorf("xmltree: node %d outside parent %d range", i, p)
		}
		if d.level[i] != d.level[p]+1 {
			return fmt.Errorf("xmltree: node %d level %d, parent level %d", i, d.level[i], d.level[p])
		}
		if end := int(id) + int(d.size[i]); end >= n || !d.Contains(p, id+NodeID(d.size[i])) {
			return fmt.Errorf("xmltree: node %d subtree exceeds parent", i)
		}
		switch d.kind[i] {
		case Text, Comment:
			if d.size[i] != 0 {
				return fmt.Errorf("xmltree: %v node %d has descendants", d.kind[i], i)
			}
		case Document:
			return fmt.Errorf("xmltree: nested document node %d", i)
		}
		if d.attrStart[i] > d.attrStart[i+1] {
			return fmt.Errorf("xmltree: attrStart not monotone at %d", i)
		}
		if d.attrStart[i] != d.attrStart[i+1] && d.kind[i] != Element {
			return fmt.Errorf("xmltree: non-element node %d owns attributes", i)
		}
	}
	if int(d.attrStart[n]) != len(d.attrName) {
		return fmt.Errorf("xmltree: attrStart sentinel %d, want %d", d.attrStart[n], len(d.attrName))
	}
	// Children must tile each parent's range.
	for i := 0; i < n; i++ {
		id := NodeID(i)
		if d.size[i] == 0 {
			continue
		}
		covered := NodeID(0)
		for c := d.FirstChild(id); c != InvalidNode; c = d.NextSibling(c) {
			covered += NodeID(d.size[c]) + 1
		}
		if covered != NodeID(d.size[i]) {
			return fmt.Errorf("xmltree: children of %d cover %d of %d", i, covered, d.size[i])
		}
	}
	return nil
}
