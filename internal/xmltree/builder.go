package xmltree

import (
	"errors"
	"fmt"
)

// Builder constructs a Doc in document order through SAX-like events. A
// Builder may only be used for one document.
//
//	b := xmltree.NewBuilder()
//	b.StartElement("person")
//	b.Attribute("id", "p1")
//	b.Text("Arthur")
//	b.EndElement()
//	doc, err := b.Finish()
type Builder struct {
	doc      *Doc
	open     []NodeID // stack of open element (and document) nodes
	finished bool
	err      error
}

// NewBuilder returns a Builder with the document node already open.
func NewBuilder() *Builder {
	d := &Doc{
		names: newNameDict(),
		heap:  newTextHeap(),
	}
	b := &Builder{doc: d}
	b.appendNode(Document, -1, valueRef{})
	b.open = append(b.open, 0)
	return b
}

func (b *Builder) appendNode(k Kind, name NameID, v valueRef) NodeID {
	d := b.doc
	id := NodeID(len(d.kind))
	parent := InvalidNode
	level := int32(0)
	if len(b.open) > 0 {
		parent = b.open[len(b.open)-1]
		level = d.level[parent] + 1
	}
	d.kind = append(d.kind, k)
	d.size = append(d.size, 0)
	d.level = append(d.level, level)
	d.parent = append(d.parent, parent)
	d.name = append(d.name, name)
	d.value = append(d.value, v)
	d.attrStart = append(d.attrStart, int32(len(d.attrName)))
	return id
}

// StartElement opens a new element with the given tag.
func (b *Builder) StartElement(tag string) {
	if b.err != nil || b.fail(b.finished, "StartElement after Finish") {
		return
	}
	id := b.appendNode(Element, b.doc.names.intern(tag), valueRef{})
	b.open = append(b.open, id)
}

// Attribute attaches an attribute to the most recently opened element.
// It must be called before any content is added to that element.
func (b *Builder) Attribute(name, value string) {
	if b.err != nil {
		return
	}
	d := b.doc
	owner := b.open[len(b.open)-1]
	if b.fail(d.kind[owner] != Element, "Attribute outside an element") {
		return
	}
	// Attributes must be contiguous per owner: reject if content followed.
	if b.fail(NodeID(len(d.kind)-1) != owner, "Attribute after element content") {
		return
	}
	// attrStart[owner] was sealed at the owner's creation; entries for
	// later nodes pick up the grown count when they are created, so no
	// fix-up is needed here.
	d.attrName = append(d.attrName, d.names.intern(name))
	d.attrValue = append(d.attrValue, d.heap.putString(value))
}

// Text appends a text node. Adjacent Text calls produce adjacent text
// nodes (no merging); use the xmlparse package for XDM-merged parsing.
func (b *Builder) Text(data string) {
	if b.err != nil {
		return
	}
	b.appendNode(Text, -1, b.doc.heap.putString(data))
}

// TextBytes is Text for a byte slice.
func (b *Builder) TextBytes(data []byte) {
	if b.err != nil {
		return
	}
	b.appendNode(Text, -1, b.doc.heap.put(data))
}

// Comment appends a comment node.
func (b *Builder) Comment(data string) {
	if b.err != nil {
		return
	}
	b.appendNode(Comment, -1, b.doc.heap.putString(data))
}

// PI appends a processing-instruction node with the given target and data.
func (b *Builder) PI(target, data string) {
	if b.err != nil {
		return
	}
	b.appendNode(PI, b.doc.names.intern(target), b.doc.heap.putString(data))
}

// EndElement closes the most recently opened element.
func (b *Builder) EndElement() {
	if b.err != nil || b.fail(len(b.open) <= 1, "EndElement without matching StartElement") {
		return
	}
	d := b.doc
	id := b.open[len(b.open)-1]
	b.open = b.open[:len(b.open)-1]
	d.size[id] = int32(len(d.kind)) - int32(id) - 1
}

// Depth reports the number of currently open elements (excluding the
// document node).
func (b *Builder) Depth() int { return len(b.open) - 1 }

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Finish closes the document node and returns the built document. All
// elements must have been closed.
func (b *Builder) Finish() (*Doc, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.open) != 1 {
		return nil, fmt.Errorf("xmltree: Finish with %d unclosed elements", len(b.open)-1)
	}
	if b.finished {
		return nil, errors.New("xmltree: Finish called twice")
	}
	b.finished = true
	d := b.doc
	d.size[0] = int32(len(d.kind)) - 1
	// Seal attrStart with the final sentinel: attrStart[i] was recorded at
	// node i's creation as the attribute count so far, which is exactly the
	// start of i's attribute range because attributes only attach to the
	// most recently created element.
	d.attrStart = append(d.attrStart, int32(len(d.attrName)))
	b.open = nil
	return d, nil
}

func (b *Builder) fail(cond bool, msg string) bool {
	if cond {
		b.err = errors.New("xmltree: " + msg)
	}
	return cond
}
