// Package vhash implements the 32-bit XML string-value hash function H and
// the associative combination function C from Sidirourgos & Boncz,
// "Generic and updatable XML value indices covering equality and range
// lookups" (EDBT 2009), Figures 2 and 4.
//
// A hash value has the layout
//
//	bits 31..5  c-array  (27 bits) — circular-XOR accumulation of characters
//	bits  4..0  offc     (5 bits)  — the c-array offset where the NEXT
//	                                 character would be XOR-ed (an element
//	                                 of Z_27)
//
// The defining property, proven by induction in the paper, is
//
//	H(concat(a, b)) == Combine(H(a), H(b))
//
// for arbitrary byte strings a and b, and Combine is associative. This lets
// an XML database maintain the hash of every element node (whose string
// value is the concatenation of all descendant text nodes) by combining the
// already-computed hashes of its children, without re-reading text.
package vhash

// Width of the character accumulation array, in bits. The paper fixes this
// at 27 = 32 - 5: offsets live in Z_27 and need 5 bits of the word.
const (
	carrayBits = 27
	offcBits   = 5
	offcMask   = 1<<offcBits - 1 // 0b11111
	step       = 5               // offset increment per character
	charBits   = 7               // low bits of each byte that are hashed
	charMask   = 1<<charBits - 1 // 0x7f
)

// Hash computes H(s): the 32-bit hash of an XML string value.
//
// Each character contributes its 7 low bits, XOR-ed into the 27-bit c-array
// at the current offset; offsets advance by 5 and wrap modulo 27 (a
// "circular XOR"). Bits that would spill past position 26 wrap around to
// position 0. The final offset is stored in the 5 low bits of the result so
// that Combine can continue the circle.
//
// Hash of the empty string is 0, which is also the identity of Combine.
func Hash(s []byte) uint32 {
	var hval uint32
	var offset uint32
	for _, b := range s {
		c := uint32(b) & charMask
		hval ^= c << offset
		if offset > carrayBits-charBits { // spill past bit 26: wrap to bit 0
			hval ^= c >> (carrayBits - offset)
		}
		offset += step
		if offset >= carrayBits {
			offset -= carrayBits
		}
	}
	// The shift discards any garbage accumulated above bit 26 by the
	// unmasked spills; the c-array lands in bits 31..5.
	hval <<= offcBits
	return hval | offset
}

// HashString is Hash for a string without copying.
func HashString(s string) uint32 {
	var hval uint32
	var offset uint32
	for i := 0; i < len(s); i++ {
		c := uint32(s[i]) & charMask
		hval ^= c << offset
		if offset > carrayBits-charBits {
			hval ^= c >> (carrayBits - offset)
		}
		offset += step
		if offset >= carrayBits {
			offset -= carrayBits
		}
	}
	hval <<= offcBits
	return hval | offset
}

// Combine computes C(left, right): the hash of the concatenation of the two
// strings whose hashes are left and right.
//
// The right operand's c-array is rotated left (in the 27-bit circle) by the
// left operand's offset, XOR-ed into the left c-array, and the offsets add
// modulo 27. Combine is associative and has identity 0 (= Hash(nil)).
func Combine(left, right uint32) uint32 {
	cl := left &^ offcMask  // c-array of left, bits 31..5
	cr := right &^ offcMask // c-array of right, bits 31..5
	ol := left & offcMask   // offset of left, 0..26
	or := right & offcMask

	// Circular left shift of the 27-bit c-array stored in bits 31..5:
	// bits that overflow bit 31 fall off the register (correct, they are
	// the rotated-out high bits) and re-enter at bit 5 via the masked
	// right shift.
	h := cl ^ ((cr << ol) | ((cr >> (carrayBits - ol)) &^ offcMask))
	off := ol + or
	if off >= carrayBits {
		off -= carrayBits
	}
	return h | off
}

// CombineAll folds Combine over hs left to right, returning the hash of the
// concatenation of all underlying strings. CombineAll() == 0 == Hash(nil).
func CombineAll(hs ...uint32) uint32 {
	var h uint32
	for _, x := range hs {
		h = Combine(h, x)
	}
	return h
}

// Identity is the hash of the empty string and the neutral element of
// Combine: Combine(Identity, h) == Combine(h, Identity) == h.
const Identity uint32 = 0

// Offset reports the offc field of h: the c-array position (in Z_27) where
// the next character of a continued string would be XOR-ed. Equivalently,
// 5 * length(s) mod 27 for h = Hash(s).
func Offset(h uint32) uint32 { return h & offcMask }

// CArray reports the 27-bit character accumulation array of h, right
// aligned (bits 26..0).
func CArray(h uint32) uint32 { return h >> offcBits }
