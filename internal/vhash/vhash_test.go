package vhash

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHashEmpty(t *testing.T) {
	if got := Hash(nil); got != 0 {
		t.Errorf("Hash(nil) = %#x, want 0", got)
	}
	if got := Hash([]byte{}); got != 0 {
		t.Errorf("Hash(empty) = %#x, want 0", got)
	}
	if got := HashString(""); got != 0 {
		t.Errorf(`HashString("") = %#x, want 0`, got)
	}
}

func TestHashSingleChar(t *testing.T) {
	// One character c: c-array = c at positions 0..6, offset = 5.
	// hval = (c << 5) | 5.
	for _, c := range []byte{'A', 'z', '0', ' ', 0x7f, 0x00} {
		want := (uint32(c)&0x7f)<<5 | 5
		if got := Hash([]byte{c}); got != want {
			t.Errorf("Hash(%q) = %#x, want %#x", c, got, want)
		}
	}
}

func TestHashHighBitMasked(t *testing.T) {
	// Only the 7 low bits of each byte participate.
	if Hash([]byte{0x41}) != Hash([]byte{0xc1}) {
		t.Errorf("Hash must mask byte to 7 bits")
	}
}

// TestHashArthurPaperExample reproduces Figure 3 of the paper: the hash of
// "Arthur" has offc = 3 and the c-array shown in the figure.
func TestHashArthurPaperExample(t *testing.T) {
	h := HashString("Arthur")
	if off := Offset(h); off != 3 {
		t.Errorf("Offset(H(Arthur)) = %d, want 3", off)
	}
	// Recompute the c-array independently, straight from the figure's
	// procedure: XOR the 7-bit chars at offsets 0,5,10,15,20,25 with
	// wraparound at 27.
	chars := []byte("Arthur")
	var want uint32
	off := 0
	for _, c := range chars {
		v := uint32(c) & 0x7f
		for bit := 0; bit < 7; bit++ {
			if v&(1<<bit) != 0 {
				want ^= 1 << uint((off+bit)%27)
			}
		}
		off = (off + 5) % 27
	}
	if got := CArray(h); got != want {
		t.Errorf("CArray(H(Arthur)) = %#b, want %#b", got, want)
	}
}

func TestOffsetIsLengthTimes5Mod27(t *testing.T) {
	for n := 0; n <= 100; n++ {
		s := strings.Repeat("x", n)
		want := uint32(5*n) % 27
		if got := Offset(HashString(s)); got != want {
			t.Errorf("Offset(H(x^%d)) = %d, want %d", n, got, want)
		}
	}
}

func TestHashStringMatchesHash(t *testing.T) {
	f := func(s string) bool { return HashString(s) == Hash([]byte(s)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCombineProperty is the defining property of C (paper eq. before Fig 4):
// H(concat(a,b)) == C(H(a), H(b)).
func TestCombineProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		return Hash(append(append([]byte{}, a...), b...)) == Combine(Hash(a), Hash(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCombinePropertyLong exercises strings much longer than the 27-bit
// circle so every offset and wraparound case is hit.
func TestCombinePropertyLong(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		a := randBytes(rng, rng.Intn(200))
		b := randBytes(rng, rng.Intn(200))
		want := Hash(append(append([]byte{}, a...), b...))
		if got := Combine(Hash(a), Hash(b)); got != want {
			t.Fatalf("trial %d: Combine(H(%q),H(%q)) = %#x, want %#x", trial, a, b, got, want)
		}
	}
}

// TestCombineAssociativity is eq.1 of the paper: arbitrary parenthesisation
// of C over a sequence of hashes yields the same value.
func TestCombineAssociativity(t *testing.T) {
	f := func(a, b, c []byte) bool {
		ha, hb, hc := Hash(a), Hash(b), Hash(c)
		return Combine(Combine(ha, hb), hc) == Combine(ha, Combine(hb, hc))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCombineIdentity(t *testing.T) {
	f := func(a []byte) bool {
		h := Hash(a)
		return Combine(Identity, h) == h && Combine(h, Identity) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCombineAllFoldsLeft checks CombineAll against H of the concatenation
// of many pieces — the n-ary version of the defining property.
func TestCombineAllFoldsLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(10)
		var cat []byte
		hs := make([]uint32, n)
		for i := 0; i < n; i++ {
			p := randBytes(rng, rng.Intn(40))
			cat = append(cat, p...)
			hs[i] = Hash(p)
		}
		if got, want := CombineAll(hs...), Hash(cat); got != want {
			t.Fatalf("trial %d: CombineAll = %#x, want %#x", trial, got, want)
		}
	}
}

// TestUpdateScenarioPaperSection3 walks the paper's Section 3 update
// example: the person document where <family> changes from "Dent" to
// "Prefect", and the ancestors' hashes are rebuilt with C instead of
// re-hashing reconstructed strings.
func TestUpdateScenarioPaperSection3(t *testing.T) {
	hFirst := HashString("Arthur")
	hFamily := HashString("Prefect")
	hName := Combine(hFirst, hFamily)
	if want := HashString("ArthurPrefect"); hName != want {
		t.Fatalf("h<name> = %#x, want %#x", hName, want)
	}
	hBirthday := HashString("1966-09-26")
	hAge := Combine(HashString("4"), HashString("2"))
	hWeight := CombineAll(HashString("78"), HashString("."), HashString("230"))
	hPerson := Combine(hName, Combine(hBirthday, Combine(hAge, hWeight)))
	if want := HashString("ArthurPrefect1966-09-264278.230"); hPerson != want {
		t.Fatalf("h<person> = %#x, want %#x", hPerson, want)
	}
}

// TestMixedContentAge checks the paper's introduction example: the string
// value of <age><decades>4</decades>2<years/></age> is "42" and hashes
// equal to a plain text node "42".
func TestMixedContentAge(t *testing.T) {
	if Combine(HashString("4"), HashString("2")) != HashString("42") {
		t.Error("mixed-content 4+2 must hash like 42")
	}
}

// TestKnown27StrideCollision documents the failure mode the paper observes
// on Wiki URLs: characters differing at positions exactly 27 apart in the
// 5-bit stride cycle can cancel. Two strings whose differing character
// repeats with period 27*k in offset-space collide.
func TestKnown27StrideCollision(t *testing.T) {
	// After 27 characters the offset returns to its start (27*5 mod 27 == 0
	// every 27 chars). A character XOR-ed twice at the same offset cancels,
	// so two strings that differ by a transposition 27 apart... simplest
	// demonstrable collision: s1 has 'a' at i and 'b' at i+27, s2 swaps
	// them; both XOR 'a' and 'b' at the same offset.
	base := []byte(strings.Repeat("http://www.example.o/", 3))[:54]
	s1 := append([]byte{}, base...)
	s2 := append([]byte{}, base...)
	s1[0], s1[27] = 'a', 'b'
	s2[0], s2[27] = 'b', 'a'
	if string(s1) == string(s2) {
		t.Fatal("test strings must differ")
	}
	if Hash(s1) != Hash(s2) {
		t.Errorf("expected 27-stride collision: H(%q)=%#x H(%q)=%#x", s1, Hash(s1), s2, Hash(s2))
	}
}

func TestCArrayOffsetRoundTrip(t *testing.T) {
	f := func(s string) bool {
		h := HashString(s)
		return h == CArray(h)<<5|Offset(h) && Offset(h) < 27
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDistributionSmoke is a light stability check: hashing the decimal
// representations of 0..9999 should yield nearly all-distinct values.
func TestDistributionSmoke(t *testing.T) {
	seen := make(map[uint32][]string)
	collisions := 0
	for i := 0; i < 10000; i++ {
		s := itoa(i)
		h := HashString(s)
		if prev := seen[h]; len(prev) > 0 {
			collisions++
		}
		seen[h] = append(seen[h], s)
	}
	if collisions > 100 { // <1% collisions expected on short numerics
		t.Errorf("too many collisions among 10000 short numerics: %d", collisions)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

func BenchmarkHash64B(b *testing.B) {
	s := []byte(strings.Repeat("abcdefgh", 8))
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		sink32 = Hash(s)
	}
}

func BenchmarkHash1KB(b *testing.B) {
	s := []byte(strings.Repeat("abcdefgh", 128))
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		sink32 = Hash(s)
	}
}

func BenchmarkCombine(b *testing.B) {
	l, r := HashString("Arthur"), HashString("Dent")
	for i := 0; i < b.N; i++ {
		sink32 = Combine(l, r)
	}
}

var sink32 uint32
