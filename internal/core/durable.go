package core

// Durability: a write-ahead log under the snapshot machinery, so updates
// survive crashes without paying a full snapshot rewrite per batch.
//
// Every mutating entry point (UpdateText(s), UpdateAttr, DeleteSubtree,
// InsertChildren — and therefore every transaction commit, which funnels
// through UpdateTexts) appends one logical record to the attached WAL
// after validating its arguments and before touching any in-memory
// state. Records reference nodes by their pre-order NodeID/AttrID at the
// time of the operation: replay applies records in their original order
// against the snapshot state, so the ids resolve to the same nodes they
// named originally, even across structural updates that shift pre ranks.
//
// Snapshot/log pairing uses checkpoint generations. Checkpoint writes a
// snapshot stamped with generation g+1 (atomically, via rename), resets
// the log, and writes a RecCheckpoint marker carrying g+1 as the log's
// first record. Recovery loads the snapshot (generation gs), reads the
// log's marker generation gl, and:
//
//   - gl == gs: the log extends this snapshot — replay its tail;
//   - gl <  gs: the log is stale (crash landed between the snapshot
//     rename and the log reset) — every record is already contained in
//     the snapshot, so the log is discarded and reset;
//   - gl >  gs: the snapshot is older than the log expects (e.g. it was
//     restored from a backup) — replaying would corrupt, so recovery
//     refuses with an error.
//
// A torn record tail — the crash case — is detected by the WAL's CRC
// framing and truncated: recovery yields exactly the state as of the
// last fully durable record, never a half-applied one.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/storage"
	"repro/internal/xmltree"
)

// ErrNoWAL is returned by Checkpoint when no write-ahead log is
// attached.
var ErrNoWAL = errors.New("core: no write-ahead log attached")

// ErrStaleSnapshot is returned by OpenDurable when the log was written
// against a newer snapshot than the one on disk.
var ErrStaleSnapshot = errors.New("core: snapshot is older than the write-ahead log expects")

// ErrVersionBeforeSnapshot is returned by OpenAt when the requested
// version predates the snapshot: the records that produced it were
// compacted away by a checkpoint, so that state can no longer be
// reconstructed from this snapshot/log pair.
var ErrVersionBeforeSnapshot = errors.New("core: requested version predates the snapshot (compacted by a checkpoint)")

// ErrVersionInFuture is returned by OpenAt when the requested version is
// newer than the durable log's last record.
var ErrVersionInFuture = errors.New("core: requested version is newer than the durable log")

// ErrVersionGap is returned by ApplyShippedRecord when a shipped record
// does not extend the current version by exactly one: the follower has
// missed or duplicated a record and must resynchronise instead of
// applying out of order.
var ErrVersionGap = errors.New("core: shipped record does not extend the current version")

// --- record payload codecs ---

// recDecoder is a cursor over a record payload. All fields are uvarints
// or length-prefixed byte strings.
type recDecoder struct {
	p   []byte
	off int
	err error
}

func (d *recDecoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p[d.off:])
	if n <= 0 {
		d.err = errors.New("core: truncated WAL record field")
		return 0
	}
	d.off += n
	return v
}

func (d *recDecoder) bytes() []byte {
	n := int(d.uv())
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.p) {
		d.err = errors.New("core: truncated WAL record bytes")
		return nil
	}
	out := d.p[d.off : d.off+n]
	d.off += n
	return out
}

func (d *recDecoder) rest() []byte {
	out := d.p[d.off:]
	d.off = len(d.p)
	return out
}

// recEncoder builds a record payload in a right-sized buffer — records
// are usually tiny (a handful of varints plus the new values), so the
// snapshot codec's 64 KiB streaming buffer would dominate the cost of a
// durable update.
type recEncoder struct{ b []byte }

func (e *recEncoder) uv(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *recEncoder) str(s string) { e.uv(uint64(len(s))); e.b = append(e.b, s...) }
func (e *recEncoder) raw(p []byte) { e.b = append(e.b, p...) }

func encodeTextBatch(updates []TextUpdate) []byte {
	size := 10
	for _, u := range updates {
		size += len(u.Value) + 2*binary.MaxVarintLen64
	}
	e := recEncoder{b: make([]byte, 0, size)}
	e.uv(uint64(len(updates)))
	for _, u := range updates {
		e.uv(uint64(u.Node))
		e.str(u.Value)
	}
	return e.b
}

func decodeTextBatch(p []byte) ([]TextUpdate, error) {
	d := &recDecoder{p: p}
	n := int(d.uv())
	if d.err != nil {
		return nil, d.err
	}
	if n < 0 || n > len(p)/2 { // each update is >= 2 bytes encoded
		return nil, fmt.Errorf("core: implausible text batch size %d", n)
	}
	updates := make([]TextUpdate, 0, n)
	for i := 0; i < n; i++ {
		node := xmltree.NodeID(d.uv())
		val := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		updates = append(updates, TextUpdate{Node: node, Value: string(val)})
	}
	return updates, d.err
}

func encodeAttrUpdate(a xmltree.AttrID, value string) []byte {
	e := recEncoder{b: make([]byte, 0, len(value)+2*binary.MaxVarintLen64)}
	e.uv(uint64(a))
	e.str(value)
	return e.b
}

func decodeAttrUpdate(p []byte) (xmltree.AttrID, string, error) {
	d := &recDecoder{p: p}
	a := xmltree.AttrID(d.uv())
	val := d.bytes()
	return a, string(val), d.err
}

func encodeDelete(n xmltree.NodeID) []byte {
	e := recEncoder{b: make([]byte, 0, binary.MaxVarintLen64)}
	e.uv(uint64(n))
	return e.b
}

func decodeDelete(p []byte) (xmltree.NodeID, error) {
	d := &recDecoder{p: p}
	n := xmltree.NodeID(d.uv())
	return n, d.err
}

func encodeInsert(parent xmltree.NodeID, pos int, frag *xmltree.Doc) ([]byte, error) {
	e := recEncoder{}
	e.uv(uint64(parent))
	e.uv(uint64(pos))
	var b bytes.Buffer
	if _, err := frag.WriteTo(&b); err != nil {
		return nil, err
	}
	e.raw(b.Bytes())
	return e.b, nil
}

func decodeInsert(p []byte) (xmltree.NodeID, int, *xmltree.Doc, error) {
	d := &recDecoder{p: p}
	parent := xmltree.NodeID(d.uv())
	pos := int(d.uv())
	if d.err != nil {
		return 0, 0, nil, d.err
	}
	frag, err := xmltree.ReadDoc(bytes.NewReader(d.rest()))
	if err != nil {
		return 0, 0, nil, err
	}
	return parent, pos, frag, nil
}

func encodeCheckpoint(gen uint64) []byte {
	e := recEncoder{b: make([]byte, 0, binary.MaxVarintLen64)}
	e.uv(gen)
	return e.b
}

func decodeCheckpoint(p []byte) (uint64, error) {
	d := &recDecoder{p: p}
	gen := d.uv()
	return gen, d.err
}

// --- logging hooks (called by the mutators in update.go, under wmu) ---

// logRecord appends one record to the attached WAL, if any. Called after
// argument validation and before any in-memory mutation, so the log
// contains exactly the operations that were applied, in order.
func (ix *Indexes) logRecord(kind storage.RecordKind, payload []byte) error {
	if ix.wal == nil {
		return nil
	}
	return ix.wal.Append(kind, payload)
}

// --- replay ---

// ApplyLogRecord decodes and applies one WAL record through the
// non-logging update paths. It is the replay half of recovery; applying
// a record that was logged by a hook on the same state is exactly the
// original mutation. Each replayed record runs through the same
// clone-apply-publish cycle as a live mutation, so partially decoded or
// failing records leave the published state untouched. Checkpoint
// markers are no-ops here (recovery interprets them before replay).
func (ix *Indexes) ApplyLogRecord(rec storage.Record) error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	draft, err := ix.cur.Load().replayRecord(rec)
	if err != nil {
		return err
	}
	if draft != nil {
		ix.publish(draft)
		ix.notifyCommit(draft.version, rec.Kind, RecordOps(rec.Kind, rec.Payload), rec.Payload)
	}
	return nil
}

// ApplyShippedRecord applies one log-shipped commit record at an exact
// version boundary: the record must publish version next, which must be
// the current version + 1 (checked under the writer mutex, so concurrent
// appliers cannot interleave between check and publish). Unlike
// ApplyLogRecord — whose records are already in the local log — a
// shipped record arrives from elsewhere (a leader's WATCH stream or WAL
// file), so it is appended to the attached write-ahead log, if any,
// before the draft is published: a follower's own snapshot/log pair then
// recovers to exactly the prefix of the leader's history it durably
// applied, and its commit hook re-publishes the stream for downstream
// subscribers.
func (ix *Indexes) ApplyShippedRecord(next uint64, rec storage.Record) error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	cur := ix.cur.Load()
	if next != cur.version+1 {
		return fmt.Errorf("%w: at version %d, shipped record publishes %d", ErrVersionGap, cur.version, next)
	}
	draft, err := cur.replayRecord(rec)
	if err != nil {
		return err
	}
	if draft == nil {
		return fmt.Errorf("core: shipped record kind %v is not a commit", rec.Kind)
	}
	if err := ix.logRecord(rec.Kind, rec.Payload); err != nil {
		return err
	}
	ix.publish(draft)
	ix.notifyCommit(draft.version, rec.Kind, RecordOps(rec.Kind, rec.Payload), rec.Payload)
	return nil
}

// replayRecord validates and applies one record against a draft cloned
// from s, returning the draft (nil for marker records).
func (s *Snapshot) replayRecord(rec storage.Record) (*Snapshot, error) {
	switch rec.Kind {
	case storage.RecCheckpoint:
		return nil, nil
	case storage.RecTextBatch:
		updates, err := decodeTextBatch(rec.Payload)
		if err != nil {
			return nil, err
		}
		if err := s.validateTexts(updates); err != nil {
			return nil, fmt.Errorf("core: replaying text batch: %w", err)
		}
		draft := s.cloneForText()
		if err := draft.applyTexts(updates); err != nil {
			return nil, err
		}
		return draft, nil
	case storage.RecAttrUpdate:
		a, value, err := decodeAttrUpdate(rec.Payload)
		if err != nil {
			return nil, err
		}
		if err := s.validateAttr(a); err != nil {
			return nil, fmt.Errorf("core: replaying attr update: %w", err)
		}
		draft := s.cloneForAttr()
		draft.applyAttr(a, value)
		return draft, nil
	case storage.RecDelete:
		n, err := decodeDelete(rec.Payload)
		if err != nil {
			return nil, err
		}
		if err := s.validateDelete(n); err != nil {
			return nil, fmt.Errorf("core: replaying delete: %w", err)
		}
		draft := s.cloneForStructure()
		if err := draft.applyDelete(n); err != nil {
			return nil, err
		}
		return draft, nil
	case storage.RecInsert:
		parent, pos, frag, err := decodeInsert(rec.Payload)
		if err != nil {
			return nil, err
		}
		if err := s.validateInsert(parent, pos, frag); err != nil {
			return nil, fmt.Errorf("core: replaying insert: %w", err)
		}
		draft := s.cloneForStructure()
		if _, err := draft.applyInsert(parent, pos, frag); err != nil {
			return nil, err
		}
		return draft, nil
	default:
		return nil, fmt.Errorf("core: unknown WAL record kind %v", rec.Kind)
	}
}

// --- durable lifecycle ---

// StartDurable attaches a fresh write-ahead log to the index set and
// writes the initial checkpoint: the current state becomes the recovery
// baseline at snapshotPath, and every subsequent mutation is logged to
// walPath. syncEvery batches fsyncs (see storage.WAL); <= 1 syncs every
// record.
func (ix *Indexes) StartDurable(snapshotPath, walPath string, syncEvery int) error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if ix.wal != nil {
		return errors.New("core: a write-ahead log is already attached")
	}
	w, err := storage.CreateWAL(walPath, syncEvery)
	if err != nil {
		return err
	}
	ix.wal = w
	ix.snapshotPath = snapshotPath
	if err := ix.checkpointLocked(snapshotPath); err != nil {
		ix.wal = nil
		w.Close()
		return err
	}
	return nil
}

// OpenDurable recovers a durable index set: it loads the snapshot,
// replays the write-ahead log's tail against it (discarding a stale log
// and truncating a torn one), verifies the recovered leaf state, and
// leaves the log attached for further updates. syncEvery batches fsyncs
// as in StartDurable.
func OpenDurable(snapshotPath, walPath string, syncEvery int) (*Indexes, error) {
	ix, err := Load(snapshotPath)
	if err != nil {
		return nil, err
	}
	w, records, err := storage.OpenWAL(walPath, syncEvery)
	if err != nil {
		return nil, err
	}
	fail := func(e error) (*Indexes, error) {
		w.Close()
		return nil, e
	}

	// Locate the last checkpoint marker; records before it (and the
	// marker itself) are contained in some snapshot already.
	logGen, tail, err := splitAtCheckpoint(records)
	if err != nil {
		return fail(err)
	}

	switch {
	case logGen > ix.walGen.Load():
		return fail(fmt.Errorf("%w: snapshot generation %d, log generation %d", ErrStaleSnapshot, ix.walGen.Load(), logGen))
	case logGen < ix.walGen.Load():
		// The crash landed between the checkpoint's snapshot rename and
		// its log reset: every logged record is already in the snapshot.
		// Discard the log and restamp it with the snapshot's generation.
		if err := w.Reset(); err != nil {
			return fail(err)
		}
		if err := w.Append(storage.RecCheckpoint, encodeCheckpoint(ix.walGen.Load())); err != nil {
			return fail(err)
		}
	default:
		for _, rec := range tail {
			if err := ix.ApplyLogRecord(rec); err != nil {
				return fail(err)
			}
		}
		// Keep the replayed tail: it is the committed-change stream
		// between the snapshot's version and the recovered one, which a
		// watch hub replays to subscribers resuming across the restart.
		ix.recoveredTail = tail
		if len(records) == 0 {
			// Brand-new (or fully torn-away) log: stamp it so future
			// recoveries can check the pairing.
			if err := w.Append(storage.RecCheckpoint, encodeCheckpoint(ix.walGen.Load())); err != nil {
				return fail(err)
			}
		}
	}

	if err := ix.VerifyLeaves(); err != nil {
		return fail(fmt.Errorf("core: recovered state failed verification: %w", err))
	}
	ix.wmu.Lock()
	ix.wal = w
	ix.snapshotPath = snapshotPath
	ix.wmu.Unlock()
	return ix, nil
}

// splitAtCheckpoint locates the last checkpoint marker in records and
// returns its generation (0 when no marker is present) together with the
// records after it — the log tail not yet contained in any snapshot.
func splitAtCheckpoint(records []storage.Record) (uint64, []storage.Record, error) {
	for i := len(records) - 1; i >= 0; i-- {
		if records[i].Kind == storage.RecCheckpoint {
			gen, err := decodeCheckpoint(records[i].Payload)
			if err != nil {
				return 0, nil, fmt.Errorf("core: reading checkpoint marker: %w", err)
			}
			return gen, records[i+1:], nil
		}
	}
	return 0, records, nil
}

// OpenAt reconstructs the state as of an exact version — point-in-time
// open. It loads the snapshot and replays the write-ahead log's tail
// only up to the commit that published version, yielding the same bytes
// a document that stopped committing there would have. The log is read,
// never written: the returned index set is a detached in-memory replica
// of one historical state, safe to open while a live writer keeps
// appending to the same log (records at or below an already-published
// version are fully framed on disk).
//
// version must lie inside the durable window: at or after the snapshot
// (ErrVersionBeforeSnapshot — older states were compacted away by a
// checkpoint) and at or before the last durably logged commit
// (ErrVersionInFuture).
func OpenAt(snapshotPath, walPath string, version uint64) (*Indexes, error) {
	ix, err := Load(snapshotPath)
	if err != nil {
		return nil, err
	}
	if version < ix.Version() {
		return nil, fmt.Errorf("%w: snapshot is at version %d, requested %d",
			ErrVersionBeforeSnapshot, ix.Version(), version)
	}
	var records []storage.Record
	if err := storage.ReplayWAL(walPath, func(rec storage.Record) error {
		records = append(records, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	logGen, tail, err := splitAtCheckpoint(records)
	if err != nil {
		return nil, err
	}
	switch {
	case logGen > ix.walGen.Load():
		return nil, fmt.Errorf("%w: snapshot generation %d, log generation %d",
			ErrStaleSnapshot, ix.walGen.Load(), logGen)
	case logGen < ix.walGen.Load():
		// Stale log (crash between a checkpoint's snapshot rename and its
		// log reset): every record is already in the snapshot.
		tail = nil
	}
	for _, rec := range tail {
		if ix.Version() >= version {
			break
		}
		if err := ix.ApplyLogRecord(rec); err != nil {
			return nil, err
		}
	}
	if ix.Version() != version {
		return nil, fmt.Errorf("%w: durable history ends at version %d, requested %d",
			ErrVersionInFuture, ix.Version(), version)
	}
	if err := ix.VerifyLeaves(); err != nil {
		return nil, fmt.Errorf("core: state at version %d failed verification: %w", version, err)
	}
	return ix, nil
}

// Checkpoint writes the current state as a fresh snapshot (atomically,
// next to the previous one) and truncates the write-ahead log, bounding
// recovery time and log growth. Updates logged before Checkpoint returns
// are durable in the snapshot; the log restarts empty.
func (ix *Indexes) Checkpoint() error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if ix.wal == nil {
		return ErrNoWAL
	}
	return ix.checkpointLocked(ix.snapshotPath)
}

// CheckpointTo is Checkpoint with a new snapshot path, which also
// becomes the target of subsequent Checkpoint calls.
func (ix *Indexes) CheckpointTo(path string) error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if ix.wal == nil {
		return ErrNoWAL
	}
	ix.snapshotPath = path
	return ix.checkpointLocked(path)
}

// checkpointLocked runs under wmu: it snapshots the currently published
// version, which cannot change while the writer mutex is held.
func (ix *Indexes) checkpointLocked(path string) error {
	prev := ix.walGen.Load()
	ix.walGen.Store(prev + 1)
	tmp := path + ".tmp"
	if err := ix.cur.Load().saveFile(tmp, true, prev+1); err != nil {
		ix.walGen.Store(prev)
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		ix.walGen.Store(prev)
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	// From here the new snapshot is the recovery baseline. A crash before
	// the reset below leaves a stale log (old generation), which recovery
	// detects and discards. An I/O failure below poisons the log (see
	// storage.WAL's fail-stop contract), so subsequent updates error out
	// instead of being logged with a generation recovery would discard.
	if err := ix.wal.Reset(); err != nil {
		return fmt.Errorf("core: checkpoint snapshot written but log reset failed (log poisoned, further updates will fail): %w", err)
	}
	if err := ix.wal.Append(storage.RecCheckpoint, encodeCheckpoint(ix.walGen.Load())); err != nil {
		return fmt.Errorf("core: checkpoint snapshot written but marker append failed (log poisoned, further updates will fail): %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best effort: not all platforms/filesystems support it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// WALGeneration reports the current checkpoint generation (0 before the
// first checkpoint or when no WAL was ever attached).
func (ix *Indexes) WALGeneration() uint64 {
	return ix.walGen.Load()
}

// HasWAL reports whether a write-ahead log is attached.
func (ix *Indexes) HasWAL() bool {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	return ix.wal != nil
}

// SyncWAL forces any batched log records to stable storage (a no-op
// without a WAL). Call at quiesce points when running with fsync
// batching (syncEvery > 1).
func (ix *Indexes) SyncWAL() error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if ix.wal == nil {
		return nil
	}
	return ix.wal.Sync()
}

// CloseWAL syncs and detaches the write-ahead log. The index set remains
// usable in memory; further updates are no longer logged.
func (ix *Indexes) CloseWAL() error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if ix.wal == nil {
		return nil
	}
	err := ix.wal.Close()
	ix.wal = nil
	return err
}
