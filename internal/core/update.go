package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fsm"
	"repro/internal/storage"
	"repro/internal/vhash"
	"repro/internal/xmltree"
)

// TextUpdate assigns a new value to one text (or comment/PI) node.
type TextUpdate struct {
	Node  xmltree.NodeID
	Value string
}

// keyState is one typed index's B+tree key snapshot for a node.
type keyState struct {
	key uint64
	ok  bool
}

// oldKeys snapshots a node's index keys before a mutation, so the B+trees
// can be diffed afterwards. typed is parallel to Indexes.typed.
type oldKeys struct {
	hash  uint32
	typed []keyState
}

// captureNodeInto snapshots node n's keys, appending typed-key states to
// buf (which must be empty).
func (ix *Snapshot) captureNodeInto(buf []keyState, n xmltree.NodeID) oldKeys {
	var o oldKeys
	if ix.hash != nil {
		o.hash = ix.hash[n]
	}
	if len(ix.typed) > 0 {
		for _, ti := range ix.typed {
			key, ok := ti.treeKey(ix.doc, n, ix.stableOf[n])
			buf = append(buf, keyState{key: key, ok: ok})
		}
		o.typed = buf
	}
	return o
}

func (ix *Snapshot) captureNode(n xmltree.NodeID) oldKeys {
	return ix.captureNodeInto(make([]keyState, 0, len(ix.typed)), n)
}

// captureNodeScratch is captureNode over the shared scratch buffer, for
// the capture→recompute→reindex sequences that consume the snapshot
// before the next capture. Callers that retain snapshots (the structural
// updates' ancestor maps) must use captureNode.
func (ix *Snapshot) captureNodeScratch(n xmltree.NodeID) oldKeys {
	o := ix.captureNodeInto(ix.scratchKeys[:0], n)
	if o.typed != nil {
		ix.scratchKeys = o.typed
	}
	return o
}

// reindexNode diffs a node's keys against the snapshot and repairs the
// B+trees. Non-indexed kinds (comments, PIs) keep fields but no postings.
func (ix *Snapshot) reindexNode(n xmltree.NodeID, old oldKeys) {
	if !indexedNodeKind(ix.doc.Kind(n)) {
		return
	}
	posting := packPosting(ix.stableOf[n], false)
	if ix.strTree != nil && ix.hash[n] != old.hash {
		ix.strTreeDelete(old.hash, posting)
		ix.strTreeInsert(ix.hash[n], posting)
	}
	for t, ti := range ix.typed {
		key, ok := ti.treeKey(ix.doc, n, ix.stableOf[n])
		diffTyped(ti, posting, old.typed[t].key, old.typed[t].ok, key, ok)
	}
}

func diffTyped(ti *typedIndex, posting uint32, oldKey uint64, oldOK bool, newKey uint64, newOK bool) {
	if oldOK == newOK && oldKey == newKey {
		return
	}
	if oldOK {
		ti.treeDelete(oldKey, posting)
	}
	if newOK {
		ti.treeInsert(newKey, posting)
	}
}

// recomputeLeaf refreshes the fields of a value-carrying node from its
// (new) character data.
func (ix *Snapshot) recomputeLeaf(n xmltree.NodeID) {
	val := ix.doc.ValueBytes(n)
	stable := ix.stableOf[n]
	if ix.hash != nil {
		ix.hash[n] = vhash.Hash(val)
	}
	for _, ti := range ix.typed {
		f, _ := ti.spec.Machine.ParseFrag(val)
		ti.setFrag(n, stable, f)
	}
}

// recomputeInterior refolds an element's (or the document's) fields from
// its immediate children's stored fields — the heart of the Figure 8
// update algorithm: no text is read, only child hashes and states are
// combined.
func (ix *Snapshot) recomputeInterior(n xmltree.NodeID) {
	doc := ix.doc
	var h uint32
	frags := ix.scratchFrags[:0]
	for range ix.typed {
		frags = append(frags, fsm.Frag{Elem: fsm.Identity})
	}
	ix.scratchFrags = frags
	for c := doc.FirstChild(n); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
		if !xmltree.ContributesToParent(doc.Kind(c)) {
			continue
		}
		if ix.hash != nil {
			h = vhash.Combine(h, ix.hash[c])
		}
		cs := ix.stableOf[c]
		for t, ti := range ix.typed {
			frags[t] = foldFrag(ti.spec.Machine, frags[t], ti.frag(c, cs))
		}
	}
	stable := ix.stableOf[n]
	if ix.hash != nil {
		ix.hash[n] = h
	}
	for t, ti := range ix.typed {
		ti.setFrag(n, stable, frags[t])
	}
}

// UpdateText changes the value of a single text node and maintains all
// indices.
func (ix *Indexes) UpdateText(n xmltree.NodeID, value string) error {
	return ix.UpdateTexts([]TextUpdate{{Node: n, Value: value}})
}

// UpdateTexts applies a batch of text-node value updates — the paper's
// Figure 8 algorithm. Each updated node is re-hashed / re-run through the
// FSMs once; every affected ancestor is then refolded exactly once from
// its children's stored fields, deepest first, and the B+trees are
// repaired by diffing keys.
//
// Like every mutating entry point, the batch is validated against the
// current snapshot, write-ahead logged, applied to a private
// copy-on-write draft, and published atomically — concurrent readers
// keep running against the previous version throughout and observe the
// whole batch or none of it.
func (ix *Indexes) UpdateTexts(updates []TextUpdate) error {
	if len(updates) == 0 {
		return nil
	}
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	s := ix.cur.Load()
	if err := s.validateTexts(updates); err != nil {
		return err
	}
	// Write-ahead: the batch is logged (one record per UpdateTexts call,
	// hence one per transaction commit) before any state changes. The
	// same encoding feeds the commit hook, so watch subscribers see
	// exactly the records a WAL replay would.
	var payload []byte
	if ix.wal != nil || ix.onCommit != nil {
		payload = encodeTextBatch(updates)
	}
	if ix.wal != nil {
		if err := ix.logRecord(storage.RecTextBatch, payload); err != nil {
			return err
		}
	}
	draft := s.cloneForText()
	if err := draft.applyTexts(updates); err != nil {
		return err
	}
	ix.publish(draft)
	ix.notifyCommit(draft.version, storage.RecTextBatch, len(updates), payload)
	return nil
}

// validateTexts rejects a batch that names non-value-carrying or
// out-of-range nodes, before anything is logged or mutated.
func (ix *Snapshot) validateTexts(updates []TextUpdate) error {
	doc := ix.doc
	for _, u := range updates {
		if u.Node < 0 || int(u.Node) >= doc.NumNodes() {
			return fmt.Errorf("core: node %d out of range", u.Node)
		}
		switch doc.Kind(u.Node) {
		case xmltree.Text, xmltree.Comment, xmltree.PI:
		default:
			return fmt.Errorf("core: node %d is a %v, not a value-carrying node", u.Node, doc.Kind(u.Node))
		}
	}
	return nil
}

// applyTexts performs a validated batch against document and indices.
func (ix *Snapshot) applyTexts(updates []TextUpdate) error {
	doc := ix.doc
	affected := make(map[xmltree.NodeID]struct{})
	for _, u := range updates {
		old := ix.captureNodeScratch(u.Node)
		oldGrams := ix.substrNodeGrams(u.Node)
		if err := doc.SetText(u.Node, u.Value); err != nil {
			return err
		}
		ix.recomputeLeaf(u.Node)
		ix.reindexNode(u.Node, old)
		ix.substrReindexNode(u.Node, oldGrams)
		if xmltree.ContributesToParent(doc.Kind(u.Node)) {
			for p := doc.Parent(u.Node); p != xmltree.InvalidNode; p = doc.Parent(p) {
				if _, seen := affected[p]; seen {
					break // this ancestor chain is already queued
				}
				affected[p] = struct{}{}
			}
		}
	}
	ix.refoldAncestors(affected)
	ix.maintainStats()
	ix.maybeCompactHeap()
	return nil
}

// refoldAncestors recomputes a set of interior nodes deepest-first
// (descending pre order guarantees children precede parents).
func (ix *Snapshot) refoldAncestors(affected map[xmltree.NodeID]struct{}) {
	if len(affected) == 0 {
		return
	}
	order := make([]xmltree.NodeID, 0, len(affected))
	for n := range affected {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] > order[j] })
	for _, n := range order {
		old := ix.captureNodeScratch(n)
		ix.recomputeInterior(n)
		ix.reindexNode(n, old)
	}
}

// refoldAncestorsWithOld is refoldAncestors for structural updates, where
// the pre-mutation keys were captured by the caller.
func (ix *Snapshot) refoldAncestorsWithOld(olds map[xmltree.NodeID]oldKeys) {
	if len(olds) == 0 {
		return
	}
	order := make([]xmltree.NodeID, 0, len(olds))
	for n := range olds {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] > order[j] })
	for _, n := range order {
		ix.recomputeInterior(n)
		ix.reindexNode(n, olds[n])
	}
}

// UpdateAttr changes an attribute value. Attribute values do not
// contribute to ancestor string values, so no refolding is needed.
func (ix *Indexes) UpdateAttr(a xmltree.AttrID, value string) error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	s := ix.cur.Load()
	if err := s.validateAttr(a); err != nil {
		return err
	}
	var payload []byte
	if ix.wal != nil || ix.onCommit != nil {
		payload = encodeAttrUpdate(a, value)
	}
	if ix.wal != nil {
		if err := ix.logRecord(storage.RecAttrUpdate, payload); err != nil {
			return err
		}
	}
	draft := s.cloneForAttr()
	draft.applyAttr(a, value)
	ix.publish(draft)
	ix.notifyCommit(draft.version, storage.RecAttrUpdate, 1, payload)
	return nil
}

func (ix *Snapshot) validateAttr(a xmltree.AttrID) error {
	if a < 0 || int(a) >= ix.doc.NumAttrs() {
		return fmt.Errorf("core: attribute %d out of range", a)
	}
	return nil
}

func (ix *Snapshot) applyAttr(a xmltree.AttrID, value string) {
	doc := ix.doc
	stable := ix.attrStableOf[a]
	posting := packPosting(stable, true)
	oldHash := uint32(0)
	if ix.attrHash != nil {
		oldHash = ix.attrHash[a]
	}
	oldTyped := ix.scratchKeys[:0]
	for _, ti := range ix.typed {
		key, ok := ti.attrKey(a, stable)
		oldTyped = append(oldTyped, keyState{key: key, ok: ok})
	}
	ix.scratchKeys = oldTyped
	oldGrams := ix.substrAttrGrams(a)

	doc.SetAttrValue(a, value)
	val := doc.AttrValueBytes(a)
	if ix.attrHash != nil {
		ix.attrHash[a] = vhash.Hash(val)
		if ix.attrHash[a] != oldHash {
			ix.strTreeDelete(oldHash, posting)
			ix.strTreeInsert(ix.attrHash[a], posting)
		}
	}
	for t, ti := range ix.typed {
		f, _ := ti.spec.Machine.ParseFrag(val)
		ti.setAttrFrag(a, stable, f)
		key, ok := ti.attrKey(a, stable)
		diffTyped(ti, posting, oldTyped[t].key, oldTyped[t].ok, key, ok)
	}
	ix.substrReindexAttr(a, oldGrams)
	ix.maintainStats()
	ix.maybeCompactHeap()
}

// DeleteSubtree removes node n with its subtree from the document and all
// indices, then refolds the ancestor chain (the paper's subtree-deletion
// variant of Figure 8).
func (ix *Indexes) DeleteSubtree(n xmltree.NodeID) error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	s := ix.cur.Load()
	if err := s.validateDelete(n); err != nil {
		return err
	}
	var payload []byte
	if ix.wal != nil || ix.onCommit != nil {
		payload = encodeDelete(n)
	}
	if ix.wal != nil {
		if err := ix.logRecord(storage.RecDelete, payload); err != nil {
			return err
		}
	}
	draft := s.cloneForStructure()
	if err := draft.applyDelete(n); err != nil {
		return err
	}
	ix.publish(draft)
	ix.notifyCommit(draft.version, storage.RecDelete, 1, payload)
	return nil
}

func (ix *Snapshot) validateDelete(n xmltree.NodeID) error {
	if n <= 0 || int(n) >= ix.doc.NumNodes() {
		if n == 0 {
			return errors.New("core: cannot delete the document node")
		}
		return fmt.Errorf("core: node %d out of range", n)
	}
	return nil
}

func (ix *Snapshot) applyDelete(n xmltree.NodeID) error {
	doc := ix.doc
	end := n + xmltree.NodeID(doc.Size(n))
	parent := doc.Parent(n)

	// Snapshot ancestor keys BEFORE the structure changes: tree
	// membership of an element depends on its child structure (combined
	// vs wrapper), so the pre-image must be captured now.
	oldAnc := make(map[xmltree.NodeID]oldKeys)
	for p := parent; p != xmltree.InvalidNode; p = doc.Parent(p) {
		oldAnc[p] = ix.captureNode(p)
	}

	// Remove postings and side-table entries of every node in the range.
	for i := n; i <= end; i++ {
		stable := ix.stableOf[i]
		if indexedNodeKind(doc.Kind(i)) {
			posting := packPosting(stable, false)
			if ix.strTree != nil {
				ix.strTreeDelete(ix.hash[i], posting)
			}
			ix.eachTyped(func(ti *typedIndex) {
				if key, ok := ti.treeKey(doc, i, stable); ok {
					ti.treeDelete(key, posting)
				}
			})
		}
		ix.substrRemoveNode(i, stable)
		ix.eachTyped(func(ti *typedIndex) { delete(ti.items, stable) })
		ix.preOf[stable] = -1
	}
	alo, _ := doc.AttrRange(n)
	_, ahi := doc.AttrRange(end)
	for a := alo; a < ahi; a++ {
		stable := ix.attrStableOf[a]
		posting := packPosting(stable, true)
		if ix.strTree != nil {
			ix.strTreeDelete(ix.attrHash[a], posting)
		}
		ix.substrRemoveAttr(a, stable)
		ix.eachTyped(func(ti *typedIndex) {
			if key, ok := ti.attrKey(a, stable); ok {
				ti.treeDelete(key, posting)
			}
			delete(ti.attrItems, stable)
		})
		ix.attrOf[stable] = -1
	}

	if err := doc.DeleteSubtree(n); err != nil {
		return err
	}

	// Splice the per-node columns in step with the document.
	cnt := int(end-n) + 1
	ix.stableOf = append(ix.stableOf[:n], ix.stableOf[int(n)+cnt:]...)
	if ix.hash != nil {
		ix.hash = append(ix.hash[:n], ix.hash[int(n)+cnt:]...)
	}
	ix.eachTyped(func(ti *typedIndex) {
		ti.elems = append(ti.elems[:n], ti.elems[int(n)+cnt:]...)
	})
	for i := int(n); i < len(ix.stableOf); i++ {
		ix.preOf[ix.stableOf[i]] = int32(i)
	}
	acnt := int(ahi - alo)
	if acnt > 0 {
		ix.attrStableOf = append(ix.attrStableOf[:alo], ix.attrStableOf[int(alo)+acnt:]...)
		if ix.attrHash != nil {
			ix.attrHash = append(ix.attrHash[:alo], ix.attrHash[int(alo)+acnt:]...)
		}
		ix.eachTyped(func(ti *typedIndex) {
			ti.attrElems = append(ti.attrElems[:alo], ti.attrElems[int(alo)+acnt:]...)
		})
		for a := int(alo); a < len(ix.attrStableOf); a++ {
			ix.attrOf[ix.attrStableOf[a]] = int32(a)
		}
	}

	// Refold the ancestor chain against the pre-captured keys.
	ix.refoldAncestorsWithOld(oldAnc)
	ix.maintainStats()
	ix.maybeCompactHeap()
	return nil
}

// InsertChildren inserts a fragment document's top-level nodes under
// parent at child index pos, indexes the new nodes with a scoped Figure 7
// pass, and refolds the ancestor chain. It returns the first inserted
// node.
func (ix *Indexes) InsertChildren(parent xmltree.NodeID, pos int, frag *xmltree.Doc) (xmltree.NodeID, error) {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if pos < 0 {
		pos = 0 // the tree layer treats negative positions as "insert first"
	}
	s := ix.cur.Load()
	if err := s.validateInsert(parent, pos, frag); err != nil {
		return xmltree.InvalidNode, err
	}
	var payload []byte
	if ix.wal != nil || ix.onCommit != nil {
		var err error
		if payload, err = encodeInsert(parent, pos, frag); err != nil {
			return xmltree.InvalidNode, err
		}
	}
	if ix.wal != nil {
		if err := ix.logRecord(storage.RecInsert, payload); err != nil {
			return xmltree.InvalidNode, err
		}
	}
	draft := s.cloneForStructure()
	at, err := draft.applyInsert(parent, pos, frag)
	if err != nil {
		return xmltree.InvalidNode, err
	}
	ix.publish(draft)
	ix.notifyCommit(draft.version, storage.RecInsert, 1, payload)
	return at, nil
}

// validateInsert mirrors the tree layer's insertion checks so the
// operation can be logged before any mutation: a validated insert cannot
// fail when applied.
func (ix *Snapshot) validateInsert(parent xmltree.NodeID, pos int, frag *xmltree.Doc) error {
	doc := ix.doc
	if parent < 0 || int(parent) >= doc.NumNodes() {
		return fmt.Errorf("core: node %d out of range", parent)
	}
	switch doc.Kind(parent) {
	case xmltree.Element, xmltree.Document:
	default:
		return fmt.Errorf("core: cannot insert under %v node", doc.Kind(parent))
	}
	if frag.NumNodes() <= 1 {
		return errors.New("core: empty fragment")
	}
	if pos > 0 {
		children := 0
		for c := doc.FirstChild(parent); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
			children++
		}
		if pos > children {
			return fmt.Errorf("core: child index %d out of range (%d children)", pos, children)
		}
	}
	return nil
}

func (ix *Snapshot) applyInsert(parent xmltree.NodeID, pos int, frag *xmltree.Doc) (xmltree.NodeID, error) {
	doc := ix.doc
	// Pre-capture ancestor keys: insertion can turn a wrapper element
	// into a combined one, changing its tree membership.
	oldAnc := make(map[xmltree.NodeID]oldKeys)
	for p := parent; p != xmltree.InvalidNode; p = doc.Parent(p) {
		oldAnc[p] = ix.captureNode(p)
	}
	at, err := doc.InsertChildren(parent, pos, frag)
	if err != nil {
		return xmltree.InvalidNode, err
	}
	cnt := frag.NumNodes() - 1
	last := at + xmltree.NodeID(cnt) - 1
	alo, _ := doc.AttrRange(at)
	_, ahi := doc.AttrRange(last)
	acnt := int(ahi - alo)

	// Splice per-node columns and mint stable ids for the new nodes.
	newStables := make([]uint32, cnt)
	for k := 0; k < cnt; k++ {
		s := uint32(len(ix.preOf))
		newStables[k] = s
		ix.preOf = append(ix.preOf, int32(int(at)+k))
	}
	ix.stableOf = spliceU32(ix.stableOf, int(at), newStables)
	if ix.hash != nil {
		ix.hash = spliceU32(ix.hash, int(at), make([]uint32, cnt))
	}
	ix.eachTyped(func(ti *typedIndex) {
		ti.elems = spliceElems(ti.elems, int(at), make([]fsm.Elem, cnt))
	})
	for i := int(at) + cnt; i < len(ix.stableOf); i++ {
		ix.preOf[ix.stableOf[i]] = int32(i)
	}

	if acnt > 0 {
		newAttrStables := make([]uint32, acnt)
		for k := 0; k < acnt; k++ {
			s := uint32(len(ix.attrOf))
			newAttrStables[k] = s
			ix.attrOf = append(ix.attrOf, int32(int(alo)+k))
		}
		ix.attrStableOf = spliceU32(ix.attrStableOf, int(alo), newAttrStables)
		if ix.attrHash != nil {
			ix.attrHash = spliceU32(ix.attrHash, int(alo), make([]uint32, acnt))
		}
		ix.eachTyped(func(ti *typedIndex) {
			ti.attrElems = spliceElems(ti.attrElems, int(alo), make([]fsm.Elem, acnt))
		})
		for a := int(alo) + acnt; a < len(ix.attrStableOf); a++ {
			ix.attrOf[ix.attrStableOf[a]] = int32(a)
		}
	}

	// Compute fields for the inserted range and add postings.
	ix.buildPass(at, last, nil)
	if acnt > 0 {
		ix.buildAttrs(alo, ahi-1, nil)
	}
	for i := at; i <= last; i++ {
		if !indexedNodeKind(doc.Kind(i)) {
			continue
		}
		stable := ix.stableOf[i]
		posting := packPosting(stable, false)
		if ix.strTree != nil {
			ix.strTreeInsert(ix.hash[i], posting)
		}
		ix.eachTyped(func(ti *typedIndex) {
			if key, ok := ti.treeKey(doc, i, stable); ok {
				ti.treeInsert(key, posting)
			}
		})
		ix.substrAddNode(i, stable)
	}
	for a := alo; a < ahi; a++ {
		stable := ix.attrStableOf[a]
		posting := packPosting(stable, true)
		if ix.strTree != nil {
			ix.strTreeInsert(ix.attrHash[a], posting)
		}
		ix.eachTyped(func(ti *typedIndex) {
			if key, ok := ti.attrKey(a, stable); ok {
				ti.treeInsert(key, posting)
			}
		})
		ix.substrAddAttr(a, stable)
	}

	// Refold the chain from the insertion parent upwards against the
	// pre-captured keys.
	ix.refoldAncestorsWithOld(oldAnc)
	ix.maintainStats()
	return at, nil
}

func spliceU32(s []uint32, at int, ins []uint32) []uint32 {
	out := make([]uint32, 0, len(s)+len(ins))
	out = append(out, s[:at]...)
	out = append(out, ins...)
	return append(out, s[at:]...)
}

func spliceElems(s []fsm.Elem, at int, ins []fsm.Elem) []fsm.Elem {
	out := make([]fsm.Elem, 0, len(s)+len(ins))
	out = append(out, s[:at]...)
	out = append(out, ins...)
	return append(out, s[at:]...)
}
