package core

import "encoding/binary"

// Packed posting lists: ascending uint32 postings stored as uvarint
// deltas against the previous posting (the first delta is against an
// implicit 0). Postings within one list are strictly ascending — a
// (key, posting) pair occurs at most once in any tree — so deltas after
// the first are >= 1 and the encoding is unambiguous.
//
// The substring index's gram lists are the heavy user: a candidate
// intersection over common grams can stream hundreds of thousands of
// postings, and at one-to-five bytes per posting instead of four the
// lists stay small enough to live in cache while the rarest-first fold
// whittles them down. Intersections consume and produce packed lists,
// so nothing is ever widened to []uint32 until the survivors are known.

// packedPostings is an ascending posting list under delta-varint
// encoding. The zero value is an empty list ready for push.
type packedPostings struct {
	data []byte
	last uint32 // last pushed posting (encoder state)
	n    int
}

func (p *packedPostings) push(v uint32) {
	p.data = binary.AppendUvarint(p.data, uint64(v-p.last))
	p.last = v
	p.n++
}

func (p packedPostings) iter() postingsIter { return postingsIter{p: p.data} }

// decode appends the list's postings to dst and returns it.
func (p packedPostings) decode(dst []uint32) []uint32 {
	it := p.iter()
	for it.next() {
		dst = append(dst, it.cur)
	}
	return dst
}

// postingsIter streams a packed list without materialising it. Usage:
//
//	it := list.iter()
//	for it.next() { use(it.cur) }
type postingsIter struct {
	p   []byte
	cur uint32
}

func (it *postingsIter) next() bool {
	if len(it.p) == 0 {
		return false
	}
	d, n := binary.Uvarint(it.p)
	if n <= 0 {
		panic("core: corrupt packed posting list")
	}
	it.p = it.p[n:]
	it.cur += uint32(d)
	return true
}

// intersectPostings merges two packed lists into a packed result,
// streaming both sides — no intermediate []uint32.
func intersectPostings(a, b packedPostings) packedPostings {
	var out packedPostings
	ia, ib := a.iter(), b.iter()
	oka, okb := ia.next(), ib.next()
	for oka && okb {
		switch {
		case ia.cur < ib.cur:
			oka = ia.next()
		case ib.cur < ia.cur:
			okb = ib.next()
		default:
			out.push(ia.cur)
			oka = ia.next()
			okb = ib.next()
		}
	}
	return out
}
