package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/btree"
	"repro/internal/fsm"
	"repro/internal/storage"
	"repro/internal/xmltree"
)

// Snapshot layout. SectionDoc vs the index sections is what the
// storage-overhead experiment (Figure 9 bottom) compares. Typed indexes
// live in one section per type, named by stable type ID, so snapshots
// written with any registry subset load under any superset.
const (
	SectionMeta    = "meta"
	SectionDoc     = "doc"
	SectionStable  = "stable"
	SectionHash    = "hash"
	SectionStrTree = "strtree"

	// SectionWALGen pairs a snapshot with a write-ahead log: it holds the
	// checkpoint generation the snapshot was written at. Only present in
	// snapshots written by Checkpoint; its absence means generation 0
	// (a snapshot that never had a WAL, or predates durability).
	SectionWALGen = "walgen"

	// SectionStats holds the planner statistics (distinct-key counts and
	// equi-depth histograms, see histogram.go). Optional: snapshots
	// written before the statistics layer load fine — the stats are
	// rebuilt from the trees instead.
	SectionStats = "stats"

	// SectionSubstr holds the q-gram substring index tree (see substr.go).
	// Optional: presence means the index was enabled when the snapshot
	// was written, and loading restores it enabled; absence loads with
	// the index off. Its statistics are derived data, rebuilt on load.
	SectionSubstr = "substr"

	// SectionVersion holds the snapshot's publication sequence number
	// (Snapshot.Version), so commit-sequence tokens handed to network
	// clients stay valid across Save/Load and checkpoint/recovery: a
	// reloaded document continues the version sequence instead of
	// restarting at 1. Optional: absence (an older snapshot) means the
	// loaded state starts over at version 1.
	SectionVersion = "version"

	// snapshotVersion is the overall snapshot format. Version 1 was the
	// pre-registry layout (fixed double/datetime sections, unversioned
	// 3-byte meta); version 2 stores a typed-index manifest in the meta
	// section and per-type sections keyed by type ID.
	snapshotVersion = 2

	// typedSectionVersion versions the per-type section payload
	// independently of the snapshot envelope.
	typedSectionVersion = 1

	// statsSectionVersion versions the planner-statistics payload; an
	// unknown version falls back to rebuilding from the trees rather
	// than failing the load (statistics are derived data).
	statsSectionVersion = 1
)

// TypedSectionName returns the snapshot section holding typed index id.
func TypedSectionName(id TypeID) string { return fmt.Sprintf("typed.%d", id) }

// Save writes the document and all built indices to a snapshot file at
// path (page-structured, checksummed; see the storage package). Snapshots
// are immutable once published, so Save needs no locking — it serialises
// exactly the version it was called on, even while later versions commit.
func (ix *Snapshot) Save(path string) error {
	return ix.saveFile(path, false, 0)
}

// saveFile writes a complete snapshot. withWALGen stamps walGen, the
// checkpoint generation, into the snapshot (checkpoints only — a plain
// Save deliberately produces a generation-0 snapshot that no existing
// log pairs with, because its records would double-apply on top of the
// freshly saved state).
func (ix *Snapshot) saveFile(path string, withWALGen bool, walGen uint64) error {
	w, err := storage.NewWriter(path)
	if err != nil {
		return err
	}
	if err := ix.save(w, withWALGen, walGen); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

func (ix *Snapshot) save(w *storage.Writer, withWALGen bool, walGen uint64) error {
	sec, err := w.Section(SectionMeta)
	if err != nil {
		return err
	}
	se := newSliceEncoder(sec)
	se.uv(snapshotVersion)
	if ix.opts.String {
		se.uv(1)
	} else {
		se.uv(0)
	}
	se.uv(uint64(len(ix.typed)))
	for _, ti := range ix.typed {
		se.uv(uint64(ti.spec.ID))
	}
	if err := se.flush(); err != nil {
		return err
	}

	sec, err = w.Section(SectionDoc)
	if err != nil {
		return err
	}
	if _, err := ix.doc.WriteTo(sec); err != nil {
		return err
	}

	sec, err = w.Section(SectionStable)
	if err != nil {
		return err
	}
	se = newSliceEncoder(sec)
	se.u32s(ix.stableOf)
	se.i32s(ix.preOf)
	se.u32s(ix.attrStableOf)
	se.i32s(ix.attrOf)
	if err := se.flush(); err != nil {
		return err
	}

	if ix.opts.String {
		sec, err = w.Section(SectionHash)
		if err != nil {
			return err
		}
		// Only value-carrying leaves persist their hash (4 bytes each,
		// fixed-width, in document order); element and document hashes
		// refold from children with C on load — they are derived data.
		if err := writeU32Fixed(sec, ix.leafHashes()); err != nil {
			return err
		}
		if err := writeU32Fixed(sec, ix.attrHash); err != nil {
			return err
		}
		sec, err = w.Section(SectionStrTree)
		if err != nil {
			return err
		}
		if err := writeTree(sec, ix.strTree); err != nil {
			return err
		}
	}
	for _, ti := range ix.typed {
		sec, err = w.Section(TypedSectionName(ti.spec.ID))
		if err != nil {
			return err
		}
		if err := ix.writeTyped(sec, ti); err != nil {
			return err
		}
	}
	if ix.subTree != nil {
		sec, err = w.Section(SectionSubstr)
		if err != nil {
			return err
		}
		if err := writeTree(sec, ix.subTree); err != nil {
			return err
		}
	}
	if err := ix.writeStats(w); err != nil {
		return err
	}
	sec, err = w.Section(SectionVersion)
	if err != nil {
		return err
	}
	se = newSliceEncoder(sec)
	if ix.version > 0 {
		se.uv(ix.version)
	} else {
		se.uv(1) // a snapshot serialized before its first publication
	}
	if err := se.flush(); err != nil {
		return err
	}
	if withWALGen {
		sec, err = w.Section(SectionWALGen)
		if err != nil {
			return err
		}
		se = newSliceEncoder(sec)
		se.uv(walGen)
		if err := se.flush(); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a snapshot produced by Save and reconstructs the Indexes
// (document included) with full checksum verification. Loading fails
// with a descriptive error — never a panic or silent corruption — when
// the snapshot's format version is unknown or it contains a typed index
// whose type ID is not registered in this process.
func Load(path string) (*Indexes, error) {
	r, err := storage.OpenReader(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return load(r)
}

func load(r *storage.Reader) (*Indexes, error) {
	sec, err := r.Section(SectionMeta)
	if err != nil {
		return nil, err
	}
	sd := newSliceDecoder(sec)
	version := sd.uv()
	if sd.err != nil {
		return nil, fmt.Errorf("core: reading snapshot meta: %w", sd.err)
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported snapshot format version %d (this build reads version %d)", version, snapshotVersion)
	}
	hasString := sd.uv() == 1
	nTypes := int(sd.uv())
	if sd.err != nil {
		return nil, fmt.Errorf("core: reading snapshot meta: %w", sd.err)
	}
	if nTypes < 0 || nTypes > 1<<10 {
		return nil, fmt.Errorf("core: implausible typed index count %d in snapshot meta", nTypes)
	}
	typeIDs := make([]TypeID, nTypes)
	specs := make([]TypeSpec, nTypes)
	for i := range typeIDs {
		id := TypeID(sd.uv())
		if sd.err != nil {
			return nil, fmt.Errorf("core: reading snapshot meta: %w", sd.err)
		}
		spec, ok := LookupType(id)
		if !ok {
			return nil, fmt.Errorf("core: snapshot contains typed index with unknown type ID %d; register its TypeSpec before loading", id)
		}
		typeIDs[i] = id
		specs[i] = spec
	}

	sec, err = r.Section(SectionDoc)
	if err != nil {
		return nil, err
	}
	doc, err := xmltree.ReadDoc(sec)
	if err != nil {
		return nil, err
	}
	n, na := doc.NumNodes(), doc.NumAttrs()
	ix := &Snapshot{doc: doc, opts: optionsForTypes(hasString, typeIDs)}

	sec, err = r.Section(SectionStable)
	if err != nil {
		return nil, err
	}
	sd = newSliceDecoder(sec)
	ix.stableOf = sd.u32s(n)
	ix.preOf = sd.i32sAny()
	ix.attrStableOf = sd.u32s(na)
	ix.attrOf = sd.i32sAny()
	if sd.err != nil {
		return nil, sd.err
	}

	if hasString {
		sec, err = r.Section(SectionHash)
		if err != nil {
			return nil, err
		}
		leafHashes, err := readU32Fixed(sec, countLeaves(doc))
		if err != nil {
			return nil, err
		}
		ix.hash = make([]uint32, n)
		li := 0
		for i := 0; i < n; i++ {
			switch doc.Kind(xmltree.NodeID(i)) {
			case xmltree.Text, xmltree.Comment, xmltree.PI:
				ix.hash[i] = leafHashes[li]
				li++
			}
		}
		if ix.attrHash, err = readU32Fixed(sec, na); err != nil {
			return nil, err
		}
		sec, err = r.Section(SectionStrTree)
		if err != nil {
			return nil, err
		}
		ix.strTree, err = readTree(sec)
		if err != nil {
			return nil, err
		}
	}
	for i, id := range typeIDs {
		sec, err = r.Section(TypedSectionName(id))
		if err != nil {
			return nil, err
		}
		ti := newTypedIndex(specs[i], n, na)
		if err := ix.readTyped(sec, ti, n, na); err != nil {
			return nil, fmt.Errorf("core: typed index %q: %w", specs[i].Name, err)
		}
		ix.typed = append(ix.typed, ti)
	}
	if r.SectionLen(SectionSubstr) >= 0 {
		sec, err = r.Section(SectionSubstr)
		if err != nil {
			return nil, err
		}
		if ix.subTree, err = readTree(sec); err != nil {
			return nil, err
		}
	}
	var walGen uint64
	if r.SectionLen(SectionWALGen) >= 0 {
		sec, err = r.Section(SectionWALGen)
		if err != nil {
			return nil, err
		}
		sd = newSliceDecoder(sec)
		walGen = sd.uv()
		if sd.err != nil {
			return nil, fmt.Errorf("core: reading snapshot WAL generation: %w", sd.err)
		}
	}
	if r.SectionLen(SectionVersion) >= 0 {
		sec, err = r.Section(SectionVersion)
		if err != nil {
			return nil, err
		}
		sd = newSliceDecoder(sec)
		ix.version = sd.uv()
		if sd.err != nil {
			return nil, fmt.Errorf("core: reading snapshot version: %w", sd.err)
		}
	}
	ix.completeDerived()
	ix.loadStats(r)
	out := wrapSnapshot(ix)
	out.walGen.Store(walGen)
	return out, nil
}

// writeStats persists the planner statistics: one keyStats per built
// tree, in the order the meta section declares them (string first, then
// the typed manifest).
func (ix *Snapshot) writeStats(w *storage.Writer) error {
	sec, err := w.Section(SectionStats)
	if err != nil {
		return err
	}
	se := newSliceEncoder(sec)
	se.uv(statsSectionVersion)
	if ix.strStats != nil {
		se.uv(1)
		writeKeyStats(se, ix.strStats)
	} else {
		se.uv(0)
	}
	se.uv(uint64(len(ix.typed)))
	for _, ti := range ix.typed {
		se.uv(uint64(ti.spec.ID))
		writeKeyStats(se, ti.stats)
	}
	return se.flush()
}

func writeKeyStats(se *sliceEncoder, ks *keyStats) {
	if ks == nil {
		ks = &keyStats{bounds: []uint64{math.MaxUint64}, counts: []int{0}}
	}
	se.uv(uint64(ks.total))
	se.uv(uint64(ks.distinct))
	se.uv(ks.min)
	se.uv(ks.max)
	se.uv(uint64(len(ks.bounds)))
	for _, b := range ks.bounds {
		se.uv(b)
	}
	for _, c := range ks.counts {
		se.uv(uint64(c))
	}
}

// loadStats restores the planner statistics from the snapshot, falling
// back to a rebuild from the trees whenever the section is absent (an
// older snapshot), has an unknown version, or fails sanity checks —
// statistics are derived data, so a fallback is always safe.
func (ix *Snapshot) loadStats(r *storage.Reader) {
	if r.SectionLen(SectionStats) < 0 {
		ix.rebuildStats()
		return
	}
	sec, err := r.Section(SectionStats)
	if err != nil {
		ix.rebuildStats()
		return
	}
	sd := newSliceDecoder(sec)
	if v := sd.uv(); sd.err != nil || v != statsSectionVersion {
		ix.rebuildStats()
		return
	}
	var strStats *keyStats
	if sd.uv() == 1 {
		strStats = readKeyStats(sd)
	}
	nTyped := int(sd.uv())
	if sd.err != nil || nTyped != len(ix.typed) {
		ix.rebuildStats()
		return
	}
	typedStats := make([]*keyStats, nTyped)
	for i := 0; i < nTyped; i++ {
		id := TypeID(sd.uv())
		ks := readKeyStats(sd)
		if sd.err != nil || id != ix.typed[i].spec.ID {
			ix.rebuildStats()
			return
		}
		typedStats[i] = ks
	}
	// Sanity: every histogram's population must match its tree.
	if ix.strTree != nil && (strStats == nil || strStats.sum() != ix.strTree.Len()) {
		ix.rebuildStats()
		return
	}
	for i, ti := range ix.typed {
		if typedStats[i].sum() != ti.tree.Len() {
			ix.rebuildStats()
			return
		}
	}
	ix.strStats = strStats
	for i, ti := range ix.typed {
		ti.stats = typedStats[i]
	}
	// Substring statistics are never persisted (derived data); rebuild
	// from the loaded gram tree. The fallback paths above already covered
	// this through rebuildStats.
	if ix.subTree != nil {
		ix.subStats = buildKeyStats(ix.subTree)
	}
}

func readKeyStats(sd *sliceDecoder) *keyStats {
	ks := &keyStats{}
	ks.total = int(sd.uv())
	ks.distinct = int(sd.uv())
	ks.min = sd.uv()
	ks.max = sd.uv()
	n := int(sd.uv())
	if sd.err != nil || n <= 0 || n > 4*histBuckets {
		sd.err = fmt.Errorf("implausible histogram bucket count %d", n)
		return ks
	}
	ks.bounds = make([]uint64, n)
	ks.counts = make([]int, n)
	for i := range ks.bounds {
		ks.bounds[i] = sd.uv()
	}
	for i := range ks.counts {
		ks.counts[i] = int(sd.uv())
	}
	if sd.err == nil && ks.bounds[n-1] != math.MaxUint64 {
		sd.err = fmt.Errorf("histogram missing catch-all bucket")
	}
	return ks
}

// sum is the histogram's population — a load-time cross-check against
// the tree it describes.
func (ks *keyStats) sum() int {
	s := 0
	for _, c := range ks.counts {
		s += c
	}
	return s
}

// leafHashes extracts the persisted hash column: value-carrying leaves in
// document order.
func (ix *Snapshot) leafHashes() []uint32 {
	doc := ix.doc
	out := make([]uint32, 0, doc.NumNodes())
	for i := 0; i < doc.NumNodes(); i++ {
		switch doc.Kind(xmltree.NodeID(i)) {
		case xmltree.Text, xmltree.Comment, xmltree.PI:
			out = append(out, ix.hash[i])
		}
	}
	return out
}

func countLeaves(doc *xmltree.Doc) int {
	cnt := 0
	for i := 0; i < doc.NumNodes(); i++ {
		switch doc.Kind(xmltree.NodeID(i)) {
		case xmltree.Text, xmltree.Comment, xmltree.PI:
			cnt++
		}
	}
	return cnt
}

// completeDerived reconstructs the derived index fields after a load:
// states of trivially-recomputable leaves (whitespace-only or rejected
// texts were not persisted — a fast FSM run restores them), then interior
// hashes and states by folding children with C and the SCT, bottom-up, in
// O(document) without materialising any string value.
func (ix *Snapshot) completeDerived() {
	doc := ix.doc
	n := doc.NumNodes()
	for i := 0; i < n; i++ {
		nd := xmltree.NodeID(i)
		switch doc.Kind(nd) {
		case xmltree.Text, xmltree.Comment, xmltree.PI:
			stable := ix.stableOf[i]
			for _, ti := range ix.typed {
				if ti.elems[i] != fsm.Reject {
					continue
				}
				if f, ok := ti.spec.Machine.ParseFrag(doc.ValueBytes(nd)); ok {
					ti.setFragFresh(nd, stable, f)
				}
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		nd := xmltree.NodeID(i)
		switch doc.Kind(nd) {
		case xmltree.Element, xmltree.Document:
			ix.recomputeInterior(nd)
		}
	}
}

// Tree sections are versioned independently of the snapshot envelope.
// The legacy encoding (PR 1 through PR 9) had no version: it opened
// directly with the entry count. Version 2 opens with treeSectionSentinel
// — a count no real tree can have, so a reader can tell the two formats
// apart from the first varint — followed by the format version.
//
//	legacy:  uv(count), then per entry uv(keyDelta), uv(val)
//	v2:      uv(sentinel), uv(2), uv(count), then per entry
//	         uv(keyDelta); keyDelta == 0 ? uv(valDelta) : uv(val)
//
// v2 exploits that entries sort by (key, val) with strictly ascending
// vals inside an equal-key run: duplicate-key runs — the common case
// for hash and gram trees — delta-encode their postings, which is the
// same layout the in-memory packed leaves use (btree/packed.go).
const (
	treeSectionSentinel = uint64(math.MaxUint64)
	treeSectionVersion  = 2
)

func writeTree(w io.Writer, t *btree.Tree) error {
	se := newSliceEncoder(w)
	se.uv(treeSectionSentinel)
	se.uv(treeSectionVersion)
	se.uv(uint64(t.Len()))
	var prevKey uint64
	var prevVal uint32
	t.Scan(func(key uint64, val uint32) bool {
		d := key - prevKey
		se.uv(d)
		if d == 0 {
			se.uv(uint64(val - prevVal))
		} else {
			se.uv(uint64(val))
		}
		prevKey, prevVal = key, val
		return true
	})
	return se.flush()
}

func readTree(r io.Reader) (*btree.Tree, error) {
	sd := newSliceDecoder(r)
	first := sd.uv()
	if sd.err != nil {
		return nil, sd.err
	}
	if first != treeSectionSentinel {
		// Legacy format: first is the entry count, vals are absolute.
		n := int(first)
		entries := make([]btree.Entry, 0, n)
		var key uint64
		for i := 0; i < n && sd.err == nil; i++ {
			key += sd.uv()
			entries = append(entries, btree.Entry{Key: key, Val: uint32(sd.uv())})
		}
		if sd.err != nil {
			return nil, sd.err
		}
		return btree.NewFromSorted(entries), nil
	}
	version := sd.uv()
	if sd.err != nil {
		return nil, sd.err
	}
	if version != treeSectionVersion {
		return nil, fmt.Errorf("core: unsupported tree section format version %d (this build reads legacy and version %d)", version, treeSectionVersion)
	}
	n := int(sd.uv())
	entries := make([]btree.Entry, 0, n)
	var key uint64
	var val uint32
	for i := 0; i < n && sd.err == nil; i++ {
		d := sd.uv()
		key += d
		if d == 0 {
			val += uint32(sd.uv())
		} else {
			val = uint32(sd.uv())
		}
		entries = append(entries, btree.Entry{Key: key, Val: val})
	}
	if sd.err != nil {
		return nil, sd.err
	}
	return btree.NewFromSorted(entries), nil
}

// writeTyped persists one typed index: the paper's [value, state, node]
// inventory, preceded by a (format version, type ID) header so a reader
// can reject payloads it does not understand. Stored sparsely — absence
// means reject ("the absence of a state signifies the reject state") —
// and only for nodes whose state is not trivially derivable: leaves with
// digit/punctuation content and attributes. Whitespace-only leaves and
// interior elements are derived data, refolded on load via FSM runs and
// SCT folds.
func (ix *Snapshot) writeTyped(w io.Writer, ti *typedIndex) error {
	doc := ix.doc
	se := newSliceEncoder(w)
	se.uv(typedSectionVersion)
	se.uv(uint64(ti.spec.ID))
	writeEntry := func(posDelta int, e fsm.Elem, items []fsm.Item) {
		se.uv(uint64(posDelta))
		se.uv(uint64(e))
		se.uv(uint64(len(items)))
		for _, it := range items {
			se.uv(uint64(it.Punct))
			se.uv(encodeRunVal(it.Val))
			se.uv(uint64(it.Len))
		}
	}
	// Count then emit stored leaves.
	stored := 0
	for i := 0; i < doc.NumNodes(); i++ {
		if leafStateStored(doc, xmltree.NodeID(i), ti, ix.stableOf[i]) {
			stored++
		}
	}
	se.uv(uint64(doc.NumNodes()))
	se.uv(uint64(stored))
	prev := 0
	for i := 0; i < doc.NumNodes(); i++ {
		if !leafStateStored(doc, xmltree.NodeID(i), ti, ix.stableOf[i]) {
			continue
		}
		writeEntry(i-prev, ti.elems[i], ti.items[ix.stableOf[i]])
		prev = i
	}
	storedAttrs := 0
	for a := 0; a < doc.NumAttrs(); a++ {
		if ti.attrElems[a] != fsm.Reject && len(ti.attrItems[ix.attrStableOf[a]]) > 0 {
			storedAttrs++
		}
	}
	se.uv(uint64(doc.NumAttrs()))
	se.uv(uint64(storedAttrs))
	prev = 0
	for a := 0; a < doc.NumAttrs(); a++ {
		if ti.attrElems[a] == fsm.Reject || len(ti.attrItems[ix.attrStableOf[a]]) == 0 {
			continue
		}
		writeEntry(a-prev, ti.attrElems[a], ti.attrItems[ix.attrStableOf[a]])
		prev = a
	}
	if err := se.flush(); err != nil {
		return err
	}
	return writeTree(w, ti.tree)
}

// leafStateStored decides which node states hit the disk: value-carrying
// leaves whose fragment has digit or punctuation content.
func leafStateStored(doc *xmltree.Doc, n xmltree.NodeID, ti *typedIndex, stable uint32) bool {
	switch doc.Kind(n) {
	case xmltree.Text, xmltree.Comment, xmltree.PI:
		return ti.elems[n] != fsm.Reject && len(ti.items[stable]) > 0
	default:
		return false
	}
}

// encodeRunVal compresses a digit-run value: runs are integral by
// construction, so small ones pack as 2v; values beyond exact-integer
// float range fall back to tagged IEEE bits (2bits+1).
func encodeRunVal(v float64) uint64 {
	if v >= 0 && v < 1<<53 && v == math.Trunc(v) {
		return uint64(v) << 1
	}
	return math.Float64bits(v)<<1 | 1
}

func decodeRunVal(u uint64) float64 {
	if u&1 == 0 {
		return float64(u >> 1)
	}
	return math.Float64frombits(u >> 1)
}

func (ix *Snapshot) readTyped(r io.Reader, ti *typedIndex, n, na int) error {
	sd := newSliceDecoder(r)
	if v := sd.uv(); sd.err == nil && v != typedSectionVersion {
		return fmt.Errorf("unsupported typed section format version %d (this build reads version %d)", v, typedSectionVersion)
	}
	if id := TypeID(sd.uv()); sd.err == nil && id != ti.spec.ID {
		return fmt.Errorf("typed section holds type ID %d, want %d", id, ti.spec.ID)
	}
	if sd.err != nil {
		return sd.err
	}
	readEntries := func(want int, assign func(pos int, e fsm.Elem, items []fsm.Item) error) error {
		if got := int(sd.uv()); got != want {
			return fmt.Errorf("core: typed index has %d positions, want %d", got, want)
		}
		stored := int(sd.uv())
		pos := 0
		for i := 0; i < stored && sd.err == nil; i++ {
			pos += int(sd.uv())
			e := fsm.Elem(sd.uv())
			k := int(sd.uv())
			if k < 0 || k > 1<<20 {
				return fmt.Errorf("core: implausible item count %d", k)
			}
			items := make([]fsm.Item, k)
			for j := 0; j < k; j++ {
				items[j] = fsm.Item{
					Punct: byte(sd.uv()),
					Val:   decodeRunVal(sd.uv()),
					Len:   int32(sd.uv()),
				}
			}
			if pos >= want {
				return fmt.Errorf("core: state position %d out of range", pos)
			}
			if err := assign(pos, e, items); err != nil {
				return err
			}
		}
		return sd.err
	}
	err := readEntries(n, func(pos int, e fsm.Elem, items []fsm.Item) error {
		ti.elems[pos] = e
		ti.items[ix.stableOf[pos]] = items
		return nil
	})
	if err != nil {
		return err
	}
	err = readEntries(na, func(pos int, e fsm.Elem, items []fsm.Item) error {
		ti.attrElems[pos] = e
		ti.attrItems[ix.attrStableOf[pos]] = items
		return nil
	})
	if err != nil {
		return err
	}
	ti.tree, err = readTree(r)
	return err
}

// --- fixed-width column codec ---

func writeU32Fixed(w io.Writer, s []uint32) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(s)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, 1<<16)
	for _, v := range s {
		buf = binary.LittleEndian.AppendUint32(buf, v)
		if len(buf) >= 1<<16-8 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func readU32Fixed(r io.Reader, want int) ([]uint32, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if got := int(binary.LittleEndian.Uint32(hdr[:])); got != want {
		return nil, fmt.Errorf("core: column has %d entries, want %d", got, want)
	}
	out := make([]uint32, want)
	buf := make([]byte, 1<<16)
	i := 0
	for i < want {
		chunk := (want - i) * 4
		if chunk > len(buf) {
			chunk = len(buf)
		}
		if _, err := io.ReadFull(r, buf[:chunk]); err != nil {
			return nil, err
		}
		for o := 0; o < chunk; o += 4 {
			out[i] = binary.LittleEndian.Uint32(buf[o : o+4])
			i++
		}
	}
	return out, nil
}

// SaveParts selects snapshot sections for staged persistence timing and
// storage accounting in the experiments: the paper's "shredding" stage
// writes the document store, index creation writes the index stores.
// Part files are not loadable by Load (they lack sections); use Save for
// complete snapshots. Double/DateTime/Date are sugar for the built-in
// type IDs; Types selects further registered typed indexes.
type SaveParts struct {
	Doc      bool
	String   bool
	Double   bool
	DateTime bool
	Date     bool
	Types    []TypeID
}

func (p SaveParts) typeIDs() []TypeID {
	return typeIDsFor(p.Double, p.DateTime, p.Date, p.Types)
}

// SavePartsTo writes only the selected sections to path.
func (ix *Snapshot) SavePartsTo(path string, parts SaveParts) error {
	w, err := storage.NewWriter(path)
	if err != nil {
		return err
	}
	fail := func(e error) error {
		w.Close()
		return e
	}
	if parts.Doc {
		sec, err := w.Section(SectionDoc)
		if err != nil {
			return fail(err)
		}
		if _, err := ix.doc.WriteTo(sec); err != nil {
			return fail(err)
		}
	}
	if parts.String && ix.hash != nil {
		sec, err := w.Section(SectionHash)
		if err != nil {
			return fail(err)
		}
		if err := writeU32Fixed(sec, ix.leafHashes()); err != nil {
			return fail(err)
		}
		if err := writeU32Fixed(sec, ix.attrHash); err != nil {
			return fail(err)
		}
		sec, err = w.Section(SectionStrTree)
		if err != nil {
			return fail(err)
		}
		if err := writeTree(sec, ix.strTree); err != nil {
			return fail(err)
		}
	}
	for _, id := range parts.typeIDs() {
		ti := ix.typedFor(id)
		if ti == nil {
			continue
		}
		sec, err := w.Section(TypedSectionName(id))
		if err != nil {
			return fail(err)
		}
		if err := ix.writeTyped(sec, ti); err != nil {
			return fail(err)
		}
	}
	return w.Close()
}

// --- varint slice codecs over io.Writer/Reader ---

type sliceEncoder struct {
	w   io.Writer
	buf []byte
	tmp [binary.MaxVarintLen64]byte
	err error
}

func newSliceEncoder(w io.Writer) *sliceEncoder {
	return &sliceEncoder{w: w, buf: make([]byte, 0, 1<<16)}
}

func (se *sliceEncoder) uv(v uint64) {
	if se.err != nil {
		return
	}
	n := binary.PutUvarint(se.tmp[:], v)
	se.buf = append(se.buf, se.tmp[:n]...)
	if len(se.buf) >= 1<<16-16 {
		_, se.err = se.w.Write(se.buf)
		se.buf = se.buf[:0]
	}
}

func (se *sliceEncoder) u32s(s []uint32) {
	se.uv(uint64(len(s)))
	for _, v := range s {
		se.uv(uint64(v))
	}
}

func (se *sliceEncoder) i32s(s []int32) {
	se.uv(uint64(len(s)))
	for _, v := range s {
		se.uv(uint64(uint32(v))) // -1 sentinel round-trips through uint32
	}
}

func (se *sliceEncoder) flush() error {
	if se.err != nil {
		return se.err
	}
	if len(se.buf) > 0 {
		_, se.err = se.w.Write(se.buf)
		se.buf = se.buf[:0]
	}
	return se.err
}

type sliceDecoder struct {
	br  io.ByteReader
	err error
}

func newSliceDecoder(r io.Reader) *sliceDecoder {
	if br, ok := r.(io.ByteReader); ok {
		return &sliceDecoder{br: br}
	}
	return &sliceDecoder{br: &oneByteReader{r: r}}
}

type oneByteReader struct {
	r   io.Reader
	one [1]byte
}

func (o *oneByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(o.r, o.one[:]); err != nil {
		return 0, err
	}
	return o.one[0], nil
}

func (sd *sliceDecoder) uv() uint64 {
	if sd.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(sd.br)
	if err != nil {
		sd.err = err
	}
	return v
}

func (sd *sliceDecoder) u32s(want int) []uint32 {
	n := int(sd.uv())
	if sd.err != nil {
		return nil
	}
	if want >= 0 && n != want {
		sd.err = fmt.Errorf("core: slice has %d entries, want %d", n, want)
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(sd.uv())
	}
	return out
}

func (sd *sliceDecoder) i32sAny() []int32 {
	n := int(sd.uv())
	if sd.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(uint32(sd.uv()))
	}
	return out
}
