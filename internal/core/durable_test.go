package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/storage"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

// durablePair builds xml and starts a durable snapshot/WAL pair in a
// temp dir.
func durablePair(t *testing.T, xml string, syncEvery int) (*Indexes, string, string) {
	t.Helper()
	ix := Build(mustParseForTest(t, xml), DefaultOptions())
	dir := t.TempDir()
	snap := filepath.Join(dir, "db.xvi")
	wal := filepath.Join(dir, "db.wal")
	if err := ix.StartDurable(snap, wal, syncEvery); err != nil {
		t.Fatal(err)
	}
	return ix, snap, wal
}

func docXML(t *testing.T, ix *Indexes) []byte {
	t.Helper()
	b, err := xmlparse.SerializeToBytes(ix.Doc())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertSameState compares a recovered (or still-live durable) index
// set against the always-in-memory oracle: identical document bytes and
// identical observable index structures.
func assertSameState(t *testing.T, oracle, got *Indexes) {
	t.Helper()
	if ox, gx := docXML(t, oracle), docXML(t, got); !bytes.Equal(ox, gx) {
		t.Fatalf("document diverged from oracle:\n got: %.200s\nwant: %.200s", gx, ox)
	}
	assertIndexesEqual(t, oracle, got)
}

func randomDurableValue(rng *rand.Rand) string {
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf("%d.%02d", rng.Intn(1000), rng.Intn(100))
	case 1:
		return fmt.Sprintf("%04d-%02d-%02d", 1990+rng.Intn(30), 1+rng.Intn(12), 1+rng.Intn(28))
	case 2:
		return fmt.Sprintf("%04d-%02d-%02dT%02d:%02d:%02d", 2000+rng.Intn(20), 1+rng.Intn(12), 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60))
	case 3:
		return fmt.Sprintf("word%d and more", rng.Intn(100))
	default:
		return fmt.Sprintf("%d", rng.Intn(100000))
	}
}

func textNodesOf(doc *xmltree.Doc) []xmltree.NodeID {
	var out []xmltree.NodeID
	for i := 0; i < doc.NumNodes(); i++ {
		if doc.Kind(xmltree.NodeID(i)) == xmltree.Text {
			out = append(out, xmltree.NodeID(i))
		}
	}
	return out
}

// TestRecoveryEquivalenceRandomInterleavings is the recovery-equivalence
// property: random interleavings of text/attr updates, structural
// updates, checkpoints, and close/reopen cycles on XMark data and the
// pathological shape corpus must always match an in-memory oracle that
// applied the same operations — both live and after every reopen.
func TestRecoveryEquivalenceRandomInterleavings(t *testing.T) {
	xmark, err := datagen.Generate("xmark1", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := append([]shapeCase{{"xmark1", string(xmark)}}, shapeCorpus()...)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for _, run := range []struct {
				seed      int64
				syncEvery int
			}{{1, 1}, {2, 7}} {
				ix, snap, wal := durablePair(t, tc.xml, run.syncEvery)
				oracle := Build(mustParseForTest(t, tc.xml), DefaultOptions())
				rng := rand.New(rand.NewSource(run.seed))

				apply := func(f func(*Indexes) error) {
					t.Helper()
					if err := f(oracle); err != nil {
						t.Fatalf("oracle: %v", err)
					}
					if err := f(ix); err != nil {
						t.Fatalf("durable: %v", err)
					}
				}

				const steps = 50
				for s := 0; s < steps; s++ {
					doc := oracle.Doc()
					switch pick := rng.Intn(100); {
					case pick < 40: // batched text updates
						texts := textNodesOf(doc)
						if len(texts) == 0 {
							continue
						}
						batch := make([]TextUpdate, 1+rng.Intn(3))
						for i := range batch {
							batch[i] = TextUpdate{Node: texts[rng.Intn(len(texts))], Value: randomDurableValue(rng)}
						}
						apply(func(x *Indexes) error { return x.UpdateTexts(batch) })
					case pick < 55: // attribute update
						if doc.NumAttrs() == 0 {
							continue
						}
						a := xmltree.AttrID(rng.Intn(doc.NumAttrs()))
						v := randomDurableValue(rng)
						apply(func(x *Indexes) error { return x.UpdateAttr(a, v) })
					case pick < 65: // subtree delete (small subtrees only, so the doc survives)
						if doc.NumNodes() < 8 {
							continue
						}
						var victim xmltree.NodeID = xmltree.InvalidNode
						for try := 0; try < 10; try++ {
							n := xmltree.NodeID(1 + rng.Intn(doc.NumNodes()-1))
							if doc.Size(n) <= 10 {
								victim = n
								break
							}
						}
						if victim == xmltree.InvalidNode {
							continue
						}
						apply(func(x *Indexes) error { return x.DeleteSubtree(victim) })
					case pick < 80: // fragment insert
						frag := mustParseForTest(t, fmt.Sprintf(`<ins a="%s"><v>%s</v>%s</ins>`,
							randomDurableValue(rng), randomDurableValue(rng), randomDurableValue(rng)))
						var parent xmltree.NodeID = xmltree.InvalidNode
						start := rng.Intn(doc.NumNodes())
						for i := 0; i < doc.NumNodes(); i++ {
							n := xmltree.NodeID((start + i) % doc.NumNodes())
							if doc.Kind(n) == xmltree.Element {
								parent = n
								break
							}
						}
						if parent == xmltree.InvalidNode {
							parent = doc.Root()
						}
						children := 0
						for c := doc.FirstChild(parent); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
							children++
						}
						pos := rng.Intn(children + 1)
						apply(func(x *Indexes) error {
							_, err := x.InsertChildren(parent, pos, frag)
							return err
						})
					case pick < 90: // checkpoint
						if err := ix.Checkpoint(); err != nil {
							t.Fatalf("checkpoint: %v", err)
						}
					default: // crashless close + reopen (replay path)
						if err := ix.CloseWAL(); err != nil {
							t.Fatal(err)
						}
						ix, err = OpenDurable(snap, wal, run.syncEvery)
						if err != nil {
							t.Fatalf("reopen at step %d: %v", s, err)
						}
						assertSameState(t, oracle, ix)
					}
				}

				// Live state matches the oracle...
				assertSameState(t, oracle, ix)
				// ...and so does a final recovery from disk.
				if err := ix.CloseWAL(); err != nil {
					t.Fatal(err)
				}
				re, err := OpenDurable(snap, wal, run.syncEvery)
				if err != nil {
					t.Fatalf("final reopen: %v", err)
				}
				assertSameState(t, oracle, re)
				if err := re.Verify(); err != nil {
					t.Fatalf("recovered index fails Verify: %v", err)
				}
				if err := re.CloseWAL(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestOpenDurableStaleLogDiscarded pins the crash window between a
// checkpoint's snapshot rename and its log reset: the leftover log's
// records are already contained in the snapshot, so recovery must
// discard them (not double-apply) and restamp the log.
func TestOpenDurableStaleLogDiscarded(t *testing.T) {
	ix, snap, wal := durablePair(t, `<r><a>1</a><b>two</b></r>`, 1)
	if err := ix.UpdateText(textNodesOf(ix.Doc())[0], "updated"); err != nil {
		t.Fatal(err)
	}
	if err := ix.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	staleLog, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Checkpoint(); err != nil { // snapshot now contains the update
		t.Fatal(err)
	}
	want := docXML(t, ix)
	if err := ix.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the old (pre-reset) log survives next to the
	// new snapshot.
	if err := os.WriteFile(wal, staleLog, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(snap, wal, 1)
	if err != nil {
		t.Fatalf("recovery with stale log: %v", err)
	}
	if got := docXML(t, re); !bytes.Equal(got, want) {
		t.Fatalf("stale log was replayed:\n got: %s\nwant: %s", got, want)
	}
	if err := re.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := re.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	// The restamped log must pair with the snapshot on a second open.
	re2, err := OpenDurable(snap, wal, 1)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if got := docXML(t, re2); !bytes.Equal(got, want) {
		t.Fatalf("second recovery diverged")
	}
	re2.CloseWAL()
}

// TestOpenDurableRefusesOldSnapshot: a snapshot older than the log's
// checkpoint generation (say, restored from backup) must be refused —
// replaying the log against it would corrupt silently.
func TestOpenDurableRefusesOldSnapshot(t *testing.T) {
	ix, snap, wal := durablePair(t, `<r><a>1</a></r>`, 1)
	oldSnap, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Checkpoint(); err != nil { // log generation moves ahead
		t.Fatal(err)
	}
	if err := ix.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, oldSnap, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenDurable(snap, wal, 1)
	if err == nil {
		t.Fatal("OpenDurable accepted a snapshot older than the log")
	}
	if !errorsIs(err, ErrStaleSnapshot) {
		t.Fatalf("error %v, want ErrStaleSnapshot", err)
	}
}

// errorsIs avoids importing errors just for one assertion.
func errorsIs(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestCheckpointGenerations(t *testing.T) {
	ix, snap, wal := durablePair(t, `<r><a>1</a></r>`, 1)
	if g := ix.WALGeneration(); g != 1 {
		t.Fatalf("generation after StartDurable = %d, want 1", g)
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if g := ix.WALGeneration(); g != 2 {
		t.Fatalf("generation after Checkpoint = %d, want 2", g)
	}
	ix.CloseWAL()
	re, err := OpenDurable(snap, wal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g := re.WALGeneration(); g != 2 {
		t.Fatalf("generation after reopen = %d, want 2", g)
	}
	re.CloseWAL()
}

// TestPlainSaveIsNotACheckpoint: core-level Save writes a generation-0
// snapshot that deliberately does not pair with an existing log.
func TestPlainSaveIsNotACheckpoint(t *testing.T) {
	ix := Build(mustParseForTest(t, `<r><a>1</a></r>`), DefaultOptions())
	path := filepath.Join(t.TempDir(), "plain.xvi")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g := loaded.WALGeneration(); g != 0 {
		t.Fatalf("plain snapshot loads with generation %d, want 0", g)
	}
}

func TestEmptyBatchNotLogged(t *testing.T) {
	ix, _, wal := durablePair(t, `<r><a>1</a></r>`, 1)
	before, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.UpdateTexts(nil); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() != after.Size() {
		t.Fatalf("empty batch grew the log by %d bytes", after.Size()-before.Size())
	}
	ix.CloseWAL()
}

func TestApplyLogRecordUnknownKind(t *testing.T) {
	ix := Build(mustParseForTest(t, `<r><a>1</a></r>`), DefaultOptions())
	if err := ix.ApplyLogRecord(storage.Record{Kind: 99}); err == nil {
		t.Fatal("unknown record kind applied without error")
	}
}

// TestValidationFailuresLogNothing: an invalid operation must neither
// mutate nor log — otherwise replay would diverge.
func TestValidationFailuresLogNothing(t *testing.T) {
	ix, _, wal := durablePair(t, `<r><a>1</a></r>`, 1)
	before, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.UpdateText(ix.Doc().Root(), "nope"); err == nil {
		t.Fatal("UpdateText on document node succeeded")
	}
	if err := ix.UpdateAttr(xmltree.AttrID(99), "nope"); err == nil {
		t.Fatal("UpdateAttr out of range succeeded")
	}
	if err := ix.DeleteSubtree(0); err == nil {
		t.Fatal("DeleteSubtree of document node succeeded")
	}
	if err := ix.DeleteSubtree(xmltree.NodeID(99)); err == nil {
		t.Fatal("DeleteSubtree out of range succeeded")
	}
	frag := mustParseForTest(t, `<x>1</x>`)
	if _, err := ix.InsertChildren(ix.Doc().Root(), 5, frag); err == nil {
		t.Fatal("InsertChildren at invalid position succeeded")
	}
	after, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() != after.Size() {
		t.Fatalf("failed operations grew the log by %d bytes", after.Size()-before.Size())
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	ix.CloseWAL()
}

// TestOpenDurableCrashMidVersionPublish is the MVCC flavour of the
// crash-injection property: a sequence of version-publishing commits
// (text batch, attr update, delete, insert) runs against a durable
// index, and a crash is injected at EVERY byte boundary of the logged
// tail. Recovery must always land on exactly one of the published
// version boundaries — the document is byte-identical to some pre- or
// post-commit snapshot, never a blend of two versions — and the number
// of recovered commits grows monotonically with the surviving prefix.
func TestOpenDurableCrashMidVersionPublish(t *testing.T) {
	ix, snap, wal := durablePair(t, `<r at="0"><a>1</a><b>two</b><c>3.5</c></r>`, 1)

	// states[g] is the serialized document after g commits.
	states := [][]byte{docXML(t, ix)}
	commit := func(f func() error) {
		t.Helper()
		if err := f(); err != nil {
			t.Fatal(err)
		}
		states = append(states, docXML(t, ix))
	}
	texts := textNodesOf(ix.Doc())
	commit(func() error {
		return ix.UpdateTexts([]TextUpdate{
			{Node: texts[0], Value: "42"},
			{Node: texts[1], Value: "forty-two"},
		})
	})
	commit(func() error { return ix.UpdateAttr(0, "updated") })
	commit(func() error {
		doc := ix.Doc()
		for i := 0; i < doc.NumNodes(); i++ {
			n := xmltree.NodeID(i)
			if doc.Kind(n) == xmltree.Element && doc.Name(n) == "b" {
				return ix.DeleteSubtree(n)
			}
		}
		return fmt.Errorf("no <b>")
	})
	commit(func() error {
		_, err := ix.InsertChildren(ix.Doc().Root(), 0, mustParseForTest(t, `<d ts="2009-03-24">12.5</d>`))
		return err
	})
	commit(func() error { return ix.UpdateText(textNodesOf(ix.Doc())[0], "99.5") })
	if err := ix.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	rawSnap, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	rawWAL, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}

	lastRecovered := 0
	for cut := 0; cut <= len(rawWAL); cut++ {
		dir := t.TempDir()
		snapCopy := filepath.Join(dir, "db.xvi")
		walCopy := filepath.Join(dir, "db.wal")
		if err := os.WriteFile(snapCopy, rawSnap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walCopy, rawWAL[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenDurable(snapCopy, walCopy, 1)
		if err != nil {
			t.Fatalf("cut@%d: recovery failed: %v", cut, err)
		}
		got := docXML(t, re)
		verr := re.Verify()
		re.CloseWAL()
		if verr != nil {
			t.Fatalf("cut@%d: recovered index fails Verify: %v", cut, verr)
		}
		recovered := -1
		for g, want := range states {
			if bytes.Equal(got, want) {
				recovered = g
				break
			}
		}
		if recovered < 0 {
			t.Fatalf("cut@%d: recovered document matches no published version:\n%s", cut, got)
		}
		if recovered < lastRecovered {
			t.Fatalf("cut@%d: recovered %d commits after %d at a shorter prefix", cut, recovered, lastRecovered)
		}
		lastRecovered = recovered
	}
	if lastRecovered != len(states)-1 {
		t.Fatalf("full log recovered %d commits, want %d", lastRecovered, len(states)-1)
	}
}
