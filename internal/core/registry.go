package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/fsm"
)

// TypeID stably identifies a typed range index. IDs are persisted in
// snapshot sections, so a registered type must keep its ID forever;
// reusing a retired ID for a different type corrupts old snapshots.
type TypeID uint16

// Built-in type IDs. New built-ins continue the sequence; external
// registrations should start well above (say 1000) to avoid collisions.
const (
	TypeDouble   TypeID = 1
	TypeDateTime TypeID = 2
	TypeDate     TypeID = 3
)

// TypeSpec describes one pluggable typed index: everything the generic
// build/update/lookup/persist/verify machinery needs to maintain a range
// index for an ordered XML type. The paper's Section 4 machinery (FSM +
// monoid + SCT + fragment descriptors) is shared; a spec contributes only
// the type-specific pieces.
type TypeSpec struct {
	// ID is the stable identifier used in snapshots and lookups.
	ID TypeID
	// Name labels the type in diagnostics and stats ("double", "date", …).
	Name string
	// Machine recognises fragments of the type's lexical space.
	Machine *fsm.Machine
	// Encode turns a castable fragment into an order-preserving 64-bit
	// B+tree key. ok=false when the fragment, though syntactically
	// complete, has no value (e.g. a semantically impossible date).
	Encode func(fsm.Frag) (uint64, bool)
}

func (s TypeSpec) validate() error {
	if s.ID == 0 {
		return fmt.Errorf("core: TypeSpec %q has reserved ID 0", s.Name)
	}
	if s.Name == "" {
		return fmt.Errorf("core: TypeSpec %d has no name", s.ID)
	}
	if s.Machine == nil {
		return fmt.Errorf("core: TypeSpec %q has no machine", s.Name)
	}
	if s.Encode == nil {
		return fmt.Errorf("core: TypeSpec %q has no encoder", s.Name)
	}
	return nil
}

// regTable is one immutable version of the typed-index registry: a
// published table is never mutated, so readers resolve specs with a
// single atomic pointer load and no lock — the same copy-on-write
// publication protocol the index snapshots use. Registration order is
// part of the table (it fixes iteration order everywhere: build loops,
// snapshots, stats).
type regTable struct {
	specs map[TypeID]TypeSpec
	order []TypeID
}

var (
	// regMu serialises writers (RegisterType); readers never take it.
	regMu sync.Mutex
	// typeRegistry points at the current immutable table. Initialised
	// here, before the package init() below registers the built-ins.
	typeRegistry = func() *atomic.Pointer[regTable] {
		p := new(atomic.Pointer[regTable])
		p.Store(&regTable{specs: make(map[TypeID]TypeSpec)})
		return p
	}()
)

// RegisterType adds a typed index to the registry. It is the single
// extension point for new ordered XML types: define a base DFA (see
// fsm.Date for the model), an Encode into an order-preserving uint64, and
// register — build, update, lookup, persist, verify, and stats pick the
// type up with no further control flow. Registering a duplicate ID or
// name, or an incomplete spec, panics: registration happens at init time
// and a bad spec is a programming error. Each registration publishes a
// fresh table copy, so concurrent lookups (index builds, snapshot loads)
// are never blocked, not even during registration.
func RegisterType(spec TypeSpec) {
	if err := spec.validate(); err != nil {
		panic(err.Error())
	}
	regMu.Lock()
	defer regMu.Unlock()
	cur := typeRegistry.Load()
	if _, dup := cur.specs[spec.ID]; dup {
		panic(fmt.Sprintf("core: typed index ID %d registered twice", spec.ID))
	}
	for _, id := range cur.order {
		if cur.specs[id].Name == spec.Name {
			panic(fmt.Sprintf("core: typed index name %q registered twice", spec.Name))
		}
	}
	next := &regTable{
		specs: make(map[TypeID]TypeSpec, len(cur.specs)+1),
		order: make([]TypeID, len(cur.order), len(cur.order)+1),
	}
	for id, s := range cur.specs {
		next.specs[id] = s
	}
	copy(next.order, cur.order)
	next.specs[spec.ID] = spec
	next.order = append(next.order, spec.ID)
	typeRegistry.Store(next)
}

// LookupType returns the spec registered under id. Lock-free.
func LookupType(id TypeID) (TypeSpec, bool) {
	t := typeRegistry.Load()
	spec, ok := t.specs[id]
	return spec, ok
}

// TypeByName returns the spec registered under name. Lock-free.
func TypeByName(name string) (TypeSpec, bool) {
	t := typeRegistry.Load()
	for _, id := range t.order {
		if t.specs[id].Name == name {
			return t.specs[id], true
		}
	}
	return TypeSpec{}, false
}

// RegisteredTypes lists all registered type IDs in registration order.
// The table is immutable, so the returned slice is a copy only to keep
// callers from appending into a published version.
func RegisteredTypes() []TypeID {
	t := typeRegistry.Load()
	out := make([]TypeID, len(t.order))
	copy(out, t.order)
	return out
}

// typeIDsFor expands the built-in sugar booleans plus an explicit list
// into registry order — the single place the boolean↔TypeID mapping
// lives (Options and SaveParts both resolve through it).
func typeIDsFor(double, dateTime, date bool, extra []TypeID) []TypeID {
	ids := make([]TypeID, 0, 3+len(extra))
	if double {
		ids = append(ids, TypeDouble)
	}
	if dateTime {
		ids = append(ids, TypeDateTime)
	}
	if date {
		ids = append(ids, TypeDate)
	}
	ids = append(ids, extra...)
	return orderTypeIDs(ids)
}

// orderTypeIDs sorts ids into registry registration order and drops
// duplicates and unknown IDs.
func orderTypeIDs(ids []TypeID) []TypeID {
	want := make(map[TypeID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	all := RegisteredTypes()
	out := make([]TypeID, 0, len(want))
	for _, id := range all {
		if want[id] {
			out = append(out, id)
		}
	}
	return out
}

// --- built-in types ---

func encodeDouble(f fsm.Frag) (uint64, bool) {
	v, ok := fsm.DoubleValue(f)
	if !ok {
		return 0, false
	}
	return btree.EncodeFloat64(v), true
}

func encodeDateTime(f fsm.Frag) (uint64, bool) {
	v, ok := fsm.DateTimeValue(f)
	if !ok {
		return 0, false
	}
	return btree.EncodeInt64(v), true
}

func encodeDate(f fsm.Frag) (uint64, bool) {
	v, ok := fsm.DateValue(f)
	if !ok {
		return 0, false
	}
	return btree.EncodeInt64(v), true
}

func init() {
	RegisterType(TypeSpec{
		ID:      TypeDouble,
		Name:    "double",
		Machine: fsm.Double(),
		Encode:  encodeDouble,
	})
	RegisterType(TypeSpec{
		ID:      TypeDateTime,
		Name:    "dateTime",
		Machine: fsm.DateTime(),
		Encode:  encodeDateTime,
	})
	// The xs:date index is added purely by registration: no build, update,
	// lookup, persist, verify, or stats code knows about it — the proof of
	// Section 4's genericity claim.
	RegisterType(TypeSpec{
		ID:      TypeDate,
		Name:    "date",
		Machine: fsm.Date(),
		Encode:  encodeDate,
	})
}
