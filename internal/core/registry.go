package core

import (
	"fmt"
	"sync"

	"repro/internal/btree"
	"repro/internal/fsm"
)

// TypeID stably identifies a typed range index. IDs are persisted in
// snapshot sections, so a registered type must keep its ID forever;
// reusing a retired ID for a different type corrupts old snapshots.
type TypeID uint16

// Built-in type IDs. New built-ins continue the sequence; external
// registrations should start well above (say 1000) to avoid collisions.
const (
	TypeDouble   TypeID = 1
	TypeDateTime TypeID = 2
	TypeDate     TypeID = 3
)

// TypeSpec describes one pluggable typed index: everything the generic
// build/update/lookup/persist/verify machinery needs to maintain a range
// index for an ordered XML type. The paper's Section 4 machinery (FSM +
// monoid + SCT + fragment descriptors) is shared; a spec contributes only
// the type-specific pieces.
type TypeSpec struct {
	// ID is the stable identifier used in snapshots and lookups.
	ID TypeID
	// Name labels the type in diagnostics and stats ("double", "date", …).
	Name string
	// Machine recognises fragments of the type's lexical space.
	Machine *fsm.Machine
	// Encode turns a castable fragment into an order-preserving 64-bit
	// B+tree key. ok=false when the fragment, though syntactically
	// complete, has no value (e.g. a semantically impossible date).
	Encode func(fsm.Frag) (uint64, bool)
}

func (s TypeSpec) validate() error {
	if s.ID == 0 {
		return fmt.Errorf("core: TypeSpec %q has reserved ID 0", s.Name)
	}
	if s.Name == "" {
		return fmt.Errorf("core: TypeSpec %d has no name", s.ID)
	}
	if s.Machine == nil {
		return fmt.Errorf("core: TypeSpec %q has no machine", s.Name)
	}
	if s.Encode == nil {
		return fmt.Errorf("core: TypeSpec %q has no encoder", s.Name)
	}
	return nil
}

// typeRegistry is the process-wide table of known typed indexes, in
// registration order (which fixes iteration order everywhere: build
// loops, snapshots, stats).
var typeRegistry = struct {
	sync.RWMutex
	specs map[TypeID]TypeSpec
	order []TypeID
}{specs: make(map[TypeID]TypeSpec)}

// RegisterType adds a typed index to the registry. It is the single
// extension point for new ordered XML types: define a base DFA (see
// fsm.Date for the model), an Encode into an order-preserving uint64, and
// register — build, update, lookup, persist, verify, and stats pick the
// type up with no further control flow. Registering a duplicate ID or
// name, or an incomplete spec, panics: registration happens at init time
// and a bad spec is a programming error.
func RegisterType(spec TypeSpec) {
	if err := spec.validate(); err != nil {
		panic(err.Error())
	}
	typeRegistry.Lock()
	defer typeRegistry.Unlock()
	if _, dup := typeRegistry.specs[spec.ID]; dup {
		panic(fmt.Sprintf("core: typed index ID %d registered twice", spec.ID))
	}
	for _, id := range typeRegistry.order {
		if typeRegistry.specs[id].Name == spec.Name {
			panic(fmt.Sprintf("core: typed index name %q registered twice", spec.Name))
		}
	}
	typeRegistry.specs[spec.ID] = spec
	typeRegistry.order = append(typeRegistry.order, spec.ID)
}

// LookupType returns the spec registered under id.
func LookupType(id TypeID) (TypeSpec, bool) {
	typeRegistry.RLock()
	defer typeRegistry.RUnlock()
	spec, ok := typeRegistry.specs[id]
	return spec, ok
}

// TypeByName returns the spec registered under name.
func TypeByName(name string) (TypeSpec, bool) {
	typeRegistry.RLock()
	defer typeRegistry.RUnlock()
	for _, id := range typeRegistry.order {
		if typeRegistry.specs[id].Name == name {
			return typeRegistry.specs[id], true
		}
	}
	return TypeSpec{}, false
}

// RegisteredTypes lists all registered type IDs in registration order.
func RegisteredTypes() []TypeID {
	typeRegistry.RLock()
	defer typeRegistry.RUnlock()
	out := make([]TypeID, len(typeRegistry.order))
	copy(out, typeRegistry.order)
	return out
}

// typeIDsFor expands the built-in sugar booleans plus an explicit list
// into registry order — the single place the boolean↔TypeID mapping
// lives (Options and SaveParts both resolve through it).
func typeIDsFor(double, dateTime, date bool, extra []TypeID) []TypeID {
	ids := make([]TypeID, 0, 3+len(extra))
	if double {
		ids = append(ids, TypeDouble)
	}
	if dateTime {
		ids = append(ids, TypeDateTime)
	}
	if date {
		ids = append(ids, TypeDate)
	}
	ids = append(ids, extra...)
	return orderTypeIDs(ids)
}

// orderTypeIDs sorts ids into registry registration order and drops
// duplicates and unknown IDs.
func orderTypeIDs(ids []TypeID) []TypeID {
	want := make(map[TypeID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	all := RegisteredTypes()
	out := make([]TypeID, 0, len(want))
	for _, id := range all {
		if want[id] {
			out = append(out, id)
		}
	}
	return out
}

// --- built-in types ---

func encodeDouble(f fsm.Frag) (uint64, bool) {
	v, ok := fsm.DoubleValue(f)
	if !ok {
		return 0, false
	}
	return btree.EncodeFloat64(v), true
}

func encodeDateTime(f fsm.Frag) (uint64, bool) {
	v, ok := fsm.DateTimeValue(f)
	if !ok {
		return 0, false
	}
	return btree.EncodeInt64(v), true
}

func encodeDate(f fsm.Frag) (uint64, bool) {
	v, ok := fsm.DateValue(f)
	if !ok {
		return 0, false
	}
	return btree.EncodeInt64(v), true
}

func init() {
	RegisterType(TypeSpec{
		ID:      TypeDouble,
		Name:    "double",
		Machine: fsm.Double(),
		Encode:  encodeDouble,
	})
	RegisterType(TypeSpec{
		ID:      TypeDateTime,
		Name:    "dateTime",
		Machine: fsm.DateTime(),
		Encode:  encodeDateTime,
	})
	// The xs:date index is added purely by registration: no build, update,
	// lookup, persist, verify, or stats code knows about it — the proof of
	// Section 4's genericity claim.
	RegisterType(TypeSpec{
		ID:      TypeDate,
		Name:    "date",
		Machine: fsm.Date(),
		Encode:  encodeDate,
	})
}
