package core

import (
	"fmt"

	"repro/internal/fsm"
	"repro/internal/vhash"
	"repro/internal/xmltree"
)

// doubleMachineForScan and castDouble give the scan baselines the same
// cast semantics as the index (FSM acceptance + fragment value).
func doubleMachineForScan() *fsm.Machine { return fsm.Double() }

func castDouble(m *fsm.Machine, s string) (float64, bool) {
	f, ok := m.ParseFragString(s)
	if !ok {
		return 0, false
	}
	return fsm.DoubleValue(f)
}

// VerifyLeaves checks the stored per-leaf state against ground truth:
// every value-carrying leaf's (and attribute's) hash must equal H of its
// character data, and its state under each typed index must match a
// fresh FSM run. Interior hashes and states are derived from leaves by
// the fold, so this is the recovery contract's integrity check — O(total
// character data), cheap enough to run at every OpenDurable, unlike the
// full Verify.
func (ix *Snapshot) VerifyLeaves() error {
	doc := ix.doc
	for i := 0; i < doc.NumNodes(); i++ {
		nd := xmltree.NodeID(i)
		switch doc.Kind(nd) {
		case xmltree.Text, xmltree.Comment, xmltree.PI:
		default:
			continue
		}
		val := doc.ValueBytes(nd)
		if ix.hash != nil {
			if want := vhash.Hash(val); ix.hash[i] != want {
				return fmt.Errorf("core: leaf %d hash %#x, want %#x", i, ix.hash[i], want)
			}
		}
		for _, ti := range ix.typed {
			wantFrag, ok := ti.spec.Machine.ParseFrag(val)
			got := ti.frag(nd, ix.stableOf[i])
			if !ok {
				if got.Elem != fsm.Reject {
					return fmt.Errorf("core: leaf %d %s elem %d, want Reject", i, ti.spec.Name, got.Elem)
				}
				continue
			}
			if got.Elem != wantFrag.Elem || got.Lexical() != wantFrag.Lexical() {
				return fmt.Errorf("core: leaf %d %s state mismatch", i, ti.spec.Name)
			}
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		ad := xmltree.AttrID(a)
		val := doc.AttrValueBytes(ad)
		if ix.attrHash != nil {
			if want := vhash.Hash(val); ix.attrHash[a] != want {
				return fmt.Errorf("core: attr %d hash %#x, want %#x", a, ix.attrHash[a], want)
			}
		}
		for _, ti := range ix.typed {
			wantFrag, ok := ti.spec.Machine.ParseFrag(val)
			got := ti.attrFrag(ad, ix.attrStableOf[a])
			if !ok {
				if got.Elem != fsm.Reject {
					return fmt.Errorf("core: attr %d %s elem %d, want Reject", a, ti.spec.Name, got.Elem)
				}
				continue
			}
			if got.Elem != wantFrag.Elem || got.Lexical() != wantFrag.Lexical() {
				return fmt.Errorf("core: attr %d %s state mismatch", a, ti.spec.Name)
			}
		}
	}
	return nil
}

// Verify checks the full consistency of the indices against ground truth
// recomputed from the document: per-node hashes equal H of materialised
// string values, per-node elements and values equal a fresh FSM run for
// every typed index in the registry, the B+trees contain exactly the
// expected postings, and the stable-id maps are mutually inverse. It is
// O(document²·depth) in the worst case and meant for tests.
func (ix *Snapshot) Verify() error {
	doc := ix.doc
	n := doc.NumNodes()

	if len(ix.stableOf) != n {
		return fmt.Errorf("core: stableOf has %d entries, want %d", len(ix.stableOf), n)
	}
	for i := 0; i < n; i++ {
		s := ix.stableOf[i]
		if int(s) >= len(ix.preOf) || ix.preOf[s] != int32(i) {
			return fmt.Errorf("core: stable map broken at pre %d (stable %d)", i, s)
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		s := ix.attrStableOf[a]
		if int(s) >= len(ix.attrOf) || ix.attrOf[s] != int32(a) {
			return fmt.Errorf("core: attr stable map broken at %d", a)
		}
	}

	strEntries := 0
	typedEntries := make([]int, len(ix.typed))
	for i := 0; i < n; i++ {
		nd := xmltree.NodeID(i)
		sv := doc.StringValue(nd)
		if ix.hash != nil {
			if want := vhash.HashString(sv); ix.hash[i] != want {
				return fmt.Errorf("core: node %d hash %#x, want %#x (value %.40q)", i, ix.hash[i], want, sv)
			}
		}
		if err := ix.verifyTyped(nd, sv); err != nil {
			return err
		}
		if indexedNodeKind(doc.Kind(nd)) {
			strEntries++
		}
		for t, ti := range ix.typed {
			if _, ok := ti.treeKey(doc, nd, ix.stableOf[i]); ok {
				typedEntries[t]++
			}
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		ad := xmltree.AttrID(a)
		sv := doc.AttrValue(ad)
		if ix.attrHash != nil {
			if want := vhash.HashString(sv); ix.attrHash[a] != want {
				return fmt.Errorf("core: attr %d hash %#x, want %#x", a, ix.attrHash[a], want)
			}
		}
		if err := ix.verifyTypedAttr(ad, sv); err != nil {
			return err
		}
		strEntries++
		for t, ti := range ix.typed {
			if _, ok := ti.attrKey(ad, ix.attrStableOf[a]); ok {
				typedEntries[t]++
			}
		}
	}

	// Tree cardinalities, then per-posting membership.
	if ix.strTree != nil && ix.strTree.Len() != strEntries {
		return fmt.Errorf("core: string tree has %d entries, want %d", ix.strTree.Len(), strEntries)
	}
	for t, ti := range ix.typed {
		if ti.tree.Len() != typedEntries[t] {
			return fmt.Errorf("core: %s tree has %d entries, want %d", ti.spec.Name, ti.tree.Len(), typedEntries[t])
		}
	}
	for i := 0; i < n; i++ {
		nd := xmltree.NodeID(i)
		if !indexedNodeKind(doc.Kind(nd)) {
			continue
		}
		stable := ix.stableOf[i]
		posting := packPosting(stable, false)
		if ix.strTree != nil && !ix.strTree.Contains(uint64(ix.hash[i]), posting) {
			return fmt.Errorf("core: string tree missing node %d", i)
		}
		for _, ti := range ix.typed {
			if key, ok := ti.treeKey(doc, nd, stable); ok && !ti.tree.Contains(key, posting) {
				return fmt.Errorf("core: %s tree missing node %d", ti.spec.Name, i)
			}
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		ad := xmltree.AttrID(a)
		stable := ix.attrStableOf[a]
		posting := packPosting(stable, true)
		if ix.strTree != nil && !ix.strTree.Contains(uint64(ix.attrHash[a]), posting) {
			return fmt.Errorf("core: string tree missing attr %d", a)
		}
		for _, ti := range ix.typed {
			if key, ok := ti.attrKey(ad, stable); ok && !ti.tree.Contains(key, posting) {
				return fmt.Errorf("core: %s tree missing attr %d", ti.spec.Name, a)
			}
		}
	}

	// Planner statistics: every histogram's maintained population must
	// track its tree exactly (bounds may be stale between rebuilds, the
	// counts never are).
	if ix.strTree != nil && ix.strStats != nil {
		if got := ix.strStats.sum(); got != ix.strTree.Len() {
			return fmt.Errorf("core: string histogram population %d, tree has %d", got, ix.strTree.Len())
		}
		if ix.strStats.total != ix.strTree.Len() {
			return fmt.Errorf("core: string stats total %d, tree has %d", ix.strStats.total, ix.strTree.Len())
		}
	}
	for _, ti := range ix.typed {
		if ti.stats == nil {
			continue
		}
		if got := ti.stats.sum(); got != ti.tree.Len() {
			return fmt.Errorf("core: %s histogram population %d, tree has %d", ti.spec.Name, got, ti.tree.Len())
		}
		if ti.stats.total != ti.tree.Len() {
			return fmt.Errorf("core: %s stats total %d, tree has %d", ti.spec.Name, ti.stats.total, ti.tree.Len())
		}
	}
	return ix.verifySubstr()
}

func (ix *Snapshot) verifyTyped(n xmltree.NodeID, sv string) error {
	for _, ti := range ix.typed {
		wantFrag, ok := ti.spec.Machine.ParseFragString(sv)
		gotElem := ti.elems[n]
		if !ok {
			if gotElem != fsm.Reject {
				return fmt.Errorf("core: node %d %s elem %d, want Reject (value %.40q)", n, ti.spec.Name, gotElem, sv)
			}
			continue
		}
		got := ti.frag(n, ix.stableOf[n])
		if got.Elem != wantFrag.Elem {
			return fmt.Errorf("core: node %d %s elem %d, want %d (value %.40q)", n, ti.spec.Name, got.Elem, wantFrag.Elem, sv)
		}
		// Values must agree when castable; item-level equality can differ
		// harmlessly in >17-digit approximation territory, so compare the
		// reconstruction.
		if got.Lexical() != wantFrag.Lexical() {
			return fmt.Errorf("core: node %d %s lexical %q, want %q", n, ti.spec.Name, got.Lexical(), wantFrag.Lexical())
		}
	}
	return nil
}

func (ix *Snapshot) verifyTypedAttr(a xmltree.AttrID, sv string) error {
	for _, ti := range ix.typed {
		wantFrag, ok := ti.spec.Machine.ParseFragString(sv)
		gotElem := ti.attrElems[a]
		if !ok {
			if gotElem != fsm.Reject {
				return fmt.Errorf("core: attr %d %s elem %d, want Reject", a, ti.spec.Name, gotElem)
			}
			continue
		}
		got := ti.attrFrag(a, ix.attrStableOf[a])
		if got.Elem != wantFrag.Elem || got.Lexical() != wantFrag.Lexical() {
			return fmt.Errorf("core: attr %d %s frag mismatch", a, ti.spec.Name)
		}
	}
	return nil
}
