package core

import (
	"unsafe"

	"repro/internal/fsm"
)

// MemStats reports the in-memory footprint of one snapshot version —
// the reader-hot state the compressed layout work (packed B+tree
// leaves, interned heap values) exists to shrink. All byte counts are
// measured at slice capacity where capacities are reachable, with
// fixed per-entry estimates for maps; they are accounting numbers for
// tracking layout regressions, not allocator ground truth.
//
// Unpacked* fields are the analytic size of the same state under the
// pre-packing layout — B+tree leaves holding 16-byte entry structs and
// the text heap holding one copy per value reference — so a single
// measurement shows what the packed layout saves.
type MemStats struct {
	// DocBytes is the document: columnar node/attribute tables, text
	// heap backing array, and name dictionary.
	DocBytes int `json:"doc_bytes"`
	// StringTreeBytes is the string hash B+tree (packed leaves).
	StringTreeBytes int `json:"string_tree_bytes"`
	// TypedTreeBytes sums the typed value B+trees.
	TypedTreeBytes int `json:"typed_tree_bytes"`
	// SubstrTreeBytes is the q-gram substring B+tree, 0 when disabled.
	SubstrTreeBytes int `json:"substr_tree_bytes,omitempty"`
	// SideBytes covers the per-version side tables: stable-id maps,
	// hash columns, and the typed indexes' state columns and item maps.
	SideBytes int `json:"side_bytes"`
	// TotalBytes is the sum of the components above.
	TotalBytes int `json:"total_bytes"`

	// UnpackedTreeBytes is what all B+trees together would occupy with
	// uncompressed leaves.
	UnpackedTreeBytes int `json:"unpacked_tree_bytes"`
	// UnpackedDocBytes is DocBytes with the heap holding one copy per
	// value reference (no interning).
	UnpackedDocBytes int `json:"unpacked_doc_bytes"`

	// Nodes is the indexed population: tree nodes plus attributes (the
	// paper's "Total Nodes").
	Nodes int `json:"nodes"`
	// BytesPerNode is TotalBytes / Nodes — the tracked layout metric.
	BytesPerNode float64 `json:"bytes_per_node"`
	// UnpackedBytesPerNode is the same ratio under the uncompressed
	// layout; the packed-vs-unpacked gap in one number.
	UnpackedBytesPerNode float64 `json:"unpacked_bytes_per_node"`
}

// MemStats measures this version's in-memory footprint. It only reads
// immutable snapshot state, so it is safe on any pinned version while
// writers commit.
func (ix *Snapshot) MemStats() MemStats {
	var ms MemStats
	ms.DocBytes = ix.doc.MemBytes()
	ms.UnpackedDocBytes = ms.DocBytes - ix.doc.HeapBytes() + ix.doc.LiveHeapBytes()

	if ix.strTree != nil {
		ms.StringTreeBytes = ix.strTree.MemBytes()
		ms.UnpackedTreeBytes += ix.strTree.UnpackedBytes()
	}
	for _, ti := range ix.typed {
		ms.TypedTreeBytes += ti.tree.MemBytes()
		ms.UnpackedTreeBytes += ti.tree.UnpackedBytes()
	}
	if ix.subTree != nil {
		ms.SubstrTreeBytes = ix.subTree.MemBytes()
		ms.UnpackedTreeBytes += ix.subTree.UnpackedBytes()
	}

	side := cap(ix.stableOf)*4 + cap(ix.preOf)*4 +
		cap(ix.attrStableOf)*4 + cap(ix.attrOf)*4 +
		cap(ix.hash)*4 + cap(ix.attrHash)*4
	const itemBytes = int(unsafe.Sizeof(fsm.Item{}))
	const mapEntryBytes = 48 // rough per-entry map overhead (key+header+buckets)
	for _, ti := range ix.typed {
		side += cap(ti.elems) + cap(ti.attrElems) // fsm.Elem is one byte
		for _, items := range ti.items {
			side += mapEntryBytes + cap(items)*itemBytes
		}
		for _, items := range ti.attrItems {
			side += mapEntryBytes + cap(items)*itemBytes
		}
	}
	ms.SideBytes = side

	ms.TotalBytes = ms.DocBytes + ms.StringTreeBytes + ms.TypedTreeBytes +
		ms.SubstrTreeBytes + ms.SideBytes
	unpackedTotal := ms.UnpackedDocBytes + ms.UnpackedTreeBytes + ms.SideBytes

	ms.Nodes = ix.doc.NumNodes() + ix.doc.NumAttrs()
	if ms.Nodes > 0 {
		ms.BytesPerNode = float64(ms.TotalBytes) / float64(ms.Nodes)
		ms.UnpackedBytesPerNode = float64(unpackedTotal) / float64(ms.Nodes)
	}
	return ms
}
