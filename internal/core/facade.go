package core

import (
	"repro/internal/fsm"
	"repro/internal/xmltree"
)

// Read-path facade. Every read method on *Indexes loads the currently
// published *Snapshot with one atomic pointer read and delegates — the
// whole call then runs lock-free against that immutable version. A
// caller making several related reads that must observe the same
// version should call Snapshot() once and issue them all against it;
// the per-method wrappers below are the convenient form for one-shot
// reads where torn sequences don't matter.

// Doc returns the indexed document of the current version.
func (ix *Indexes) Doc() *xmltree.Doc { return ix.cur.Load().Doc() }

// Options reports which indices were built.
func (ix *Indexes) Options() Options { return ix.cur.Load().Options() }

// NodeHash returns H(string-value) of node n in the current version.
func (ix *Indexes) NodeHash(n xmltree.NodeID) uint32 { return ix.cur.Load().NodeHash(n) }

// AttrHash returns H(value) of attribute a in the current version.
func (ix *Indexes) AttrHash(a xmltree.AttrID) uint32 { return ix.cur.Load().AttrHash(a) }

// TypedIDs lists the built typed indexes in build order.
func (ix *Indexes) TypedIDs() []TypeID { return ix.cur.Load().TypedIDs() }

// HasTyped reports whether typed index id was built.
func (ix *Indexes) HasTyped(id TypeID) bool { return ix.cur.Load().HasTyped(id) }

// HasString reports whether the string equality index was built.
func (ix *Indexes) HasString() bool { return ix.cur.Load().HasString() }

// HasSubstring reports whether the q-gram substring index is enabled.
func (ix *Indexes) HasSubstring() bool { return ix.cur.Load().HasSubstring() }

// Contains returns the text and attribute nodes whose value contains
// pattern in the current version, verified, in document order.
func (ix *Indexes) Contains(pattern string) []Posting {
	return ix.cur.Load().Contains(pattern)
}

// StartsWith returns the text and attribute nodes whose value starts
// with pattern in the current version.
func (ix *Indexes) StartsWith(pattern string) []Posting {
	return ix.cur.Load().StartsWith(pattern)
}

// ScanContains is the index-free baseline for Contains.
func (ix *Indexes) ScanContains(pattern string) []Posting {
	return ix.cur.Load().ScanContains(pattern)
}

// ScanStartsWith is the index-free baseline for StartsWith.
func (ix *Indexes) ScanStartsWith(pattern string) []Posting {
	return ix.cur.Load().ScanStartsWith(pattern)
}

// EstimateSubstr estimates the substring access path's candidate count.
func (ix *Indexes) EstimateSubstr(pattern string) float64 {
	return ix.cur.Load().EstimateSubstr(pattern)
}

// SubstringPlannerStats reports the substring index's planner statistics.
func (ix *Indexes) SubstringPlannerStats() (PlannerStats, bool) {
	return ix.cur.Load().SubstringPlannerStats()
}

// TypedElem returns node n's SCT element under typed index id.
func (ix *Indexes) TypedElem(id TypeID, n xmltree.NodeID) fsm.Elem {
	return ix.cur.Load().TypedElem(id, n)
}

// TypedFrag returns node n's fragment under typed index id.
func (ix *Indexes) TypedFrag(id TypeID, n xmltree.NodeID) (fsm.Frag, bool) {
	return ix.cur.Load().TypedFrag(id, n)
}

// DoubleElem returns node n's SCT element under the double index.
func (ix *Indexes) DoubleElem(n xmltree.NodeID) fsm.Elem { return ix.cur.Load().DoubleElem(n) }

// DoubleValue returns node n's double value, if it accepts as one.
func (ix *Indexes) DoubleValue(n xmltree.NodeID) (float64, bool) {
	return ix.cur.Load().DoubleValue(n)
}

// DateTimeValue returns node n's dateTime value, if it accepts as one.
func (ix *Indexes) DateTimeValue(n xmltree.NodeID) (int64, bool) {
	return ix.cur.Load().DateTimeValue(n)
}

// DateValue returns node n's date value, if it accepts as one.
func (ix *Indexes) DateValue(n xmltree.NodeID) (int64, bool) {
	return ix.cur.Load().DateValue(n)
}

// StableOf returns the stable id of the node at pre rank n.
func (ix *Indexes) StableOf(n xmltree.NodeID) uint32 { return ix.cur.Load().StableOf(n) }

// AttrStableOf returns the stable id of attribute a.
func (ix *Indexes) AttrStableOf(a xmltree.AttrID) uint32 { return ix.cur.Load().AttrStableOf(a) }

// NodeOfStable maps a stable node id back to its current pre rank.
func (ix *Indexes) NodeOfStable(s uint32) xmltree.NodeID { return ix.cur.Load().NodeOfStable(s) }

// AttrOfStable maps a stable attribute id back to its current id.
func (ix *Indexes) AttrOfStable(s uint32) xmltree.AttrID { return ix.cur.Load().AttrOfStable(s) }

// LookupStringCandidates returns the hash-index candidates for value.
func (ix *Indexes) LookupStringCandidates(value string) []Posting {
	return ix.cur.Load().LookupStringCandidates(value)
}

// LookupString returns the verified postings whose string value is value.
func (ix *Indexes) LookupString(value string) []Posting {
	return ix.cur.Load().LookupString(value)
}

// RangeTyped returns the postings in [lo, hi] under typed index id.
func (ix *Indexes) RangeTyped(id TypeID, lo, hi uint64, incLo, incHi bool) []Posting {
	return ix.cur.Load().RangeTyped(id, lo, hi, incLo, incHi)
}

// RangeDouble returns the postings with a double value in [lo, hi].
func (ix *Indexes) RangeDouble(lo, hi float64, incLo, incHi bool) []Posting {
	return ix.cur.Load().RangeDouble(lo, hi, incLo, incHi)
}

// LookupDoubleEq returns the postings whose double value equals v.
func (ix *Indexes) LookupDoubleEq(v float64) []Posting { return ix.cur.Load().LookupDoubleEq(v) }

// RangeDateTime returns the postings with a dateTime value in [lo, hi].
func (ix *Indexes) RangeDateTime(lo, hi int64) []Posting {
	return ix.cur.Load().RangeDateTime(lo, hi)
}

// RangeDate returns the postings with a date value in [lo, hi].
func (ix *Indexes) RangeDate(lo, hi int64) []Posting { return ix.cur.Load().RangeDate(lo, hi) }

// ScanStringEquals is the index-free baseline for LookupString.
func (ix *Indexes) ScanStringEquals(value string) []Posting {
	return ix.cur.Load().ScanStringEquals(value)
}

// ScanDoubleRange is the index-free baseline for RangeDouble.
func (ix *Indexes) ScanDoubleRange(lo, hi float64, incLo, incHi bool) []Posting {
	return ix.cur.Load().ScanDoubleRange(lo, hi, incLo, incHi)
}

// ScanDateRange is the index-free baseline for RangeDate.
func (ix *Indexes) ScanDateRange(lo, hi int64) []Posting {
	return ix.cur.Load().ScanDateRange(lo, hi)
}

// StringEqIter opens a streaming iterator over LookupString's result.
func (ix *Indexes) StringEqIter(value string) *PostingIter {
	return ix.cur.Load().StringEqIter(value)
}

// TypedRangeIter opens a streaming iterator over RangeTyped's result.
func (ix *Indexes) TypedRangeIter(id TypeID, lo, hi uint64, incLo, incHi bool) *PostingIter {
	return ix.cur.Load().TypedRangeIter(id, lo, hi, incLo, incHi)
}

// StringPlannerStats reports the string index's planner statistics.
func (ix *Indexes) StringPlannerStats() (PlannerStats, bool) {
	return ix.cur.Load().StringPlannerStats()
}

// TypedPlannerStats reports typed index id's planner statistics.
func (ix *Indexes) TypedPlannerStats(id TypeID) (PlannerStats, bool) {
	return ix.cur.Load().TypedPlannerStats(id)
}

// EstimateStringEq estimates the postings carrying H(value).
func (ix *Indexes) EstimateStringEq(value string) float64 {
	return ix.cur.Load().EstimateStringEq(value)
}

// EstimateTypedRange estimates the postings in [lo, hi] under index id.
func (ix *Indexes) EstimateTypedRange(id TypeID, lo, hi uint64, incLo, incHi bool) float64 {
	return ix.cur.Load().EstimateTypedRange(id, lo, hi, incLo, incHi)
}

// Stats summarises the current version's index sizes.
func (ix *Indexes) Stats() IndexStats { return ix.cur.Load().Stats() }

// MemStats measures the current version's in-memory footprint under the
// compressed layout, including the bytes-per-node layout metric.
func (ix *Indexes) MemStats() MemStats { return ix.cur.Load().MemStats() }

// DocBytes reports the document store's in-memory footprint.
func (ix *Indexes) DocBytes() int { return ix.cur.Load().DocBytes() }

// Verify cross-checks every index invariant of the current version.
func (ix *Indexes) Verify() error { return ix.cur.Load().Verify() }

// VerifyLeaves spot-checks leaf hashes and typed leaf states.
func (ix *Indexes) VerifyLeaves() error { return ix.cur.Load().VerifyLeaves() }

// Save writes the current version to a snapshot file at path.
func (ix *Indexes) Save(path string) error { return ix.cur.Load().Save(path) }

// SavePartsTo writes only the selected sections of the current version.
func (ix *Indexes) SavePartsTo(path string, parts SaveParts) error {
	return ix.cur.Load().SavePartsTo(path, parts)
}
