package core

import (
	"repro/internal/btree"
	"repro/internal/fsm"
	"repro/internal/vhash"
	"repro/internal/xmltree"
)

// Build creates the selected value indices over doc in a single
// depth-first pass — the paper's Figure 7 algorithm. Text nodes are hashed
// with H and fed to the FSMs; every intermediate node's field is the fold
// of its contributing children through the combination function C and the
// SCT, so no node's string value is ever materialised. Every enabled
// typed index runs through the same loop: the registry supplies the
// machine and encoder, nothing else is type-specific.
func Build(doc *xmltree.Doc, opts Options) *Indexes {
	n := doc.NumNodes()
	na := doc.NumAttrs()
	ix := &Snapshot{
		doc:          doc,
		opts:         opts,
		stableOf:     make([]uint32, n),
		preOf:        make([]int32, n),
		attrStableOf: make([]uint32, na),
		attrOf:       make([]int32, na),
	}
	for i := 0; i < n; i++ {
		ix.stableOf[i] = uint32(i)
		ix.preOf[i] = int32(i)
	}
	for i := 0; i < na; i++ {
		ix.attrStableOf[i] = uint32(i)
		ix.attrOf[i] = int32(i)
	}
	if opts.String {
		ix.hash = make([]uint32, n)
		ix.attrHash = make([]uint32, na)
	}
	// typeIDs() intersects with the registry, so every ID resolves.
	for _, id := range opts.typeIDs() {
		spec, _ := LookupType(id)
		ix.typed = append(ix.typed, newTypedIndex(spec, n, na))
	}

	ix.eachTyped(func(ti *typedIndex) { ti.collect = true })
	if workers := opts.workers(); workers > 1 {
		ix.buildParallel(workers)
	} else {
		ix.buildPass(0, xmltree.NodeID(n-1), nil)
		ix.buildAttrs(0, xmltree.AttrID(na-1), nil)
		ix.buildTrees(1)
	}
	ix.eachTyped(func(ti *typedIndex) { ti.collect = false; ti.scratch = nil })
	// Derive the planner statistics (distinct counts, equi-depth
	// histograms) from the freshly loaded trees — one extra scan per
	// tree, well under the cost of the bulk load that produced it.
	ix.rebuildStats()
	return wrapSnapshot(ix)
}

// foldFrag combines an accumulated fragment with a child fragment,
// propagating rejection (the SCT's early-reject).
func foldFrag(m *fsm.Machine, acc, child fsm.Frag) fsm.Frag {
	if acc.Elem == fsm.Reject || child.Elem == fsm.Reject {
		return fsm.Frag{Elem: fsm.Reject}
	}
	out, ok := m.Combine(acc, child)
	if !ok {
		return fsm.Frag{Elem: fsm.Reject}
	}
	return out
}

// buildFrame accumulates one open element's (or the document's) fields
// during the depth-first pass: the running hash and the running fragment
// of each enabled machine (frags is parallel to Indexes.typed).
type buildFrame struct {
	node  xmltree.NodeID
	end   xmltree.NodeID // last pre rank inside the subtree
	hash  uint32
	frags []fsm.Frag
}

// identityFrags returns one identity fragment per enabled typed index.
func (ix *Snapshot) identityFrags() []fsm.Frag {
	if len(ix.typed) == 0 {
		return nil
	}
	frags := make([]fsm.Frag, len(ix.typed))
	for t := range frags {
		frags[t] = fsm.Frag{Elem: fsm.Identity}
	}
	return frags
}

// buildPass computes the per-node fields for the pre-order range
// [from, to], which must cover complete subtrees rooted at nodes whose
// parents lie outside the range (it is used for the whole document at
// Build time, for one shard of it during parallel builds, and for
// freshly inserted subtrees during structural updates). Fields of the
// range's root nodes are NOT folded into parents outside the range;
// callers recompute those ancestors.
//
// A nil sink writes typed-index results straight into the shared side
// tables; concurrent shard workers pass their own sink so the map and
// slice appends stay private until the merge (see parallel.go).
func (ix *Snapshot) buildPass(from, to xmltree.NodeID, sink *buildSink) {
	doc := ix.doc
	var stack []buildFrame

	// Popped frames donate their frag slices back so the pass allocates
	// O(depth) slices, not O(elements).
	var fragsPool [][]fsm.Frag
	takeFrags := func() []fsm.Frag {
		if n := len(fragsPool); n > 0 {
			frags := fragsPool[n-1]
			fragsPool = fragsPool[:n-1]
			for t := range frags {
				frags[t] = fsm.Frag{Elem: fsm.Identity}
			}
			return frags
		}
		return ix.identityFrags()
	}

	finalize := func(f *buildFrame) {
		stable := ix.stableOf[f.node]
		posting := packPosting(stable, false)
		if ix.hash != nil {
			ix.hash[f.node] = f.hash
		}
		// Elements join the value trees only with COMBINED (mixed-content)
		// values; single-text wrappers are chain-lifted at query time.
		combined := isCombinedValue(doc, f.node)
		for t, ti := range ix.typed {
			sink.setFrag(ti, t, f.node, stable, f.frags[t])
			if combined {
				sink.entry(ti, t, f.frags[t], posting)
			}
		}
		// Fold the completed element into its parent's accumulator (the
		// paper's C(father.field, cur.field) / SCT probe steps).
		if len(stack) > 0 {
			p := &stack[len(stack)-1]
			if ix.hash != nil {
				p.hash = vhash.Combine(p.hash, f.hash)
			}
			for t, ti := range ix.typed {
				p.frags[t] = foldFrag(ti.spec.Machine, p.frags[t], f.frags[t])
			}
		}
		if f.frags != nil {
			fragsPool = append(fragsPool, f.frags)
		}
	}

	leafFrags := make([]fsm.Frag, len(ix.typed))
	for i := from; i <= to; i++ {
		switch doc.Kind(i) {
		case xmltree.Element, xmltree.Document:
			stack = append(stack, buildFrame{
				node:  i,
				end:   i + xmltree.NodeID(doc.Size(i)),
				frags: takeFrags(),
			})
		case xmltree.Text:
			val := doc.ValueBytes(i)
			stable := ix.stableOf[i]
			var h uint32
			if ix.hash != nil {
				h = vhash.Hash(val)
				ix.hash[i] = h
			}
			for t, ti := range ix.typed {
				f, _ := ti.spec.Machine.ParseFrag(val) // rejected → zero Frag (Reject)
				leafFrags[t] = f
				sink.setFrag(ti, t, i, stable, f)
				sink.entry(ti, t, f, packPosting(stable, false))
			}
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if ix.hash != nil {
					p.hash = vhash.Combine(p.hash, h)
				}
				for t, ti := range ix.typed {
					p.frags[t] = foldFrag(ti.spec.Machine, p.frags[t], leafFrags[t])
				}
			}
		case xmltree.Comment, xmltree.PI:
			// Own value, no contribution to ancestors (XDM), and no
			// posting in the value trees.
			stable := ix.stableOf[i]
			if ix.hash != nil {
				ix.hash[i] = vhash.Hash(doc.ValueBytes(i))
			}
			for t, ti := range ix.typed {
				f, _ := ti.spec.Machine.ParseFrag(doc.ValueBytes(i))
				sink.setFrag(ti, t, i, stable, f)
			}
		}
		// Close every frame whose subtree ends here.
		for len(stack) > 0 && stack[len(stack)-1].end == i {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			finalize(&f)
		}
	}
}

// buildAttrs computes attribute fields for the id range [from, to].
// Attribute values never contribute to ancestors, which also makes this
// pass trivially shardable: parallel builds carve [0, NumAttrs) into
// chunks and give each worker its own sink.
func (ix *Snapshot) buildAttrs(from, to xmltree.AttrID, sink *buildSink) {
	doc := ix.doc
	for a := from; a <= to; a++ {
		val := doc.AttrValueBytes(a)
		stable := ix.attrStableOf[a]
		if ix.attrHash != nil {
			ix.attrHash[a] = vhash.Hash(val)
		}
		for t, ti := range ix.typed {
			f, _ := ti.spec.Machine.ParseFrag(val)
			sink.setAttrFrag(ti, t, a, stable, f)
			sink.entry(ti, t, f, packPosting(stable, true))
		}
	}
}

// indexedNodeKind reports whether tree nodes of kind k receive postings in
// the B+trees. Comments and PIs keep per-node fields but are not query
// targets.
func indexedNodeKind(k xmltree.Kind) bool {
	return k == xmltree.Element || k == xmltree.Text || k == xmltree.Document
}

// buildTrees bulk-loads the B+trees from the computed fields. The trees
// are independent after collection, so with workers > 1 the string tree
// and every typed tree sort and load concurrently (each sort itself fans
// out through btree.SortEntriesParallel). The loads run through the same
// worker budget as the collection passes, with the per-tree sort fan-out
// divided by the number of concurrently loading trees, so total
// CPU-bound goroutines stay within Options.Parallelism. The loaded trees
// are identical for any worker count: entries are sorted by
// (key, posting) before bulk loading, which erases collection order.
func (ix *Snapshot) buildTrees(workers int) {
	doc := ix.doc
	n := doc.NumNodes()
	na := doc.NumAttrs()

	var loads []func(sortWorkers int)
	spawn := func(f func(sortWorkers int)) {
		if workers <= 1 {
			f(1)
			return
		}
		loads = append(loads, f)
	}

	if ix.hash != nil {
		spawn(func(sortWorkers int) {
			entries := make([]btree.Entry, 0, n+na)
			for i := 0; i < n; i++ {
				if indexedNodeKind(doc.Kind(xmltree.NodeID(i))) {
					entries = append(entries, btree.Entry{
						Key: uint64(ix.hash[i]),
						Val: packPosting(ix.stableOf[i], false),
					})
				}
			}
			for a := 0; a < na; a++ {
				entries = append(entries, btree.Entry{
					Key: uint64(ix.attrHash[a]),
					Val: packPosting(ix.attrStableOf[a], true),
				})
			}
			btree.SortEntriesParallel(entries, sortWorkers)
			ix.strTree = btree.NewFromSorted(entries)
		})
	}

	ix.eachTyped(func(ti *typedIndex) {
		spawn(func(sortWorkers int) {
			entries := ti.scratch
			if !ti.collect {
				// Rebuilt outside the initial pass (not currently exercised,
				// but kept for safety): scan the fields.
				entries = entries[:0]
				for i := 0; i < n; i++ {
					nd := xmltree.NodeID(i)
					if key, ok := ti.treeKey(doc, nd, ix.stableOf[i]); ok {
						entries = append(entries, btree.Entry{Key: key, Val: packPosting(ix.stableOf[i], false)})
					}
				}
				for a := 0; a < na; a++ {
					if key, ok := ti.attrKey(xmltree.AttrID(a), ix.attrStableOf[a]); ok {
						entries = append(entries, btree.Entry{Key: key, Val: packPosting(ix.attrStableOf[a], true)})
					}
				}
			}
			btree.SortEntriesParallel(entries, sortWorkers)
			ti.tree = btree.NewFromSorted(entries)
		})
	})

	concurrent := len(loads)
	if concurrent > workers {
		concurrent = workers
	}
	sortWorkers := 1
	if concurrent > 0 {
		sortWorkers = workers / concurrent
		if sortWorkers < 1 {
			sortWorkers = 1
		}
	}
	parallelFor(workers, len(loads), func(i int) { loads[i](sortWorkers) })
}
