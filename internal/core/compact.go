package core

// Automatic heap compaction. Value overwrites and subtree deletions
// append new heap bytes and abandon old ones; a long-lived document
// under an update-heavy workload would otherwise grow its heap without
// bound. Each commit path checks the draft's dead-byte ratio after
// applying its mutation and compacts the draft before it is published.
//
// This is safe exactly because it runs on the private draft: Compact
// allocates fresh value/attrValue columns and a fresh heap (the cow.go
// contract), so published snapshots pinned by concurrent readers keep
// their columns and heap bytes untouched. It is also deterministic:
// the dead counter evolves identically from the same record sequence,
// so a follower replaying shipped records compacts at the same commits
// as the leader — and since serialisation re-packs values anyway,
// compaction never changes snapshot bytes.

const (
	// minCompactHeap is the heap size below which compaction never
	// runs — rewriting a few kilobytes saves nothing.
	minCompactHeap = 64 << 10

	// compactDeadDenom: compact when dead bytes exceed 1/4 of the heap
	// (dead*4 >= size). The dead counter is a conservative upper bound
	// (interned ranges may still be live through other references), so
	// a threshold below ~1/8 would thrash on dedup-heavy documents.
	compactDeadDenom = 4
)

// maybeCompactHeap compacts the draft's text heap when the dead-byte
// ratio crosses the threshold. Must only be called on a privately owned
// draft (inside an apply* method, before publication).
func (ix *Snapshot) maybeCompactHeap() {
	d := ix.doc
	size := d.HeapBytes()
	if size < minCompactHeap {
		return
	}
	if d.DeadHeapBytes()*compactDeadDenom < size {
		return
	}
	d.Compact()
}
