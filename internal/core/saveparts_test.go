package core

import (
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/xmltree"
)

func TestSavePartsSelectsSections(t *testing.T) {
	ix := buildPerson(t)
	dir := t.TempDir()

	cases := []struct {
		name    string
		parts   SaveParts
		present []string
		absent  []string
	}{
		{
			name:    "doc-only",
			parts:   SaveParts{Doc: true},
			present: []string{SectionDoc},
			absent:  []string{SectionHash, SectionStrTree, TypedSectionName(TypeDouble), TypedSectionName(TypeDateTime)},
		},
		{
			name:    "string-only",
			parts:   SaveParts{String: true},
			present: []string{SectionHash, SectionStrTree},
			absent:  []string{SectionDoc, TypedSectionName(TypeDouble)},
		},
		{
			name:    "double-only",
			parts:   SaveParts{Double: true},
			present: []string{TypedSectionName(TypeDouble)},
			absent:  []string{SectionDoc, SectionHash, TypedSectionName(TypeDateTime)},
		},
		{
			name:    "datetime-only",
			parts:   SaveParts{DateTime: true},
			present: []string{TypedSectionName(TypeDateTime)},
			absent:  []string{TypedSectionName(TypeDouble)},
		},
	}
	for _, c := range cases {
		path := filepath.Join(dir, c.name+".part")
		if err := ix.SavePartsTo(path, c.parts); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		r, err := storage.OpenReader(path)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, s := range c.present {
			if r.SectionLen(s) <= 0 {
				t.Errorf("%s: section %s missing or empty", c.name, s)
			}
		}
		for _, s := range c.absent {
			if r.SectionLen(s) != -1 {
				t.Errorf("%s: unexpected section %s", c.name, s)
			}
		}
		r.Close()
	}
}

func TestSavePartsSizesOrdering(t *testing.T) {
	// The storage-shape claim behind Figure 9 bottom at unit scale:
	// double section < string sections < doc section, even on the tiny
	// person document's relatives at larger synthetic scale.
	doc := randomNumericDocForSizes(t)
	ix := Build(doc, DefaultOptions())
	dir := t.TempDir()
	write := func(name string, p SaveParts) int64 {
		path := filepath.Join(dir, name)
		if err := ix.SavePartsTo(path, p); err != nil {
			t.Fatal(err)
		}
		r, err := storage.OpenReader(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		var total int64
		for _, s := range r.Sections() {
			total += r.SectionLen(s)
		}
		return total
	}
	docBytes := write("d", SaveParts{Doc: true})
	strBytes := write("s", SaveParts{String: true})
	dblBytes := write("x", SaveParts{Double: true})
	if !(dblBytes < strBytes && strBytes < docBytes) {
		t.Errorf("size ordering violated: dbl %d, str %d, doc %d", dblBytes, strBytes, docBytes)
	}
}

func randomNumericDocForSizes(t *testing.T) *xmltree.Doc {
	t.Helper()
	xml := "<r>"
	for i := 0; i < 500; i++ {
		xml += "<item><name>some descriptive words here</name><price>12.34</price></item>"
	}
	xml += "</r>"
	return mustParseForTest(t, xml)
}
