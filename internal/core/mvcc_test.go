package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

// These tests pin the MVCC contract introduced with copy-on-write index
// versions: readers pin one published Snapshot and observe it bit-stable
// forever, commits are atomic (a reader sees all of a batch or none of
// it), and versions advance monotonically. They are most meaningful
// under -race, where any writer mutation of published state — a torn
// tree node, a spliced column, a shared heap header — is a hard error.

// stormDoc builds a document whose every text node starts at value "A0".
func stormDoc(t testing.TB, texts int) (*Indexes, []xmltree.NodeID) {
	t.Helper()
	var b strings.Builder
	b.WriteString(`<r>`)
	for i := 0; i < texts; i++ {
		b.WriteString(`<v>A0</v>`)
	}
	b.WriteString(`</r>`)
	ix := Build(mustParseForTest(t, b.String()), DefaultOptions())
	return ix, textNodesOf(ix.Doc())
}

// batchValue is the uniform value every text node carries after commit g.
func batchValue(g int) string { return fmt.Sprintf("A%d", g) }

// TestReadersNeverSeeTornBatches is the reader-never-blocks stress test:
// one writer storms whole-document text batches (every commit rewrites
// ALL text nodes to a new uniform value) while 8 readers continuously
// pin snapshots and assert batch atomicity — every snapshot's text
// nodes carry one single value, never a mix of two generations — plus
// monotone version numbers and hash/index agreement on the pinned
// version. Under -race this also proves commits never write into
// published state.
func TestReadersNeverSeeTornBatches(t *testing.T) {
	const (
		readers    = 8
		minCommits = 120
		maxCommits = 20000
		texts      = 60
	)
	ix, nodes := stormDoc(t, texts)

	var stop atomic.Bool
	var reads atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVersion := uint64(0)
			for !stop.Load() {
				s := ix.Snapshot()
				if v := s.Version(); v < lastVersion {
					errc <- fmt.Errorf("version went backwards: %d after %d", v, lastVersion)
					return
				} else {
					lastVersion = v
				}
				doc := s.Doc()
				// Batch atomicity: all text values in this version agree.
				first := doc.Value(nodes[0])
				for _, n := range nodes[1:] {
					if v := doc.Value(n); v != first {
						errc <- fmt.Errorf("torn batch in version %d: %q and %q", s.Version(), first, v)
						return
					}
				}
				// The pinned version's index answers about itself: every
				// text node is found under the value it carries.
				if got := len(s.LookupString(first)); got < texts {
					errc <- fmt.Errorf("version %d: LookupString(%q) = %d hits, want >= %d", s.Version(), first, got, texts)
					return
				}
				reads.Add(1)
			}
		}()
	}

	// Storm until every reader demonstrably overlapped the writes: at
	// least minCommits commits, and at least one read per committed
	// version on average (capped so a starved scheduler can't hang the
	// test — the progress assertion below still has to hold).
	batch := make([]TextUpdate, len(nodes))
	commits := 0
	for commits < minCommits || (reads.Load() < readers && commits < maxCommits) {
		commits++
		v := batchValue(commits)
		for i, n := range nodes {
			batch[i] = TextUpdate{Node: n, Value: v}
		}
		if err := ix.UpdateTexts(batch); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress during the storm")
	}
	if got, want := ix.Version(), uint64(1+commits); got != want {
		t.Fatalf("final version %d, want %d", got, want)
	}
}

// TestPinnedSnapshotIsByteStable: a snapshot pinned before a storm of
// text, attribute, and structural commits serialises byte-identically
// afterwards, still passes Verify, and still answers lookups from its
// own generation — published versions are immutable, not merely
// eventually consistent.
func TestPinnedSnapshotIsByteStable(t *testing.T) {
	xml := `<r a="0"><x>10</x><y>hello</y><z d="2009-03-24">3.5</z></r>`
	ix := Build(mustParseForTest(t, xml), DefaultOptions())

	pinned := ix.Snapshot()
	before, err := xmlparse.SerializeToBytes(pinned.Doc())
	if err != nil {
		t.Fatal(err)
	}
	wantHits := len(pinned.LookupString("hello"))
	if wantHits == 0 {
		t.Fatal("pinned version lost its own text")
	}

	// Storm: value updates, attr updates, one delete, one insert.
	for g := 0; g < 30; g++ {
		texts := textNodesOf(ix.Doc())
		batch := make([]TextUpdate, len(texts))
		for i, n := range texts {
			batch[i] = TextUpdate{Node: n, Value: fmt.Sprintf("g%d", g)}
		}
		if err := ix.UpdateTexts(batch); err != nil {
			t.Fatal(err)
		}
		if err := ix.UpdateAttr(0, fmt.Sprintf("a%d", g)); err != nil {
			t.Fatal(err)
		}
	}
	doc := ix.Doc()
	var victim xmltree.NodeID = xmltree.InvalidNode
	for i := 1; i < doc.NumNodes(); i++ {
		if doc.Kind(xmltree.NodeID(i)) == xmltree.Element && doc.Name(xmltree.NodeID(i)) == "y" {
			victim = xmltree.NodeID(i)
			break
		}
	}
	if victim == xmltree.InvalidNode {
		t.Fatal("no <y>")
	}
	if err := ix.DeleteSubtree(victim); err != nil {
		t.Fatal(err)
	}
	frag := mustParseForTest(t, `<w ts="1999-12-31">42</w>`)
	if _, err := ix.InsertChildren(ix.Doc().Root(), 0, frag); err != nil {
		t.Fatal(err)
	}

	// The pinned version is untouched by all of it.
	after, err := xmlparse.SerializeToBytes(pinned.Doc())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("pinned snapshot changed:\nbefore: %s\nafter:  %s", before, after)
	}
	if got := len(pinned.LookupString("hello")); got != wantHits {
		t.Fatalf("pinned LookupString = %d hits, want %d", got, wantHits)
	}
	if err := pinned.Verify(); err != nil {
		t.Fatalf("pinned snapshot fails Verify after storm: %v", err)
	}
	// And the live version moved on.
	if len(ix.LookupString("hello")) != 0 {
		t.Fatal("live version still finds deleted text")
	}
}

// TestFailedCommitPublishesNothing: a batch that fails validation leaves
// the published version untouched — the version number does not move and
// the draft is discarded whole (commit atomicity).
func TestFailedCommitPublishesNothing(t *testing.T) {
	ix, nodes := stormDoc(t, 4)
	v0 := ix.Version()
	bad := []TextUpdate{
		{Node: nodes[0], Value: "changed"},
		{Node: ix.Doc().Root(), Value: "not a text node"},
	}
	if err := ix.UpdateTexts(bad); err == nil {
		t.Fatal("invalid batch committed")
	}
	if got := ix.Version(); got != v0 {
		t.Fatalf("failed commit moved the version: %d -> %d", v0, got)
	}
	if got := ix.Doc().Value(nodes[0]); got != "A0" {
		t.Fatalf("failed commit leaked a write: %q", got)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadersDuringStructuralChurn is the structural flavour
// of the storm test: the writer alternates inserts and deletes (which
// clone every column and remint stable ids) while readers pin snapshots
// and navigate them; under -race any sharing bug between the draft and
// a published version is fatal.
func TestConcurrentReadersDuringStructuralChurn(t *testing.T) {
	ix, _ := stormDoc(t, 20)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := ix.Snapshot()
				doc := s.Doc()
				// Full navigation sweep of the pinned version.
				n := doc.NumNodes()
				for i := 0; i < n; i++ {
					nd := xmltree.NodeID(i)
					if doc.Kind(nd) == xmltree.Text {
						_ = doc.Value(nd)
						_ = s.NodeHash(nd)
					}
				}
				if got := doc.NumNodes(); got != n {
					errc <- fmt.Errorf("node count changed mid-read: %d -> %d", n, got)
					return
				}
			}
		}()
	}

	for g := 0; g < 60; g++ {
		frag := mustParseForTest(t, fmt.Sprintf(`<ins><k>%d</k></ins>`, g))
		at, err := ix.InsertChildren(ix.Doc().Root(), 0, frag)
		if err != nil {
			t.Fatal(err)
		}
		if g%2 == 1 {
			if err := ix.DeleteSubtree(at); err != nil {
				t.Fatal(err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}
