package core

// The q-gram substring index — the extension the paper names as future
// work in its conclusions ("indices capable of answering queries that
// involve substring matching"). It follows the same design constraints
// as the value indices:
//
//   - generic: covers every text-node and attribute value, no configured
//     paths (element string values concatenate descendant text, so only
//     leaf operands are index targets);
//   - compact: stores 32-bit gram hashes and packed postings, never text;
//   - candidate-based: lookups intersect the pattern's gram posting
//     lists and verify every candidate against the document, so gram
//     collisions cost time, never correctness.
//
// The index is part of the Snapshot: enabling it installs a gram B+tree
// on the current version, and every commit path (text batches, attribute
// updates, structural deletes/inserts — and therefore WAL replay and
// shipped-record application too) maintains it copy-on-write alongside
// the hash and typed trees. Readers pin one version for candidate
// retrieval and verification, exactly like the other indices.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/btree"
	"repro/internal/xmltree"
)

// SubstrQ is the gram length. Three balances selectivity against index
// size for the evaluation corpora (mostly ASCII text). Grams are byte
// windows, so multi-byte UTF-8 runes span grams rather than forming
// their own; patterns shorter than SubstrQ bytes cannot use the index.
const SubstrQ = 3

// substrGramHash hashes one q-gram into the B+tree key space. FNV-style
// mixing keeps distinct grams distinct with high probability; collisions
// only add verification work.
func substrGramHash(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// substrGrams returns the sorted, deduplicated gram-hash set of a value;
// nil for values shorter than SubstrQ bytes.
func substrGrams(b []byte) []uint32 {
	if len(b) < SubstrQ {
		return nil
	}
	out := make([]uint32, 0, len(b)-SubstrQ+1)
	for i := 0; i+SubstrQ <= len(b); i++ {
		out = append(out, substrGramHash(b[i:i+SubstrQ]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	uniq := out[:1]
	for _, g := range out[1:] {
		if g != uniq[len(uniq)-1] {
			uniq = append(uniq, g)
		}
	}
	return uniq
}

// EnableSubstring builds the q-gram substring index over the current
// version and republishes it. Idempotent. The version number is NOT
// bumped: enabling an index is a local, deterministic enrichment of the
// same document state, not a replicated mutation, so followers applying
// shipped records (which insist on version+1 continuity) can enable it
// independently of the leader. Once enabled, every subsequent commit
// maintains the index copy-on-write, and Save/Checkpoint persist it.
func (ix *Indexes) EnableSubstring() {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	s := ix.cur.Load()
	if s.subTree != nil {
		return
	}
	d := *s
	d.buildSubstr()
	ix.publish(&d)
}

// buildSubstr bulk-loads the gram tree from the document: one entry per
// (gram, posting) over text-node values and attribute values.
func (ix *Snapshot) buildSubstr() {
	doc := ix.doc
	var entries []btree.Entry
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if doc.Kind(n) != xmltree.Text {
			continue
		}
		posting := packPosting(ix.stableOf[i], false)
		for _, g := range substrGrams(doc.ValueBytes(n)) {
			entries = append(entries, btree.Entry{Key: uint64(g), Val: posting})
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		posting := packPosting(ix.attrStableOf[a], true)
		for _, g := range substrGrams(doc.AttrValueBytes(xmltree.AttrID(a))) {
			entries = append(entries, btree.Entry{Key: uint64(g), Val: posting})
		}
	}
	btree.SortEntries(entries)
	ix.subTree = btree.NewFromSorted(entries)
	ix.subStats = buildKeyStats(ix.subTree)
}

// HasSubstring reports whether the substring index is enabled on this
// version.
func (ix *Snapshot) HasSubstring() bool { return ix.subTree != nil }

// Contains returns the text and attribute nodes of this version whose
// value contains pattern, verified against the document, in document
// order (text nodes first, then attributes — the same order as
// ScanContains, so index and scan answers are byte-identical). Patterns
// shorter than SubstrQ bytes, and snapshots without the index, fall back
// to a scan.
func (ix *Snapshot) Contains(pattern string) []Posting {
	if ix.subTree == nil || len(pattern) < SubstrQ {
		return ix.ScanContains(pattern)
	}
	return ix.substrLookup(pattern, false)
}

// StartsWith is Contains for prefix matching: values starting with
// pattern. A prefix match implies a substring match, so the gram
// intersection yields a candidate superset and verification tightens it.
func (ix *Snapshot) StartsWith(pattern string) []Posting {
	if ix.subTree == nil || len(pattern) < SubstrQ {
		return ix.ScanStartsWith(pattern)
	}
	return ix.substrLookup(pattern, true)
}

// substrLookup intersects the pattern's gram posting lists (rarest
// first), verifies every surviving candidate against the pinned
// document, and returns the hits in scan order.
func (ix *Snapshot) substrLookup(pattern string, prefix bool) []Posting {
	cand := ix.substrCandidates(pattern)
	var nodes, attrs []Posting
	for _, packed := range cand {
		p, ok := ix.resolve(packed)
		if !ok {
			continue
		}
		if !ix.substrMatch(p, pattern, prefix) {
			continue
		}
		if p.IsAttr {
			attrs = append(attrs, p)
		} else {
			nodes = append(nodes, p)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Attr < attrs[j].Attr })
	return append(nodes, attrs...)
}

// substrCandidates returns the packed postings surviving the gram
// intersection, unverified, in ascending packed order. Gram lists are
// delta-varint encoded straight off the tree scan and intersected by
// streaming decoders (see postings.go); only the survivors are widened
// to uint32. Callers must have checked len(pattern) >= SubstrQ and
// subTree != nil.
func (ix *Snapshot) substrCandidates(pattern string) []uint32 {
	grams := substrGrams([]byte(pattern))
	lists := make([]packedPostings, 0, len(grams))
	for _, g := range grams {
		var list packedPostings
		ix.subTree.ScanEq(uint64(g), func(v uint32) bool {
			list.push(v)
			return true
		})
		if list.n == 0 {
			return nil
		}
		lists = append(lists, list)
	}
	sort.Slice(lists, func(i, j int) bool { return lists[i].n < lists[j].n })
	cand := lists[0]
	for _, l := range lists[1:] {
		cand = intersectPostings(cand, l)
		if cand.n == 0 {
			return nil
		}
	}
	return cand.decode(make([]uint32, 0, cand.n))
}

// substrMatch verifies one candidate's indexed value (a text node's own
// value or an attribute value) against the pattern.
func (ix *Snapshot) substrMatch(p Posting, pattern string, prefix bool) bool {
	var v string
	if p.IsAttr {
		v = ix.doc.AttrValue(p.Attr)
	} else {
		v = ix.doc.Value(p.Node)
	}
	if prefix {
		return strings.HasPrefix(v, pattern)
	}
	return strings.Contains(v, pattern)
}

// ScanContains is the index-less substring baseline: check every text
// and attribute value of this version. Tests use it as ground truth.
func (ix *Snapshot) ScanContains(pattern string) []Posting {
	return ix.scanSubstr(pattern, false)
}

// ScanStartsWith is the index-less prefix baseline.
func (ix *Snapshot) ScanStartsWith(pattern string) []Posting {
	return ix.scanSubstr(pattern, true)
}

func (ix *Snapshot) scanSubstr(pattern string, prefix bool) []Posting {
	doc := ix.doc
	match := func(v string) bool {
		if prefix {
			return strings.HasPrefix(v, pattern)
		}
		return strings.Contains(v, pattern)
	}
	var out []Posting
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if doc.Kind(n) == xmltree.Text && match(doc.Value(n)) {
			out = append(out, NodePosting(n))
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		if match(doc.AttrValue(xmltree.AttrID(a))) {
			out = append(out, AttrPosting(xmltree.AttrID(a)))
		}
	}
	return out
}

// SubstrIter streams the verified substring (or prefix) hits as a
// posting iterator for the planner's executor, ascending. The hits are
// materialised up front — the gram intersection needs all lists anyway —
// and drained through the iterator's pending queue.
func (ix *Snapshot) SubstrIter(pattern string, prefix bool) *PostingIter {
	var hits []Posting
	if ix.subTree != nil && len(pattern) >= SubstrQ {
		hits = ix.substrLookup(pattern, prefix)
	} else if prefix {
		hits = ix.ScanStartsWith(pattern)
	} else {
		hits = ix.ScanContains(pattern)
	}
	// pending drains LIFO, so queue in reverse to emit in order.
	for i, j := 0, len(hits)-1; i < j; i, j = i+1, j-1 {
		hits[i], hits[j] = hits[j], hits[i]
	}
	return &PostingIter{ix: ix, pending: hits}
}

// EstimateSubstr estimates the candidate postings a substring access
// path must verify: the minimum per-gram estimate across the pattern's
// grams (the intersection can only shrink the rarest list). Zero when
// the pattern is too short or the index is absent.
func (ix *Snapshot) EstimateSubstr(pattern string) float64 {
	if ix.subStats == nil || len(pattern) < SubstrQ {
		return 0
	}
	est := math.MaxFloat64
	for _, g := range substrGrams([]byte(pattern)) {
		if e := ix.subStats.estimateEq(uint64(g)); e < est {
			est = e
		}
	}
	if est == math.MaxFloat64 {
		return 0
	}
	return est
}

// SubstringPlannerStats reports the substring index statistics; ok is
// false when the index is not enabled.
func (ix *Snapshot) SubstringPlannerStats() (PlannerStats, bool) {
	if ix.subStats == nil {
		return PlannerStats{}, false
	}
	return PlannerStats{Total: ix.subStats.total, Distinct: ix.subStats.distinct, Buckets: len(ix.subStats.counts)}, true
}

// --- copy-on-write maintenance (called from the apply paths) ---

// subTreeInsert / subTreeDelete funnel gram-tree mutations past the
// statistics layer, like strTreeInsert/strTreeDelete.
func (ix *Snapshot) subTreeInsert(g uint32, posting uint32) {
	if ix.subTree.Insert(uint64(g), posting) && ix.subStats != nil {
		ix.subStats.noteInsert(uint64(g))
	}
}

func (ix *Snapshot) subTreeDelete(g uint32, posting uint32) {
	if ix.subTree.Delete(uint64(g), posting) && ix.subStats != nil {
		ix.subStats.noteDelete(uint64(g))
	}
}

// substrNodeGrams captures the gram set of node n's current value, for
// diffing after a text mutation. Nil when the index is disabled or n is
// not a text node (the only tree-node kind the gram tree stores).
func (ix *Snapshot) substrNodeGrams(n xmltree.NodeID) []uint32 {
	if ix.subTree == nil || ix.doc.Kind(n) != xmltree.Text {
		return nil
	}
	return substrGrams(ix.doc.ValueBytes(n))
}

// substrAttrGrams captures the gram set of attribute a's current value.
func (ix *Snapshot) substrAttrGrams(a xmltree.AttrID) []uint32 {
	if ix.subTree == nil {
		return nil
	}
	return substrGrams(ix.doc.AttrValueBytes(a))
}

// substrReindexNode diffs node n's grams against the set captured before
// the mutation and repairs the gram tree.
func (ix *Snapshot) substrReindexNode(n xmltree.NodeID, oldGrams []uint32) {
	if ix.subTree == nil || ix.doc.Kind(n) != xmltree.Text {
		return
	}
	posting := packPosting(ix.stableOf[n], false)
	ix.substrDiff(posting, oldGrams, substrGrams(ix.doc.ValueBytes(n)))
}

// substrReindexAttr is substrReindexNode for attribute values.
func (ix *Snapshot) substrReindexAttr(a xmltree.AttrID, oldGrams []uint32) {
	if ix.subTree == nil {
		return
	}
	posting := packPosting(ix.attrStableOf[a], true)
	ix.substrDiff(posting, oldGrams, substrGrams(ix.doc.AttrValueBytes(a)))
}

// substrDiff merges two sorted gram sets, deleting grams only the old
// value had and inserting grams only the new value has.
func (ix *Snapshot) substrDiff(posting uint32, old, new []uint32) {
	i, j := 0, 0
	for i < len(old) || j < len(new) {
		switch {
		case j >= len(new) || (i < len(old) && old[i] < new[j]):
			ix.subTreeDelete(old[i], posting)
			i++
		case i >= len(old) || new[j] < old[i]:
			ix.subTreeInsert(new[j], posting)
			j++
		default:
			i++
			j++
		}
	}
}

// substrRemoveNode / substrRemoveAttr drop a doomed posting's grams
// (structural deletes; called before the document splices).
func (ix *Snapshot) substrRemoveNode(n xmltree.NodeID, stable uint32) {
	if ix.subTree == nil || ix.doc.Kind(n) != xmltree.Text {
		return
	}
	posting := packPosting(stable, false)
	for _, g := range substrGrams(ix.doc.ValueBytes(n)) {
		ix.subTreeDelete(g, posting)
	}
}

func (ix *Snapshot) substrRemoveAttr(a xmltree.AttrID, stable uint32) {
	if ix.subTree == nil {
		return
	}
	posting := packPosting(stable, true)
	for _, g := range substrGrams(ix.doc.AttrValueBytes(a)) {
		ix.subTreeDelete(g, posting)
	}
}

// substrAddNode / substrAddAttr index a freshly inserted posting's grams
// (structural inserts; called after the scoped build pass).
func (ix *Snapshot) substrAddNode(n xmltree.NodeID, stable uint32) {
	if ix.subTree == nil || ix.doc.Kind(n) != xmltree.Text {
		return
	}
	posting := packPosting(stable, false)
	for _, g := range substrGrams(ix.doc.ValueBytes(n)) {
		ix.subTreeInsert(g, posting)
	}
}

func (ix *Snapshot) substrAddAttr(a xmltree.AttrID, stable uint32) {
	if ix.subTree == nil {
		return
	}
	posting := packPosting(stable, true)
	for _, g := range substrGrams(ix.doc.AttrValueBytes(a)) {
		ix.subTreeInsert(g, posting)
	}
}

// verifySubstr cross-checks the gram tree against ground truth recomputed
// from the document: exactly the expected (gram, posting) entries, and a
// histogram population matching the tree. Part of Verify.
func (ix *Snapshot) verifySubstr() error {
	if ix.subTree == nil {
		return nil
	}
	doc := ix.doc
	want := 0
	check := func(val []byte, posting uint32, what string, id int) error {
		gs := substrGrams(val)
		want += len(gs)
		for _, g := range gs {
			if !ix.subTree.Contains(uint64(g), posting) {
				return fmt.Errorf("core: substring tree missing gram of %s %d", what, id)
			}
		}
		return nil
	}
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if doc.Kind(n) != xmltree.Text {
			continue
		}
		if err := check(doc.ValueBytes(n), packPosting(ix.stableOf[i], false), "node", i); err != nil {
			return err
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		if err := check(doc.AttrValueBytes(xmltree.AttrID(a)), packPosting(ix.attrStableOf[a], true), "attr", a); err != nil {
			return err
		}
	}
	if ix.subTree.Len() != want {
		return fmt.Errorf("core: substring tree has %d entries, want %d", ix.subTree.Len(), want)
	}
	if ix.subStats != nil {
		if got := ix.subStats.sum(); got != ix.subTree.Len() {
			return fmt.Errorf("core: substring histogram population %d, tree has %d", got, ix.subTree.Len())
		}
	}
	return nil
}
