package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/btree"
	"repro/internal/xmltree"
)

// Tests for the compressed hot-data layout: the versioned tree section
// codec, the packed posting lists, commit-time heap compaction, the
// MemStats accounting, and the property that the packed layout answers
// everything byte-identically to the scan oracles.

func buildDupHeavyTree(n int) *btree.Tree {
	entries := make([]btree.Entry, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, btree.Entry{Key: uint64(i % 97), Val: uint32(i)})
	}
	btree.SortEntries(entries)
	return btree.NewFromSorted(entries)
}

func TestTreeSectionRoundTripV2(t *testing.T) {
	for _, n := range []int{0, 1, 3, 64, 65, 5000} {
		want := buildDupHeavyTree(n)
		var buf bytes.Buffer
		if err := writeTree(&buf, want); err != nil {
			t.Fatal(err)
		}
		got, err := readTree(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		w, g := dumpTree(want), dumpTree(got)
		if len(w) != len(g) {
			t.Fatalf("n=%d: %d entries, want %d", n, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("n=%d: entry %d = %+v, want %+v", n, i, g[i], w[i])
			}
		}
	}
}

// TestLegacyTreeSectionLoads hand-encodes the pre-versioning format —
// entry count first, absolute vals — and proves readTree still accepts
// it, so snapshots written by earlier builds keep loading.
func TestLegacyTreeSectionLoads(t *testing.T) {
	want := buildDupHeavyTree(500)
	var buf bytes.Buffer
	se := newSliceEncoder(&buf)
	se.uv(uint64(want.Len()))
	var prevKey uint64
	want.Scan(func(key uint64, val uint32) bool {
		se.uv(key - prevKey)
		prevKey = key
		se.uv(uint64(val))
		return true
	})
	if err := se.flush(); err != nil {
		t.Fatal(err)
	}
	got, err := readTree(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	w, g := dumpTree(want), dumpTree(got)
	if len(w) != len(g) {
		t.Fatalf("legacy load: %d entries, want %d", len(g), len(w))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("legacy load: entry %d = %+v, want %+v", i, g[i], w[i])
		}
	}
}

func TestUnknownTreeSectionVersionErrors(t *testing.T) {
	var buf bytes.Buffer
	se := newSliceEncoder(&buf)
	se.uv(treeSectionSentinel)
	se.uv(99)
	if err := se.flush(); err != nil {
		t.Fatal(err)
	}
	_, err := readTree(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("readTree accepted unknown tree section version")
	}
	if !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("error does not name the offending version: %v", err)
	}
}

func TestPackedPostingsIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		makeList := func() ([]uint32, packedPostings) {
			n := rng.Intn(40)
			set := map[uint32]bool{}
			for i := 0; i < n; i++ {
				set[uint32(rng.Intn(120))] = true
			}
			var vals []uint32
			for v := range set {
				vals = append(vals, v)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			var p packedPostings
			for _, v := range vals {
				p.push(v)
			}
			if p.n != len(vals) {
				t.Fatalf("push count %d, want %d", p.n, len(vals))
			}
			if got := p.decode(nil); len(got) != len(vals) {
				t.Fatalf("decode lost entries")
			}
			return vals, p
		}
		av, ap := makeList()
		bv, bp := makeList()
		inB := map[uint32]bool{}
		for _, v := range bv {
			inB[v] = true
		}
		var want []uint32
		for _, v := range av {
			if inB[v] {
				want = append(want, v)
			}
		}
		got := intersectPostings(ap, bp).decode(nil)
		if len(got) != len(want) {
			t.Fatalf("round %d: intersection has %d postings, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: posting %d = %d, want %d", round, i, got[i], want[i])
			}
		}
	}
}

// TestAutoCompactBoundsHeap: an update storm that overwrites long
// (non-internable) values must not grow the heap without bound — the
// commit-time compaction keeps it within a small multiple of the live
// bytes — while a snapshot pinned mid-storm keeps serving its own
// version's values.
func TestAutoCompactBoundsHeap(t *testing.T) {
	const nodes = 500
	longVal := func(n, round int) string {
		return fmt.Sprintf("node %4d round %4d %s", n, round, strings.Repeat("x", 140))
	}
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < nodes; i++ {
		b.WriteString("<v>" + longVal(i, 0) + "</v>")
	}
	b.WriteString("</r>")
	ix := Build(mustParseForTest(t, b.String()), DefaultOptions())
	texts := textNodesOf(ix.Doc())

	var pinned *Snapshot
	var pinnedWant string
	written := 0
	const rounds = 20
	batch := make([]TextUpdate, len(texts))
	for round := 1; round <= rounds; round++ {
		for i, n := range texts {
			batch[i] = TextUpdate{Node: n, Value: longVal(i, round)}
			written += len(batch[i].Value)
		}
		if err := ix.UpdateTexts(batch); err != nil {
			t.Fatal(err)
		}
		if round == rounds/2 {
			pinned = ix.Snapshot()
			pinnedWant = pinned.Doc().Value(texts[0])
		}
	}
	live := ix.Doc().LiveHeapBytes()
	heap := ix.Doc().HeapBytes()
	if heap > 2*live {
		t.Fatalf("heap %d bytes with %d live: auto-compaction did not run", heap, live)
	}
	if heap >= written {
		t.Fatalf("heap %d holds every byte ever written (%d): no compaction", heap, written)
	}
	// The version pinned mid-storm is untouched by later compactions.
	if got := pinned.Doc().Value(texts[0]); got != pinnedWant {
		t.Fatalf("pinned snapshot changed under compaction: %q, want %q", got, pinnedWant)
	}
	// Two hits: the text node and its single-child <v> wrapper element.
	if got := pinned.LookupString(pinnedWant); len(got) != 2 {
		t.Fatalf("pinned snapshot lookup found %d hits, want 2", len(got))
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMemStatsPackedSmaller(t *testing.T) {
	// Repetitive values + duplicate-heavy keys: the shape the layout
	// work targets. XMark-like corpora behave the same (see bench).
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&b, `<item cat="c%d"><price>%d.50</price><note>common note %d</note></item>`, i%7, i%100, i%13)
	}
	b.WriteString("</r>")
	ix := Build(mustParseForTest(t, b.String()), DefaultOptions())
	ix.EnableSubstring()
	ms := ix.Snapshot().MemStats()

	if ms.Nodes != ix.Doc().NumNodes()+ix.Doc().NumAttrs() {
		t.Fatalf("Nodes = %d, want %d", ms.Nodes, ix.Doc().NumNodes()+ix.Doc().NumAttrs())
	}
	wantTotal := ms.DocBytes + ms.StringTreeBytes + ms.TypedTreeBytes + ms.SubstrTreeBytes + ms.SideBytes
	if ms.TotalBytes != wantTotal {
		t.Fatalf("TotalBytes %d, components sum to %d", ms.TotalBytes, wantTotal)
	}
	if ms.SubstrTreeBytes == 0 || ms.StringTreeBytes == 0 || ms.TypedTreeBytes == 0 {
		t.Fatalf("missing tree component: %+v", ms)
	}
	if ms.BytesPerNode <= 0 {
		t.Fatalf("BytesPerNode = %v", ms.BytesPerNode)
	}
	if ms.BytesPerNode >= ms.UnpackedBytesPerNode {
		t.Fatalf("packed layout (%0.1f B/node) not smaller than unpacked (%0.1f B/node)",
			ms.BytesPerNode, ms.UnpackedBytesPerNode)
	}
	// The headline claim: the packed trees are at least 30% smaller than
	// the entry-struct layout they replaced.
	packedTrees := ms.StringTreeBytes + ms.TypedTreeBytes + ms.SubstrTreeBytes
	if float64(packedTrees) > 0.7*float64(ms.UnpackedTreeBytes) {
		t.Fatalf("packed trees %d bytes vs unpacked %d: less than 30%% saved", packedTrees, ms.UnpackedTreeBytes)
	}
}

// sortedPostings puts index answers and scan-oracle answers into one
// canonical order (nodes in document order, then attributes).
func sortedPostings(ps []Posting) []Posting {
	out := append([]Posting(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].IsAttr != out[j].IsAttr {
			return !out[i].IsAttr
		}
		if out[i].IsAttr {
			return out[i].Attr < out[j].Attr
		}
		return out[i].Node < out[j].Node
	})
	return out
}

func assertSamePostings(t *testing.T, what string, got, want []Posting) {
	t.Helper()
	g, w := sortedPostings(got), sortedPostings(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d postings, want %d", what, len(g), len(w))
	}
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("%s: posting %d = %+v, want %+v", what, i, g[i], w[i])
		}
	}
}

// assertOracleEquivalent drives every index family against its scan
// oracle on one snapshot: string equality, double ranges, substring and
// prefix matching.
func assertOracleEquivalent(t *testing.T, s *Snapshot, rng *rand.Rand) {
	t.Helper()
	doc := s.Doc()
	// Sample existing values (plus misses) for the string index.
	var samples []string
	for i := 0; i < doc.NumNodes() && len(samples) < 8; i += 1 + rng.Intn(50) {
		if doc.Kind(xmltree.NodeID(i)) == xmltree.Text {
			samples = append(samples, doc.Value(xmltree.NodeID(i)))
		}
	}
	samples = append(samples, "no such value anywhere", "42.5")
	for _, v := range samples {
		assertSamePostings(t, fmt.Sprintf("LookupString(%q)", v),
			s.LookupString(v), s.ScanStringEquals(v))
	}
	for _, r := range [][2]float64{{0, 100}, {42, 43}, {-10, 1e9}} {
		assertSamePostings(t, fmt.Sprintf("RangeDouble(%v)", r),
			s.RangeDouble(r[0], r[1], true, true), s.ScanDoubleRange(r[0], r[1], true, true))
	}
	if s.HasSubstring() {
		for _, pat := range []string{"42.", "word", "ttom", "zzz-none", "common"} {
			assertSamePostings(t, fmt.Sprintf("Contains(%q)", pat),
				s.Contains(pat), s.ScanContains(pat))
			assertSamePostings(t, fmt.Sprintf("StartsWith(%q)", pat),
				s.StartsWith(pat), s.ScanStartsWith(pat))
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestLayoutEquivalenceProperty is the packed-layout equivalence
// property: across the pathological shape corpus, under an update storm
// (text, attribute, delete, insert), and across Save/Load, the packed
// B+tree leaves and interned heap answer every lookup byte-identically
// to the scan oracles.
func TestLayoutEquivalenceProperty(t *testing.T) {
	for _, sc := range shapeCorpus() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(sc.name))))
			ix := Build(mustParseForTest(t, sc.xml), DefaultOptions())
			ix.EnableSubstring()
			assertOracleEquivalent(t, ix.Snapshot(), rng)

			for phase := 0; phase < 4; phase++ {
				texts := textNodesOf(ix.Doc())
				if len(texts) > 0 {
					var batch []TextUpdate
					for k := 0; k < 10 && k < len(texts); k++ {
						batch = append(batch, TextUpdate{
							Node:  texts[rng.Intn(len(texts))],
							Value: randomDurableValue(rng),
						})
					}
					// Duplicate nodes in one batch are legal; last wins.
					if err := ix.UpdateTexts(batch); err != nil {
						t.Fatal(err)
					}
				}
				if na := ix.Doc().NumAttrs(); na > 0 {
					if err := ix.UpdateAttr(xmltree.AttrID(rng.Intn(na)), randomDurableValue(rng)); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := ix.InsertChildren(0, 0, mustParseForTest(t,
					fmt.Sprintf(`<ins a="%d"><x>%d.25</x>inserted words</ins>`, phase, phase))); err != nil {
					t.Fatal(err)
				}
				if doc := ix.Doc(); doc.NumNodes() > 3 {
					// Delete some node other than the root element.
					n := xmltree.NodeID(2 + rng.Intn(doc.NumNodes()-2))
					if err := ix.DeleteSubtree(n); err != nil {
						t.Fatal(err)
					}
				}
				assertOracleEquivalent(t, ix.Snapshot(), rng)
			}

			// The layout survives serialisation: Save → Load answers
			// identically and carries identical index structures.
			path := filepath.Join(t.TempDir(), "layout.xvi")
			if err := ix.Snapshot().Save(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			assertIndexesEqual(t, ix, loaded)
			assertOracleEquivalent(t, loaded.Snapshot(), rng)
		})
	}
}

// TestDurableLayoutEquivalence runs the storm under durability: WAL
// replay (OpenDurable) and point-in-time recovery (OpenAt) rebuild the
// packed layout and answer identically to the scan oracles.
func TestDurableLayoutEquivalence(t *testing.T) {
	xml := shapeCorpus()[4].xml // mixed-content spine
	ix, snap, wal := durablePair(t, xml, 1)
	ix.EnableSubstring()
	rng := rand.New(rand.NewSource(99))
	texts := textNodesOf(ix.Doc())
	for round := 0; round < 30; round++ {
		if err := ix.UpdateText(texts[rng.Intn(len(texts))], randomDurableValue(rng)); err != nil {
			t.Fatal(err)
		}
	}
	midVersion := ix.Version()
	for round := 0; round < 30; round++ {
		if err := ix.UpdateText(texts[rng.Intn(len(texts))], randomDurableValue(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenDurable(snap, wal, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, ix, reopened)
	assertOracleEquivalent(t, reopened.Snapshot(), rng)
	if err := reopened.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	at, err := OpenAt(snap, wal, midVersion)
	if err != nil {
		t.Fatal(err)
	}
	if got := at.Version(); got != midVersion {
		t.Fatalf("OpenAt landed on version %d, want %d", got, midVersion)
	}
	assertOracleEquivalent(t, at.Snapshot(), rng)
}

// TestPinnedSnapshotsImmutableUnderCompactionStorm pins packed
// snapshots while a writer storms commits sized to trigger heap
// compaction, asserting (under -race) that published packed state is
// never written: every pinned version keeps answering with its own
// values and its MemStats stay constant.
func TestPinnedSnapshotsImmutableUnderCompactionStorm(t *testing.T) {
	const nodes = 300
	longVal := func(n, round int) string {
		return fmt.Sprintf("n%d r%d %s", n, round, strings.Repeat("y", 150))
	}
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < nodes; i++ {
		b.WriteString("<v>" + longVal(i, 0) + "</v>")
	}
	b.WriteString("</r>")
	ix := Build(mustParseForTest(t, b.String()), DefaultOptions())
	ix.EnableSubstring()
	texts := textNodesOf(ix.Doc())

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := ix.Snapshot()
				doc := s.Doc()
				want := doc.Value(texts[0])
				ms := s.MemStats()
				// Re-read after a beat: the pinned version must not move.
				for k := 0; k < 100; k++ {
					if got := doc.Value(texts[k%len(texts)]); !strings.HasPrefix(got, fmt.Sprintf("n%d ", k%len(texts))) {
						errc <- fmt.Errorf("pinned value for node %d corrupted: %.40q", k%len(texts), got)
						return
					}
				}
				if got := doc.Value(texts[0]); got != want {
					errc <- fmt.Errorf("pinned value changed: %.40q to %.40q", want, got)
					return
				}
				if ms2 := s.MemStats(); ms2 != ms {
					errc <- fmt.Errorf("pinned MemStats changed: %+v to %+v", ms, ms2)
					return
				}
				// Text node plus its single-child <v> wrapper element.
				if n := len(s.LookupString(want)); n != 2 {
					errc <- fmt.Errorf("pinned lookup found %d hits, want 2", n)
					return
				}
			}
		}()
	}
	batch := make([]TextUpdate, len(texts))
	for round := 1; round <= 40; round++ {
		for i, n := range texts {
			batch[i] = TextUpdate{Node: n, Value: longVal(i, round)}
		}
		if err := ix.UpdateTexts(batch); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if heap, live := ix.Doc().HeapBytes(), ix.Doc().LiveHeapBytes(); heap > 2*live {
		t.Fatalf("heap %d with %d live: compaction never ran during the storm", heap, live)
	}
}
