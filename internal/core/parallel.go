package core

// Parallel index construction. The paper's Figure 7 algorithm is a
// single depth-first fold, but both of its ingredients are associative —
// the hash combination function C and the SCT's monoid composition — so
// the fold splits at subtree boundaries without changing any result:
//
//  1. planShards carves the document into contiguous runs of complete
//     subtrees ("shards") hanging off a small set of ancestors (the
//     "spine": the document node plus every element too large to hand to
//     one worker whole).
//  2. A worker pool runs the Figure 7 pass over each shard with a
//     private buildSink, so per-node hashes and FSM fragments land in
//     the shared columns (disjoint ranges, no contention) while the
//     map- and tree-bound results stay worker-local.
//  3. The sinks merge into the shared side tables (one goroutine per
//     typed index — the maps are per type, so this too is contention
//     free).
//  4. The spine folds serially, children-first, exactly the way the
//     Figure 8 update algorithm refolds interiors: from the children's
//     stored fields, never from text. SCT early-reject semantics are
//     preserved bit for bit because the spine fold applies the same
//     foldFrag over the same child sequence the serial pass would.
//  5. The B+trees bulk-load in parallel (see buildTrees): sorting by
//     (key, posting) erases collection order, so the loaded trees — and
//     therefore snapshot bytes — are identical to a serial build's.
//
// Attribute fields never contribute to ancestors, so the attribute pass
// shards by simple range chunking.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/fsm"
	"repro/internal/xmltree"
)

const (
	// shardsPerWorker oversplits the frontier so the pool load-balances
	// skewed subtrees instead of waiting on one giant shard.
	shardsPerWorker = 4
	// minShardNodes floors the planned shard size; below this the
	// scheduling overhead outweighs the fold itself.
	minShardNodes = 256
)

// workers resolves Options.Parallelism: 0 (and any negative value) means
// GOMAXPROCS, 1 keeps the serial reference path.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// stableItems carries one node's fragment items, keyed by stable id,
// from a worker-local buffer into the typed index's map at merge time.
type stableItems struct {
	stable uint32
	items  []fsm.Item
}

// typedSink buffers one worker's results for one typed index: the items
// destined for the (shared) items/attrItems maps and the value-tree
// entries destined for ti.scratch.
type typedSink struct {
	items     []stableItems
	attrItems []stableItems
	entries   []btree.Entry
}

// buildSink is the destination of one build pass's typed-index side
// effects. A nil *buildSink writes directly into the shared structures —
// the serial build and the structural-update paths, which run under the
// write lock. A non-nil sink buffers everything except the per-node
// element columns (those writes are disjoint across shards and need no
// buffering).
type buildSink struct {
	typed []typedSink
}

func newBuildSink(nTypes int) *buildSink {
	return &buildSink{typed: make([]typedSink, nTypes)}
}

// setFrag records node n's fragment for typed index t (ti == ix.typed[t]).
func (s *buildSink) setFrag(ti *typedIndex, t int, n xmltree.NodeID, stable uint32, f fsm.Frag) {
	if s == nil {
		ti.setFragFresh(n, stable, f)
		return
	}
	ti.elems[n] = f.Elem
	if f.Elem != fsm.Reject && len(f.Items) > 0 {
		s.typed[t].items = append(s.typed[t].items, stableItems{stable: stable, items: f.Items})
	}
}

// setAttrFrag records attribute a's fragment for typed index t.
func (s *buildSink) setAttrFrag(ti *typedIndex, t int, a xmltree.AttrID, stable uint32, f fsm.Frag) {
	if s == nil {
		ti.setAttrFragFresh(a, stable, f)
		return
	}
	ti.attrElems[a] = f.Elem
	if f.Elem != fsm.Reject && len(f.Items) > 0 {
		s.typed[t].attrItems = append(s.typed[t].attrItems, stableItems{stable: stable, items: f.Items})
	}
}

// entry records a value-tree entry for a castable fragment, mirroring
// typedIndex.collectEntry for the buffered case.
func (s *buildSink) entry(ti *typedIndex, t int, f fsm.Frag, posting uint32) {
	if s == nil {
		ti.collectEntry(f, posting)
		return
	}
	if e, ok := ti.entryFor(f, posting); ok {
		s.typed[t].entries = append(s.typed[t].entries, e)
	}
}

// planShards picks the spine/frontier split: spine nodes (returned in
// pre order) are folded serially after the shards; every other node
// belongs to exactly one frontier subtree, and consecutive frontier
// subtrees are grouped into shards of roughly target size. The frontier
// is chosen by walking down from the root and splitting any element
// whose subtree exceeds the target, so a handful of huge subtrees
// cannot serialise the pass.
func planShards(doc *xmltree.Doc, workers int) (spine []xmltree.NodeID, shards [][]xmltree.NodeID) {
	n := doc.NumNodes()
	target := n / (workers * shardsPerWorker)
	if target < minShardNodes {
		target = minShardNodes
	}

	// Explicit descent stack (one frame per open spine node, holding the
	// next sibling to examine) rather than recursion: a degenerate chain
	// of nested elements puts nearly every node on the spine, and the
	// planner must survive the same depths the iterative serial pass and
	// parser do.
	var frontier []xmltree.NodeID
	spine = append(spine, doc.Root())
	stack := []xmltree.NodeID{doc.FirstChild(doc.Root())}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		if c == xmltree.InvalidNode {
			stack = stack[:len(stack)-1]
			continue
		}
		stack[len(stack)-1] = doc.NextSibling(c)
		if int(doc.Size(c))+1 > target && doc.FirstChild(c) != xmltree.InvalidNode {
			spine = append(spine, c)
			stack = append(stack, doc.FirstChild(c))
		} else {
			frontier = append(frontier, c)
		}
	}

	var cur []xmltree.NodeID
	cnt := 0
	for _, root := range frontier {
		cur = append(cur, root)
		cnt += int(doc.Size(root)) + 1
		if cnt >= target {
			shards = append(shards, cur)
			cur, cnt = nil, 0
		}
	}
	if len(cur) > 0 {
		shards = append(shards, cur)
	}
	return spine, shards
}

// attrChunk is one half-open attribute id range [lo, hi).
type attrChunk struct{ lo, hi xmltree.AttrID }

func attrChunks(na, workers int) []attrChunk {
	if na == 0 {
		return nil
	}
	size := na / (workers * shardsPerWorker)
	if size < minShardNodes {
		size = minShardNodes
	}
	chunks := make([]attrChunk, 0, na/size+1)
	for lo := 0; lo < na; lo += size {
		hi := lo + size
		if hi > na {
			hi = na
		}
		chunks = append(chunks, attrChunk{lo: xmltree.AttrID(lo), hi: xmltree.AttrID(hi)})
	}
	return chunks
}

// parallelFor runs f(0) … f(jobs-1) on up to workers goroutines,
// reusing the caller's goroutine as one of them, and returns when every
// job is done. Job order across workers is unspecified; callers index
// into output slices so results land deterministically.
func parallelFor(workers, jobs int, f func(i int)) {
	if jobs == 0 {
		return
	}
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		for i := 0; i < jobs; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= jobs {
				return
			}
			f(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// buildParallel is the concurrent Figure 7: shard passes, merge, spine
// fold, parallel bulk loads. Results are bit-for-bit identical to the
// serial build (parallel_test.go pins this property per registered
// type, down to snapshot bytes).
func (ix *Snapshot) buildParallel(workers int) {
	doc := ix.doc
	spine, shards := planShards(doc, workers)

	// The node and attribute passes touch disjoint state (elems/hash vs
	// attrElems/attrHash), so both job lists feed one pool — a straggler
	// shard never leaves workers idle while attribute chunks wait.
	chunks := attrChunks(doc.NumAttrs(), workers)
	sinks := make([]*buildSink, len(shards))
	attrSinks := make([]*buildSink, len(chunks))
	parallelFor(workers, len(shards)+len(chunks), func(i int) {
		sink := newBuildSink(len(ix.typed))
		if i < len(shards) {
			for _, root := range shards[i] {
				ix.buildPass(root, root+xmltree.NodeID(doc.Size(root)), sink)
			}
			sinks[i] = sink
		} else {
			c := chunks[i-len(shards)]
			ix.buildAttrs(c.lo, c.hi-1, sink)
			attrSinks[i-len(shards)] = sink
		}
	})

	// Merge the worker-local buffers into the shared side tables. The
	// maps are per typed index, so the merge parallelises across types.
	parallelFor(workers, len(ix.typed), func(t int) {
		ti := ix.typed[t]
		for _, sink := range sinks {
			for _, si := range sink.typed[t].items {
				ti.items[si.stable] = si.items
			}
			ti.scratch = append(ti.scratch, sink.typed[t].entries...)
		}
		for _, sink := range attrSinks {
			for _, si := range sink.typed[t].attrItems {
				ti.attrItems[si.stable] = si.items
			}
			ti.scratch = append(ti.scratch, sink.typed[t].entries...)
		}
	})

	ix.buildSpine(spine)
	ix.buildTrees(workers)
}

// buildSpine folds the spine nodes from their children's stored fields,
// children before parents (reverse pre order). Each node goes through
// recomputeInterior — the Figure 8 refold that is THE fold definition
// (hash by C over contributing children, each typed fragment by the SCT
// fold) — so the parallel build cannot diverge from the serial pass or
// from post-update refolds. What Build adds on top of an update's refold
// is entry collection: a value-tree entry for COMBINED (mixed-content)
// values.
func (ix *Snapshot) buildSpine(spine []xmltree.NodeID) {
	doc := ix.doc
	for i := len(spine) - 1; i >= 0; i-- {
		n := spine[i]
		ix.recomputeInterior(n)
		if !isCombinedValue(doc, n) {
			continue
		}
		stable := ix.stableOf[n]
		posting := packPosting(stable, false)
		for _, ti := range ix.typed {
			ti.collectEntry(ti.frag(n, stable), posting)
		}
	}
}
