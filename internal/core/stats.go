package core

import (
	"repro/internal/fsm"
	"repro/internal/xmltree"
)

// IndexStats summarises index contents and estimated persisted sizes; it
// backs Table 1 and the storage panels of Figure 9.
type IndexStats struct {
	Nodes int // tree nodes + attributes
	Texts int
	Attrs int

	// String index.
	StringEntries int // postings in the hash B+tree
	StringBytes   int // persisted size estimate: 4 bytes hash + 4 bytes posting per entry

	// Double index (Table 1's "Double Values" and "non-leaf" columns).
	DoubleLive          int // nodes with a stored (non-reject) state
	DoubleTexts         int // text nodes with a potentially valid double fragment
	DoubleCastableTexts int // text nodes whose value casts to a double (Table 1 "Double Values")
	DoubleCastable      int // entries in the double value B+tree
	DoubleNonLeaf       int // non-leaf nodes with a castable double value
	DoubleBytes         int // persisted estimate: 1 byte state + items per live node, 12 bytes per tree entry
	DateTimeLive        int
	DateTimeTexts       int
	DateTimeCastable    int
	DateTimeBytes       int

	Elements int // element count (Table 1 totals are elements + texts)
}

// Stats scans the index structures; cost is O(nodes).
func (ix *Indexes) Stats() IndexStats {
	doc := ix.doc
	var s IndexStats
	s.Attrs = doc.NumAttrs()
	s.Nodes = doc.NumNodes() + s.Attrs

	for i := 0; i < doc.NumNodes(); i++ {
		switch doc.Kind(xmltree.NodeID(i)) {
		case xmltree.Text:
			s.Texts++
		case xmltree.Element:
			s.Elements++
		}
	}
	if ix.strTree != nil {
		s.StringEntries = ix.strTree.Len()
		s.StringBytes = s.StringEntries * 8
	}
	if ix.double != nil {
		s.DoubleLive, s.DoubleTexts, s.DoubleCastableTexts, s.DoubleCastable, s.DoubleNonLeaf, s.DoubleBytes = ix.typedStats(ix.double)
	}
	if ix.dateTime != nil {
		s.DateTimeLive, s.DateTimeTexts, _, s.DateTimeCastable, _, s.DateTimeBytes = ix.typedStats(ix.dateTime)
	}
	return s
}

func (ix *Indexes) typedStats(ti *typedIndex) (live, liveTexts, castableTexts, castable, nonLeaf, bytes int) {
	doc := ix.doc
	for i := 0; i < doc.NumNodes(); i++ {
		nd := xmltree.NodeID(i)
		e := ti.elems[i]
		if e == fsm.Reject {
			continue
		}
		if e == fsm.Identity && doc.Kind(nd) != xmltree.Text {
			// Empty elements carry no information; the paper would not
			// store them either.
			continue
		}
		live++
		// 1 byte state (paper) + node id reference (4) per stored state.
		bytes += 5
		if doc.Kind(nd) == xmltree.Text {
			liveTexts++
		}
		if ti.m.Castable(e) {
			if _, ok := ti.treeKey(doc, nd, ix.stableOf[i]); ok {
				castable++
				bytes += 12 // value (8) + posting (4) in the B+tree
				switch doc.Kind(nd) {
				case xmltree.Element, xmltree.Document:
					nonLeaf++ // combined values only reach the tree
				case xmltree.Text:
					castableTexts++
				}
			}
		}
		// Items persist as compact varints; estimate 2 bytes per item.
		bytes += 2 * len(ti.items[ix.stableOf[i]])
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		e := ti.attrElems[a]
		if e == fsm.Reject || e == fsm.Identity {
			continue
		}
		live++
		bytes += 5
		if ti.m.Castable(e) {
			if _, ok := ti.attrKey(xmltree.AttrID(a), ix.attrStableOf[a]); ok {
				castable++
				bytes += 12
			}
		}
		bytes += 2 * len(ti.attrItems[ix.attrStableOf[a]])
	}
	return live, liveTexts, castableTexts, castable, nonLeaf, bytes
}

// isCombinedValue reports whether an element's value is assembled across
// MULTIPLE contributing children — the paper's notion of a "non-leaf"
// typed value (its <weight><kilos>78</kilos>.<grams>230</grams></weight>
// example). Wrappers with a single contributing child (a text, or one
// element) share that child's value exactly and are chain-lifted at query
// time instead of being stored (see typedIndex.treeKey and
// Indexes.appendWithChain — the two rules must stay complementary).
func isCombinedValue(doc *xmltree.Doc, n xmltree.NodeID) bool {
	return countContributing(doc, n) > 1
}

// DocBytes estimates the persisted size of the document itself (node
// columns + live heap + attribute table), the denominator of the storage
// panels in Figure 9.
func (ix *Indexes) DocBytes() int {
	doc := ix.doc
	// kind 1 + size 4 + level 4 + parent 4 + name 4 + value ref 8 per node,
	// name 4 + value ref 8 per attribute, plus the live text heap.
	return doc.NumNodes()*25 + doc.NumAttrs()*12 + doc.LiveHeapBytes()
}
