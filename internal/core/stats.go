package core

import (
	"repro/internal/fsm"
	"repro/internal/xmltree"
)

// TypedStats summarises one typed index's contents and estimated
// persisted size.
type TypedStats struct {
	ID   TypeID
	Name string

	Live          int // nodes with a stored (non-reject) state
	LiveTexts     int // text nodes with a potentially valid fragment
	CastableTexts int // text nodes whose value casts to the type
	Castable      int // entries in the value B+tree
	NonLeaf       int // non-leaf nodes with a castable value
	Bytes         int // persisted estimate: 1 byte state + items per live node, 12 bytes per tree entry
}

// IndexStats summarises index contents and estimated persisted sizes; it
// backs Table 1 and the storage panels of Figure 9.
type IndexStats struct {
	Nodes int // tree nodes + attributes
	Texts int
	Attrs int

	// String index.
	StringEntries int // postings in the hash B+tree
	StringBytes   int // persisted size estimate: 4 bytes hash + 4 bytes posting per entry

	// Substring index (zero when not enabled).
	SubstringEntries int // (gram, posting) entries in the q-gram B+tree
	SubstringBytes   int // persisted size estimate: 4 bytes gram + 4 bytes posting per entry

	// Typed holds one entry per built typed index, in registry order.
	Typed []TypedStats

	// Flattened views of the built-in types, for Table 1 reporting (the
	// double columns are Table 1's "Double Values" and "non-leaf"
	// columns). Zero when the corresponding index was not built.
	DoubleLive          int
	DoubleTexts         int
	DoubleCastableTexts int
	DoubleCastable      int
	DoubleNonLeaf       int
	DoubleBytes         int
	DateTimeLive        int
	DateTimeTexts       int
	DateTimeCastable    int
	DateTimeBytes       int
	DateLive            int
	DateTexts           int
	DateCastable        int
	DateBytes           int

	Elements int // element count (Table 1 totals are elements + texts)
}

// TypedFor returns the stats entry for typed index id, if built.
func (s IndexStats) TypedFor(id TypeID) (TypedStats, bool) {
	for _, t := range s.Typed {
		if t.ID == id {
			return t, true
		}
	}
	return TypedStats{}, false
}

// Stats scans the index structures; cost is O(nodes · types).
func (ix *Snapshot) Stats() IndexStats {
	doc := ix.doc
	var s IndexStats
	s.Attrs = doc.NumAttrs()
	s.Nodes = doc.NumNodes() + s.Attrs

	for i := 0; i < doc.NumNodes(); i++ {
		switch doc.Kind(xmltree.NodeID(i)) {
		case xmltree.Text:
			s.Texts++
		case xmltree.Element:
			s.Elements++
		}
	}
	if ix.strTree != nil {
		s.StringEntries = ix.strTree.Len()
		s.StringBytes = s.StringEntries * 8
	}
	if ix.subTree != nil {
		s.SubstringEntries = ix.subTree.Len()
		s.SubstringBytes = s.SubstringEntries * 8
	}
	for _, ti := range ix.typed {
		ts := ix.typedStats(ti)
		s.Typed = append(s.Typed, ts)
		switch ti.spec.ID {
		case TypeDouble:
			s.DoubleLive, s.DoubleTexts, s.DoubleCastableTexts = ts.Live, ts.LiveTexts, ts.CastableTexts
			s.DoubleCastable, s.DoubleNonLeaf, s.DoubleBytes = ts.Castable, ts.NonLeaf, ts.Bytes
		case TypeDateTime:
			s.DateTimeLive, s.DateTimeTexts = ts.Live, ts.LiveTexts
			s.DateTimeCastable, s.DateTimeBytes = ts.Castable, ts.Bytes
		case TypeDate:
			s.DateLive, s.DateTexts = ts.Live, ts.LiveTexts
			s.DateCastable, s.DateBytes = ts.Castable, ts.Bytes
		}
	}
	return s
}

func (ix *Snapshot) typedStats(ti *typedIndex) TypedStats {
	doc := ix.doc
	ts := TypedStats{ID: ti.spec.ID, Name: ti.spec.Name}
	for i := 0; i < doc.NumNodes(); i++ {
		nd := xmltree.NodeID(i)
		e := ti.elems[i]
		if e == fsm.Reject {
			continue
		}
		if e == fsm.Identity && doc.Kind(nd) != xmltree.Text {
			// Empty elements carry no information; the paper would not
			// store them either.
			continue
		}
		ts.Live++
		// 1 byte state (paper) + node id reference (4) per stored state.
		ts.Bytes += 5
		if doc.Kind(nd) == xmltree.Text {
			ts.LiveTexts++
		}
		if ti.spec.Machine.Castable(e) {
			if _, ok := ti.treeKey(doc, nd, ix.stableOf[i]); ok {
				ts.Castable++
				ts.Bytes += 12 // value (8) + posting (4) in the B+tree
				switch doc.Kind(nd) {
				case xmltree.Element, xmltree.Document:
					ts.NonLeaf++ // combined values only reach the tree
				case xmltree.Text:
					ts.CastableTexts++
				}
			}
		}
		// Items persist as compact varints; estimate 2 bytes per item.
		ts.Bytes += 2 * len(ti.items[ix.stableOf[i]])
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		e := ti.attrElems[a]
		if e == fsm.Reject || e == fsm.Identity {
			continue
		}
		ts.Live++
		ts.Bytes += 5
		if ti.spec.Machine.Castable(e) {
			if _, ok := ti.attrKey(xmltree.AttrID(a), ix.attrStableOf[a]); ok {
				ts.Castable++
				ts.Bytes += 12
			}
		}
		ts.Bytes += 2 * len(ti.attrItems[ix.attrStableOf[a]])
	}
	return ts
}

// isCombinedValue reports whether an element's value is assembled across
// MULTIPLE contributing children — the paper's notion of a "non-leaf"
// typed value (its <weight><kilos>78</kilos>.<grams>230</grams></weight>
// example). Wrappers with a single contributing child (a text, or one
// element) share that child's value exactly and are chain-lifted at query
// time instead of being stored (see typedIndex.treeKey and
// Indexes.appendWithChain — the two rules must stay complementary).
func isCombinedValue(doc *xmltree.Doc, n xmltree.NodeID) bool {
	return countContributing(doc, n) > 1
}

// DocBytes estimates the persisted size of the document itself (node
// columns + live heap + attribute table), the denominator of the storage
// panels in Figure 9.
func (ix *Snapshot) DocBytes() int {
	doc := ix.doc
	// kind 1 + size 4 + level 4 + parent 4 + name 4 + value ref 8 per node,
	// name 4 + value ref 8 per attribute, plus the live text heap.
	return doc.NumNodes()*25 + doc.NumAttrs()*12 + doc.LiveHeapBytes()
}
