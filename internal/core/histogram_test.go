package core

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/btree"
	"repro/internal/xmltree"
)

// TestKeyStatsBuild pins the equi-depth construction: population equals
// the tree, distinct keys counted exactly, equal keys never straddle a
// bucket boundary.
func TestKeyStatsBuild(t *testing.T) {
	tr := btree.New()
	// 50 distinct keys, key k carrying k%5+1 postings.
	want := 0
	for k := uint64(100); k < 150; k++ {
		for v := uint32(0); v < uint32(k%5)+1; v++ {
			tr.Insert(k, v)
			want++
		}
	}
	ks := buildKeyStats(tr)
	if ks.total != want || ks.sum() != want {
		t.Fatalf("total %d / sum %d, want %d", ks.total, ks.sum(), want)
	}
	if ks.distinct != 50 {
		t.Fatalf("distinct = %d, want 50", ks.distinct)
	}
	if ks.min != 100 || ks.max != 149 {
		t.Fatalf("min/max = %d/%d, want 100/149", ks.min, ks.max)
	}
	if ks.bounds[len(ks.bounds)-1] != math.MaxUint64 {
		t.Fatal("missing catch-all bucket")
	}
	// Eq-estimate: avg cluster size = total/50 = 3; every key estimate
	// must be within the bucket population.
	if est := ks.estimateEq(120); est <= 0 || est > float64(ks.total) {
		t.Fatalf("estimateEq(120) = %g", est)
	}
	if est := ks.estimateEq(99); est != 0 {
		t.Fatalf("estimateEq below min = %g, want 0", est)
	}
	// Range estimate over everything returns the total.
	if est := ks.estimateRange(0, math.MaxUint64); math.Abs(est-float64(want)) > 0.5 {
		t.Fatalf("full-range estimate %g, want %d", est, want)
	}
}

// TestKeyStatsRangeAccuracy checks interpolation quality on uniform
// keys: a q-fraction range must estimate within 2x of truth.
func TestKeyStatsRangeAccuracy(t *testing.T) {
	tr := btree.New()
	for k := uint64(0); k < 10000; k++ {
		tr.Insert(k, uint32(k))
	}
	ks := buildKeyStats(tr)
	for _, span := range []struct{ lo, hi uint64 }{{0, 99}, {5000, 5999}, {9000, 9999}, {2500, 7499}} {
		truth := float64(span.hi - span.lo + 1)
		est := ks.estimateRange(span.lo, span.hi)
		if est < truth/2 || est > truth*2 {
			t.Errorf("range [%d,%d]: est %g, truth %g", span.lo, span.hi, est, truth)
		}
	}
}

// TestKeyStatsMaintenance pins the update path: inserts/deletes keep
// bucket populations exact, and enough churn triggers a rebuild that
// refreshes distinct counts.
func TestKeyStatsMaintenance(t *testing.T) {
	doc := mustParseForTest(t, makeNumDoc(400))
	ix := Build(doc, Options{Double: true})
	ti := ix.Snapshot().typedFor(TypeDouble)
	if ti.stats == nil {
		t.Fatal("no stats after Build")
	}
	if ti.stats.sum() != ti.tree.Len() {
		t.Fatalf("histogram population %d, tree %d", ti.stats.sum(), ti.tree.Len())
	}
	// Rewrite half the text nodes to new values; population must track.
	var updates []TextUpdate
	for i := 0; i < doc.NumNodes() && len(updates) < 200; i++ {
		if doc.Kind(int32AsNodeID(i)) == xmltree.Text {
			updates = append(updates, TextUpdate{Node: int32AsNodeID(i), Value: fmt.Sprintf("%d", 100000+i)})
		}
	}
	if err := ix.UpdateTexts(updates); err != nil {
		t.Fatal(err)
	}
	// The commit published a new version; re-fetch its typed index (the
	// old ti still describes the pre-update snapshot, by design).
	ti = ix.Snapshot().typedFor(TypeDouble)
	if ti.stats.sum() != ti.tree.Len() {
		t.Fatalf("after updates: histogram population %d, tree %d", ti.stats.sum(), ti.tree.Len())
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	// The churn above (200 updates on ~400 entries) crosses the rebuild
	// threshold, so bounds are fresh: distinct should reflect the new
	// values.
	if ti.stats.churn != 0 {
		t.Fatalf("churn = %d after threshold crossing, want rebuilt (0)", ti.stats.churn)
	}
}

// TestStatsPersistRoundTrip pins snapshot round-tripping: planner stats
// load back identical (same estimates), and a loaded index keeps
// maintaining them through updates.
func TestStatsPersistRoundTrip(t *testing.T) {
	doc := mustParseForTest(t, makeNumDoc(300))
	ix := Build(doc, DefaultOptions())
	path := filepath.Join(t.TempDir(), "stats.xvi")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []TypeID{TypeDouble, TypeDate} {
		want, ok1 := ix.TypedPlannerStats(id)
		got, ok2 := loaded.TypedPlannerStats(id)
		if ok1 != ok2 || want != got {
			t.Errorf("type %d: loaded stats %+v (ok=%v), want %+v (ok=%v)", id, got, ok2, want, ok1)
		}
	}
	ws, ok1 := ix.StringPlannerStats()
	gs, ok2 := loaded.StringPlannerStats()
	if ok1 != ok2 || ws != gs {
		t.Errorf("string stats %+v/%v, want %+v/%v", gs, ok2, ws, ok1)
	}
	// Estimates answer identically on the loaded index.
	if a, b := ix.EstimateTypedRange(TypeDouble, 0, math.MaxUint64, true, true),
		loaded.EstimateTypedRange(TypeDouble, 0, math.MaxUint64, true, true); a != b {
		t.Errorf("full-range estimate %g loaded vs %g built", b, a)
	}
	if err := loaded.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsSectionOptional pins the fallback: a snapshot whose stats
// section is damaged (here: simulated by zeroing the section lookup via
// an old-format write path is not available, so corrupt detection is
// exercised through the sanity check) still loads, with stats rebuilt
// from the trees.
func TestStatsSectionOptional(t *testing.T) {
	doc := mustParseForTest(t, makeNumDoc(50))
	ix := Build(doc, Options{Double: true})
	// Clear the in-memory stats and save: writeStats persists an empty
	// placeholder whose population (0) mismatches the tree, forcing
	// loadStats down the rebuild path.
	ti := ix.Snapshot().typedFor(TypeDouble)
	saved := ti.stats
	ti.stats = nil
	path := filepath.Join(t.TempDir(), "nostats.xvi")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	ti.stats = saved
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := loaded.TypedPlannerStats(TypeDouble)
	if !ok || got.Total != ti.tree.Len() {
		t.Fatalf("rebuilt stats = %+v (ok=%v), want total %d", got, ok, ti.tree.Len())
	}
}

// TestStringEqIterMatchesLookup pins the streaming string path against
// the materialised one.
func TestStringEqIterMatchesLookup(t *testing.T) {
	doc := mustParseForTest(t, `<r><a>x</a><b>x</b><c>y</c><d at="x"/><e>x<f/></e></r>`)
	ix := Build(doc, Options{String: true})
	want := ix.LookupString("x")
	it := ix.StringEqIter("x")
	var got []Posting
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, p)
	}
	it.Close()
	if len(got) != len(want) {
		t.Fatalf("iterator %d postings, lookup %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("posting %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestTypedRangeIterMatchesRange pins the streaming typed path —
// including wrapper chain-lifting — against the materialised range.
func TestTypedRangeIterMatchesRange(t *testing.T) {
	doc := mustParseForTest(t, makeNumDoc(120))
	ix := Build(doc, Options{Double: true})
	lo, hi := btree.EncodeFloat64(10), btree.EncodeFloat64(60)
	want := ix.RangeTyped(TypeDouble, lo, hi, true, true)
	it := ix.TypedRangeIter(TypeDouble, lo, hi, true, true)
	var got []Posting
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, p)
	}
	it.Close()
	if len(got) != len(want) {
		t.Fatalf("iterator %d postings, range %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("posting %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Exclusive-bound and empty iterators behave.
	it = ix.TypedRangeIter(TypeDouble, lo, lo, false, false)
	if _, ok := it.Next(); ok {
		t.Fatal("empty exclusive range yielded a posting")
	}
	it.Close()
	it = ix.TypedRangeIter(TypeDateTime, 0, math.MaxUint64, true, true) // not built
	if _, ok := it.Next(); ok {
		t.Fatal("unbuilt index yielded a posting")
	}
	it.Close()
}

// makeNumDoc builds a flat document of n numeric leaves (wrapped, so
// chain-lifting applies) interleaved with non-numeric ones.
func makeNumDoc(n int) string {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < n; i++ {
		if i%7 == 0 {
			fmt.Fprintf(&b, "<s>text%d</s>", i)
			continue
		}
		fmt.Fprintf(&b, "<v>%d</v>", i%100)
	}
	b.WriteString("</r>")
	return b.String()
}

// TestStatsSnapshotDeterministic guards the parallel-equivalence
// contract: stats derive deterministically from the trees, so serial
// and parallel builds still produce byte-identical snapshots.
func TestStatsSnapshotDeterministic(t *testing.T) {
	doc := mustParseForTest(t, makeNumDoc(500))
	p1 := Build(doc, Options{String: true, Double: true, Date: true, Parallelism: 1})
	p4 := Build(doc, Options{String: true, Double: true, Date: true, Parallelism: 4})
	d := t.TempDir()
	f1, f4 := filepath.Join(d, "p1.xvi"), filepath.Join(d, "p4.xvi")
	if err := p1.Save(f1); err != nil {
		t.Fatal(err)
	}
	if err := p4.Save(f4); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(f1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := os.ReadFile(f4)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b4) {
		t.Fatal("serial and parallel snapshots differ with stats section")
	}
}
