package core

import (
	"testing"

	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

// The typed value trees store castable texts, attributes, and COMBINED
// (mixed-content) elements; single-child wrapper chains are materialised
// at query time by appendWithChain. These tests pin that contract.

func kindsOf(t *testing.T, ix *Indexes, ps []Posting) map[xmltree.Kind]int {
	t.Helper()
	out := map[xmltree.Kind]int{}
	for _, p := range ps {
		if p.IsAttr {
			continue
		}
		out[ix.Doc().Kind(p.Node)]++
	}
	return out
}

func TestChainLiftSingleWrapper(t *testing.T) {
	ix := Build(mustParseForTest(t, `<r><price>42</price></r>`), DefaultOptions())
	hits := ix.LookupDoubleEq(42)
	k := kindsOf(t, ix, hits)
	// text + <price> + <r> + document: the whole single-child chain.
	if k[xmltree.Text] != 1 || k[xmltree.Element] != 2 || k[xmltree.Document] != 1 {
		t.Fatalf("chain = %v (hits %v)", k, hits)
	}
}

func TestChainLiftStopsAtBranching(t *testing.T) {
	ix := Build(mustParseForTest(t, `<r><price>42</price><other>text</other></r>`), DefaultOptions())
	hits := ix.LookupDoubleEq(42)
	k := kindsOf(t, ix, hits)
	// <r> has two contributing children; its value "42text" is not 42.
	if k[xmltree.Element] != 1 || k[xmltree.Document] != 0 {
		t.Fatalf("chain leaked past branching: %v", k)
	}
}

func TestChainLiftDeepWrappers(t *testing.T) {
	ix := Build(mustParseForTest(t, `<a><b><c><d>7.5</d></c></b></a>`), DefaultOptions())
	hits := ix.LookupDoubleEq(7.5)
	if len(hits) != 5 { // text, d, c, b, a... plus document = 6? a's parent is doc
		// text + d + c + b + a + document = 6
		if len(hits) != 6 {
			t.Fatalf("deep chain = %d hits", len(hits))
		}
	}
}

func TestCombinedElementStoredDirectly(t *testing.T) {
	// Mixed content: the element itself carries the combined value and
	// must be found even though no single child has it.
	ix := Build(mustParseForTest(t, `<r><w><k>78</k>.<g>230</g></w><pad>x</pad></r>`), DefaultOptions())
	hits := ix.LookupDoubleEq(78.230)
	foundW := false
	for _, p := range hits {
		if !p.IsAttr && ix.Doc().Kind(p.Node) == xmltree.Element && ix.Doc().Name(p.Node) == "w" {
			foundW = true
		}
	}
	if !foundW {
		t.Fatalf("combined <w> missing from %v", hits)
	}
	// Its children 78 and 230 are separate values.
	if len(ix.LookupDoubleEq(78)) == 0 || len(ix.LookupDoubleEq(230)) == 0 {
		t.Error("component values missing")
	}
}

func TestChainLiftWithWhitespacePadding(t *testing.T) {
	// Pretty-printed wrapper: <price> has ONE contributing text " 42 ",
	// whose castable value matches the wrapper's.
	doc, err := xmlparse.ParseString("<r><price> 42 </price></r>")
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc, DefaultOptions())
	hits := ix.LookupDoubleEq(42)
	k := kindsOf(t, ix, hits)
	if k[xmltree.Element] != 2 { // price and r
		t.Fatalf("padded chain = %v", k)
	}
}

func TestChainLiftSkipsCommentSiblings(t *testing.T) {
	// Comments do not contribute: <price> still has a single contributing
	// child and must be lifted.
	ix := Build(mustParseForTest(t, `<r><price>42<!--note--></price></r>`), DefaultOptions())
	hits := ix.LookupDoubleEq(42)
	k := kindsOf(t, ix, hits)
	if k[xmltree.Element] != 2 {
		t.Fatalf("comment broke the chain: %v", k)
	}
}

func TestChainLiftAfterStructuralUpdate(t *testing.T) {
	// Deleting the sibling turns a combined parent into a wrapper; the
	// tree entry must follow the membership rule.
	ix := Build(mustParseForTest(t, `<r><price>42</price><note>x</note></r>`), DefaultOptions())
	d := ix.Doc()
	var note xmltree.NodeID
	for i := 0; i < d.NumNodes(); i++ {
		if d.Kind(xmltree.NodeID(i)) == xmltree.Element && d.Name(xmltree.NodeID(i)) == "note" {
			note = xmltree.NodeID(i)
		}
	}
	if err := ix.DeleteSubtree(note); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	hits := ix.LookupDoubleEq(42)
	k := kindsOf(t, ix, hits)
	// Now r is a wrapper: lifted, plus document.
	if k[xmltree.Element] != 2 || k[xmltree.Document] != 1 {
		t.Fatalf("after delete: %v", k)
	}
	// And the reverse: inserting a numeric sibling makes <r> combined.
	b := xmltree.NewBuilder()
	b.StartElement("more")
	b.Text("58")
	b.EndElement()
	frag, _ := b.Finish()
	r := d.FirstChild(d.Root())
	if _, err := ix.InsertChildren(r, 1, frag); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	// r's value is now "4258" — combined and castable.
	if hits := ix.LookupDoubleEq(4258); len(hits) == 0 {
		t.Error("combined value after insert missing")
	}
}

func TestRangeOrderWithChains(t *testing.T) {
	ix := Build(mustParseForTest(t, `<r><a>1</a><b>2</b><c>3</c></r>`), DefaultOptions())
	hits := ix.RangeDouble(0, 10, true, true)
	// Values must be non-decreasing across the scan even with lifted
	// wrappers interleaved.
	last := -1.0
	for _, p := range hits {
		if p.IsAttr {
			continue
		}
		v, ok := ix.DoubleValue(p.Node)
		if !ok {
			t.Fatalf("non-castable hit %v", p)
		}
		if v < last {
			t.Fatalf("range order violated: %v after %v", v, last)
		}
		last = v
	}
}
