package core

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

func int32AsNodeID(i int) xmltree.NodeID { return xmltree.NodeID(i) }

func mustParseForTest(t testing.TB, xml string) *xmltree.Doc {
	t.Helper()
	doc, err := xmlparse.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func writeGarbage(path string) error {
	return os.WriteFile(path, []byte("this is not a snapshot file at all, not even close"), 0o644)
}

// shapeCase is one entry of the pathological shape corpus shared by the
// parallel-equivalence and recovery-equivalence properties.
type shapeCase struct {
	name string
	xml  string
}

// shapeCorpus returns the pathological document shapes: a single giant
// subtree (every node on the spine), a deep chain with values at every
// level, an all-attribute document, an empty document, and a
// mixed-content spine.
func shapeCorpus() []shapeCase {
	var giant strings.Builder
	giant.WriteString("<r>")
	const giantDepth = 600
	for i := 0; i < giantDepth; i++ {
		fmt.Fprintf(&giant, "<d%d>", i%7)
	}
	giant.WriteString("42.5")
	for i := giantDepth - 1; i >= 0; i-- {
		fmt.Fprintf(&giant, "</d%d>", i%7)
	}
	giant.WriteString("</r>")

	var deep strings.Builder
	deep.WriteString("<r>")
	const chainDepth = 250
	for i := 0; i < chainDepth; i++ {
		fmt.Fprintf(&deep, "<lvl><n>%d.5</n>", i)
	}
	deep.WriteString("bottom")
	for i := 0; i < chainDepth; i++ {
		deep.WriteString("</lvl>")
	}
	deep.WriteString("</r>")

	var attrs strings.Builder
	attrs.WriteString("<r>")
	for i := 0; i < 900; i++ {
		fmt.Fprintf(&attrs, `<e a="%d" b="%d.%02d" when="19%02d-0%d-1%d"/>`, i, i, i%100, i%100, i%9+1, i%3)
	}
	attrs.WriteString("</r>")

	var mixed strings.Builder
	mixed.WriteString("<r>7")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&mixed, "<w><v>%d</v></w>", i)
	}
	mixed.WriteString("8<!--note--><?pi data?></r>")

	return []shapeCase{
		{"giant-subtree", giant.String()},
		{"deep-chain", deep.String()},
		{"all-attributes", attrs.String()},
		{"empty-document", "<r/>"},
		{"mixed-content-spine", mixed.String()},
	}
}
