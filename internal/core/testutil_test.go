package core

import (
	"os"
	"testing"

	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

func int32AsNodeID(i int) xmltree.NodeID { return xmltree.NodeID(i) }

func mustParseForTest(t testing.TB, xml string) *xmltree.Doc {
	t.Helper()
	doc, err := xmlparse.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func writeGarbage(path string) error {
	return os.WriteFile(path, []byte("this is not a snapshot file at all, not even close"), 0o644)
}
