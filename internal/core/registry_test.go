package core

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/fsm"
	"repro/internal/storage"
	"repro/internal/xmltree"
)

func epochDays(y int, m time.Month, d int) int64 {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC).Unix() / 86400
}

// TestDateIndexViaRegistration exercises the xs:date index end-to-end.
// The index exists purely through its RegisterType call — build, lookup,
// update, and verify all run the same generic code as double/dateTime.
func TestDateIndexViaRegistration(t *testing.T) {
	ix := buildPerson(t)
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	d := ix.Doc()
	birthday := findElem(d, "birthday")
	if days, ok := ix.DateValue(birthday); !ok || days != epochDays(1966, time.September, 26) {
		t.Fatalf("DateValue(<birthday>) = %d %v, want %d", days, ok, epochDays(1966, time.September, 26))
	}

	hits := ix.RangeDate(epochDays(1966, time.January, 1), epochDays(1966, time.December, 31))
	if len(hits) == 0 {
		t.Fatal("RangeDate found nothing in 1966")
	}
	// The chain-lifting rule applies to dates exactly as to doubles: the
	// stored text posting plus its wrapper element.
	foundWrapper := false
	for _, h := range hits {
		if !h.IsAttr && h.Node == birthday {
			foundWrapper = true
		}
	}
	if !foundWrapper {
		t.Errorf("wrapper <birthday> not chain-lifted: %+v", hits)
	}
	if got := ix.RangeDate(epochDays(1980, time.January, 1), epochDays(1990, time.January, 1)); len(got) != 0 {
		t.Errorf("empty decade returned %d hits", len(got))
	}

	// Semantically impossible dates are live fragments but never castable:
	// no posting may appear for month 13.
	doc2 := mustParseForTest(t, `<r><d>1999-13-01</d><d>2000-02-30</d><d>2000-02-29</d></r>`)
	ix2 := Build(doc2, Options{Date: true})
	if err := ix2.Verify(); err != nil {
		t.Fatal(err)
	}
	all := ix2.RangeDate(math.MinInt64, math.MaxInt64)
	cnt := 0
	for _, h := range all {
		if !h.IsAttr && doc2.Kind(h.Node) == xmltree.Text {
			cnt++
		}
	}
	if cnt != 1 {
		t.Errorf("castable date texts = %d, want 1 (only the real leap day)", cnt)
	}
}

func TestDateIndexFollowsUpdates(t *testing.T) {
	ix := buildPerson(t)
	d := ix.Doc()
	birthday := findElem(d, "birthday")
	text := d.FirstChild(birthday)
	if err := ix.UpdateText(text, "2001-03-15"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("after date update: %v", err)
	}
	if hits := ix.RangeDate(epochDays(1966, time.January, 1), epochDays(1966, time.December, 31)); len(hits) != 0 {
		t.Errorf("old date still indexed: %+v", hits)
	}
	if hits := ix.RangeDate(epochDays(2001, time.March, 15), epochDays(2001, time.March, 15)); len(hits) == 0 {
		t.Error("new date not indexed")
	}
	// Degrade to a non-date: the posting must disappear.
	if err := ix.UpdateText(text, "not a date"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	if hits := ix.RangeDate(math.MinInt64, math.MaxInt64); len(hits) != 0 {
		t.Errorf("rejected value still indexed: %+v", hits)
	}
}

func TestRangeTypedGeneric(t *testing.T) {
	ix := buildPerson(t)
	// RangeTyped over the double index must agree with RangeDouble.
	want := ix.RangeDouble(40, 80, true, true)
	got := ix.RangeTyped(TypeDouble, btree.EncodeFloat64(40), btree.EncodeFloat64(80), true, true)
	if len(want) != len(got) {
		t.Errorf("RangeTyped %d hits, RangeDouble %d", len(got), len(want))
	}
	// Unknown or unbuilt type IDs answer empty, never panic.
	if hits := ix.RangeTyped(TypeID(9999), 0, math.MaxUint64, true, true); hits != nil {
		t.Errorf("unknown type returned %d hits", len(hits))
	}
	noDouble := Build(ix.Doc(), Options{String: true})
	if hits := noDouble.RangeTyped(TypeDouble, 0, math.MaxUint64, true, true); hits != nil {
		t.Errorf("unbuilt type returned %d hits", len(hits))
	}
}

func TestRegisterTypeValidation(t *testing.T) {
	mustPanic := func(name string, spec TypeSpec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterType did not panic", name)
			}
		}()
		RegisterType(spec)
	}
	mustPanic("zero id", TypeSpec{Name: "x", Machine: fsm.Date(), Encode: encodeDate})
	mustPanic("no machine", TypeSpec{ID: 900, Name: "x", Encode: encodeDate})
	mustPanic("no encode", TypeSpec{ID: 900, Name: "x", Machine: fsm.Date()})
	mustPanic("dup id", TypeSpec{ID: TypeDouble, Name: "double2", Machine: fsm.Double(), Encode: encodeDouble})
	mustPanic("dup name", TypeSpec{ID: 901, Name: "double", Machine: fsm.Double(), Encode: encodeDouble})
}

// customTypeID aliases the date machine under a private ID, proving that
// an external registration travels through build, lookup, persistence,
// and verification without any core changes.
const customTypeID TypeID = 1000

func registerCustomTypeOnce(t *testing.T) {
	t.Helper()
	if _, ok := LookupType(customTypeID); ok {
		return
	}
	RegisterType(TypeSpec{
		ID:      customTypeID,
		Name:    "date-alias",
		Machine: fsm.Date(),
		Encode:  encodeDate,
	})
}

func TestCustomTypeEndToEnd(t *testing.T) {
	registerCustomTypeOnce(t)
	doc := mustParseForTest(t, personXML)
	ix := Build(doc, Options{Types: []TypeID{customTypeID}})
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	if ids := ix.TypedIDs(); len(ids) != 1 || ids[0] != customTypeID {
		t.Fatalf("TypedIDs = %v", ids)
	}
	lo := btree.EncodeInt64(epochDays(1966, time.January, 1))
	hi := btree.EncodeInt64(epochDays(1966, time.December, 31))
	hits := ix.RangeTyped(customTypeID, lo, hi, true, true)
	if len(hits) == 0 {
		t.Fatal("custom typed index found nothing")
	}

	// Round-trip through the versioned per-type snapshot sections.
	path := filepath.Join(t.TempDir(), "custom.xvi")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	reHits := got.RangeTyped(customTypeID, lo, hi, true, true)
	if len(reHits) != len(hits) {
		t.Errorf("custom type survived load with %d hits, want %d", len(reHits), len(hits))
	}
	opts := got.Options()
	if len(opts.Types) != 1 || opts.Types[0] != customTypeID {
		t.Errorf("loaded options = %+v", opts)
	}
}

func TestRangeDoubleNaNBounds(t *testing.T) {
	ix := buildPerson(t)
	nan := math.NaN()
	// Before the guard, EncodeFloat64(NaN) produced an above-+Inf key that
	// turned one-sided "ranges" into garbage scans. XPath semantics:
	// comparisons against NaN select nothing.
	for _, c := range [][2]float64{{nan, 100}, {0, nan}, {nan, nan}} {
		if hits := ix.RangeDouble(c[0], c[1], true, true); len(hits) != 0 {
			t.Errorf("RangeDouble(%v, %v) = %d hits, want 0", c[0], c[1], len(hits))
		}
	}
	// A plain range still works after the guard.
	if hits := ix.RangeDouble(41, 43, true, true); len(hits) == 0 {
		t.Error("RangeDouble(41, 43) found nothing")
	}
}

func TestLoadRejectsUnknownSnapshotVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.xvi")
	w, err := storage.NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := w.Section(SectionMeta)
	if err != nil {
		t.Fatal(err)
	}
	se := newSliceEncoder(sec)
	se.uv(99) // a future format version
	se.uv(1)
	se.uv(0)
	if err := se.flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("loading a future-version snapshot must fail")
	}
	if !strings.Contains(err.Error(), "format version 99") {
		t.Errorf("error does not name the version: %v", err)
	}
}

func TestLoadRejectsUnknownTypeID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unknown-type.xvi")
	w, err := storage.NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := w.Section(SectionMeta)
	if err != nil {
		t.Fatal(err)
	}
	se := newSliceEncoder(sec)
	se.uv(snapshotVersion)
	se.uv(0)
	se.uv(1)
	se.uv(9999) // never registered
	if err := se.flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("loading a snapshot with an unregistered type must fail")
	}
	if !strings.Contains(err.Error(), "9999") {
		t.Errorf("error does not name the type ID: %v", err)
	}
}

// TestLoadRejectsMismatchedTypedSection covers the per-section header:
// a snapshot whose typed section does not match its manifest entry fails
// loudly instead of deserialising the wrong type's states.
func TestLoadRejectsMismatchedTypedSection(t *testing.T) {
	ix := buildPerson(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.xvi")
	if err := ix.Save(good); err != nil {
		t.Fatal(err)
	}
	// Rewrite the snapshot, swapping the double section's payload in
	// under the dateTime section name.
	r, err := storage.OpenReader(good)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	bad := filepath.Join(dir, "bad.xvi")
	w, err := storage.NewWriter(bad)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Sections() {
		src := name
		if name == TypedSectionName(TypeDateTime) {
			src = TypedSectionName(TypeDouble)
		}
		in, err := r.Section(src)
		if err != nil {
			t.Fatal(err)
		}
		out, err := w.Section(name)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1<<16)
		for {
			n, rerr := in.Read(buf)
			if n > 0 {
				if _, werr := out.Write(buf[:n]); werr != nil {
					t.Fatal(werr)
				}
			}
			if rerr != nil {
				break
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = Load(bad)
	if err == nil {
		t.Fatal("loading a snapshot with a mismatched typed section must fail")
	}
	if !strings.Contains(err.Error(), "type ID") {
		t.Errorf("error does not describe the mismatch: %v", err)
	}
}
