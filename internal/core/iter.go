package core

import (
	"math"

	"repro/internal/btree"
	"repro/internal/vhash"
	"repro/internal/xmltree"
)

// PostingIter streams the postings of one index access path in ascending
// key order, resolving packed postings lazily — the planner's executor
// consumes these instead of materialised []Posting slices, so a driver
// access path can stop early and the non-driver paths of an intersection
// can stream straight into bitmaps. String-equality iterators verify
// every hash candidate against the document (no false positives escape);
// typed range iterators interleave each hit's single-child ancestor
// chain, exactly like the materialised Range* lookups.
//
// The iterator pins the Snapshot it was opened on, so a concurrent
// update cannot slip between candidate retrieval and verification:
// published versions are immutable and a writer's copy-on-write commit
// never touches the node graph a live cursor walks. Close is a no-op
// kept for API symmetry (the snapshot is released by the garbage
// collector once unreachable); it remains safe to call exactly once.
type PostingIter struct {
	ix  *Snapshot
	cur *btree.Cursor
	hi  uint64

	// String-equality verification (hash candidates only).
	verify   string
	doVerify bool

	// Single-child ancestor chain lifting (typed range paths only).
	chainLift bool
	pending   []Posting

	closed bool
}

// StringEqIter streams the verified postings whose string value equals
// value, in ascending posting order (the hash index stores one posting
// per node, wrappers included, so no chain lifting applies).
func (ix *Snapshot) StringEqIter(value string) *PostingIter {
	it := &PostingIter{ix: ix, verify: value, doVerify: true}
	if ix.strTree != nil {
		h := uint64(vhash.HashString(value))
		it.cur = ix.strTree.CursorAt(h)
		it.hi = h
	}
	return it
}

// TypedRangeIter streams the postings of nodes whose typed value under
// index id has an encoded key in [lo, hi] (exclusive bounds when
// incLo/incHi are false), in ascending value order, with each hit's
// wrapper-element chain interleaved.
func (ix *Snapshot) TypedRangeIter(id TypeID, lo, hi uint64, incLo, incHi bool) *PostingIter {
	it := &PostingIter{ix: ix, chainLift: true}
	ti := ix.typedFor(id)
	if ti == nil {
		return it
	}
	if !incLo {
		if lo == math.MaxUint64 {
			return it
		}
		lo++
	}
	if !incHi {
		if hi == 0 {
			return it
		}
		hi--
	}
	if lo > hi {
		return it
	}
	it.cur = ti.tree.CursorAt(lo)
	it.hi = hi
	return it
}

// Next returns the next posting; ok is false once the path is exhausted.
func (it *PostingIter) Next() (Posting, bool) {
	if n := len(it.pending); n > 0 {
		p := it.pending[n-1]
		it.pending = it.pending[:n-1]
		return p, true
	}
	if it.cur == nil {
		return Posting{}, false
	}
	for {
		e, ok := it.cur.Next()
		if !ok || e.Key > it.hi {
			it.cur = nil
			return Posting{}, false
		}
		p, ok := it.ix.resolve(e.Val)
		if !ok {
			continue
		}
		if it.doVerify && it.ix.postingStringValue(p) != it.verify {
			continue
		}
		if it.chainLift && !p.IsAttr {
			// Queue the single-child ancestor chain (bottom-up, like
			// appendWithChain); pending is drained LIFO so push in reverse.
			doc := it.ix.doc
			start := len(it.pending)
			for parent := doc.Parent(p.Node); parent != xmltree.InvalidNode; parent = doc.Parent(parent) {
				if countContributing(doc, parent) != 1 {
					break
				}
				it.pending = append(it.pending, NodePosting(parent))
			}
			// Reverse the queued run so ancestors pop closest-first.
			for i, j := start, len(it.pending)-1; i < j; i, j = i+1, j-1 {
				it.pending[i], it.pending[j] = it.pending[j], it.pending[i]
			}
		}
		return p, true
	}
}

// Close releases the iterator's cursor state. Snapshot reads take no
// locks, so this only drops references; calling it after draining (or
// abandoning) an iterator keeps the old locking contract's shape.
func (it *PostingIter) Close() {
	if it.closed {
		return
	}
	it.closed = true
	it.cur = nil
	it.pending = nil
}
