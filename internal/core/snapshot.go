package core

import "repro/internal/fsm"

// Copy-on-write drafts. A committing writer never mutates the published
// Snapshot: it clones exactly the state its operation writes — sharing
// the rest — applies the change to the private draft, and publishes the
// draft with one atomic store (see update.go). The three clone flavours
// below mirror the three write shapes:
//
//   - text updates write the doc's value column, node hashes, and the
//     node side of every typed index;
//   - attribute updates write the doc's attrValue column, attribute
//     hashes, and the attribute side of every typed index;
//   - structural updates (delete/insert) splice every column and remint
//     stable ids, so they copy everything.
//
// B+trees are cloned in O(1) — Insert/Delete on the draft path-copy the
// touched nodes and leave the published tree's node graph intact.

// cloneShared copies the fields every draft needs regardless of shape:
// the version bump and its own tree handles and statistics (both the
// string tree and stats are mutated by all write shapes, because every
// posting change funnels through strTreeInsert/Delete + maintainStats).
func (s *Snapshot) cloneShared() Snapshot {
	d := *s
	d.version = s.version + 1
	if s.strTree != nil {
		d.strTree = s.strTree.Clone()
	}
	d.strStats = s.strStats.clone()
	// The substring index stores postings for text nodes and attributes,
	// so all three write shapes can touch it.
	if s.subTree != nil {
		d.subTree = s.subTree.Clone()
	}
	d.subStats = s.subStats.clone()
	return d
}

// cloneForText returns a draft for a text-node value batch.
func (s *Snapshot) cloneForText() *Snapshot {
	d := s.cloneShared()
	d.doc = s.doc.CloneForText()
	d.hash = cloneU32(s.hash)
	d.typed = make([]*typedIndex, len(s.typed))
	for i, ti := range s.typed {
		d.typed[i] = ti.cloneNodeSide()
	}
	return &d
}

// cloneForAttr returns a draft for an attribute value update.
func (s *Snapshot) cloneForAttr() *Snapshot {
	d := s.cloneShared()
	d.doc = s.doc.CloneForAttr()
	d.attrHash = cloneU32(s.attrHash)
	d.typed = make([]*typedIndex, len(s.typed))
	for i, ti := range s.typed {
		d.typed[i] = ti.cloneAttrSide()
	}
	return &d
}

// cloneForStructure returns a draft for a subtree delete or insert.
func (s *Snapshot) cloneForStructure() *Snapshot {
	d := s.cloneShared()
	d.doc = s.doc.CloneForStructure()
	d.stableOf = cloneU32(s.stableOf)
	d.preOf = cloneI32(s.preOf)
	d.attrStableOf = cloneU32(s.attrStableOf)
	d.attrOf = cloneI32(s.attrOf)
	d.hash = cloneU32(s.hash)
	d.attrHash = cloneU32(s.attrHash)
	d.typed = make([]*typedIndex, len(s.typed))
	for i, ti := range s.typed {
		c := ti.cloneNodeSide()
		c.attrElems = append([]fsm.Elem(nil), ti.attrElems...)
		c.attrItems = cloneItems(ti.attrItems)
		d.typed[i] = c
	}
	return &d
}

// cloneNodeSide copies the node-side state of a typed index (elems,
// items, tree, stats) and shares the attribute side.
func (ti *typedIndex) cloneNodeSide() *typedIndex {
	c := *ti
	c.elems = append([]fsm.Elem(nil), ti.elems...)
	c.items = cloneItems(ti.items)
	if ti.tree != nil {
		c.tree = ti.tree.Clone()
	}
	c.stats = ti.stats.clone()
	return &c
}

// cloneAttrSide copies the attribute-side state and shares the node side.
func (ti *typedIndex) cloneAttrSide() *typedIndex {
	c := *ti
	c.attrElems = append([]fsm.Elem(nil), ti.attrElems...)
	c.attrItems = cloneItems(ti.attrItems)
	if ti.tree != nil {
		c.tree = ti.tree.Clone()
	}
	c.stats = ti.stats.clone()
	return &c
}

// cloneU32 / cloneI32 copy a column while preserving nil-ness: a nil
// hash column means "string index not built" (and empty columns stay
// addressable after splices), so clones must not collapse empty
// non-nil slices to nil the way append([]T(nil), s...) does.
func cloneU32(s []uint32) []uint32 {
	if s == nil {
		return nil
	}
	c := make([]uint32, len(s))
	copy(c, s)
	return c
}

func cloneI32(s []int32) []int32 {
	if s == nil {
		return nil
	}
	c := make([]int32, len(s))
	copy(c, s)
	return c
}

// cloneItems copies an items map; the fragment slices are shared because
// setFrag/setAttrFrag always replace whole slices, never splice them.
func cloneItems(m map[uint32][]fsm.Item) map[uint32][]fsm.Item {
	c := make(map[uint32][]fsm.Item, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// clone copies a keyStats so draft-side maintenance (noteInsert,
// noteDelete, churn-triggered rebuilds) leaves the published version's
// estimates untouched.
func (ks *keyStats) clone() *keyStats {
	if ks == nil {
		return nil
	}
	c := *ks
	c.bounds = append([]uint64(nil), ks.bounds...)
	c.counts = append([]int(nil), ks.counts...)
	return &c
}
