package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/vhash"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

const personXML = `<person><name><first>Arthur</first><family>Dent</family></name><birthday>1966-09-26</birthday><age><decades>4</decades>2<years/></age><weight><kilos>78</kilos>.<grams>230</grams></weight></person>`

func buildPerson(t testing.TB) *Indexes {
	t.Helper()
	doc, err := xmlparse.ParseString(personXML)
	if err != nil {
		t.Fatal(err)
	}
	return Build(doc, DefaultOptions())
}

func findElem(d *xmltree.Doc, tag string) xmltree.NodeID {
	for i := 0; i < d.NumNodes(); i++ {
		if d.Kind(xmltree.NodeID(i)) == xmltree.Element && d.Name(xmltree.NodeID(i)) == tag {
			return xmltree.NodeID(i)
		}
	}
	return xmltree.InvalidNode
}

func TestBuildVerifiesOnPerson(t *testing.T) {
	ix := buildPerson(t)
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestHashesMatchPaperSemantics(t *testing.T) {
	ix := buildPerson(t)
	d := ix.Doc()
	name := findElem(d, "name")
	if got, want := ix.NodeHash(name), vhash.HashString("ArthurDent"); got != want {
		t.Errorf("h<name> = %#x, want H(ArthurDent) = %#x", got, want)
	}
	person := findElem(d, "person")
	if got, want := ix.NodeHash(person), vhash.HashString("ArthurDent1966-09-264278.230"); got != want {
		t.Errorf("h<person> = %#x", got)
	}
}

func TestDoubleValuesOnPerson(t *testing.T) {
	ix := buildPerson(t)
	d := ix.Doc()
	// <age> = mixed content "4"+"2" = 42.
	if v, ok := ix.DoubleValue(findElem(d, "age")); !ok || v != 42 {
		t.Errorf("double(<age>) = %v %v, want 42", v, ok)
	}
	// <weight> = "78"+"."+"230" = 78.230.
	if v, ok := ix.DoubleValue(findElem(d, "weight")); !ok || v != 78.230 {
		t.Errorf("double(<weight>) = %v %v, want 78.23", v, ok)
	}
	// <kilos> = 78.
	if v, ok := ix.DoubleValue(findElem(d, "kilos")); !ok || v != 78 {
		t.Errorf("double(<kilos>) = %v %v", v, ok)
	}
	// <name> is not a double.
	if _, ok := ix.DoubleValue(findElem(d, "name")); ok {
		t.Error("double(<name>) should not exist")
	}
	// <person> concatenates to a non-double.
	if _, ok := ix.DoubleValue(findElem(d, "person")); ok {
		t.Error("double(<person>) should not exist")
	}
}

func TestDateTimeValueOnPerson(t *testing.T) {
	ix := buildPerson(t)
	d := ix.Doc()
	// <birthday>1966-09-26</birthday> is only a date (no time part) — a
	// live but not castable dateTime fragment.
	birthday := findElem(d, "birthday")
	if _, ok := ix.DateTimeValue(birthday); ok {
		t.Error("plain date must not cast to dateTime")
	}
	// Build a document with a true dateTime.
	doc, _ := xmlparse.ParseString(`<log><at>2026-06-11T12:30:45Z</at></log>`)
	ix2 := Build(doc, DefaultOptions())
	if err := ix2.Verify(); err != nil {
		t.Fatal(err)
	}
	at := findElem(doc, "at")
	if v, ok := ix2.DateTimeValue(at); !ok || v != 1781181045000 {
		t.Errorf("dateTime(<at>) = %v %v", v, ok)
	}
	// The text node, <at>, <log>, and the document node all have this
	// string value (XDM concatenation semantics), so all four are hits.
	got := ix2.RangeDateTime(1781181045000, 1781181045000)
	if len(got) != 4 {
		t.Errorf("RangeDateTime hits = %d, want 4", len(got))
	}
}

func TestLookupStringPaperQueries(t *testing.T) {
	ix := buildPerson(t)
	d := ix.Doc()
	// //person[first/text()="Arthur"]: the text node under <first>.
	hits := ix.LookupString("Arthur")
	foundText, foundFirst := false, false
	for _, p := range hits {
		if p.IsAttr {
			continue
		}
		switch {
		case d.Kind(p.Node) == xmltree.Text:
			foundText = true
		case d.Name(p.Node) == "first":
			foundFirst = true
		}
	}
	if !foundText || !foundFirst {
		t.Errorf("LookupString(Arthur) = %v", hits)
	}
	// fn:data(name)="ArthurDent" finds the <name> element.
	hits = ix.LookupString("ArthurDent")
	found := false
	for _, p := range hits {
		if !p.IsAttr && d.Name(p.Node) == "name" {
			found = true
		}
	}
	if !found {
		t.Error("LookupString(ArthurDent) missed <name>")
	}
	if hits := ix.LookupString("NoSuchValue"); len(hits) != 0 {
		t.Errorf("LookupString(NoSuchValue) = %v", hits)
	}
}

func TestLookupDoubleEqIntroExample(t *testing.T) {
	// The paper's introduction: all of these <age> variants equal 42.
	xml := `<people>
	  <person><age>42</age></person>
	  <person><age>42.0</age></person>
	  <person><age> +4.2E1</age></person>
	  <person><age> <decades>4</decades>2<years/></age></person>
	  <person><age>41</age></person>
	</people>`
	doc, err := xmlparse.ParseWith([]byte(xml), xmlparse.Options{StripWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc, DefaultOptions())
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	d := ix.Doc()
	ages := 0
	for _, p := range ix.LookupDoubleEq(42) {
		if !p.IsAttr && d.Kind(p.Node) == xmltree.Element && d.Name(p.Node) == "age" {
			ages++
		}
	}
	if ages != 4 {
		t.Errorf("found %d <age> elements equal to 42, want 4", ages)
	}
}

func TestRangeDouble(t *testing.T) {
	xml := `<prices><p>10</p><p>20.5</p><p>30</p><p>notanumber</p><p>25e0</p></prices>`
	doc, _ := xmlparse.ParseString(xml)
	ix := Build(doc, DefaultOptions())
	d := ix.Doc()
	values := func(ps []Posting) []float64 {
		var out []float64
		for _, p := range ps {
			if !p.IsAttr && d.Kind(p.Node) == xmltree.Element && d.Name(p.Node) == "p" {
				v, _ := ix.DoubleValue(p.Node)
				out = append(out, v)
			}
		}
		return out
	}
	got := values(ix.RangeDouble(15, 30, true, true))
	want := []float64{20.5, 25, 30}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("range [15,30] = %v, want %v", got, want)
	}
	got = values(ix.RangeDouble(20.5, 30, false, false))
	if fmt.Sprint(got) != fmt.Sprint([]float64{25}) {
		t.Errorf("range (20.5,30) = %v", got)
	}
	// Index agrees with the scan baseline.
	a := ix.RangeDouble(15, 30, true, true)
	b := ix.ScanDoubleRange(15, 30, true, true)
	if len(a) != len(b) {
		t.Errorf("index %d hits, scan %d", len(a), len(b))
	}
}

func TestUpdateTextPaperScenario(t *testing.T) {
	ix := buildPerson(t)
	d := ix.Doc()
	family := findElem(d, "family")
	txt := d.FirstChild(family)
	if err := ix.UpdateText(txt, "Prefect"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("after update: %v", err)
	}
	if got, want := ix.NodeHash(findElem(d, "name")), vhash.HashString("ArthurPrefect"); got != want {
		t.Errorf("h<name> after update = %#x, want %#x", got, want)
	}
	if hits := ix.LookupString("ArthurPrefect"); len(hits) == 0 {
		t.Error("updated value not findable")
	}
	if hits := ix.LookupString("ArthurDent"); len(hits) != 0 {
		t.Error("old value still findable")
	}
}

func TestUpdateFlipsDoubleValue(t *testing.T) {
	ix := buildPerson(t)
	d := ix.Doc()
	// Change "230" grams to "5": weight becomes 78.5.
	grams := findElem(d, "grams")
	if err := ix.UpdateText(d.FirstChild(grams), "5"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	if v, ok := ix.DoubleValue(findElem(d, "weight")); !ok || v != 78.5 {
		t.Errorf("weight after update = %v %v, want 78.5", v, ok)
	}
	// Change "." to "x": weight stops being a double at all.
	weight := findElem(d, "weight")
	var dot xmltree.NodeID = xmltree.InvalidNode
	for c := d.FirstChild(weight); c != xmltree.InvalidNode; c = d.NextSibling(c) {
		if d.Kind(c) == xmltree.Text {
			dot = c
		}
	}
	if err := ix.UpdateText(dot, "x"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.DoubleValue(findElem(d, "weight")); ok {
		t.Error("weight should no longer cast")
	}
	// And back: "." restores 78.5.
	if err := ix.UpdateText(dot, "."); err != nil {
		t.Fatal(err)
	}
	if v, ok := ix.DoubleValue(findElem(d, "weight")); !ok || v != 78.5 {
		t.Errorf("weight restored = %v %v", v, ok)
	}
}

func TestUpdateAttr(t *testing.T) {
	doc, _ := xmlparse.ParseString(`<item id="i1" price="12.5">x</item>`)
	ix := Build(doc, DefaultOptions())
	item := xmltree.NodeID(1)
	a := doc.FindAttr(item, "price")
	if hits := ix.RangeDouble(12.5, 12.5, true, true); len(hits) != 1 || !hits[0].IsAttr {
		t.Fatalf("attr not in double index: %v", hits)
	}
	if err := ix.UpdateAttr(a, "99"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	if hits := ix.RangeDouble(12.5, 12.5, true, true); len(hits) != 0 {
		t.Error("old attr value still indexed")
	}
	if hits := ix.RangeDouble(99, 99, true, true); len(hits) != 1 {
		t.Error("new attr value not indexed")
	}
	if hits := ix.LookupString("99"); len(hits) != 1 || !hits[0].IsAttr {
		t.Errorf("LookupString(99) = %v", hits)
	}
}

func TestBatchUpdateMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	doc := randomNumericDoc(t, rng, 200)
	ix := Build(doc, DefaultOptions())
	var texts []xmltree.NodeID
	for i := 0; i < doc.NumNodes(); i++ {
		if doc.Kind(xmltree.NodeID(i)) == xmltree.Text {
			texts = append(texts, xmltree.NodeID(i))
		}
	}
	for round := 0; round < 10; round++ {
		k := 1 + rng.Intn(20)
		updates := make([]TextUpdate, 0, k)
		for j := 0; j < k; j++ {
			updates = append(updates, TextUpdate{
				Node:  texts[rng.Intn(len(texts))],
				Value: randomValue(rng),
			})
		}
		if err := ix.UpdateTexts(updates); err != nil {
			t.Fatal(err)
		}
		if err := ix.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestDeleteSubtreeMaintainsIndexes(t *testing.T) {
	ix := buildPerson(t)
	d := ix.Doc()
	if err := ix.DeleteSubtree(findElem(d, "age")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("after delete: %v", err)
	}
	// 42 is gone from the double index.
	for _, p := range ix.LookupDoubleEq(42) {
		if !p.IsAttr && d.Kind(p.Node) == xmltree.Element {
			t.Errorf("deleted <age> still found: %v", p)
		}
	}
	// Root hash reflects the shorter value.
	if got, want := ix.NodeHash(0), vhash.HashString("ArthurDent1966-09-2678.230"); got != want {
		t.Errorf("root hash after delete = %#x, want %#x", got, want)
	}
	// Weight still queryable.
	if hits := ix.LookupDoubleEq(78.230); len(hits) == 0 {
		t.Error("weight lost after unrelated delete")
	}
}

func TestInsertChildrenMaintainsIndexes(t *testing.T) {
	ix := buildPerson(t)
	d := ix.Doc()
	b := xmltree.NewBuilder()
	b.StartElement("height")
	b.Attribute("unit", "cm")
	b.StartElement("meters")
	b.Text("1")
	b.EndElement()
	b.Text(".")
	b.StartElement("cm")
	b.Text("85")
	b.EndElement()
	b.EndElement()
	frag, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	person := findElem(d, "person")
	at, err := ix.InsertChildren(person, 4, frag)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("after insert: %v", err)
	}
	// The commit published a new version; d still reads the pre-insert
	// document, so re-fetch before inspecting the inserted node.
	d = ix.Doc()
	if d.Name(at) != "height" {
		t.Fatalf("inserted node = %q", d.Name(at))
	}
	// The inserted mixed-content height casts to 1.85.
	if v, ok := ix.DoubleValue(at); !ok || v != 1.85 {
		t.Errorf("double(<height>) = %v %v, want 1.85", v, ok)
	}
	if hits := ix.LookupDoubleEq(1.85); len(hits) == 0 {
		t.Error("inserted value not in double index")
	}
	if hits := ix.LookupString("cm"); len(hits) != 1 || !hits[0].IsAttr {
		t.Errorf("inserted attr not indexed: %v", hits)
	}
	// Root hash includes the new content.
	if got, want := ix.NodeHash(0), vhash.HashString("ArthurDent1966-09-264278.2301.85"); got != want {
		t.Errorf("root hash after insert = %#x, want %#x", got, want)
	}
}

// TestRandomizedMixedOperations interleaves value updates, deletions, and
// insertions, verifying full consistency after every operation.
func TestRandomizedMixedOperations(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 8; trial++ {
		doc := randomNumericDoc(t, rng, 120)
		ix := Build(doc, DefaultOptions())
		if err := ix.Verify(); err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 25; op++ {
			d := ix.Doc()
			switch rng.Intn(4) {
			case 0, 1: // text update
				var texts []xmltree.NodeID
				for i := 0; i < d.NumNodes(); i++ {
					if d.Kind(xmltree.NodeID(i)) == xmltree.Text {
						texts = append(texts, xmltree.NodeID(i))
					}
				}
				if len(texts) == 0 {
					continue
				}
				if err := ix.UpdateText(texts[rng.Intn(len(texts))], randomValue(rng)); err != nil {
					t.Fatal(err)
				}
			case 2: // delete
				if d.NumNodes() < 4 {
					continue
				}
				n := xmltree.NodeID(1 + rng.Intn(d.NumNodes()-1))
				if err := ix.DeleteSubtree(n); err != nil {
					t.Fatal(err)
				}
			case 3: // insert
				var elems []xmltree.NodeID
				for i := 0; i < d.NumNodes(); i++ {
					k := d.Kind(xmltree.NodeID(i))
					if k == xmltree.Element || k == xmltree.Document {
						elems = append(elems, xmltree.NodeID(i))
					}
				}
				p := elems[rng.Intn(len(elems))]
				pos := 0
				if nc := d.NumChildren(p); nc > 0 {
					pos = rng.Intn(nc + 1)
				}
				if _, err := ix.InsertChildren(p, pos, randomNumericDoc(t, rng, 8)); err != nil {
					t.Fatal(err)
				}
			}
			if err := ix.Verify(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
		}
	}
}

// TestStableIDsSurviveStructuralChurn: postings resolved after deletions
// still point at the right nodes.
func TestStableIDsSurviveStructuralChurn(t *testing.T) {
	xml := `<r><a>10</a><b>20</b><c>30</c></r>`
	doc, _ := xmlparse.ParseString(xml)
	ix := Build(doc, DefaultOptions())
	d := ix.Doc()
	// Delete <a>; <c>'s posting must still resolve to the element whose
	// value is 30.
	if err := ix.DeleteSubtree(findElem(d, "a")); err != nil {
		t.Fatal(err)
	}
	d = ix.Doc() // the delete published a new version
	hits := ix.LookupDoubleEq(30)
	found := false
	for _, p := range hits {
		if !p.IsAttr && d.Kind(p.Node) == xmltree.Element && d.Name(p.Node) == "c" {
			found = true
		}
	}
	if !found {
		t.Errorf("posting for <c> broken after delete: %v", hits)
	}
}

func TestStatsOnPerson(t *testing.T) {
	ix := buildPerson(t)
	s := ix.Stats()
	if s.Texts != 8 {
		t.Errorf("Texts = %d, want 8", s.Texts)
	}
	if s.DoubleTexts != 5 { // "4","2","78",".","230" are live; "Arthur","Dent","1966-09-26" are not
		t.Errorf("DoubleTexts = %d, want 5", s.DoubleTexts)
	}
	// Combined (mixed-content) castable elements: <age> (4+2) and
	// <weight> (78+.+230); single-text wrappers like <kilos> don't count.
	if s.DoubleNonLeaf != 2 {
		t.Errorf("DoubleNonLeaf = %d, want 2", s.DoubleNonLeaf)
	}
	if s.StringEntries == 0 || s.StringBytes == 0 || s.DoubleBytes == 0 {
		t.Error("size estimates must be positive")
	}
}

func TestPartialOptions(t *testing.T) {
	doc, _ := xmlparse.ParseString(personXML)
	ix := Build(doc, Options{String: true})
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	if ix.RangeDouble(0, 100, true, true) != nil {
		t.Error("double lookups must be empty without the double index")
	}
	doc2, _ := xmlparse.ParseString(personXML)
	ix2 := Build(doc2, Options{Double: true})
	if err := ix2.Verify(); err != nil {
		t.Fatal(err)
	}
	if ix2.LookupStringCandidates("Arthur") != nil {
		t.Error("string lookups must be empty without the string index")
	}
	if len(ix2.LookupDoubleEq(42)) == 0 {
		t.Error("double index alone must work")
	}
}

// randomNumericDoc builds a random document biased toward numeric and
// date-like content so the typed indices see plenty of live fragments.
func randomNumericDoc(t testing.TB, rng *rand.Rand, approxNodes int) *xmltree.Doc {
	t.Helper()
	b := xmltree.NewBuilder()
	b.StartElement("root")
	n := 0
	var gen func(depth int)
	gen = func(depth int) {
		for n < approxNodes {
			switch r := rng.Intn(10); {
			case r < 4 && depth < 5:
				n++
				b.StartElement([]string{"item", "price", "qty", "note"}[rng.Intn(4)])
				if rng.Intn(4) == 0 {
					b.Attribute("v", randomValue(rng))
				}
				gen(depth + 1)
				b.EndElement()
			case r < 9:
				n++
				b.Text(randomValue(rng))
				if rng.Intn(3) > 0 {
					return
				}
			default:
				n++
				b.Comment("c")
				return
			}
		}
	}
	gen(1)
	b.EndElement()
	doc, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func randomValue(rng *rand.Rand) string {
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf("%d", rng.Intn(1000))
	case 1:
		return fmt.Sprintf("%.3f", rng.Float64()*100)
	case 2:
		return fmt.Sprintf("%dE%d", rng.Intn(100), rng.Intn(5))
	case 3:
		return "."
	case 4:
		return fmt.Sprintf("%04d-%02d-%02dT%02d:%02d:%02dZ", 1990+rng.Intn(40), 1+rng.Intn(12), 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60))
	case 5:
		return strings.Repeat("word ", 1+rng.Intn(3))
	case 6:
		return "x" + fmt.Sprint(rng.Intn(100))
	default:
		return ""
	}
}

func BenchmarkBuildPersonAllIndexes(b *testing.B) {
	doc, _ := xmlparse.ParseString(personXML)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(doc, DefaultOptions())
	}
}
