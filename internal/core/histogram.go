package core

import (
	"math"
	"sort"

	"repro/internal/btree"
	"repro/internal/vhash"
)

// histBuckets bounds the number of equi-depth buckets per histogram.
// 64 buckets keep a histogram under ~1 KB while resolving range
// selectivities down to ~1.5 % of an index before interpolation.
const histBuckets = 64

// keyStats summarises one B+tree's key distribution for the query
// planner: the entry total, the distinct-key count, and a small
// equi-depth histogram over the key space. Bucket counts are maintained
// exactly through updates (every tree insert/delete adjusts the covering
// bucket); bucket bounds and the distinct count are frozen at (re)build
// time and refreshed once accumulated churn exceeds a quarter of the
// tree, so estimates degrade gracefully between rebuilds instead of
// drifting unboundedly. A keyStats is persisted with its snapshot and
// rebuilt from the tree when loading an older snapshot without one.
type keyStats struct {
	total    int
	distinct int
	min, max uint64   // smallest and largest key at rebuild time
	bounds   []uint64 // inclusive bucket upper bounds; last is MaxUint64
	counts   []int    // current entries per bucket
	churn    int      // inserts+deletes since the last rebuild
}

// buildKeyStats scans a tree once and derives its statistics. A nil or
// empty tree yields a single empty catch-all bucket.
func buildKeyStats(t *btree.Tree) *keyStats {
	ks := &keyStats{bounds: []uint64{math.MaxUint64}, counts: []int{0}}
	if t == nil || t.Len() == 0 {
		return ks
	}
	total := t.Len()
	depth := (total + histBuckets - 1) / histBuckets
	ks.bounds = ks.bounds[:0]
	ks.counts = ks.counts[:0]
	first := true
	var prev uint64
	cum := 0
	t.Scan(func(key uint64, _ uint32) bool {
		if first {
			ks.min, ks.distinct = key, 1
			first = false
		} else if key != prev {
			ks.distinct++
			// Buckets close only on key boundaries, so equal keys never
			// straddle two buckets and eq-lookups hit exactly one.
			if cum >= depth {
				ks.bounds = append(ks.bounds, prev)
				ks.counts = append(ks.counts, cum)
				cum = 0
			}
		}
		prev = key
		cum++
		return true
	})
	ks.max = prev
	ks.total = total
	ks.bounds = append(ks.bounds, math.MaxUint64)
	ks.counts = append(ks.counts, cum)
	return ks
}

// bucketFor locates the bucket covering key — the first bound >= key.
// The last bound is MaxUint64, so the search always lands.
func (ks *keyStats) bucketFor(key uint64) int {
	return sort.Search(len(ks.bounds), func(i int) bool { return ks.bounds[i] >= key })
}

func (ks *keyStats) noteInsert(key uint64) {
	ks.counts[ks.bucketFor(key)]++
	ks.total++
	ks.churn++
	if key < ks.min {
		ks.min = key
	}
	if key > ks.max {
		ks.max = key
	}
}

func (ks *keyStats) noteDelete(key uint64) {
	if b := ks.bucketFor(key); ks.counts[b] > 0 {
		ks.counts[b]--
	}
	if ks.total > 0 {
		ks.total--
	}
	ks.churn++
}

// stale reports whether accumulated churn warrants a rebuild: a quarter
// of the tree, with a floor so small trees don't rebuild on every touch.
func (ks *keyStats) stale() bool {
	return ks.churn > 64 && ks.churn*4 > ks.total
}

// estimateEq estimates the postings under one key as the average cluster
// size (total over distinct) capped by the covering bucket's population.
func (ks *keyStats) estimateEq(key uint64) float64 {
	if ks.total == 0 || ks.distinct == 0 {
		return 0
	}
	if key < ks.min || key > ks.max {
		return 0
	}
	avg := float64(ks.total) / float64(ks.distinct)
	if bc := float64(ks.counts[ks.bucketFor(key)]); bc < avg {
		return bc
	}
	return avg
}

// estimateRange estimates the postings with lo <= key <= hi: full
// buckets inside the range count whole, boundary buckets contribute by
// linear interpolation over their key span (the classic equi-depth
// uniform-within-bucket assumption).
func (ks *keyStats) estimateRange(lo, hi uint64) float64 {
	if ks.total == 0 || lo > hi || hi < ks.min || lo > ks.max {
		return 0
	}
	if lo < ks.min {
		lo = ks.min
	}
	if hi > ks.max {
		hi = ks.max
	}
	est := 0.0
	for b := ks.bucketFor(lo); b < len(ks.bounds); b++ {
		bLo := ks.min
		if b > 0 {
			bLo = ks.bounds[b-1] + 1
		}
		bHi := ks.bounds[b]
		if bHi > ks.max {
			bHi = ks.max
		}
		if bLo > hi {
			break
		}
		oLo, oHi := bLo, bHi
		if lo > oLo {
			oLo = lo
		}
		if hi < oHi {
			oHi = hi
		}
		if oHi < oLo {
			continue
		}
		width := float64(bHi-bLo) + 1
		overlap := float64(oHi-oLo) + 1
		est += float64(ks.counts[b]) * (overlap / width)
	}
	if est > float64(ks.total) {
		est = float64(ks.total)
	}
	return est
}

// --- wiring into the index ---

// rebuildStats derives fresh statistics for every built tree; called at
// the end of Build and after loading a snapshot without a stats section.
func (ix *Snapshot) rebuildStats() {
	if ix.strTree != nil {
		ix.strStats = buildKeyStats(ix.strTree)
	}
	if ix.subTree != nil {
		ix.subStats = buildKeyStats(ix.subTree)
	}
	ix.eachTyped(func(ti *typedIndex) { ti.stats = buildKeyStats(ti.tree) })
}

// maintainStats refreshes any histogram whose churn crossed the rebuild
// threshold. Called at the end of every mutating entry point, under the
// write lock; a rebuild is O(tree) after O(tree/4) churn, so the
// amortised cost per updated posting is O(1).
func (ix *Snapshot) maintainStats() {
	if ix.strStats != nil && ix.strStats.stale() {
		ix.strStats = buildKeyStats(ix.strTree)
	}
	if ix.subStats != nil && ix.subStats.stale() {
		ix.subStats = buildKeyStats(ix.subTree)
	}
	for _, ti := range ix.typed {
		if ti.stats != nil && ti.stats.stale() {
			ti.stats = buildKeyStats(ti.tree)
		}
	}
}

// strTreeInsert / strTreeDelete / treeInsert / treeDelete funnel every
// B+tree mutation past the statistics layer, keeping bucket counts
// exact between histogram rebuilds.
func (ix *Snapshot) strTreeInsert(h uint32, posting uint32) {
	if ix.strTree.Insert(uint64(h), posting) && ix.strStats != nil {
		ix.strStats.noteInsert(uint64(h))
	}
}

func (ix *Snapshot) strTreeDelete(h uint32, posting uint32) {
	if ix.strTree.Delete(uint64(h), posting) && ix.strStats != nil {
		ix.strStats.noteDelete(uint64(h))
	}
}

func (ti *typedIndex) treeInsert(key uint64, posting uint32) {
	if ti.tree.Insert(key, posting) && ti.stats != nil {
		ti.stats.noteInsert(key)
	}
}

func (ti *typedIndex) treeDelete(key uint64, posting uint32) {
	if ti.tree.Delete(key, posting) && ti.stats != nil {
		ti.stats.noteDelete(key)
	}
}

// --- planner-facing estimates ---

// PlannerStats is the statistics layer's summary of one index, as
// exposed to EXPLAIN output and tests.
type PlannerStats struct {
	Total    int // entries in the B+tree
	Distinct int // distinct keys at the last histogram rebuild
	Buckets  int // equi-depth buckets
}

// StringPlannerStats reports the string equi-index statistics; ok is
// false when the index was not built.
func (ix *Snapshot) StringPlannerStats() (PlannerStats, bool) {
	if ix.strStats == nil {
		return PlannerStats{}, false
	}
	return PlannerStats{Total: ix.strStats.total, Distinct: ix.strStats.distinct, Buckets: len(ix.strStats.counts)}, true
}

// TypedPlannerStats reports typed index id's statistics; ok is false
// when the index was not built.
func (ix *Snapshot) TypedPlannerStats(id TypeID) (PlannerStats, bool) {
	ti := ix.typedFor(id)
	if ti == nil || ti.stats == nil {
		return PlannerStats{}, false
	}
	return PlannerStats{Total: ti.stats.total, Distinct: ti.stats.distinct, Buckets: len(ti.stats.counts)}, true
}

// EstimateStringEq estimates how many postings carry H(value) — the
// cardinality the planner assigns a hash-equality access path. The
// estimate is the average hash-cluster size capped by the covering
// bucket, so it answers in O(log buckets) regardless of tree size.
func (ix *Snapshot) EstimateStringEq(value string) float64 {
	if ix.strStats == nil {
		return 0
	}
	return ix.strStats.estimateEq(uint64(vhash.HashString(value)))
}

// EstimateTypedRange estimates how many postings fall in [lo, hi] under
// typed index id (bounds exclusive when incLo/incHi are false) — the
// cardinality the planner assigns a B+tree range access path.
func (ix *Snapshot) EstimateTypedRange(id TypeID, lo, hi uint64, incLo, incHi bool) float64 {
	ti := ix.typedFor(id)
	if ti == nil || ti.stats == nil {
		return 0
	}
	if !incLo {
		if lo == math.MaxUint64 {
			return 0
		}
		lo++
	}
	if !incHi {
		if hi == 0 {
			return 0
		}
		hi--
	}
	if lo == hi {
		return ti.stats.estimateEq(lo)
	}
	return ti.stats.estimateRange(lo, hi)
}
