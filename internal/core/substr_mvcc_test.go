package core

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/xmltree"
)

// These tests pin the substring index's MVCC contract: the q-gram index
// lives inside the immutable published Snapshot, every commit path
// maintains it copy-on-write, and a pinned version answers Contains
// about itself forever. Under -race any writer mutation of a published
// gram tree is a hard error — exactly the bug the old document-level
// mutable index had.

// substrPostingsEqual reports exact slice equality (same hits, same
// document order) — the index must be byte-identical to the scan.
func substrPostingsEqual(a, b []Posting) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertSubstrOracle pins the core property: for every pattern, the
// indexed lookup answers exactly what the scan baseline finds.
func assertSubstrOracle(t *testing.T, label string, s *Snapshot, patterns []string) {
	t.Helper()
	for _, p := range patterns {
		if got, want := s.Contains(p), s.ScanContains(p); !substrPostingsEqual(got, want) {
			t.Errorf("%s: Contains(%q) = %d hits, scan oracle %d", label, p, len(got), len(want))
		}
		if got, want := s.StartsWith(p), s.ScanStartsWith(p); !substrPostingsEqual(got, want) {
			t.Errorf("%s: StartsWith(%q) = %d hits, scan oracle %d", label, p, len(got), len(want))
		}
	}
}

// TestSubstrReadersDuringUpdateStorm is the regression test for the
// raceful document-level substring index: 8 readers continuously pin
// snapshots and run Contains while one writer storms text updates,
// subtree deletions, and fragment insertions. Every hit a reader gets
// must verify against its own pinned version (no skew into a later
// generation), and under -race any shared mutable gram state between
// the draft and a published version is fatal.
func TestSubstrReadersDuringUpdateStorm(t *testing.T) {
	const readers = 8
	var b strings.Builder
	b.WriteString(`<r>`)
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, `<v tag="label%d">needle common%d</v>`, i, i)
	}
	b.WriteString(`</r>`)
	ix := Build(mustParseForTest(t, b.String()), DefaultOptions())
	ix.EnableSubstring()

	var stop atomic.Bool
	var reads atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := ix.Snapshot()
				doc := s.Doc()
				for _, pattern := range []string{"needle", "label", "gen"} {
					for _, p := range s.Contains(pattern) {
						// Snapshot-skew check: the hit exists in the
						// pinned version and really contains the pattern.
						var v string
						if p.IsAttr {
							v = doc.AttrValue(p.Attr)
						} else {
							v = doc.Value(p.Node)
						}
						if !strings.Contains(v, pattern) {
							errc <- fmt.Errorf("version %d: Contains(%q) returned %+v with value %q",
								s.Version(), pattern, p, v)
							return
						}
					}
				}
				reads.Add(1)
			}
		}()
	}

	// Storm until every reader demonstrably overlapped the writes (as in
	// TestReadersNeverSeeTornBatches: at least minCommits, then keep
	// going until each reader finished a sweep, capped against hangs).
	const (
		minCommits = 150
		maxCommits = 20000
	)
	for g := 0; g < minCommits || (reads.Load() < readers && g < maxCommits); g++ {
		switch g % 4 {
		case 0, 2:
			texts := textNodesOf(ix.Doc())
			batch := make([]TextUpdate, 0, 8)
			for i, n := range texts {
				if i == 8 {
					break
				}
				batch = append(batch, TextUpdate{Node: n, Value: fmt.Sprintf("needle gen%d-%d", g, i)})
			}
			if err := ix.UpdateTexts(batch); err != nil {
				t.Fatal(err)
			}
		case 1:
			frag := mustParseForTest(t, fmt.Sprintf(`<v tag="label-ins%d">needle inserted%d</v>`, g, g))
			if _, err := ix.InsertChildren(ix.Doc().Root(), 0, frag); err != nil {
				t.Fatal(err)
			}
		case 3:
			doc := ix.Doc()
			root := doc.Root()
			if victim := doc.FirstChild(root); victim != xmltree.InvalidNode {
				if err := ix.DeleteSubtree(victim); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress during the storm")
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	assertSubstrOracle(t, "post-storm", ix.Snapshot(), []string{"needle", "label", "gen", "inserted"})
}

// TestSubstrPinnedSnapshotAnswersItsOwnVersion: a snapshot pinned
// before an update storm keeps answering Contains from its own
// generation — stale content is still found, later content is
// invisible — while the live version has moved on.
func TestSubstrPinnedSnapshotAnswersItsOwnVersion(t *testing.T) {
	ix := Build(mustParseForTest(t,
		`<r><a>original payload</a><b note="first annotation">other words</b></r>`), DefaultOptions())
	ix.EnableSubstring()
	pinned := ix.Snapshot()
	wantHits := pinned.Contains("original payload")
	if len(wantHits) != 1 {
		t.Fatalf("pinned Contains = %d hits", len(wantHits))
	}

	for g := 0; g < 25; g++ {
		texts := textNodesOf(ix.Doc())
		batch := make([]TextUpdate, len(texts))
		for i, n := range texts {
			batch[i] = TextUpdate{Node: n, Value: fmt.Sprintf("replacement %d", g)}
		}
		if err := ix.UpdateTexts(batch); err != nil {
			t.Fatal(err)
		}
		if err := ix.UpdateAttr(0, fmt.Sprintf("annotation %d", g)); err != nil {
			t.Fatal(err)
		}
	}

	if got := pinned.Contains("original payload"); !substrPostingsEqual(got, wantHits) {
		t.Fatalf("pinned version lost its own content: %v", got)
	}
	if got := pinned.Contains("replacement"); len(got) != 0 {
		t.Fatalf("pinned version sees future content: %v", got)
	}
	if len(ix.Contains("original payload")) != 0 {
		t.Fatal("live version still finds overwritten content")
	}
	if len(ix.Contains("replacement 24")) == 0 {
		t.Fatal("live version missing current content")
	}
	if err := pinned.Verify(); err != nil {
		t.Fatalf("pinned snapshot fails Verify: %v", err)
	}
}

// TestSubstrEdgePatterns pins the fallback behaviors: the empty pattern
// and patterns shorter than q answer through the scan (and agree with
// it), and multi-byte (non-ASCII) content grams byte-wise without
// splitting or missing matches.
func TestSubstrEdgePatterns(t *testing.T) {
	ix := Build(mustParseForTest(t,
		`<r><a>héllo wörld</a><b>日本語のテキスト</b><c note="これはテスト">naïve café</c><d>plain ascii</d></r>`),
		DefaultOptions())
	ix.EnableSubstring()
	s := ix.Snapshot()

	// Empty and short patterns: scan fallback, identical results.
	assertSubstrOracle(t, "edge", s, []string{"", "a", "ai", "é", "日"})
	if got, want := len(s.Contains("")), len(s.ScanContains("")); got != want || got == 0 {
		t.Fatalf("empty pattern: indexed %d, scan %d (want every value)", got, want)
	}

	// Multi-byte patterns at and above q bytes ("é" is 2 bytes, each
	// kanji 3): the byte-gram index must find them exactly.
	assertSubstrOracle(t, "multibyte", s, []string{
		"héllo", "wörld", "日本語", "語のテキスト", "これはテスト", "naïve", "café", "ïve c",
	})
	if got := s.Contains("日本語"); len(got) != 1 {
		t.Fatalf("Contains(日本語) = %d hits, want 1", len(got))
	}
	if got := s.StartsWith("日本語"); len(got) != 1 {
		t.Fatalf("StartsWith(日本語) = %d hits, want 1", len(got))
	}
	if got := s.StartsWith("本語"); len(got) != 0 {
		t.Fatalf("StartsWith(本語) matched mid-string: %v", got)
	}

	// After an update the multi-byte grams follow the new value.
	texts := textNodesOf(ix.Doc())
	if err := ix.UpdateTexts([]TextUpdate{{Node: texts[1], Value: "中文文本です"}}); err != nil {
		t.Fatal(err)
	}
	s = ix.Snapshot()
	if len(s.Contains("日本語")) != 0 {
		t.Fatal("stale multi-byte grams after update")
	}
	if len(s.Contains("中文文本")) != 1 {
		t.Fatal("new multi-byte grams missing after update")
	}
	assertSubstrOracle(t, "multibyte-updated", s, []string{"中文", "文本です", "héllo"})
}

// substrShapePatterns are probe patterns matched against the shape
// corpus; each shape contains at least one of them.
var substrShapePatterns = []string{"42.5", "bottom", "19", ".5", "note", "data", "0", "zz-absent"}

// TestSubstrOracleAcrossShapeCorpus is the equivalence property over
// the pathological shape corpus: for every shape, indexed results are
// byte-identical to the scan oracle — after the build, after an update
// storm, and after a Save/Load round trip.
func TestSubstrOracleAcrossShapeCorpus(t *testing.T) {
	for _, sc := range shapeCorpus() {
		t.Run(sc.name, func(t *testing.T) {
			ix := Build(mustParseForTest(t, sc.xml), DefaultOptions())
			ix.EnableSubstring()
			assertSubstrOracle(t, "built", ix.Snapshot(), substrShapePatterns)

			// Update storm: rewrite a slice of text nodes, insert and
			// delete a fragment, then re-check the oracle.
			texts := textNodesOf(ix.Doc())
			batch := make([]TextUpdate, 0, 32)
			for i, n := range texts {
				if i == 32 {
					break
				}
				batch = append(batch, TextUpdate{Node: n, Value: fmt.Sprintf("stormed %d.5", i)})
			}
			if len(batch) > 0 {
				if err := ix.UpdateTexts(batch); err != nil {
					t.Fatal(err)
				}
			}
			at, err := ix.InsertChildren(ix.Doc().Root(), 0, mustParseForTest(t, `<ins note="data">bottom 42.5</ins>`))
			if err != nil {
				t.Fatal(err)
			}
			assertSubstrOracle(t, "stormed", ix.Snapshot(), append(substrShapePatterns, "stormed"))
			if err := ix.DeleteSubtree(at); err != nil {
				t.Fatal(err)
			}
			assertSubstrOracle(t, "deleted", ix.Snapshot(), substrShapePatterns)
			if err := ix.Verify(); err != nil {
				t.Fatal(err)
			}

			// Save/Load: the substring section round-trips and the
			// loaded index answers identically.
			path := filepath.Join(t.TempDir(), "shape.xvi")
			if err := ix.Save(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if !loaded.HasSubstring() {
				t.Fatal("substring index lost in Save/Load")
			}
			before, after := ix.Snapshot(), loaded.Snapshot()
			for _, p := range substrShapePatterns {
				if !substrPostingsEqual(before.Contains(p), after.Contains(p)) {
					t.Errorf("Contains(%q) differs after Save/Load", p)
				}
			}
			assertSubstrOracle(t, "loaded", after, substrShapePatterns)
			if err := loaded.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSubstrDurableRecoveryAndOpenAt: a durable index set with the
// substring index enabled recovers it through WAL replay (OpenDurable)
// and answers point-in-time Contains at historical versions (OpenAt)
// exactly as the corresponding pinned snapshot did.
func TestSubstrDurableRecoveryAndOpenAt(t *testing.T) {
	dir := t.TempDir()
	snap, wal := filepath.Join(dir, "s.xvi"), filepath.Join(dir, "s.wal")
	ix := Build(mustParseForTest(t, `<r><a>alpha content</a><b>beta content</b></r>`), DefaultOptions())
	ix.EnableSubstring()
	if err := ix.StartDurable(snap, wal, 1); err != nil {
		t.Fatal(err)
	}

	// Three logged generations; remember each version's oracle answers.
	type gen struct {
		version uint64
		hits    map[string][]Posting
	}
	patterns := []string{"alpha", "content", "gen1", "gen2", "inserted"}
	record := func() gen {
		s := ix.Snapshot()
		g := gen{version: s.Version(), hits: map[string][]Posting{}}
		for _, p := range patterns {
			g.hits[p] = s.Contains(p)
		}
		return g
	}
	gens := []gen{record()}
	texts := textNodesOf(ix.Doc())
	if err := ix.UpdateTexts([]TextUpdate{{Node: texts[0], Value: "gen1 content"}}); err != nil {
		t.Fatal(err)
	}
	gens = append(gens, record())
	if _, err := ix.InsertChildren(ix.Doc().Root(), 0, mustParseForTest(t, `<c>inserted gen2</c>`)); err != nil {
		t.Fatal(err)
	}
	gens = append(gens, record())
	if err := ix.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Crash-recover: the replayed tail must have maintained the index.
	re, err := OpenDurable(snap, wal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !re.HasSubstring() {
		t.Fatal("substring index lost in recovery")
	}
	last := gens[len(gens)-1]
	for _, p := range patterns {
		if got := re.Contains(p); !substrPostingsEqual(got, last.hits[p]) {
			t.Errorf("recovered Contains(%q) = %d hits, want %d", p, len(got), len(last.hits[p]))
		}
	}
	assertSubstrOracle(t, "recovered", re.Snapshot(), patterns)
	if err := re.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Point-in-time: every logged version answers as it did live.
	for _, g := range gens {
		at, err := OpenAt(snap, wal, g.version)
		if err != nil {
			t.Fatalf("OpenAt(%d): %v", g.version, err)
		}
		if !at.HasSubstring() {
			t.Fatalf("OpenAt(%d): substring index missing", g.version)
		}
		for _, p := range patterns {
			if got := at.Contains(p); !substrPostingsEqual(got, g.hits[p]) {
				t.Errorf("OpenAt(%d): Contains(%q) = %d hits, want %d", g.version, p, len(got), len(g.hits[p]))
			}
		}
		assertSubstrOracle(t, fmt.Sprintf("openat-%d", g.version), at.Snapshot(), patterns)
	}
}

// TestEnableSubstringIdempotentAndVersionStable: enabling the index
// does not publish a new version (followers replay records at strict
// version boundaries — an unlogged bump would wedge them), and
// re-enabling is a no-op.
func TestEnableSubstringIdempotentAndVersionStable(t *testing.T) {
	ix := Build(mustParseForTest(t, `<r><a>some text</a></r>`), DefaultOptions())
	v0 := ix.Version()
	ix.EnableSubstring()
	if got := ix.Version(); got != v0 {
		t.Fatalf("EnableSubstring moved the version %d -> %d", v0, got)
	}
	if !ix.HasSubstring() {
		t.Fatal("index not enabled")
	}
	hits := ix.Contains("some text")
	ix.EnableSubstring()
	if got := ix.Version(); got != v0 {
		t.Fatalf("re-enable moved the version %d -> %d", v0, got)
	}
	if got := ix.Contains("some text"); !substrPostingsEqual(got, hits) {
		t.Fatal("re-enable changed answers")
	}
}
