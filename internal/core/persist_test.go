package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ix := buildPerson(t)
	path := filepath.Join(t.TempDir(), "person.xvi")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("loaded index fails verification: %v", err)
	}
	// Queries behave identically.
	if len(got.LookupString("Arthur")) != len(ix.LookupString("Arthur")) {
		t.Error("string lookup differs after reload")
	}
	if len(got.LookupDoubleEq(78.230)) != len(ix.LookupDoubleEq(78.230)) {
		t.Error("double lookup differs after reload")
	}
	d := got.Doc()
	if d.NumNodes() != ix.Doc().NumNodes() {
		t.Error("node count differs after reload")
	}
}

func TestSaveLoadAfterUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	doc := randomNumericDoc(t, rng, 300)
	ix := Build(doc, DefaultOptions())
	// Mutate: updates, a delete, an insert — then persist.
	var texts []int
	for i := 0; i < doc.NumNodes(); i++ {
		if doc.Kind(int32AsNodeID(i)) == 2 { // xmltree.Text
			texts = append(texts, i)
		}
	}
	for i := 0; i < 20 && len(texts) > 0; i++ {
		n := texts[rng.Intn(len(texts))]
		if err := ix.UpdateText(int32AsNodeID(n), randomValue(rng)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "mutated.xvi")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	// The loaded index remains updatable.
	d := got.Doc()
	for i := 0; i < d.NumNodes(); i++ {
		if d.Kind(int32AsNodeID(i)) == 2 {
			if err := got.UpdateText(int32AsNodeID(i), "42.5"); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("after post-load update: %v", err)
	}
}

func TestSaveLoadPartialOptions(t *testing.T) {
	doc := mustParseForTest(t, personXML)
	ix := Build(doc, Options{String: true})
	path := filepath.Join(t.TempDir(), "partial.xvi")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := got.Options()
	if !opts.String || opts.Double || opts.DateTime || opts.Date || len(opts.Types) != 0 {
		t.Errorf("options = %+v", opts)
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSectionSizes(t *testing.T) {
	ix := buildPerson(t)
	path := filepath.Join(t.TempDir(), "sized.xvi")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	r, err := storage.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, name := range []string{SectionDoc, SectionHash, SectionStrTree, TypedSectionName(TypeDouble), TypedSectionName(TypeDateTime), TypedSectionName(TypeDate)} {
		if r.SectionLen(name) <= 0 {
			t.Errorf("section %s has size %d", name, r.SectionLen(name))
		}
	}
	// The document section dominates the double index (the paper's 2-3%
	// claim at scale; at toy scale just require doc > double tree).
	if r.SectionLen(SectionDoc) <= 0 {
		t.Error("doc section empty")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.xvi")
	if err := writeGarbage(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("loading garbage must fail")
	}
}
