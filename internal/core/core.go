// Package core implements the paper's primary contribution: generic,
// updatable XML value indices over an entire document.
//
// Two kinds of index are maintained, all created in one depth-first pass
// (Figure 7 of the paper) and updated incrementally (Figure 8):
//
//   - the string equi-index: the 32-bit hash H of every node's string
//     value (document, element, text, attribute), with a B+tree from hash
//     to node postings; ancestor hashes are maintained with the
//     associative combination function C, never by re-reading text;
//   - one typed range index per enabled entry of the type registry (see
//     registry.go): per-node FSM state (monoid element) with fragment
//     descriptors for live nodes, combined through the SCT, and a B+tree
//     from order-encoded values to postings of castable nodes. The
//     built-in registrations are xs:double, xs:dateTime, and xs:date;
//     further ordered types plug in through RegisterType with no new
//     control flow anywhere in this package.
//
// Rejected nodes store no state (absence = reject), as in the paper.
// Comments and processing instructions carry their own values but do not
// contribute to ancestors, per the XQuery data model.
package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/fsm"
	"repro/internal/storage"
	"repro/internal/xmltree"
)

// Options selects which indices to build. Double, DateTime, and Date are
// sugar for the built-in type IDs; Types names further registered typed
// indexes directly.
type Options struct {
	String   bool
	Double   bool
	DateTime bool
	Date     bool
	// Types lists additional registered typed indexes to build (beyond
	// the boolean sugar above). Unknown IDs are ignored.
	Types []TypeID
	// Parallelism bounds the number of worker goroutines Build uses for
	// the collection passes and the B+tree bulk loads. 0 means
	// runtime.GOMAXPROCS(0); 1 selects the serial reference path (the
	// paper's Figure 7 loop, kept as the oracle the parallel path is
	// property-tested against); negative values are treated as 0. Any
	// setting produces identical indexes — down to snapshot bytes.
	// Parallelism is a build-time knob only; it is not persisted in
	// snapshots.
	Parallelism int
}

// DefaultOptions builds the string index and every built-in typed index.
func DefaultOptions() Options {
	return Options{String: true, Double: true, DateTime: true, Date: true}
}

// typeIDs resolves the selected typed indexes in registry order.
func (o Options) typeIDs() []TypeID {
	return typeIDsFor(o.Double, o.DateTime, o.Date, o.Types)
}

// optionsForTypes reconstructs Options sugar from a type-ID list (used by
// snapshot loading).
func optionsForTypes(str bool, ids []TypeID) Options {
	o := Options{String: str}
	for _, id := range ids {
		switch id {
		case TypeDouble:
			o.Double = true
		case TypeDateTime:
			o.DateTime = true
		case TypeDate:
			o.Date = true
		default:
			o.Types = append(o.Types, id)
		}
	}
	return o
}

// Posting identifies an indexed node: either a tree node or an attribute.
type Posting struct {
	Node   xmltree.NodeID
	Attr   xmltree.AttrID
	IsAttr bool
}

// NodePosting wraps a tree node id.
func NodePosting(n xmltree.NodeID) Posting { return Posting{Node: n} }

// AttrPosting wraps an attribute id.
func AttrPosting(a xmltree.AttrID) Posting { return Posting{Attr: a, IsAttr: true} }

// Postings are packed into the B+tree's uint32 value as (id << 1 | isAttr).
// Stable ids (not pre-order ranks) are stored so structural updates do not
// invalidate the trees.
func packPosting(stable uint32, isAttr bool) uint32 {
	p := stable << 1
	if isAttr {
		p |= 1
	}
	return p
}

func unpackPosting(p uint32) (stable uint32, isAttr bool) { return p >> 1, p&1 == 1 }

// typedIndex is the per-type half of the range-index pair: the side table
// of states and fragments (the paper's [node id, state] index) and the
// value B+tree (the paper's clustered [value, node id] index). Which type
// it maintains is entirely determined by its TypeSpec.
type typedIndex struct {
	spec TypeSpec

	elems     []fsm.Elem // per tree node (pre order); Reject = not stored
	attrElems []fsm.Elem // per attribute

	// items holds the digit runs/punctuation of live nodes (elem != Reject
	// and non-empty content). Keyed by STABLE ids so structural updates
	// that shift pre ranks do not invalidate the maps.
	items     map[uint32][]fsm.Item
	attrItems map[uint32][]fsm.Item

	tree *btree.Tree // (encoded value, packed posting)

	// stats is the planner's equi-depth histogram plus distinct-key
	// count over tree (see histogram.go).
	stats *keyStats

	// collect/scratch gather value-tree entries during the initial build
	// pass, avoiding a second document scan.
	collect bool
	scratch []btree.Entry
}

// setFragFresh is setFrag for the initial build, when the items maps
// cannot yet contain the key (skips the miss-delete of the common case).
func (ti *typedIndex) setFragFresh(n xmltree.NodeID, stable uint32, f fsm.Frag) {
	ti.elems[n] = f.Elem
	if f.Elem != fsm.Reject && len(f.Items) > 0 {
		ti.items[stable] = f.Items
	}
}

func (ti *typedIndex) setAttrFragFresh(a xmltree.AttrID, stable uint32, f fsm.Frag) {
	ti.attrElems[a] = f.Elem
	if f.Elem != fsm.Reject && len(f.Items) > 0 {
		ti.attrItems[stable] = f.Items
	}
}

// entryFor applies the value-tree admission filter — collecting, not
// rejected, castable, encodable — and returns the entry a fragment
// contributes. It is the single membership rule shared by the serial
// collect path and the buffered parallel sinks. Callers apply the
// tree-membership rule (texts, attributes, combined elements) before
// calling.
func (ti *typedIndex) entryFor(f fsm.Frag, posting uint32) (btree.Entry, bool) {
	if !ti.collect || f.Elem == fsm.Reject || !ti.spec.Machine.Castable(f.Elem) {
		return btree.Entry{}, false
	}
	key, ok := ti.spec.Encode(f)
	return btree.Entry{Key: key, Val: posting}, ok
}

// collectEntry appends a value-tree entry for a freshly computed fragment
// when the build pass is collecting and the fragment is castable.
func (ti *typedIndex) collectEntry(f fsm.Frag, posting uint32) {
	if e, ok := ti.entryFor(f, posting); ok {
		ti.scratch = append(ti.scratch, e)
	}
}

// treeKey returns the value-tree key of node n, which exists only for the
// postings the tree stores: castable text nodes and castable COMBINED
// elements (mixed content). Single-text wrapper elements share their
// text's value and are chain-lifted at query time instead of being stored
// — this is what keeps the typed index at a few percent of the database,
// as in the paper.
func (ti *typedIndex) treeKey(doc *xmltree.Doc, n xmltree.NodeID, stable uint32) (uint64, bool) {
	e := ti.elems[n]
	if e == fsm.Reject || !ti.spec.Machine.Castable(e) {
		return 0, false
	}
	switch doc.Kind(n) {
	case xmltree.Element, xmltree.Document:
		if !isCombinedValue(doc, n) {
			return 0, false
		}
	case xmltree.Comment, xmltree.PI:
		return 0, false
	}
	return ti.spec.Encode(ti.frag(n, stable))
}

func (ti *typedIndex) frag(n xmltree.NodeID, stable uint32) fsm.Frag {
	return fsm.Frag{Elem: ti.elems[n], Items: ti.items[stable]}
}

func (ti *typedIndex) attrFrag(a xmltree.AttrID, stable uint32) fsm.Frag {
	return fsm.Frag{Elem: ti.attrElems[a], Items: ti.attrItems[stable]}
}

func (ti *typedIndex) setFrag(n xmltree.NodeID, stable uint32, f fsm.Frag) {
	ti.elems[n] = f.Elem
	if f.Elem != fsm.Reject && len(f.Items) > 0 {
		ti.items[stable] = f.Items
	} else {
		delete(ti.items, stable)
	}
}

func (ti *typedIndex) setAttrFrag(a xmltree.AttrID, stable uint32, f fsm.Frag) {
	ti.attrElems[a] = f.Elem
	if f.Elem != fsm.Reject && len(f.Items) > 0 {
		ti.attrItems[stable] = f.Items
	} else {
		delete(ti.attrItems, stable)
	}
}

// key returns the B+tree key of node n's current fragment, if castable.
func (ti *typedIndex) key(n xmltree.NodeID, stable uint32) (uint64, bool) {
	if ti.elems[n] == fsm.Reject || !ti.spec.Machine.Castable(ti.elems[n]) {
		return 0, false
	}
	return ti.spec.Encode(ti.frag(n, stable))
}

func (ti *typedIndex) attrKey(a xmltree.AttrID, stable uint32) (uint64, bool) {
	if ti.attrElems[a] == fsm.Reject || !ti.spec.Machine.Castable(ti.attrElems[a]) {
		return 0, false
	}
	return ti.spec.Encode(ti.attrFrag(a, stable))
}

// Snapshot is one immutable published version of the value indices over
// one version of the document. Readers obtain a Snapshot from
// Indexes.Snapshot (or implicitly through the Indexes read wrappers) and
// can use it for any read — lookups, ranges, Verify, Stats, Save —
// without synchronization, for as long as they like: a Snapshot is never
// mutated after it is published. Writers build the next version as a
// private copy-on-write clone of the current one (see update.go) and
// publish it with one atomic pointer swap on the owning Indexes.
type Snapshot struct {
	doc  *xmltree.Doc
	opts Options

	// version is the publication sequence number: Build produces
	// version 1, Load restores the sequence number the snapshot was
	// saved at (1 for snapshots predating version persistence), and
	// every committed mutation increments it by one. It doubles as the
	// commit-sequence token the network server hands to clients.
	version uint64

	// Stable node ids: postings in the B+trees survive structural updates.
	// stableOf[pre] is the node's stable id; preOf[stable] is the current
	// pre rank or -1 once deleted. Attributes get their own spaces.
	stableOf     []uint32
	preOf        []int32
	attrStableOf []uint32
	attrOf       []int32

	// String index: hash per tree node and per attribute, plus the B+tree.
	hash     []uint32
	attrHash []uint32
	strTree  *btree.Tree

	// strStats is the planner statistics over the string tree's hash
	// keys (see histogram.go); the typed equivalents live on each
	// typedIndex. Statistics version with the snapshot, so a plan never
	// mixes estimates from one version with postings from another.
	strStats *keyStats

	// Substring index (see substr.go): the q-gram B+tree over text-node
	// and attribute values plus its planner statistics. Nil until
	// EnableSubstring; once set, every commit path maintains both
	// copy-on-write like the other indices.
	subTree  *btree.Tree
	subStats *keyStats

	// typed holds one index per enabled registry entry, in registry
	// order. All per-type control flow in this package is iteration over
	// this slice.
	typed []*typedIndex

	// Scratch buffers reused by the sequential update paths. They are
	// only ever touched by the single serialized writer preparing the
	// next version (never by readers), so sharing them across clones is
	// safe.
	scratchFrags []fsm.Frag
	scratchKeys  []keyState
}

// Indexes bundles a document with its value indices. All updates to the
// document must go through Indexes methods so the indices stay consistent.
//
// # Concurrency
//
// Indexes is multi-version: the current index state lives in an
// atomically swapped *Snapshot. Every read entry point — LookupString
// and friends, the Range/Scan lookups, TypedFrag and the typed value
// accessors, Query planning, Verify, Stats, Save, SavePartsTo — loads
// the current snapshot once and runs entirely against it, so reads are
// lock-free, never block writers, are never blocked by writers, and
// always observe one fully published version (no torn reads).
//
// The mutating methods (UpdateText, UpdateTexts, UpdateAttr,
// DeleteSubtree, InsertChildren) serialize among themselves on an
// internal writer mutex, clone the columns they change off the current
// snapshot (B+trees share structure via path copying), apply the change
// to the private draft, and publish it with one atomic store. Retired
// versions are reclaimed by the garbage collector once the last reader
// drops its snapshot reference — Go's reachability acts as the epoch.
//
// For multi-statement write transactions with conflict detection, use
// the txn layer, whose commit section funnels every write through
// UpdateTexts.
type Indexes struct {
	cur atomic.Pointer[Snapshot]

	// wmu serializes writers: mutations, checkpoints, and WAL
	// generation changes. Readers never take it.
	wmu sync.Mutex

	opts Options

	// Durability (see durable.go). wal, when attached, receives one
	// logical record per mutation before the mutation is applied; walGen
	// pairs the log with the snapshot generation it extends, and
	// snapshotPath is where Checkpoint rewrites the snapshot. All are
	// writer-side state guarded by wmu (walGen additionally atomic for
	// the lock-free WALGeneration accessor).
	wal          *storage.WAL
	walGen       atomic.Uint64
	snapshotPath string

	// onCommit, when set, observes every published commit (guarded by
	// wmu; invoked under it, so notifications arrive in version order
	// with no gaps). See SetCommitHook.
	onCommit CommitHook

	// recoveredTail holds the WAL records OpenDurable replayed, for
	// consumers (the network server's watch hub) that re-publish the
	// commit stream after a restart. Set once before the Indexes is
	// shared; read-only afterwards.
	recoveredTail []storage.Record
}

// CommitHook observes one published commit: the new version, the WAL
// record kind and payload encoding the mutation (the canonical WAL
// encoding, produced whether or not a log is attached), and the number
// of logical operations the record carries (the batch size for text
// batches, 1 otherwise). Hooks run synchronously under the writer mutex
// — after the version is published, before the mutating call returns —
// so they observe commits in exact version order and must not block or
// re-enter the Indexes' mutating methods.
type CommitHook func(version uint64, kind storage.RecordKind, ops int, payload []byte)

// SetCommitHook installs fn as the commit observer (nil clears it).
// Only one hook is supported; installing replaces the previous one.
func (ix *Indexes) SetCommitHook(fn CommitHook) {
	ix.wmu.Lock()
	ix.onCommit = fn
	ix.wmu.Unlock()
}

// notifyCommit runs the commit hook, if any. Callers hold wmu and have
// already published version.
func (ix *Indexes) notifyCommit(version uint64, kind storage.RecordKind, ops int, payload []byte) {
	if ix.onCommit != nil {
		ix.onCommit(version, kind, ops, payload)
	}
}

// RecordOps reports the number of logical operations a WAL record
// payload carries: the batch size for text batches, 1 for every other
// mutation kind.
func RecordOps(kind storage.RecordKind, payload []byte) int {
	if kind == storage.RecTextBatch {
		if n, k := binary.Uvarint(payload); k > 0 {
			return int(n)
		}
	}
	return 1
}

// RecoveredTail returns the write-ahead log records OpenDurable replayed
// while recovering this index set, in replay order: record i produced
// version base+1+i, where base is the loaded snapshot's version. Nil for
// index sets that were not recovered, or whose log had no tail.
func (ix *Indexes) RecoveredTail() []storage.Record { return ix.recoveredTail }

// wrapSnapshot publishes s as version 1 of a fresh Indexes handle.
func wrapSnapshot(s *Snapshot) *Indexes {
	if s.version == 0 {
		s.version = 1
	}
	ix := &Indexes{opts: s.opts}
	ix.cur.Store(s)
	return ix
}

// Snapshot returns the current published version. The returned value is
// immutable and remains valid (and consistent) indefinitely; callers
// that issue several reads which must observe the same version should
// capture one Snapshot and issue them all against it.
func (ix *Indexes) Snapshot() *Snapshot { return ix.cur.Load() }

// Version reports the current publication sequence number (1 for a
// freshly built Indexes, the persisted sequence for a loaded one, +1 per
// committed mutation).
func (ix *Indexes) Version() uint64 { return ix.cur.Load().version }

// Version reports the snapshot's publication sequence number.
func (s *Snapshot) Version() uint64 { return s.version }

// publish installs the draft as the current version. Callers must hold
// wmu and must have built draft against the snapshot that is still
// current.
func (ix *Indexes) publish(draft *Snapshot) {
	ix.cur.Store(draft)
}

// Doc returns the indexed document. Treat it as read-only; mutate through
// Indexes methods.
func (ix *Snapshot) Doc() *xmltree.Doc { return ix.doc }

// Options reports which indices were built.
func (ix *Snapshot) Options() Options { return ix.opts }

// NodeHash returns the stored hash of node n's string value.
func (ix *Snapshot) NodeHash(n xmltree.NodeID) uint32 { return ix.hash[n] }

// AttrHash returns the stored hash of attribute a's value.
func (ix *Snapshot) AttrHash(a xmltree.AttrID) uint32 { return ix.attrHash[a] }

// typedFor returns the typed index maintaining type id, or nil when it
// was not enabled at build time.
func (ix *Snapshot) typedFor(id TypeID) *typedIndex {
	for _, ti := range ix.typed {
		if ti.spec.ID == id {
			return ti
		}
	}
	return nil
}

// TypedIDs lists the typed indexes built for this document, in registry
// order.
func (ix *Snapshot) TypedIDs() []TypeID {
	out := make([]TypeID, len(ix.typed))
	for i, ti := range ix.typed {
		out[i] = ti.spec.ID
	}
	return out
}

// HasTyped reports whether typed index id was built.
func (ix *Snapshot) HasTyped(id TypeID) bool { return ix.typedFor(id) != nil }

// HasString reports whether the string equi-index was built.
func (ix *Snapshot) HasString() bool { return ix.strTree != nil }

// TypedElem returns node n's monoid element under typed index id
// (fsm.Reject if the node's string value cannot be part of the type's
// lexical space, or if the index was not built).
func (ix *Snapshot) TypedElem(id TypeID, n xmltree.NodeID) fsm.Elem {
	ti := ix.typedFor(id)
	if ti == nil {
		return fsm.Reject
	}
	return ti.elems[n]
}

// TypedFrag returns node n's fragment under typed index id; ok is false
// when the index was not built or the node is rejected.
func (ix *Snapshot) TypedFrag(id TypeID, n xmltree.NodeID) (fsm.Frag, bool) {
	return ix.typedFrag(id, n)
}

// typedFrag is the internal spelling of TypedFrag.
func (ix *Snapshot) typedFrag(id TypeID, n xmltree.NodeID) (fsm.Frag, bool) {
	ti := ix.typedFor(id)
	if ti == nil || ti.elems[n] == fsm.Reject {
		return fsm.Frag{}, false
	}
	return ti.frag(n, ix.stableOf[n]), true
}

// DoubleElem returns node n's double-machine element (fsm.Reject if the
// node's string value cannot be part of a double).
func (ix *Snapshot) DoubleElem(n xmltree.NodeID) fsm.Elem {
	return ix.TypedElem(TypeDouble, n)
}

// DoubleValue returns the xs:double value of node n, if castable.
func (ix *Snapshot) DoubleValue(n xmltree.NodeID) (float64, bool) {
	f, ok := ix.typedFrag(TypeDouble, n)
	if !ok {
		return 0, false
	}
	return fsm.DoubleValue(f)
}

// DateTimeValue returns the epoch-millisecond value of node n, if
// castable.
func (ix *Snapshot) DateTimeValue(n xmltree.NodeID) (int64, bool) {
	f, ok := ix.typedFrag(TypeDateTime, n)
	if !ok {
		return 0, false
	}
	return fsm.DateTimeValue(f)
}

// DateValue returns the epoch-day value of node n, if castable as
// xs:date.
func (ix *Snapshot) DateValue(n xmltree.NodeID) (int64, bool) {
	f, ok := ix.typedFrag(TypeDate, n)
	if !ok {
		return 0, false
	}
	return fsm.DateValue(f)
}

// StableOf returns the stable id of tree node n.
func (ix *Snapshot) StableOf(n xmltree.NodeID) uint32 { return ix.stableOf[n] }

// AttrStableOf returns the stable id of attribute a.
func (ix *Snapshot) AttrStableOf(a xmltree.AttrID) uint32 { return ix.attrStableOf[a] }

// NodeOfStable resolves a stable id to the current pre rank, or
// xmltree.InvalidNode if the node was deleted.
func (ix *Snapshot) NodeOfStable(s uint32) xmltree.NodeID {
	if int(s) >= len(ix.preOf) || ix.preOf[s] < 0 {
		return xmltree.InvalidNode
	}
	return xmltree.NodeID(ix.preOf[s])
}

// AttrOfStable resolves a stable attribute id, or xmltree.InvalidAttr.
func (ix *Snapshot) AttrOfStable(s uint32) xmltree.AttrID {
	if int(s) >= len(ix.attrOf) || ix.attrOf[s] < 0 {
		return xmltree.InvalidAttr
	}
	return xmltree.AttrID(ix.attrOf[s])
}

func (ix *Snapshot) resolve(packed uint32) (Posting, bool) {
	stable, isAttr := unpackPosting(packed)
	if isAttr {
		a := ix.AttrOfStable(stable)
		if a == xmltree.InvalidAttr {
			return Posting{}, false
		}
		return AttrPosting(a), true
	}
	n := ix.NodeOfStable(stable)
	if n == xmltree.InvalidNode {
		return Posting{}, false
	}
	return NodePosting(n), true
}

func newTypedIndex(spec TypeSpec, nNodes, nAttrs int) *typedIndex {
	return &typedIndex{
		spec:      spec,
		elems:     make([]fsm.Elem, nNodes), // zero value is fsm.Reject
		attrElems: make([]fsm.Elem, nAttrs),
		items:     make(map[uint32][]fsm.Item),
		attrItems: make(map[uint32][]fsm.Item),
	}
}

// eachTyped calls f for each enabled typed index, in registry order.
func (ix *Snapshot) eachTyped(f func(*typedIndex)) {
	for _, ti := range ix.typed {
		f(ti)
	}
}
