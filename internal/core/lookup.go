package core

import (
	"math"

	"repro/internal/btree"
	"repro/internal/vhash"
	"repro/internal/xmltree"
)

// LookupStringCandidates returns the postings whose hash equals H(value),
// unverified: hash collisions may contribute false positives, which the
// paper's query pipeline filters afterwards (see LookupString).
func (ix *Indexes) LookupStringCandidates(value string) []Posting {
	if ix.strTree == nil {
		return nil
	}
	h := vhash.HashString(value)
	var out []Posting
	ix.strTree.ScanEq(uint64(h), func(packed uint32) bool {
		if p, ok := ix.resolve(packed); ok {
			out = append(out, p)
		}
		return true
	})
	return out
}

// LookupString returns the nodes whose string value equals value,
// verifying each hash candidate against the document (the candidate check
// the paper describes in Section 3).
func (ix *Indexes) LookupString(value string) []Posting {
	cands := ix.LookupStringCandidates(value)
	out := cands[:0]
	for _, p := range cands {
		if ix.postingStringValue(p) == value {
			out = append(out, p)
		}
	}
	return out
}

func (ix *Indexes) postingStringValue(p Posting) string {
	if p.IsAttr {
		return ix.doc.AttrValue(p.Attr)
	}
	return ix.doc.StringValue(p.Node)
}

// RangeDouble returns the postings of nodes whose xs:double value v
// satisfies lo ≤ v ≤ hi (with exclusive bounds when incLo/incHi are
// false), in ascending value order.
func (ix *Indexes) RangeDouble(lo, hi float64, incLo, incHi bool) []Posting {
	if ix.double == nil {
		return nil
	}
	klo := btree.EncodeFloat64(lo)
	khi := btree.EncodeFloat64(hi)
	if !incLo {
		if klo == math.MaxUint64 {
			return nil
		}
		klo++
	}
	if !incHi {
		if khi == 0 {
			return nil
		}
		khi--
	}
	var out []Posting
	ix.double.tree.ScanRange(klo, khi, func(_ uint64, packed uint32) bool {
		if p, ok := ix.resolve(packed); ok {
			out = ix.appendWithChain(out, p)
		}
		return true
	})
	return out
}

// appendWithChain emits a typed-index hit plus its single-child ancestor
// chain: wrapper elements share their only contributing child's value and
// are not stored in the value trees, so they are materialised here (the
// inverse of the storage rule in typedIndex.treeKey).
func (ix *Indexes) appendWithChain(out []Posting, p Posting) []Posting {
	out = append(out, p)
	if p.IsAttr {
		return out
	}
	doc := ix.doc
	for parent := doc.Parent(p.Node); parent != xmltree.InvalidNode; parent = doc.Parent(parent) {
		if countContributing(doc, parent) != 1 {
			break
		}
		out = append(out, NodePosting(parent))
	}
	return out
}

// countContributing counts children participating in n's string value
// (elements and texts; comments/PIs excluded), stopping at 2.
func countContributing(doc *xmltree.Doc, n xmltree.NodeID) int {
	cnt := 0
	for c := doc.FirstChild(n); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
		if xmltree.ContributesToParent(doc.Kind(c)) {
			cnt++
			if cnt > 1 {
				return cnt
			}
		}
	}
	return cnt
}

// LookupDoubleEq returns the postings of nodes whose double value equals v
// exactly — the generic-index answer to the paper's introduction example
// //person[.//age = 42], where "42", "42.0", " +4.2E1", and the
// mixed-content <age><decades>4</decades>2<years/></age> all match.
func (ix *Indexes) LookupDoubleEq(v float64) []Posting {
	return ix.RangeDouble(v, v, true, true)
}

// RangeDateTime returns the postings of nodes whose dateTime value in
// epoch milliseconds m satisfies lo ≤ m ≤ hi, ascending.
func (ix *Indexes) RangeDateTime(lo, hi int64) []Posting {
	if ix.dateTime == nil {
		return nil
	}
	var out []Posting
	ix.dateTime.tree.ScanRange(btree.EncodeInt64(lo), btree.EncodeInt64(hi), func(_ uint64, packed uint32) bool {
		if p, ok := ix.resolve(packed); ok {
			out = ix.appendWithChain(out, p)
		}
		return true
	})
	return out
}

// ScanStringEquals is the index-less baseline: walk every indexed node and
// compare materialised string values. Used by the ablation benches and by
// tests as ground truth.
func (ix *Indexes) ScanStringEquals(value string) []Posting {
	doc := ix.doc
	var out []Posting
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if indexedNodeKind(doc.Kind(n)) && doc.StringValue(n) == value {
			out = append(out, NodePosting(n))
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		if doc.AttrValue(xmltree.AttrID(a)) == value {
			out = append(out, AttrPosting(xmltree.AttrID(a)))
		}
	}
	return out
}

// ScanDoubleRange is the index-less baseline for double range predicates:
// it materialises and casts every node's string value.
func (ix *Indexes) ScanDoubleRange(lo, hi float64, incLo, incHi bool) []Posting {
	doc := ix.doc
	var out []Posting
	within := func(v float64) bool {
		if v < lo || (v == lo && !incLo) {
			return false
		}
		if v > hi || (v == hi && !incHi) {
			return false
		}
		return true
	}
	m := doubleMachineForScan()
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if !indexedNodeKind(doc.Kind(n)) {
			continue
		}
		if v, ok := castDouble(m, doc.StringValue(n)); ok && within(v) {
			out = append(out, NodePosting(n))
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		if v, ok := castDouble(m, doc.AttrValue(xmltree.AttrID(a))); ok && within(v) {
			out = append(out, AttrPosting(xmltree.AttrID(a)))
		}
	}
	return out
}
