package core

import (
	"math"

	"repro/internal/btree"
	"repro/internal/vhash"
	"repro/internal/xmltree"
)

// LookupStringCandidates returns the postings whose hash equals H(value),
// unverified: hash collisions may contribute false positives, which the
// paper's query pipeline filters afterwards (see LookupString).
func (ix *Snapshot) LookupStringCandidates(value string) []Posting {
	return ix.lookupStringCandidates(value)
}

func (ix *Snapshot) lookupStringCandidates(value string) []Posting {
	if ix.strTree == nil {
		return nil
	}
	h := vhash.HashString(value)
	var out []Posting
	ix.strTree.ScanEq(uint64(h), func(packed uint32) bool {
		if p, ok := ix.resolve(packed); ok {
			out = append(out, p)
		}
		return true
	})
	return out
}

// LookupString returns the nodes whose string value equals value,
// verifying each hash candidate against the document (the candidate check
// the paper describes in Section 3). Candidate retrieval and verification
// run under one read-lock acquisition, so a concurrent update cannot slip
// between them.
func (ix *Snapshot) LookupString(value string) []Posting {
	cands := ix.lookupStringCandidates(value)
	out := cands[:0]
	for _, p := range cands {
		if ix.postingStringValue(p) == value {
			out = append(out, p)
		}
	}
	return out
}

func (ix *Snapshot) postingStringValue(p Posting) string {
	if p.IsAttr {
		return ix.doc.AttrValue(p.Attr)
	}
	return ix.doc.StringValue(p.Node)
}

// RangeTyped returns the postings of nodes whose typed value under index
// id has an encoded key k with lo ≤ k ≤ hi (bounds exclusive when
// incLo/incHi are false), in ascending value order — the generic range
// lookup every per-type entry point delegates to. Keys compare in value
// order because every TypeSpec.Encode is order-preserving.
func (ix *Snapshot) RangeTyped(id TypeID, lo, hi uint64, incLo, incHi bool) []Posting {
	return ix.rangeTyped(id, lo, hi, incLo, incHi)
}

func (ix *Snapshot) rangeTyped(id TypeID, lo, hi uint64, incLo, incHi bool) []Posting {
	ti := ix.typedFor(id)
	if ti == nil {
		return nil
	}
	if !incLo {
		if lo == math.MaxUint64 {
			return nil
		}
		lo++
	}
	if !incHi {
		if hi == 0 {
			return nil
		}
		hi--
	}
	var out []Posting
	ti.tree.ScanRange(lo, hi, func(_ uint64, packed uint32) bool {
		if p, ok := ix.resolve(packed); ok {
			out = ix.appendWithChain(out, p)
		}
		return true
	})
	return out
}

// RangeDouble returns the postings of nodes whose xs:double value v
// satisfies lo ≤ v ≤ hi (with exclusive bounds when incLo/incHi are
// false), in ascending value order. A NaN bound denotes an empty range
// (XPath comparisons with NaN are always false), never a key-space scan.
func (ix *Snapshot) RangeDouble(lo, hi float64, incLo, incHi bool) []Posting {
	return ix.rangeDouble(lo, hi, incLo, incHi)
}

func (ix *Snapshot) rangeDouble(lo, hi float64, incLo, incHi bool) []Posting {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return nil
	}
	return ix.rangeTyped(TypeDouble, btree.EncodeFloat64(lo), btree.EncodeFloat64(hi), incLo, incHi)
}

// appendWithChain emits a typed-index hit plus its single-child ancestor
// chain: wrapper elements share their only contributing child's value and
// are not stored in the value trees, so they are materialised here (the
// inverse of the storage rule in typedIndex.treeKey).
func (ix *Snapshot) appendWithChain(out []Posting, p Posting) []Posting {
	out = append(out, p)
	if p.IsAttr {
		return out
	}
	doc := ix.doc
	for parent := doc.Parent(p.Node); parent != xmltree.InvalidNode; parent = doc.Parent(parent) {
		if countContributing(doc, parent) != 1 {
			break
		}
		out = append(out, NodePosting(parent))
	}
	return out
}

// countContributing counts children participating in n's string value
// (elements and texts; comments/PIs excluded), stopping at 2.
func countContributing(doc *xmltree.Doc, n xmltree.NodeID) int {
	cnt := 0
	for c := doc.FirstChild(n); c != xmltree.InvalidNode; c = doc.NextSibling(c) {
		if xmltree.ContributesToParent(doc.Kind(c)) {
			cnt++
			if cnt > 1 {
				return cnt
			}
		}
	}
	return cnt
}

// LookupDoubleEq returns the postings of nodes whose double value equals v
// exactly — the generic-index answer to the paper's introduction example
// //person[.//age = 42], where "42", "42.0", " +4.2E1", and the
// mixed-content <age><decades>4</decades>2<years/></age> all match.
func (ix *Snapshot) LookupDoubleEq(v float64) []Posting {
	return ix.rangeDouble(v, v, true, true)
}

// RangeDateTime returns the postings of nodes whose dateTime value in
// epoch milliseconds m satisfies lo ≤ m ≤ hi, ascending.
func (ix *Snapshot) RangeDateTime(lo, hi int64) []Posting {
	return ix.rangeTyped(TypeDateTime, btree.EncodeInt64(lo), btree.EncodeInt64(hi), true, true)
}

// RangeDate returns the postings of nodes whose xs:date value in days
// since the epoch d satisfies lo ≤ d ≤ hi, ascending.
func (ix *Snapshot) RangeDate(lo, hi int64) []Posting {
	return ix.rangeTyped(TypeDate, btree.EncodeInt64(lo), btree.EncodeInt64(hi), true, true)
}

// ScanStringEquals is the index-less baseline: walk every indexed node and
// compare materialised string values. Used by the ablation benches and by
// tests as ground truth.
func (ix *Snapshot) ScanStringEquals(value string) []Posting {
	doc := ix.doc
	var out []Posting
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if indexedNodeKind(doc.Kind(n)) && doc.StringValue(n) == value {
			out = append(out, NodePosting(n))
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		if doc.AttrValue(xmltree.AttrID(a)) == value {
			out = append(out, AttrPosting(xmltree.AttrID(a)))
		}
	}
	return out
}

// ScanTypedRange is the index-less baseline for typed range predicates
// under registered type id: it materialises every node's string value,
// runs it through the type's machine, and keeps encoded keys within
// [lo, hi]. Works for any registered type, built or not.
func ScanTypedRange(doc *xmltree.Doc, id TypeID, lo, hi uint64) []Posting {
	spec, ok := LookupType(id)
	if !ok {
		return nil
	}
	within := func(s string) bool {
		f, ok := spec.Machine.ParseFragString(s)
		if !ok {
			return false
		}
		key, ok := spec.Encode(f)
		return ok && key >= lo && key <= hi
	}
	var out []Posting
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if indexedNodeKind(doc.Kind(n)) && within(doc.StringValue(n)) {
			out = append(out, NodePosting(n))
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		if within(doc.AttrValue(xmltree.AttrID(a))) {
			out = append(out, AttrPosting(xmltree.AttrID(a)))
		}
	}
	return out
}

// ScanDoubleRange is the index-less baseline for double range predicates:
// it materialises and casts every node's string value.
func (ix *Snapshot) ScanDoubleRange(lo, hi float64, incLo, incHi bool) []Posting {
	doc := ix.doc
	var out []Posting
	within := func(v float64) bool {
		if v < lo || (v == lo && !incLo) {
			return false
		}
		if v > hi || (v == hi && !incHi) {
			return false
		}
		return true
	}
	m := doubleMachineForScan()
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if !indexedNodeKind(doc.Kind(n)) {
			continue
		}
		if v, ok := castDouble(m, doc.StringValue(n)); ok && within(v) {
			out = append(out, NodePosting(n))
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		if v, ok := castDouble(m, doc.AttrValue(xmltree.AttrID(a))); ok && within(v) {
			out = append(out, AttrPosting(xmltree.AttrID(a)))
		}
	}
	return out
}

// ScanDateRange is the index-less baseline for xs:date range predicates
// over epoch days.
func (ix *Snapshot) ScanDateRange(lo, hi int64) []Posting {
	return ScanTypedRange(ix.doc, TypeDate, btree.EncodeInt64(lo), btree.EncodeInt64(hi))
}
