package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/btree"
	"repro/internal/datagen"
	"repro/internal/fsm"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

// parallelisms are the worker counts the equivalence properties are
// checked against (2 = minimal split, 3 = odd merge shapes, 8 = more
// shards than this container has cores).
var parallelisms = []int{2, 3, 8}

// dumpTree flattens a B+tree into its ordered entry list.
func dumpTree(t *btree.Tree) []btree.Entry {
	if t == nil {
		return nil
	}
	out := make([]btree.Entry, 0, t.Len())
	t.Scan(func(key uint64, val uint32) bool {
		out = append(out, btree.Entry{Key: key, Val: val})
		return true
	})
	return out
}

// assertIndexesEqual compares every observable structure of two index
// sets built over equal documents: per-node and per-attribute hashes,
// per-type elements, fragment items, and full tree contents.
func assertIndexesEqual(t *testing.T, wantIx, gotIx *Indexes) {
	t.Helper()
	want, got := wantIx.Snapshot(), gotIx.Snapshot()
	if len(want.hash) != len(got.hash) {
		t.Fatalf("hash column length %d, want %d", len(got.hash), len(want.hash))
	}
	for i := range want.hash {
		if want.hash[i] != got.hash[i] {
			t.Fatalf("node %d hash %#x, want %#x", i, got.hash[i], want.hash[i])
		}
	}
	for a := range want.attrHash {
		if want.attrHash[a] != got.attrHash[a] {
			t.Fatalf("attr %d hash %#x, want %#x", a, got.attrHash[a], want.attrHash[a])
		}
	}
	ws, gs := dumpTree(want.strTree), dumpTree(got.strTree)
	if len(ws) != len(gs) {
		t.Fatalf("string tree has %d entries, want %d", len(gs), len(ws))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("string tree entry %d = %+v, want %+v", i, gs[i], ws[i])
		}
	}
	if len(want.typed) != len(got.typed) {
		t.Fatalf("%d typed indexes, want %d", len(got.typed), len(want.typed))
	}
	for ti := range want.typed {
		wt, gt := want.typed[ti], got.typed[ti]
		name := wt.spec.Name
		for i := range wt.elems {
			if wt.elems[i] != gt.elems[i] {
				t.Fatalf("%s: node %d elem %d, want %d", name, i, gt.elems[i], wt.elems[i])
			}
		}
		for a := range wt.attrElems {
			if wt.attrElems[a] != gt.attrElems[a] {
				t.Fatalf("%s: attr %d elem %d, want %d", name, a, gt.attrElems[a], wt.attrElems[a])
			}
		}
		assertItemsEqual(t, name+" items", wt.items, gt.items)
		assertItemsEqual(t, name+" attrItems", wt.attrItems, gt.attrItems)
		we, ge := dumpTree(wt.tree), dumpTree(gt.tree)
		if len(we) != len(ge) {
			t.Fatalf("%s tree has %d entries, want %d", name, len(ge), len(we))
		}
		for i := range we {
			if we[i] != ge[i] {
				t.Fatalf("%s tree entry %d = %+v, want %+v", name, i, ge[i], we[i])
			}
		}
	}
}

func assertItemsEqual(t *testing.T, label string, want, got map[uint32][]fsm.Item) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d stored nodes, want %d", label, len(got), len(want))
	}
	for stable, wi := range want {
		gi, ok := got[stable]
		if !ok {
			t.Fatalf("%s: stable %d missing", label, stable)
		}
		if len(wi) != len(gi) {
			t.Fatalf("%s: stable %d has %d items, want %d", label, stable, len(gi), len(wi))
		}
		for k := range wi {
			if wi[k] != gi[k] {
				t.Fatalf("%s: stable %d item %d = %+v, want %+v", label, stable, k, gi[k], wi[k])
			}
		}
	}
}

// snapshotBytes saves ix and returns the raw snapshot file.
func snapshotBytes(t *testing.T, ix *Indexes) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.xvi")
	if err := ix.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	return b
}

// checkParallelEquivalence builds xml serially (the oracle) and with
// every tested worker count, asserting structural equality, identical
// Verify results, and byte-identical snapshots.
func checkParallelEquivalence(t *testing.T, xml []byte, opts Options) {
	t.Helper()
	doc, err := xmlparse.Parse(xml)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	opts.Parallelism = 1
	serial := Build(doc, opts)
	if err := serial.Verify(); err != nil {
		t.Fatalf("serial Verify: %v", err)
	}
	serialSnap := snapshotBytes(t, serial)
	for _, p := range parallelisms {
		popts := opts
		popts.Parallelism = p
		par := Build(doc, popts)
		if err := par.Verify(); err != nil {
			t.Fatalf("Parallelism=%d Verify: %v", p, err)
		}
		assertIndexesEqual(t, serial, par)
		snap := snapshotBytes(t, par)
		if string(snap) != string(serialSnap) {
			t.Fatalf("Parallelism=%d snapshot differs from serial (%d vs %d bytes)", p, len(snap), len(serialSnap))
		}
	}
}

// TestParallelBuildMatchesSerialOnXMark is the headline equivalence
// property on the generated evaluation corpus: for every registered
// type, Parallelism=N and Parallelism=1 produce byte-identical
// snapshots and identical Verify results.
func TestParallelBuildMatchesSerialOnXMark(t *testing.T) {
	// xmark1 runs at a scale whose string index exceeds the parallel
	// sort threshold, so the chunked sort+merge path is exercised too.
	cases := []struct {
		name  string
		scale float64
	}{{"xmark1", 0.25}, {"dblp", 0.02}, {"wiki", 0.02}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			xml, err := datagen.Generate(tc.name, tc.scale, 42)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			checkParallelEquivalence(t, xml, DefaultOptions())
		})
	}
}

// TestParallelBuildPathologicalShapes covers the shard planner's edge
// cases: a single giant subtree (the whole document is one spine
// chain), an all-attribute document (empty node shards, loaded attr
// chunks), an empty document, and a mixed-content document whose
// COMBINED values sit on the spine.
func TestParallelBuildPathologicalShapes(t *testing.T) {
	for _, tc := range shapeCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			checkParallelEquivalence(t, []byte(tc.xml), DefaultOptions())
			// Also with a subset of indexes, so absent structures stay
			// absent on the parallel path too.
			checkParallelEquivalence(t, []byte(tc.xml), Options{Double: true})
		})
	}
}

// TestParallelBuildDeepChain pins that the shard planner survives
// pathological nesting depth: a chain this deep puts (nearly) every
// node on the spine, which would overflow the goroutine stack with a
// recursive planner. The full Verify/snapshot equivalence check is
// skipped here — Verify is quadratic in depth — so this stays a cheap
// structural-equality test.
func TestParallelBuildDeepChain(t *testing.T) {
	const depth = 200_000
	var sb strings.Builder
	sb.Grow(depth * 9)
	sb.WriteString("<r>")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, "<d%d>", i%7)
	}
	sb.WriteString("42.5")
	for i := depth - 1; i >= 0; i-- {
		fmt.Fprintf(&sb, "</d%d>", i%7)
	}
	sb.WriteString("</r>")
	doc, err := xmlparse.Parse([]byte(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	opts := DefaultOptions()
	opts.Parallelism = 1
	serial := Build(doc, opts)
	opts.Parallelism = 4
	assertIndexesEqual(t, serial, Build(doc, opts))
}

// TestPlanShardsPartition pins the planner invariant everything else
// rests on: the spine and the shards' subtrees cover every node exactly
// once, and every shard subtree's parent lies on the spine side.
func TestPlanShardsPartition(t *testing.T) {
	xml, err := datagen.Generate("xmark1", 0.02, 7)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	doc, err := xmlparse.Parse(xml)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, workers := range parallelisms {
		spine, shards := planShards(doc, workers)
		seen := make([]int, doc.NumNodes())
		for _, n := range spine {
			seen[n]++
		}
		for _, shard := range shards {
			for _, root := range shard {
				end := root + xmltree.NodeID(doc.Size(root))
				for i := root; i <= end; i++ {
					seen[i]++
				}
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: node %d covered %d times", workers, i, c)
			}
		}
	}
}

// TestConcurrentLookupsDuringUpdates exercises the documented
// concurrency contract: the locked read entry points may interleave
// freely with text updates. Run under -race this is the regression test
// for the Indexes synchronization.
func TestConcurrentLookupsDuringUpdates(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "<item><price>%d.50</price><name>item %d</name></item>", i, i)
	}
	sb.WriteString("</root>")
	doc, err := xmlparse.Parse([]byte(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ix := Build(doc, DefaultOptions())
	var texts []xmltree.NodeID
	for i := 0; i < doc.NumNodes(); i++ {
		if doc.Kind(xmltree.NodeID(i)) == xmltree.Text {
			texts = append(texts, xmltree.NodeID(i))
		}
	}

	const readers = 4
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch i % 4 {
				case 0:
					ix.LookupString(fmt.Sprintf("item %d", i%400))
				case 1:
					ix.RangeDouble(0, 1000, true, true)
				case 2:
					ix.LookupDoubleEq(float64(i%400) + 0.5)
				case 3:
					ix.Stats()
				}
			}
		}(r)
	}
	for i := 0; i < 200; i++ {
		n := texts[(i*37)%len(texts)]
		if err := ix.UpdateText(n, fmt.Sprintf("%d.25", i)); err != nil {
			t.Errorf("update: %v", err)
			break
		}
	}
	close(done)
	wg.Wait()
	if err := ix.Verify(); err != nil {
		t.Fatalf("post-interleaving Verify: %v", err)
	}
}
