package xmlparse

import (
	"io"

	"repro/internal/xmltree"
)

// Serialize writes the document as XML to w. Text and attribute values are
// escaped; the output parses back (Parse ∘ Serialize = identity on the
// data model, up to adjacent-text merging which the builder already
// guarantees).
func Serialize(w io.Writer, d *xmltree.Doc) error {
	s := &serializer{w: w, d: d}
	root := d.Root()
	for c := d.FirstChild(root); c != xmltree.InvalidNode; c = d.NextSibling(c) {
		if err := s.node(c); err != nil {
			return err
		}
	}
	return s.flush()
}

// SerializeToBytes renders the document as XML in memory.
func SerializeToBytes(d *xmltree.Doc) ([]byte, error) {
	var sink bytesSink
	if err := Serialize(&sink, d); err != nil {
		return nil, err
	}
	return sink.b, nil
}

type bytesSink struct{ b []byte }

func (s *bytesSink) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

type serializer struct {
	w   io.Writer
	d   *xmltree.Doc
	buf []byte
}

func (s *serializer) flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	_, err := s.w.Write(s.buf)
	s.buf = s.buf[:0]
	return err
}

func (s *serializer) raw(b []byte) error {
	s.buf = append(s.buf, b...)
	if len(s.buf) >= 1<<16 {
		return s.flush()
	}
	return nil
}

func (s *serializer) rawString(str string) error {
	s.buf = append(s.buf, str...)
	if len(s.buf) >= 1<<16 {
		return s.flush()
	}
	return nil
}

func (s *serializer) node(n xmltree.NodeID) error {
	d := s.d
	switch d.Kind(n) {
	case xmltree.Text:
		return s.escapeText(d.ValueBytes(n))
	case xmltree.Comment:
		if err := s.rawString("<!--"); err != nil {
			return err
		}
		if err := s.rawString(d.Value(n)); err != nil {
			return err
		}
		return s.rawString("-->")
	case xmltree.PI:
		if err := s.rawString("<?" + d.Name(n)); err != nil {
			return err
		}
		if v := d.Value(n); v != "" {
			if err := s.rawString(" " + v); err != nil {
				return err
			}
		}
		return s.rawString("?>")
	case xmltree.Element:
		if err := s.rawString("<" + d.Name(n)); err != nil {
			return err
		}
		lo, hi := d.AttrRange(n)
		for a := lo; a < hi; a++ {
			if err := s.rawString(" " + d.AttrName(a) + "=\""); err != nil {
				return err
			}
			if err := s.escapeAttr(d.AttrValueBytes(a)); err != nil {
				return err
			}
			if err := s.rawString("\""); err != nil {
				return err
			}
		}
		first := d.FirstChild(n)
		if first == xmltree.InvalidNode {
			return s.rawString("/>")
		}
		if err := s.rawString(">"); err != nil {
			return err
		}
		for c := first; c != xmltree.InvalidNode; c = d.NextSibling(c) {
			if err := s.node(c); err != nil {
				return err
			}
		}
		return s.rawString("</" + d.Name(n) + ">")
	default:
		return nil
	}
}

func (s *serializer) escapeText(b []byte) error {
	last := 0
	for i, c := range b {
		var esc string
		switch c {
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '&':
			esc = "&amp;"
		case '\r':
			esc = "&#13;"
		default:
			continue
		}
		if err := s.raw(b[last:i]); err != nil {
			return err
		}
		if err := s.rawString(esc); err != nil {
			return err
		}
		last = i + 1
	}
	return s.raw(b[last:])
}

func (s *serializer) escapeAttr(b []byte) error {
	last := 0
	for i, c := range b {
		var esc string
		switch c {
		case '<':
			esc = "&lt;"
		case '&':
			esc = "&amp;"
		case '"':
			esc = "&quot;"
		case '\t':
			esc = "&#9;"
		case '\n':
			esc = "&#10;"
		case '\r':
			esc = "&#13;"
		default:
			continue
		}
		if err := s.raw(b[last:i]); err != nil {
			return err
		}
		if err := s.rawString(esc); err != nil {
			return err
		}
		last = i + 1
	}
	return s.raw(b[last:])
}
