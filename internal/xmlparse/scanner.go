// Package xmlparse implements the XML shredding substrate: a fast
// byte-oriented scanner, a parser that drives an xmltree.Builder (the
// "shredding" step whose cost Figure 9 of the paper measures index-creation
// overhead against), and a serializer that writes documents back out.
//
// The dialect is the subset of XML 1.0 needed by the paper's datasets:
// elements, attributes (single- or double-quoted), character data, CDATA
// sections, comments, processing instructions, the five predefined
// entities, and decimal/hex character references. DOCTYPE declarations are
// skipped; namespaces are not expanded (prefixes stay part of the name, as
// in most shredders).
package xmlparse

import (
	"fmt"
)

// tokenKind identifies a scanner token.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokStartTag
	tokEndTag
	tokText
	tokComment
	tokPI
)

// attr is a scanned attribute; values are raw (entities not yet decoded).
type attr struct {
	name string
	val  []byte
}

// token is one scanned XML event.
type token struct {
	kind tokenKind
	name string // tag name or PI target
	text []byte // raw text/comment/PI content (entities not decoded)

	attrs     []attr
	selfClose bool
}

// SyntaxError reports a scanning failure with a byte offset.
type SyntaxError struct {
	Off int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xmlparse: syntax error at byte %d: %s", e.Off, e.Msg)
}

// scanner walks the input byte slice, producing tokens without copying
// text content.
type scanner struct {
	in  []byte
	pos int

	// attrBuf is reused between start tags to avoid per-tag allocations.
	attrBuf []attr
}

func newScanner(in []byte) *scanner { return &scanner{in: in} }

func (s *scanner) errf(format string, args ...any) error {
	return &SyntaxError{Off: s.pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token. The returned token's byte slices alias the
// input and are valid until the next call mutates nothing — they alias the
// immutable input, so they stay valid; attrs alias the scanner's reusable
// buffer and are valid only until the next call.
func (s *scanner) next() (token, error) {
	if s.pos >= len(s.in) {
		return token{kind: tokEOF}, nil
	}
	if s.in[s.pos] != '<' {
		return s.scanText()
	}
	// Markup.
	if s.pos+1 >= len(s.in) {
		return token{}, s.errf("unexpected end after '<'")
	}
	switch s.in[s.pos+1] {
	case '/':
		return s.scanEndTag()
	case '!':
		return s.scanBang()
	case '?':
		return s.scanPI()
	default:
		return s.scanStartTag()
	}
}

func (s *scanner) scanText() (token, error) {
	start := s.pos
	for s.pos < len(s.in) && s.in[s.pos] != '<' {
		s.pos++
	}
	return token{kind: tokText, text: s.in[start:s.pos]}, nil
}

func (s *scanner) scanName() (string, error) {
	start := s.pos
	for s.pos < len(s.in) && isNameByte(s.in[s.pos], s.pos == start) {
		s.pos++
	}
	if s.pos == start {
		return "", s.errf("expected name")
	}
	return string(s.in[start:s.pos]), nil
}

func isNameByte(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':', b >= 0x80:
		return true
	case b >= '0' && b <= '9', b == '-', b == '.':
		return !first
	default:
		return false
	}
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func (s *scanner) skipSpace() {
	for s.pos < len(s.in) && isSpace(s.in[s.pos]) {
		s.pos++
	}
}

func (s *scanner) scanStartTag() (token, error) {
	s.pos++ // consume '<'
	name, err := s.scanName()
	if err != nil {
		return token{}, err
	}
	t := token{kind: tokStartTag, name: name, attrs: s.attrBuf[:0]}
	for {
		s.skipSpace()
		if s.pos >= len(s.in) {
			return token{}, s.errf("unterminated start tag <%s", name)
		}
		switch s.in[s.pos] {
		case '>':
			s.pos++
			s.attrBuf = t.attrs
			return t, nil
		case '/':
			if s.pos+1 >= len(s.in) || s.in[s.pos+1] != '>' {
				return token{}, s.errf("expected '/>' in tag <%s", name)
			}
			s.pos += 2
			t.selfClose = true
			s.attrBuf = t.attrs
			return t, nil
		}
		aname, err := s.scanName()
		if err != nil {
			return token{}, err
		}
		s.skipSpace()
		if s.pos >= len(s.in) || s.in[s.pos] != '=' {
			return token{}, s.errf("expected '=' after attribute %s", aname)
		}
		s.pos++
		s.skipSpace()
		if s.pos >= len(s.in) || (s.in[s.pos] != '"' && s.in[s.pos] != '\'') {
			return token{}, s.errf("expected quoted value for attribute %s", aname)
		}
		quote := s.in[s.pos]
		s.pos++
		vstart := s.pos
		for s.pos < len(s.in) && s.in[s.pos] != quote {
			s.pos++
		}
		if s.pos >= len(s.in) {
			return token{}, s.errf("unterminated value for attribute %s", aname)
		}
		t.attrs = append(t.attrs, attr{name: aname, val: s.in[vstart:s.pos]})
		s.pos++ // closing quote
	}
}

func (s *scanner) scanEndTag() (token, error) {
	s.pos += 2 // consume '</'
	name, err := s.scanName()
	if err != nil {
		return token{}, err
	}
	s.skipSpace()
	if s.pos >= len(s.in) || s.in[s.pos] != '>' {
		return token{}, s.errf("expected '>' in </%s", name)
	}
	s.pos++
	return token{kind: tokEndTag, name: name}, nil
}

func (s *scanner) scanBang() (token, error) {
	// <!-- comment -->, <![CDATA[ ... ]]>, or <!DOCTYPE ...>
	rest := s.in[s.pos:]
	switch {
	case hasPrefix(rest, "<!--"):
		end := indexOf(s.in, s.pos+4, "-->")
		if end < 0 {
			return token{}, s.errf("unterminated comment")
		}
		t := token{kind: tokComment, text: s.in[s.pos+4 : end]}
		s.pos = end + 3
		return t, nil
	case hasPrefix(rest, "<![CDATA["):
		end := indexOf(s.in, s.pos+9, "]]>")
		if end < 0 {
			return token{}, s.errf("unterminated CDATA section")
		}
		// CDATA is literal text: mark with name "CDATA" so the parser
		// skips entity decoding.
		t := token{kind: tokText, name: "CDATA", text: s.in[s.pos+9 : end]}
		s.pos = end + 3
		return t, nil
	case hasPrefix(rest, "<!DOCTYPE"):
		// Skip to the matching '>' tracking nested brackets of the
		// internal subset.
		depth := 0
		for i := s.pos; i < len(s.in); i++ {
			switch s.in[i] {
			case '[':
				depth++
			case ']':
				depth--
			case '>':
				if depth <= 0 {
					s.pos = i + 1
					return s.next()
				}
			}
		}
		return token{}, s.errf("unterminated DOCTYPE")
	default:
		return token{}, s.errf("unsupported markup declaration")
	}
}

func (s *scanner) scanPI() (token, error) {
	s.pos += 2 // consume '<?'
	name, err := s.scanName()
	if err != nil {
		return token{}, err
	}
	s.skipSpace()
	end := indexOf(s.in, s.pos, "?>")
	if end < 0 {
		return token{}, s.errf("unterminated processing instruction")
	}
	t := token{kind: tokPI, name: name, text: s.in[s.pos:end]}
	s.pos = end + 2
	if name == "xml" || name == "XML" {
		// XML declaration: not a node; skip.
		return s.next()
	}
	return t, nil
}

func hasPrefix(b []byte, p string) bool {
	if len(b) < len(p) {
		return false
	}
	for i := 0; i < len(p); i++ {
		if b[i] != p[i] {
			return false
		}
	}
	return true
}

func indexOf(b []byte, from int, sub string) int {
	c0 := sub[0]
	for i := from; i+len(sub) <= len(b); i++ {
		if b[i] == c0 && hasPrefix(b[i:], sub) {
			return i
		}
	}
	return -1
}
