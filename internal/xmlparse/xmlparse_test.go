package xmlparse

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

const personXML = `<?xml version="1.0"?>
<person><name><first>Arthur</first><family>Dent</family></name><birthday>1966-09-26</birthday><age><decades>4</decades>2<years/></age><weight><kilos>78</kilos>.<grams>230</grams></weight></person>`

func mustParse(t testing.TB, s string) *xmltree.Doc {
	t.Helper()
	d, err := ParseString(s)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d
}

func TestParsePersonPaperDocument(t *testing.T) {
	d := mustParse(t, personXML)
	if got := d.StringValue(d.Root()); got != "ArthurDent1966-09-264278.230" {
		t.Errorf("StringValue(doc) = %q", got)
	}
	s := d.CollectStats()
	if s.Elements != 11 || s.Texts != 8 {
		t.Errorf("stats = %+v", s)
	}
}

func TestParseAttributes(t *testing.T) {
	d := mustParse(t, `<item id="i1" cat='books &amp; more'>x</item>`)
	item := xmltree.NodeID(1)
	if a := d.FindAttr(item, "id"); a == xmltree.InvalidAttr || d.AttrValue(a) != "i1" {
		t.Error("id attribute wrong")
	}
	if a := d.FindAttr(item, "cat"); a == xmltree.InvalidAttr || d.AttrValue(a) != "books & more" {
		t.Errorf("cat attribute wrong: %q", d.AttrValue(d.FindAttr(item, "cat")))
	}
}

func TestParseEntities(t *testing.T) {
	d := mustParse(t, `<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</a>`)
	if got := d.StringValue(xmltree.NodeID(1)); got != `<tag> & "q" 'a' AB` {
		t.Errorf("entities = %q", got)
	}
}

func TestParseUnicodeCharRefs(t *testing.T) {
	d := mustParse(t, `<a>&#233;&#x20AC;&#x1F600;</a>`)
	if got := d.StringValue(xmltree.NodeID(1)); got != "é€😀" {
		t.Errorf("unicode refs = %q", got)
	}
}

func TestParseCDATA(t *testing.T) {
	d := mustParse(t, `<a>pre<![CDATA[<not & markup>]]>post</a>`)
	// CDATA merges with adjacent text into ONE text node (XDM).
	if n := d.NumNodes(); n != 3 {
		t.Errorf("NumNodes = %d, want 3 (doc, a, merged text)", n)
	}
	if got := d.StringValue(xmltree.NodeID(1)); got != "pre<not & markup>post" {
		t.Errorf("CDATA merge = %q", got)
	}
}

func TestAdjacentTextMerging(t *testing.T) {
	d := mustParse(t, `<a>one&amp;two<![CDATA[three]]>four</a>`)
	if n := d.NumNodes(); n != 3 {
		t.Errorf("NumNodes = %d, want 3", n)
	}
	if got := d.Value(xmltree.NodeID(2)); got != "one&twothreefour" {
		t.Errorf("merged text = %q", got)
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	d := mustParse(t, `<a><!-- hi --><?php echo ?>text</a>`)
	if d.Kind(2) != xmltree.Comment || d.Value(2) != " hi " {
		t.Errorf("comment = %v %q", d.Kind(2), d.Value(2))
	}
	if d.Kind(3) != xmltree.PI || d.Name(3) != "php" || d.Value(3) != "echo " {
		t.Errorf("pi = %v %q %q", d.Kind(3), d.Name(3), d.Value(3))
	}
	// With skip options they disappear.
	d2, err := ParseWith([]byte(`<a><!-- hi --><?php echo ?>text</a>`), Options{SkipComments: true, SkipPIs: true})
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumNodes() != 3 {
		t.Errorf("skip options: NumNodes = %d, want 3", d2.NumNodes())
	}
}

func TestParseDoctypeSkipped(t *testing.T) {
	d := mustParse(t, `<!DOCTYPE site SYSTEM "auction.dtd" [<!ENTITY x "y">]><site>ok</site>`)
	if got := d.StringValue(d.Root()); got != "ok" {
		t.Errorf("after DOCTYPE = %q", got)
	}
}

func TestStripWhitespace(t *testing.T) {
	in := "<a>\n  <b>x</b>\n  <b>y</b>\n</a>"
	d, err := ParseWith([]byte(in), Options{StripWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CollectStats().Texts; got != 2 {
		t.Errorf("stripped texts = %d, want 2", got)
	}
	d2 := mustParse(t, in)
	if got := d2.CollectStats().Texts; got != 5 {
		t.Errorf("unstripped texts = %d, want 5", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                      // no root
		`<a>`,                   // unclosed
		`</a>`,                  // unmatched end
		`<a></b>`,               // mismatched
		`<a><b></a></b>`,        // crossed
		`<a>&unknown;</a>`,      // bad entity
		`<a>&#xZZ;</a>`,         // bad char ref
		`<a attr></a>`,          // attr without value
		`<a attr=x></a>`,        // unquoted value
		`<a attr="x></a>`,       // unterminated value
		`<a><!-- nope</a>`,      // unterminated comment
		`<a><![CDATA[ x</a>`,    // unterminated cdata
		`<a>one</a><b>two</b>`,  // multiple roots
		`text<a>x</a>`,          // text before root
		`<a>x</a>trailing text`, // text after root
		`<`,                     // dangling <
		`<a x="1"`,              // EOF in tag
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestParseSerializeRoundTrip(t *testing.T) {
	in := `<site><regions><item id="i1" f="&quot;x&quot;">Books &amp; more<sub>1 &lt; 2</sub><!--c--><?p d?></item></regions></site>`
	d := mustParse(t, in)
	out, err := SerializeToBytes(d)
	if err != nil {
		t.Fatal(err)
	}
	d2 := mustParse(t, string(out))
	assertDocsEqual(t, d, d2)
}

// TestRandomRoundTrip: serialize(parse(serialize(doc))) is stable and the
// data models match — the parse∘serialize identity from DESIGN.md.
func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		d := randomDoc(rng)
		xml1, err := SerializeToBytes(d)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Parse(xml1)
		if err != nil {
			t.Fatalf("trial %d: reparse: %v\nxml: %s", trial, err, xml1)
		}
		assertDocsEqual(t, d, d2)
		xml2, err := SerializeToBytes(d2)
		if err != nil {
			t.Fatal(err)
		}
		if string(xml1) != string(xml2) {
			t.Fatalf("trial %d: serialization not stable:\n%s\nvs\n%s", trial, xml1, xml2)
		}
	}
}

func assertDocsEqual(t *testing.T, a, b *xmltree.Doc) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	if a.NumAttrs() != b.NumAttrs() {
		t.Fatalf("attr counts differ: %d vs %d", a.NumAttrs(), b.NumAttrs())
	}
	for i := 0; i < a.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if a.Kind(n) != b.Kind(n) || a.Name(n) != b.Name(n) || a.Value(n) != b.Value(n) ||
			a.Size(n) != b.Size(n) || a.Level(n) != b.Level(n) {
			t.Fatalf("node %d differs: %v %q %q vs %v %q %q", i,
				a.Kind(n), a.Name(n), a.Value(n), b.Kind(n), b.Name(n), b.Value(n))
		}
		alo, ahi := a.AttrRange(n)
		blo, bhi := b.AttrRange(n)
		if ahi-alo != bhi-blo {
			t.Fatalf("node %d attr counts differ", i)
		}
		for k := xmltree.AttrID(0); k < ahi-alo; k++ {
			if a.AttrName(alo+k) != b.AttrName(blo+k) || a.AttrValue(alo+k) != b.AttrValue(blo+k) {
				t.Fatalf("node %d attr %d differs", i, k)
			}
		}
	}
}

// randomDoc builds a random document that exercises escaping: text with
// markup characters, attributes with quotes, comments, PIs.
func randomDoc(rng *rand.Rand) *xmltree.Doc {
	b := xmltree.NewBuilder()
	var gen func(depth int)
	texts := []string{"plain", "a<b", "x&y", "q\"quote\"", "'apos'", "tab\tnl\n", "1 < 2 > 0 & 3", "émoji 😀", ""}
	gen = func(depth int) {
		n := rng.Intn(4)
		lastWasText := false
		for i := 0; i < n; i++ {
			switch r := rng.Intn(10); {
			case r < 4 && depth < 4:
				b.StartElement([]string{"a", "b", "item", "ns:tag"}[rng.Intn(4)])
				if rng.Intn(2) == 0 {
					b.Attribute("k", texts[rng.Intn(len(texts))])
				}
				gen(depth + 1)
				b.EndElement()
				lastWasText = false
			case r < 7:
				if lastWasText {
					continue // builder doesn't merge; keep model canonical
				}
				txt := texts[rng.Intn(len(texts))]
				if txt == "" {
					continue
				}
				b.Text(txt)
				lastWasText = true
			case r < 8:
				b.Comment("c" + texts[0])
				lastWasText = false
			default:
				b.PI("tgt", "data d")
				lastWasText = false
			}
		}
	}
	b.StartElement("root")
	gen(0)
	b.EndElement()
	d, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return d
}

func TestSerializeEmptyElements(t *testing.T) {
	d := mustParse(t, `<a><b/><c></c></a>`)
	out, err := SerializeToBytes(d)
	if err != nil {
		t.Fatal(err)
	}
	// Both forms serialize as self-closing.
	if got := string(out); got != `<a><b/><c/></a>` {
		t.Errorf("serialize = %q", got)
	}
}

func BenchmarkParse(b *testing.B) {
	in := []byte(strings.Repeat(`<item id="i1"><name>thing</name><price>12.50</price><desc>Words &amp; more words here</desc></item>`, 1000))
	doc := "<items>" + string(in) + "</items>"
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	in := "<items>" + strings.Repeat(`<item id="i1"><name>thing</name><price>12.50</price></item>`, 1000) + "</items>"
	d := mustParse(b, in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SerializeToBytes(d); err != nil {
			b.Fatal(err)
		}
	}
}
