package xmlparse

import (
	"fmt"

	"repro/internal/xmltree"
)

// Options configure parsing (shredding).
type Options struct {
	// StripWhitespaceText drops text nodes consisting solely of XML
	// whitespace (pretty-printing indentation). Off by default: the XQuery
	// data model preserves boundary whitespace.
	StripWhitespaceText bool
	// SkipComments drops comment nodes.
	SkipComments bool
	// SkipPIs drops processing-instruction nodes.
	SkipPIs bool
}

// Parse shreds the XML byte slice into an xmltree.Doc using default
// options.
func Parse(in []byte) (*xmltree.Doc, error) { return ParseWith(in, Options{}) }

// ParseString shreds an XML string.
func ParseString(in string) (*xmltree.Doc, error) { return ParseWith([]byte(in), Options{}) }

// ParseWith shreds the XML byte slice with explicit options. Adjacent
// character data (including CDATA sections and resolved entities) merges
// into a single text node, per the XQuery data model.
func ParseWith(in []byte, opts Options) (*xmltree.Doc, error) {
	s := newScanner(in)
	b := xmltree.NewBuilder()
	var stack []string
	var textBuf []byte // pending character data, merged across tokens
	sawContent := false

	flushText := func() {
		if len(textBuf) == 0 {
			return
		}
		// Whitespace outside the root element is not a node (non-space
		// there was already rejected); inside, whitespace-only runs are
		// dropped when configured.
		if len(stack) > 0 && !(opts.StripWhitespaceText && allSpace(textBuf)) {
			b.TextBytes(textBuf)
		}
		textBuf = textBuf[:0]
	}

	for {
		tok, err := s.next()
		if err != nil {
			return nil, err
		}
		switch tok.kind {
		case tokEOF:
			if len(stack) > 0 {
				return nil, fmt.Errorf("xmlparse: unexpected EOF, %d unclosed elements (innermost <%s>)", len(stack), stack[len(stack)-1])
			}
			if !sawContent {
				return nil, fmt.Errorf("xmlparse: no root element")
			}
			flushText()
			return b.Finish()

		case tokStartTag:
			if len(stack) == 0 && sawContent {
				return nil, fmt.Errorf("xmlparse: multiple root elements (<%s>)", tok.name)
			}
			flushText()
			sawContent = true
			b.StartElement(tok.name)
			for _, a := range tok.attrs {
				v, err := decodeEntities(a.val, s)
				if err != nil {
					return nil, err
				}
				b.Attribute(a.name, string(v))
			}
			if tok.selfClose {
				b.EndElement()
			} else {
				stack = append(stack, tok.name)
			}

		case tokEndTag:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlparse: unmatched </%s>", tok.name)
			}
			if top := stack[len(stack)-1]; top != tok.name {
				return nil, fmt.Errorf("xmlparse: mismatched </%s>, open element is <%s>", tok.name, top)
			}
			flushText()
			stack = stack[:len(stack)-1]
			b.EndElement()

		case tokText:
			if tok.name == "CDATA" {
				textBuf = append(textBuf, tok.text...)
				break
			}
			decoded, err := decodeEntities(tok.text, s)
			if err != nil {
				return nil, err
			}
			if len(stack) == 0 && !allSpace(decoded) {
				return nil, fmt.Errorf("xmlparse: character data outside root element")
			}
			textBuf = append(textBuf, decoded...)

		case tokComment:
			if opts.SkipComments {
				break
			}
			if len(stack) == 0 {
				break // prolog/epilog comments are not document children here
			}
			flushText()
			b.Comment(string(tok.text))

		case tokPI:
			if opts.SkipPIs {
				break
			}
			if len(stack) == 0 {
				break
			}
			flushText()
			b.PI(tok.name, string(tok.text))
		}
	}
}

func allSpace(b []byte) bool {
	for _, c := range b {
		if !isSpace(c) {
			return false
		}
	}
	return true
}

// decodeEntities resolves the predefined entities and character references
// in raw. If raw contains no '&', it is returned unchanged (no copy).
func decodeEntities(raw []byte, s *scanner) ([]byte, error) {
	amp := -1
	for i, c := range raw {
		if c == '&' {
			amp = i
			break
		}
	}
	if amp < 0 {
		return raw, nil
	}
	out := make([]byte, 0, len(raw))
	out = append(out, raw[:amp]...)
	for i := amp; i < len(raw); {
		c := raw[i]
		if c != '&' {
			out = append(out, c)
			i++
			continue
		}
		end := -1
		for j := i + 1; j < len(raw) && j < i+12; j++ {
			if raw[j] == ';' {
				end = j
				break
			}
		}
		if end < 0 {
			return nil, &SyntaxError{Off: s.pos, Msg: "unterminated entity reference"}
		}
		ent := string(raw[i+1 : end])
		switch ent {
		case "lt":
			out = append(out, '<')
		case "gt":
			out = append(out, '>')
		case "amp":
			out = append(out, '&')
		case "apos":
			out = append(out, '\'')
		case "quot":
			out = append(out, '"')
		default:
			if len(ent) > 1 && ent[0] == '#' {
				r, err := parseCharRef(ent[1:])
				if err != nil {
					return nil, &SyntaxError{Off: s.pos, Msg: err.Error()}
				}
				out = appendRune(out, r)
			} else {
				return nil, &SyntaxError{Off: s.pos, Msg: "unknown entity &" + ent + ";"}
			}
		}
		i = end + 1
	}
	return out, nil
}

func parseCharRef(s string) (rune, error) {
	var v rune
	if len(s) > 1 && (s[0] == 'x' || s[0] == 'X') {
		for _, c := range s[1:] {
			switch {
			case c >= '0' && c <= '9':
				v = v*16 + (c - '0')
			case c >= 'a' && c <= 'f':
				v = v*16 + (c - 'a' + 10)
			case c >= 'A' && c <= 'F':
				v = v*16 + (c - 'A' + 10)
			default:
				return 0, fmt.Errorf("bad hex character reference &#%s;", s)
			}
			if v > 0x10FFFF {
				return 0, fmt.Errorf("character reference out of range")
			}
		}
		return v, nil
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad character reference &#%s;", s)
		}
		v = v*10 + (c - '0')
		if v > 0x10FFFF {
			return 0, fmt.Errorf("character reference out of range")
		}
	}
	return v, nil
}

// appendRune appends the UTF-8 encoding of r to b.
func appendRune(b []byte, r rune) []byte {
	switch {
	case r < 0x80:
		return append(b, byte(r))
	case r < 0x800:
		return append(b, byte(0xC0|r>>6), byte(0x80|r&0x3F))
	case r < 0x10000:
		return append(b, byte(0xE0|r>>12), byte(0x80|r>>6&0x3F), byte(0x80|r&0x3F))
	default:
		return append(b, byte(0xF0|r>>18), byte(0x80|r>>12&0x3F), byte(0x80|r>>6&0x3F), byte(0x80|r&0x3F))
	}
}
