package xmlparse

import (
	"bytes"
	"testing"
)

// FuzzShred fuzzes the shredder with arbitrary bytes. Properties:
//
//  1. Parse never panics — malformed input returns an error.
//  2. parse→serialize→parse is a fixpoint: the first serialization
//     resolves entities and normalises quoting, and from then on the
//     data model and its serialization are stable byte for byte.
//
// Seed corpus: f.Add seeds below plus the files checked in under
// testdata/fuzz/FuzzShred.
func FuzzShred(f *testing.F) {
	for _, seed := range []string{
		`<r/>`,
		`<r a="1" b="x&amp;y"><c>text</c><!--n--><?pi d?></r>`,
		`<r>&#65;&lt;tag&gt; mixed 3.5 <v>2009-03-24</v> tail</r>`,
		`<r><![CDATA[raw <markup> & entities]]></r>`,
		`<a><b><c attr="&quot;deep&quot;">x</c></b>` + "\r\n" + `</a>`,
		`<r>` + "\xc3\xa9\xe4\xb8\xad" + `</r>`, // multi-byte UTF-8
		`<r><empty/><empty></empty>07</r>`,
		`no xml at all`,
		`<unclosed>`,
		`<r><mismatch></wrong></r>`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data) // must not panic
		if err != nil {
			return
		}
		s1, err := SerializeToBytes(doc)
		if err != nil {
			t.Fatalf("serialize of parsed doc: %v (input %q)", err, data)
		}
		doc2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse of serialized output: %v\ninput:  %q\noutput: %q", err, data, s1)
		}
		s2, err := SerializeToBytes(doc2)
		if err != nil {
			t.Fatalf("second serialize: %v", err)
		}
		if !bytes.Equal(s1, s2) {
			t.Fatalf("serialize fixpoint violated:\ninput: %q\n s1: %q\n s2: %q", data, s1, s2)
		}
		// The option'd parses must not panic either (their output can
		// legitimately differ — dropped nodes — so only the no-panic
		// property is checked).
		for _, opts := range []Options{
			{StripWhitespaceText: true},
			{SkipComments: true, SkipPIs: true},
			{StripWhitespaceText: true, SkipComments: true, SkipPIs: true},
		} {
			if optDoc, err := ParseWith(data, opts); err == nil {
				if _, err := SerializeToBytes(optDoc); err != nil {
					t.Fatalf("serialize with %+v: %v", opts, err)
				}
			}
		}
	})
}
