package replica_test

// End-to-end replication tests over a loopback leader: the follower-
// equals-leader property (byte-identical snapshots at every record
// boundary under a mixed update storm), crash injection on the
// follower's own WAL mid-apply (restart resumes from the durable
// position with no duplicate or missing record), and the retention-gap
// failover path (410 → full re-seed from /v1/snapshot).

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	xmlvi "repro"
	"repro/internal/replica"
	"repro/internal/server"
)

const seedXML = `<site>
  <items>
    <item id="i1"><name>alpha</name><quantity>3</quantity></item>
    <item id="i2"><name>beta</name><quantity>7</quantity></item>
    <item id="i3"><name>gamma</name><quantity>5</quantity></item>
  </items>
</site>`

// newLeader serves one durable document ("site") over a loopback
// listener and returns the server, the document, and its durable pair.
func newLeader(t *testing.T, cfg server.Config) (*httptest.Server, *xmlvi.Document, string, string) {
	t.Helper()
	dir := t.TempDir()
	snap := filepath.Join(dir, "leader.xvi")
	wal := filepath.Join(dir, "leader.wal")
	doc, err := xmlvi.ParseWithOptions([]byte(seedXML), xmlvi.Options{StripWhitespace: true, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Save(snap); err != nil { // StartDurable: baseline + log
		t.Fatal(err)
	}
	srv := server.New(cfg)
	if err := srv.AddDocumentWithOptions("site", doc,
		server.DocOptions{SnapshotPath: snap, WALPath: wal}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("leader close: %v", err)
		}
	})
	return ts, doc, snap, wal
}

// startFollower opens a durable follower against the leader and drives
// its subscription; the returned stop tears it down (idempotent).
func startFollower(t *testing.T, leaderURL, stateDir string) (*replica.Follower, func()) {
	t.Helper()
	f := replica.New(replica.Config{
		LeaderURL: leaderURL,
		Doc:       "site",
		StateDir:  stateDir,
		Logf:      t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	if err := f.Open(ctx); err != nil {
		cancel()
		t.Fatalf("follower open: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx) //nolint:errcheck // returns on cancel
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	return f, stop
}

// storm drives a mixed sequence of commits — text batches, attribute
// updates, fragment insertions, subtree deletions — directly on the
// leader document; every call publishes exactly one version.
func storm(t *testing.T, doc *xmlvi.Document, commits int) {
	t.Helper()
	texts := func(i int) {
		var ups []xmlvi.TextUpdate
		for j, q := range doc.FindAll("quantity") {
			if j == 2 {
				break
			}
			ups = append(ups, xmlvi.TextUpdate{Node: doc.Children(q)[0], Value: fmt.Sprintf("%d", 10+i+j)})
		}
		if err := doc.UpdateTexts(ups); err != nil {
			t.Fatalf("storm %d: texts: %v", i, err)
		}
	}
	for i := 0; i < commits; i++ {
		switch i % 5 {
		case 0, 3:
			texts(i)
		case 1:
			it := doc.Find("item")
			a := doc.FindAttr(it, "id")
			if a < 0 {
				t.Fatalf("storm %d: first item has no id attribute", i)
			}
			if err := doc.UpdateAttr(a, fmt.Sprintf("id-%d", i)); err != nil {
				t.Fatalf("storm %d: attr: %v", i, err)
			}
		case 2:
			items := doc.Find("items")
			frag := fmt.Sprintf(`<item id="x%d"><name>extra%d</name><quantity>9</quantity></item>`, i, i)
			if _, err := doc.InsertXML(items, 0, frag); err != nil {
				t.Fatalf("storm %d: insert: %v", i, err)
			}
		case 4:
			if err := doc.Delete(doc.Find("item")); err != nil {
				t.Fatalf("storm %d: delete: %v", i, err)
			}
		}
	}
}

// pinBytes serialises a pinned version to its plain snapshot encoding.
func pinBytes(t *testing.T, p *xmlvi.Pinned) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pin.xvi")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// waitVersion polls until the follower's document reaches version.
func waitVersion(t *testing.T, f *replica.Follower, version uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if v := f.Document().Version(); v >= version {
			if v > version {
				t.Fatalf("follower overshot: version %d, want %d", v, version)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at version %d, want %d (leader seen %d)",
				f.Document().Version(), version, f.LeaderSeen())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFollowerEquivalence is the follower-equals-leader property: under
// a mixed update storm, the follower's state at every record boundary is
// byte-identical to the leader's state at the same version — checked
// against xmlvi.OpenAt replaying the leader's own durable log to each
// version.
func TestFollowerEquivalence(t *testing.T) {
	ts, doc, snap, wal := newLeader(t, server.Config{})
	f, stop := startFollower(t, ts.URL, t.TempDir())

	// Capture the follower's bytes at every applied record boundary. The
	// commit hook runs synchronously inside the apply, so the pin is
	// exactly the just-published version.
	capDir := t.TempDir()
	var (
		mu      sync.Mutex
		got     = map[uint64][]byte{}
		hookErr error
	)
	got[f.Document().Version()] = pinBytes(t, f.Document().Pin()) // the seed boundary
	f.OnCommit(func(c xmlvi.Change) {
		p := f.Document().Pin()
		path := filepath.Join(capDir, fmt.Sprintf("v%d.xvi", c.Version))
		err := p.Save(path)
		var b []byte
		if err == nil {
			b, err = os.ReadFile(path)
		}
		mu.Lock()
		defer mu.Unlock()
		if err != nil && hookErr == nil {
			hookErr = err
			return
		}
		if p.Version() != c.Version {
			hookErr = fmt.Errorf("pin after apply at version %d, change says %d", p.Version(), c.Version)
			return
		}
		got[c.Version] = b
	})

	const commits = 40
	storm(t, doc, commits)
	leaderV := doc.Version()
	waitVersion(t, f, leaderV)
	stop()
	if hookErr != nil {
		t.Fatal(hookErr)
	}

	for v := uint64(1); v <= leaderV; v++ {
		fb, ok := got[v]
		if !ok {
			t.Fatalf("follower never published version %d", v)
		}
		hist, err := xmlvi.OpenAt(snap, wal, v)
		if err != nil {
			t.Fatalf("OpenAt leader version %d: %v", v, err)
		}
		lb := pinBytes(t, hist.Pin())
		if !bytes.Equal(fb, lb) {
			t.Fatalf("version %d: follower snapshot (%d bytes) differs from leader's (%d bytes)",
				v, len(fb), len(lb))
		}
	}
}

// TestFollowerCrashMidApply injects crashes into the follower's own
// durable log — truncating its tail at arbitrary byte offsets, torn
// records included — and checks that a restarted follower recovers to a
// record boundary, resumes from its durable position, and converges to
// the leader byte-for-byte with no duplicate or missing record.
func TestFollowerCrashMidApply(t *testing.T) {
	ts, doc, _, _ := newLeader(t, server.Config{})
	stateDir := t.TempDir()
	f, stop := startFollower(t, ts.URL, stateDir)

	storm(t, doc, 24)
	leaderV := doc.Version()
	waitVersion(t, f, leaderV)
	stop() // clean shutdown: the follower's WAL is synced and complete

	walPath := filepath.Join(stateDir, "wal.log")
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	want := pinBytes(t, doc.Pin())

	// Each cut re-creates the same crash scene from the pristine log: a
	// follower that died with the last record(s) torn or missing.
	for _, cut := range []int{1, 5, 9, 33, 121, 1025} {
		if cut >= len(full) {
			continue
		}
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			if err := os.WriteFile(walPath, full[:len(full)-cut], 0o644); err != nil {
				t.Fatal(err)
			}
			f2, stop2 := startFollower(t, ts.URL, stateDir)
			if v := f2.Document().Version(); v > leaderV {
				t.Fatalf("recovered beyond the leader: version %d > %d", v, leaderV)
			}
			waitVersion(t, f2, leaderV)
			if b := pinBytes(t, f2.Document().Pin()); !bytes.Equal(b, want) {
				t.Fatalf("after crash at -%d bytes: follower differs from leader at version %d", cut, leaderV)
			}
			if r := f2.Reseeds(); r != 0 {
				t.Fatalf("crash recovery took %d re-seeds, want resume from the durable position", r)
			}
			stop2()
		})
	}
}

// TestFollowerFailoverReseed forces the follower past the leader's watch
// retention window: its resume position answers 410, and the follower
// must re-seed from a full snapshot, converge, and stay durable across a
// further restart.
func TestFollowerFailoverReseed(t *testing.T) {
	ts, doc, _, _ := newLeader(t, server.Config{WatchRetention: 4})
	stateDir := t.TempDir()

	f, stop := startFollower(t, ts.URL, stateDir)
	storm(t, doc, 6)
	waitVersion(t, f, doc.Version())
	stop() // follower goes offline in sync with the leader

	// The leader advances far past the retention window while the
	// follower is down: its resume token is now unservable.
	storm(t, doc, 12)
	leaderV := doc.Version()

	f2, stop2 := startFollower(t, ts.URL, stateDir)
	waitVersion(t, f2, leaderV)
	if r := f2.Reseeds(); r != 1 {
		t.Fatalf("follower re-seeded %d times, want exactly 1", r)
	}
	if b := pinBytes(t, f2.Document().Pin()); !bytes.Equal(b, pinBytes(t, doc.Pin())) {
		t.Fatal("re-seeded follower differs from leader")
	}
	stop2()

	// The re-seed rewrote the follower's durable pair as one unit: a
	// plain restart recovers from it without another re-seed.
	f3, stop3 := startFollower(t, ts.URL, stateDir)
	if v := f3.Document().Version(); v != leaderV {
		t.Fatalf("restart after re-seed recovered version %d, want %d", v, leaderV)
	}
	if r := f3.Reseeds(); r != 0 {
		t.Fatalf("restart after re-seed re-seeded again (%d times)", r)
	}
	stop3()
}
