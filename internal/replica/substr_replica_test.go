package replica_test

// Follower-side test of the versioned substring index: the q-gram index
// rides the seed snapshot to the follower, every shipped WAL record
// maintains it at the matching version boundary, and the follower
// answers contains() queries exactly like the leader at the same
// version — never from a stale build.

import (
	"fmt"
	"testing"

	xmlvi "repro"
	"repro/internal/server"
)

func TestFollowerSubstringStaysFresh(t *testing.T) {
	ts, doc, _, _ := newLeader(t, server.Config{})
	// Enable the index before the follower seeds: /v1/snapshot
	// serializes the live version, substring section included.
	doc.EnableSubstringIndex()
	f, _ := startFollower(t, ts.URL, t.TempDir())

	fdoc := f.Document()
	if !fdoc.HasSubstringIndex() {
		t.Fatal("follower did not inherit the substring index from the seed snapshot")
	}
	sameAnswers := func(pattern string) {
		t.Helper()
		leader := doc.Contains(pattern)
		follower := fdoc.Contains(pattern)
		if len(leader) != len(follower) {
			t.Fatalf("Contains(%q): leader %d hits, follower %d", pattern, len(leader), len(follower))
		}
	}
	sameAnswers("alpha")
	sameAnswers("beta")

	// Leader commits ride the shipped WAL records into the follower's
	// substring index — text updates, inserts, and deletes alike.
	items := doc.FindAll("name")
	if err := doc.UpdateTexts([]xmlvi.TextUpdate{
		{Node: doc.Children(items[0])[0], Value: "replaced-one"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.InsertXML(doc.Find("items"), 0,
		`<item id="x1"><name>shipped-fresh</name><quantity>2</quantity></item>`); err != nil {
		t.Fatal(err)
	}
	if err := doc.Delete(doc.Find("item")); err != nil {
		t.Fatal(err)
	}
	waitVersion(t, f, doc.Version())

	if hits := fdoc.Contains("alpha"); len(hits) != 0 {
		t.Fatalf("follower substring index is stale: still finds %q (%d hits)", "alpha", len(hits))
	}
	for _, pattern := range []string{"replaced-one", "beta", "shipped-fresh", "gamma"} {
		sameAnswers(pattern)
	}

	// And the planner drives it on the follower too: contains() through
	// the follower's query path matches the leader's answers.
	for i := 0; i < 3; i++ {
		q := fmt.Sprintf(`//item[contains(name/text(), "%s")]`, []string{"replaced", "beta", "shipped"}[i])
		lres, err := doc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		fres, err := fdoc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(lres) != len(fres) {
			t.Fatalf("%s: leader %d hits, follower %d", q, len(lres), len(fres))
		}
	}
	if err := fdoc.Verify(); err != nil {
		t.Fatalf("follower index consistency: %v", err)
	}
}
