// Package replica implements WAL log shipping over the xvid protocol: a
// Follower subscribes to a leader's /v1/watch stream with ?payload=1 —
// each event then carries the canonical write-ahead-log record of one
// commit — and applies every record through xmlvi.Document.ApplyChange
// at exactly the matching version boundary. The follower's document is
// byte-for-byte the leader's at every record boundary, readable through
// the same lock-free MVCC snapshot path, and (with a state directory)
// durable under its own snapshot/log pair: each shipped record is
// appended to the follower's log before it is published, so a crash
// mid-apply recovers to exactly the prefix it durably applied and the
// subscription resumes from there with no duplicate or missing record.
//
// When the leader reports the resume position as gone (HTTP 410 or a
// resume_gone stream error — the follower fell behind the watch
// retention window), the follower re-seeds: it fetches a full snapshot
// from /v1/snapshot, swaps in a fresh document at the leader's version,
// and re-subscribes from there. The server reads the document through
// the FollowerSource interface on every request, so the swap is one
// atomic pointer exchange; its watch hub detects the version jump and
// answers downstream resumers with resume_gone in turn.
package replica

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	xmlvi "repro"
)

// Config configures a Follower.
type Config struct {
	// LeaderURL is the leader server's base URL (http://host:port).
	LeaderURL string
	// Doc names the document on the leader; may be empty when the leader
	// serves exactly one.
	Doc string
	// StateDir, when set, makes the follower durable: it keeps its own
	// snapshot/WAL pair (snapshot.xvi + wal.log) there, recovers from it
	// on restart, and resumes the subscription from the recovered
	// version. When empty the follower is ephemeral and seeds itself from
	// the leader on every start.
	StateDir string
	// SyncEvery batches the follower log's fsyncs (xmlvi
	// Options.WALSyncEvery); 0 syncs after every applied record.
	SyncEvery int
	// Client issues the HTTP requests; it must not set a global Timeout
	// (watch streams are long-lived). Defaults to a fresh http.Client.
	Client *http.Client
	// Logf receives progress and retry diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Follower is one replicated document: create with New, initialise with
// Open, serve it (it implements server.FollowerSource), and drive the
// subscription with Run.
type Follower struct {
	cfg Config

	// doc is the current document, swapped wholesale by a re-seed; nil
	// until Open succeeds.
	doc atomic.Pointer[xmlvi.Document]

	// leaderSeen is the highest leader version observed on the stream —
	// from hello (the leader's current position) or any change event,
	// applied or not.
	leaderSeen atomic.Uint64

	applied atomic.Uint64
	reseeds atomic.Uint64

	// mu serializes document swaps against OnCommit rewiring.
	mu       sync.Mutex
	onCommit func(xmlvi.Change)
}

// New returns an unopened follower.
func New(cfg Config) *Follower {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cfg.LeaderURL = strings.TrimRight(cfg.LeaderURL, "/")
	return &Follower{cfg: cfg}
}

// Document returns the follower's current document (nil before Open).
func (f *Follower) Document() *xmlvi.Document { return f.doc.Load() }

// LeaderSeen reports the highest leader version observed on the
// subscription, applied or not.
func (f *Follower) LeaderSeen() uint64 { return f.leaderSeen.Load() }

// Applied reports the number of shipped records applied since start.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// Reseeds reports how many full re-seeds retention gaps have forced.
func (f *Follower) Reseeds() uint64 { return f.reseeds.Load() }

// OnCommit installs fn as the commit observer of the current document
// and of every document a re-seed swaps in (nil clears it).
func (f *Follower) OnCommit(fn func(xmlvi.Change)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.onCommit = fn
	if d := f.doc.Load(); d != nil {
		d.OnCommit(fn)
	}
}

// swapDoc publishes d as the current document, wiring the commit
// observer, and closes the replaced one.
func (f *Follower) swapDoc(d *xmlvi.Document) {
	f.mu.Lock()
	defer f.mu.Unlock()
	old := f.doc.Load()
	d.OnCommit(f.onCommit)
	f.doc.Store(d)
	if old != nil {
		old.OnCommit(nil)
		old.Close() //nolint:errcheck // superseded state
	}
}

// snapshotPath and walPath name the durable pair inside StateDir.
func (f *Follower) snapshotPath() string { return filepath.Join(f.cfg.StateDir, "snapshot.xvi") }
func (f *Follower) walPath() string      { return filepath.Join(f.cfg.StateDir, "wal.log") }

// Open initialises the follower's document: recover from the state
// directory when it holds a snapshot, seed from the leader otherwise.
// Call once before serving or Run; Run calls it if needed.
func (f *Follower) Open(ctx context.Context) error {
	if f.doc.Load() != nil {
		return nil
	}
	if f.cfg.StateDir != "" {
		if _, err := os.Stat(f.snapshotPath()); err == nil {
			doc, err := xmlvi.OpenDurableWithOptions(f.snapshotPath(), f.walPath(),
				xmlvi.Options{WALSyncEvery: f.cfg.SyncEvery})
			if err != nil {
				return fmt.Errorf("replica: recover %s: %w", f.cfg.StateDir, err)
			}
			f.swapDoc(doc)
			f.cfg.Logf("replica: recovered %s at version %d", f.cfg.Doc, doc.Version())
			return nil
		}
	}
	return f.seed(ctx)
}

// seed fetches a full snapshot from the leader and swaps in a fresh
// document at the leader's version. With a state directory the seed
// becomes the follower's own durable pair (baseline snapshot written,
// log attached and truncated); without one the document stays in
// memory.
func (f *Follower) seed(ctx context.Context) error {
	u := f.cfg.LeaderURL + "/v1/snapshot"
	if f.cfg.Doc != "" {
		u += "?doc=" + url.QueryEscape(f.cfg.Doc)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: seed: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: seed: leader answered %s: %s", resp.Status, readErrorBody(resp.Body))
	}
	version, _ := strconv.ParseUint(resp.Header.Get("X-Xvid-Version"), 10, 64)

	dir := f.cfg.StateDir
	if dir == "" {
		dir = os.TempDir()
	}
	tmp, err := os.CreateTemp(dir, "seed-*.xvi")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	_, cpErr := io.Copy(tmp, resp.Body)
	if err := tmp.Close(); cpErr == nil {
		cpErr = err
	}
	if cpErr != nil {
		return fmt.Errorf("replica: seed: fetch snapshot: %w", cpErr)
	}

	var doc *xmlvi.Document
	if f.cfg.StateDir != "" {
		doc, err = xmlvi.LoadWithOptions(tmp.Name(), xmlvi.Options{
			WAL: f.walPath(), WALSyncEvery: f.cfg.SyncEvery,
		})
		if err == nil {
			// The first Save writes the baseline snapshot and attaches
			// (truncating) the log — a stale pair from before the re-seed
			// is overwritten as one unit.
			err = doc.Save(f.snapshotPath())
		}
	} else {
		doc, err = xmlvi.Load(tmp.Name())
	}
	if err != nil {
		return fmt.Errorf("replica: seed: %w", err)
	}
	if leader := f.leaderSeen.Load(); version > leader {
		f.leaderSeen.Store(version)
	}
	f.swapDoc(doc)
	f.cfg.Logf("replica: seeded %s at leader version %d", f.cfg.Doc, doc.Version())
	return nil
}

// Backoff bounds for the retry loop.
const (
	minBackoff = 100 * time.Millisecond
	maxBackoff = 3 * time.Second
)

// errReseed signals that the resume position is gone from the leader's
// retention window and only a full re-seed can resynchronise.
var errReseed = errors.New("replica: resume position gone, re-seed required")

// Run drives the subscription until ctx is cancelled: open (or recover),
// subscribe from the current version, apply shipped records in order,
// and on any failure back off and reconnect — re-seeding from a full
// snapshot when the leader reports the resume position gone. On return
// the follower's document is closed (its log synced and detached);
// readers holding pinned snapshots are unaffected.
func (f *Follower) Run(ctx context.Context) error {
	defer func() {
		if d := f.doc.Load(); d != nil {
			d.Close() //nolint:errcheck // shutdown path
		}
	}()
	backoff := time.Duration(0)
	for {
		if err := sleepCtx(ctx, backoff); err != nil {
			return nil
		}
		if err := f.Open(ctx); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			f.cfg.Logf("replica: %v", err)
			backoff = nextBackoff(backoff)
			continue
		}
		n, err := f.stream(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if errors.Is(err, errReseed) {
			f.reseeds.Add(1)
			f.cfg.Logf("replica: %s fell behind the leader's retention window, re-seeding", f.cfg.Doc)
			if err := f.seed(ctx); err != nil && ctx.Err() == nil {
				f.cfg.Logf("replica: %v", err)
			}
		} else if err != nil {
			f.cfg.Logf("replica: stream: %v", err)
		}
		if n > 0 {
			backoff = 0 // made progress: reconnect immediately
		} else {
			backoff = nextBackoff(backoff)
		}
	}
}

// stream opens one watch subscription from the document's current
// version and applies events until the connection fails, returning the
// number of records applied. errReseed reports an unresumable position.
func (f *Follower) stream(ctx context.Context) (applied int, err error) {
	doc := f.doc.Load()
	u := fmt.Sprintf("%s/v1/watch?payload=1&from=%d", f.cfg.LeaderURL, doc.Version())
	if f.cfg.Doc != "" {
		u += "&doc=" + url.QueryEscape(f.cfg.Doc)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return 0, errReseed
	default:
		return 0, fmt.Errorf("leader answered %s: %s", resp.Status, readErrorBody(resp.Body))
	}

	sc := newEventScanner(resp.Body)
	for {
		ev, err := sc.next()
		if err != nil {
			return applied, err
		}
		switch ev.name {
		case "hello":
			var h wireHello
			if err := json.Unmarshal(ev.data, &h); err != nil {
				return applied, fmt.Errorf("bad hello event: %w", err)
			}
			f.observeLeader(uint64(h.Current))
		case "change":
			var c wireChange
			if err := json.Unmarshal(ev.data, &c); err != nil {
				return applied, fmt.Errorf("bad change event: %w", err)
			}
			f.observeLeader(uint64(c.Version))
			if uint64(c.Version) <= doc.Version() {
				continue // duplicate from a resumed stream
			}
			change, err := c.toChange()
			if err != nil {
				return applied, err
			}
			if err := doc.ApplyChange(change); err != nil {
				// A version gap means this stream skipped records (or the
				// document moved underneath us); reconnecting from the
				// document's version resynchronises.
				return applied, fmt.Errorf("apply version %d: %w", change.Version, err)
			}
			f.applied.Add(1)
			applied++
		case "error":
			var e wireError
			if err := json.Unmarshal(ev.data, &e); err == nil && e.Error.Code == "resume_gone" {
				return applied, errReseed
			}
			return applied, fmt.Errorf("leader stream error: %s", ev.data)
		}
	}
}

// observeLeader advances leaderSeen monotonically.
func (f *Follower) observeLeader(v uint64) {
	for {
		cur := f.leaderSeen.Load()
		if v <= cur || f.leaderSeen.CompareAndSwap(cur, v) {
			return
		}
	}
}

func nextBackoff(d time.Duration) time.Duration {
	if d == 0 {
		return minBackoff
	}
	if d *= 2; d > maxBackoff {
		return maxBackoff
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- wire decoding (the xvid protocol's JSON, locally declared like
// other protocol clients so internal/server stays import-free) ---

// wireToken accepts the protocol's version tokens ("42" or 42).
type wireToken uint64

func (t *wireToken) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return fmt.Errorf("invalid version token %s", b)
	}
	*t = wireToken(v)
	return nil
}

type wireHello struct {
	Doc     string    `json:"doc"`
	Version wireToken `json:"version"`
	Current wireToken `json:"current"`
}

type wireChange struct {
	Version wireToken `json:"version"`
	Kind    string    `json:"kind"`
	Ops     int       `json:"ops"`
	Payload string    `json:"payload"`
}

type wireError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// toChange decodes a change event into the public Change the document
// applies.
func (c wireChange) toChange() (xmlvi.Change, error) {
	var kind xmlvi.ChangeKind
	switch c.Kind {
	case "texts":
		kind = xmlvi.ChangeTexts
	case "attr":
		kind = xmlvi.ChangeAttr
	case "delete":
		kind = xmlvi.ChangeDelete
	case "insert":
		kind = xmlvi.ChangeInsert
	default:
		return xmlvi.Change{}, fmt.Errorf("unknown change kind %q", c.Kind)
	}
	payload, err := base64.StdEncoding.DecodeString(c.Payload)
	if err != nil {
		return xmlvi.Change{}, fmt.Errorf("bad change payload: %w", err)
	}
	if len(payload) == 0 {
		return xmlvi.Change{}, errors.New("change event without payload (stream not opened with ?payload=1?)")
	}
	return xmlvi.Change{Version: uint64(c.Version), Kind: kind, Ops: c.Ops, Payload: payload}, nil
}

// readErrorBody extracts a protocol error message for diagnostics.
func readErrorBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e wireError
	if json.Unmarshal(b, &e) == nil && e.Error.Code != "" {
		return e.Error.Code + ": " + e.Error.Message
	}
	return strings.TrimSpace(string(b))
}

// --- server-sent events ---

type event struct {
	name string
	data []byte
}

type eventScanner struct {
	r *bufio.Reader
}

func newEventScanner(r io.Reader) *eventScanner {
	return &eventScanner{r: bufio.NewReader(r)}
}

// next reads one event (name + concatenated data lines), skipping
// comment/heartbeat lines.
func (s *eventScanner) next() (event, error) {
	var ev event
	var data []byte
	for {
		line, err := s.r.ReadString('\n')
		if err != nil {
			return event{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if ev.name != "" || len(data) > 0 {
				ev.data = data
				return ev, nil
			}
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "event:"):
			ev.name = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(line[len("data:"):])...)
		}
	}
}
