package storage

import (
	"bytes"
	"path/filepath"
	"testing"
)

// Regression test for PageFile.Close not syncing pending writes: a
// writable page file closed after appends (with or without a header
// rewrite in between) must sync before closing, and the resulting file
// must be complete and verifiable. The sync itself is not directly
// observable from userspace, so this pins the behaviours around it:
// Close succeeds on writable and read-only files, every appended page
// survives Close, and a post-header append (the case WriteHeader's own
// sync cannot cover) is fully readable after Close.
func TestPageFileCloseSyncsPendingWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "close.pf")
	pf, err := CreatePageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !pf.writable {
		t.Fatal("created page file not marked writable")
	}
	payload := bytes.Repeat([]byte{0x5A}, 100)
	if _, err := pf.AppendPage(payload); err != nil {
		t.Fatal(err)
	}
	if err := pf.WriteHeader(1); err != nil {
		t.Fatal(err)
	}
	// Append another page AFTER the header sync — the write Close must
	// flush. (The header now undercounts pages, so rewrite it too.)
	if _, err := pf.AppendPage(payload); err != nil {
		t.Fatal(err)
	}
	if err := pf.WriteHeader(1); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatalf("Close of writable page file: %v", err)
	}

	rd, dirPage, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dirPage != 1 {
		t.Fatalf("dir page %d, want 1", dirPage)
	}
	if rd.writable {
		t.Fatal("opened page file marked writable")
	}
	got := make([]byte, pagePayload)
	for _, p := range []int64{1, 2} {
		if err := rd.ReadPage(p, got); err != nil {
			t.Fatalf("page %d after Close: %v", p, err)
		}
		if !bytes.Equal(got[:len(payload)], payload) {
			t.Fatalf("page %d payload mismatch after Close", p)
		}
	}
	if err := rd.Close(); err != nil {
		t.Fatalf("Close of read-only page file: %v", err)
	}
}
