package storage_test

// Crash-injection harness for the write-ahead log. The injector
// simulates a crash at every byte boundary of the last log record — by
// truncation (the tail never reached the disk) and by zeroing (the tail
// sectors were allocated but never written) — and asserts the recovery
// contract: OpenDurable always yields a Verify-clean index whose
// document is byte-identical to a serial oracle's pre-record or
// post-record state, never anything in between and never a corrupt one.
//
// This is an external test package (storage_test) so it can drive the
// full recovery stack in internal/core without an import cycle.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

const crashBaseXML = `<r id="x"><a>alpha</a><b>beta</b><c>7</c></r>`

// crashOp is one loggable mutation, applied identically to the durable
// index and to the in-memory oracle.
type crashOp struct {
	name  string
	apply func(t *testing.T, ix *core.Indexes)
}

func findTexts(doc *xmltree.Doc) []xmltree.NodeID {
	var out []xmltree.NodeID
	for i := 0; i < doc.NumNodes(); i++ {
		if doc.Kind(xmltree.NodeID(i)) == xmltree.Text {
			out = append(out, xmltree.NodeID(i))
		}
	}
	return out
}

func crashOps() []crashOp {
	return []crashOp{
		{"text-update", func(t *testing.T, ix *core.Indexes) {
			if err := ix.UpdateText(findTexts(ix.Doc())[0], "omega42"); err != nil {
				t.Fatal(err)
			}
		}},
		{"text-batch", func(t *testing.T, ix *core.Indexes) {
			texts := findTexts(ix.Doc())
			batch := []core.TextUpdate{
				{Node: texts[0], Value: "3.25"},
				{Node: texts[1], Value: "gamma"},
			}
			if err := ix.UpdateTexts(batch); err != nil {
				t.Fatal(err)
			}
		}},
		{"attr-update", func(t *testing.T, ix *core.Indexes) {
			if err := ix.UpdateAttr(0, "y2"); err != nil {
				t.Fatal(err)
			}
		}},
		{"delete", func(t *testing.T, ix *core.Indexes) {
			// Delete <b> (first element child of <r> named b).
			doc := ix.Doc()
			for i := 0; i < doc.NumNodes(); i++ {
				n := xmltree.NodeID(i)
				if doc.Kind(n) == xmltree.Element && doc.Name(n) == "b" {
					if err := ix.DeleteSubtree(n); err != nil {
						t.Fatal(err)
					}
					return
				}
			}
			t.Fatal("no <b> element")
		}},
		{"insert", func(t *testing.T, ix *core.Indexes) {
			frag, err := xmlparse.ParseString(`<d ts="2009-03-24">12.5</d>`)
			if err != nil {
				t.Fatal(err)
			}
			doc := ix.Doc()
			var root xmltree.NodeID
			for i := 0; i < doc.NumNodes(); i++ {
				if doc.Kind(xmltree.NodeID(i)) == xmltree.Element {
					root = xmltree.NodeID(i)
					break
				}
			}
			if _, err := ix.InsertChildren(root, 1, frag); err != nil {
				t.Fatal(err)
			}
		}},
	}
}

// buildDurable parses crashBaseXML, starts a durable pair in dir, and
// returns the attached index set with its snapshot and wal paths.
func buildDurable(t *testing.T, dir string) (*core.Indexes, string, string) {
	t.Helper()
	doc, err := xmlparse.ParseString(crashBaseXML)
	if err != nil {
		t.Fatal(err)
	}
	ix := core.Build(doc, core.DefaultOptions())
	snap := filepath.Join(dir, "db.xvi")
	wal := filepath.Join(dir, "db.wal")
	if err := ix.StartDurable(snap, wal, 1); err != nil {
		t.Fatal(err)
	}
	return ix, snap, wal
}

// oracleStates returns the document serializations before and after op,
// computed on a pure in-memory index set (the serial oracle).
func oracleStates(t *testing.T, op crashOp) (pre, post []byte) {
	t.Helper()
	doc, err := xmlparse.ParseString(crashBaseXML)
	if err != nil {
		t.Fatal(err)
	}
	ix := core.Build(doc, core.DefaultOptions())
	pre, err = xmlparse.SerializeToBytes(ix.Doc())
	if err != nil {
		t.Fatal(err)
	}
	op.apply(t, ix)
	post, err = xmlparse.SerializeToBytes(ix.Doc())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pre, post) {
		t.Fatalf("%s: oracle pre and post states identical — op is not observable", op.name)
	}
	return pre, post
}

// recoverAt copies the snapshot and a fault-injected copy of the wal
// into a fresh directory and runs recovery on them. mutate receives the
// wal bytes and returns the crashed version.
func recoverAt(t *testing.T, snap, wal string, mutate func([]byte) []byte) (*core.Indexes, []byte) {
	t.Helper()
	dir := t.TempDir()
	snapCopy := filepath.Join(dir, "db.xvi")
	walCopy := filepath.Join(dir, "db.wal")
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapCopy, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walCopy, mutate(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	ix, err := core.OpenDurable(snapCopy, walCopy, 1)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer ix.CloseWAL()
	if err := ix.Verify(); err != nil {
		t.Fatalf("recovered index fails Verify: %v", err)
	}
	xml, err := xmlparse.SerializeToBytes(ix.Doc())
	if err != nil {
		t.Fatal(err)
	}
	return ix, xml
}

// TestCrashInjectionEveryByteBoundary is the core property: for every
// operation kind, a crash at ANY byte boundary of the last record —
// simulated by truncation and by zeroing the tail — recovers to exactly
// the oracle's pre-record or post-record document. Complete record =>
// post; any shorter prefix => pre.
func TestCrashInjectionEveryByteBoundary(t *testing.T) {
	for _, op := range crashOps() {
		op := op
		t.Run(op.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			ix, snap, wal := buildDurable(t, dir)
			st, err := os.Stat(wal)
			if err != nil {
				t.Fatal(err)
			}
			recStart := st.Size() // last record begins where the checkpointed log ended
			op.apply(t, ix)
			if err := ix.CloseWAL(); err != nil {
				t.Fatal(err)
			}
			st, err = os.Stat(wal)
			if err != nil {
				t.Fatal(err)
			}
			recEnd := st.Size()
			if recEnd <= recStart {
				t.Fatalf("operation logged no record (%d -> %d bytes)", recStart, recEnd)
			}
			pre, post := oracleStates(t, op)

			for cut := recStart; cut <= recEnd; cut++ {
				cut := cut
				// Crash flavour 1: the tail past cut never reached disk.
				_, xml := recoverAt(t, snap, wal, func(raw []byte) []byte {
					return raw[:cut]
				})
				wantPre := cut < recEnd
				checkPrePost(t, fmt.Sprintf("truncate@%d", cut), xml, pre, post, wantPre)

				// Crash flavour 2: the tail sectors were zeroed, not
				// dropped — the file keeps its length but the record's
				// suffix is garbage.
				if cut < recEnd {
					_, xml = recoverAt(t, snap, wal, func(raw []byte) []byte {
						out := append([]byte(nil), raw...)
						for i := cut; i < recEnd; i++ {
							out[i] = 0
						}
						return out
					})
					checkPrePost(t, fmt.Sprintf("zero@%d", cut), xml, pre, post, true)
				}
			}
		})
	}
}

func checkPrePost(t *testing.T, label string, got, pre, post []byte, wantPre bool) {
	t.Helper()
	want := post
	state := "post"
	if wantPre {
		want = pre
		state = "pre"
	}
	if !bytes.Equal(got, want) {
		other := "post"
		if !wantPre {
			other = "pre"
		}
		if bytes.Equal(got, pre) || bytes.Equal(got, post) {
			t.Fatalf("%s: recovered the %s-state, want the %s-state", label, other, state)
		}
		t.Fatalf("%s: recovered a state that is neither pre nor post:\n%s", label, got)
	}
}

// TestCrashInjectionBitFlips flips every single byte of the last record
// in turn: any flip must be caught by the CRC framing, recovering the
// pre-record state (a flip can never yield a different valid record).
func TestCrashInjectionBitFlips(t *testing.T) {
	op := crashOps()[0] // text-update
	dir := t.TempDir()
	ix, snap, wal := buildDurable(t, dir)
	st, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	recStart := st.Size()
	op.apply(t, ix)
	if err := ix.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	st, err = os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	recEnd := st.Size()
	pre, post := oracleStates(t, op)

	for off := recStart; off < recEnd; off++ {
		off := off
		_, xml := recoverAt(t, snap, wal, func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[off] ^= 0xA5
			return out
		})
		checkPrePost(t, fmt.Sprintf("flip@%d", off), xml, pre, post, true)
	}
}

// TestCrashInjectionRecordBoundaries applies a sequence of operations
// and crashes at each record boundary: recovery after k complete
// records must equal the oracle that applied exactly the first k
// operations.
func TestCrashInjectionRecordBoundaries(t *testing.T) {
	ops := crashOps()
	dir := t.TempDir()
	ix, snap, wal := buildDurable(t, dir)

	boundaries := []int64{}
	st, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	boundaries = append(boundaries, st.Size())
	for _, op := range ops {
		op.apply(t, ix)
		if err := ix.SyncWAL(); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(wal)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, st.Size())
	}
	if err := ix.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Oracle states after each prefix of the op sequence.
	doc, err := xmlparse.ParseString(crashBaseXML)
	if err != nil {
		t.Fatal(err)
	}
	oracle := core.Build(doc, core.DefaultOptions())
	states := [][]byte{}
	xml, err := xmlparse.SerializeToBytes(oracle.Doc())
	if err != nil {
		t.Fatal(err)
	}
	states = append(states, xml)
	for _, op := range ops {
		op.apply(t, oracle)
		xml, err := xmlparse.SerializeToBytes(oracle.Doc())
		if err != nil {
			t.Fatal(err)
		}
		states = append(states, xml)
	}

	for k, cut := range boundaries {
		_, got := recoverAt(t, snap, wal, func(raw []byte) []byte {
			return raw[:cut]
		})
		if !bytes.Equal(got, states[k]) {
			t.Fatalf("crash after %d records: recovered state does not match oracle after %d ops:\n got: %s\nwant: %s", k, k, got, states[k])
		}
	}
}
