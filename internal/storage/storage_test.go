package storage

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestPageFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	pf, err := CreatePageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		[]byte("hello"),
		bytes.Repeat([]byte{0xAB}, pagePayload),
		{},
		[]byte("world"),
	}
	var pages []int64
	for _, p := range payloads {
		pg, err := pf.AppendPage(p)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, pg)
	}
	if err := pf.WriteHeader(pages[0]); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	pf2, dir, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	if dir != pages[0] {
		t.Errorf("dir page = %d, want %d", dir, pages[0])
	}
	buf := make([]byte, pagePayload)
	for i, p := range payloads {
		if err := pf2.ReadPage(pages[i], buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:len(p)], p) {
			t.Errorf("page %d payload mismatch", i)
		}
	}
	if err := pf2.ReadPage(99, buf); err == nil {
		t.Error("out-of-range read must fail")
	}
}

func TestPageOverflowRejected(t *testing.T) {
	pf, err := CreatePageFile(filepath.Join(t.TempDir(), "x.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if _, err := pf.AppendPage(make([]byte, pagePayload+1)); err == nil {
		t.Error("oversized payload must be rejected")
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	pf, _ := CreatePageFile(path)
	pg, _ := pf.AppendPage([]byte("precious data"))
	pf.WriteHeader(pg)
	pf.Close()

	// Flip a byte in the payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[PageSize+3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	pf2, _, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err) // header is intact
	}
	defer pf2.Close()
	buf := make([]byte, pagePayload)
	if err := pf2.ReadPage(1, buf); err == nil {
		t.Error("corrupted page must fail checksum")
	}
}

func TestHeaderCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.db")
	pf, _ := CreatePageFile(path)
	pg, _ := pf.AppendPage([]byte("x"))
	pf.WriteHeader(pg)
	pf.Close()
	raw, _ := os.ReadFile(path)
	raw[10] ^= 0xFF
	os.WriteFile(path, raw, 0o644)
	if _, _, err := OpenPageFile(path); err == nil {
		t.Error("corrupted header must be rejected")
	}
}

func TestSnapshotSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// Three sections: tiny, page-boundary-sized, large random.
	small := []byte("small section")
	exact := bytes.Repeat([]byte{7}, pagePayload)
	big := make([]byte, 3*pagePayload+1234)
	rng.Read(big)

	for _, s := range []struct {
		name string
		data []byte
	}{{"small", small}, {"exact", exact}, {"big", big}} {
		sec, err := w.Section(s.name)
		if err != nil {
			t.Fatal(err)
		}
		// Write in awkward chunk sizes.
		for off := 0; off < len(s.data); {
			n := 1 + rng.Intn(5000)
			if off+n > len(s.data) {
				n = len(s.data) - off
			}
			if _, err := sec.Write(s.data[off : off+n]); err != nil {
				t.Fatal(err)
			}
			off += n
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Sections(); len(got) != 3 {
		t.Fatalf("sections = %v", got)
	}
	for _, s := range []struct {
		name string
		data []byte
	}{{"small", small}, {"exact", exact}, {"big", big}} {
		if r.SectionLen(s.name) != int64(len(s.data)) {
			t.Errorf("SectionLen(%s) = %d, want %d", s.name, r.SectionLen(s.name), len(s.data))
		}
		sec, err := r.Section(s.name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(sec)
		if err != nil {
			t.Fatalf("section %s: %v", s.name, err)
		}
		if !bytes.Equal(got, s.data) {
			t.Errorf("section %s content mismatch (%d vs %d bytes)", s.name, len(got), len(s.data))
		}
	}
	if r.SectionLen("missing") != -1 {
		t.Error("missing section must report -1")
	}
	if _, err := r.Section("missing"); err == nil {
		t.Error("missing section must error")
	}
}

func TestSnapshotEmptySection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.db")
	w, _ := NewWriter(path)
	if _, err := w.Section("empty"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sec, err := r.Section("empty")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(sec)
	if err != nil || len(got) != 0 {
		t.Errorf("empty section read = %d bytes, err %v", len(got), err)
	}
}

func TestDuplicateSectionRejected(t *testing.T) {
	w, _ := NewWriter(filepath.Join(t.TempDir(), "d.db"))
	defer w.Close()
	if _, err := w.Section("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Section("a"); err == nil {
		t.Error("duplicate section must be rejected")
	}
}

func TestSectionDataCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.db")
	w, _ := NewWriter(path)
	sec, _ := w.Section("data")
	payload := bytes.Repeat([]byte("abcdefgh"), 4096)
	sec.Write(payload)
	w.Close()

	raw, _ := os.ReadFile(path)
	// Corrupt a payload byte AND fix up its page CRC so only the section
	// CRC can catch it.
	off := PageSize + 100
	raw[off] ^= 0x01
	// Recompute that page's CRC trailer.
	pageStart := (off / PageSize) * PageSize
	crc := crc32ChecksumIEEE(raw[pageStart : pageStart+pagePayload])
	putU32(raw[pageStart+pagePayload:], crc)
	os.WriteFile(path, raw, 0o644)

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sec2, err := r.Section("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(sec2); err == nil {
		t.Error("section CRC must catch payload corruption")
	}
}
